module tcsa

go 1.23
