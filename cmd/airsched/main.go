// Command airsched builds a broadcast program for a time-constrained
// instance and prints it.
//
// Instances come either from explicit per-page expected times (rearranged
// onto geometric groups, paper Section 2) or from one of the paper's
// synthetic group-size distributions:
//
//	airsched -times 2,3,4,6,9 -channels 0
//	airsched -dist uniform -pages 1000 -groups 8 -t1 4 -ratio 2 -channels 20
//	airsched -counts 3,5,3 -t1 2 -ratio 2 -channels 3 -alg pamad -grid
//
// -channels 0 uses the Theorem 3.1 minimum. -alg auto picks SUSC when the
// budget suffices and PAMAD otherwise; susc, pamad, mpb, opt and approx
// force one scheduler (approx is the (1+ε) PTAS, tuned with -eps).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"tcsa"
	"tcsa/internal/core"
	"tcsa/internal/mpb"
	"tcsa/internal/opt"
	"tcsa/internal/pamad"
	"tcsa/internal/susc"
	"tcsa/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "airsched:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("airsched", flag.ContinueOnError)
	times := fs.String("times", "", "comma-separated per-page expected times (rearranged with -ratio)")
	counts := fs.String("counts", "", "comma-separated per-group page counts (geometric times from -t1, -ratio)")
	dist := fs.String("dist", "", "group-size distribution: uniform|normal|lskew|sskew")
	pages := fs.Int("pages", 1000, "total pages for -dist")
	groups := fs.Int("groups", 8, "groups for -dist")
	t1 := fs.Int("t1", 4, "smallest expected time")
	ratio := fs.Int("ratio", 2, "geometric ratio c")
	channels := fs.Int("channels", 0, "channel budget (0 = Theorem 3.1 minimum)")
	alg := fs.String("alg", "auto", "scheduler: auto|susc|pamad|mpb|opt|approx")
	eps := fs.Float64("eps", 0, "approximation slack for -alg approx (0 = default)")
	grid := fs.Bool("grid", false, "print the full program grid")
	save := fs.String("save", "", "write the program (with its instance) to this JSON file")
	load := fs.String("load", "", "load a program from this JSON file instead of scheduling")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var (
		prog  *core.Program
		name  string
		freqs []int
		n     int
	)
	if *load != "" {
		loaded, err := loadProgram(*load)
		if err != nil {
			return err
		}
		prog, name, n = loaded, "(loaded)", loaded.Channels()
		for i := 0; i < prog.GroupSet().Len(); i++ {
			first, _ := prog.GroupSet().GroupPages(i)
			freqs = append(freqs, len(prog.Appearances(first)))
		}
	} else {
		gs, err := instance(*times, *counts, *dist, *pages, *groups, *t1, *ratio)
		if err != nil {
			return err
		}
		n = *channels
		if n == 0 {
			n = gs.MinChannels()
		}
		prog, name, freqs, err = build(gs, n, *alg, *eps)
		if err != nil {
			return err
		}
	}
	gs := prog.GroupSet()
	if *save != "" {
		if err := saveProgram(*save, prog); err != nil {
			return err
		}
		fmt.Fprintf(out, "saved program to %s\n", *save)
	}
	a := core.Analyze(prog)
	fmt.Fprintf(out, "instance:      %v\n", gs)
	fmt.Fprintf(out, "min channels:  %d (Theorem 3.1)\n", gs.MinChannels())
	fmt.Fprintf(out, "algorithm:     %s over %d channels\n", name, n)
	fmt.Fprintf(out, "cycle length:  %d slots\n", prog.Length())
	fmt.Fprintf(out, "frequencies:   %v\n", freqs)
	fmt.Fprintf(out, "occupancy:     %.1f%%\n", 100*prog.Occupancy())
	fmt.Fprintf(out, "avg wait:      %.3f slots\n", a.AvgWait())
	fmt.Fprintf(out, "avg delay:     %.3f slots beyond expected time\n", a.AvgDelay())
	fmt.Fprintf(out, "miss ratio:    %.3f\n", a.MissProbability())
	if err := prog.Validate(); err != nil {
		fmt.Fprintf(out, "validity:      INVALID under Section 3.1 (expected when channels < minimum): %v\n", err)
	} else {
		fmt.Fprintf(out, "validity:      valid broadcast program (all expected times met)\n")
	}
	if *grid {
		fmt.Fprint(out, prog.String())
	}
	return nil
}

// instance materialises the group set from whichever source flag was given.
func instance(times, counts, dist string, pages, groups, t1, ratio int) (*core.GroupSet, error) {
	switch {
	case times != "":
		ts, err := parseInts(times)
		if err != nil {
			return nil, err
		}
		r, err := core.Rearrange(ts, ratio)
		if err != nil {
			return nil, err
		}
		return r.Set, nil
	case counts != "":
		cs, err := parseInts(counts)
		if err != nil {
			return nil, err
		}
		return core.Geometric(t1, ratio, cs)
	case dist != "":
		d, err := workload.ParseDistribution(dist)
		if err != nil {
			return nil, err
		}
		return workload.GroupSet(d, groups, pages, t1, ratio)
	default:
		return nil, fmt.Errorf("one of -times, -counts or -dist is required")
	}
}

func build(gs *core.GroupSet, n int, alg string, eps float64) (*core.Program, string, []int, error) {
	switch alg {
	case "auto":
		sched, err := tcsa.Build(gs, n)
		if err != nil {
			return nil, "", nil, err
		}
		return sched.Program, string(sched.Algorithm), sched.Frequencies, nil
	case "susc":
		prog, err := susc.Build(gs, n)
		if err != nil {
			return nil, "", nil, err
		}
		th := gs.MaxTime()
		var freqs []int
		for i := 0; i < gs.Len(); i++ {
			freqs = append(freqs, th/gs.Group(i).Time)
		}
		return prog, "SUSC", freqs, nil
	case "pamad":
		prog, res, err := pamad.Build(gs, n)
		if err != nil {
			return nil, "", nil, err
		}
		return prog, "PAMAD", res.Frequencies, nil
	case "mpb":
		prog, res, err := mpb.Build(gs, n)
		if err != nil {
			return nil, "", nil, err
		}
		return prog, "m-PB", res.Frequencies, nil
	case "opt":
		prog, res, err := opt.Build(context.Background(), gs, n, opt.Options{})
		if err != nil {
			return nil, "", nil, err
		}
		return prog, "OPT", res.Frequencies, nil
	case "approx":
		prog, res, err := opt.BuildApprox(context.Background(), gs, n, opt.ApproxOptions{Eps: eps})
		if err != nil {
			return nil, "", nil, err
		}
		return prog, "OPT-PTAS", res.Frequencies, nil
	default:
		return nil, "", nil, fmt.Errorf("unknown algorithm %q", alg)
	}
}

// saveProgram writes prog as self-contained JSON.
func saveProgram(path string, prog *core.Program) error {
	data, err := json.MarshalIndent(prog, "", " ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// loadProgram reads and re-validates a saved program.
func loadProgram(path string) (*core.Program, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var prog core.Program
	if err := json.Unmarshal(data, &prog); err != nil {
		return nil, err
	}
	return &prog, nil
}

func parseInts(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("parsing %q: %w", p, err)
		}
		out = append(out, v)
	}
	return out, nil
}
