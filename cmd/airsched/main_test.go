package main

import (
	"strings"
	"testing"
)

func TestRunFigure2Instance(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-counts", "3,5,3", "-t1", "2", "-channels", "3", "-grid"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{
		"min channels:  4",
		"PAMAD over 3 channels",
		"cycle length:  9 slots",
		"[4 2 1]",
		"ch0",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestRunSufficientIsValid(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-counts", "3,5,3", "-t1", "2", "-channels", "0"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "valid broadcast program") {
		t.Errorf("minimum-channel run not valid:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "SUSC") {
		t.Errorf("auto did not select SUSC:\n%s", out.String())
	}
}

func TestRunTimesRearranged(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-times", "2,3,4,6,9", "-ratio", "2"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "{t=2:P=2, t=4:P=2, t=8:P=1}") {
		t.Errorf("rearrangement not applied:\n%s", out.String())
	}
}

func TestRunEachAlgorithm(t *testing.T) {
	for _, alg := range []string{"susc", "pamad", "mpb", "opt", "approx"} {
		var out strings.Builder
		args := []string{"-counts", "3,5,3", "-t1", "2", "-alg", alg}
		if alg != "susc" {
			args = append(args, "-channels", "3")
		}
		if err := run(args, &out); err != nil {
			t.Errorf("alg %s: %v", alg, err)
		}
	}
}

func TestRunDistInstance(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-dist", "uniform", "-pages", "80", "-groups", "4", "-channels", "2"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "PAMAD") && !strings.Contains(out.String(), "SUSC") {
		t.Errorf("no scheduler reported:\n%s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	tests := [][]string{
		{},                             // no instance source
		{"-times", "2,x"},              // unparsable
		{"-counts", "3", "-alg", "??"}, // unknown algorithm
		{"-dist", "pareto"},            // unknown distribution
		{"-counts", "3,5,3", "-t1", "2", "-alg", "susc", "-channels", "1"}, // insufficient for susc
	}
	for _, args := range tests {
		var out strings.Builder
		if err := run(args, &out); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestSaveAndLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/prog.json"
	var out strings.Builder
	err := run([]string{"-counts", "3,5,3", "-t1", "2", "-channels", "3", "-save", path}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "saved program to") {
		t.Errorf("missing save confirmation:\n%s", out.String())
	}
	out.Reset()
	if err := run([]string{"-load", path, "-grid"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"(loaded) over 3 channels", "cycle length:  9 slots", "[4 2 1]"} {
		if !strings.Contains(s, want) {
			t.Errorf("loaded output missing %q:\n%s", want, s)
		}
	}
}

func TestLoadMissingFile(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-load", "/nonexistent/prog.json"}, &out); err == nil {
		t.Error("missing file accepted")
	}
}
