package main

import (
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestServeAndFetchEndToEnd(t *testing.T) {
	// Start the server in the background with a bounded duration and grab
	// a channel address from its output as soon as it prints.
	var serveOut syncBuilder
	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-serve", "-counts", "2,3", "-t1", "2", "-slot", "2ms", "-duration", "1500ms",
		}, &serveOut)
	}()

	addr := waitForAddr(t, &serveOut)
	var fetchOut strings.Builder
	if err := run([]string{"-fetch", addr, "-page", "0", "-timeout", "3s"}, &fetchOut); err != nil {
		t.Fatalf("fetch: %v (server output: %s)", err, serveOut.String())
	}
	if !strings.Contains(fetchOut.String(), "received page 0 after") {
		t.Errorf("fetch output = %q", fetchOut.String())
	}

	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not stop at -duration")
	}
	if !strings.Contains(serveOut.String(), "stopped after") {
		t.Errorf("server output = %q", serveOut.String())
	}
}

func TestRunErrors(t *testing.T) {
	tests := [][]string{
		{},         // neither serve nor fetch
		{"-serve"}, // no instance
		{"-serve", "-counts", "x"},
		{"-serve", "-dist", "pareto"},
		{"-fetch", "not-an-addr::"},
		{"-replanafter", "5"}, // without -serve
		{"-serve", "-counts", "2,3", "-t1", "2", "-replanafter", "-1"},
	}
	for _, args := range tests {
		var out strings.Builder
		if err := run(args, &out); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestFetchTimesOutOnSilence(t *testing.T) {
	var out strings.Builder
	// Port 9 (discard) on loopback: nothing will answer.
	err := run([]string{"-fetch", "127.0.0.1:9", "-page", "0", "-timeout", "200ms"}, &out)
	if err == nil {
		t.Error("silent channel did not time out")
	}
}

var addrPattern = regexp.MustCompile(`channel 0: ([0-9.]+:[0-9]+)`)

func waitForAddr(t *testing.T, out *syncBuilder) string {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if m := addrPattern.FindStringSubmatch(out.String()); m != nil {
			return m[1]
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("server never printed a channel address: %q", out.String())
	return ""
}

// syncBuilder is a strings.Builder safe for one writer + one reader.
type syncBuilder struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuilder) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuilder) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

var schedPattern = regexp.MustCompile(`schedule: ([0-9.]+:[0-9]+)`)

func TestSmartFetchEndToEnd(t *testing.T) {
	var serveOut syncBuilder
	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-serve", "-counts", "2,3", "-t1", "2", "-slot", "2ms", "-duration", "2s",
		}, &serveOut)
	}()

	deadline := time.Now().Add(5 * time.Second)
	var schedAddr string
	for time.Now().Before(deadline) {
		if m := schedPattern.FindStringSubmatch(serveOut.String()); m != nil {
			schedAddr = m[1]
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if schedAddr == "" {
		t.Fatalf("no schedule address: %q", serveOut.String())
	}
	var fetchOut strings.Builder
	if err := run([]string{"-smart", schedAddr, "-page", "3", "-timeout", "3s"}, &fetchOut); err != nil {
		t.Fatalf("smart fetch: %v", err)
	}
	if !strings.Contains(fetchOut.String(), "received page 3") {
		t.Errorf("smart output = %q", fetchOut.String())
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not stop")
	}
}

func TestServeChaosEndToEnd(t *testing.T) {
	// Serve through the fault injector at a loss rate low enough that the
	// fetch still succeeds, and verify the fault summary is reported.
	var serveOut syncBuilder
	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-serve", "-counts", "2,3", "-t1", "2", "-slot", "2ms", "-duration", "1500ms",
			"-chaos", "-loss", "0.2", "-corrupt", "0.05", "-stall", "16/2",
			"-burst", "0.05,0.25,0,0.8", "-chaosseed", "7",
		}, &serveOut)
	}()

	addr := waitForAddr(t, &serveOut)
	var fetchOut strings.Builder
	if err := run([]string{"-fetch", addr, "-page", "0", "-timeout", "3s"}, &fetchOut); err != nil {
		t.Fatalf("fetch under chaos: %v (server output: %s)", err, serveOut.String())
	}

	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not stop at -duration")
	}
	out := serveOut.String()
	if !strings.Contains(out, "fault injection on") {
		t.Errorf("server never announced fault injection: %q", out)
	}
	if !strings.Contains(out, "faults injected:") {
		t.Errorf("server never reported fault stats: %q", out)
	}
}

func TestServeLiveReplanEndToEnd(t *testing.T) {
	// Serve with a live replan scheduled mid-run: the engine retires a
	// page, stages the delta, and the broadcast must flip epochs at a
	// cycle boundary while a client keeps fetching through the transition.
	var serveOut syncBuilder
	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-serve", "-counts", "3,5,3", "-t1", "2", "-slot", "2ms", "-duration", "1500ms",
			"-replanafter", "20",
		}, &serveOut)
	}()

	addr := waitForAddr(t, &serveOut)
	var fetchOut strings.Builder
	if err := run([]string{"-fetch", addr, "-page", "0", "-timeout", "3s"}, &fetchOut); err != nil {
		t.Fatalf("fetch across replan: %v (server output: %s)", err, serveOut.String())
	}

	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not stop at -duration")
	}
	out := serveOut.String()
	if !strings.Contains(out, "live replan staged") {
		t.Errorf("server never staged the replan: %q", out)
	}
	if !strings.Contains(out, "final epoch 1 on air") {
		t.Errorf("server never flipped to the replanned epoch: %q", out)
	}
}

func TestChaosFlagErrors(t *testing.T) {
	tests := [][]string{
		{"-chaos"}, // without -serve
		{"-serve", "-counts", "2,3", "-t1", "2", "-chaos", "-stall", "bogus"},
		{"-serve", "-counts", "2,3", "-t1", "2", "-chaos", "-burst", "0.1"},
		{"-serve", "-counts", "2,3", "-t1", "2", "-chaos", "-loss", "1.5"},
	}
	for _, args := range tests {
		var out strings.Builder
		if err := run(args, &out); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}
