// Command aircast puts a broadcast program on real (UDP) air and fetches
// pages from it — the networked end-to-end demonstration of the system.
//
// Serve a schedule (prints one UDP address per broadcast channel):
//
//	aircast -serve -counts 3,5,3 -t1 2 -channels 3 -slot 10ms -duration 5s
//
// Fetch a page from a running server (tunes to the channel, counts the
// frames it had to observe — the real waiting time in slots):
//
//	aircast -fetch 127.0.0.1:41234 -page 4 -timeout 3s
//
// Serve through a deterministic fault injector (chaos): frame loss, burst
// erasures, server stalls and corruption, all replayable from -chaosseed:
//
//	aircast -serve -counts 3,5,3 -chaos -loss 0.1 -burst 0.05,0.25,0,0.8 \
//	        -stall 64/4 -corrupt 0.02 -chaosseed 7
//
// Demonstrate a zero-pause live replan: after ~N slots on air the server
// retires a page through the incremental replan engine and stages the
// delta; the broadcast flips to the new program at the next cycle
// boundary without skipping a slot:
//
//	aircast -serve -counts 3,5,3 -slot 5ms -duration 2s -replanafter 40
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"strconv"
	"strings"
	"time"

	"tcsa"
	"tcsa/internal/chaos"
	"tcsa/internal/core"
	"tcsa/internal/netcast"
	"tcsa/internal/replan"
	"tcsa/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "aircast:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("aircast", flag.ContinueOnError)
	serve := fs.Bool("serve", false, "run a broadcast server (publishes the schedule over TCP too)")
	fetch := fs.String("fetch", "", "channel address to fetch from (host:port), camping on the channel")
	smart := fs.String("smart", "", "schedule (TCP) address for a schedule-aware, dozing fetch")
	page := fs.Int("page", 0, "page ID to fetch")
	timeout := fs.Duration("timeout", 5*time.Second, "fetch timeout")
	slot := fs.Duration("slot", 10*time.Millisecond, "slot duration on air")
	duration := fs.Duration("duration", 0, "serve duration (0 = forever)")
	counts := fs.String("counts", "", "comma-separated per-group page counts")
	dist := fs.String("dist", "", "group-size distribution: uniform|normal|lskew|sskew")
	pages := fs.Int("pages", 100, "total pages for -dist")
	groups := fs.Int("groups", 4, "groups for -dist")
	t1 := fs.Int("t1", 4, "smallest expected time")
	ratio := fs.Int("ratio", 2, "geometric ratio c")
	channels := fs.Int("channels", 0, "channel budget (0 = minimum)")
	chaosOn := fs.Bool("chaos", false, "serve through a deterministic fault injector")
	loss := fs.Float64("loss", 0, "per-(channel,slot) i.i.d. frame-loss probability (with -chaos)")
	corrupt := fs.Float64("corrupt", 0, "per-(channel,slot) frame-corruption probability (with -chaos)")
	stall := fs.String("stall", "", "server stall window as every/for slots, e.g. 64/4 (with -chaos)")
	burst := fs.String("burst", "", "Gilbert-Elliott burst loss as g2b,b2g,lossgood,lossbad (with -chaos)")
	chaosSeed := fs.Int64("chaosseed", 1, "fault-injector seed; same seed replays the same faults")
	replanAfter := fs.Int("replanafter", 0, "retire a page via the incremental replan engine after ~N slots and flip the program live (with -serve)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *chaosOn && !*serve {
		return fmt.Errorf("-chaos requires -serve")
	}
	if *replanAfter < 0 || (*replanAfter > 0 && !*serve) {
		return fmt.Errorf("-replanafter requires -serve and a positive slot count")
	}

	switch {
	case *serve:
		var mk faultMaker
		if *chaosOn {
			mk = func(channels, length int) (netcast.FaultInjector, error) {
				return buildPlan(*chaosSeed, *loss, *corrupt, *stall, *burst, channels, length)
			}
		}
		return runServe(out, *counts, *dist, *pages, *groups, *t1, *ratio, *channels, *slot, *duration, mk, *replanAfter)
	case *fetch != "":
		return runFetch(out, *fetch, core.PageID(*page), *timeout)
	case *smart != "":
		return runSmart(out, *smart, core.PageID(*page), *timeout)
	default:
		return fmt.Errorf("one of -serve, -fetch or -smart is required")
	}
}

func runSmart(out io.Writer, scheduleAddr string, page core.PageID, timeout time.Duration) error {
	res, err := netcast.SmartFetch(scheduleAddr, page, timeout)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "received page %d: %d active frames, dozed %d slots (%.1fms total)\n",
		res.Page, res.ActiveFrames, res.DozedSlots,
		float64(res.Elapsed.Microseconds())/1000)
	if res.Replans > 0 || res.BadFrames > 0 {
		fmt.Fprintf(out, "channel was lossy: %d replans, %d corrupted frames discarded\n",
			res.Replans, res.BadFrames)
	}
	return nil
}

// faultMaker builds a fault injector once the program's shape is known.
type faultMaker func(channels, length int) (netcast.FaultInjector, error)

// buildPlan assembles the chaos plan the -chaos flag family describes.
func buildPlan(seed int64, loss, corrupt float64, stall, burst string, channels, length int) (netcast.FaultInjector, error) {
	cfg := chaos.Config{Seed: seed, Loss: loss, Corrupt: corrupt}
	if stall != "" {
		if _, err := fmt.Sscanf(stall, "%d/%d", &cfg.StallEvery, &cfg.StallFor); err != nil {
			return nil, fmt.Errorf("parsing -stall %q (want every/for): %w", stall, err)
		}
	}
	if burst != "" {
		b := &chaos.BurstConfig{}
		if _, err := fmt.Sscanf(burst, "%g,%g,%g,%g",
			&b.GoodToBad, &b.BadToGood, &b.LossGood, &b.LossBad); err != nil {
			return nil, fmt.Errorf("parsing -burst %q (want g2b,b2g,lossgood,lossbad): %w", burst, err)
		}
		cfg.Burst = b
	}
	return chaos.NewPlan(cfg, channels, length)
}

func runServe(out io.Writer, counts, dist string, pages, groups, t1, ratio, channels int, slot, duration time.Duration, mk faultMaker, replanAfter int) error {
	gs, err := buildInstance(counts, dist, pages, groups, t1, ratio)
	if err != nil {
		return err
	}
	n := channels
	if n == 0 {
		n = gs.MinChannels()
	}
	// A live replan needs the engine to own the on-air program, so the
	// demo pins the PAMAD path; otherwise the facade picks the scheduler.
	var eng *replan.Engine
	var prog *core.Program
	algo := "replan/PAMAD"
	if replanAfter > 0 {
		eng, err = replan.New(gs, n)
		if err != nil {
			return err
		}
		prog = eng.Snapshot()
	} else {
		sched, err := tcsa.Build(gs, n)
		if err != nil {
			return err
		}
		prog, algo = sched.Program, string(sched.Algorithm)
	}
	srvCfg := netcast.ServerConfig{SlotDuration: slot}
	if mk != nil {
		fault, err := mk(prog.Channels(), prog.Length())
		if err != nil {
			return err
		}
		srvCfg.Fault = fault
	}
	srv, err := netcast.NewServer(prog, srvCfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "broadcasting %v with %s over %d channels, cycle %d slots, slot %v\n",
		gs, algo, n, prog.Length(), slot)
	if srvCfg.Fault != nil {
		fmt.Fprintln(out, "fault injection on: frames may stall, drop, or arrive corrupted")
	}
	for ch, addr := range srv.ChannelAddrs() {
		fmt.Fprintf(out, "channel %d: %v\n", ch, addr)
	}
	ss, err := netcast.ServeSchedule("127.0.0.1:0", srv)
	if err != nil {
		return err
	}
	defer ss.Close()
	fmt.Fprintf(out, "schedule: %v\n", ss.Addr())
	ctx := context.Background()
	if duration > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, duration)
		defer cancel()
	}
	if eng != nil {
		go func() {
			time.Sleep(time.Duration(replanAfter) * slot)
			d, err := eng.RetirePage(gs.Len() - 1)
			if err != nil {
				fmt.Fprintf(out, "live replan failed: %v\n", err)
				return
			}
			if err := srv.StageProgram(eng.Snapshot()); err != nil {
				fmt.Fprintf(out, "staging replanned program failed: %v\n", err)
				return
			}
			fmt.Fprintf(out, "live replan staged: retired a page from group %d (%v delta, %d cells cleared, %d placed); flip lands at the next cycle boundary\n",
				gs.Len()-1, d.Kind, d.ClearedCells, d.PlacedCells)
		}()
	}
	if err := srv.Run(ctx); err != nil && ctx.Err() == nil {
		return err
	}
	fmt.Fprintf(out, "stopped after %d slots\n", srv.Slot())
	if eng != nil {
		ep := srv.Epoch()
		fmt.Fprintf(out, "final epoch %d on air (flipped at slot %d, cycle %d slots)\n",
			ep.Seq, ep.Base, ep.Program.Length())
	}
	if srvCfg.Fault != nil {
		f := srv.Faults()
		fmt.Fprintf(out, "faults injected: %d stalled slots, %d dropped frames, %d corrupted frames\n",
			f.StalledSlots, f.DroppedFrames, f.CorruptFrames)
	}
	return nil
}

func runFetch(out io.Writer, addr string, page core.PageID, timeout time.Duration) error {
	udpAddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return fmt.Errorf("resolving %q: %w", addr, err)
	}
	tuner, err := netcast.NewTuner()
	if err != nil {
		return err
	}
	defer tuner.Close()
	if err := tuner.Tune(udpAddr); err != nil {
		return err
	}
	start := time.Now()
	frames, err := tuner.WaitForPage(page, timeout)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "received page %d after %d frames (%.1fms)\n",
		page, frames, float64(time.Since(start).Microseconds())/1000)
	return nil
}

func buildInstance(counts, dist string, pages, groups, t1, ratio int) (*core.GroupSet, error) {
	switch {
	case counts != "":
		var cs []int
		for _, p := range strings.Split(counts, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(p))
			if err != nil {
				return nil, err
			}
			cs = append(cs, v)
		}
		return core.Geometric(t1, ratio, cs)
	case dist != "":
		d, err := workload.ParseDistribution(dist)
		if err != nil {
			return nil, err
		}
		return workload.GroupSet(d, groups, pages, t1, ratio)
	default:
		return nil, fmt.Errorf("one of -counts or -dist is required")
	}
}
