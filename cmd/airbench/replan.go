package main

import (
	"fmt"
	"io"
	"runtime"
	"testing"

	"tcsa/internal/core"
	"tcsa/internal/pamad"
	"tcsa/internal/perf"
	"tcsa/internal/replan"
	"tcsa/internal/workload"
)

// replanConfig carries the -replan mode flags.
type replanConfig struct {
	out      string // -replanout: where to write the report
	baseline string // -replanbaseline: prior report to compare against ("" = none)
	slowdown float64
	allocs   float64
}

// replanSpeedupFloor is the committed incremental-vs-rebuild gate: a
// single-page delta at 10^5 pages must replan at least this many times
// faster than a from-scratch PAMAD build. The run fails below the floor,
// making the O(Δ) claim a CI invariant rather than a doc comment.
const replanSpeedupFloor = 10.0

// runReplanBench measures the incremental replan engine against the
// from-scratch rebuild it replaces, on the paper's instance scaled x100
// (10^5 pages), and writes the BENCH_replan.json trajectory. Its
// load-bearing assertions are (1) the differential identity — after every
// retire/add round trip the engine's live grid is bit-identical to the
// from-scratch build, checked in-process via the grid fingerprint — and
// (2) the speedup floor: a single-page event must beat the full rebuild
// by at least replanSpeedupFloor x.
func runReplanBench(cfg replanConfig, out io.Writer) error {
	rep := &perf.Report{
		Schema:   perf.SchemaVersion,
		GOOS:     runtime.GOOS,
		GOARCH:   runtime.GOARCH,
		MaxProcs: runtime.GOMAXPROCS(0),
	}
	gs, err := workload.GroupSet(workload.Uniform, 8, 100_000, 4, 2)
	if err != nil {
		return err
	}
	n := core.CeilDiv(gs.MinChannels(), 5)
	h := gs.Len()

	add := func(name string, r testing.BenchmarkResult, checksum string) float64 {
		rep.Samples = append(rep.Samples, perf.Sample{
			Name:        name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: int64(r.AllocsPerOp()),
			BytesPerOp:  int64(r.AllocedBytesPerOp()),
			Checksum:    checksum,
		})
		fmt.Fprintf(out, "%-24s %12.0f ns/op %10d allocs/op %12d B/op  series %s\n",
			name, rep.Samples[len(rep.Samples)-1].NsPerOp, r.AllocsPerOp(), r.AllocedBytesPerOp(), checksum)
		return rep.Samples[len(rep.Samples)-1].NsPerOp
	}

	// The cost a dynamic event pays without the engine: rederive the
	// frequency assignment and replace the whole grid.
	var fullProg *core.Program
	fullNs := add("ReplanFullRebuild", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			prog, _, err := pamad.Build(gs, n)
			if err != nil {
				b.Fatal(err)
			}
			fullProg = prog
		}
	}), perf.SeriesChecksum(gridFloats(fullProg)))
	fullSum := rep.Samples[len(rep.Samples)-1].Checksum

	eng, err := replan.New(gs, n)
	if err != nil {
		return err
	}
	if got := perf.SeriesChecksum(gridFloats(eng.Program())); got != fullSum {
		return fmt.Errorf("replan: engine bootstrap grid %s != from-scratch grid %s", got, fullSum)
	}

	// One retire + one add on the last group: a suffix replay plus an
	// append, the two incremental paths a single-page delta exercises. The
	// pair is a round trip, so the engine's grid must land bit-identical
	// to the initial build after every iteration — checked below by
	// fingerprint, which is the in-process differential gate.
	var lastKinds [2]replan.Kind
	pairNs := add("ReplanRetireAddPair", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			dr, err := eng.RetirePage(h - 1)
			if err != nil {
				b.Fatal(err)
			}
			da, err := eng.AddPage(h - 1)
			if err != nil {
				b.Fatal(err)
			}
			lastKinds = [2]replan.Kind{dr.Kind, da.Kind}
		}
	}), perf.SeriesChecksum(gridFloats(eng.Program())))
	if got := rep.Samples[len(rep.Samples)-1].Checksum; got != fullSum {
		return fmt.Errorf("replan: grid drifted after retire/add round trips: %s != %s", got, fullSum)
	}
	if k := lastKinds[0]; k == replan.KindRebuild || k == replan.KindNone {
		return fmt.Errorf("replan: retire took the %v path, want an incremental kind", k)
	}
	fmt.Fprintf(out, "round-trip identity holds: engine grid == from-scratch grid (%s); kinds retire=%v add=%v\n",
		fullSum, lastKinds[0], lastKinds[1])

	perEvent := pairNs / 2
	speedup := fullNs / perEvent
	fmt.Fprintf(out, "single-page delta: %12.0f ns/event, full rebuild %12.0f ns  =>  %.1fx speedup (floor %.0fx)\n",
		perEvent, fullNs, speedup, replanSpeedupFloor)
	if speedup < replanSpeedupFloor {
		return fmt.Errorf("replan: incremental speedup %.1fx below the %.0fx floor", speedup, replanSpeedupFloor)
	}

	return writeAndCompare(rep, cfg.out, cfg.baseline, benchConfig{
		slowdown: cfg.slowdown, allocs: cfg.allocs,
	}, out)
}
