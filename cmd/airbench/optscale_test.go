package main

import (
	"path/filepath"
	"strings"
	"testing"

	"tcsa/internal/core"
	"tcsa/internal/perf"
)

// optscaleTestLadder is a miniature of the committed ladder: one searchable
// rung, plus (when frontier is set) the narrowest rung past the
// infeasibility floor — h=16 at ratio 2 is family 4^15 ≈ 1.07e9. The full
// ladder runs Search for seconds per rung, which is the CI bench job's
// budget, not the test suite's, and the frontier rung itself costs enough
// that the baseline-comparison reruns below go without it.
func optscaleTestLadder(frontier bool) []optscaleCase {
	knee := func(gs *core.GroupSet) int { return core.CeilDiv(gs.MinChannels(), 5) }
	cases := []optscaleCase{
		{name: "TestKnee_h4", groups: optscaleUniform(25, 4, 4), nReal: knee, searchable: true},
	}
	if frontier {
		cases = append(cases, optscaleCase{
			name: "TestFrontier_h16", groups: optscaleUniform(2, 16, 2), nReal: knee, searchable: false,
		})
	}
	return cases
}

// TestRunOptscale drives the miniature ladder through the real report
// pipeline: well-formed samples with series checksums, a clean second run
// against the first as baseline, and a doctored baseline failing with the
// checksum drift named.
func TestRunOptscale(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_optscale.json")
	var out strings.Builder
	if err := runOptscaleBench(optscaleTestLadder(true), optscaleConfig{out: path}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "search infeasible") {
		t.Errorf("frontier rung not reported as infeasible:\n%s", out.String())
	}
	rep, err := perf.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"TestKnee_h4", "TestFrontier_h16"} {
		s := rep.Find(name)
		if s == nil {
			t.Fatalf("report missing sample %q", name)
		}
		if len(s.Checksum) != 16 || s.NsPerOp <= 0 {
			t.Errorf("%s: malformed sample %+v", name, s)
		}
	}

	// Re-running against a fresh knee-only report must be drift-free: the
	// checksummed fields are exactly the deterministic ones.
	out.Reset()
	kneeBase := filepath.Join(t.TempDir(), "BENCH_knee.json")
	if err := runOptscaleBench(optscaleTestLadder(false), optscaleConfig{out: kneeBase}, &out); err != nil {
		t.Fatal(err)
	}
	kneeRep, err := perf.ReadFile(kneeBase)
	if err != nil {
		t.Fatal(err)
	}
	out.Reset()
	path2 := filepath.Join(t.TempDir(), "BENCH_optscale2.json")
	err = runOptscaleBench(optscaleTestLadder(false), optscaleConfig{out: path2, baseline: kneeBase}, &out)
	if err != nil {
		t.Fatalf("self-comparison drifted: %v\n%s", err, out.String())
	}

	// A baseline claiming a different vector must fail the comparison.
	bad := *kneeRep
	bad.Samples = append([]perf.Sample(nil), kneeRep.Samples...)
	bad.Samples[0].Checksum = "0000000000000000"
	badPath := filepath.Join(t.TempDir(), "baseline.json")
	if err := bad.WriteFile(badPath); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	err = runOptscaleBench(optscaleTestLadder(false), optscaleConfig{out: path2, baseline: badPath}, &out)
	if err == nil {
		t.Fatal("doctored baseline comparison passed")
	}
	if !strings.Contains(out.String(), "checksum") {
		t.Errorf("comparison output missing checksum regression:\n%s", out.String())
	}
}

// TestOptscaleFrontierWitness: a frontier rung whose family a patient Search
// could actually enumerate must be rejected, not silently recorded as
// infeasible.
func TestOptscaleFrontierWitness(t *testing.T) {
	knee := func(gs *core.GroupSet) int { return core.CeilDiv(gs.MinChannels(), 5) }
	small := []optscaleCase{
		{name: "BogusFrontier_h4", groups: optscaleUniform(25, 4, 4), nReal: knee, searchable: false},
	}
	var out strings.Builder
	err := runOptscaleBench(small, optscaleConfig{out: filepath.Join(t.TempDir(), "r.json")}, &out)
	if err == nil || !strings.Contains(err.Error(), "infeasibility") {
		t.Fatalf("err = %v, want the infeasibility-witness failure", err)
	}
}

// TestOptscaleCommittedLadder pins the committed ladder's shape so a config
// edit cannot silently shrink the frontier claim: at least one rung must be
// past the Search-infeasibility floor with h >= 8 and >= 1e5 pages.
func TestOptscaleCommittedLadder(t *testing.T) {
	frontier := false
	for _, tc := range optscaleCases() {
		gs, err := core.NewGroupSet(tc.groups)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if !tc.searchable && gs.Len() >= 8 && gs.Pages() >= 100000 {
			frontier = true
		}
	}
	if !frontier {
		t.Fatal("committed ladder lost its h>=8, pages>=1e5 frontier rung")
	}
}
