package main

import (
	"testing"

	"tcsa/internal/experiments"
	"tcsa/internal/online"
	"tcsa/internal/perf"
	"tcsa/internal/workload"
)

// TestHybridCommittedChecksums recomputes the two series the -hybrid gate
// freezes — the serial reference of the main online workload and the
// coupled intensity x split x policy matrix — and compares them against the
// committed BENCH_hybrid.json. Any engine change that moves a float, a
// count, or the trace digest shows up here without running the wall-time
// benchmarks.
func TestHybridCommittedChecksums(t *testing.T) {
	rep, err := perf.ReadFile("../../BENCH_hybrid.json")
	if err != nil {
		t.Fatal(err)
	}
	prog, stream, ocfg, err := hybridBenchInstance()
	if err != nil {
		t.Fatal(err)
	}
	ref, err := online.RunSerial(prog, stream, ocfg)
	if err != nil {
		t.Fatal(err)
	}
	if s := rep.Find("OnlineLWFReserved"); s == nil {
		t.Fatal("committed report missing OnlineLWFReserved")
	} else if got := perf.SeriesChecksum(onlineSeries(ref)); got != s.Checksum {
		t.Errorf("online series drifted from committed gate: %s != %s", got, s.Checksum)
	}

	p, rates, splits := hybridMatrixSpec()
	pts, err := experiments.HybridMatrix(p, workload.Uniform, rates, splits, online.Policies())
	if err != nil {
		t.Fatal(err)
	}
	if s := rep.Find("HybridMatrix"); s == nil {
		t.Fatal("committed report missing HybridMatrix")
	} else if got := perf.SeriesChecksum(experiments.HybridSeries(pts)); got != s.Checksum {
		t.Errorf("matrix series drifted from committed gate: %s != %s", got, s.Checksum)
	}
}
