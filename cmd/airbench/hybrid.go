package main

import (
	"fmt"
	"io"
	"runtime"
	"testing"

	"tcsa/internal/conformance"
	"tcsa/internal/core"
	"tcsa/internal/experiments"
	"tcsa/internal/online"
	"tcsa/internal/pamad"
	"tcsa/internal/perf"
	"tcsa/internal/workload"
)

// hybridConfig carries the -hybrid mode flags.
type hybridConfig struct {
	out      string // -hybridout: where to write the report
	baseline string // -hybridbaseline: prior report to compare against ("" = none)
	slowdown float64
	allocs   float64
}

// onlineSeries flattens an online result into the float series the
// trajectory checksum freezes. The FNV trace digest rides along as two
// 32-bit halves (a uint64 does not fit a float64 exactly).
func onlineSeries(res *online.Result) []float64 {
	return []float64{
		res.AvgFlow, res.MaxFlow, res.AvgDelayFactor, res.MaxDelayFactor,
		float64(res.Requests), float64(res.PushServed), float64(res.OnlineServed),
		float64(res.OnlineAirings), float64(res.StolenSlots), float64(res.HorizonSlots),
		float64(res.TraceDigest >> 32), float64(res.TraceDigest & 0xffffffff),
	}
}

// hybridBenchInstance builds the gate's main workload: a scarce mid-size
// instance with enough pressure that both tiers carry real load, small
// enough that the gate stays CI-speed.
func hybridBenchInstance() (*core.Program, workload.Stream, online.Config, error) {
	gs, err := workload.GroupSet(workload.Uniform, 8, 400, 4, 2)
	if err != nil {
		return nil, nil, online.Config{}, err
	}
	prog, _, err := pamad.Build(gs, core.CeilDiv(gs.MinChannels(), 5))
	if err != nil {
		return nil, nil, online.Config{}, err
	}
	stream, err := workload.NewPoissonStream(gs, workload.PoissonConfig{
		RequestConfig: workload.RequestConfig{Count: 120_000, Seed: 9},
		Rate:          24,
	})
	if err != nil {
		return nil, nil, online.Config{}, err
	}
	ocfg := online.Config{Policy: online.LWF, Split: online.Split{Mode: online.SplitReserved, OnlineChannels: 1}}
	return prog, stream, ocfg, nil
}

// hybridMatrixSpec is the committed shape of the coupled-matrix sample.
func hybridMatrixSpec() (experiments.Params, []float64, []online.Split) {
	p := experiments.DefaultParams()
	p.Pages, p.Groups, p.Requests = 80, 4, 400
	rates := []float64{2, 8}
	splits := []online.Split{
		{Mode: online.SplitReserved, OnlineChannels: 1},
		{Mode: online.SplitPureOnline},
	}
	return p, rates, splits
}

// runHybridBench measures the online hybrid tier and writes the
// BENCH_hybrid.json trajectory. Its load-bearing assertions run in-process
// before any number is committed: the sharded parallel engine must be
// bit-identical to the serial reference at several worker counts, and a
// recorded run must pass the brute-force conservation and push-integrity
// oracles. Only then are the wall-time samples and series checksums
// compared against the baseline.
func runHybridBench(cfg hybridConfig, out io.Writer) error {
	rep := &perf.Report{
		Schema:   perf.SchemaVersion,
		GOOS:     runtime.GOOS,
		GOARCH:   runtime.GOARCH,
		MaxProcs: runtime.GOMAXPROCS(0),
	}
	add := func(name string, r testing.BenchmarkResult, checksum string) {
		rep.Samples = append(rep.Samples, perf.Sample{
			Name:        name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: int64(r.AllocsPerOp()),
			BytesPerOp:  int64(r.AllocedBytesPerOp()),
			Checksum:    checksum,
		})
		fmt.Fprintf(out, "%-24s %12.0f ns/op %10d allocs/op %12d B/op  series %s\n",
			name, rep.Samples[len(rep.Samples)-1].NsPerOp, r.AllocsPerOp(), r.AllocedBytesPerOp(), checksum)
	}

	prog, stream, ocfg, err := hybridBenchInstance()
	if err != nil {
		return err
	}

	// Bit-identity gate: the serial reference and the parallel engine must
	// agree in every float and in the trace digest before we benchmark it.
	ref, err := online.RunSerial(prog, stream, ocfg)
	if err != nil {
		return err
	}
	refSum := perf.SeriesChecksum(onlineSeries(ref))
	for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		wcfg := ocfg
		wcfg.Workers = workers
		got, err := online.Run(prog, stream, wcfg)
		if err != nil {
			return err
		}
		if got.TraceDigest != ref.TraceDigest || perf.SeriesChecksum(onlineSeries(got)) != refSum {
			return fmt.Errorf("hybrid: online run at %d workers diverged from the serial reference (%016x vs %016x)",
				workers, got.TraceDigest, ref.TraceDigest)
		}
	}
	fmt.Fprintf(out, "serial/parallel identity holds across worker counts: digest %016x, series %s\n",
		ref.TraceDigest, refSum)

	// Oracle gate on a recorded small run: every flow equals the first
	// on-air instant, no airing preempts or duplicates the push grid.
	smallGS, err := workload.GroupSet(workload.Uniform, 4, 80, 2, 2)
	if err != nil {
		return err
	}
	smallProg, _, err := pamad.Build(smallGS, 3)
	if err != nil {
		return err
	}
	smallReqs, err := workload.GeneratePoissonRequests(smallGS, workload.PoissonConfig{
		RequestConfig: workload.RequestConfig{Count: 2000, Seed: 10},
		Rate:          8,
	})
	if err != nil {
		return err
	}
	srec, err := online.Run(smallProg, workload.SliceStream(smallReqs), online.Config{
		Policy: online.LWF, Split: online.Split{Mode: online.SplitReserved, OnlineChannels: 1},
		RecordFlows: true,
	})
	if err != nil {
		return err
	}
	pages := make([]core.PageID, len(smallReqs))
	arrivals := make([]float64, len(smallReqs))
	for i, r := range smallReqs {
		pages[i], arrivals[i] = r.Page, r.Arrival
	}
	airings := make([]conformance.SlotAiring, len(srec.Airings))
	for i, a := range srec.Airings {
		airings[i] = conformance.SlotAiring{Slot: a.Slot, Channel: a.Channel, Page: a.Page}
	}
	rows := smallProg.Channels()
	if err := conformance.OnlineConservation(smallProg, rows, airings, pages, arrivals, srec.Flows); err != nil {
		return fmt.Errorf("hybrid: conservation oracle: %w", err)
	}
	if err := conformance.PushIntegrity(smallProg, rows, airings); err != nil {
		return fmt.Errorf("hybrid: push-integrity oracle: %w", err)
	}
	fmt.Fprintf(out, "conservation and push-integrity oracles hold on %d recorded requests\n", len(smallReqs))

	var res *online.Result
	add("OnlineLWFReserved", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			r, err := online.Run(prog, stream, ocfg)
			if err != nil {
				b.Fatal(err)
			}
			res = r
		}
	}), refSum)
	if perf.SeriesChecksum(onlineSeries(res)) != refSum {
		return fmt.Errorf("hybrid: benchmark run diverged from the reference series")
	}

	// The full coupled matrix: arrival intensity x split x policy through
	// hybrid.Run, fingerprinted as one series.
	p, rates, splits := hybridMatrixSpec()
	first, err := experiments.HybridMatrix(p, workload.Uniform, rates, splits, online.Policies())
	if err != nil {
		return err
	}
	matrixSum := perf.SeriesChecksum(experiments.HybridSeries(first))
	var pts []experiments.HybridPoint
	add("HybridMatrix", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m, err := experiments.HybridMatrix(p, workload.Uniform, rates, splits, online.Policies())
			if err != nil {
				b.Fatal(err)
			}
			pts = m
		}
	}), matrixSum)
	if perf.SeriesChecksum(experiments.HybridSeries(pts)) != matrixSum {
		return fmt.Errorf("hybrid: matrix is not deterministic across runs")
	}

	return writeAndCompare(rep, cfg.out, cfg.baseline, benchConfig{
		slowdown: cfg.slowdown, allocs: cfg.allocs,
	}, out)
}
