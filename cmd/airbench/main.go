// Command airbench regenerates the evaluation artifacts of
// "Time-Constrained Service on Air" (ICDCS 2005): each figure and table of
// the paper's Section 5, plus the ablations listed in DESIGN.md.
//
//	airbench -experiment fig5 -dist uniform        # one Figure 5 subplot
//	airbench -experiment fig5 -dist all            # all four subplots
//	airbench -experiment fig3                      # group-size shapes
//	airbench -experiment fig4                      # parameter table
//	airbench -experiment knee                      # the 1/5-of-minimum rule
//	airbench -experiment tiebreak -dist uniform    # ablation A1
//	airbench -experiment modelcheck -dist uniform  # ablation A3
//	airbench -experiment optgap -dist all          # PAMAD-vs-OPT gap
//	airbench -experiment optprune -dist uniform    # OPT pruning ablation
//	airbench -experiment all                       # everything above
//	airbench -chaos -chaosbaseline BENCH_chaos.json  # chaos determinism gate
//	airbench -netcast -netcastbaseline BENCH_netcast.json  # fan-out engine gate
//	airbench -optscale -optscalebaseline BENCH_optscale.json  # PTAS scaling gate
//	airbench -replan -replanbaseline BENCH_replan.json  # incremental replan gate
//	airbench -hybrid -hybridbaseline BENCH_hybrid.json  # online hybrid tier gate
//
// -csv switches Figure 5 output to CSV for plotting; -stride k samples
// every k-th channel count to trade resolution for speed.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	"tcsa/internal/experiments"
	"tcsa/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "airbench:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("airbench", flag.ContinueOnError)
	experiment := fs.String("experiment", "fig5", "fig2|fig3|fig4|fig5|knee|tiebreak|modelcheck|optgap|optprune|baselines|fairness|all")
	dist := fs.String("dist", "all", "uniform|normal|lskew|sskew|all")
	requests := fs.Int("requests", 3000, "requests per measured point (paper: 3000)")
	seed := fs.Int64("seed", 1, "master seed")
	stride := fs.Int("stride", 1, "sample every k-th channel count")
	skipOPT := fs.Bool("skipopt", false, "skip the OPT series in fig5")
	csv := fs.Bool("csv", false, "emit CSV instead of tables (fig5 only)")
	plot := fs.Bool("plot", false, "append an ASCII chart per fig5 subplot")
	workers := fs.Int("parallel", 0, "fan fig5 channel counts over this many workers (0 = GOMAXPROCS)")
	bench := fs.Bool("bench", false, "measure the hot paths and write a benchmark-trajectory report instead of running experiments")
	chaosBench := fs.Bool("chaos", false, "measure the chaos fault-injection engine (zero-fault identity + canonical fault mix) and write a chaos trajectory report")
	chaosout := fs.String("chaosout", "BENCH_chaos.json", "report path for -chaos")
	chaosbaseline := fs.String("chaosbaseline", "", "prior -chaos report to compare against; drift fails the run")
	netcastBench := fs.Bool("netcast", false, "measure the fan-out engine (ring publish, loadgen identities, UDP slot/wire paths) and write a fan-out trajectory report")
	netcastout := fs.String("netcastout", "BENCH_netcast.json", "report path for -netcast")
	netcastbaseline := fs.String("netcastbaseline", "", "prior -netcast report to compare against; drift fails the run")
	optscaleBench := fs.Bool("optscale", false, "measure the (1+eps) PTAS optimizer against branch-and-bound along the scaling ladder and write a trajectory report")
	optscaleout := fs.String("optscaleout", "BENCH_optscale.json", "report path for -optscale")
	optscalebaseline := fs.String("optscalebaseline", "", "prior -optscale report to compare against; drift fails the run")
	hybridBench := fs.Bool("hybrid", false, "measure the online hybrid tier (serial/parallel bit-identity, conservation oracles, intensity x split matrix) and write a trajectory report")
	hybridout := fs.String("hybridout", "BENCH_hybrid.json", "report path for -hybrid")
	hybridbaseline := fs.String("hybridbaseline", "", "prior -hybrid report to compare against; drift fails the run")
	replanBench := fs.Bool("replan", false, "measure the incremental replan engine against a from-scratch rebuild (single-page deltas at 10^5 pages, >=10x gate) and write a trajectory report")
	replanout := fs.String("replanout", "BENCH_replan.json", "report path for -replan")
	replanbaseline := fs.String("replanbaseline", "", "prior -replan report to compare against; drift fails the run")
	benchout := fs.String("benchout", "BENCH_sweep.json", "report path for -bench")
	baseline := fs.String("baseline", "", "prior -bench report to compare against; regressions fail the run")
	buildout := fs.String("buildout", "BENCH_build.json", "construction-engine report path for -bench (empty = skip)")
	buildbaseline := fs.String("buildbaseline", "", "prior construction-engine report to compare against")
	maxSlowdown := fs.Float64("maxslowdown", 0, "fail -baseline comparison when ns/op grows beyond this factor (0 = ignore wall time)")
	maxAllocGrowth := fs.Float64("maxallocgrowth", 1.5, "fail -baseline comparison when allocs/op grows beyond this factor (0 = ignore)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	p := experiments.DefaultParams()
	p.Requests = *requests
	p.Seed = *seed
	p.ChannelStride = *stride
	p.SkipOPT = *skipOPT

	dists, err := parseDists(*dist)
	if err != nil {
		return err
	}
	if *chaosBench {
		return runChaosBench(p, chaosConfig{
			out:      *chaosout,
			baseline: *chaosbaseline,
			slowdown: *maxSlowdown,
			allocs:   *maxAllocGrowth,
		}, out)
	}
	if *hybridBench {
		return runHybridBench(hybridConfig{
			out:      *hybridout,
			baseline: *hybridbaseline,
			slowdown: *maxSlowdown,
			allocs:   *maxAllocGrowth,
		}, out)
	}
	if *replanBench {
		return runReplanBench(replanConfig{
			out:      *replanout,
			baseline: *replanbaseline,
			slowdown: *maxSlowdown,
			allocs:   *maxAllocGrowth,
		}, out)
	}
	if *optscaleBench {
		return runOptscaleBench(optscaleCases(), optscaleConfig{
			out:      *optscaleout,
			baseline: *optscalebaseline,
			slowdown: *maxSlowdown,
			allocs:   *maxAllocGrowth,
		}, out)
	}
	if *netcastBench {
		return runNetcastBench(p, netcastConfig{
			out:      *netcastout,
			baseline: *netcastbaseline,
			slowdown: *maxSlowdown,
			allocs:   *maxAllocGrowth,
		}, out)
	}
	if *bench {
		return runBench(p, dists, benchConfig{
			out:           *benchout,
			baseline:      *baseline,
			buildOut:      *buildout,
			buildBaseline: *buildbaseline,
			slowdown:      *maxSlowdown,
			allocs:        *maxAllocGrowth,
		}, out)
	}
	ctx := context.Background()

	runOne := func(name string) error {
		switch name {
		case "fig2":
			s, err := experiments.Figure2()
			if err != nil {
				return err
			}
			fmt.Fprintln(out, s)
		case "fig3":
			rows, err := experiments.Figure3(p)
			if err != nil {
				return err
			}
			fmt.Fprintln(out, experiments.RenderFigure3(rows))
		case "fig4":
			fmt.Fprintln(out, experiments.RenderFigure4(p))
		case "fig5":
			for _, d := range dists {
				var s *experiments.Fig5Series
				var err error
				if *workers > 0 {
					s, err = experiments.Figure5Parallel(ctx, p, d, *workers)
				} else {
					s, err = experiments.Figure5(ctx, p, d)
				}
				if err != nil {
					return err
				}
				if *csv {
					fmt.Fprint(out, s.CSV())
				} else {
					fmt.Fprintln(out, s.Table())
				}
				if *plot {
					fmt.Fprintln(out, s.Plot(64, 16))
				}
			}
		case "knee":
			var results []*experiments.KneeResult
			for _, d := range dists {
				s, err := experiments.Figure5(ctx, p, d)
				if err != nil {
					return err
				}
				k, err := experiments.Knee(s, 1)
				if err != nil {
					return err
				}
				results = append(results, k)
			}
			fmt.Fprintln(out, experiments.RenderKnee(results))
		case "tiebreak":
			for _, d := range dists {
				pts, err := experiments.AblateTieBreak(p, d)
				if err != nil {
					return err
				}
				fmt.Fprintln(out, experiments.RenderTieBreak(d, pts))
			}
		case "modelcheck":
			for _, d := range dists {
				pts, err := experiments.ModelCheck(p, d)
				if err != nil {
					return err
				}
				fmt.Fprintln(out, experiments.RenderModelCheck(d, pts))
			}
		case "baselines":
			for _, d := range dists {
				pts, err := experiments.AblateBaselines(p, d)
				if err != nil {
					return err
				}
				fmt.Fprintln(out, experiments.RenderBaselines(d, pts))
			}
		case "fairness":
			for _, d := range dists {
				pts, err := experiments.Fairness(p, d)
				if err != nil {
					return err
				}
				fmt.Fprintln(out, experiments.RenderFairness(d, pts))
			}
		case "optprune":
			for _, d := range dists {
				pts, err := experiments.AblateOptPruning(ctx, p, d)
				if err != nil {
					return err
				}
				fmt.Fprintln(out, experiments.RenderOptPrune(d, pts))
			}
		case "optgap":
			var gaps []*experiments.OptGap
			for _, d := range dists {
				g, err := experiments.AblateOptGap(ctx, p, d)
				if err != nil {
					return err
				}
				gaps = append(gaps, g)
			}
			fmt.Fprintln(out, experiments.RenderOptGap(gaps))
		default:
			return fmt.Errorf("unknown experiment %q", name)
		}
		return nil
	}

	if *experiment == "all" {
		for _, name := range []string{"fig4", "fig3", "fig2", "fig5", "knee", "tiebreak", "modelcheck", "optgap", "optprune", "baselines", "fairness"} {
			if err := runOne(name); err != nil {
				return err
			}
		}
		return nil
	}
	return runOne(*experiment)
}

func parseDists(s string) ([]workload.Distribution, error) {
	if s == "all" {
		return workload.Distributions(), nil
	}
	d, err := workload.ParseDistribution(s)
	if err != nil {
		return nil, err
	}
	return []workload.Distribution{d}, nil
}
