package main

import (
	"fmt"
	"io"
	"runtime"
	"testing"

	"tcsa/internal/chaos"
	"tcsa/internal/conformance"
	"tcsa/internal/core"
	"tcsa/internal/experiments"
	"tcsa/internal/perf"
	"tcsa/internal/sim"
	"tcsa/internal/susc"
	"tcsa/internal/workload"
)

// chaosConfig carries the -chaos mode flags.
type chaosConfig struct {
	out      string // -chaosout: where to write the report
	baseline string // -chaosbaseline: prior report to compare against ("" = none)
	slowdown float64
	allocs   float64
}

// chaosFaultedConfig is the canonical all-classes fault mix the committed
// BENCH_chaos.json baseline pins: every fault class active, plus the
// graceful-degradation replan. Changing any constant here is a deliberate
// baseline break.
func chaosFaultedConfig(seed int64) chaos.Config {
	return chaos.Config{
		Seed:       seed,
		Loss:       0.10,
		Corrupt:    0.02,
		Churn:      0.05,
		Jitter:     0.25,
		StallEvery: 64,
		StallFor:   4,
		Burst:      &chaos.BurstConfig{GoodToBad: 0.05, BadToGood: 0.25, LossBad: 0.8},
		Replan:     true,
	}
}

// runChaosBench measures the chaos engine on the paper's default instance
// and writes the BENCH_chaos.json trajectory. Its load-bearing assertion
// is the zero-fault identity: a chaos run with no faults enabled must
// fingerprint bit-for-bit identically to sim.MeasureStream, which is
// checked here directly and then pinned across commits by the checksum in
// the committed baseline.
func runChaosBench(p experiments.Params, cfg chaosConfig, out io.Writer) error {
	rep := &perf.Report{
		Schema:   perf.SchemaVersion,
		GOOS:     runtime.GOOS,
		GOARCH:   runtime.GOARCH,
		MaxProcs: runtime.GOMAXPROCS(0),
	}
	prog, err := paperProgram(p)
	if err != nil {
		return err
	}
	analysis := core.Analyze(prog)
	stream, err := workload.NewStream(prog.GroupSet(), prog.Length(), workload.RequestConfig{
		Count: 2 * workload.ShardSize,
		Seed:  p.Seed,
	})
	if err != nil {
		return err
	}

	add := func(name string, r testing.BenchmarkResult, checksum string) {
		rep.Samples = append(rep.Samples, perf.Sample{
			Name:        name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: int64(r.AllocsPerOp()),
			BytesPerOp:  int64(r.AllocedBytesPerOp()),
			Checksum:    checksum,
		})
		fmt.Fprintf(out, "%-24s %12.0f ns/op %10d allocs/op %12d B/op  series %s\n",
			name, rep.Samples[len(rep.Samples)-1].NsPerOp, r.AllocsPerOp(), r.AllocedBytesPerOp(), checksum)
	}

	// The reference the zero-fault identity is checked against.
	measured, err := sim.MeasureStream(analysis, stream)
	if err != nil {
		return err
	}
	measureSum := perf.SeriesChecksum(metricsFloats(measured))

	var zero *chaos.Result
	add("ChaosZeroFault", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			r, err := chaos.RunParallel(analysis, stream, chaos.Config{Seed: p.Seed}, 0)
			if err != nil {
				b.Fatal(err)
			}
			zero = r
		}
	}), perf.SeriesChecksum(metricsFloats(&zero.Metrics)))
	zeroSum := rep.Samples[len(rep.Samples)-1].Checksum
	if zeroSum != measureSum {
		return fmt.Errorf("chaos: zero-fault run drifted from sim.MeasureStream: %s != %s",
			zeroSum, measureSum)
	}
	if zero.Ledger != (chaos.Ledger{}) {
		return fmt.Errorf("chaos: zero-fault run registered faults: ledger %+v", zero.Ledger)
	}
	fmt.Fprintf(out, "zero-fault identity holds: chaos == MeasureStream (%s)\n", zeroSum)

	// The miss-free law: on a SUSC-valid program (sufficient channels),
	// zero faults must mean zero deadline misses. The sweep instance above
	// runs PAMAD at 1/5 of minimum, where misses are the measurement, so
	// the law is checked on the same group set scheduled validly.
	valid, err := susc.BuildMinimal(prog.GroupSet())
	if err != nil {
		return err
	}
	vres, err := chaos.RunParallel(core.Analyze(valid), stream, chaos.Config{Seed: p.Seed}, 0)
	if err != nil {
		return err
	}
	if err := conformance.MissFreeLaw(valid, vres.Misses); err != nil {
		return err
	}
	fmt.Fprintf(out, "miss-free law holds: SUSC-valid program, zero faults, %d misses\n", vres.Misses)

	var faulted *chaos.Result
	add("ChaosFaulted", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			r, err := chaos.RunParallel(analysis, stream, chaosFaultedConfig(p.Seed), 0)
			if err != nil {
				b.Fatal(err)
			}
			faulted = r
		}
	}), perf.SeriesChecksum(chaosFloats(faulted)))
	fmt.Fprintf(out, "faulted run: misses %d (ratio %.4f), effective loss %.4f, digest %016x\n",
		faulted.Misses, faulted.MissRatio, faulted.EffectiveLoss, faulted.TraceDigest)

	return writeAndCompare(rep, cfg.out, cfg.baseline, benchConfig{
		slowdown: cfg.slowdown, allocs: cfg.allocs,
	}, out)
}

// chaosFloats flattens a chaos result into the float sequence its
// checksum fingerprints: the measurement scalars, the deadline-miss
// accounting, every ledger counter, the trace digest (split into exact
// 32-bit halves), and the replan outcome when one happened. All of these
// are worker-count-independent by the engine's determinism contract.
func chaosFloats(r *chaos.Result) []float64 {
	if r == nil {
		return nil
	}
	vals := metricsFloats(&r.Metrics)
	vals = append(vals,
		float64(r.Misses), r.Delay.Max,
		float64(r.Ledger.LostDeliveries), float64(r.Ledger.CorruptSkips),
		float64(r.Ledger.StallSkips), float64(r.Ledger.ChurnSkips),
		float64(r.Ledger.Retries), float64(r.Ledger.Unserved),
		r.EffectiveLoss,
		float64(r.TraceDigest>>32), float64(r.TraceDigest&0xffffffff),
	)
	if r.Replan != nil {
		vals = append(vals, float64(r.Replan.EffectiveChannels),
			float64(r.Replan.MajorCycle), r.Replan.AnalyticDelay)
		for _, s := range r.Replan.Frequencies {
			vals = append(vals, float64(s))
		}
	}
	return vals
}
