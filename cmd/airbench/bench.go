package main

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"testing"

	"tcsa/internal/core"
	"tcsa/internal/delaymodel"
	"tcsa/internal/experiments"
	"tcsa/internal/opt"
	"tcsa/internal/pamad"
	"tcsa/internal/perf"
	"tcsa/internal/sim"
	"tcsa/internal/susc"
	"tcsa/internal/workload"
)

// benchConfig carries the -bench mode flags.
type benchConfig struct {
	out           string  // -benchout: where to write the report
	baseline      string  // -baseline: prior report to compare against ("" = none)
	buildOut      string  // -buildout: where to write the construction report ("" = skip)
	buildBaseline string  // -buildbaseline: prior construction report ("" = none)
	slowdown      float64 // -maxslowdown: ns/op bound for the comparison (<=0 off)
	allocs        float64 // -maxallocgrowth: allocs/op bound (<=0 off)
}

// runBench measures the analysis and sweep hot paths with
// testing.Benchmark, fingerprints the Figure 5 series each sweep produces,
// and writes the perf.Report to cfg.out. With a baseline it then compares
// and fails on any regression, making the benchmark trajectory a CI gate.
func runBench(p experiments.Params, dists []workload.Distribution, cfg benchConfig, out io.Writer) error {
	rep := &perf.Report{
		Schema:   perf.SchemaVersion,
		GOOS:     runtime.GOOS,
		GOARCH:   runtime.GOARCH,
		MaxProcs: runtime.GOMAXPROCS(0),
	}

	prog, err := paperProgram(p)
	if err != nil {
		return err
	}
	add := func(name string, r testing.BenchmarkResult, checksum string) {
		rep.Samples = append(rep.Samples, perf.Sample{
			Name:        name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: int64(r.AllocsPerOp()),
			BytesPerOp:  int64(r.AllocedBytesPerOp()),
			Checksum:    checksum,
		})
		fmt.Fprintf(out, "%-24s %12.0f ns/op %10d allocs/op %12d B/op",
			name, rep.Samples[len(rep.Samples)-1].NsPerOp, r.AllocsPerOp(), r.AllocedBytesPerOp())
		if checksum != "" {
			fmt.Fprintf(out, "  series %s", checksum)
		}
		fmt.Fprintln(out)
	}

	add("AppearanceIndex", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			core.BuildAppearanceIndex(prog)
		}
	}), "")
	var analysis *core.Analysis
	add("Analyze", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			analysis = core.Analyze(prog)
		}
	}), perf.SeriesChecksum([]float64{analysisFingerprint(analysis)}))

	// The measurement engine over a multi-shard stream: serial and parallel
	// samples share one generated stream, and by the engine's determinism
	// contract they must fingerprint identically.
	stream, err := workload.NewStream(prog.GroupSet(), prog.Length(), workload.RequestConfig{
		Count: 2 * workload.ShardSize,
		Seed:  p.Seed,
	})
	if err != nil {
		return err
	}
	var measured *sim.Metrics
	add("Measure", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m, err := sim.MeasureStream(analysis, stream)
			if err != nil {
				b.Fatal(err)
			}
			measured = m
		}
	}), perf.SeriesChecksum(metricsFloats(measured)))
	add("MeasureParallel", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m, err := sim.MeasureParallel(analysis, stream, 0)
			if err != nil {
				b.Fatal(err)
			}
			measured = m
		}
	}), perf.SeriesChecksum(metricsFloats(measured)))

	ctx := context.Background()
	for _, dist := range dists {
		var series *experiments.Fig5Series
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s, err := experiments.Figure5(ctx, p, dist)
				if err != nil {
					b.Fatal(err)
				}
				series = s
			}
		})
		if series == nil {
			return fmt.Errorf("bench: Figure5 %v produced no series", dist)
		}
		add("Figure5/"+dist.String(), r, perf.SeriesChecksum(seriesFloats(series)))
	}

	if err := writeAndCompare(rep, cfg.out, cfg.baseline, cfg, out); err != nil {
		return err
	}
	if cfg.buildOut == "" {
		return nil
	}
	buildRep, err := runBuildBench(p, out)
	if err != nil {
		return err
	}
	return writeAndCompare(buildRep, cfg.buildOut, cfg.buildBaseline, cfg, out)
}

// writeAndCompare persists one report and gates it against its baseline.
func writeAndCompare(rep *perf.Report, path, baseline string, cfg benchConfig, out io.Writer) error {
	if err := rep.WriteFile(path); err != nil {
		return err
	}
	fmt.Fprintf(out, "wrote %s (%d samples)\n", path, len(rep.Samples))

	if baseline == "" {
		return nil
	}
	base, err := perf.ReadFile(baseline)
	if err != nil {
		return fmt.Errorf("bench: read baseline: %w", err)
	}
	regs := perf.Compare(base, rep, perf.Options{MaxSlowdown: cfg.slowdown, MaxAllocGrowth: cfg.allocs})
	if len(regs) == 0 {
		fmt.Fprintf(out, "no regressions against %s\n", baseline)
		return nil
	}
	for _, r := range regs {
		fmt.Fprintln(out, "REGRESSION:", r)
	}
	return fmt.Errorf("bench: %d regression(s) against %s", len(regs), baseline)
}

// runBuildBench measures the construction engine — the three schedulers'
// build paths — on the paper's default instance, fingerprinting each
// produced grid (and OPT's result vector) so the trajectory also detects
// silent output drift, not just slowdowns.
func runBuildBench(p experiments.Params, out io.Writer) (*perf.Report, error) {
	rep := &perf.Report{
		Schema:   perf.SchemaVersion,
		GOOS:     runtime.GOOS,
		GOARCH:   runtime.GOARCH,
		MaxProcs: runtime.GOMAXPROCS(0),
	}
	gs, err := p.Instance(workload.Uniform)
	if err != nil {
		return nil, err
	}
	n := core.CeilDiv(gs.MinChannels(), 5)
	add := func(name string, r testing.BenchmarkResult, checksum string) {
		rep.Samples = append(rep.Samples, perf.Sample{
			Name:        name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: int64(r.AllocsPerOp()),
			BytesPerOp:  int64(r.AllocedBytesPerOp()),
			Checksum:    checksum,
		})
		fmt.Fprintf(out, "%-24s %12.0f ns/op %10d allocs/op %12d B/op  series %s\n",
			name, rep.Samples[len(rep.Samples)-1].NsPerOp, r.AllocsPerOp(), r.AllocedBytesPerOp(), checksum)
	}

	var suscProg *core.Program
	add("SUSCBuild", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			prog, err := susc.BuildMinimal(gs)
			if err != nil {
				b.Fatal(err)
			}
			suscProg = prog
		}
	}), perf.SeriesChecksum(gridFloats(suscProg)))

	var pamadProg *core.Program
	add("PAMADBuild", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			prog, _, err := pamad.Build(gs, n)
			if err != nil {
				b.Fatal(err)
			}
			pamadProg = prog
		}
	}), perf.SeriesChecksum(gridFloats(pamadProg)))

	ctx := context.Background()
	var optRes *opt.Result
	add("OPTSearch", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := opt.Search(ctx, gs, n, opt.Options{MaxFactor: p.OptMaxFactor})
			if err != nil {
				b.Fatal(err)
			}
			optRes = res
		}
	}), perf.SeriesChecksum(optFloats(optRes)))

	// OPT-quality at paper-scale x100: branch-and-bound cannot touch the
	// 10^5-page instance, but the (1+eps) PTAS can, so the Figure-5 OPT
	// curve extends there through opt.Approx at eps=0.01. Each sampled
	// channel fraction records the PTAS delay next to PAMAD's analytic D'
	// on the same frequencies domain; the checksum pins both so either
	// engine drifting silently breaks the baseline.
	big, err := p.ScaledInstance(workload.Uniform, 100)
	if err != nil {
		return nil, err
	}
	bigMin := big.MinChannels()
	var quality []float64
	add("ApproxQualityX100", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			quality = quality[:0]
			for _, div := range []int{5, 3, 2} {
				nBig := core.CeilDiv(bigMin, div)
				res, err := opt.Approx(ctx, big, nBig, opt.ApproxOptions{Eps: 0.01})
				if err != nil {
					b.Fatal(err)
				}
				sp, _, err := pamad.Frequencies(big, nBig)
				if err != nil {
					b.Fatal(err)
				}
				quality = append(quality, float64(nBig), res.Delay,
					delaymodel.GroupDelay(big, sp, nBig))
			}
		}
	}), perf.SeriesChecksum(quality))
	for i := 0; i+2 < len(quality); i += 3 {
		fmt.Fprintf(out, "  x100 quality @%4.0f channels: PTAS D' %10.2f  PAMAD D' %10.2f  gap %.4f\n",
			quality[i], quality[i+1], quality[i+2], quality[i+2]/quality[i+1])
	}
	return rep, nil
}

// gridFloats flattens a program into the float sequence its checksum
// fingerprints: the shape, the fill count, and every cell in row-major
// order, so any placement drift changes the series.
func gridFloats(prog *core.Program) []float64 {
	if prog == nil {
		return nil
	}
	vals := make([]float64, 0, 3+prog.Channels()*prog.Length())
	vals = append(vals, float64(prog.Channels()), float64(prog.Length()), float64(prog.Filled()))
	for ch := 0; ch < prog.Channels(); ch++ {
		for slot := 0; slot < prog.Length(); slot++ {
			vals = append(vals, float64(prog.At(ch, slot)))
		}
	}
	return vals
}

// optFloats fingerprints an OPT result by its deterministic fields (delay
// and frequencies; Evaluated varies with worker timing).
func optFloats(res *opt.Result) []float64 {
	if res == nil {
		return nil
	}
	vals := []float64{res.Delay}
	for _, s := range res.Frequencies {
		vals = append(vals, float64(s))
	}
	return vals
}

// paperProgram builds the instance the micro-benchmarks measure: the
// paper's default table for the sweep's distribution selection is
// irrelevant here, so it pins uniform at 1/5 of the minimum channels (the
// paper's knee), matching the repository benchmarks and allocation guards.
func paperProgram(p experiments.Params) (*core.Program, error) {
	gs, err := p.Instance(workload.Uniform)
	if err != nil {
		return nil, err
	}
	n := core.CeilDiv(gs.MinChannels(), 5)
	prog, _, err := pamad.Build(gs, n)
	if err != nil {
		return nil, err
	}
	return prog, nil
}

// analysisFingerprint reduces an analysis to the scalar its users consume.
func analysisFingerprint(a *core.Analysis) float64 {
	if a == nil {
		return 0
	}
	return a.AvgDelay()
}

// metricsFloats flattens a measurement into the float sequence its
// checksum fingerprints: the exact scalars plus the sketch quantiles, all
// of which the engine guarantees are worker-count-independent.
func metricsFloats(m *sim.Metrics) []float64 {
	if m == nil {
		return nil
	}
	return []float64{
		float64(m.Requests), m.AvgWait, m.AvgDelay, m.MissRatio,
		m.Wait.P50, m.Wait.P95, m.Wait.P99,
		m.Delay.P50, m.Delay.P95, m.Delay.P99,
	}
}

// seriesFloats flattens a Figure 5 series into the float sequence its
// checksum fingerprints: every numeric field of every point, in order.
func seriesFloats(s *experiments.Fig5Series) []float64 {
	vals := make([]float64, 0, 7*len(s.Points))
	for _, pt := range s.Points {
		vals = append(vals, float64(pt.Channels),
			pt.PAMAD, pt.MPB, pt.OPT,
			pt.PAMADExact, pt.MPBExact, pt.OPTExact)
	}
	return vals
}
