package main

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"testing"

	"tcsa/internal/core"
	"tcsa/internal/experiments"
	"tcsa/internal/pamad"
	"tcsa/internal/perf"
	"tcsa/internal/sim"
	"tcsa/internal/workload"
)

// benchConfig carries the -bench mode flags.
type benchConfig struct {
	out      string  // -benchout: where to write the report
	baseline string  // -baseline: prior report to compare against ("" = none)
	slowdown float64 // -maxslowdown: ns/op bound for the comparison (<=0 off)
	allocs   float64 // -maxallocgrowth: allocs/op bound (<=0 off)
}

// runBench measures the analysis and sweep hot paths with
// testing.Benchmark, fingerprints the Figure 5 series each sweep produces,
// and writes the perf.Report to cfg.out. With a baseline it then compares
// and fails on any regression, making the benchmark trajectory a CI gate.
func runBench(p experiments.Params, dists []workload.Distribution, cfg benchConfig, out io.Writer) error {
	rep := &perf.Report{
		Schema:   perf.SchemaVersion,
		GOOS:     runtime.GOOS,
		GOARCH:   runtime.GOARCH,
		MaxProcs: runtime.GOMAXPROCS(0),
	}

	prog, err := paperProgram(p)
	if err != nil {
		return err
	}
	add := func(name string, r testing.BenchmarkResult, checksum string) {
		rep.Samples = append(rep.Samples, perf.Sample{
			Name:        name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: int64(r.AllocsPerOp()),
			BytesPerOp:  int64(r.AllocedBytesPerOp()),
			Checksum:    checksum,
		})
		fmt.Fprintf(out, "%-24s %12.0f ns/op %10d allocs/op %12d B/op",
			name, rep.Samples[len(rep.Samples)-1].NsPerOp, r.AllocsPerOp(), r.AllocedBytesPerOp())
		if checksum != "" {
			fmt.Fprintf(out, "  series %s", checksum)
		}
		fmt.Fprintln(out)
	}

	add("AppearanceIndex", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			core.BuildAppearanceIndex(prog)
		}
	}), "")
	var analysis *core.Analysis
	add("Analyze", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			analysis = core.Analyze(prog)
		}
	}), perf.SeriesChecksum([]float64{analysisFingerprint(analysis)}))

	// The measurement engine over a multi-shard stream: serial and parallel
	// samples share one generated stream, and by the engine's determinism
	// contract they must fingerprint identically.
	stream, err := workload.NewStream(prog.GroupSet(), prog.Length(), workload.RequestConfig{
		Count: 2 * workload.ShardSize,
		Seed:  p.Seed,
	})
	if err != nil {
		return err
	}
	var measured *sim.Metrics
	add("Measure", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m, err := sim.MeasureStream(analysis, stream)
			if err != nil {
				b.Fatal(err)
			}
			measured = m
		}
	}), perf.SeriesChecksum(metricsFloats(measured)))
	add("MeasureParallel", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m, err := sim.MeasureParallel(analysis, stream, 0)
			if err != nil {
				b.Fatal(err)
			}
			measured = m
		}
	}), perf.SeriesChecksum(metricsFloats(measured)))

	ctx := context.Background()
	for _, dist := range dists {
		var series *experiments.Fig5Series
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s, err := experiments.Figure5(ctx, p, dist)
				if err != nil {
					b.Fatal(err)
				}
				series = s
			}
		})
		if series == nil {
			return fmt.Errorf("bench: Figure5 %v produced no series", dist)
		}
		add("Figure5/"+dist.String(), r, perf.SeriesChecksum(seriesFloats(series)))
	}

	if err := rep.WriteFile(cfg.out); err != nil {
		return err
	}
	fmt.Fprintf(out, "wrote %s (%d samples)\n", cfg.out, len(rep.Samples))

	if cfg.baseline == "" {
		return nil
	}
	base, err := perf.ReadFile(cfg.baseline)
	if err != nil {
		return fmt.Errorf("bench: read baseline: %w", err)
	}
	regs := perf.Compare(base, rep, perf.Options{MaxSlowdown: cfg.slowdown, MaxAllocGrowth: cfg.allocs})
	if len(regs) == 0 {
		fmt.Fprintf(out, "no regressions against %s\n", cfg.baseline)
		return nil
	}
	for _, r := range regs {
		fmt.Fprintln(out, "REGRESSION:", r)
	}
	return fmt.Errorf("bench: %d regression(s) against %s", len(regs), cfg.baseline)
}

// paperProgram builds the instance the micro-benchmarks measure: the
// paper's default table for the sweep's distribution selection is
// irrelevant here, so it pins uniform at 1/5 of the minimum channels (the
// paper's knee), matching the repository benchmarks and allocation guards.
func paperProgram(p experiments.Params) (*core.Program, error) {
	gs, err := p.Instance(workload.Uniform)
	if err != nil {
		return nil, err
	}
	n := core.CeilDiv(gs.MinChannels(), 5)
	prog, _, err := pamad.Build(gs, n)
	if err != nil {
		return nil, err
	}
	return prog, nil
}

// analysisFingerprint reduces an analysis to the scalar its users consume.
func analysisFingerprint(a *core.Analysis) float64 {
	if a == nil {
		return 0
	}
	return a.AvgDelay()
}

// metricsFloats flattens a measurement into the float sequence its
// checksum fingerprints: the exact scalars plus the sketch quantiles, all
// of which the engine guarantees are worker-count-independent.
func metricsFloats(m *sim.Metrics) []float64 {
	if m == nil {
		return nil
	}
	return []float64{
		float64(m.Requests), m.AvgWait, m.AvgDelay, m.MissRatio,
		m.Wait.P50, m.Wait.P95, m.Wait.P99,
		m.Delay.P50, m.Delay.P95, m.Delay.P99,
	}
}

// seriesFloats flattens a Figure 5 series into the float sequence its
// checksum fingerprints: every numeric field of every point, in order.
func seriesFloats(s *experiments.Fig5Series) []float64 {
	vals := make([]float64, 0, 7*len(s.Points))
	for _, pt := range s.Points {
		vals = append(vals, float64(pt.Channels),
			pt.PAMAD, pt.MPB, pt.OPT,
			pt.PAMADExact, pt.MPBExact, pt.OPTExact)
	}
	return vals
}
