package main

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"time"

	"tcsa/internal/conformance"
	"tcsa/internal/core"
	"tcsa/internal/opt"
	"tcsa/internal/perf"
	"tcsa/internal/ptas"
)

// optscaleConfig carries the -optscale mode flags.
type optscaleConfig struct {
	out      string // -optscaleout: where to write the report
	baseline string // -optscalebaseline: prior report to compare against ("" = none)
	slowdown float64
	allocs   float64
}

// frontierFamilyFloor is the family size beyond which an instance counts as
// infeasible for the exact search: opt.Search enumerates family members at
// well under 10^8 evaluations per second, so a 10^9-leaf family cannot finish
// inside any airbench budget even if branch-and-bound pruned nothing wrong.
// The frontier cases below exceed it by orders of magnitude.
const frontierFamilyFloor = 1e9

// optscaleEps is the slack every -optscale case runs at. Changing it is a
// deliberate baseline break: the committed BENCH_optscale.json pins the
// resulting vectors.
const optscaleEps = 0.1

// optscaleCase is one point on the optimizer-scaling curve.
type optscaleCase struct {
	name       string
	groups     []core.Group
	nReal      func(gs *core.GroupSet) int
	searchable bool // run opt.Search and gate the (1+ε) ratio live
}

// optscaleUniform is the paper's uniform workload widened to h groups:
// times base·2^i, per pages each.
func optscaleUniform(per, h, base int) []core.Group {
	groups := make([]core.Group, h)
	tt := base
	for i := range groups {
		groups[i] = core.Group{Time: tt, Count: per}
		tt *= 2
	}
	return groups
}

// optscaleSkewed halves the page count per tier (hottest deadline gets half
// of all pages), the shape that stresses the low-group knee.
func optscaleSkewed(total, h, base int) []core.Group {
	groups := make([]core.Group, h)
	tt := base
	rem := total
	for i := range groups {
		c := rem / 2
		if i == h-1 {
			c = rem
		}
		if c < 1 {
			c = 1
		}
		groups[i] = core.Group{Time: tt, Count: c}
		rem -= c
		tt *= 2
	}
	return groups
}

// optscaleCases is the committed scaling ladder: two searchable rungs where
// branch-and-bound still finishes (the live (1+ε) differential gate), one
// heavyweight searchable rung near its feasibility knee, and one frontier
// rung past it where only the PTAS answers. Page totals and shapes are
// pinned by the BENCH_optscale.json baseline.
func optscaleCases() []optscaleCase {
	knee := func(gs *core.GroupSet) int { return core.CeilDiv(gs.MinChannels(), 5) }
	return []optscaleCase{
		{name: "OptScaleKnee_h8", groups: optscaleUniform(125, 8, 4), nReal: knee, searchable: true},
		{name: "OptScaleWide_h10", groups: optscaleUniform(125, 10, 4), nReal: knee, searchable: true},
		{name: "OptScaleSkew_h16", groups: optscaleSkewed(100000, 16, 4), nReal: knee, searchable: true},
		{name: "OptScaleFrontier_h20", groups: optscaleUniform(5000, 20, 2), nReal: knee, searchable: false},
	}
}

// runOptscaleBench measures the (1+ε) PTAS against branch-and-bound along
// the scaling ladder and writes the BENCH_optscale.json trajectory. Live
// gates, independent of the baseline: every returned vector is checked
// against the divisor-chain family oracle; on searchable rungs the
// approximate delay must be within (1+ε) of the exact optimum; on frontier
// rungs the family size must witness Search-infeasibility; and the
// parallelism determinism contract is spot-checked by re-running the first
// rung single-threaded.
func runOptscaleBench(cases []optscaleCase, cfg optscaleConfig, out io.Writer) error {
	rep := &perf.Report{
		Schema:   perf.SchemaVersion,
		GOOS:     runtime.GOOS,
		GOARCH:   runtime.GOARCH,
		MaxProcs: runtime.GOMAXPROCS(0),
	}
	ctx := context.Background()

	for i, tc := range cases {
		gs, err := core.NewGroupSet(tc.groups)
		if err != nil {
			return fmt.Errorf("optscale %s: %w", tc.name, err)
		}
		nReal := tc.nReal(gs)
		family := ptas.FamilySize(gs, nil)

		t0 := time.Now()
		ares, err := opt.Approx(ctx, gs, nReal, opt.ApproxOptions{Eps: optscaleEps})
		if err != nil {
			return fmt.Errorf("optscale %s: %w", tc.name, err)
		}
		approxNs := float64(time.Since(t0).Nanoseconds())
		if err := conformance.DivisorChainFamily(gs, ares.Frequencies); err != nil {
			return fmt.Errorf("optscale %s: approx vector outside the family: %w", tc.name, err)
		}

		// The determinism contract in the artifact itself: the committed
		// checksum must not depend on the runner's core count, so rung 0
		// is recomputed single-threaded and compared bit for bit.
		if i == 0 {
			solo, err := opt.Approx(ctx, gs, nReal, opt.ApproxOptions{Eps: optscaleEps, Parallelism: 1})
			if err != nil {
				return fmt.Errorf("optscale %s: %w", tc.name, err)
			}
			if solo.Delay != ares.Delay || solo.Evaluated != ares.Evaluated {
				return fmt.Errorf("optscale %s: parallelism leaked into the result: (%v, %d) vs (%v, %d)",
					tc.name, solo.Delay, solo.Evaluated, ares.Delay, ares.Evaluated)
			}
		}

		// Checksummed series: only fields the determinism contract pins.
		// Wall times are recorded in ns/op but never checksummed.
		vals := []float64{optscaleEps, family, float64(nReal), ares.Delay, float64(ares.Evaluated)}
		for _, s := range ares.Frequencies {
			vals = append(vals, float64(s))
		}

		if tc.searchable {
			t0 = time.Now()
			sres, err := opt.Search(ctx, gs, nReal, opt.Options{})
			if err != nil {
				return fmt.Errorf("optscale %s: exact search: %w", tc.name, err)
			}
			searchNs := float64(time.Since(t0).Nanoseconds())
			ratio := 1.0
			if sres.Delay > 0 {
				ratio = ares.Delay / sres.Delay
			} else if ares.Delay > 0 {
				return fmt.Errorf("optscale %s: exact optimum 0 but approx delay %v", tc.name, ares.Delay)
			}
			if ares.Delay > sres.Delay*(1+optscaleEps)+1e-9 {
				return fmt.Errorf("optscale %s: approx %v beyond (1+ε)·opt %v", tc.name, ares.Delay, sres.Delay)
			}
			vals = append(vals, sres.Delay, ratio)
			fmt.Fprintf(out, "%-22s h=%2d pages=%6d N=%4d family=%8.3g  approx %8.1fms  search %8.1fms  ratio %.6f\n",
				tc.name, gs.Len(), gs.Pages(), nReal, family, approxNs/1e6, searchNs/1e6, ratio)
		} else {
			if family <= frontierFamilyFloor {
				return fmt.Errorf("optscale %s: family %.3g does not witness Search-infeasibility (floor %.0g)",
					tc.name, family, frontierFamilyFloor)
			}
			fmt.Fprintf(out, "%-22s h=%2d pages=%6d N=%4d family=%8.3g  approx %8.1fms  search infeasible (family > %.0g)\n",
				tc.name, gs.Len(), gs.Pages(), nReal, family, approxNs/1e6, frontierFamilyFloor)
		}

		rep.Samples = append(rep.Samples, perf.Sample{
			Name:       tc.name,
			Iterations: 1,
			NsPerOp:    approxNs,
			Checksum:   perf.SeriesChecksum(vals),
		})
	}

	return writeAndCompare(rep, cfg.out, cfg.baseline, benchConfig{
		slowdown: cfg.slowdown, allocs: cfg.allocs,
	}, out)
}
