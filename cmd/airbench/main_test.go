package main

import (
	"path/filepath"
	"strings"
	"testing"

	"tcsa/internal/perf"
)

func TestRunFig3(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-experiment", "fig3"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Figure 3", "uniform", "L-skewed"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunFig4(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-experiment", "fig4"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "4, 8, 16, 32, 64, 128, 256, 512") {
		t.Errorf("missing expected times:\n%s", out.String())
	}
}

func TestRunFig5Table(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-experiment", "fig5", "-dist", "sskew", "-requests", "500", "-stride", "8"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "Figure 5") || !strings.Contains(s, "PAMAD") {
		t.Errorf("missing table headers:\n%s", s)
	}
}

func TestRunFig5CSV(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-experiment", "fig5", "-dist", "sskew", "-requests", "500", "-stride", "8", "-csv", "-skipopt"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out.String(), "distribution,channels,") {
		t.Errorf("missing CSV header:\n%s", out.String())
	}
}

func TestRunKnee(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-experiment", "knee", "-dist", "sskew", "-requests", "500", "-stride", "4"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "N_min/5") {
		t.Errorf("missing knee columns:\n%s", out.String())
	}
}

func TestRunAblations(t *testing.T) {
	for _, exp := range []string{"tiebreak", "modelcheck", "optgap"} {
		var out strings.Builder
		err := run([]string{"-experiment", exp, "-dist", "sskew", "-requests", "300", "-stride", "6"}, &out)
		if err != nil {
			t.Fatalf("%s: %v", exp, err)
		}
		if !strings.Contains(out.String(), "Ablation") {
			t.Errorf("%s: missing ablation header:\n%s", exp, out.String())
		}
	}
}

func TestRunErrors(t *testing.T) {
	tests := [][]string{
		{"-experiment", "nope"},
		{"-dist", "pareto"},
	}
	for _, args := range tests {
		var out strings.Builder
		if err := run(args, &out); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestRunFig5Plot(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-experiment", "fig5", "-dist", "sskew", "-requests", "300", "-stride", "6", "-plot"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "AvgD (log) vs channels") {
		t.Errorf("missing plot:\n%s", out.String())
	}
}

func TestRunBaselines(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-experiment", "baselines", "-dist", "sskew", "-requests", "300", "-stride", "6"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "flat-disk AvgD") {
		t.Errorf("missing baseline table:\n%s", out.String())
	}
}

func TestRunFig2(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-experiment", "fig2"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "t_major = 9") {
		t.Errorf("fig2 output missing walkthrough:\n%s", out.String())
	}
}

func TestRunFig5Parallel(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-experiment", "fig5", "-dist", "sskew", "-requests", "400", "-stride", "6", "-parallel", "4"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Figure 5") {
		t.Errorf("parallel fig5 output:\n%s", out.String())
	}
}

// TestRunBench: -bench writes a well-formed BENCH_sweep.json whose sweep
// samples carry series checksums, and a doctored baseline fails the run
// with its regressions reported.
func TestRunBench(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_sweep.json")
	// -buildout must not default: the default path would overwrite the
	// committed BENCH_build.json baseline in the package directory.
	buildPath := filepath.Join(t.TempDir(), "BENCH_build.json")
	fast := []string{"-bench", "-stride", "16", "-skipopt", "-requests", "200", "-dist", "sskew",
		"-benchout", path, "-buildout", buildPath}
	var out strings.Builder
	if err := run(fast, &out); err != nil {
		t.Fatal(err)
	}
	rep, err := perf.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != perf.SchemaVersion || rep.MaxProcs < 1 || rep.GOOS == "" {
		t.Errorf("malformed report header: %+v", rep)
	}
	for _, name := range []string{"AppearanceIndex", "Analyze", "Measure", "MeasureParallel", "Figure5/S-skewed"} {
		s := rep.Find(name)
		if s == nil {
			t.Fatalf("report missing sample %q", name)
		}
		if s.Iterations < 1 || s.NsPerOp <= 0 {
			t.Errorf("%s: implausible sample %+v", name, s)
		}
	}
	if sweep := rep.Find("Figure5/S-skewed"); len(sweep.Checksum) != 16 {
		t.Errorf("sweep sample missing series checksum: %+v", sweep)
	}
	// Serial and parallel measurement fingerprint the same stream: by the
	// engine's determinism contract the checksums must match exactly.
	serial, par := rep.Find("Measure"), rep.Find("MeasureParallel")
	if serial.Checksum == "" || serial.Checksum != par.Checksum {
		t.Errorf("Measure checksum %q != MeasureParallel checksum %q", serial.Checksum, par.Checksum)
	}

	// A baseline claiming a different series and fewer allocations must
	// fail the comparison and name both regressions.
	bad := *rep
	bad.Samples = append([]perf.Sample(nil), rep.Samples...)
	for i := range bad.Samples {
		if bad.Samples[i].Name == "Figure5/S-skewed" {
			bad.Samples[i].Checksum = "0000000000000000"
			bad.Samples[i].AllocsPerOp = 1
		}
	}
	badPath := filepath.Join(t.TempDir(), "baseline.json")
	if err := bad.WriteFile(badPath); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	err = run(append(fast, "-baseline", badPath), &out)
	if err == nil {
		t.Fatal("regressed baseline comparison passed")
	}
	for _, want := range []string{"checksum", "allocs/op"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("comparison output missing %q regression:\n%s", want, out.String())
		}
	}
}

func TestRunAll(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment matrix")
	}
	var out strings.Builder
	err := run([]string{"-experiment", "all", "-dist", "sskew", "-requests", "300", "-stride", "7"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{
		"Figure 4", "Figure 3", "Figure 2", "Figure 5",
		"Observation 3", "Ablation A1", "Ablation A3", "Ablation A5", "Ablation A6",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("all-run missing %q", want)
		}
	}
}
