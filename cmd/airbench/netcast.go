package main

import (
	"context"
	"fmt"
	"io"
	"net"
	"runtime"
	"testing"
	"time"

	"tcsa/internal/chaos"
	"tcsa/internal/core"
	"tcsa/internal/experiments"
	"tcsa/internal/loadgen"
	"tcsa/internal/netcast"
	"tcsa/internal/perf"
	"tcsa/internal/sim"
	"tcsa/internal/workload"
)

// netcastConfig carries the -netcast mode flags.
type netcastConfig struct {
	out      string // -netcastout: where to write the report
	baseline string // -netcastbaseline: prior report to compare against ("" = none)
	slowdown float64
	allocs   float64
}

// udpBenchSubs is the fan-out population the UDP samples measure: large
// enough that the serial per-subscriber loop visibly monopolises the
// slot clock, small enough to benchmark in CI.
const udpBenchSubs = 10_000

// runNetcastBench measures the fan-out engine on the paper's default
// instance and writes the BENCH_netcast.json trajectory. Three hard
// in-run assertions back the acceptance criteria: the ring publish path
// allocates nothing per slot, the loadgen harness reproduces
// sim.MeasureStream bit-for-bit with faults off (and the chaos engine
// bit-for-bit with faults on), and the sharded slot path beats the
// pre-Transport serial transmit loop by at least 10x at 10k subscribers.
func runNetcastBench(p experiments.Params, cfg netcastConfig, out io.Writer) error {
	rep := &perf.Report{
		Schema:   perf.SchemaVersion,
		GOOS:     runtime.GOOS,
		GOARCH:   runtime.GOARCH,
		MaxProcs: runtime.GOMAXPROCS(0),
	}
	prog, err := paperProgram(p)
	if err != nil {
		return err
	}
	analysis := core.Analyze(prog)

	add := func(name string, r testing.BenchmarkResult, checksum string) {
		rep.Samples = append(rep.Samples, perf.Sample{
			Name:        name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: int64(r.AllocsPerOp()),
			BytesPerOp:  int64(r.AllocedBytesPerOp()),
			Checksum:    checksum,
		})
		fmt.Fprintf(out, "%-24s %12.0f ns/op %10d allocs/op %12d B/op  series %s\n",
			name, rep.Samples[len(rep.Samples)-1].NsPerOp, r.AllocsPerOp(), r.AllocedBytesPerOp(), checksum)
	}

	// Ring publish path: one CastSlot through the seqlock ring. The
	// checksum fingerprints a full aired cycle as polled back out of the
	// ring, so content drift (not just cost drift) breaks the baseline.
	ringSlots := 1
	for ringSlots < prog.Length() {
		ringSlots <<= 1
	}
	ring, err := netcast.NewBroadcastRing(prog.Channels(), ringSlots)
	if err != nil {
		return err
	}
	caster, err := netcast.NewCaster(prog, ring, nil)
	if err != nil {
		return err
	}
	for abs := 0; abs < prog.Length(); abs++ {
		caster.CastSlot(abs)
	}
	cycle := make([]float64, 0, prog.Channels()*prog.Length())
	for ch := 0; ch < prog.Channels(); ch++ {
		for abs := int64(0); abs < int64(prog.Length()); abs++ {
			f, st := ring.Poll(ch, abs)
			if st != netcast.RingOK {
				return fmt.Errorf("netcast: ring poll (%d, %d) = %v, want RingOK", ch, abs, st)
			}
			cycle = append(cycle, float64(f.Page))
		}
	}
	abs := prog.Length()
	add("FanoutRingPublish", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			caster.CastSlot(abs)
			abs++
		}
	}), perf.SeriesChecksum(cycle))
	if got := rep.Samples[len(rep.Samples)-1].AllocsPerOp; got != 0 {
		return fmt.Errorf("netcast: ring publish allocates %d per slot, want 0", got)
	}
	fmt.Fprintf(out, "ring publish is alloc-free per slot (%d channels, cycle %d)\n",
		prog.Channels(), prog.Length())

	// Loadgen through the ring: the full client harness at 2*ShardSize
	// simulated clients. Faults off must reproduce sim.MeasureStream
	// bit-for-bit; the canonical fault mix must reproduce the chaos
	// engine bit-for-bit.
	stream, err := workload.NewStream(prog.GroupSet(), prog.Length(), workload.RequestConfig{
		Count: 2 * workload.ShardSize,
		Seed:  p.Seed,
	})
	if err != nil {
		return err
	}
	measured, err := sim.MeasureStream(analysis, stream)
	if err != nil {
		return err
	}
	measureSum := perf.SeriesChecksum(metricsFloats(measured))

	zero, err := loadgen.RunStream(context.Background(), analysis, stream,
		chaos.Config{Seed: p.Seed}, loadgen.Options{})
	if err != nil {
		return err
	}
	zeroSum := perf.SeriesChecksum(metricsFloats(&zero.Metrics))
	if zeroSum != measureSum {
		return fmt.Errorf("netcast: zero-fault loadgen drifted from sim.MeasureStream: %s != %s",
			zeroSum, measureSum)
	}
	add("LoadgenRingZeroFault", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := loadgen.RunStream(context.Background(), analysis, stream,
				chaos.Config{Seed: p.Seed}, loadgen.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	}), zeroSum)
	fmt.Fprintf(out, "zero-fault identity holds: loadgen(%d clients) == MeasureStream (%s)\n",
		stream.Count(), zeroSum)

	want, err := chaos.RunParallel(analysis, stream, chaosFaultedConfig(p.Seed), 0)
	if err != nil {
		return err
	}
	faulted, err := loadgen.RunStream(context.Background(), analysis, stream,
		chaosFaultedConfig(p.Seed), loadgen.Options{})
	if err != nil {
		return err
	}
	faultedSum := perf.SeriesChecksum(chaosFloats(&faulted.Result))
	if wantSum := perf.SeriesChecksum(chaosFloats(want)); faultedSum != wantSum {
		return fmt.Errorf("netcast: faulted loadgen drifted from the chaos engine: %s != %s",
			faultedSum, wantSum)
	}
	add("LoadgenRingFaulted", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := loadgen.RunStream(context.Background(), analysis, stream,
				chaosFaultedConfig(p.Seed), loadgen.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	}), faultedSum)
	fmt.Fprintf(out, "faulted identity holds: loadgen == chaos engine, digest %016x\n",
		faulted.TraceDigest)

	// UDP fan-out at 10k subscribers, both axes. Slot path: what one slot
	// costs the tick goroutine — the sharded transport enqueues one job
	// per channel (O(1)); the pre-Transport server sent every datagram
	// serially before the clock could advance. Wire path: one full
	// fan-out to every destination — sendmmsg batches against the serial
	// WriteToUDP loop.
	sinks := make([]*net.UDPConn, 8)
	for i := range sinks {
		conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
		if err != nil {
			return err
		}
		defer conn.Close()
		sinks[i] = conn
	}
	addrs := make([]*net.UDPAddr, udpBenchSubs)
	for i := range addrs {
		addrs[i] = sinks[i%len(sinks)].LocalAddr().(*net.UDPAddr)
	}

	tr, err := netcast.NewUDPTransport(prog.Channels(), "")
	if err != nil {
		return err
	}
	defer tr.Close()
	if err := tr.Provision(0, addrs); err != nil {
		return err
	}
	udpCaster, err := netcast.NewCaster(prog, tr, nil)
	if err != nil {
		return err
	}
	slotAbs := 0
	sharded := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			udpCaster.CastSlot(slotAbs)
			slotAbs++
		}
	})
	add("UDPSlotSharded", sharded, perf.SeriesChecksum([]float64{udpBenchSubs}))

	sender, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		return err
	}
	defer sender.Close()
	frame := make([]byte, netcast.FrameSize)
	serial := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			// The pre-Transport transmit loop: one sequential syscall per
			// subscriber on the slot clock's goroutine.
			for _, a := range addrs {
				if _, err := sender.WriteToUDP(frame, a); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	add("UDPSlotSerial", serial, perf.SeriesChecksum([]float64{udpBenchSubs}))

	slotSpeedup := serial.T.Seconds() / float64(serial.N) /
		(sharded.T.Seconds() / float64(sharded.N))
	fmt.Fprintf(out, "slot-path speedup at %d subs: %.0fx (sharded %v vs serial %v per slot)\n",
		udpBenchSubs, slotSpeedup,
		sharded.T/time.Duration(max(1, sharded.N)),
		serial.T/time.Duration(max(1, serial.N)))
	if slotSpeedup < 10 {
		return fmt.Errorf("netcast: sharded slot path only %.1fx over the serial transmit loop, want >= 10x",
			slotSpeedup)
	}

	batcher := netcast.NewBatcher(sender)
	ds := netcast.NewDestSet(addrs)
	batched := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if sent := batcher.Fanout(frame, ds); sent != ds.Len() {
				b.Fatalf("batched fan-out sent %d of %d", sent, ds.Len())
			}
		}
	})
	add("UDPWireBatched", batched, perf.SeriesChecksum([]float64{udpBenchSubs}))
	wireSpeedup := serial.T.Seconds() / float64(serial.N) /
		(batched.T.Seconds() / float64(batched.N))
	fmt.Fprintf(out, "wire speedup at %d subs: %.2fx (sendmmsg batches vs serial datagrams; "+
		"kernel delivery dominates on loopback)\n", udpBenchSubs, wireSpeedup)

	return writeAndCompare(rep, cfg.out, cfg.baseline, benchConfig{
		slowdown: cfg.slowdown, allocs: cfg.allocs,
	}, out)
}
