package main

import (
	"strings"
	"testing"
)

func TestRunBasic(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-counts", "3,5,3", "-t1", "2", "-channels", "3", "-requests", "200"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"PAMAD over 3 channels", "served on air:   200", "avg wait"} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %q:\n%s", want, s)
		}
	}
}

func TestRunScanMode(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-counts", "3,5,3", "-t1", "2", "-channels", "4", "-mode", "scan", "-requests", "100"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "scan mode") {
		t.Errorf("missing mode marker:\n%s", out.String())
	}
}

func TestRunWithImpatienceAndOnDemand(t *testing.T) {
	var out strings.Builder
	err := run([]string{
		"-counts", "10,10,10", "-t1", "2", "-channels", "2",
		"-abandon", "1.0", "-service", "2", "-requests", "300",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "abandoned:") {
		t.Fatalf("missing abandonment line:\n%s", s)
	}
	if !strings.Contains(s, "on-demand channel") {
		t.Errorf("abandonments did not reach the on-demand section:\n%s", s)
	}
}

func TestRunDistWorkload(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-dist", "sskew", "-pages", "100", "-groups", "4", "-channels", "0", "-requests", "100"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "SUSC") {
		t.Errorf("minimum channels should select SUSC:\n%s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	tests := [][]string{
		{},                                    // no instance
		{"-counts", "3", "-mode", "teleport"}, // unknown mode
		{"-counts", "x"},                      // unparsable
		{"-dist", "pareto"},                   // unknown distribution
	}
	for _, args := range tests {
		var out strings.Builder
		if err := run(args, &out); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestRunWithTrace(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-counts", "3,5,3", "-t1", "2", "-channels", "3", "-requests", "20", "-trace", "50"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "trace (") || !strings.Contains(s, "serve") {
		t.Errorf("trace output missing:\n%s", s)
	}
}

func TestRunWithLossModels(t *testing.T) {
	for _, extra := range [][]string{
		{"-loss", "0.2"},
		{"-loss", "0.2", "-burst"},
	} {
		args := append([]string{"-counts", "3,5,3", "-t1", "2", "-channels", "4", "-requests", "100"}, extra...)
		var out strings.Builder
		if err := run(args, &out); err != nil {
			t.Fatalf("%v: %v", extra, err)
		}
		if !strings.Contains(out.String(), "served on air:   100") {
			t.Errorf("%v: clients lost under loss model:\n%s", extra, out.String())
		}
	}
	var out strings.Builder
	if err := run([]string{"-counts", "3", "-loss", "0.95", "-burst"}, &out); err == nil {
		t.Error("burst rate above in-fade rate accepted")
	}
}

func TestRunParallelSampler(t *testing.T) {
	var out strings.Builder
	err := run([]string{
		"-counts", "3,5,3", "-t1", "2", "-channels", "3",
		"-requests", "70000", "-parallel", "2",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"streaming sampler, 2 workers", "clients:         70000", "avg delay", "wait p95/p99"} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %q:\n%s", want, s)
		}
	}
}

func TestRunParallelSamplerConflicts(t *testing.T) {
	base := []string{"-counts", "3,5,3", "-t1", "2", "-channels", "3", "-parallel", "2"}
	for _, extra := range [][]string{
		{"-abandon", "1.0"},
		{"-loss", "0.1"},
		{"-trace", "5"},
		{"-mode", "scan"},
	} {
		var out strings.Builder
		if err := run(append(append([]string{}, base...), extra...), &out); err == nil {
			t.Errorf("%v combined with -parallel accepted", extra)
		}
	}
}

func TestRunWithOnlineTier(t *testing.T) {
	for _, split := range []string{"reserved:1", "pure", "steal:2"} {
		var out strings.Builder
		err := run([]string{
			"-dist", "uniform", "-pages", "100", "-groups", "4", "-channels", "2",
			"-abandon", "1.0", "-requests", "500", "-online", "lwf", "-split", split,
		}, &out)
		if err != nil {
			t.Fatalf("split %s: %v", split, err)
		}
		s := out.String()
		for _, want := range []string{"online tier (lwf policy", "defectors:", "avg flow:"} {
			if !strings.Contains(s, want) {
				t.Errorf("split %s: missing %q:\n%s", split, want, s)
			}
		}
		if strings.Contains(s, "on-demand channel") {
			t.Errorf("split %s: queueing section printed with -online:\n%s", split, s)
		}
	}
}

func TestRunOnlineTierErrors(t *testing.T) {
	tests := [][]string{
		{"-counts", "3,5,3", "-online", "lwf"},                                       // no -abandon
		{"-counts", "3,5,3", "-abandon", "1.0", "-online", "teleport"},               // bad policy
		{"-counts", "3,5,3", "-abandon", "1.0", "-online", "lwf", "-split", "quota"}, // bad split
	}
	for _, args := range tests {
		var out strings.Builder
		if err := run(args, &out); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}
