// Command airsim runs the full discrete-event broadcast simulation: a
// scheduled program replayed on slotted air channels, single-tuner clients
// arriving at random instants, optional frame loss, impatient clients
// abandoning for a modelled on-demand (pull) server.
//
//	airsim -counts 3,5,3 -t1 2 -channels 3 -requests 500
//	airsim -dist uniform -channels 13 -mode scan
//	airsim -dist lskew -channels 5 -abandon 1.0 -service 2 -requests 3000
//	airsim -dist uniform -channels 13 -requests 2000000 -parallel 8
//
// With -parallel N > 0, the event simulation is replaced by the streaming
// sharded sampler (sim.MeasureParallel): requests are generated on the fly
// and measured with O(1) sample memory, so -requests can reach tens of
// millions. The sampler is schedule-aware and lossless, so it rejects
// -abandon, -loss, -trace and -mode scan.
//
// With -abandon > 0, clients give up once their wait exceeds
// abandon * expected time and their requests are replayed against the
// on-demand server (service time -service slots), demonstrating the
// paper's motivating congestion effect.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"tcsa"
	"tcsa/internal/airwave"
	"tcsa/internal/core"
	"tcsa/internal/eventsim"
	"tcsa/internal/ondemand"
	"tcsa/internal/online"
	"tcsa/internal/sim"
	"tcsa/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "airsim:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("airsim", flag.ContinueOnError)
	counts := fs.String("counts", "", "comma-separated per-group page counts")
	dist := fs.String("dist", "", "group-size distribution: uniform|normal|lskew|sskew")
	pages := fs.Int("pages", 1000, "total pages for -dist")
	groups := fs.Int("groups", 8, "groups for -dist")
	t1 := fs.Int("t1", 4, "smallest expected time")
	ratio := fs.Int("ratio", 2, "geometric ratio c")
	channels := fs.Int("channels", 0, "channel budget (0 = minimum)")
	mode := fs.String("mode", "aware", "client strategy: aware|scan")
	abandon := fs.Float64("abandon", 0, "abandon after this multiple of the expected time (0 = never)")
	service := fs.Float64("service", 2, "on-demand service time (slots) for abandoned requests")
	onlinePolicy := fs.String("online", "", "route abandoned clients through the slot-level online broadcast tier under this policy: lwf|mrf|edf|fcfs (requires -abandon)")
	splitSpec := fs.String("split", "reserved:1", "online-tier pull/push split for -online: pure|reserved[:K]|steal[:T]")
	requests := fs.Int("requests", 1000, "number of client requests")
	parallel := fs.Int("parallel", 0, "measure with the streaming sharded sampler over N workers instead of the event simulation (0 = event simulation)")
	seed := fs.Int64("seed", 1, "request seed")
	traceN := fs.Int("trace", 0, "print the last N simulation events")
	loss := fs.Float64("loss", 0, "uniform frame-loss probability")
	burst := fs.Bool("burst", false, "use a bursty (Gilbert-Elliott) channel at the given -loss rate")
	if err := fs.Parse(args); err != nil {
		return err
	}

	gs, err := buildInstance(*counts, *dist, *pages, *groups, *t1, *ratio)
	if err != nil {
		return err
	}
	n := *channels
	if n == 0 {
		n = gs.MinChannels()
	}
	sched, err := tcsa.Build(gs, n)
	if err != nil {
		return err
	}

	if *onlinePolicy != "" {
		if *abandon <= 0 {
			return fmt.Errorf("-online routes abandoned clients; it requires -abandon > 0")
		}
		// Parse eagerly so flag typos fail before the simulation runs, even
		// when no client ends up defecting.
		if _, err := online.ParsePolicy(*onlinePolicy); err != nil {
			return err
		}
		if _, err := online.ParseSplit(*splitSpec); err != nil {
			return err
		}
	}

	if *parallel > 0 {
		// The streaming sampler measures waits against the schedule
		// directly; the event-simulation-only knobs don't apply to it.
		switch {
		case *abandon > 0:
			return fmt.Errorf("-parallel is the streaming sampler; -abandon needs the event simulation")
		case *loss > 0:
			return fmt.Errorf("-parallel is the streaming sampler; -loss needs the event simulation")
		case *traceN > 0:
			return fmt.Errorf("-parallel is the streaming sampler; -trace needs the event simulation")
		case *mode != "aware":
			return fmt.Errorf("-parallel is the streaming sampler; -mode %s needs the event simulation", *mode)
		}
		stream, err := workload.NewStream(gs, sched.Program.Length(), workload.RequestConfig{
			Count: *requests,
			Seed:  *seed,
		})
		if err != nil {
			return err
		}
		m, err := sim.MeasureParallel(core.Analyze(sched.Program), stream, *parallel)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "instance:        %v\n", gs)
		fmt.Fprintf(out, "scheduler:       %s over %d channels (minimum %d)\n", sched.Algorithm, n, sched.MinChannels)
		fmt.Fprintf(out, "cycle length:    %d slots\n", sched.Program.Length())
		fmt.Fprintf(out, "clients:         %d (streaming sampler, %d workers)\n", m.Requests, *parallel)
		fmt.Fprintf(out, "avg wait:        %.3f slots\n", m.AvgWait)
		fmt.Fprintf(out, "avg delay:       %.3f slots (AvgD)\n", m.AvgDelay)
		fmt.Fprintf(out, "miss ratio:      %.3f\n", m.MissRatio)
		fmt.Fprintf(out, "wait p95/p99:    %.1f / %.1f slots\n", m.Wait.P95, m.Wait.P99)
		return nil
	}

	reqs, err := workload.GenerateRequests(gs, sched.Program.Length(), workload.RequestConfig{
		Count: *requests,
		Seed:  *seed,
	})
	if err != nil {
		return err
	}

	cfg := sim.Config{AbandonAfter: *abandon}
	switch *mode {
	case "aware":
		cfg.Mode = sim.ScheduleAware
	case "scan":
		cfg.Mode = sim.Scanning
	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}
	var abandoned []workload.Request
	var defectedAt []float64
	if *abandon > 0 {
		cfg.OnAbandon = func(r workload.Request, at float64) {
			abandoned = append(abandoned, r)
			defectedAt = append(defectedAt, at)
		}
	}
	if *loss > 0 {
		cfg.Drop, err = lossModel(*loss, *burst, *seed)
		if err != nil {
			return err
		}
	}
	var tracer *sim.RingTracer
	if *traceN > 0 {
		tracer, err = sim.NewRingTracer(*traceN)
		if err != nil {
			return err
		}
		cfg.Trace = tracer.Record
	}

	outcome, err := sim.Run(sched.Program, reqs, cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "instance:        %v\n", gs)
	fmt.Fprintf(out, "scheduler:       %s over %d channels (minimum %d)\n", sched.Algorithm, n, sched.MinChannels)
	fmt.Fprintf(out, "cycle length:    %d slots\n", sched.Program.Length())
	fmt.Fprintf(out, "clients:         %d (%s mode)\n", outcome.Requests, *mode)
	fmt.Fprintf(out, "served on air:   %d\n", outcome.Served)
	fmt.Fprintf(out, "abandoned:       %d\n", outcome.Abandoned)
	fmt.Fprintf(out, "avg wait:        %.3f slots\n", outcome.AvgWait)
	fmt.Fprintf(out, "avg delay:       %.3f slots (AvgD)\n", outcome.AvgDelay)
	fmt.Fprintf(out, "miss ratio:      %.3f\n", outcome.MissRatio)
	fmt.Fprintf(out, "wait p95/p99:    %.1f / %.1f slots\n", outcome.Wait.P95, outcome.Wait.P99)
	fmt.Fprintf(out, "slots simulated: %d\n", outcome.SlotsSimulated)

	if tracer != nil {
		fmt.Fprintf(out, "\ntrace (%d of %d events):\n%s", len(tracer.Events()), tracer.Total(), tracer)
	}

	if len(abandoned) > 0 {
		if *onlinePolicy != "" {
			res, policy, split, err := onlineThrough(sched.Program, abandoned, defectedAt, *onlinePolicy, *splitSpec)
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "\nonline tier (%v policy, %v split):\n", policy, split)
			fmt.Fprintf(out, "  defectors:     %d\n", res.Requests)
			fmt.Fprintf(out, "  push-served:   %d\n", res.PushServed)
			fmt.Fprintf(out, "  online-served: %d (%d airings, %d stolen slots)\n",
				res.OnlineServed, res.OnlineAirings, res.StolenSlots)
			fmt.Fprintf(out, "  avg flow:      %.3f slots\n", res.AvgFlow)
			fmt.Fprintf(out, "  max flow:      %.3f slots\n", res.MaxFlow)
			fmt.Fprintf(out, "  max delay fac: %.3f\n", res.MaxDelayFactor)
			return nil
		}
		m, err := pullThrough(abandoned, gs, *service)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "\non-demand channel (service time %.1f slots):\n", *service)
		fmt.Fprintf(out, "  pull requests: %d\n", m.Submitted)
		fmt.Fprintf(out, "  avg response:  %.3f slots\n", m.AvgResponse)
		fmt.Fprintf(out, "  p99 response:  %.3f slots\n", m.Response.P99)
		fmt.Fprintf(out, "  max queue:     %d\n", m.MaxQueueLen)
	}
	return nil
}

// onlineThrough replays abandoned clients against the slot-level online
// broadcast tier: each defector enters the live queue at its defection
// instant and is served by whichever tier airs its page first.
func onlineThrough(prog *core.Program, abandoned []workload.Request, defectedAt []float64,
	policySpec, splitSpec string) (*online.Result, online.Policy, online.Split, error) {
	policy, err := online.ParsePolicy(policySpec)
	if err != nil {
		return nil, 0, online.Split{}, err
	}
	split, err := online.ParseSplit(splitSpec)
	if err != nil {
		return nil, 0, online.Split{}, err
	}
	reqs := make([]workload.Request, len(abandoned))
	for i, r := range abandoned {
		reqs[i] = workload.Request{Page: r.Page, Arrival: defectedAt[i]}
	}
	res, err := online.Run(prog, workload.SliceStream(reqs), online.Config{Policy: policy, Split: split})
	if err != nil {
		return nil, 0, online.Split{}, err
	}
	return res, policy, split, nil
}

// lossModel builds the requested channel model: uniform independent loss,
// or a Gilbert-Elliott burst channel with the same stationary rate (fades
// lose 90% of frames; state dwell ~5 slots).
func lossModel(rate float64, burst bool, seed int64) (airwave.DropFunc, error) {
	if !burst {
		return airwave.UniformLoss(rate, seed)
	}
	const lossBad, dwell = 0.9, 0.2
	if rate >= lossBad {
		return nil, fmt.Errorf("burst loss rate %f must be below the in-fade rate %.1f", rate, lossBad)
	}
	// Solve piBad*lossBad = rate with piBad = g2b/(g2b+b2g), b2g = dwell.
	piBad := rate / lossBad
	g2b := dwell * piBad / (1 - piBad)
	return airwave.GilbertElliott{
		GoodToBad: g2b,
		BadToGood: dwell,
		LossBad:   lossBad,
		Seed:      seed,
	}.DropFunc()
}

// pullThrough replays abandoned requests against a single on-demand server,
// spreading arrivals over one broadcast-cycle-scaled window.
func pullThrough(abandoned []workload.Request, gs *core.GroupSet, service float64) (ondemand.Metrics, error) {
	var clock eventsim.Simulator
	srv, err := ondemand.New(&clock, ondemand.Config{ServiceTime: service, Discipline: ondemand.EDF})
	if err != nil {
		return ondemand.Metrics{}, err
	}
	for _, r := range abandoned {
		r := r
		if err := clock.At(r.Arrival, func() {
			srv.Submit(ondemand.Request{
				Page:     r.Page,
				Deadline: r.Arrival + float64(gs.TimeOf(r.Page)),
			})
		}); err != nil {
			return ondemand.Metrics{}, err
		}
	}
	clock.Run()
	return srv.Metrics(), nil
}

func buildInstance(counts, dist string, pages, groups, t1, ratio int) (*core.GroupSet, error) {
	switch {
	case counts != "":
		var cs []int
		for _, p := range strings.Split(counts, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(p))
			if err != nil {
				return nil, err
			}
			cs = append(cs, v)
		}
		return core.Geometric(t1, ratio, cs)
	case dist != "":
		d, err := workload.ParseDistribution(dist)
		if err != nil {
			return nil, err
		}
		return workload.GroupSet(d, groups, pages, t1, ratio)
	default:
		return nil, fmt.Errorf("one of -counts or -dist is required")
	}
}
