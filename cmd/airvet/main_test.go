package main

import (
	"strings"
	"testing"
)

func TestListFlag(t *testing.T) {
	var out, errw strings.Builder
	if code := run([]string{"-list"}, &out, &errw); code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errw.String())
	}
	for _, name := range []string{"slotmath", "checkerr", "floateq", "copylock", "exhaustenum", "nopanic"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing %q:\n%s", name, out.String())
		}
	}
}

func TestUnknownAnalyzer(t *testing.T) {
	var out, errw strings.Builder
	if code := run([]string{"-only", "nosuchcheck"}, &out, &errw); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(errw.String(), "nosuchcheck") {
		t.Errorf("stderr %q does not name the bad analyzer", errw.String())
	}
}

func TestCleanPackage(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to the go tool")
	}
	var out, errw strings.Builder
	if code := run([]string{"tcsa/internal/core"}, &out, &errw); code != 0 {
		t.Fatalf("exit %d on internal/core\nstdout: %s\nstderr: %s", code, out.String(), errw.String())
	}
	if out.String() != "" {
		t.Errorf("unexpected findings: %s", out.String())
	}
}
