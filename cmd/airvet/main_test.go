package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestListFlag(t *testing.T) {
	var out, errw strings.Builder
	if code := run([]string{"-list"}, &out, &errw); code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errw.String())
	}
	for _, name := range []string{
		"slotmath", "checkerr", "floateq", "copylock", "exhaustenum", "nopanic",
		"detmap", "wallclock", "ctxflow", "atomicmix", "lockbal",
	} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing %q:\n%s", name, out.String())
		}
	}
}

func TestUnknownAnalyzer(t *testing.T) {
	var out, errw strings.Builder
	if code := run([]string{"-only", "nosuchcheck"}, &out, &errw); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(errw.String(), "nosuchcheck") {
		t.Errorf("stderr %q does not name the bad analyzer", errw.String())
	}
}

func TestUpdateRequiresBaseline(t *testing.T) {
	var out, errw strings.Builder
	if code := run([]string{"-update"}, &out, &errw); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(errw.String(), "-baseline") {
		t.Errorf("stderr %q does not explain the missing -baseline", errw.String())
	}
}

func TestCleanPackage(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to the go tool")
	}
	var out, errw strings.Builder
	if code := run([]string{"tcsa/internal/core"}, &out, &errw); code != 0 {
		t.Fatalf("exit %d on internal/core\nstdout: %s\nstderr: %s", code, out.String(), errw.String())
	}
	if out.String() != "" {
		t.Errorf("unexpected findings: %s", out.String())
	}
}

func TestJSONOutputCleanPackage(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to the go tool")
	}
	var out, errw strings.Builder
	if code := run([]string{"-json", "tcsa/internal/core"}, &out, &errw); code != 0 {
		t.Fatalf("exit %d\nstderr: %s", code, errw.String())
	}
	var report []jsonDiagnostic
	if err := json.Unmarshal([]byte(out.String()), &report); err != nil {
		t.Fatalf("-json output is not a JSON array: %v\n%s", err, out.String())
	}
	if len(report) != 0 {
		t.Errorf("unexpected findings on a clean package: %v", report)
	}
}

func TestBaselineFlagCleanPackage(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to the go tool")
	}
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(path, []byte(`{"version":1,"diagnostics":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errw strings.Builder
	if code := run([]string{"-baseline", path, "tcsa/internal/core"}, &out, &errw); code != 0 {
		t.Fatalf("exit %d against an empty baseline on a clean package\nstderr: %s", code, errw.String())
	}
}

func TestBaselineMissingFile(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to the go tool")
	}
	var out, errw strings.Builder
	code := run([]string{"-baseline", filepath.Join(t.TempDir(), "nope.json"), "tcsa/internal/core"}, &out, &errw)
	if code != 2 {
		t.Fatalf("exit %d with a missing baseline file, want 2", code)
	}
}

func TestUpdateWritesBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to the go tool")
	}
	path := filepath.Join(t.TempDir(), "baseline.json")
	var out, errw strings.Builder
	if code := run([]string{"-baseline", path, "-update", "tcsa/internal/core"}, &out, &errw); code != 0 {
		t.Fatalf("exit %d from -update\nstderr: %s", code, errw.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("-update did not write the baseline: %v", err)
	}
	if !strings.Contains(string(data), `"version": 1`) {
		t.Errorf("written baseline missing version field:\n%s", data)
	}
}
