// Command airvet runs this repository's static-analysis suite: eleven
// type-aware analyzers enforcing the structural invariants behind the
// paper's validity theorems — six intraprocedural checks (slotmath,
// checkerr, floateq, copylock, exhaustenum, nopanic) plus five built on
// the cross-package facts engine (detmap, wallclock, ctxflow, atomicmix,
// lockbal). It is part of the scripts/check.sh gate and must exit 0 on
// the repo against the committed (empty) lint_baseline.json at all
// times; see docs/airvet.md.
//
// Usage:
//
//	airvet [-list] [-only analyzer,...] [-json] [-baseline file [-update]] [packages]
//
// Packages default to ./... resolved from the current directory.
// -baseline filters findings already blessed in the given file (CI fails
// only on new debt); -update rewrites that file from the current
// findings instead of failing. -json emits machine-readable findings for
// the CI artifact. Exit status: 0 clean, 1 findings, 2 usage or load
// error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"tcsa/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// jsonDiagnostic is the -json wire form of one finding.
type jsonDiagnostic struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
}

func run(args []string, out, errw io.Writer) int {
	fs := flag.NewFlagSet("airvet", flag.ContinueOnError)
	fs.SetOutput(errw)
	list := fs.Bool("list", false, "list analyzers and exit")
	only := fs.String("only", "", "comma-separated subset of analyzers to run")
	asJSON := fs.Bool("json", false, "emit findings as a JSON array")
	baseline := fs.String("baseline", "", "baseline file of blessed findings; only new findings fail")
	update := fs.Bool("update", false, "rewrite the -baseline file from the current findings and exit 0")
	fs.Usage = func() {
		fmt.Fprintln(errw, "usage: airvet [-list] [-only analyzer,...] [-json] [-baseline file [-update]] [packages]")
		fs.PrintDefaults()
		fmt.Fprintln(errw, "\nanalyzers:")
		for _, a := range lint.All() {
			fmt.Fprintf(errw, "  %-12s %s\n", a.Name, a.Doc)
		}
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range lint.All() {
			fmt.Fprintf(out, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *update && *baseline == "" {
		fmt.Fprintln(errw, "airvet: -update requires -baseline")
		return 2
	}
	analyzers := lint.All()
	if *only != "" {
		var err error
		analyzers, err = lint.ByName(*only)
		if err != nil {
			fmt.Fprintln(errw, "airvet:", err)
			return 2
		}
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	diags, err := lint.Run(".", patterns, analyzers)
	if err != nil {
		fmt.Fprintln(errw, "airvet:", err)
		return 2
	}
	root, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(errw, "airvet:", err)
		return 2
	}
	if *baseline != "" {
		if *update {
			if err := lint.WriteBaseline(*baseline, root, diags); err != nil {
				fmt.Fprintln(errw, "airvet:", err)
				return 2
			}
			fmt.Fprintf(errw, "airvet: wrote %d finding(s) to %s\n", len(diags), *baseline)
			return 0
		}
		b, err := lint.LoadBaseline(*baseline)
		if err != nil {
			fmt.Fprintln(errw, "airvet:", err)
			return 2
		}
		diags = b.Filter(diags, root)
	}
	if *asJSON {
		report := []jsonDiagnostic{}
		for _, d := range diags {
			file := d.Pos.Filename
			if rel, err := filepath.Rel(root, file); err == nil {
				file = rel
			}
			report = append(report, jsonDiagnostic{
				Analyzer: d.Analyzer,
				File:     filepath.ToSlash(file),
				Line:     d.Pos.Line,
				Column:   d.Pos.Column,
				Message:  d.Message,
			})
		}
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintln(errw, "airvet:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(out, d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(errw, "airvet: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}
