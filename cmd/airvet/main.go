// Command airvet runs this repository's static-analysis suite: six
// type-aware analyzers (slotmath, checkerr, floateq, copylock,
// exhaustenum, nopanic) that enforce the structural invariants behind the
// paper's validity theorems. It is part of the scripts/check.sh gate and
// must exit 0 on the repo at all times; see docs/airvet.md.
//
// Usage:
//
//	airvet [-list] [-only analyzer,...] [packages]
//
// Packages default to ./... resolved from the current directory. Exit
// status: 0 clean, 1 findings, 2 usage or load error.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"tcsa/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, out, errw io.Writer) int {
	fs := flag.NewFlagSet("airvet", flag.ContinueOnError)
	fs.SetOutput(errw)
	list := fs.Bool("list", false, "list analyzers and exit")
	only := fs.String("only", "", "comma-separated subset of analyzers to run")
	fs.Usage = func() {
		fmt.Fprintln(errw, "usage: airvet [-list] [-only analyzer,...] [packages]")
		fs.PrintDefaults()
		fmt.Fprintln(errw, "\nanalyzers:")
		for _, a := range lint.All() {
			fmt.Fprintf(errw, "  %-12s %s\n", a.Name, a.Doc)
		}
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range lint.All() {
			fmt.Fprintf(out, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	analyzers := lint.All()
	if *only != "" {
		var err error
		analyzers, err = lint.ByName(*only)
		if err != nil {
			fmt.Fprintln(errw, "airvet:", err)
			return 2
		}
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	diags, err := lint.Run(".", patterns, analyzers)
	if err != nil {
		fmt.Fprintln(errw, "airvet:", err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintln(out, d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(errw, "airvet: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}
