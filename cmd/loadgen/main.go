// Command loadgen drives large simulated client populations through the
// in-process broadcast transport and records latency, deadline-miss and
// fault-ledger results per scenario.
//
// It sweeps the matrix of -dists × -channels × -loss × -churn, runs each
// combination through loadgen.RunStream, prints one table row per
// scenario, and stores the full results under
//
//	<out>/<timestamp>/<config>/{config.json,summary.json,ledger.json}
//
// For every fault-free scenario the run self-verifies: the metrics
// aggregated from the simulated clients must be bit-identical to
// sim.MeasureStream on the same request stream, or the run fails.
//
//	go run ./cmd/loadgen -clients 100000                  # paper knee, faults off
//	go run ./cmd/loadgen -dists uniform,sskew -loss 0,0.1 -churn 0,0.05
//	go run ./cmd/loadgen -clients 1000000 -pagechoice zipf -theta 0.8
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"tcsa/internal/chaos"
	"tcsa/internal/loadgen"
	"tcsa/internal/sim"
	"tcsa/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	clients := fs.Int("clients", 100_000, "simulated clients per scenario")
	dists := fs.String("dists", "uniform", "comma-separated group-size distributions (uniform|normal|lskew|sskew)")
	channels := fs.String("channels", "0", "comma-separated channel counts (0 = knee, ceil(min/5))")
	loss := fs.String("loss", "0", "comma-separated frame-loss probabilities")
	churn := fs.String("churn", "0", "comma-separated client-churn probabilities")
	corrupt := fs.Float64("corrupt", 0, "frame-corruption probability (all scenarios)")
	jitter := fs.Float64("jitter", 0, "slot-boundary jitter bound in slots (all scenarios)")
	stallEvery := fs.Int("stallevery", 0, "server stall period in slots (0 = no stalls)")
	stallFor := fs.Int("stallfor", 0, "stalled slots per period")
	pageChoice := fs.String("pagechoice", "uniform", "page popularity model (uniform|zipf)")
	theta := fs.Float64("theta", 0, "zipf skew for -pagechoice zipf")
	seed := fs.Int64("seed", 1, "master seed (stream and fault plan)")
	workers := fs.Int("workers", 0, "client shard workers (0 = GOMAXPROCS)")
	ringSlots := fs.Int("ringslots", 0, "broadcast-ring depth per channel (0 = default)")
	outDir := fs.String("out", "results", "base directory for result artifacts (empty = don't write)")
	stamp := fs.String("stamp", "", "results subdirectory name (default: UTC timestamp)")
	verify := fs.Bool("verify", true, "cross-check fault-free scenarios against sim.MeasureStream")
	if err := fs.Parse(args); err != nil {
		return err
	}

	distList, err := parseDists(*dists)
	if err != nil {
		return err
	}
	chanList, err := parseInts(*channels)
	if err != nil {
		return fmt.Errorf("-channels: %w", err)
	}
	lossList, err := parseFloats(*loss)
	if err != nil {
		return fmt.Errorf("-loss: %w", err)
	}
	churnList, err := parseFloats(*churn)
	if err != nil {
		return fmt.Errorf("-churn: %w", err)
	}
	choice := workload.UniformPages
	switch *pageChoice {
	case "uniform":
	case "zipf":
		choice = workload.ZipfPages
	default:
		return fmt.Errorf("unknown -pagechoice %q", *pageChoice)
	}

	dir := ""
	if *outDir != "" {
		name := *stamp
		if name == "" {
			name = time.Now().UTC().Format("20060102T150405Z")
		}
		dir = filepath.Join(*outDir, name)
	}

	fmt.Fprintf(out, "%-40s %8s %4s %6s %9s %9s %9s %8s %9s\n",
		"config", "clients", "ch", "cycle", "avg_wait", "p99_wait", "miss", "effloss", "unserved")
	for _, d := range distList {
		for _, ch := range chanList {
			for _, ls := range lossList {
				for _, cu := range churnList {
					cfg := loadgen.Config{
						Clients:    *clients,
						Workers:    *workers,
						Dist:       d,
						Channels:   ch,
						Seed:       *seed,
						PageChoice: choice,
						Theta:      *theta,
						RingSlots:  *ringSlots,
						Fault: chaos.Config{
							Seed:       *seed,
							Loss:       ls,
							Churn:      cu,
							Corrupt:    *corrupt,
							Jitter:     *jitter,
							StallEvery: *stallEvery,
							StallFor:   *stallFor,
						},
					}
					if err := runScenario(cfg, dir, *verify, out); err != nil {
						return err
					}
				}
			}
		}
	}
	if dir != "" {
		fmt.Fprintf(out, "results written to %s\n", dir)
	}
	return nil
}

// runScenario measures one matrix cell, prints its table row, verifies
// the fault-free identity when asked, and persists the result artifacts.
func runScenario(cfg loadgen.Config, dir string, verify bool, out io.Writer) error {
	a, stream, err := loadgen.Materialize(cfg)
	if err != nil {
		return err
	}
	res, err := loadgen.RunStream(context.Background(), a, stream, cfg.Fault, loadgen.Options{
		Workers:   cfg.Workers,
		RingSlots: cfg.RingSlots,
	})
	if err != nil {
		return err
	}
	label := loadgen.ConfigLabel(cfg)
	fmt.Fprintf(out, "%-40s %8d %4d %6d %9.3f %9.3f %9.5f %8.4f %9d\n",
		label, res.Clients, res.Channels, res.CycleLen,
		res.AvgWait, res.Wait.P99, res.MissRatio, res.EffectiveLoss, res.Ledger.Unserved)
	if verify && !cfg.Fault.Active() {
		m, err := sim.MeasureStream(a, stream)
		if err != nil {
			return err
		}
		if res.Metrics != *m {
			return fmt.Errorf("%s: transport metrics diverge from sim.MeasureStream:\nloadgen: %+v\n    sim: %+v",
				label, res.Metrics, *m)
		}
		fmt.Fprintf(out, "%-40s verified bit-identical to sim.MeasureStream\n", label)
	}
	if dir != "" {
		if err := loadgen.WriteResult(filepath.Join(dir, label), cfg, res); err != nil {
			return err
		}
	}
	return nil
}

func parseDists(s string) ([]workload.Distribution, error) {
	var out []workload.Distribution
	for _, f := range strings.Split(s, ",") {
		d, err := workload.ParseDistribution(strings.TrimSpace(f))
		if err != nil {
			return nil, err
		}
		out = append(out, d)
	}
	return out, nil
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}
