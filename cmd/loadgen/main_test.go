package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunMatrixWritesResults drives a small two-cell matrix end to end:
// one fault-free cell (which must self-verify against sim.MeasureStream)
// and one faulted cell, both persisted under the results schema.
func TestRunMatrixWritesResults(t *testing.T) {
	dir := t.TempDir()
	var buf strings.Builder
	err := run([]string{
		"-clients", "2000",
		"-dists", "uniform",
		"-loss", "0,0.1",
		"-churn", "0.05",
		"-corrupt", "0.02",
		"-seed", "3",
		"-workers", "2",
		"-out", dir,
		"-stamp", "test",
	}, &buf)
	if err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, buf.String())
	}
	out := buf.String()
	if !strings.Contains(out, "avg_wait") {
		t.Errorf("missing table header:\n%s", out)
	}
	entries, err := os.ReadDir(filepath.Join(dir, "test"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("want 2 result dirs, got %d", len(entries))
	}
	for _, e := range entries {
		for _, name := range []string{"config.json", "summary.json", "ledger.json"} {
			path := filepath.Join(dir, "test", e.Name(), name)
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			var v map[string]any
			if err := json.Unmarshal(raw, &v); err != nil {
				t.Errorf("%s: invalid JSON: %v", path, err)
			}
		}
	}
}

// TestRunVerifiesZeroFault pins the in-process identity check: a
// fault-free scenario must report the bit-identity verification line.
func TestRunVerifiesZeroFault(t *testing.T) {
	var buf strings.Builder
	err := run([]string{
		"-clients", "1000",
		"-seed", "2",
		"-out", "", // no artifacts
	}, &buf)
	if err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "verified bit-identical to sim.MeasureStream") {
		t.Errorf("missing zero-fault verification:\n%s", buf.String())
	}
}

func TestRunFlagValidation(t *testing.T) {
	cases := [][]string{
		{"-dists", "nope"},
		{"-channels", "x"},
		{"-loss", "many"},
		{"-pagechoice", "powerlaw"},
	}
	for _, args := range cases {
		var buf strings.Builder
		if err := run(append(args, "-out", ""), &buf); err == nil {
			t.Errorf("args %v: expected error", args)
		}
	}
}
