package tcsa

import (
	"errors"
	"testing"
)

func figure2() *GroupSet {
	gs, err := Geometric(2, 2, []int{3, 5, 3})
	if err != nil {
		panic(err)
	}
	return gs
}

func TestBuildSelectsSUSCWhenSufficient(t *testing.T) {
	gs := figure2()
	sched, err := Build(gs, 4)
	if err != nil {
		t.Fatal(err)
	}
	if sched.Algorithm != AlgorithmSUSC {
		t.Errorf("Algorithm = %s, want SUSC", sched.Algorithm)
	}
	if !sched.Valid() {
		t.Error("SUSC schedule not valid")
	}
	if sched.ExpectedDelay != 0 {
		t.Errorf("ExpectedDelay = %f, want 0", sched.ExpectedDelay)
	}
	if sched.MinChannels != 4 || sched.Channels != 4 {
		t.Errorf("channels = %d/%d, want 4/4", sched.Channels, sched.MinChannels)
	}
	want := []int{4, 2, 1}
	for i, w := range want {
		if sched.Frequencies[i] != w {
			t.Errorf("Frequencies = %v, want %v", sched.Frequencies, want)
			break
		}
	}
}

func TestBuildSelectsPAMADWhenInsufficient(t *testing.T) {
	gs := figure2()
	sched, err := Build(gs, 3)
	if err != nil {
		t.Fatal(err)
	}
	if sched.Algorithm != AlgorithmPAMAD {
		t.Errorf("Algorithm = %s, want PAMAD", sched.Algorithm)
	}
	if sched.ExpectedDelay <= 0 {
		t.Errorf("ExpectedDelay = %f, want > 0 under insufficiency", sched.ExpectedDelay)
	}
	if sched.ExpectedWait <= 0 {
		t.Error("ExpectedWait not positive")
	}
	// Figure 2's derived frequencies.
	want := []int{4, 2, 1}
	for i, w := range want {
		if sched.Frequencies[i] != w {
			t.Errorf("Frequencies = %v, want %v", sched.Frequencies, want)
			break
		}
	}
	if sched.Program.Length() != 9 {
		t.Errorf("cycle = %d, want 9", sched.Program.Length())
	}
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(nil, 3); !errors.Is(err, ErrInvalidGroupSet) {
		t.Errorf("nil group set error = %v", err)
	}
	if _, err := Build(figure2(), 0); !errors.Is(err, ErrInsufficientChannels) {
		t.Errorf("0 channels error = %v", err)
	}
}

func TestRearrangePipeline(t *testing.T) {
	r, err := Rearrange([]int{2, 3, 4, 6, 9}, 2)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := Build(r.Set, MinChannels(r.Set))
	if err != nil {
		t.Fatal(err)
	}
	if sched.Algorithm != AlgorithmSUSC || !sched.Valid() {
		t.Errorf("rearranged instance not scheduled validly: %+v", sched)
	}
	auto, err := RearrangeAuto([]int{2, 3, 4, 6, 9}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if auto.Set.Pages() != 5 {
		t.Errorf("auto rearrangement lost pages: %v", auto.Set)
	}
}

func TestAnalyzeExposed(t *testing.T) {
	sched, err := Build(figure2(), 4)
	if err != nil {
		t.Fatal(err)
	}
	a := Analyze(sched.Program)
	if a.AvgDelay() != sched.ExpectedDelay {
		t.Error("Analyze disagrees with Build's ExpectedDelay")
	}
}

func TestNewGroupSetExposed(t *testing.T) {
	if _, err := NewGroupSet([]Group{{Time: 2, Count: 1}, {Time: 3, Count: 1}}); err == nil {
		t.Error("invalid divisibility accepted")
	}
	gs, err := NewGroupSet([]Group{{Time: 2, Count: 1}, {Time: 8, Count: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if gs.MaxTime() != 8 {
		t.Errorf("MaxTime = %d", gs.MaxTime())
	}
}
