# Development entry points. `make check` runs the same pipeline CI does.

GO      ?= go
FUZZTIME ?= 10s

.PHONY: build vet airvet lint lint-baseline test race fuzz bench chaos netcast loadgen optscale replan hybrid check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# The repo must stay clean against the committed (empty) baseline; see
# docs/airvet.md for the ratchet workflow.
airvet lint:
	$(GO) run ./cmd/airvet -baseline lint_baseline.json ./...

# Rewrite the baseline from current findings (blessing new debt — use
# sparingly, the goal is an empty file).
lint-baseline:
	$(GO) run ./cmd/airvet -baseline lint_baseline.json -update ./...

test:
	$(GO) test -shuffle=on ./...

race:
	$(GO) test -race ./internal/netcast/... ./internal/online/... ./internal/opt/... ./internal/ptas/... ./internal/replan/... ./internal/sim/... ./internal/chaos/... ./internal/experiments/... ./cmd/...

fuzz:
	$(GO) test -fuzz='FuzzRearrange$$'         -fuzztime=$(FUZZTIME) ./internal/core/
	$(GO) test -fuzz='FuzzRearrangeMonotone$$' -fuzztime=$(FUZZTIME) ./internal/core/
	$(GO) test -fuzz='FuzzProgramJSON$$'       -fuzztime=$(FUZZTIME) ./internal/core/
	$(GO) test -fuzz='FuzzGroupSetJSON$$'      -fuzztime=$(FUZZTIME) ./internal/core/
	$(GO) test -fuzz='FuzzParseFrame$$'        -fuzztime=$(FUZZTIME) ./internal/netcast/
	$(GO) test -fuzz='FuzzPAMADPlacement$$'    -fuzztime=$(FUZZTIME) ./internal/pamad/
	$(GO) test -fuzz='FuzzSUSCEquivalence$$'   -fuzztime=$(FUZZTIME) ./internal/susc/
	$(GO) test -fuzz='FuzzSketchQuantile$$'    -fuzztime=$(FUZZTIME) ./internal/stats/
	$(GO) test -fuzz='FuzzChaosDeterminism$$'  -fuzztime=$(FUZZTIME) ./internal/chaos/
	$(GO) test -fuzz='FuzzPTASEquivalence$$'   -fuzztime=$(FUZZTIME) ./internal/opt/
	$(GO) test -fuzz='FuzzReplanEquivalence$$' -fuzztime=$(FUZZTIME) ./internal/replan/
	$(GO) test -fuzz='FuzzOndemandQueue$$'     -fuzztime=$(FUZZTIME) ./internal/ondemand/
	$(GO) test -fuzz='FuzzOnlineEquivalence$$' -fuzztime=$(FUZZTIME) ./internal/online/

# Smoke the hot-path benchmarks and the benchmark-trajectory harness (see
# docs/perf.md). `make bench BASELINE=BENCH_sweep.json` also compares; the
# construction-engine report is always gated against the committed
# BENCH_build.json baseline.
bench:
	$(GO) test -run '^$$' -bench 'Analyze|AppearanceIndex|Measure|Figure5|SUSCBuild|PAMADBuild|OPTSearch' -benchtime=1x -benchmem .
	$(GO) test -run '^$$' -bench 'Fanout' -benchtime=1x -benchmem ./internal/netcast/
	$(GO) test -run '^$$' -bench 'ExactDelay|SuffixDelayTotal' -benchtime=1x -benchmem ./internal/delaymodel/
	$(GO) run ./cmd/airbench -bench -stride 8 -skipopt -requests 300 -dist sskew \
		-buildout BENCH_build_new.json -buildbaseline BENCH_build.json \
		$(if $(BASELINE),-baseline $(BASELINE))

# Chaos determinism smoke: regenerate the chaos trajectory and gate it
# against the committed BENCH_chaos.json (zero-fault identity + pinned
# faulted fingerprint). See docs/testing.md.
chaos:
	$(GO) run ./cmd/airbench -chaos -chaosout BENCH_chaos_new.json -chaosbaseline BENCH_chaos.json

# Fan-out engine smoke: ring publish cost, loadgen bit-identity, and the
# sharded-vs-serial UDP slot path, gated against BENCH_netcast.json.
netcast:
	$(GO) run ./cmd/airbench -netcast -netcastout BENCH_netcast_new.json -netcastbaseline BENCH_netcast.json

# Optimizer-scaling smoke: run the (1+eps) PTAS ladder — live family/ratio
# gates plus the committed BENCH_optscale.json checksum baseline. See
# docs/perf.md.
optscale:
	$(GO) run ./cmd/airbench -optscale -optscaleout BENCH_optscale_new.json -optscalebaseline BENCH_optscale.json

# Incremental replan smoke: single-page deltas at 10^5 pages must beat a
# from-scratch PAMAD rebuild by >=10x with a bit-identical grid, gated
# against the committed BENCH_replan.json. See docs/perf.md.
replan:
	$(GO) run ./cmd/airbench -replan -replanout BENCH_replan_new.json -replanbaseline BENCH_replan.json

# Online hybrid tier smoke: serial/parallel bit-identity across worker
# counts, conservation oracles on a recorded run, and the intensity x split
# matrix fingerprint, gated against the committed BENCH_hybrid.json.
hybrid:
	$(GO) run ./cmd/airbench -hybrid -hybridout BENCH_hybrid_new.json -hybridbaseline BENCH_hybrid.json

# Quick scenario sweep through the broadcast transport; fault-free cells
# self-verify against sim.MeasureStream. Artifacts land under results/.
loadgen:
	$(GO) run ./cmd/loadgen -clients 100000 -dists uniform,sskew -loss 0,0.1 -churn 0,0.05

check:
	FUZZTIME=$(FUZZTIME) scripts/check.sh
