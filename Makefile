# Development entry points. `make check` runs the same pipeline CI does.

GO      ?= go
FUZZTIME ?= 10s

.PHONY: build vet airvet test race fuzz check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

airvet:
	$(GO) run ./cmd/airvet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/netcast/... ./internal/opt/... ./cmd/...

fuzz:
	$(GO) test -fuzz='FuzzRearrange$$'         -fuzztime=$(FUZZTIME) ./internal/core/
	$(GO) test -fuzz='FuzzRearrangeMonotone$$' -fuzztime=$(FUZZTIME) ./internal/core/
	$(GO) test -fuzz='FuzzProgramJSON$$'       -fuzztime=$(FUZZTIME) ./internal/core/
	$(GO) test -fuzz='FuzzGroupSetJSON$$'      -fuzztime=$(FUZZTIME) ./internal/core/
	$(GO) test -fuzz='FuzzParseFrame$$'        -fuzztime=$(FUZZTIME) ./internal/netcast/
	$(GO) test -fuzz='FuzzPAMADPlacement$$'    -fuzztime=$(FUZZTIME) ./internal/pamad/

check:
	FUZZTIME=$(FUZZTIME) scripts/check.sh
