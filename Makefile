# Development entry points. `make check` runs the same pipeline CI does.

GO      ?= go
FUZZTIME ?= 10s

.PHONY: build vet airvet test race fuzz bench check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

airvet:
	$(GO) run ./cmd/airvet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/netcast/... ./internal/opt/... ./internal/sim/... ./internal/experiments/... ./cmd/...

fuzz:
	$(GO) test -fuzz='FuzzRearrange$$'         -fuzztime=$(FUZZTIME) ./internal/core/
	$(GO) test -fuzz='FuzzRearrangeMonotone$$' -fuzztime=$(FUZZTIME) ./internal/core/
	$(GO) test -fuzz='FuzzProgramJSON$$'       -fuzztime=$(FUZZTIME) ./internal/core/
	$(GO) test -fuzz='FuzzGroupSetJSON$$'      -fuzztime=$(FUZZTIME) ./internal/core/
	$(GO) test -fuzz='FuzzParseFrame$$'        -fuzztime=$(FUZZTIME) ./internal/netcast/
	$(GO) test -fuzz='FuzzPAMADPlacement$$'    -fuzztime=$(FUZZTIME) ./internal/pamad/
	$(GO) test -fuzz='FuzzSUSCEquivalence$$'   -fuzztime=$(FUZZTIME) ./internal/susc/
	$(GO) test -fuzz='FuzzSketchQuantile$$'    -fuzztime=$(FUZZTIME) ./internal/stats/

# Smoke the hot-path benchmarks and the benchmark-trajectory harness (see
# docs/perf.md). `make bench BASELINE=BENCH_sweep.json` also compares; the
# construction-engine report is always gated against the committed
# BENCH_build.json baseline.
bench:
	$(GO) test -run '^$$' -bench 'Analyze|AppearanceIndex|Measure|Figure5|SUSCBuild|PAMADBuild|OPTSearch' -benchtime=1x -benchmem .
	$(GO) run ./cmd/airbench -bench -stride 8 -skipopt -requests 300 -dist sskew \
		-buildout BENCH_build_new.json -buildbaseline BENCH_build.json \
		$(if $(BASELINE),-baseline $(BASELINE))

check:
	FUZZTIME=$(FUZZTIME) scripts/check.sh
