package tcsa_test

import (
	"fmt"

	"tcsa"
)

// The paper's Figure 2 instance: three groups with expected times 2, 4 and
// 8 slots. Four channels meet the Theorem 3.1 bound, three do not.
func ExampleBuild() {
	gs, err := tcsa.Geometric(2, 2, []int{3, 5, 3})
	if err != nil {
		panic(err)
	}
	fmt.Println("minimum channels:", tcsa.MinChannels(gs))

	sufficient, _ := tcsa.Build(gs, 4)
	fmt.Printf("4 channels: %s, valid=%v, avg delay %.3f\n",
		sufficient.Algorithm, sufficient.Valid(), sufficient.ExpectedDelay)

	tight, _ := tcsa.Build(gs, 3)
	fmt.Printf("3 channels: %s, frequencies %v, cycle %d\n",
		tight.Algorithm, tight.Frequencies, tight.Program.Length())
	// Output:
	// minimum channels: 4
	// 4 channels: SUSC, valid=true, avg delay 0.000
	// 3 channels: PAMAD, frequencies [4 2 1], cycle 9
}

// Arbitrary per-page expected times tighten onto geometric groups — the
// paper's Section 2 example.
func ExampleRearrange() {
	r, err := tcsa.Rearrange([]int{2, 3, 4, 6, 9}, 2)
	if err != nil {
		panic(err)
	}
	fmt.Println("new times:", r.NewTimes)
	fmt.Println("groups:   ", r.Set)
	// Output:
	// new times: [2 2 4 4 8]
	// groups:    {t=2:P=2, t=4:P=2, t=8:P=1}
}
