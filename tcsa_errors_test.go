package tcsa

import (
	"errors"
	"fmt"
	"testing"

	"tcsa/internal/core"
)

// sentinels lists every sentinel error re-exported in tcsa.go.
var sentinels = map[string]error{
	"ErrInvalidGroupSet":      ErrInvalidGroupSet,
	"ErrInsufficientChannels": ErrInsufficientChannels,
	"ErrInvalidProgram":       ErrInvalidProgram,
}

// TestSentinelWrapAwareness round-trips each re-exported sentinel through
// fmt.Errorf("%w") chains: errors.Is must see through single and double
// wrapping, and must never match a different sentinel.
func TestSentinelWrapAwareness(t *testing.T) {
	for name, sentinel := range sentinels {
		wrapped := fmt.Errorf("context: %w", sentinel)
		double := fmt.Errorf("outer: %w", wrapped)
		if !errors.Is(wrapped, sentinel) {
			t.Errorf("errors.Is(wrap(%s), %s) = false", name, name)
		}
		if !errors.Is(double, sentinel) {
			t.Errorf("errors.Is(wrap(wrap(%s)), %s) = false", name, name)
		}
		for otherName, other := range sentinels {
			if otherName != name && errors.Is(double, other) {
				t.Errorf("errors.Is(wrap(wrap(%s)), %s) = true", name, otherName)
			}
		}
	}
}

// TestSentinelIdentity pins each re-export to its internal/core original:
// a wrap produced inside the module must satisfy errors.Is against the
// public alias, and vice versa.
func TestSentinelIdentity(t *testing.T) {
	pairs := []struct {
		name     string
		public   error
		internal error
	}{
		{"ErrInvalidGroupSet", ErrInvalidGroupSet, core.ErrInvalidGroupSet},
		{"ErrInsufficientChannels", ErrInsufficientChannels, core.ErrInsufficientChannels},
		{"ErrInvalidProgram", ErrInvalidProgram, core.ErrInvalidProgram},
	}
	for _, p := range pairs {
		if p.public != p.internal {
			t.Errorf("%s re-export is not the core sentinel", p.name)
		}
		if !errors.Is(fmt.Errorf("core side: %w", p.internal), p.public) {
			t.Errorf("internally wrapped %s not matched by public alias", p.name)
		}
	}
}

// TestAPIErrorsAreWrapAware checks that errors produced by the public API
// still satisfy errors.Is after another caller-side wrap.
func TestAPIErrorsAreWrapAware(t *testing.T) {
	if _, err := Build(nil, 3); !errors.Is(fmt.Errorf("caller: %w", err), ErrInvalidGroupSet) {
		t.Errorf("Build(nil, 3) error %v does not wrap ErrInvalidGroupSet", err)
	}
	if _, err := Build(figure2(), 0); !errors.Is(fmt.Errorf("caller: %w", err), ErrInsufficientChannels) {
		t.Errorf("Build(gs, 0) error %v does not wrap ErrInsufficientChannels", err)
	}
	if _, err := NewGroupSet(nil); !errors.Is(fmt.Errorf("caller: %w", err), ErrInvalidGroupSet) {
		t.Errorf("NewGroupSet(nil) error %v does not wrap ErrInvalidGroupSet", err)
	}
	p, err := core.NewProgram(figure2(), 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if verr := p.Validate(); !errors.Is(fmt.Errorf("caller: %w", verr), ErrInvalidProgram) {
		t.Errorf("Validate error %v does not wrap ErrInvalidProgram", verr)
	}
}
