package loadgen

import (
	"context"
	"reflect"
	"testing"

	"tcsa/internal/chaos"
	"tcsa/internal/core"
	"tcsa/internal/pamad"
	"tcsa/internal/sim"
	"tcsa/internal/workload"
)

// scenario builds a paper-style instance, its PAMAD program at the knee
// channel count, and a request stream over it.
func scenario(tb testing.TB, pages, count int, choice workload.PageChoice, theta float64, seed int64) (*core.Analysis, workload.Stream) {
	tb.Helper()
	gs, err := workload.GroupSet(workload.Uniform, 6, pages, 4, 2)
	if err != nil {
		tb.Fatal(err)
	}
	prog, _, err := pamad.Build(gs, core.CeilDiv(gs.MinChannels(), 5))
	if err != nil {
		tb.Fatal(err)
	}
	stream, err := workload.NewStream(gs, prog.Length(), workload.RequestConfig{
		Count:  count,
		Seed:   seed,
		Choice: choice,
		Theta:  theta,
	})
	if err != nil {
		tb.Fatal(err)
	}
	return core.Analyze(prog), stream
}

// allFaults is the canonical every-class fault mix (the airbench chaos
// baseline's), exercising stall, i.i.d. and burst loss, corruption,
// churn, jitter and the degradation replan at once.
func allFaults(seed int64) chaos.Config {
	return chaos.Config{
		Seed:       seed,
		Loss:       0.10,
		Corrupt:    0.02,
		Churn:      0.05,
		Jitter:     0.25,
		StallEvery: 64,
		StallFor:   4,
		Burst:      &chaos.BurstConfig{GoodToBad: 0.05, BadToGood: 0.25, LossBad: 0.8},
		Replan:     true,
	}
}

// TestRunStreamZeroFaultMatchesMeasureStream pins the transport-identity
// anchor: with faults off, driving clients through the broadcast ring
// reproduces sim.MeasureStream bit for bit — metrics, and the chaos
// engine's trace digest too.
func TestRunStreamZeroFaultMatchesMeasureStream(t *testing.T) {
	a, stream := scenario(t, 300, workload.ShardSize+777, workload.UniformPages, 0, 11)
	res, err := RunStream(context.Background(), a, stream, chaos.Config{}, Options{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	m, err := sim.MeasureStream(a, stream)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics != *m {
		t.Errorf("metrics diverge from sim.MeasureStream:\n ring: %+v\n  sim: %+v", res.Metrics, *m)
	}
	if res.Ledger != (chaos.Ledger{}) {
		t.Errorf("zero-fault run has non-empty ledger: %+v", res.Ledger)
	}
	want, err := chaos.Run(a, stream, chaos.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.TraceDigest != want.TraceDigest {
		t.Errorf("trace digest %016x, chaos engine %016x", res.TraceDigest, want.TraceDigest)
	}
}

// TestRunStreamMatchesChaos pins full-Result bit-identity against the
// chaos measurement engine across fault mixes and page-choice models —
// the loadgen harness is the same experiment observed through the
// transport.
func TestRunStreamMatchesChaos(t *testing.T) {
	cases := []struct {
		name   string
		fault  chaos.Config
		choice workload.PageChoice
		theta  float64
	}{
		{name: "all-faults", fault: allFaults(1)},
		{
			name:   "zipf-high-loss",
			fault:  chaos.Config{Seed: 7, Loss: 0.5, Churn: 0.1, MaxCycles: 2},
			choice: workload.ZipfPages,
			theta:  0.8,
		},
		{
			name:  "stall-corrupt-jitter",
			fault: chaos.Config{Seed: 3, StallEvery: 32, StallFor: 4, Corrupt: 0.05, Jitter: 0.1},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a, stream := scenario(t, 300, workload.ShardSize+777, tc.choice, tc.theta, 5)
			res, err := RunStream(context.Background(), a, stream, tc.fault, Options{Workers: 3})
			if err != nil {
				t.Fatal(err)
			}
			want, err := chaos.RunParallel(a, stream, tc.fault, 2)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(&res.Result, want) {
				t.Errorf("result diverges from chaos engine:\n ring: %+v\nchaos: %+v", res.Result, *want)
			}
		})
	}
}

// TestRunStreamWorkerDeterminism pins that the Result — including the
// order-sensitive trace digest and the server-side fault counters — is
// identical at any worker count and any ring depth, including a
// pathologically tiny ring that forces constant flow-control pressure.
func TestRunStreamWorkerDeterminism(t *testing.T) {
	a, stream := scenario(t, 300, workload.ShardSize+777, workload.UniformPages, 0, 9)
	fault := allFaults(2)
	base, err := RunStream(context.Background(), a, stream, fault, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, opts := range []Options{
		{Workers: 4},
		{Workers: 0},
		{Workers: 3, RingSlots: 8},
	} {
		got, err := RunStream(context.Background(), a, stream, fault, opts)
		if err != nil {
			t.Fatalf("%+v: %v", opts, err)
		}
		if !reflect.DeepEqual(got, base) {
			t.Errorf("%+v: result diverges from single-worker run", opts)
		}
	}
	if base.FaultStats.DroppedFrames == 0 || base.FaultStats.StalledSlots == 0 {
		t.Errorf("faulted run recorded no server-side faults: %+v", base.FaultStats)
	}
}

// TestRunMatchesChaosEndToEnd pins the top-level Run wrapper: the
// scenario it materialises measures identically to the chaos engine run
// on the same manually built instance.
func TestRunMatchesChaosEndToEnd(t *testing.T) {
	cfg := Config{
		Clients: 5000,
		Workers: 2,
		Dist:    workload.SSkewed,
		Pages:   200,
		Groups:  5,
		Seed:    21,
		Fault:   chaos.Config{Seed: 21, Loss: 0.2, Jitter: 0.2},
	}
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	gs, err := workload.GroupSet(workload.SSkewed, 5, 200, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	prog, _, err := pamad.Build(gs, core.CeilDiv(gs.MinChannels(), 5))
	if err != nil {
		t.Fatal(err)
	}
	stream, err := workload.NewStream(gs, prog.Length(), workload.RequestConfig{Count: 5000, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	want, err := chaos.Run(core.Analyze(prog), stream, cfg.Fault)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(&res.Result, want) {
		t.Errorf("Run result diverges from chaos engine:\n ring: %+v\nchaos: %+v", res.Result, *want)
	}
	if res.Channels != prog.Channels() || res.CycleLen != prog.Length() || res.Clients != 5000 {
		t.Errorf("scenario echo wrong: %d channels %d cycle %d clients",
			res.Channels, res.CycleLen, res.Clients)
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(context.Background(), Config{Clients: -1}); err == nil {
		t.Error("expected error for negative client count")
	}
	res, err := Run(context.Background(), Config{Clients: 0, Pages: 100, Groups: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 0 || res.TraceDigest != 0 {
		t.Errorf("zero-client run not empty: %+v", res.Result)
	}
	if _, err := RunStream(context.Background(), nil, nil, chaos.Config{}, Options{}); err == nil {
		t.Error("expected error for nil analysis")
	}
}

// TestRunStreamContextCancel pins that cancellation aborts a run instead
// of deadlocking the broadcaster/worker handshake.
func TestRunStreamContextCancel(t *testing.T) {
	a, stream := scenario(t, 100, 2000, workload.UniformPages, 0, 4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunStream(ctx, a, stream, allFaults(1), Options{Workers: 2, RingSlots: 8}); err == nil {
		t.Error("expected error from cancelled context")
	}
}

// TestRunStreamHundredKClients is the acceptance-scale anchor: 131072
// simulated clients through the ring, faults off, bit-for-bit equal to
// sim.MeasureStream.
func TestRunStreamHundredKClients(t *testing.T) {
	a, stream := scenario(t, 1000, 2*workload.ShardSize, workload.UniformPages, 0, 1)
	res, err := RunStream(context.Background(), a, stream, chaos.Config{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := sim.MeasureStream(a, stream)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics != *m {
		t.Errorf("100k-client metrics diverge from sim.MeasureStream:\n ring: %+v\n  sim: %+v", res.Metrics, *m)
	}
}
