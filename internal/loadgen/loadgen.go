// Package loadgen drives large simulated client populations — 100k to
// 1M+ — through the real broadcast runtime: a netcast.Caster publishes
// every slot of the program into the in-process netcast.BroadcastRing,
// and sharded client workers poll their pages' appearance slots out of
// the ring, classify what they observe (received, lost, corrupt,
// stalled, churned away) and account waits, deadline misses and the
// fault ledger.
//
// The package's contract is bit-identity with the measurement engines:
// the aggregated Result reproduces chaos.RunParallel exactly — same
// metrics, same ledger, same trace digest — at any worker count, and
// with faults off it therefore reproduces sim.MeasureStream exactly.
// That holds because every client outcome is a pure function of
// (request, plan): the ring's flow control guarantees no client ever
// loses a slot to overwrite (a RingLost poll is a hard error, not a
// statistic), so the transport changes how outcomes are observed, never
// what they are.
package loadgen

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"tcsa/internal/chaos"
	"tcsa/internal/core"
	"tcsa/internal/netcast"
	"tcsa/internal/pamad"
	"tcsa/internal/replan"
	"tcsa/internal/sim"
	"tcsa/internal/stats"
	"tcsa/internal/workload"
)

// Sketch parameters, identical to sim.MeasureStream's and the chaos
// engine's: the aggregated sketches must be bit-identical.
const (
	sketchQuantileAccuracy = 0.01
	sketchResolution       = 1 << 20
)

// FNV-1a 64-bit constants, matching the chaos trace digest.
const (
	fnvOffset uint64 = 0xcbf29ce484222325
	fnvPrime  uint64 = 0x100000001b3
)

func fnv64(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h = (h ^ uint64(byte(v>>(8*i)))) * fnvPrime
	}
	return h
}

// Config describes one load-generation scenario: the paper instance, the
// client population, and the fault plan.
type Config struct {
	// Clients is the simulated client population (one request each).
	Clients int
	// Workers shards the clients; 0 = GOMAXPROCS. The Result is
	// bit-identical at any worker count.
	Workers int
	// Dist shapes the group-size distribution (paper Figure 3).
	Dist workload.Distribution
	// Channels is the broadcast channel count; 0 = the paper's knee,
	// ceil(MinChannels/5), the operating point the sweep PRs pinned.
	Channels int
	// Pages/Groups/BaseTime/Ratio parameterise the instance; zero values
	// take the paper's Figure 4 defaults (1000, 8, 4, 2).
	Pages, Groups, BaseTime, Ratio int
	// Seed drives the request stream (page choices and arrivals).
	Seed int64
	// PageChoice selects uniform or Zipf page popularity; Theta is the
	// Zipf exponent.
	PageChoice workload.PageChoice
	Theta      float64
	// Fault is the chaos plan driven through the transport. The zero
	// value is fault-free air.
	Fault chaos.Config
	// RingSlots is the per-channel broadcast-ring depth; 0 = the netcast
	// default. Depth only affects scheduling slack, never results.
	RingSlots int
}

func (c Config) withDefaults() Config {
	if c.Pages == 0 {
		c.Pages = 1000
	}
	if c.Groups == 0 {
		c.Groups = 8
	}
	if c.BaseTime == 0 {
		c.BaseTime = 4
	}
	if c.Ratio == 0 {
		c.Ratio = 2
	}
	return c
}

// Result is a loadgen measurement: the full chaos.Result (bit-identical
// to running chaos.RunParallel on the same inputs) plus the transport's
// own accounting.
type Result struct {
	chaos.Result
	// Clients echoes the measured population size.
	Clients int
	// Channels and CycleLen describe the broadcast program driven.
	Channels int
	CycleLen int
	// SlotsAired is how many slots the caster published (MaxCycles
	// cycles, always — the air does not stop when clients finish).
	SlotsAired int64
	// FaultStats is the server-side fault accounting from the caster;
	// its classes correspond to the ledger's channel-side skips but count
	// per (channel, slot), not per waiting client.
	FaultStats netcast.FaultStats
}

// Options tunes RunStream independently of scenario construction.
type Options struct {
	Workers   int // 0 = GOMAXPROCS
	RingSlots int // 0 = netcast.DefaultRingSlots
}

// Materialize builds the scenario cfg describes: the group-set instance,
// its PAMAD program (at the knee channel count when cfg.Channels is 0)
// analysed for appearance lookup, and the request stream over it.
func Materialize(cfg Config) (*core.Analysis, workload.Stream, error) {
	cfg = cfg.withDefaults()
	if cfg.Clients < 0 {
		return nil, nil, fmt.Errorf("loadgen: negative client count %d", cfg.Clients)
	}
	gs, err := workload.GroupSet(cfg.Dist, cfg.Groups, cfg.Pages, cfg.BaseTime, cfg.Ratio)
	if err != nil {
		return nil, nil, err
	}
	channels := cfg.Channels
	if channels == 0 {
		channels = core.CeilDiv(gs.MinChannels(), 5)
	}
	prog, _, err := pamad.Build(gs, channels)
	if err != nil {
		return nil, nil, err
	}
	stream, err := workload.NewStream(gs, prog.Length(), workload.RequestConfig{
		Count:  cfg.Clients,
		Seed:   cfg.Seed,
		Choice: cfg.PageChoice,
		Theta:  cfg.Theta,
	})
	if err != nil {
		return nil, nil, err
	}
	return core.Analyze(prog), stream, nil
}

// Run materialises the scenario cfg describes (instance, PAMAD program,
// request stream) and measures it through the in-process transport.
func Run(ctx context.Context, cfg Config) (*Result, error) {
	a, stream, err := Materialize(cfg)
	if err != nil {
		return nil, err
	}
	return RunStream(ctx, a, stream, cfg.Fault, Options{
		Workers:   cfg.Workers,
		RingSlots: cfg.RingSlots,
	})
}

// client is one pending request's delivery state machine.
type client struct {
	next     int64 // absolute slot of the pending delivery opportunity
	glob     int64 // global request index (shard*ShardSize + local)
	page     core.PageID
	u        float64
	k        int32
	wraps    int32
	attempts int32
	ch       int32 // channel of the pending opportunity
}

// eventHeap is a binary min-heap of clients keyed by next slot. It is
// hand-rolled (rather than container/heap) so pushes and pops in the
// million-client hot loop stay devirtualised and allocation-free.
type eventHeap []client

func (h eventHeap) less(i, j int) bool { return h[i].next < h[j].next }

func (h *eventHeap) push(c client) {
	*h = append(*h, c)
	i := len(*h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		(*h)[i], (*h)[parent] = (*h)[parent], (*h)[i]
		i = parent
	}
}

func (h *eventHeap) pop() client {
	old := *h
	top := old[0]
	n := len(old) - 1
	old[0] = old[n]
	*h = old[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && (*h).less(l, small) {
			small = l
		}
		if r < n && (*h).less(r, small) {
			small = r
		}
		if small == i {
			break
		}
		(*h)[i], (*h)[small] = (*h)[small], (*h)[i]
		i = small
	}
	return top
}

// engine carries the shared state of one RunStream measurement.
type engine struct {
	ring      *netcast.BroadcastRing
	plan      *chaos.Plan
	ix        *core.AppearanceIndex
	chanOf    [][]int32
	stream    workload.Stream
	times     []float64
	pages     int
	cycleLen  int
	maxCycles int
	active    bool

	waits      []float64
	attempts   []int32
	ledgers    []chaos.Ledger
	watermarks []atomic.Int64
	failed     atomic.Bool
}

// RunStream measures stream against the analysed program under the fault
// plan, through the in-process ring transport. Metrics, ledger and trace
// digest are bit-identical to chaos.RunParallel on the same inputs at any
// worker count; with an inactive fault config they are therefore
// bit-identical to sim.MeasureStream.
func RunStream(ctx context.Context, a *core.Analysis, stream workload.Stream, fault chaos.Config, opts Options) (*Result, error) {
	if a == nil {
		return nil, errors.New("loadgen: nil analysis")
	}
	if stream == nil {
		return nil, errors.New("loadgen: nil stream")
	}
	prog := a.Program()
	plan, err := chaos.NewPlan(fault, prog.Channels(), prog.Length())
	if err != nil {
		return nil, err
	}
	maxCycles := fault.MaxCycles
	if maxCycles <= 0 {
		maxCycles = chaos.DefaultMaxCycles
	}
	base := &Result{
		Clients:  stream.Count(),
		Channels: prog.Channels(),
		CycleLen: prog.Length(),
	}
	count := stream.Count()
	if count == 0 {
		return finish(base, plan, prog)
	}

	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	shards := stream.Shards()
	if workers > shards {
		workers = shards
	}
	ring, err := netcast.NewBroadcastRing(prog.Channels(), opts.RingSlots)
	if err != nil {
		return nil, err
	}
	caster, err := netcast.NewCaster(prog, ring, plan)
	if err != nil {
		return nil, err
	}

	gs := prog.GroupSet()
	times := make([]float64, gs.Pages())
	for i := range times {
		times[i] = float64(gs.TimeOf(core.PageID(i)))
	}
	eng := &engine{
		ring:       ring,
		plan:       plan,
		ix:         a.Index(),
		chanOf:     chaos.ChannelTable(prog, a.Index()),
		stream:     stream,
		times:      times,
		pages:      gs.Pages(),
		cycleLen:   prog.Length(),
		maxCycles:  maxCycles,
		active:     fault.Active(),
		waits:      make([]float64, count),
		attempts:   make([]int32, count),
		ledgers:    make([]chaos.Ledger, shards),
		watermarks: make([]atomic.Int64, workers),
	}

	slotsAired := int64(maxCycles) * int64(prog.Length())
	errs := make([]error, workers+1)
	var wg sync.WaitGroup
	wg.Add(workers + 1)
	go func() {
		defer wg.Done()
		errs[workers] = eng.broadcast(ctx, caster, slotsAired)
	}()
	for w := 0; w < workers; w++ {
		w := w
		go func() {
			defer wg.Done()
			errs[w] = eng.work(ctx, w, workers, shards)
		}()
	}
	wg.Wait()
	// The broadcaster and every worker poll ctx and unblock on
	// cancellation, so the join above terminates; a cancelled run never
	// reports results, even if the goroutines happened to finish first.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	res, err := eng.fold(base, count, shards)
	if err != nil {
		return nil, err
	}
	res.SlotsAired = slotsAired
	res.FaultStats = caster.Faults()
	return finish(res, plan, prog)
}

// broadcast publishes exactly slots slots through the caster — the air
// does not stop when clients finish, so the server-side FaultStats are a
// deterministic function of the plan — pacing itself so no slot a client
// still needs is ever overwritten: slot abs may air only once every
// worker's pending watermark is within one ring length of it. Watermarks
// are per-worker monotone (a heap pops in slot order and every retry
// reschedules later), so a slot that cleared the gate can never be
// wanted again.
func (e *engine) broadcast(ctx context.Context, caster *netcast.Caster, slots int64) error {
	ringSlots := int64(e.ring.Slots())
	for abs := int64(0); abs < slots; abs++ {
		// abs-ringSlots >= watermark, not abs >= watermark+ringSlots: the
		// finished-worker watermark is MaxInt64 and must not overflow.
		for abs-ringSlots >= e.minWatermark() {
			if err := ctx.Err(); err != nil {
				e.failed.Store(true)
				return err
			}
			if e.failed.Load() {
				return nil
			}
			runtime.Gosched()
		}
		caster.CastSlot(int(abs))
	}
	return nil
}

func (e *engine) minWatermark() int64 {
	min := int64(math.MaxInt64)
	for i := range e.watermarks {
		if w := e.watermarks[i].Load(); w < min {
			min = w
		}
	}
	return min
}

// work runs one client shard-group: build the delivery state machines
// for every owned shard, then drain them in slot order against the ring.
// The worker's watermark stays 0 for the whole build phase — a later
// shard can contribute an earlier first event, so advancing it early
// would let the broadcaster overwrite a slot a still-unbuilt client
// needs.
func (e *engine) work(ctx context.Context, w, workers, shards int) error {
	defer e.watermarks[w].Store(math.MaxInt64)
	heap := make(eventHeap, 0, (e.stream.Count()/workers)+1)
	cur := e.stream.NewCursor()
	L := float64(e.cycleLen)
	var r workload.Request
	for shard := w; shard < shards; shard += workers {
		ledger := &e.ledgers[shard]
		cur.Seek(shard)
		for local := 0; cur.Next(&r); local++ {
			glob := int64(shard)*workload.ShardSize + int64(local)
			if r.Page < 0 || int(r.Page) >= e.pages {
				e.failed.Store(true)
				return fmt.Errorf("%w: request %d page %d", core.ErrPageRange, glob, r.Page)
			}
			if r.Arrival < 0 {
				e.failed.Store(true)
				return fmt.Errorf("%w: request %d arrival %f negative", core.ErrSlotRange, glob, r.Arrival)
			}
			u := math.Mod(r.Arrival, L)
			cols := e.ix.Columns(r.Page)
			if len(cols) == 0 {
				// Never-aired page: the engines charge a full cycle.
				e.waits[glob] = L
				continue
			}
			// First candidate appearance at or after the arrival offset.
			// One comparison form serves both engine branches: for integer
			// columns, col >= u (float) and col >= ceil(u) (int) select the
			// same k, and the sorted-cursor walk stops there too.
			k := int32(sort.Search(len(cols), func(i int) bool { return float64(cols[i]) >= u }))
			wraps := int32(0)
			if int(k) == len(cols) {
				k, wraps = 0, 1
			}
			if int(wraps) >= e.maxCycles {
				// Only reachable at MaxCycles 1 with a wrapped arrival:
				// the engine gives up before the first opportunity.
				ledger.Unserved++
				e.waits[glob] = float64(e.maxCycles) * L
				continue
			}
			heap.push(client{
				glob:  glob,
				page:  r.Page,
				u:     u,
				k:     k,
				wraps: wraps,
				next:  int64(wraps)*int64(e.cycleLen) + int64(cols[k]),
				ch:    e.chanOf[r.Page][k],
			})
		}
	}
	for len(heap) > 0 {
		next := heap[0].next
		e.watermarks[w].Store(next)
		ch := int(heap[0].ch)
		for e.ring.Head(ch) <= next {
			if err := ctx.Err(); err != nil {
				e.failed.Store(true)
				return err
			}
			if e.failed.Load() {
				return nil
			}
			runtime.Gosched()
		}
		c := heap.pop()
		done, err := e.step(&c, &e.ledgers[int(c.glob/workload.ShardSize)], L)
		if err != nil {
			e.failed.Store(true)
			return err
		}
		if !done {
			heap.push(c)
		}
	}
	return nil
}

// step resolves one delivery opportunity for client c against the ring,
// in the measurement engine's exact priority order: the slot's poll
// status covers the channel-side faults (stall, loss, corruption), a
// received frame can still be missed to client churn, and a served
// client computes its wait with the engine's exact arithmetic.
func (e *engine) step(c *client, ledger *chaos.Ledger, L float64) (done bool, err error) {
	abs := c.next
	cols := e.ix.Columns(c.page)
	f, st := e.ring.Poll(int(c.ch), abs)
	skipped := true
	switch st {
	case netcast.RingOK:
		if f.Page != c.page {
			return false, fmt.Errorf("loadgen: slot %d channel %d carried page %d, client expected %d",
				abs, c.ch, f.Page, c.page)
		}
		if e.active && e.plan.ChurnAway(c.glob, int(c.attempts)) {
			ledger.ChurnSkips++
		} else {
			skipped = false
		}
	case netcast.RingSkipped:
		switch e.plan.Classify(int(c.ch), int(abs)) {
		case chaos.SkipStall:
			ledger.StallSkips++
		case chaos.SkipLoss:
			ledger.LostDeliveries++
		default:
			return false, fmt.Errorf("loadgen: slot %d channel %d skipped without a plan fault", abs, c.ch)
		}
	case netcast.RingCorrupt:
		if e.plan.Classify(int(c.ch), int(abs)) != chaos.SkipCorrupt {
			return false, fmt.Errorf("loadgen: slot %d channel %d corrupt without a plan fault", abs, c.ch)
		}
		ledger.CorruptSkips++
	case netcast.RingLost:
		// Flow control guarantees this cannot happen; if it does, the
		// determinism contract is broken and the run must fail loudly.
		return false, fmt.Errorf("loadgen: slot %d channel %d overwritten before client %d read it",
			abs, c.ch, c.glob)
	case netcast.RingPending:
		return false, fmt.Errorf("loadgen: slot %d channel %d polled before airing", abs, c.ch)
	}
	if skipped {
		c.attempts++
		ledger.Retries++
		if c.k++; int(c.k) == len(cols) {
			c.k, c.wraps = 0, c.wraps+1
		}
		if int(c.wraps) >= e.maxCycles {
			ledger.Unserved++
			e.waits[c.glob] = float64(e.maxCycles) * L
			e.attempts[c.glob] = c.attempts
			return true, nil
		}
		c.next = int64(c.wraps)*int64(e.cycleLen) + int64(cols[c.k])
		c.ch = e.chanOf[c.page][c.k]
		return false, nil
	}
	var wait float64
	if c.wraps == 0 {
		wait = float64(cols[c.k]) - c.u
	} else {
		wait = float64(cols[c.k]) + float64(c.wraps)*L - c.u
	}
	// With an inactive plan this adds exactly +0.0, so the fault-free
	// wait stays bit-identical to the engines' closed-form branch.
	wait += e.plan.JitterAt(int(abs))
	e.waits[c.glob] = wait
	e.attempts[c.glob] = c.attempts
	return true, nil
}

// fold aggregates the per-request outcomes exactly as the measurement
// engines do: per-shard partials accumulated in request order, folded in
// ascending shard order — the float-summation order that makes the
// result worker-count-independent and engine-identical. The sketches are
// integer-binned and therefore order-insensitive; one pair fed in fold
// order equals the engines' merged per-worker sketches.
func (e *engine) fold(base *Result, count, shards int) (*Result, error) {
	L := float64(e.cycleLen)
	ws, err1 := stats.NewSketch(L/sketchResolution, L, sketchQuantileAccuracy)
	ds, err2 := stats.NewSketch(L/sketchResolution, L, sketchQuantileAccuracy)
	if err := errors.Join(err1, err2); err != nil {
		return nil, err
	}

	var wait, delay stats.Online
	var waitSum, delaySum float64
	var misses int64
	var ledger chaos.Ledger
	digest := fnvOffset
	cur := e.stream.NewCursor()
	var r workload.Request
	for shard := 0; shard < shards; shard++ {
		var pw, pd stats.Online
		var pwSum, pdSum float64
		var pMisses int64
		pDigest := fnvOffset
		cur.Seek(shard)
		for local := 0; cur.Next(&r); local++ {
			glob := int64(shard)*workload.ShardSize + int64(local)
			wv := e.waits[glob]
			dv := wv - e.times[r.Page]
			if dv < 0 {
				dv = 0
			} else if dv > 0 {
				pMisses++
			}
			pw.Add(wv)
			pd.Add(dv)
			pwSum += wv
			pdSum += dv
			ws.Add(wv)
			ds.Add(dv)
			d := fnv64(pDigest, uint64(uint32(r.Page)))
			d = fnv64(d, math.Float64bits(wv))
			pDigest = fnv64(d, uint64(e.attempts[glob]))
		}
		wait.Merge(pw)
		delay.Merge(pd)
		waitSum += pwSum
		delaySum += pdSum
		misses += pMisses
		addLedger(&ledger, &e.ledgers[shard])
		digest = fnv64(digest, pDigest)
	}

	base.Metrics = sim.Metrics{
		Requests:  count,
		AvgWait:   waitSum / float64(count),
		AvgDelay:  delaySum / float64(count),
		MissRatio: float64(misses) / float64(count),
		Wait:      summarize(wait, ws),
		Delay:     summarize(delay, ds),
	}
	base.Ledger = ledger
	base.Misses = misses
	base.TraceDigest = digest
	return base, nil
}

func addLedger(l, o *chaos.Ledger) {
	l.LostDeliveries += o.LostDeliveries
	l.CorruptSkips += o.CorruptSkips
	l.StallSkips += o.StallSkips
	l.ChurnSkips += o.ChurnSkips
	l.Retries += o.Retries
	l.Unserved += o.Unserved
}

// finish attaches the plan-level quantities exactly as the chaos engine
// does: effective loss always, the graceful-degradation replan when the
// config asks for one and the plan degrades capacity below nominal.
func finish(res *Result, plan *chaos.Plan, prog *core.Program) (*Result, error) {
	res.EffectiveLoss = plan.EffectiveLossRate()
	if plan.Config().Replan {
		eff := plan.EffectiveChannels()
		if eff < prog.Channels() {
			eng, err := replan.New(prog.GroupSet(), prog.Channels())
			if err != nil {
				return nil, fmt.Errorf("loadgen: degradation replan at %d channels: %w", eff, err)
			}
			delta, err := eng.SetChannels(eff)
			if err != nil {
				return nil, fmt.Errorf("loadgen: degradation replan at %d channels: %w", eff, err)
			}
			res.Result.Replan = &chaos.Replan{
				EffectiveChannels: eff,
				Frequencies:       eng.Frequencies(),
				MajorCycle:        eng.Program().Length(),
				AnalyticDelay:     eng.Delay(),
				DeltaKind:         delta.Kind.String(),
				ClearedCells:      delta.ClearedCells,
				PlacedCells:       delta.PlacedCells,
			}
		}
	}
	return res, nil
}

// summarize mirrors the engines' summary construction.
func summarize(o stats.Online, sk *stats.Sketch) stats.Summary {
	return stats.Summary{
		N:      int(o.N()),
		Mean:   o.Mean(),
		StdDev: o.StdDev(),
		Min:    o.Min(),
		Max:    o.Max(),
		P50:    sk.Quantile(0.50),
		P95:    sk.Quantile(0.95),
		P99:    sk.Quantile(0.99),
	}
}
