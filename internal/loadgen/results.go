package loadgen

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"tcsa/internal/chaos"
	"tcsa/internal/netcast"
	"tcsa/internal/sim"
)

// ConfigLabel is the filesystem-safe scenario label used as the result
// directory name: distribution, population, channel count (0 = knee
// default), and the headline fault knobs.
func ConfigLabel(cfg Config) string {
	return fmt.Sprintf("%s_n%d_c%d_loss%g_churn%g_seed%d",
		cfg.Dist, cfg.Clients, cfg.Channels, cfg.Fault.Loss, cfg.Fault.Churn, cfg.Seed)
}

// configView is the config.json schema: the scenario knobs with the
// distribution spelled out, so a results directory is reproducible from
// its own metadata.
type configView struct {
	Clients    int          `json:"clients"`
	Workers    int          `json:"workers"`
	Dist       string       `json:"dist"`
	Channels   int          `json:"channels"`
	Pages      int          `json:"pages"`
	Groups     int          `json:"groups"`
	BaseTime   int          `json:"base_time"`
	Ratio      int          `json:"ratio"`
	Seed       int64        `json:"seed"`
	PageChoice string       `json:"page_choice"`
	Theta      float64      `json:"theta,omitempty"`
	RingSlots  int          `json:"ring_slots"`
	Fault      chaos.Config `json:"fault"`
}

// summaryView is the summary.json schema: the measured metrics plus the
// determinism fingerprint and the transport-side accounting.
type summaryView struct {
	Metrics       sim.Metrics        `json:"metrics"`
	Misses        int64              `json:"misses"`
	EffectiveLoss float64            `json:"effective_loss"`
	TraceDigest   string             `json:"trace_digest"`
	SlotsAired    int64              `json:"slots_aired"`
	Channels      int                `json:"channels"`
	CycleLen      int                `json:"cycle_len"`
	FaultStats    netcast.FaultStats `json:"fault_stats"`
	Replan        *chaos.Replan      `json:"replan,omitempty"`
}

// WriteResult persists one scenario's outcome under dir as the committed
// results schema: config.json (the scenario), summary.json (metrics +
// fingerprint), ledger.json (the fault ledger).
func WriteResult(dir string, cfg Config, res *Result) error {
	if res == nil {
		return fmt.Errorf("loadgen: nil result for %s", dir)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	cfg = cfg.withDefaults()
	pageChoice := "uniform"
	if cfg.PageChoice != 0 {
		pageChoice = "zipf"
	}
	files := map[string]any{
		"config.json": configView{
			Clients:    cfg.Clients,
			Workers:    cfg.Workers,
			Dist:       cfg.Dist.String(),
			Channels:   cfg.Channels,
			Pages:      cfg.Pages,
			Groups:     cfg.Groups,
			BaseTime:   cfg.BaseTime,
			Ratio:      cfg.Ratio,
			Seed:       cfg.Seed,
			PageChoice: pageChoice,
			Theta:      cfg.Theta,
			RingSlots:  cfg.RingSlots,
			Fault:      cfg.Fault,
		},
		"summary.json": summaryView{
			Metrics:       res.Metrics,
			Misses:        res.Misses,
			EffectiveLoss: res.EffectiveLoss,
			TraceDigest:   fmt.Sprintf("%016x", res.TraceDigest),
			SlotsAired:    res.SlotsAired,
			Channels:      res.Channels,
			CycleLen:      res.CycleLen,
			FaultStats:    res.FaultStats,
			Replan:        res.Result.Replan,
		},
		"ledger.json": res.Ledger,
	}
	for name, v := range files {
		buf, err := json.MarshalIndent(v, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(dir, name), append(buf, '\n'), 0o644); err != nil {
			return err
		}
	}
	return nil
}
