package conformance_test

import (
	"context"
	"math/rand"
	"testing"

	"tcsa/internal/conformance"
	"tcsa/internal/core"
	"tcsa/internal/mpb"
	"tcsa/internal/opt"
	"tcsa/internal/pamad"
)

// differentialSeeds pins the randomized insufficient-channel instances on
// which the built programs' exact measured delays satisfy the paper's
// analytic ordering OPT <= PAMAD <= m-PB. The ordering is proven for the
// *analytic* delay model D'; after Algorithm 4 discretises the frequencies
// onto a finite grid, placement effects can invert near-ties. A sweep of
// seeds 1..80 found exactly two such inversions, excluded below and kept
// here as documentation:
//
//	seed 9:  {t=3:P=4, t=6:P=11, t=12:P=7} N=3 — OPT's placed program
//	         measures 0.2063 vs PAMAD's 0.1970 (OPT optimises D', not the
//	         placed grid)
//	seed 30: {t=3:P=3, t=6:P=10} N=2 — PAMAD 0.3187 vs m-PB 0.2212
//
// Everything else in 1..80 holds the ordering exactly (tolerance-free,
// compared as big.Rat), so these 78 instances form a regression corpus: any
// scheduler change that breaks the ordering on one of them is a real
// behavioural regression, not discretisation noise.
var differentialSeeds = func() []int64 {
	seeds := make([]int64, 0, 78)
	for s := int64(1); s <= 80; s++ {
		if s == 9 || s == 30 {
			continue
		}
		seeds = append(seeds, s)
	}
	return seeds
}()

// TestDifferentialDelayOrdering builds OPT, PAMAD, and m-PB programs on the
// pinned random insufficient-channel instances and asserts the exact
// (rational-arithmetic) average delay ordering OPT <= PAMAD <= m-PB.
func TestDifferentialDelayOrdering(t *testing.T) {
	ctx := context.Background()
	for _, seed := range differentialSeeds {
		rng := rand.New(rand.NewSource(seed))
		gs := differentialGroupSet(rng)
		min := gs.MinChannels()
		if min < 2 {
			continue // no insufficient-channel regime to test
		}
		nReal := 1 + rng.Intn(min-1)

		oProg, _, err := opt.Build(ctx, gs, nReal, opt.Options{})
		if err != nil {
			t.Fatalf("seed %d (%v N=%d): opt: %v", seed, gs, nReal, err)
		}
		pProg, _, err := pamad.Build(gs, nReal)
		if err != nil {
			t.Fatalf("seed %d (%v N=%d): pamad: %v", seed, gs, nReal, err)
		}
		mProg, _, err := mpb.Build(gs, nReal)
		if err != nil {
			t.Fatalf("seed %d (%v N=%d): mpb: %v", seed, gs, nReal, err)
		}

		od := conformance.ExactAvgDelay(oProg)
		pd := conformance.ExactAvgDelay(pProg)
		md := conformance.ExactAvgDelay(mProg)
		if od.Cmp(pd) > 0 {
			of, _ := od.Float64()
			pf, _ := pd.Float64()
			t.Errorf("seed %d (%v N=%d): OPT %.6f > PAMAD %.6f", seed, gs, nReal, of, pf)
		}
		if pd.Cmp(md) > 0 {
			pf, _ := pd.Float64()
			mf, _ := md.Float64()
			t.Errorf("seed %d (%v N=%d): PAMAD %.6f > m-PB %.6f", seed, gs, nReal, pf, mf)
		}
	}
}

// differentialGroupSet mirrors the generator used to select the pinned
// seeds: small divisor-chain instances (2-3 groups, doubling expected
// times) kept tiny so the exact OPT search stays fast.
func differentialGroupSet(rng *rand.Rand) *core.GroupSet {
	h := 2 + rng.Intn(2)
	groups := make([]core.Group, h)
	tt := 2 + rng.Intn(3)
	for i := 0; i < h; i++ {
		groups[i] = core.Group{Time: tt, Count: 2 + rng.Intn(10)}
		tt *= 2
	}
	return core.MustGroupSet(groups)
}
