package conformance

import (
	"strings"
	"testing"

	"tcsa/internal/core"
)

// onlineTestProgram is a 1-channel, 4-slot grid airing pages 0..2 with
// slot 3 empty (page 3 exists but never airs on push).
func onlineTestProgram(t *testing.T) *core.Program {
	t.Helper()
	gs, err := core.NewGroupSet([]core.Group{{Count: 4, Time: 4}})
	if err != nil {
		t.Fatal(err)
	}
	prog, err := core.NewProgram(gs, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 3; s++ {
		if err := prog.Place(0, s, core.PageID(s)); err != nil {
			t.Fatal(err)
		}
	}
	return prog
}

func TestOnlineConservationAccepts(t *testing.T) {
	prog := onlineTestProgram(t)
	// Page 3 only airs online, at slot 3; page 1 is push-served at slot 1.
	airings := []SlotAiring{{Slot: 3, Channel: 0, Page: 3}}
	pages := []core.PageID{1, 3}
	arrivals := []float64{0.5, 1}
	flows := []float64{0.5, 2}
	if err := OnlineConservation(prog, 1, airings, pages, arrivals, flows); err != nil {
		t.Fatal(err)
	}
}

func TestOnlineConservationRejects(t *testing.T) {
	prog := onlineTestProgram(t)
	airings := []SlotAiring{{Slot: 3, Channel: 0, Page: 3}}
	cases := []struct {
		name     string
		airings  []SlotAiring
		pages    []core.PageID
		arrivals []float64
		flows    []float64
		want     string
	}{
		{
			name:  "wrong flow",
			pages: []core.PageID{1}, arrivals: []float64{0.5}, flows: []float64{1.5},
			airings: airings, want: "first on-air instant",
		},
		{
			name:  "never served",
			pages: []core.PageID{3}, arrivals: []float64{4.5}, flows: []float64{1},
			airings: airings, want: "never served",
		},
		{
			name:  "preempted push cell",
			pages: []core.PageID{}, arrivals: []float64{}, flows: []float64{},
			airings: []SlotAiring{{Slot: 1, Channel: 0, Page: 3}}, want: "preempts push cell",
		},
		{
			name:  "duplicate of push broadcast",
			pages: []core.PageID{}, arrivals: []float64{}, flows: []float64{},
			airings: []SlotAiring{{Slot: 6, Channel: 5, Page: 2}}, want: "duplicates push broadcast",
		},
		{
			name:  "length mismatch",
			pages: []core.PageID{1}, arrivals: []float64{}, flows: []float64{},
			airings: airings, want: "arrivals",
		},
	}
	for _, tc := range cases {
		err := OnlineConservation(prog, 1, tc.airings, tc.pages, tc.arrivals, tc.flows)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: err = %v, want contains %q", tc.name, err, tc.want)
		}
	}
}

func TestPushIntegrityOracle(t *testing.T) {
	prog := onlineTestProgram(t)
	ok := []SlotAiring{
		{Slot: 3, Channel: 0, Page: 3}, // empty push cell
		{Slot: 1, Channel: 5, Page: 3}, // reserved channel, above the grid
	}
	if err := PushIntegrity(prog, 1, ok); err != nil {
		t.Fatal(err)
	}
	bad := []SlotAiring{{Slot: 5, Channel: 0, Page: 3}} // column 1 holds page 1
	if err := PushIntegrity(prog, 1, bad); err == nil {
		t.Fatal("overwritten push cell not detected")
	}
	if err := PushIntegrity(prog, 9, nil); err == nil {
		t.Fatal("push rows beyond the grid not detected")
	}
}

func TestLWFDominanceOracle(t *testing.T) {
	if err := LWFDominance(10, "fcfs", 12); err != nil {
		t.Fatal(err)
	}
	if err := LWFDominance(10, "fcfs", 10); err != nil {
		t.Fatal("equality must pass")
	}
	if err := LWFDominance(13, "fcfs", 12); err == nil {
		t.Fatal("dominance violation not detected")
	}
}

func TestSingleChannelBacklogShape(t *testing.T) {
	pages, arrivals := SingleChannelBacklog(3, 5)
	if len(pages) != 8 || len(arrivals) != 8 {
		t.Fatalf("shape: %d/%d", len(pages), len(arrivals))
	}
	for i := 0; i < 5; i++ {
		if pages[i] != core.PageID(i) || arrivals[i] != 0 {
			t.Fatalf("decoy %d: page %d arrival %g", i, pages[i], arrivals[i])
		}
	}
	for i := 5; i < 8; i++ {
		if pages[i] != 5 || arrivals[i] != 0.25 {
			t.Fatalf("hot %d: page %d arrival %g", i, pages[i], arrivals[i])
		}
	}
}
