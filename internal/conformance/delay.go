package conformance

import (
	"math/big"

	"tcsa/internal/core"
)

// ExactAvgDelay computes the expected delay of a uniform request (page and
// arrival instant both uniform) against a finished program, as an exact
// rational — no floating point anywhere, so cross-scheduler comparisons
// (OPT vs PAMAD vs m-PB) are tolerance-free even when the programs have
// different cycle lengths.
//
// Derivation: a request for page p arriving inside a broadcast gap of
// length g waits between 0 and g slots, uniformly; the portion exceeding
// t_p contributes the integral (g-t_p)^2/2. A page never broadcast waits a
// full cycle from any instant, contributing L*max(0, L-t_p). The result is
//
//	( sum_p [ sum_{gaps g of p} max(0, g-t_p)^2  +  2*L*max(0, L-t_p) if unbroadcast ] )
//	-----------------------------------------------------------------------------------
//	                                   2 * n * L
//
// which mirrors the continuous-arrival model used by core.Analyze and
// delaymodel while staying independent of both implementations.
func ExactAvgDelay(prog *core.Program) *big.Rat {
	gs := prog.GroupSet()
	L := prog.Length()
	n := gs.Pages()
	num := new(big.Int)
	tmp := new(big.Int)
	for id := core.PageID(0); int(id) < n; id++ {
		t := gs.TimeOf(id)
		cols := prog.Appearances(id)
		if len(cols) == 0 {
			if L > t {
				tmp.SetInt64(2 * int64(L) * int64(L-t))
				num.Add(num, tmp)
			}
			continue
		}
		for k := range cols {
			var g int
			if k == 0 {
				g = cols[0] + L - cols[len(cols)-1]
			} else {
				g = cols[k] - cols[k-1]
			}
			if g > t {
				tmp.SetInt64(int64(g-t) * int64(g-t))
				num.Add(num, tmp)
			}
		}
	}
	den := new(big.Int).SetInt64(2 * int64(n) * int64(L))
	return new(big.Rat).SetFrac(num, den)
}
