package conformance

import (
	"fmt"

	"tcsa/internal/core"
)

// TransitionBound is the epoch-handoff oracle: it replays, for every item
// and every integer arrival instant u in [0, L_old) of the final old
// cycle, the wait a client actually experiences under the splice model —
// served in-cycle by the old program if any appearance lies at or after u,
// otherwise carried across the boundary to the new program's phase-0
// appearance — and checks each measured wait against the caller-supplied
// per-item bound (adaptive.SpliceBounds in production).
//
// The replay is deliberately independent of the adaptive package's closed
// forms: it sweeps the grids directly, builds its own appearance lists,
// and walks every arrival with a two-pointer scan, O(items * L) total.
// oldIDs and newIDs give each item's page identity in the respective
// programs (the replan engine's Delta.RemapPage output); bounds[i] is the
// maximum tolerated wait in slots for item i.
func TransitionBound(old, next *core.Program, oldIDs, newIDs []core.PageID, bounds []float64) error {
	if old == nil || next == nil {
		return fmt.Errorf("%w: nil program", core.ErrInvalidProgram)
	}
	if len(oldIDs) != len(newIDs) || len(oldIDs) != len(bounds) {
		return fmt.Errorf("%w: %d old IDs, %d new IDs, %d bounds",
			core.ErrInvalidProgram, len(oldIDs), len(newIDs), len(bounds))
	}
	items := len(oldIDs)
	L := old.Length()

	// Independent appearance lists: sweep the grids column-major so each
	// item's columns come out sorted, deduplicating same-column repeats.
	oldItem := make(map[core.PageID]int, items)
	newItem := make(map[core.PageID]int, items)
	for i := 0; i < items; i++ {
		if oldIDs[i] != core.None {
			oldItem[oldIDs[i]] = i
		}
		if newIDs[i] != core.None {
			newItem[newIDs[i]] = i
		}
	}
	cols := make([][]int, items)
	for col := 0; col < L; col++ {
		for ch := 0; ch < old.Channels(); ch++ {
			id := old.At(ch, col)
			if id == core.None {
				continue
			}
			if i, ok := oldItem[id]; ok {
				if n := len(cols[i]); n == 0 || cols[i][n-1] != col {
					cols[i] = append(cols[i], col)
				}
			}
		}
	}
	firstNew := make([]int, items)
	for i := range firstNew {
		firstNew[i] = -1
	}
	for col := 0; col < next.Length(); col++ {
		for ch := 0; ch < next.Channels(); ch++ {
			id := next.At(ch, col)
			if id == core.None {
				continue
			}
			if i, ok := newItem[id]; ok && firstNew[i] == -1 {
				firstNew[i] = col
			}
		}
	}

	const eps = 1e-9
	for i := 0; i < items; i++ {
		if newIDs[i] == core.None {
			// Item retired by the transition: no post-boundary service to
			// bound; in-cycle arrivals must still meet the bound.
			if len(cols[i]) == 0 {
				continue
			}
		} else if firstNew[i] == -1 {
			return fmt.Errorf("%w: item %d (page %d) never broadcast by the next program",
				core.ErrInvalidProgram, i, newIDs[i])
		}
		k := 0
		for u := 0; u < L; u++ {
			for k < len(cols[i]) && cols[i][k] < u {
				k++
			}
			var wait float64
			if k < len(cols[i]) {
				wait = float64(cols[i][k] - u)
			} else if newIDs[i] == core.None {
				break // retired and past its last old appearance: never served
			} else {
				wait = float64(L-u) + float64(firstNew[i])
			}
			if wait > bounds[i]+eps {
				return fmt.Errorf("%w: item %d arriving at slot %d waits %.3f slots > bound %.3f",
					core.ErrInvalidProgram, i, u, wait, bounds[i])
			}
		}
	}
	return nil
}
