package conformance_test

import (
	"errors"
	"math/big"
	"testing"

	"tcsa/internal/conformance"
	"tcsa/internal/core"
	"tcsa/internal/mpb"
	"tcsa/internal/pamad"
	"tcsa/internal/susc"
)

func geometric(t *testing.T, t1, c int, counts []int) *core.GroupSet {
	t.Helper()
	gs, err := core.Geometric(t1, c, counts)
	if err != nil {
		t.Fatalf("Geometric: %v", err)
	}
	return gs
}

func TestMinChannelLawMatchesCore(t *testing.T) {
	cases := []*core.GroupSet{
		geometric(t, 4, 2, []int{3, 5, 9}),
		geometric(t, 2, 3, []int{1, 2, 3, 4}),
		geometric(t, 8, 2, []int{16, 8, 4, 2}),
		core.MustGroupSet([]core.Group{{Time: 5, Count: 7}}),
	}
	for _, gs := range cases {
		if got, want := conformance.MinChannelLaw(gs), gs.MinChannels(); got != want {
			t.Errorf("%v: MinChannelLaw=%d, core.MinChannels=%d", gs, got, want)
		}
	}
}

func TestOraclesAcceptSUSC(t *testing.T) {
	gs := geometric(t, 4, 2, []int{3, 5, 9})
	prog, err := susc.Build(gs, gs.MinChannels())
	if err != nil {
		t.Fatalf("susc.Build: %v", err)
	}
	if err := conformance.ValidFromAnyStart(prog); err != nil {
		t.Errorf("ValidFromAnyStart: %v", err)
	}
	if err := conformance.ChannelLaw(prog); err != nil {
		t.Errorf("ChannelLaw: %v", err)
	}
	if err := conformance.PeriodicSpacing(prog); err != nil {
		t.Errorf("PeriodicSpacing: %v", err)
	}
	if err := conformance.SlotOccupancy(prog); err != nil {
		t.Errorf("SlotOccupancy: %v", err)
	}
	if err := conformance.MissFreeLaw(prog, 0); err != nil {
		t.Errorf("MissFreeLaw(0): %v", err)
	}
}

func TestValidFromAnyStartRejectsCorruption(t *testing.T) {
	gs := geometric(t, 4, 2, []int{3, 5, 9})
	prog, err := susc.Build(gs, gs.MinChannels())
	if err != nil {
		t.Fatalf("susc.Build: %v", err)
	}
	// Erase one appearance of page 0 (t=4): the resulting 2*t gap must trip
	// the oracle.
	cols := prog.Appearances(0)
	if len(cols) < 2 {
		t.Fatalf("page 0 has %d appearances, need >= 2", len(cols))
	}
	var channel int
	for ch := 0; ch < prog.Channels(); ch++ {
		if prog.At(ch, cols[1]) == 0 {
			channel = ch
		}
	}
	prog.Clear(channel, cols[1])
	if err := conformance.ValidFromAnyStart(prog); err == nil {
		t.Fatal("oracle accepted a program with an erased appearance")
	} else if !errors.Is(err, core.ErrInvalidProgram) {
		t.Fatalf("error %v does not wrap core.ErrInvalidProgram", err)
	}
	if err := conformance.PeriodicSpacing(prog); err == nil {
		t.Fatal("PeriodicSpacing accepted a program with an erased appearance")
	}
	if err := conformance.SlotOccupancy(prog); err == nil {
		t.Fatal("SlotOccupancy accepted a program with an erased appearance")
	}
}

func TestValidFromAnyStartRejectsMissingPage(t *testing.T) {
	gs := geometric(t, 2, 2, []int{1, 1})
	prog, err := core.NewProgram(gs, 2, 4)
	if err != nil {
		t.Fatalf("NewProgram: %v", err)
	}
	// Page 0 every 2 slots, page 1 never broadcast.
	for _, c := range []int{0, 2} {
		if err := prog.Place(0, c, 0); err != nil {
			t.Fatalf("Place: %v", err)
		}
	}
	if err := conformance.ValidFromAnyStart(prog); err == nil {
		t.Fatal("oracle accepted a program missing page 1")
	}
}

func TestValidFromAnyStartRejectsLateFirstAppearance(t *testing.T) {
	// A single page with t=2 broadcast only at slot 3 of a length-4 cycle:
	// the gap is exactly L=4 > t, and the first appearance is past t. Both
	// violations must be caught even though the page does appear.
	gs := core.MustGroupSet([]core.Group{{Time: 2, Count: 1}})
	prog, err := core.NewProgram(gs, 1, 4)
	if err != nil {
		t.Fatalf("NewProgram: %v", err)
	}
	if err := prog.Place(0, 3, 0); err != nil {
		t.Fatalf("Place: %v", err)
	}
	if err := conformance.ValidFromAnyStart(prog); err == nil {
		t.Fatal("oracle accepted a late-first-appearance program")
	}
}

func TestChannelLawVacuousOnInvalid(t *testing.T) {
	// An empty program is invalid, so Theorem 3.1 imposes nothing on it.
	gs := geometric(t, 4, 2, []int{3, 5, 9})
	prog, err := core.NewProgram(gs, 1, 8)
	if err != nil {
		t.Fatalf("NewProgram: %v", err)
	}
	if err := conformance.ChannelLaw(prog); err != nil {
		t.Errorf("ChannelLaw on invalid program: %v", err)
	}
}

func TestSpillAccountingAcceptsPAMADAndMPB(t *testing.T) {
	gs := geometric(t, 4, 2, []int{3, 5, 9})
	short := gs.MinChannels() - 2
	if short < 1 {
		short = 1
	}

	prog, res, err := pamad.Build(gs, short)
	if err != nil {
		t.Fatalf("pamad.Build: %v", err)
	}
	counts := conformance.PlacementCounts{
		Spills:     res.Placement.Spills,
		EmptySlots: res.Placement.EmptySlots,
	}
	if err := conformance.SpillAccounting(prog, res.Frequencies, counts); err != nil {
		t.Errorf("pamad: SpillAccounting: %v", err)
	}

	mprog, mres, err := mpb.Build(gs, short)
	if err != nil {
		t.Fatalf("mpb.Build: %v", err)
	}
	mcounts := conformance.PlacementCounts{
		Spills:     mres.Placement.Spills,
		EmptySlots: mres.Placement.EmptySlots,
	}
	if err := conformance.SpillAccounting(mprog, mres.Frequencies, mcounts); err != nil {
		t.Errorf("mpb: SpillAccounting: %v", err)
	}
}

func TestSpillAccountingRejectsWrongCounts(t *testing.T) {
	gs := geometric(t, 4, 2, []int{3, 5, 9})
	prog, res, err := pamad.Build(gs, 2)
	if err != nil {
		t.Fatalf("pamad.Build: %v", err)
	}
	bad := conformance.PlacementCounts{
		Spills:     res.Placement.Spills,
		EmptySlots: res.Placement.EmptySlots + 1,
	}
	if err := conformance.SpillAccounting(prog, res.Frequencies, bad); err == nil {
		t.Fatal("SpillAccounting accepted an off-by-one EmptySlots")
	}
}

func TestMissFreeLawRejectsMisses(t *testing.T) {
	gs := geometric(t, 4, 2, []int{3, 5, 9})
	prog, err := susc.Build(gs, gs.MinChannels())
	if err != nil {
		t.Fatalf("susc.Build: %v", err)
	}
	if err := conformance.MissFreeLaw(prog, 3); err == nil {
		t.Fatal("MissFreeLaw accepted misses on a valid program")
	}
}

func TestExactAvgDelayZeroOnValid(t *testing.T) {
	gs := geometric(t, 4, 2, []int{3, 5, 9})
	prog, err := susc.Build(gs, gs.MinChannels())
	if err != nil {
		t.Fatalf("susc.Build: %v", err)
	}
	if d := conformance.ExactAvgDelay(prog); d.Sign() != 0 {
		t.Errorf("valid SUSC program has exact delay %s, want 0", d.RatString())
	}
}

func TestExactAvgDelayHandComputed(t *testing.T) {
	// One page, t=2, broadcast once in a length-4 cycle at slot 0: the
	// single cyclic gap is 4, delay integral (4-2)^2/2 = 2, averaged over
	// n*L = 4 instants: 1/2.
	gs := core.MustGroupSet([]core.Group{{Time: 2, Count: 1}})
	prog, err := core.NewProgram(gs, 1, 4)
	if err != nil {
		t.Fatalf("NewProgram: %v", err)
	}
	if err := prog.Place(0, 0, 0); err != nil {
		t.Fatalf("Place: %v", err)
	}
	want := big.NewRat(1, 2)
	if d := conformance.ExactAvgDelay(prog); d.Cmp(want) != 0 {
		t.Errorf("ExactAvgDelay = %s, want %s", d.RatString(), want.RatString())
	}
}
