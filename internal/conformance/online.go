package conformance

import (
	"fmt"
	"math"

	"tcsa/internal/core"
)

// This file holds the oracles of the hybrid pull/push tier
// (internal/online). They deliberately take primitive slices — airing
// tuples, arrival/flow arrays — instead of online package types, keeping
// conformance's import set at core (+delaymodel) so the online package's
// own tests can use them without a cycle.

// SlotAiring is one online-tier broadcast: at absolute slot Slot, channel
// Channel carried page Page. The oracles below treat the push program grid
// plus a list of these as the complete as-aired timeline.
type SlotAiring struct {
	Slot    int
	Channel int
	Page    core.PageID
}

// OnlineConservation is the request-clearing conservation oracle: every
// request is served exactly once, at the first instant at or after its
// arrival when its page is on air (from either tier), and the reported
// flow time equals that instant minus the arrival. It replays the combined
// timeline by brute force — per-request linear scans over the grid and the
// airing log, no appearance index, no cursors — so a bug shared by the
// engine's scheduler and its measurement pass cannot cancel out.
//
// prog is the push program; pushRows is how many of its rows the push tier
// actually owns on air (0 for a pure-online system, Channels() otherwise
// — reserved online channels live above pushRows and appear only in
// airings). pages[i], arrivals[i], flows[i] describe request i.
func OnlineConservation(prog *core.Program, pushRows int, airings []SlotAiring, pages []core.PageID, arrivals, flows []float64) error {
	if len(arrivals) != len(pages) || len(flows) != len(pages) {
		return fmt.Errorf("conformance: %d pages, %d arrivals, %d flows", len(pages), len(arrivals), len(flows))
	}
	if pushRows < 0 || pushRows > prog.Channels() {
		return fmt.Errorf("conformance: push rows %d outside grid of %d channels", pushRows, prog.Channels())
	}
	L := prog.Length()
	// Airing legality: online airings on push-owned rows may only use empty
	// cells, and a page never airs twice in one slot across the two tiers.
	for i, a := range airings {
		if a.Slot < 0 || a.Channel < 0 || a.Page < 0 || int(a.Page) >= prog.GroupSet().Pages() {
			return fmt.Errorf("conformance: airing %d out of range: %+v", i, a)
		}
		if a.Channel < pushRows {
			if got := prog.At(a.Channel, prog.Column(a.Slot)); got != core.None {
				return fmt.Errorf("conformance: airing %d preempts push cell (ch %d, col %d holds page %d)",
					i, a.Channel, prog.Column(a.Slot), got)
			}
		}
		for ch := 0; ch < pushRows; ch++ {
			if prog.At(ch, prog.Column(a.Slot)) == a.Page {
				return fmt.Errorf("conformance: airing %d duplicates push broadcast of page %d at slot %d",
					i, a.Page, a.Slot)
			}
		}
	}
	for i := range pages {
		p, arr, flow := pages[i], arrivals[i], flows[i]
		// First push broadcast of p at an integer slot s with s >= arr:
		// scan one cycle of columns starting at ceil(arr mod L). base is an
		// exact integer multiple of L (math.Mod is exact), so base+abs-arr
		// below rounds the same real as the engine's column arithmetic.
		first := math.Inf(1)
		if pushRows > 0 {
			u := math.Mod(arr, float64(L))
			base := arr - u
			for off := 0; off <= L; off++ {
				abs := int(math.Ceil(u)) + off
				col := prog.Column(abs)
				found := false
				for ch := 0; ch < pushRows; ch++ {
					if prog.At(ch, col) == p {
						found = true
						break
					}
				}
				if found {
					first = base + float64(abs)
					break
				}
			}
		}
		// First online airing of p at or after arr (log scan, any order).
		for _, a := range airings {
			if a.Page == p && float64(a.Slot) >= arr && float64(a.Slot) < first {
				first = float64(a.Slot)
			}
		}
		if math.IsInf(first, 1) {
			return fmt.Errorf("conformance: request %d (page %d, arrival %g) is never served", i, p, arr)
		}
		if got, want := flow, first-arr; got != want {
			return fmt.Errorf("conformance: request %d (page %d, arrival %g): flow %g, first on-air instant gives %g",
				i, p, arr, got, want)
		}
	}
	return nil
}

// PushIntegrity checks that the online tier never touched a filled push
// cell: under every pull/push split the push program airs exactly its own
// grid, so its Section 3.1 validity guarantee (checked by
// ValidFromAnyStart) carries over to the hybrid timeline as aired.
func PushIntegrity(prog *core.Program, pushRows int, airings []SlotAiring) error {
	if pushRows < 0 || pushRows > prog.Channels() {
		return fmt.Errorf("conformance: push rows %d outside grid of %d channels", pushRows, prog.Channels())
	}
	for i, a := range airings {
		if a.Channel >= pushRows {
			continue // reserved online channel, not part of the push grid
		}
		if got := prog.At(a.Channel, prog.Column(a.Slot)); got != core.None {
			return fmt.Errorf("conformance: airing %d (slot %d, ch %d, page %d) overwrites push page %d",
				i, a.Slot, a.Channel, a.Page, got)
		}
	}
	return nil
}

// LWFDominance asserts the Longest-Wait-First side of an adversarial
// comparison: on instances built to punish arrival-order and deadline-order
// policies (see SingleChannelBacklog), LWF's total flow time must not
// exceed the rival policy's. rival names the policy for the error message.
func LWFDominance(lwfTotal float64, rival string, rivalTotal float64) error {
	if lwfTotal > rivalTotal {
		return fmt.Errorf("conformance: LWF total flow %g exceeds %s total flow %g on an adversarial instance",
			lwfTotal, rival, rivalTotal)
	}
	return nil
}

// SingleChannelBacklog generates the adversarial request pattern the LWF
// dominance suite runs on a single pure-online channel: decoy pages
// 0..decoys-1 receive one request each at t = 0, then a hot page (ID
// decoys) receives hot requests at t = 0.25. Arrival-order (FCFS) and
// deadline-order (EDF, under uniform expected times) policies burn the
// early slots on the decoys one page per slot while the hot page's
// aggregate wait grows hot-fold faster; LWF (and MRF) air the hot page
// first. Returned as parallel page/arrival slices ready for
// workload.SliceStream-style wrapping; requires hot >= 2 and decoys >= 1
// to be adversarial.
func SingleChannelBacklog(hot, decoys int) (pages []core.PageID, arrivals []float64) {
	pages = make([]core.PageID, 0, decoys+hot)
	arrivals = make([]float64, 0, decoys+hot)
	for d := 0; d < decoys; d++ {
		pages = append(pages, core.PageID(d))
		arrivals = append(arrivals, 0)
	}
	for k := 0; k < hot; k++ {
		pages = append(pages, core.PageID(decoys))
		arrivals = append(arrivals, 0.25)
	}
	return pages, arrivals
}
