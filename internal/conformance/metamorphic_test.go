package conformance_test

import (
	"math"
	"math/rand"
	"testing"

	"tcsa/internal/conformance"
	"tcsa/internal/core"
	"tcsa/internal/sim"
	"tcsa/internal/susc"
	"tcsa/internal/workload"
)

// TestScalingMetamorphic checks the density-preserving scaling relation:
// multiplying every expected time AND every page count by the same factor
// c leaves each group's density P_i/t_i — and therefore the Theorem 3.1
// channel count — unchanged, and SUSC must still produce a fully
// conformant program on the scaled instance.
func TestScalingMetamorphic(t *testing.T) {
	instances := []*core.GroupSet{
		core.MustGroupSet([]core.Group{{Time: 2, Count: 3}, {Time: 4, Count: 5}, {Time: 8, Count: 3}}),
		core.MustGroupSet([]core.Group{{Time: 3, Count: 7}}),
		core.MustGroupSet([]core.Group{{Time: 2, Count: 2}, {Time: 6, Count: 9}, {Time: 12, Count: 4}}),
	}
	for _, gs := range instances {
		base := conformance.MinChannelLaw(gs)
		for _, c := range []int{2, 3, 5} {
			groups := make([]core.Group, gs.Len())
			for i := range groups {
				g := gs.Group(i)
				groups[i] = core.Group{Time: c * g.Time, Count: c * g.Count}
			}
			scaled := core.MustGroupSet(groups)
			if got := conformance.MinChannelLaw(scaled); got != base {
				t.Errorf("%v scaled by %d: MinChannelLaw %d, want %d (density preserved)",
					gs, c, got, base)
			}
			prog, err := susc.BuildMinimal(scaled)
			if err != nil {
				t.Errorf("%v scaled by %d: SUSC failed: %v", gs, c, err)
				continue
			}
			if prog.Channels() != base {
				t.Errorf("%v scaled by %d: built %d channels, want %d", gs, c, prog.Channels(), base)
			}
			for _, oracle := range []func(*core.Program) error{
				conformance.ValidFromAnyStart,
				conformance.PeriodicSpacing,
				conformance.SlotOccupancy,
			} {
				if err := oracle(prog); err != nil {
					t.Errorf("%v scaled by %d: %v", gs, c, err)
				}
			}
		}
	}
}

// TestPagePermutationMetamorphic checks relabeling invariance: permuting
// page identities within a group (and co-permuting the request stream)
// must leave the simulator's delay metrics bit-for-bit unchanged — the
// metrics depend on each page's appearance columns and expected time,
// both of which the within-group permutation preserves.
func TestPagePermutationMetamorphic(t *testing.T) {
	gs := core.MustGroupSet([]core.Group{{Time: 2, Count: 3}, {Time: 4, Count: 5}, {Time: 8, Count: 3}})
	prog, err := susc.BuildMinimal(gs)
	if err != nil {
		t.Fatal(err)
	}
	reqs, err := workload.GenerateRequests(gs, prog.Length(), workload.RequestConfig{
		Count: 4000, Seed: 99, Choice: workload.UniformPages,
	})
	if err != nil {
		t.Fatal(err)
	}
	base, err := sim.Measure(prog, reqs)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 5; trial++ {
		perm := withinGroupPermutation(gs, rng)
		permProg, err := relabel(prog, perm)
		if err != nil {
			t.Fatal(err)
		}
		permReqs := make([]workload.Request, len(reqs))
		for i, r := range reqs {
			permReqs[i] = workload.Request{Page: perm[r.Page], Arrival: r.Arrival}
		}
		got, err := sim.Measure(permProg, permReqs)
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(got.AvgWait) != math.Float64bits(base.AvgWait) ||
			math.Float64bits(got.AvgDelay) != math.Float64bits(base.AvgDelay) ||
			math.Float64bits(got.MissRatio) != math.Float64bits(base.MissRatio) ||
			math.Float64bits(got.Wait.Max) != math.Float64bits(base.Wait.Max) {
			t.Errorf("trial %d: metrics drifted under page relabeling: %+v != %+v",
				trial, got, base)
		}
	}
}

// withinGroupPermutation draws a page permutation that only moves pages
// inside their own group.
func withinGroupPermutation(gs *core.GroupSet, rng *rand.Rand) []core.PageID {
	perm := make([]core.PageID, gs.Pages())
	start := 0
	for i := 0; i < gs.Len(); i++ {
		n := gs.Group(i).Count
		order := rng.Perm(n)
		for j, k := range order {
			perm[start+j] = core.PageID(start + k)
		}
		start += n
	}
	return perm
}

// relabel builds the program with every cell's page mapped through perm.
func relabel(prog *core.Program, perm []core.PageID) (*core.Program, error) {
	out, err := core.NewProgram(prog.GroupSet(), prog.Channels(), prog.Length())
	if err != nil {
		return nil, err
	}
	for ch := 0; ch < prog.Channels(); ch++ {
		for slot := 0; slot < prog.Length(); slot++ {
			id := prog.At(ch, slot)
			if id == core.None {
				continue
			}
			if err := out.Place(ch, slot, perm[id]); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}
