package conformance_test

import (
	"testing"

	"tcsa/internal/conformance"
	"tcsa/internal/core"
	"tcsa/internal/pamad"
)

func transitionPair(t *testing.T) (old, next *core.Program) {
	t.Helper()
	gs, err := core.Geometric(4, 2, []int{4, 6})
	if err != nil {
		t.Fatal(err)
	}
	old, _, err = pamad.Build(gs, 3)
	if err != nil {
		t.Fatal(err)
	}
	next, _, err = pamad.Build(gs, 4)
	if err != nil {
		t.Fatal(err)
	}
	return old, next
}

// TestTransitionBoundValidation pins the oracle's input contract and its
// rejection of transitions that strand an item.
func TestTransitionBoundValidation(t *testing.T) {
	old, next := transitionPair(t)
	ids := make([]core.PageID, old.GroupSet().Pages())
	for i := range ids {
		ids[i] = core.PageID(i)
	}
	loose := make([]float64, len(ids))
	for i := range loose {
		loose[i] = float64(old.Length() + next.Length())
	}
	if err := conformance.TransitionBound(nil, next, ids, ids, loose); err == nil {
		t.Error("nil old program accepted")
	}
	if err := conformance.TransitionBound(old, next, ids, ids[:1], loose); err == nil {
		t.Error("mismatched ID lists accepted")
	}
	if err := conformance.TransitionBound(old, next, ids, ids, loose[:1]); err == nil {
		t.Error("mismatched bounds accepted")
	}
	// A page ID outside the next program's universe is a stranded item.
	bad := append([]core.PageID(nil), ids...)
	bad[0] = core.PageID(next.GroupSet().Pages() + 50)
	if err := conformance.TransitionBound(old, next, ids, bad, loose); err == nil {
		t.Error("item never broadcast by the next program accepted")
	}
	// A full-cycle-plus-cycle bound always holds.
	if err := conformance.TransitionBound(old, next, ids, ids, loose); err != nil {
		t.Errorf("loose bounds rejected: %v", err)
	}
}

// TestTransitionBoundDetectsViolation: a zero bound must be rejected for
// any item that ever waits, and a retired item (newID None) is only
// checked for its in-cycle arrivals.
func TestTransitionBoundDetectsViolation(t *testing.T) {
	old, next := transitionPair(t)
	ids := make([]core.PageID, old.GroupSet().Pages())
	for i := range ids {
		ids[i] = core.PageID(i)
	}
	zero := make([]float64, len(ids))
	if err := conformance.TransitionBound(old, next, ids, ids, zero); err == nil {
		t.Error("zero bounds accepted: no client ever waits?")
	}
	// Retired item: in-cycle waits still checked, boundary-crossers are
	// not (there is no post-boundary service to wait for).
	newIDs := append([]core.PageID(nil), ids...)
	newIDs[0] = core.None
	loose := make([]float64, len(ids))
	for i := range loose {
		loose[i] = float64(old.Length() + next.Length())
	}
	if err := conformance.TransitionBound(old, next, ids, newIDs, loose); err != nil {
		t.Errorf("retired item rejected under loose bounds: %v", err)
	}
}
