// Package conformance turns the paper's theorems into reusable oracles:
// self-contained checkers that any test suite (susc, pamad, mpb, opt,
// netcast, chaos) can apply to a finished broadcast program instead of
// re-implementing the invariant ad hoc.
//
// Every oracle is deliberately *independent* of the production code paths
// it checks: validity is established by brute-force replay from every
// start instant rather than by core.Program.Validate's gap walk, and the
// Theorem 3.1 channel law is recomputed from first principles rather than
// delegated to core.GroupSet.MinChannels. A bug shared by a scheduler and
// its analysis therefore cannot silently cancel out in the tests.
//
// Oracles return an error describing the first violation (nil means the
// invariant holds), so they compose both with *testing.T in test suites
// and with runtime self-checks such as the chaos engine's zero-fault gate.
// The package imports only core and delaymodel, which keeps it importable
// from every scheduler package's internal tests without import cycles.
//
//lint:deterministic bit-identical replay contract: no wall clock, no global RNG, no map-order folds
package conformance

import (
	"fmt"

	"tcsa/internal/core"
	"tcsa/internal/delaymodel"
)

// MinChannelLaw computes the Theorem 3.1 lower bound N = ceil(sum_i P_i/t_i)
// independently of core.GroupSet.MinChannels: the sum is evaluated in exact
// integer arithmetic scaled by t_h (every t_i divides t_h by the group-set
// divisibility invariant, so the scaling is lossless).
func MinChannelLaw(gs *core.GroupSet) int {
	th := gs.MaxTime()
	scaled := 0
	for i := 0; i < gs.Len(); i++ {
		g := gs.Group(i)
		scaled += g.Count * (th / g.Time)
	}
	// ceil(scaled / th) without core.CeilDiv, keeping the oracle
	// self-contained.
	n := scaled / th
	if scaled%th != 0 {
		n++
	}
	return n
}

// ValidFromAnyStart is the client-facing guarantee of Section 3.1 in its
// strongest mechanical form: for every page i and every integer tuning
// instant u in [0, L), the next broadcast of page i (treating the program
// as infinitely repeating) happens within t_i slots. It replays the grid
// directly — no appearance index, no gap arithmetic — so it cross-checks
// core.Program.Validate rather than restating it.
func ValidFromAnyStart(prog *core.Program) error {
	gs := prog.GroupSet()
	L := prog.Length()
	n := gs.Pages()
	// A start instant u in [0, L) receives page p within t_p slots iff no
	// gap between consecutive broadcasts of p exceeds t_p and the first
	// broadcast falls before t_p. Replaying 2L absolute slots observes
	// every cyclic gap — including the wrap-around — directly on the grid.
	last := make([]int, n)
	seen := make([]bool, n)
	for p := range last {
		last[p] = -1
	}
	for abs := 0; abs < 2*L; abs++ {
		c := prog.Column(abs)
		for ch := 0; ch < prog.Channels(); ch++ {
			if p := prog.At(ch, c); p != core.None {
				if seen[p] && last[p] >= 0 {
					gap := abs - last[p]
					if t := gs.TimeOf(p); gap > t {
						return fmt.Errorf("%w: page %d waits %d slots (start %d) > t=%d",
							core.ErrInvalidProgram, p, gap, last[p], t)
					}
				}
				last[p] = abs
				seen[p] = true
			}
		}
	}
	for p := 0; p < n; p++ {
		if !seen[p] {
			return fmt.Errorf("%w: page %d never broadcast", core.ErrInvalidProgram, p)
		}
		// First appearance within t_i covers the start instants before it.
		first := -1
		for c := 0; c < L && first < 0; c++ {
			for ch := 0; ch < prog.Channels(); ch++ {
				if prog.At(ch, c) == core.PageID(p) {
					first = c
					break
				}
			}
		}
		if t := gs.TimeOf(core.PageID(p)); first >= t {
			return fmt.Errorf("%w: page %d first broadcast at slot %d >= t=%d",
				core.ErrInvalidProgram, p, first, t)
		}
	}
	return nil
}

// DivisorChainFamily checks membership in the paper's Section 5 frequency
// family, independently of the optimizer code paths that generate such
// vectors: S_h = 1 and every S_i is an integer multiple of S_{i+1}
// (S_i = prod_{j>=i} r_j with repetition factors r_j >= 1). Every vector
// the exact search enumerates and the PTAS emits must satisfy it, and any
// member is buildable by the Algorithm 4 placement.
func DivisorChainFamily(gs *core.GroupSet, s delaymodel.Frequencies) error {
	if err := s.Validate(gs); err != nil {
		return err
	}
	h := gs.Len()
	if s[h-1] != 1 {
		return fmt.Errorf("%w: S_%d = %d, want 1 (chain anchor)", core.ErrInvalidGroupSet, h, s[h-1])
	}
	for i := h - 2; i >= 0; i-- {
		if s[i]%s[i+1] != 0 {
			return fmt.Errorf("%w: S_%d = %d not a multiple of S_%d = %d",
				core.ErrInvalidGroupSet, i+1, s[i], i+2, s[i+1])
		}
	}
	return nil
}

// ChannelLaw checks Theorem 3.1 as a theorem, not a formula: a program that
// is valid from every start instant must use at least MinChannelLaw
// channels. It is vacuously satisfied by invalid programs (they prove
// nothing about the bound).
func ChannelLaw(prog *core.Program) error {
	if err := ValidFromAnyStart(prog); err != nil {
		return nil // invalid programs carry no Theorem 3.1 obligation
	}
	law := MinChannelLaw(prog.GroupSet())
	if prog.Channels() < law {
		return fmt.Errorf("%w: valid program on %d channels below the Theorem 3.1 bound %d",
			core.ErrInvalidProgram, prog.Channels(), law)
	}
	return nil
}

// PeriodicSpacing is the Theorem 3.2/3.3 oracle for sufficient-channel
// (SUSC-style) programs: every page of group i appears exactly t_h/t_i
// times per cycle, consecutive appearances are exactly t_i slots apart,
// and all appearances of a page sit on a single channel.
func PeriodicSpacing(prog *core.Program) error {
	gs := prog.GroupSet()
	th := gs.MaxTime()
	if prog.Length() != th {
		return fmt.Errorf("%w: cycle length %d, Theorem 3.3 expects t_h=%d",
			core.ErrInvalidProgram, prog.Length(), th)
	}
	for id := core.PageID(0); int(id) < gs.Pages(); id++ {
		ti := gs.TimeOf(id)
		var cols []int
		channel := -1
		for c := 0; c < prog.Length(); c++ {
			for ch := 0; ch < prog.Channels(); ch++ {
				if prog.At(ch, c) != id {
					continue
				}
				cols = append(cols, c)
				if channel == -1 {
					channel = ch
				} else if channel != ch {
					return fmt.Errorf("%w: page %d appears on channels %d and %d",
						core.ErrInvalidProgram, id, channel, ch)
				}
			}
		}
		if want := th / ti; len(cols) != want {
			return fmt.Errorf("%w: page %d has %d appearances, Theorem 3.3 expects t_h/t_i=%d",
				core.ErrInvalidProgram, id, len(cols), want)
		}
		for k := 1; k < len(cols); k++ {
			if g := cols[k] - cols[k-1]; g != ti {
				return fmt.Errorf("%w: page %d gap %d between appearances %d and %d, want exactly t=%d",
					core.ErrInvalidProgram, id, g, k-1, k, ti)
			}
		}
		if len(cols) > 1 {
			if wrap := cols[0] + th - cols[len(cols)-1]; wrap != ti {
				return fmt.Errorf("%w: page %d cyclic wrap gap %d, want exactly t=%d",
					core.ErrInvalidProgram, id, wrap, ti)
			}
		}
	}
	return nil
}

// SlotOccupancy is the Theorem 3.2 slot-existence law in mechanical form:
// a completed sufficient-channel build placed every one of the
// sum_i P_i * t_h/t_i transmissions the frequencies demand — no page lost
// a slot the theorem proves must exist.
func SlotOccupancy(prog *core.Program) error {
	gs := prog.GroupSet()
	th := gs.MaxTime()
	want := 0
	for i := 0; i < gs.Len(); i++ {
		g := gs.Group(i)
		want += g.Count * (th / g.Time)
	}
	if prog.Filled() != want {
		return fmt.Errorf("%w: %d filled cells, demand is %d",
			core.ErrInvalidProgram, prog.Filled(), want)
	}
	return nil
}

// PlacementCounts mirrors the accounting a placement reports. It is a
// plain struct (not pamad.PlacementStats) so the oracle stays importable
// from the pamad package's own tests.
type PlacementCounts struct {
	Spills     int
	EmptySlots int
}

// SpillAccounting checks PAMAD/m-PB placement bookkeeping against the
// program it produced: every page of group i occupies exactly S_i cells,
// the filled total is sum_i S_i*P_i, the cycle length matches the
// Frequencies.MajorCycle law, and EmptySlots accounts for every cell the
// grid has beyond the transmissions (spills relocate transmissions, they
// never create or destroy them).
func SpillAccounting(prog *core.Program, s delaymodel.Frequencies, counts PlacementCounts) error {
	gs := prog.GroupSet()
	if err := s.Validate(gs); err != nil {
		return err
	}
	if want := s.MajorCycle(gs, prog.Channels()); prog.Length() != want {
		return fmt.Errorf("%w: major cycle %d, frequencies demand %d",
			core.ErrInvalidProgram, prog.Length(), want)
	}
	for id := core.PageID(0); int(id) < gs.Pages(); id++ {
		if got, want := prog.CountOf(id), s[gs.GroupOf(id)]; got != want {
			return fmt.Errorf("%w: page %d occupies %d cells, frequency is %d",
				core.ErrInvalidProgram, id, got, want)
		}
	}
	total := s.TotalSlots(gs)
	if prog.Filled() != total {
		return fmt.Errorf("%w: %d filled cells, transmissions total %d",
			core.ErrInvalidProgram, prog.Filled(), total)
	}
	cells := prog.Channels() * prog.Length()
	if want := cells - total; counts.EmptySlots != want {
		return fmt.Errorf("%w: EmptySlots=%d, grid has %d cells for %d transmissions (want %d)",
			core.ErrInvalidProgram, counts.EmptySlots, cells, total, want)
	}
	if counts.Spills < 0 || counts.Spills > total {
		return fmt.Errorf("%w: spill count %d outside [0, %d]",
			core.ErrInvalidProgram, counts.Spills, total)
	}
	return nil
}

// MissFreeLaw is the bridge between the scheduling theorems and the chaos
// runtime: on a program that is valid from every start instant, a
// measurement taken under zero faults must record zero deadline misses.
// A nonzero miss count on a valid program means the measurement engine —
// not the schedule — is broken.
func MissFreeLaw(prog *core.Program, misses int64) error {
	if err := ValidFromAnyStart(prog); err != nil {
		return nil // invalid program: misses are legitimate
	}
	if misses != 0 {
		return fmt.Errorf("%w: %d deadline misses measured on a program valid from every start",
			core.ErrInvalidProgram, misses)
	}
	return nil
}
