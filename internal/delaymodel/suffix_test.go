package delaymodel

import (
	"math"
	"math/rand"
	"testing"

	"tcsa/internal/core"
)

func randomInstance(rng *rand.Rand) (*core.GroupSet, Frequencies, int) {
	h := 1 + rng.Intn(5)
	groups := make([]core.Group, h)
	tt := 1 + rng.Intn(4)
	for i := 0; i < h; i++ {
		groups[i] = core.Group{Time: tt, Count: 1 + rng.Intn(40)}
		tt *= 2 + rng.Intn(3)
	}
	gs := core.MustGroupSet(groups)
	s := make(Frequencies, h)
	for i := range s {
		s[i] = 1 + rng.Intn(8)
	}
	return gs, s, 1 + rng.Intn(8)
}

// TestSuffixDecomposition: the whole-vector objective splits into a prefix
// stage evaluation plus the suffix contribution at the same total F.
func TestSuffixDecomposition(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 500; trial++ {
		gs, s, nReal := randomInstance(rng)
		f := s.TotalSlots(gs)
		whole := GroupDelay(gs, s, nReal)
		for cut := 0; cut <= gs.Len(); cut++ {
			prefix := 0.0
			if cut > 0 {
				prefix = StageDelayTotal(gs, s, cut, nReal, f)
			}
			split := prefix + SuffixDelayTotal(gs, s, cut, nReal, f)
			if math.Abs(split-whole) > 1e-12*(1+math.Abs(whole)) {
				t.Fatalf("cut %d: prefix+suffix = %g, whole = %g (gs=%v s=%v n=%d)",
					cut, split, whole, gs, s, nReal)
			}
		}
	}
}

// TestSuffixMonotoneInTotal pins the admissibility property the OPT
// branch-and-bound relies on: with the suffix frequencies fixed, the suffix
// contribution never decreases as the transmission total F grows.
func TestSuffixMonotoneInTotal(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 500; trial++ {
		gs, s, nReal := randomInstance(rng)
		from := rng.Intn(gs.Len() + 1)
		base := s.TotalSlots(gs)
		prev := SuffixDelayTotal(gs, s, from, nReal, base)
		for f := base + 1; f <= base+64; f++ {
			cur := SuffixDelayTotal(gs, s, from, nReal, f)
			// t_major = ceil(F/N) rounds up, so consecutive integers share a
			// cycle length while gap grows strictly: allow only increases
			// beyond a relative rounding margin.
			if cur < prev-1e-12*(1+math.Abs(prev)) {
				t.Fatalf("suffix delay decreased: F=%d %g -> F=%d %g (gs=%v s=%v from=%d n=%d)",
					f-1, prev, f, cur, gs, s, from, nReal)
			}
			prev = cur
		}
	}
}

// TestSuffixZeroCases: empty suffix and zero total contribute nothing.
func TestSuffixZeroCases(t *testing.T) {
	gs := core.MustGroupSet([]core.Group{{Time: 2, Count: 2}, {Time: 4, Count: 3}})
	s := Frequencies{2, 1}
	if d := SuffixDelayTotal(gs, s, gs.Len(), 2, s.TotalSlots(gs)); d != 0 {
		t.Errorf("empty suffix = %g, want 0", d)
	}
	if d := SuffixDelayTotal(gs, s, 0, 2, 0); d != 0 {
		t.Errorf("zero total = %g, want 0", d)
	}
	if d := SuffixDelayTotal(gs, s, -1, 2, 7); d != 0 {
		t.Errorf("negative from = %g, want 0", d)
	}
}
