// Package delaymodel implements the analytic average-delay model of
// "Time-Constrained Service on Air" (ICDCS 2005), Section 4.1–4.3. It is
// shared by the PAMAD scheduler, the m-PB baseline and the OPT exhaustive
// search, which all pick broadcast frequencies by evaluating this model.
//
// # Model
//
// Group G_i holds P_i pages of expected time t_i and is broadcast S_i times
// per major cycle. With F = sum_i S_i*P_i total page transmissions and
// N_real channels, the cycle is t_major = ceil(F/N_real) slots and the mean
// spacing between appearances of a G_i page is gap_i = F/(N_real*S_i).
//
// The average group delay (paper Eq. 2, generalised in Eq. 7) is
//
//	D' = sum_i (S_i*P_i/F) * d_i
//	d_i = 0                                               when gap_i <= t_i
//	d_i = max(0, (gap_i - t_i) * (t_major/S_i - t_i) / 2) otherwise
//
// The gap_i <= t_i gate — rather than clamping the product — is what
// reproduces the paper's Figure 2 walkthrough exactly (D'_2 = 0.12/0 for
// r_1 = 1/2 and D'_3 = 0.15/0.04 for r_2 = 1/2); see the package tests.
//
//lint:deterministic bit-identical replay contract: no wall clock, no global RNG, no map-order folds
package delaymodel

import (
	"fmt"

	"tcsa/internal/core"
)

// Frequencies is a per-group broadcast frequency vector S_1..S_h: group i's
// pages each appear Frequencies[i] times per major broadcast cycle.
type Frequencies []int

// Validate checks that the vector matches gs and every S_i >= 1 (the
// paper's lower-bound restriction: every page is broadcast at least once).
func (s Frequencies) Validate(gs *core.GroupSet) error {
	if gs == nil {
		return fmt.Errorf("%w: nil group set", core.ErrInvalidGroupSet)
	}
	if len(s) != gs.Len() {
		return fmt.Errorf("%w: %d frequencies for %d groups", core.ErrInvalidGroupSet, len(s), gs.Len())
	}
	for i, v := range s {
		if v < 1 {
			return fmt.Errorf("%w: S_%d = %d < 1", core.ErrInvalidGroupSet, i+1, v)
		}
	}
	return nil
}

// TotalSlots returns F = sum_i S_i * P_i, the number of page transmissions
// per major cycle.
func (s Frequencies) TotalSlots(gs *core.GroupSet) int {
	f := 0
	for i, v := range s {
		f += v * gs.Group(i).Count
	}
	return f
}

// MajorCycle returns t_major = ceil(F / nReal) (paper Eq. 8).
func (s Frequencies) MajorCycle(gs *core.GroupSet, nReal int) int {
	return core.CeilDiv(s.TotalSlots(gs), nReal)
}

// Clone returns an independent copy.
func (s Frequencies) Clone() Frequencies { return append(Frequencies(nil), s...) }

// Equal reports whether two frequency vectors are identical element for
// element. The replan engine uses it to decide how much of a placement an
// instance edit invalidated: equal prefixes place identically.
func (s Frequencies) Equal(other Frequencies) bool {
	if len(s) != len(other) {
		return false
	}
	for i, v := range s {
		if v != other[i] {
			return false
		}
	}
	return true
}

// GroupDelay evaluates the paper's average group delay D' for frequency
// vector s over all h groups of gs with nReal channels. It assumes s has
// been validated; out-of-contract input yields a meaningless (not unsafe)
// number, matching the paper's treatment of D' as a pure objective function.
func GroupDelay(gs *core.GroupSet, s Frequencies, nReal int) float64 {
	return StageDelay(gs, s, gs.Len(), nReal)
}

// StageDelay evaluates the stage-i objective D'_i of the progressive
// derivation (paper Eq. 3, 5 and 7): the average group delay of scheduling
// only groups 1..stage (1-based) with per-stage frequencies s[:stage].
func StageDelay(gs *core.GroupSet, s Frequencies, stage, nReal int) float64 {
	if nReal < 1 || stage < 1 || stage > gs.Len() || len(s) < stage {
		return 0
	}
	f := 0
	for i := 0; i < stage; i++ {
		f += s[i] * gs.Group(i).Count
	}
	return prefixDelay(gs, s, stage, nReal, f)
}

// StageDelayTotal is StageDelay with the transmission total
// F = sum_{g<stage} s_g*P_g supplied by the caller. The progressive
// derivation evaluates hundreds of candidates whose F differs by a constant
// step, so it maintains F incrementally instead of letting every candidate
// recompute the prefix sum; like GroupDelay, an inconsistent total yields a
// meaningless (not unsafe) number.
func StageDelayTotal(gs *core.GroupSet, s Frequencies, stage, nReal, total int) float64 {
	if nReal < 1 || stage < 1 || stage > gs.Len() || len(s) < stage {
		return 0
	}
	return prefixDelay(gs, s, stage, nReal, total)
}

// SuffixDelayTotal evaluates only groups from..h-1 (0-based) of the D'
// objective at transmission total F = total: the contribution
// sum_{i>=from} (S_i*P_i/F) * d_i with gap and t_major derived from total
// and nReal. The OPT branch-and-bound uses it as its admissible lower bound:
// with the suffix frequencies fixed, each group's contribution is
// non-decreasing in F, so evaluating the suffix at the minimum reachable F
// never overestimates. Like the other evaluators, an inconsistent total
// yields a meaningless (not unsafe) number.
func SuffixDelayTotal(gs *core.GroupSet, s Frequencies, from, nReal, total int) float64 {
	if nReal < 1 || from < 0 || len(s) > gs.Len() {
		return 0
	}
	return rangeDelay(gs, s, from, len(s), nReal, total)
}

func prefixDelay(gs *core.GroupSet, s Frequencies, h, nReal, f int) float64 {
	return rangeDelay(gs, s, 0, h, nReal, f)
}

// rangeDelay sums the D' contributions of groups lo..hi-1 at transmission
// total f. The lo=0 path is the historical prefixDelay evaluation and is
// pinned bit-for-bit by the package equivalence tests.
func rangeDelay(gs *core.GroupSet, s Frequencies, lo, hi, nReal, f int) float64 {
	if f == 0 {
		return 0
	}
	tMajor := float64(core.CeilDiv(f, nReal))
	total := float64(f)
	var d float64
	for i := lo; i < hi; i++ {
		si := float64(s[i])
		ti := float64(gs.Group(i).Time)
		gap := total / (float64(nReal) * si)
		if gap <= ti {
			continue
		}
		term := (gap - ti) * (tMajor/si - ti) / 2
		if term > 0 {
			prob := si * float64(gs.Group(i).Count) / total
			d += prob * term
		}
	}
	return d
}

// ExactDelay evaluates the Section 4.1 per-page model for evenly spaced
// appearances: each G_i page repeats with uniform gap g_i = t_major/S_i, so
// its expected delay is max(g_i - t_i, 0)^2 / (2 g_i), and pages are
// accessed uniformly (probability 1/n each). This is the "true" expected
// AvgD of an ideal evenly-spread program with frequencies s, against which
// both the D' heuristic objective and measured programs can be compared.
func ExactDelay(gs *core.GroupSet, s Frequencies, nReal int) float64 {
	if nReal < 1 || len(s) != gs.Len() {
		return 0
	}
	f := s.TotalSlots(gs)
	if f == 0 {
		return 0
	}
	tMajor := float64(core.CeilDiv(f, nReal))
	var d float64
	for i := 0; i < gs.Len(); i++ {
		gap := tMajor / float64(s[i])
		ti := float64(gs.Group(i).Time)
		if gap <= ti {
			continue
		}
		d += float64(gs.Group(i).Count) * (gap - ti) * (gap - ti) / (2 * gap)
	}
	return d / float64(gs.Pages())
}

// SufficientFrequencies returns the frequency vector a sufficient-channel
// (SUSC) program uses: S_i = t_h / t_i. With nReal >= MinChannels these
// frequencies give GroupDelay 0.
func SufficientFrequencies(gs *core.GroupSet) Frequencies {
	th := gs.MaxTime()
	s := make(Frequencies, gs.Len())
	for i := range s {
		s[i] = th / gs.Group(i).Time
	}
	return s
}
