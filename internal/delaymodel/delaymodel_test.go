package delaymodel

import (
	"math"
	"testing"

	"tcsa/internal/core"
)

func fig2() *core.GroupSet {
	return core.MustGroupSet([]core.Group{{Time: 2, Count: 3}, {Time: 4, Count: 5}, {Time: 8, Count: 3}})
}

// TestFigure2Step2 reproduces the paper's Step 2 numbers with N_real=3:
// D'_2 = 0.12 at r_1=1 and D'_2 = 0 at r_1=2.
func TestFigure2Step2(t *testing.T) {
	gs := fig2()
	// Stage 2: S = (r_1, 1, _).
	d1 := StageDelay(gs, Frequencies{1, 1, 0}, 2, 3)
	if want := 0.125; math.Abs(d1-want) > 1e-9 {
		t.Errorf("D'_2(r1=1) = %f, want %f (paper rounds to 0.12)", d1, want)
	}
	d2 := StageDelay(gs, Frequencies{2, 1, 0}, 2, 3)
	if d2 != 0 {
		t.Errorf("D'_2(r1=2) = %f, want 0", d2)
	}
}

// TestFigure2Step3 reproduces the paper's Step 3 numbers:
// D'_3 = 0.15 at (r_1,r_2)=(2,1) and D'_3 = 0.04 at (2,2).
func TestFigure2Step3(t *testing.T) {
	gs := fig2()
	// r_2=1: S = (2*1, 1, 1) = (2,1,1).
	d1 := GroupDelay(gs, Frequencies{2, 1, 1}, 3)
	if want := 0.155; math.Abs(d1-want) > 2e-3 {
		t.Errorf("D'_3(r2=1) = %f, want ~%f (paper rounds to 0.15)", d1, want)
	}
	// r_2=2: S = (2*2, 2, 1) = (4,2,1).
	d2 := GroupDelay(gs, Frequencies{4, 2, 1}, 3)
	if want := 1.0 / 24.0; math.Abs(d2-want) > 2e-3 { // 0.0417
		t.Errorf("D'_3(r2=2) = %f, want ~%f (paper rounds to 0.04)", d2, want)
	}
	if d2 >= d1 {
		t.Errorf("D'_3: r2=2 (%f) not better than r2=1 (%f)", d2, d1)
	}
}

// Exact hand-derived values for the Figure 2 walkthrough.
func TestFigure2ExactValues(t *testing.T) {
	gs := fig2()
	tests := []struct {
		name  string
		s     Frequencies
		stage int
		want  float64
	}{
		// Stage 2, r1=1: F=8, t_major=3; G1 term = (3/8)*(8/3-2)*((3-2)/2) = 1/8.
		{"stage2 r1=1", Frequencies{1, 1, 0}, 2, 1.0 / 8.0},
		// Stage 2, r1=3: F=14, t_major=5; G1 gap=14/9<2 -> 0; G2 gap=14/3>4:
		// (5/14)*(14/3-4)*((5-4)/2) = (5/14)*(2/3)*(1/2) = 5/42.
		{"stage2 r1=3", Frequencies{3, 1, 0}, 2, 5.0 / 42.0},
		// Stage 3, r2=1: S=(2,1,1), F=14, t_major=5.
		// G1: (6/14)*(14/6-2)*((5/2-2)/2) = (6/14)*(1/3)*(1/4) = 1/28.
		// G2: (5/14)*(14/3-4)*((5-4)/2) = 5/42. G3: gap 14/3 < 8 -> 0.
		{"stage3 r2=1", Frequencies{2, 1, 1}, 3, 1.0/28.0 + 5.0/42.0},
		// Stage 3, r2=2: S=(4,2,1), F=25, t_major=9.
		// G1: (12/25)*(25/12-2)*((9/4-2)/2) = (12/25)*(1/12)*(1/8) = 1/200.
		// G2: (10/25)*(25/6-4)*((9/2-4)/2) = (2/5)*(1/6)*(1/4) = 1/60.
		// G3: (3/25)*(25/3-8)*((9-8)/2) = (3/25)*(1/3)*(1/2) = 1/50.
		{"stage3 r2=2", Frequencies{4, 2, 1}, 3, 1.0/200.0 + 1.0/60.0 + 1.0/50.0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := StageDelay(gs, tt.s, tt.stage, 3)
			if math.Abs(got-tt.want) > 1e-12 {
				t.Errorf("StageDelay = %.12f, want %.12f", got, tt.want)
			}
		})
	}
}

func TestValidate(t *testing.T) {
	gs := fig2()
	if err := (Frequencies{4, 2, 1}).Validate(gs); err != nil {
		t.Errorf("valid vector rejected: %v", err)
	}
	if err := (Frequencies{4, 2}).Validate(gs); err == nil {
		t.Error("short vector accepted")
	}
	if err := (Frequencies{4, 0, 1}).Validate(gs); err == nil {
		t.Error("zero frequency accepted")
	}
	if err := (Frequencies{1, 1, 1}).Validate(nil); err == nil {
		t.Error("nil group set accepted")
	}
}

func TestTotalSlotsAndMajorCycle(t *testing.T) {
	gs := fig2()
	s := Frequencies{4, 2, 1}
	if got := s.TotalSlots(gs); got != 25 {
		t.Errorf("TotalSlots = %d, want 25", got)
	}
	if got := s.MajorCycle(gs, 3); got != 9 {
		t.Errorf("MajorCycle = %d, want ceil(25/3)=9", got)
	}
	c := s.Clone()
	c[0] = 99
	if s[0] != 4 {
		t.Error("Clone aliases original")
	}
}

func TestSufficientFrequenciesGiveZeroDelay(t *testing.T) {
	gs := fig2()
	s := SufficientFrequencies(gs)
	want := Frequencies{4, 2, 1}
	for i := range want {
		if s[i] != want[i] {
			t.Fatalf("SufficientFrequencies = %v, want %v", s, want)
		}
	}
	n := gs.MinChannels() // 4
	if d := GroupDelay(gs, s, n); d != 0 {
		t.Errorf("GroupDelay at sufficient channels = %f, want 0", d)
	}
	if d := ExactDelay(gs, s, n); d != 0 {
		t.Errorf("ExactDelay at sufficient channels = %f, want 0", d)
	}
}

func TestGroupDelayMonotoneInChannels(t *testing.T) {
	gs := fig2()
	s := Frequencies{4, 2, 1}
	prev := math.Inf(1)
	for n := 1; n <= gs.MinChannels(); n++ {
		d := GroupDelay(gs, s, n)
		if d > prev+1e-12 {
			t.Errorf("GroupDelay increased from %f to %f at n=%d", prev, d, n)
		}
		prev = d
	}
}

func TestExactDelayClosedForm(t *testing.T) {
	// One group, t=2, P=4, S=1, N=1: F=4, t_major=4, gap=4.
	// ExactDelay = (4-2)^2/(2*4) = 0.5.
	gs := core.MustGroupSet([]core.Group{{Time: 2, Count: 4}})
	got := ExactDelay(gs, Frequencies{1}, 1)
	if want := 0.5; math.Abs(got-want) > 1e-12 {
		t.Errorf("ExactDelay = %f, want %f", got, want)
	}
}

func TestDegenerateInputs(t *testing.T) {
	gs := fig2()
	if d := GroupDelay(gs, Frequencies{1, 1, 1}, 0); d != 0 {
		t.Errorf("GroupDelay with 0 channels = %f, want 0 sentinel", d)
	}
	if d := StageDelay(gs, Frequencies{1}, 5, 3); d != 0 {
		t.Errorf("StageDelay beyond h = %f, want 0 sentinel", d)
	}
	if d := StageDelay(gs, Frequencies{1}, 0, 3); d != 0 {
		t.Errorf("StageDelay stage 0 = %f, want 0 sentinel", d)
	}
	if d := ExactDelay(gs, Frequencies{1, 1}, 3); d != 0 {
		t.Errorf("ExactDelay wrong-length = %f, want 0 sentinel", d)
	}
}
