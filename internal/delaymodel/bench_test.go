package delaymodel

import (
	"testing"

	"tcsa/internal/core"
)

// benchInstance is the paper's default uniform shape (h=8, t=4·2^i, 125
// pages per group) with a mid-chain divisor family — the exact vector shape
// both optimizers evaluate millions of times per search.
func benchInstance(tb testing.TB) (*core.GroupSet, Frequencies, int) {
	tb.Helper()
	counts := make([]int, 8)
	for i := range counts {
		counts[i] = 125
	}
	gs, err := core.Geometric(4, 2, counts)
	if err != nil {
		tb.Fatal(err)
	}
	s := Frequencies{16, 16, 8, 4, 4, 2, 1, 1}
	if err := s.Validate(gs); err != nil {
		tb.Fatal(err)
	}
	return gs, s, core.CeilDiv(gs.MinChannels(), 5)
}

func BenchmarkExactDelay(b *testing.B) {
	gs, s, n := benchInstance(b)
	b.ReportAllocs()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink = ExactDelay(gs, s, n)
	}
	_ = sink
}

func BenchmarkSuffixDelayTotal(b *testing.B) {
	gs, s, n := benchInstance(b)
	total := s.TotalSlots(gs)
	b.ReportAllocs()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink = SuffixDelayTotal(gs, s, 4, n, total)
	}
	_ = sink
}

// The optimizers' inner loops call these evaluators once per candidate (or
// per branch-and-bound node); any allocation there multiplies by millions on
// frontier instances. Lock the zero-allocation property in as a test.
func TestDelayEvaluatorsAllocationFree(t *testing.T) {
	gs, s, n := benchInstance(t)
	total := s.TotalSlots(gs)
	if got := testing.AllocsPerRun(100, func() {
		ExactDelay(gs, s, n)
	}); got != 0 {
		t.Errorf("ExactDelay allocates %.0f times per call, want 0", got)
	}
	if got := testing.AllocsPerRun(100, func() {
		SuffixDelayTotal(gs, s, 4, n, total)
	}); got != 0 {
		t.Errorf("SuffixDelayTotal allocates %.0f times per call, want 0", got)
	}
	if got := testing.AllocsPerRun(100, func() {
		GroupDelay(gs, s, n)
	}); got != 0 {
		t.Errorf("GroupDelay allocates %.0f times per call, want 0", got)
	}
}
