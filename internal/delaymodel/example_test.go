package delaymodel_test

import (
	"fmt"

	"tcsa/internal/core"
	"tcsa/internal/delaymodel"
)

// Evaluating the paper's Eq. 2 objective on the Figure 2 instance with
// three channels reproduces the walkthrough's D' values.
func ExampleGroupDelay() {
	gs := core.MustGroupSet([]core.Group{{Time: 2, Count: 3}, {Time: 4, Count: 5}, {Time: 8, Count: 3}})
	for _, s := range []delaymodel.Frequencies{{2, 1, 1}, {4, 2, 1}} {
		fmt.Printf("S=%v: D'=%.4f, cycle %d\n",
			[]int(s), delaymodel.GroupDelay(gs, s, 3), s.MajorCycle(gs, 3))
	}
	// Output:
	// S=[2 1 1]: D'=0.1548, cycle 5
	// S=[4 2 1]: D'=0.0417, cycle 9
}
