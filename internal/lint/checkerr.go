package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// CheckErr flags call statements that silently discard an error result:
// core.NewGroupSet, core.NewProgram, core.Rearrange, tcsa.Build and every
// other error-returning function in or out of the module. An unchecked
// constructor error means the scheduler runs on an unvalidated instance,
// which silently voids the paper's validity theorems. Discarding must be
// explicit: assign to _ (or handle the error).
//
// Exemptions, because they cannot usefully fail: the fmt print family and
// methods on strings.Builder / bytes.Buffer (both documented never to
// return a non-nil error).
var CheckErr = &Analyzer{
	Name: "checkerr",
	Doc:  "call statements that silently discard an error result",
	Run:  runCheckErr,
}

func runCheckErr(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := ast.Unparen(stmt.X).(*ast.CallExpr)
			if !ok {
				return true
			}
			if !returnsError(pass.Info, call) || exemptFromCheckErr(pass.Info, call) {
				return true
			}
			pass.Reportf(call.Pos(), "error result of %s is silently discarded; handle it or assign it to _ explicitly", calleeName(pass.Info, call))
			return true
		})
	}
}

// returnsError reports whether the call's result includes an error.
func returnsError(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	errType := types.Universe.Lookup("error").Type()
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if types.Identical(t.At(i).Type(), errType) {
				return true
			}
		}
		return false
	default:
		return types.Identical(t, errType)
	}
}

// exemptFromCheckErr allows the never-fail writers: the fmt print family
// and strings.Builder / bytes.Buffer methods.
func exemptFromCheckErr(info *types.Info, call *ast.CallExpr) bool {
	obj := calleeObject(info, call)
	if obj == nil || obj.Pkg() == nil {
		// Builtins and type conversions never surface errors implicitly.
		return true
	}
	if obj.Pkg().Path() == "fmt" && strings.HasPrefix(obj.Name(), "Print") {
		return true
	}
	if obj.Pkg().Path() == "fmt" && strings.HasPrefix(obj.Name(), "Fprint") {
		return true
	}
	if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil {
		if isNamed(sig.Recv().Type(), "strings", "Builder") || isNamed(sig.Recv().Type(), "bytes", "Buffer") {
			return true
		}
	}
	return false
}

// calleeObject resolves the called function or method object, nil for
// indirect calls through arbitrary expressions.
func calleeObject(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		return info.Uses[fun.Sel]
	default:
		return nil
	}
}

// calleeName renders a readable name for diagnostics.
func calleeName(info *types.Info, call *ast.CallExpr) string {
	obj := calleeObject(info, call)
	if obj == nil {
		return "call"
	}
	if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			return named.Obj().Name() + "." + obj.Name()
		}
	}
	if obj.Pkg() != nil && obj.Pkg().Name() != "" {
		return obj.Pkg().Name() + "." + obj.Name()
	}
	return obj.Name()
}
