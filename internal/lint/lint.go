// Package lint is a small, stdlib-only static-analysis framework plus the
// repo-specific analyzer suite behind cmd/airvet. It exists because the
// paper's validity guarantees (Theorems 3.1-3.3) are only as strong as the
// structural invariants of the code that computes them: slot arithmetic
// must go through the core accessors, constructor errors must be handled,
// delay math must not compare floats for equality, and the concurrent
// netcast/opt paths must not copy their locks.
//
// The framework deliberately depends on nothing outside the standard
// library (go/ast, go/parser, go/token, go/types): package loading shells
// out to the go tool for metadata and export data, so go.mod stays
// dependency-free.
//
// # Suppression
//
// A finding can be silenced with a directive comment on the flagged line
// or the line directly above it:
//
//	//lint:ignore slotmath tie detection needs the raw cycle index here
//
// The first word after "ignore" is a comma-separated list of analyzer
// names (or "all"); the rest is a mandatory justification. A directive
// with no justification is itself reported.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one analyzer finding at one source position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.Pos, d.Message, d.Analyzer)
}

// Analyzer is a single named check over one type-checked package.
type Analyzer struct {
	// Name is the identifier used by -only flags and //lint:ignore.
	Name string
	// Doc is a one-line description shown by airvet -list.
	Doc string
	// Run inspects the package and reports findings through the pass.
	Run func(*Pass)
}

// Pass hands one type-checked package to one analyzer.
type Pass struct {
	Fset *token.FileSet
	// Files are the parsed non-test sources of the package.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// Info carries the type-checker's expression facts.
	Info *types.Info
	// Module is the module path ("tcsa"); analyzers use it to distinguish
	// module-local declarations from imported ones.
	Module string
	// Facts is the interprocedural facts engine computed once over the
	// whole loaded package set (see facts.go); nil only in direct unit
	// tests of analyzers that never consult it.
	Facts *Facts

	analyzer string
	diags    *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.analyzer,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// All returns the complete airvet analyzer suite in stable order: the
// six intraprocedural checks from PR 1 plus the five facts-engine
// analyzers (determinism, context-flow and lock-safety).
func All() []*Analyzer {
	return []*Analyzer{
		SlotMath, CheckErr, FloatEq, CopyLock, ExhaustEnum, NoPanic,
		DetMap, WallClock, CtxFlow, AtomicMix, LockBal,
	}
}

// ByName resolves a comma-separated analyzer subset against All.
func ByName(names string) ([]*Analyzer, error) {
	var out []*Analyzer
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		found := false
		for _, a := range All() {
			if a.Name == name {
				out = append(out, a)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("lint: unknown analyzer %q", name)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("lint: no analyzers selected from %q", names)
	}
	return out, nil
}

// analyze runs the analyzers over one loaded package and applies the
// //lint:ignore directives found in its files. facts carries the
// cross-package summaries computed over the whole load.
func analyze(pkg *Package, analyzers []*Analyzer, facts *Facts) []Diagnostic {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			Module:   pkg.Module,
			Facts:    facts,
			analyzer: a.Name,
			diags:    &diags,
		}
		a.Run(pass)
	}
	sup, malformed := collectIgnores(pkg.Fset, pkg.Files)
	diags = append(diags, malformed...)
	kept := diags[:0]
	for _, d := range diags {
		if !sup.covers(d) {
			kept = append(kept, d)
		}
	}
	return kept
}

// ignoreRange is the line span one //lint:ignore directive suppresses.
type ignoreRange struct {
	from, to int
	names    []string
}

// ignoreSet indexes //lint:ignore directive spans by file.
type ignoreSet map[string][]ignoreRange

func (s ignoreSet) covers(d Diagnostic) bool {
	for _, r := range s[d.Pos.Filename] {
		if d.Pos.Line < r.from || d.Pos.Line > r.to {
			continue
		}
		for _, name := range r.names {
			if name == "all" || name == d.Analyzer {
				return true
			}
		}
	}
	return false
}

// collectIgnores scans comments for lint:ignore directives. A directive
// suppresses matching findings on its own line and the line below it —
// and, when that next (or same) line starts a statement or declaration,
// anywhere inside that whole statement, so a directive above a
// multi-line call or literal covers every line of it. Malformed
// directives (missing analyzer list or justification) are reported as
// findings of the pseudo-analyzer "lint".
func collectIgnores(fset *token.FileSet, files []*ast.File) (ignoreSet, []Diagnostic) {
	spans := stmtSpans(fset, files)
	set := ignoreSet{}
	var malformed []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:ignore")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				fields := strings.Fields(text)
				if len(fields) < 2 {
					malformed = append(malformed, Diagnostic{
						Analyzer: "lint",
						Pos:      pos,
						Message:  "malformed //lint:ignore: want \"//lint:ignore <analyzers> <justification>\"",
					})
					continue
				}
				r := ignoreRange{from: pos.Line, to: pos.Line + 1, names: strings.Split(fields[0], ",")}
				// Extend over the statement starting on the directive's
				// line (trailing placement) or the line below it
				// (line-above placement).
				for _, start := range []int{pos.Line, pos.Line + 1} {
					if end, ok := spans[pos.Filename][start]; ok && end > r.to {
						r.to = end
					}
				}
				set[pos.Filename] = append(set[pos.Filename], r)
			}
		}
	}
	return set, malformed
}

// stmtSpans maps, per file, a statement's (or non-function declaration's)
// starting line to the last line of the longest statement starting there.
// Function declarations are excluded so a directive above a func does not
// blanket its entire body.
func stmtSpans(fset *token.FileSet, files []*ast.File) map[string]map[int]int {
	spans := map[string]map[int]int{}
	record := func(n ast.Node) {
		start := fset.Position(n.Pos())
		end := fset.Position(n.End())
		byLine := spans[start.Filename]
		if byLine == nil {
			byLine = map[int]int{}
			spans[start.Filename] = byLine
		}
		if end.Line > byLine[start.Line] {
			byLine[start.Line] = end.Line
		}
	}
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case ast.Stmt:
				record(n)
			case *ast.GenDecl:
				record(n)
			case *ast.Field:
				record(n)
			case *ast.FuncDecl:
				// Do not record: descend for the body's statements.
				_ = n
			}
			return true
		})
	}
	return spans
}

// sortDiagnostics orders findings by file, line, column, analyzer.
func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}
