// Package lint is a small, stdlib-only static-analysis framework plus the
// repo-specific analyzer suite behind cmd/airvet. It exists because the
// paper's validity guarantees (Theorems 3.1-3.3) are only as strong as the
// structural invariants of the code that computes them: slot arithmetic
// must go through the core accessors, constructor errors must be handled,
// delay math must not compare floats for equality, and the concurrent
// netcast/opt paths must not copy their locks.
//
// The framework deliberately depends on nothing outside the standard
// library (go/ast, go/parser, go/token, go/types): package loading shells
// out to the go tool for metadata and export data, so go.mod stays
// dependency-free.
//
// # Suppression
//
// A finding can be silenced with a directive comment on the flagged line
// or the line directly above it:
//
//	//lint:ignore slotmath tie detection needs the raw cycle index here
//
// The first word after "ignore" is a comma-separated list of analyzer
// names (or "all"); the rest is a mandatory justification. A directive
// with no justification is itself reported.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one analyzer finding at one source position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.Pos, d.Message, d.Analyzer)
}

// Analyzer is a single named check over one type-checked package.
type Analyzer struct {
	// Name is the identifier used by -only flags and //lint:ignore.
	Name string
	// Doc is a one-line description shown by airvet -list.
	Doc string
	// Run inspects the package and reports findings through the pass.
	Run func(*Pass)
}

// Pass hands one type-checked package to one analyzer.
type Pass struct {
	Fset *token.FileSet
	// Files are the parsed non-test sources of the package.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// Info carries the type-checker's expression facts.
	Info *types.Info
	// Module is the module path ("tcsa"); analyzers use it to distinguish
	// module-local declarations from imported ones.
	Module string

	analyzer string
	diags    *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.analyzer,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// All returns the complete airvet analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{SlotMath, CheckErr, FloatEq, CopyLock, ExhaustEnum, NoPanic}
}

// ByName resolves a comma-separated analyzer subset against All.
func ByName(names string) ([]*Analyzer, error) {
	var out []*Analyzer
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		found := false
		for _, a := range All() {
			if a.Name == name {
				out = append(out, a)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("lint: unknown analyzer %q", name)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("lint: no analyzers selected from %q", names)
	}
	return out, nil
}

// analyze runs the analyzers over one loaded package and applies the
// //lint:ignore directives found in its files.
func analyze(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			Module:   pkg.Module,
			analyzer: a.Name,
			diags:    &diags,
		}
		a.Run(pass)
	}
	sup, malformed := collectIgnores(pkg.Fset, pkg.Files)
	diags = append(diags, malformed...)
	kept := diags[:0]
	for _, d := range diags {
		if !sup.covers(d) {
			kept = append(kept, d)
		}
	}
	return kept
}

// ignoreSet indexes //lint:ignore directives by file and line.
type ignoreSet map[string]map[int][]string // file -> line -> analyzer names

func (s ignoreSet) covers(d Diagnostic) bool {
	lines := s[d.Pos.Filename]
	for _, line := range []int{d.Pos.Line, d.Pos.Line - 1} {
		for _, name := range lines[line] {
			if name == "all" || name == d.Analyzer {
				return true
			}
		}
	}
	return false
}

// collectIgnores scans comments for lint:ignore directives. A directive
// suppresses matching findings on its own line and the line below it, so
// both end-of-line and line-above placement work. Malformed directives
// (missing analyzer list or justification) are reported as findings of
// the pseudo-analyzer "lint".
func collectIgnores(fset *token.FileSet, files []*ast.File) (ignoreSet, []Diagnostic) {
	set := ignoreSet{}
	var malformed []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:ignore")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				fields := strings.Fields(text)
				if len(fields) < 2 {
					malformed = append(malformed, Diagnostic{
						Analyzer: "lint",
						Pos:      pos,
						Message:  "malformed //lint:ignore: want \"//lint:ignore <analyzers> <justification>\"",
					})
					continue
				}
				byLine := set[pos.Filename]
				if byLine == nil {
					byLine = map[int][]string{}
					set[pos.Filename] = byLine
				}
				names := strings.Split(fields[0], ",")
				byLine[pos.Line] = append(byLine[pos.Line], names...)
				byLine[pos.Line+1] = append(byLine[pos.Line+1], names...)
			}
		}
	}
	return set, malformed
}

// sortDiagnostics orders findings by file, line, column, analyzer.
func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}
