package lint

import (
	"go/token"
	"path/filepath"
	"testing"
)

func diag(analyzer, file, msg string) Diagnostic {
	return Diagnostic{
		Analyzer: analyzer,
		Pos:      token.Position{Filename: file, Line: 10, Column: 2},
		Message:  msg,
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	root := t.TempDir()
	path := filepath.Join(root, "baseline.json")
	diags := []Diagnostic{
		diag("detmap", filepath.Join(root, "a", "a.go"), "map order leak"),
		diag("lockbal", filepath.Join(root, "b", "b.go"), "never unlocked"),
	}
	if err := WriteBaseline(path, root, diags); err != nil {
		t.Fatalf("WriteBaseline: %v", err)
	}
	b, err := LoadBaseline(path)
	if err != nil {
		t.Fatalf("LoadBaseline: %v", err)
	}
	if b.Version != 1 || len(b.Diagnostics) != 2 {
		t.Fatalf("round trip mangled baseline: %+v", b)
	}
	if b.Diagnostics[0].File != "a/a.go" {
		t.Errorf("file not relativized/slashed: %q", b.Diagnostics[0].File)
	}
	if kept := b.Filter(diags, root); len(kept) != 0 {
		t.Errorf("baseline did not absorb its own findings: %v", kept)
	}
}

func TestBaselineFilterIsMultisetAware(t *testing.T) {
	root := t.TempDir()
	d := diag("nopanic", filepath.Join(root, "x.go"), "panic in library code")
	b := &Baseline{Version: 1, Diagnostics: []BaselineEntry{
		{Analyzer: "nopanic", File: "x.go", Message: "panic in library code"},
	}}
	// Two identical findings, one blessed entry: exactly one must survive.
	kept := b.Filter([]Diagnostic{d, d}, root)
	if len(kept) != 1 {
		t.Fatalf("got %d findings past a 1-entry baseline for 2 duplicates, want 1", len(kept))
	}
}

func TestBaselineIgnoresLineNumbers(t *testing.T) {
	root := t.TempDir()
	b := &Baseline{Version: 1, Diagnostics: []BaselineEntry{
		{Analyzer: "floateq", File: "y.go", Message: "== on float64"},
	}}
	d := diag("floateq", filepath.Join(root, "y.go"), "== on float64")
	d.Pos.Line = 999 // far from wherever it was blessed
	if kept := b.Filter([]Diagnostic{d}, root); len(kept) != 0 {
		t.Errorf("baseline match should not depend on line number: %v", kept)
	}
}

func TestLoadBaselineMissingFileIsError(t *testing.T) {
	if _, err := LoadBaseline(filepath.Join(t.TempDir(), "nope.json")); err == nil {
		t.Error("missing baseline file must be an error, not an empty baseline")
	}
}
