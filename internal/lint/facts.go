package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"
	"strings"
)

// This file is the interprocedural facts engine: a layer between the
// package loader and the analyzers that computes one summary per module
// function ("reads the wall clock", "uses the global math/rand source",
// "blocks without honoring a context") and propagates those summaries
// along call edges across package boundaries. The per-file analyzers in
// PR 1 could only see one function body at a time; the facts layer is
// what lets wallclock blame `sim.MeasureStream` for a `time.Now` three
// calls and two packages away — the property the paper's replayable-seed
// contract (Theorems 3.1-3.3, PR 5's chaos digests) actually depends on.
//
// Scope and approximations:
//
//   - Only statically resolved calls propagate: interface method calls
//     and calls through function values are not edges. A fact hidden
//     behind an interface needs a direct annotation or review.
//   - Function literals fold into their enclosing declaration: if a
//     closure inside f reads time.Now, f reads time.Now.
//   - Propagation runs to a fixed point over keys in sorted order, so
//     the recorded witness chains are deterministic.

// factKind enumerates the facts the engine tracks per function.
type factKind int

const (
	factWallClock factKind = iota // reads the wall clock (time.Now & friends)
	factGlobalRNG                 // uses the global math/rand source
	factBlocks                    // contains an unguarded blocking operation
	nFactKinds
)

// factSource is the evidence for one fact on one function: either the
// direct operation (next == "") or the call edge leading toward it.
type factSource struct {
	pos  token.Pos
	what string // human-readable operation, e.g. "time.Now()"
	next string // key of the callee the fact was inherited from, "" if direct
}

// callEdge is one statically resolved call to a module-local function.
type callEdge struct {
	callee    string
	pos       token.Pos
	passesCtx bool // a context.Context value is among the arguments
}

// funcInfo is the per-function summary node of the facts graph.
type funcInfo struct {
	key   string
	pkg   string
	decl  *ast.FuncDecl
	facts [nFactKinds]*factSource
	calls []callEdge
}

// Facts holds the propagated summaries for every function of the loaded
// package set plus the //lint:deterministic package annotations.
type Facts struct {
	fset    *token.FileSet
	fns     map[string]*funcInfo
	det     map[string]bool // package path -> annotated deterministic
	modules map[string]bool // module paths of the loaded packages
	local   map[string]bool // package paths whose sources were summarized
}

// ComputeFacts builds and propagates function summaries over the whole
// loaded package set. It is called once per Run, before any analyzer.
func ComputeFacts(pkgs []*Package) *Facts {
	f := &Facts{
		fns:     map[string]*funcInfo{},
		det:     map[string]bool{},
		modules: map[string]bool{},
		local:   map[string]bool{},
	}
	for _, pkg := range pkgs {
		if f.fset == nil {
			f.fset = pkg.Fset
		}
		if pkg.Module != "" {
			f.modules[pkg.Module] = true
		}
		f.local[pkg.Path] = true
		if hasDeterministicDirective(pkg.Files) {
			f.det[pkg.Path] = true
		}
	}
	for _, pkg := range pkgs {
		f.collectPackage(pkg)
	}
	f.propagate()
	return f
}

// Deterministic reports whether pkgPath carries a //lint:deterministic
// annotation.
func (f *Facts) Deterministic(pkgPath string) bool { return f.det[pkgPath] }

// hasDeterministicDirective scans file comments for the package-level
// //lint:deterministic annotation.
func hasDeterministicDirective(files []*ast.File) bool {
	for _, file := range files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				if c.Text == "//lint:deterministic" || strings.HasPrefix(c.Text, "//lint:deterministic ") {
					return true
				}
			}
		}
	}
	return false
}

// moduleLocal reports whether pkgPath is a package whose sources we
// summarized — either a direct load target or any package of a loaded
// module (call edges into the latter resolve once that package is in
// the same Run).
func (f *Facts) moduleLocal(pkgPath string) bool {
	if f.local[pkgPath] {
		return true
	}
	for m := range f.modules {
		if pkgPath == m || strings.HasPrefix(pkgPath, m+"/") {
			return true
		}
	}
	return false
}

// funcObjKey canonicalizes a function object to its cross-package key:
// "pkg/path.Name" for functions, "pkg/path.(Recv).Name" for methods.
// The key is derived purely from names so that the object seen through
// export data (at a call site in an importing package) and the object
// type-checked from source (at the declaration) agree.
func funcObjKey(obj *types.Func) string {
	pkg := obj.Pkg()
	if pkg == nil {
		return ""
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok {
		return ""
	}
	if recv := sig.Recv(); recv != nil {
		t := recv.Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		named, ok := t.(*types.Named)
		if !ok {
			return "" // method on an unnamed type; not addressable by key
		}
		return pkg.Path() + ".(" + named.Obj().Name() + ")." + obj.Name()
	}
	return pkg.Path() + "." + obj.Name()
}

// declKey returns the facts key of a function declaration in pass's
// package, or "" if the declaration did not type-check.
func (p *Pass) declKey(decl *ast.FuncDecl) string {
	obj, ok := p.Info.Defs[decl.Name].(*types.Func)
	if !ok {
		return ""
	}
	return funcObjKey(obj)
}

// collectPackage computes the direct facts and call edges of every
// function declared in pkg.
func (f *Facts) collectPackage(pkg *Package) {
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			key := funcObjKey(obj)
			if key == "" {
				continue
			}
			fn := &funcInfo{key: key, pkg: pkg.Path, decl: fd}
			c := &factCollector{facts: f, info: pkg.Info, fn: fn}
			c.walkStmts(fd.Body.List)
			f.fns[key] = fn
		}
	}
}

// factCollector walks one function body recording direct facts and call
// edges. guarded is true while inside a select clause that offers an
// alternative path (>= 2 clauses), where a channel op cannot block alone.
type factCollector struct {
	facts   *Facts
	info    *types.Info
	fn      *funcInfo
	guarded bool
}

func (c *factCollector) setFact(kind factKind, pos token.Pos, what string) {
	if c.fn.facts[kind] == nil {
		c.fn.facts[kind] = &factSource{pos: pos, what: what}
	}
}

func (c *factCollector) walkStmts(list []ast.Stmt) {
	for _, s := range list {
		c.walk(s)
	}
}

func (c *factCollector) walk(n ast.Node) {
	switch n := n.(type) {
	case nil:
		return

	case *ast.SelectStmt:
		guarded := len(n.Body.List) >= 2
		for _, cl := range n.Body.List {
			cc, ok := cl.(*ast.CommClause)
			if !ok {
				continue
			}
			if cc.Comm != nil {
				saved := c.guarded
				c.guarded = c.guarded || guarded
				c.walk(cc.Comm)
				c.guarded = saved
			}
			c.walkStmts(cc.Body)
		}
		return

	case *ast.SendStmt:
		if !c.guarded {
			c.setFact(factBlocks, n.Arrow, "channel send")
		}

	case *ast.UnaryExpr:
		if n.Op == token.ARROW && !c.guarded {
			c.setFact(factBlocks, n.OpPos, "channel receive")
		}

	case *ast.CallExpr:
		c.classifyCall(n)

	case *ast.FuncLit:
		// Fold the literal's facts into the enclosing function; channel
		// guards do not extend across the closure boundary.
		saved := c.guarded
		c.guarded = false
		c.walkStmts(n.Body.List)
		c.guarded = saved
		return
	}
	for _, child := range childNodes(n) {
		c.walk(child)
	}
}

// classifyCall records the fact or call edge a single call expression
// contributes.
func (c *factCollector) classifyCall(call *ast.CallExpr) {
	obj, ok := calleeObject(c.info, call).(*types.Func)
	if !ok {
		return
	}
	pkg := obj.Pkg()
	if pkg == nil {
		return // builtins: append, len, ...
	}
	sig, _ := obj.Type().(*types.Signature)
	switch pkg.Path() {
	case "time":
		switch obj.Name() {
		case "Now", "Since", "Until", "After", "Tick", "NewTicker", "NewTimer", "AfterFunc":
			c.setFact(factWallClock, call.Pos(), "time."+obj.Name()+"()")
		case "Sleep":
			if !c.guarded {
				c.setFact(factBlocks, call.Pos(), "time.Sleep()")
			}
		}
	case "math/rand", "math/rand/v2":
		if sig != nil && sig.Recv() == nil && !isRandConstructor(obj.Name()) {
			c.setFact(factGlobalRNG, call.Pos(), pkg.Path()+"."+obj.Name()+"()")
		}
	case "sync":
		if sig != nil && sig.Recv() != nil && obj.Name() == "Wait" && !c.guarded {
			recv := sig.Recv().Type()
			if isNamed(recv, "sync", "WaitGroup") || isNamed(recv, "sync", "Cond") {
				c.setFact(factBlocks, call.Pos(), "sync."+typeShortName(recv)+".Wait()")
			}
		}
	}
	if c.facts.moduleLocal(pkg.Path()) {
		key := funcObjKey(obj)
		if key != "" {
			c.fn.calls = append(c.fn.calls, callEdge{
				callee:    key,
				pos:       call.Pos(),
				passesCtx: callPassesContext(c.info, call),
			})
		}
	}
}

// isRandConstructor reports whether name is a math/rand function that
// only builds an explicitly seeded source rather than touching the
// global one.
func isRandConstructor(name string) bool {
	switch name {
	case "New", "NewSource", "NewZipf", "NewPCG", "NewChaCha8":
		return true
	}
	return false
}

func typeShortName(t types.Type) string {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return t.String()
}

// callPassesContext reports whether any argument of call has type
// context.Context.
func callPassesContext(info *types.Info, call *ast.CallExpr) bool {
	for _, arg := range call.Args {
		if tv, ok := info.Types[arg]; ok && isNamed(tv.Type, "context", "Context") {
			return true
		}
	}
	return false
}

// propagate closes the facts over call edges to a fixed point. Keys are
// visited in sorted order each round, so the witness chain recorded for
// a fact is deterministic across runs and worker counts.
func (f *Facts) propagate() {
	keys := make([]string, 0, len(f.fns))
	for k := range f.fns {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for changed := true; changed; {
		changed = false
		for _, k := range keys {
			fn := f.fns[k]
			for _, edge := range fn.calls {
				callee := f.fns[edge.callee]
				if callee == nil || callee == fn {
					continue
				}
				for kind := factKind(0); kind < nFactKinds; kind++ {
					if callee.facts[kind] != nil && fn.facts[kind] == nil {
						fn.facts[kind] = &factSource{pos: edge.pos, what: edge.callee, next: edge.callee}
						changed = true
					}
				}
			}
		}
	}
}

// fn returns the summary for key, or nil.
func (f *Facts) fn(key string) *funcInfo { return f.fns[key] }

// chain reconstructs the witness call chain from key to the direct
// operation behind fact kind. It returns the rendered chain (starting
// with key's own display name), the direct operation, its position, and
// whether the fact holds at all.
func (f *Facts) chain(key string, kind factKind) (steps []string, what string, pos token.Pos, ok bool) {
	seen := map[string]bool{}
	cur := key
	for {
		fn := f.fns[cur]
		if fn == nil || fn.facts[kind] == nil || seen[cur] {
			return nil, "", token.NoPos, false
		}
		seen[cur] = true
		steps = append(steps, f.displayKey(cur))
		src := fn.facts[kind]
		if src.next == "" {
			return steps, src.what, src.pos, true
		}
		cur = src.next
	}
}

// displayKey trims the module prefix off a function key for messages:
// "tcsa/internal/sim.MeasureStream" -> "sim.MeasureStream".
func (f *Facts) displayKey(key string) string {
	for m := range f.modules {
		if rest, ok := strings.CutPrefix(key, m+"/"); ok {
			if i := strings.LastIndexByte(rest, '/'); i >= 0 {
				rest = rest[i+1:]
			}
			return rest
		}
	}
	return key
}

// chainString renders a witness chain for a diagnostic message:
// "sim.MeasureStream -> sim.shardLoop -> time.Now() at file.go:12".
func (f *Facts) chainString(steps []string, what string, pos token.Pos) string {
	var sb strings.Builder
	for _, s := range steps {
		sb.WriteString(s)
		sb.WriteString(" -> ")
	}
	sb.WriteString(what)
	if pos.IsValid() {
		p := f.fset.Position(pos)
		sb.WriteString(" at ")
		sb.WriteString(p.Filename)
		sb.WriteString(":")
		sb.WriteString(strconv.Itoa(p.Line))
	}
	return sb.String()
}

// childNodes enumerates the immediate AST children of n that the fact
// collector should descend into, using ast.Inspect one level deep.
func childNodes(n ast.Node) []ast.Node {
	var out []ast.Node
	first := true
	ast.Inspect(n, func(child ast.Node) bool {
		if first {
			first = false
			return true
		}
		if child != nil {
			out = append(out, child)
		}
		return false
	})
	return out
}
