package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// AtomicMix flags a variable or struct field that is accessed both
// through the sync/atomic function API (atomic.AddInt64(&x.n, 1)) and
// through plain loads or stores elsewhere in the package. Mixing the two
// is a data race even when it happens to pass the race detector on a
// given interleaving: the plain access carries no synchronization, so
// the counter the chaos engine or netcast server reports can be torn or
// stale. Use the typed atomic.Int64/Bool/Pointer wrappers (as
// sim/stream.go and opt do), which make the unsynchronized access
// impossible to write.
//
// The check is package-local: a field declared and atomically accessed
// here but plainly accessed from another package is out of scope (the
// typed wrappers close that hole for good).
var AtomicMix = &Analyzer{
	Name: "atomicmix",
	Doc:  "same variable accessed via sync/atomic and via plain loads/stores",
	Run:  runAtomicMix,
}

func runAtomicMix(pass *Pass) {
	// Pass 1: every variable whose address is taken as the first argument
	// of a sync/atomic call, plus the identifier nodes of those argument
	// expressions (so pass 2 does not count them as plain accesses).
	atomicAt := map[types.Object]token.Pos{}
	inAtomicArg := map[*ast.Ident]bool{}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicFuncCall(pass, call) || len(call.Args) == 0 {
				return true
			}
			addr, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
			if !ok || addr.Op != token.AND {
				return true
			}
			obj := addressedVar(pass, addr.X)
			if obj == nil {
				return true
			}
			if _, seen := atomicAt[obj]; !seen {
				atomicAt[obj] = call.Pos()
			}
			ast.Inspect(addr.X, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok {
					inAtomicArg[id] = true
				}
				return true
			})
			return true
		})
	}
	if len(atomicAt) == 0 {
		return
	}

	// Pass 2: plain accesses of the same objects.
	type finding struct {
		pos    token.Pos
		name   string
		atomic token.Pos
	}
	var found []finding
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok || inAtomicArg[id] {
				return true
			}
			obj := pass.Info.Uses[id]
			if obj == nil {
				return true
			}
			if at, ok := atomicAt[obj]; ok {
				found = append(found, finding{pos: id.Pos(), name: id.Name, atomic: at})
			}
			return true
		})
	}
	sort.Slice(found, func(i, j int) bool { return found[i].pos < found[j].pos })
	for _, f := range found {
		pass.Reportf(f.pos,
			"%s is accessed with sync/atomic at %s but read/written plainly here; mixed access is a data race — use atomic.Int64-style typed atomics",
			f.name, pass.Fset.Position(f.atomic))
	}
}

// isAtomicFuncCall reports whether call targets a top-level sync/atomic
// function (Add*, Load*, Store*, Swap*, CompareAndSwap*).
func isAtomicFuncCall(pass *Pass, call *ast.CallExpr) bool {
	obj, ok := calleeObject(pass.Info, call).(*types.Func)
	if !ok || obj.Pkg() == nil || obj.Pkg().Path() != "sync/atomic" {
		return false
	}
	sig, ok := obj.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// addressedVar resolves &expr's operand to the variable object it
// denotes: a plain identifier or the terminal field of a selector.
func addressedVar(pass *Pass, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj, ok := pass.Info.Uses[e].(*types.Var); ok {
			return obj
		}
	case *ast.SelectorExpr:
		if obj, ok := pass.Info.Uses[e.Sel].(*types.Var); ok {
			return obj
		}
	}
	return nil
}
