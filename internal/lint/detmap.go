package lint

import (
	"go/ast"
	"go/types"
)

// DetMap flags map iteration feeding an ordered sink inside a
// //lint:deterministic package: appending the iteration *values* to a
// slice, or writing inside the loop to anything with a Write-family
// method (io.Writer, hash.Hash, strings.Builder) or the fmt print
// family. Go randomizes map iteration order per run, so any of these
// turns a replayable computation into a per-process roll of the dice —
// exactly the class of bug the worker-count-independence tests of
// sim.MeasureStream and chaos.Run exist to catch, except a map fold can
// be order-dependent while still passing a single pinned test seed.
//
// Appending only the *key* to a slice is not flagged: collect-keys,
// sort, then index the map is the canonical deterministic idiom.
var DetMap = &Analyzer{
	Name: "detmap",
	Doc:  "map iteration feeding an ordered sink in a //lint:deterministic package",
	Run:  runDetMap,
}

func runDetMap(pass *Pass) {
	if pass.Facts == nil || !pass.Facts.Deterministic(pass.Pkg.Path()) {
		return
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.Info.Types[rng.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			checkMapRangeBody(pass, rng)
			return true
		})
	}
}

// checkMapRangeBody scans the body of one range-over-map for ordered
// sinks.
func checkMapRangeBody(pass *Pass, rng *ast.RangeStmt) {
	keyObj := rangeVarObj(pass, rng.Key)
	valObj := rangeVarObj(pass, rng.Value)
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // a closure defined here may run outside the loop
		}
		if inner, ok := n.(*ast.RangeStmt); ok && inner != rng {
			if tv, ok := pass.Info.Types[inner.X]; ok {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					return false // nested map range is checked on its own
				}
			}
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "append" {
			if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); isBuiltin {
				for _, arg := range call.Args[1:] {
					if exprUsesOnlyKey(pass, arg, keyObj, valObj) {
						continue
					}
					pass.Reportf(call.Pos(),
						"append of map iteration values inside range over map: slice order depends on map iteration order; iterate sorted keys instead")
					return false
				}
			}
			return true
		}
		if name, ok := orderedSinkCall(pass, call); ok {
			pass.Reportf(call.Pos(),
				"%s inside range over map: output order depends on map iteration order; iterate sorted keys instead", name)
			return false
		}
		return true
	})
}

// rangeVarObj resolves the object a range variable binds, or nil.
func rangeVarObj(pass *Pass, e ast.Expr) types.Object {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	if obj := pass.Info.Defs[id]; obj != nil {
		return obj
	}
	return pass.Info.Uses[id]
}

// exprUsesOnlyKey reports whether arg is exactly the range key variable
// (the collect-then-sort idiom). Anything touching the value variable,
// a map index, or an unrelated expression counts as order-dependent.
func exprUsesOnlyKey(pass *Pass, arg ast.Expr, keyObj, valObj types.Object) bool {
	id, ok := ast.Unparen(arg).(*ast.Ident)
	if !ok {
		return false
	}
	obj := pass.Info.Uses[id]
	return obj != nil && keyObj != nil && obj == keyObj && obj != valObj
}

// orderedSinkCall reports whether call writes to an inherently ordered
// sink: the fmt print family or any Write/WriteString/WriteByte/
// WriteRune method (io.Writer, hash.Hash, bytes.Buffer, bufio.Writer...).
func orderedSinkCall(pass *Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	obj, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return "", false
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok {
		return "", false
	}
	if sig.Recv() == nil {
		if obj.Pkg() != nil && obj.Pkg().Path() == "fmt" {
			switch obj.Name() {
			case "Fprint", "Fprintf", "Fprintln", "Print", "Printf", "Println":
				return "fmt." + obj.Name(), true
			}
		}
		return "", false
	}
	switch obj.Name() {
	case "Write", "WriteString", "WriteByte", "WriteRune":
		return typeShortName(sig.Recv().Type()) + "." + obj.Name(), true
	}
	return "", false
}
