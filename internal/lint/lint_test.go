package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// corpusPaths assigns each corpus the package path it is loaded under.
// floateq only fires inside the delay-math packages, so its corpus
// masquerades as one of them.
var corpusPaths = map[string]string{
	"slotmath":    "tcsa/internal/lint/testdata/slotmath",
	"checkerr":    "tcsa/internal/lint/testdata/checkerr",
	"floateq":     "tcsa/internal/delaymodel",
	"copylock":    "tcsa/internal/lint/testdata/copylock",
	"exhaustenum": "tcsa/internal/lint/testdata/exhaustenum",
	"nopanic":     "tcsa/internal/lint/testdata/nopanic",
	"detmap":      "tcsa/internal/lint/testdata/detmap",
	"wallclock":   "tcsa/internal/lint/testdata/wallclock",
	"ctxflow":     "tcsa/internal/lint/testdata/ctxflow",
	"atomicmix":   "tcsa/internal/lint/testdata/atomicmix",
	"lockbal":     "tcsa/internal/lint/testdata/lockbal",
}

// TestAnalyzerCorpora checks every analyzer against its testdata corpus:
// each `// want "substring"` line must produce a matching finding, and no
// unmarked line may produce one.
func TestAnalyzerCorpora(t *testing.T) {
	for _, a := range All() {
		t.Run(a.Name, func(t *testing.T) {
			dir := filepath.Join("testdata", a.Name)
			pkg, err := loadDir(dir, corpusPaths[a.Name])
			if err != nil {
				t.Fatalf("loading corpus: %v", err)
			}
			got := analyze(pkg, []*Analyzer{a}, ComputeFacts([]*Package{pkg}))
			sortDiagnostics(got)
			wants := parseWants(t, dir)
			used := map[string]bool{}
			for _, d := range got {
				key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
				substr, ok := wants[key]
				if !ok {
					t.Errorf("unexpected finding: %s", d)
					continue
				}
				if !strings.Contains(d.Message, substr) {
					t.Errorf("finding at %s = %q, want substring %q", key, d.Message, substr)
				}
				used[key] = true
			}
			for key, substr := range wants {
				if !used[key] {
					t.Errorf("missing finding at %s (want %q)", key, substr)
				}
			}
		})
	}
}

var wantRE = regexp.MustCompile(`// want "([^"]*)"`)

// parseWants extracts `// want "..."` markers keyed by file:line.
func parseWants(t *testing.T, dir string) map[string]string {
	t.Helper()
	wants := map[string]string{}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			if m := wantRE.FindStringSubmatch(line); m != nil {
				wants[fmt.Sprintf("%s:%d", path, i+1)] = m[1]
			}
		}
	}
	if len(wants) == 0 {
		t.Fatalf("corpus %s has no want markers", dir)
	}
	return wants
}

func TestByName(t *testing.T) {
	got, err := ByName("slotmath, nopanic")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Name != "slotmath" || got[1].Name != "nopanic" {
		t.Errorf("ByName = %v", got)
	}
	if _, err := ByName("nosuchcheck"); err == nil {
		t.Error("unknown analyzer accepted")
	}
	if _, err := ByName(" , "); err == nil {
		t.Error("empty selection accepted")
	}
}

// TestIgnoreDirectives exercises the suppression scanner directly: same
// line and line-above placement, unrelated analyzers, and the malformed
// (justification-free) form.
func TestIgnoreDirectives(t *testing.T) {
	src := `package p

func f() {
	_ = 1 //lint:ignore demo same-line placement
	//lint:ignore demo,other line-above placement
	_ = 2
	//lint:ignore demo
	_ = 3
}
`
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	set, malformed := collectIgnores(fset, []*ast.File{file})
	if len(malformed) != 1 || !strings.Contains(malformed[0].Message, "malformed") {
		t.Fatalf("malformed = %v", malformed)
	}
	cases := []struct {
		line     int
		analyzer string
		covered  bool
	}{
		{4, "demo", true},
		{6, "demo", true},
		{6, "other", true},
		{6, "slotmath", false},
		{8, "demo", false}, // malformed directive suppresses nothing
	}
	for _, c := range cases {
		d := Diagnostic{Analyzer: c.analyzer, Pos: token.Position{Filename: "p.go", Line: c.line}}
		if got := set.covers(d); got != c.covered {
			t.Errorf("covers(line %d, %s) = %v, want %v", c.line, c.analyzer, got, c.covered)
		}
	}
}
