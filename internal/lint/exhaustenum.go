package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// ExhaustEnum flags a switch over a module-local enum type (a named
// integer or string type with at least two package-level constants, like
// tcsa.Algorithm or workload.Distribution) that neither covers every
// declared constant nor has a default case. Adding a third Algorithm
// without touching every switch must fail the gate, not silently fall
// through.
var ExhaustEnum = &Analyzer{
	Name: "exhaustenum",
	Doc:  "non-exhaustive switch over a module-local enum without a default",
	Run:  runExhaustEnum,
}

func runExhaustEnum(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			named, ok := pass.Info.TypeOf(sw.Tag).(*types.Named)
			if !ok {
				return true
			}
			obj := named.Obj()
			if obj.Pkg() == nil || !inModule(obj.Pkg().Path(), pass.Module) {
				return true
			}
			basic, ok := named.Underlying().(*types.Basic)
			if !ok || basic.Info()&(types.IsInteger|types.IsString) == 0 {
				return true
			}
			consts := enumConstants(obj.Pkg(), named)
			if len(consts) < 2 {
				return true
			}
			covered := map[string]bool{}
			for _, stmt := range sw.Body.List {
				clause, ok := stmt.(*ast.CaseClause)
				if !ok {
					continue
				}
				if clause.List == nil {
					return true // default case: exhaustive by construction
				}
				for _, expr := range clause.List {
					if v := pass.Info.Types[expr].Value; v != nil {
						covered[v.ExactString()] = true
					}
				}
			}
			var missing []string
			for _, c := range consts {
				if !covered[c.Val().ExactString()] {
					missing = append(missing, c.Name())
				}
			}
			if len(missing) > 0 {
				pass.Reportf(sw.Pos(), "switch over %s.%s misses %s; cover every constant or add a default",
					obj.Pkg().Name(), obj.Name(), strings.Join(missing, ", "))
			}
			return true
		})
	}
}

// inModule reports whether pkgPath lies inside the module being analyzed.
func inModule(pkgPath, module string) bool {
	return module != "" && (pkgPath == module || strings.HasPrefix(pkgPath, module+"/"))
}

// enumConstants returns the package-level constants declared with exactly
// type named, sorted by value for stable diagnostics. Distinct constant
// names sharing a value (aliases) collapse to one entry.
func enumConstants(pkg *types.Package, named *types.Named) []*types.Const {
	scope := pkg.Scope()
	byValue := map[string]*types.Const{}
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !types.Identical(c.Type(), named) {
			continue
		}
		key := c.Val().ExactString()
		if prev, ok := byValue[key]; !ok || c.Name() < prev.Name() {
			byValue[key] = c
		}
	}
	consts := make([]*types.Const, 0, len(byValue))
	for _, c := range byValue {
		consts = append(consts, c)
	}
	sort.Slice(consts, func(i, j int) bool {
		a, b := consts[i].Val(), consts[j].Val()
		if a.Kind() == constant.Int && b.Kind() == constant.Int {
			return constant.Compare(a, token.LSS, b)
		}
		return a.ExactString() < b.ExactString()
	})
	return consts
}
