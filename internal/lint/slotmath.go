package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// corePath is the only package allowed to do raw slot arithmetic.
const corePath = "tcsa/internal/core"

// SlotMath flags raw % arithmetic on Program.Length()/Channels() outside
// internal/core. Cyclic slot and channel indexes must go through the
// Program.Column, Program.AtAbs and Program.WrapChannel accessors, which
// also handle negative indexes; scattering modulo arithmetic over callers
// is how off-by-one wrap bugs sneak past the Theorem 3.1 validity checks.
var SlotMath = &Analyzer{
	Name: "slotmath",
	Doc:  "raw % arithmetic on Program.Length()/Channels() outside internal/core",
	Run:  runSlotMath,
}

func runSlotMath(pass *Pass) {
	if pass.Pkg.Path() == corePath {
		return
	}
	for _, f := range pass.Files {
		// First pass: track locals bound directly to a wrap source, e.g.
		// L := prog.Length(), so `x % L` is caught too.
		tracked := map[types.Object]string{}
		ast.Inspect(f, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, rhs := range as.Rhs {
				method := wrapSource(pass.Info, rhs)
				if method == "" {
					continue
				}
				id, ok := as.Lhs[i].(*ast.Ident)
				if !ok {
					continue
				}
				if obj := pass.Info.Defs[id]; obj != nil {
					tracked[obj] = method
				} else if obj := pass.Info.Uses[id]; obj != nil {
					tracked[obj] = method
				}
			}
			return true
		})

		report := func(pos token.Pos, method string) {
			pass.Reportf(pos, "raw %% arithmetic on Program.%s(); use Program.Column/AtAbs/WrapChannel (slot math belongs to internal/core)", method)
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.BinaryExpr:
				if e.Op != token.REM {
					return true
				}
				if m := wrapOperand(pass.Info, tracked, e.X); m != "" {
					report(e.Pos(), m)
				} else if m := wrapOperand(pass.Info, tracked, e.Y); m != "" {
					report(e.Pos(), m)
				}
			case *ast.AssignStmt:
				if e.Tok != token.REM_ASSIGN || len(e.Rhs) != 1 {
					return true
				}
				if m := wrapOperand(pass.Info, tracked, e.Rhs[0]); m != "" {
					report(e.Pos(), m)
				}
			}
			return true
		})
	}
}

// wrapOperand reports the Program method name behind expr when expr is a
// wrap source: a direct Length/Channels call or a local bound to one.
func wrapOperand(info *types.Info, tracked map[types.Object]string, expr ast.Expr) string {
	expr = ast.Unparen(expr)
	if m := wrapSource(info, expr); m != "" {
		return m
	}
	if id, ok := expr.(*ast.Ident); ok {
		if obj := info.Uses[id]; obj != nil {
			return tracked[obj]
		}
	}
	return ""
}

// wrapSource reports whether expr is a call to (*core.Program).Length or
// (*core.Program).Channels, returning the method name.
func wrapSource(info *types.Info, expr ast.Expr) string {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok {
		return ""
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	selection := info.Selections[sel]
	if selection == nil || selection.Kind() != types.MethodVal {
		return ""
	}
	name := selection.Obj().Name()
	if name != "Length" && name != "Channels" {
		return ""
	}
	if !isNamed(selection.Recv(), corePath, "Program") {
		return ""
	}
	return name
}

// isNamed reports whether t (or its pointee) is the named type
// pkgPath.typeName.
func isNamed(t types.Type, pkgPath, typeName string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == typeName
}
