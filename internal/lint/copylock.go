package lint

import (
	"go/ast"
	"go/types"
)

// CopyLock flags sync.Mutex, sync.RWMutex, sync.WaitGroup (and friends)
// copied by value: value receivers, by-value parameters and results, plain
// assignments from an existing value, and range clauses that copy elements.
// The concurrent netcast servers and the opt worker pool both guard state
// with such locks; a copied lock guards nothing. This mirrors go vet's
// copylocks check so the invariant is enforced by airvet's single gate too.
var CopyLock = &Analyzer{
	Name: "copylock",
	Doc:  "sync.Mutex/WaitGroup and friends copied by value",
	Run:  runCopyLock,
}

// lockTypes are the sync types that must never be copied after first use.
var lockTypes = map[string]bool{
	"Mutex": true, "RWMutex": true, "WaitGroup": true,
	"Once": true, "Cond": true, "Pool": true, "Map": true,
}

func runCopyLock(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.FuncDecl:
				if node.Recv != nil {
					checkFieldList(pass, node.Recv, "receiver")
				}
				checkFieldList(pass, node.Type.Params, "parameter")
				checkFieldList(pass, node.Type.Results, "result")
			case *ast.FuncLit:
				checkFieldList(pass, node.Type.Params, "parameter")
				checkFieldList(pass, node.Type.Results, "result")
			case *ast.AssignStmt:
				if len(node.Lhs) != len(node.Rhs) {
					return true
				}
				for _, rhs := range node.Rhs {
					if !copiesValue(rhs) {
						continue
					}
					if name := lockIn(pass.Info.TypeOf(rhs)); name != "" {
						pass.Reportf(rhs.Pos(), "assignment copies a value containing sync.%s; use a pointer", name)
					}
				}
			case *ast.RangeStmt:
				if node.Value == nil {
					return true
				}
				if name := lockIn(pass.Info.TypeOf(node.Value)); name != "" {
					pass.Reportf(node.Value.Pos(), "range clause copies a value containing sync.%s per iteration; range over indexes or pointers", name)
				}
			}
			return true
		})
	}
}

// checkFieldList reports fields whose by-value type contains a lock.
func checkFieldList(pass *Pass, fields *ast.FieldList, role string) {
	if fields == nil {
		return
	}
	for _, field := range fields.List {
		t := pass.Info.TypeOf(field.Type)
		if name := lockIn(t); name != "" {
			pass.Reportf(field.Pos(), "%s passes a value containing sync.%s by value; use a pointer", role, name)
		}
	}
}

// copiesValue reports whether evaluating rhs copies an existing value (as
// opposed to binding a freshly constructed one, which is the only legal
// moment to move a lock).
func copiesValue(rhs ast.Expr) bool {
	switch ast.Unparen(rhs).(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		return true
	}
	return false
}

// lockIn returns the name of the first sync lock type contained by value
// in t, or "".
func lockIn(t types.Type) string {
	return lockInSeen(t, map[types.Type]bool{})
}

func lockInSeen(t types.Type, seen map[types.Type]bool) string {
	if t == nil || seen[t] {
		return ""
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" && lockTypes[obj.Name()] {
			return obj.Name()
		}
		return lockInSeen(named.Underlying(), seen)
	}
	switch u := t.(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if name := lockInSeen(u.Field(i).Type(), seen); name != "" {
				return name
			}
		}
	case *types.Array:
		return lockInSeen(u.Elem(), seen)
	}
	return ""
}
