// Package checkerr is the airvet checkerr corpus: error results must be
// handled or explicitly assigned to the blank identifier.
package checkerr

import (
	"fmt"
	"strings"

	"tcsa/internal/core"
)

func drops(groups []core.Group) {
	core.NewGroupSet(groups) // want "error result of core.NewGroupSet is silently discarded"
}

func dropsMethod(p *core.Program) {
	p.Validate() // want "error result of Program.Validate is silently discarded"
}

func dropsRearrange(times []int) {
	core.Rearrange(times, 2) // want "error result of core.Rearrange is silently discarded"
}

func handles(groups []core.Group) (*core.GroupSet, error) {
	gs, err := core.NewGroupSet(groups)
	if err != nil {
		return nil, err
	}
	return gs, nil
}

func explicitDiscard(p *core.Program) {
	_ = p.Validate()
}

func exemptWriters(p *core.Program) string {
	fmt.Println("filled:", p.Filled())
	var b strings.Builder
	b.WriteString("cells: ")
	fmt.Fprintf(&b, "%d", p.Filled())
	return b.String()
}

func suppressed(p *core.Program) {
	//lint:ignore checkerr corpus demonstrates the escape hatch
	p.Validate()
}
