// Package copylock is the airvet copylock corpus: sync primitives must
// never be copied after first use.
package copylock

import "sync"

type guarded struct {
	mu sync.Mutex
	n  int
}

func byValueParam(mu sync.Mutex) { // want "parameter passes a value containing sync.Mutex"
	mu.Lock()
}

func byValueResult() (wg sync.WaitGroup) { // want "result passes a value containing sync.WaitGroup"
	return
}

func (g guarded) byValueReceiver() int { // want "receiver passes a value containing sync.Mutex"
	return g.n
}

func copiesStruct(g *guarded) int {
	cp := *g // want "assignment copies a value containing sync.Mutex"
	return cp.n
}

func rangeCopies(gs []guarded) int {
	total := 0
	for _, g := range gs { // want "range clause copies a value containing sync.Mutex"
		total += g.n
	}
	return total
}

func pointerParam(mu *sync.Mutex) {
	mu.Lock()
	defer mu.Unlock()
}

func (g *guarded) pointerReceiver() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.n
}

func freshValue() *guarded {
	g := guarded{n: 1}
	return &g
}

func rangeByIndex(gs []guarded) int {
	total := 0
	for i := range gs {
		total += gs[i].n
	}
	return total
}
