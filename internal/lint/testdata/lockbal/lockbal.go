// Package lockbal is the airvet lockbal corpus: every Lock must be
// balanced by an Unlock on every path to return, and no path may unlock
// a mutex it does not hold.
package lockbal

import "sync"

type store struct {
	mu   sync.Mutex
	rw   sync.RWMutex
	data map[string]int
}

func (s *store) deferred(k string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.data[k]
}

func (s *store) leaky(k string) (int, bool) {
	s.mu.Lock() // want "not unlocked on every path"
	v, ok := s.data[k]
	if !ok {
		return 0, false
	}
	s.mu.Unlock()
	return v, true
}

func (s *store) neverReleases(k string, v int) {
	s.mu.Lock() // want "never unlocked before returning"
	s.data[k] = v
}

func (s *store) doubleUnlock(k string) int {
	s.mu.Lock()
	v := s.data[k]
	s.mu.Unlock()
	s.mu.Unlock() // want "without a held Lock on this path"
	return v
}

func (s *store) doubleLock(k string, v int) {
	s.mu.Lock()
	s.mu.Lock() // want "already locked on this path"
	s.data[k] = v
	s.mu.Unlock()
}

func (s *store) balancedBranches(flag bool, k string) int {
	s.mu.Lock()
	if flag {
		v := s.data[k]
		s.mu.Unlock()
		return v
	}
	s.mu.Unlock()
	return 0
}

func (s *store) readLocked(k string) int {
	s.rw.RLock()
	defer s.rw.RUnlock()
	return s.data[k]
}

func (s *store) loopBalanced(keys []string) int {
	total := 0
	for _, k := range keys {
		s.mu.Lock()
		total += s.data[k]
		s.mu.Unlock()
	}
	return total
}

func (s *store) panicPathOwesNothing(k string) int {
	s.mu.Lock()
	v, ok := s.data[k]
	if !ok {
		s.mu.Unlock()
		panic("missing key")
	}
	s.mu.Unlock()
	return v
}
