// Package exhaustenum is the airvet exhaustenum corpus: switches over
// module-local enums must cover every constant or declare a default.
package exhaustenum

// Phase is an integer enum with three constants.
type Phase int

const (
	Warmup Phase = iota
	Steady
	Drain
)

// Kind is a string enum, like tcsa.Algorithm.
type Kind string

const (
	KindSUSC  Kind = "SUSC"
	KindPAMAD Kind = "PAMAD"
)

func missing(p Phase) string {
	switch p { // want "switch over exhaustenum.Phase misses Drain"
	case Warmup:
		return "warmup"
	case Steady:
		return "steady"
	}
	return ""
}

func missingString(k Kind) int {
	switch k { // want "switch over exhaustenum.Kind misses KindPAMAD"
	case KindSUSC:
		return 1
	}
	return 0
}

func covered(p Phase) string {
	switch p {
	case Warmup:
		return "warmup"
	case Steady:
		return "steady"
	case Drain:
		return "drain"
	}
	return ""
}

func defaulted(p Phase) string {
	switch p {
	case Warmup:
		return "warmup"
	default:
		return "running"
	}
}

func plainIntIsFine(x int) string {
	switch x {
	case 1:
		return "one"
	}
	return "many"
}
