// Package detmap is the airvet detmap corpus: inside a
// //lint:deterministic package, map iteration must not feed ordered
// sinks (slices of values, writers, hashes) without sorting first.
//
//lint:deterministic corpus package exercising the determinism analyzers
package detmap

import (
	"fmt"
	"sort"
	"strings"
)

func valuesUnsorted(m map[string]int) []int {
	var out []int
	for _, v := range m {
		out = append(out, v) // want "append of map iteration values"
	}
	return out
}

func keysThenSort(m map[string]int) []int {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k) // collect-then-sort idiom: clean
	}
	sort.Strings(keys)
	out := make([]int, 0, len(keys))
	for _, k := range keys {
		out = append(out, m[k]) // ranging the sorted slice: clean
	}
	return out
}

func printPairs(m map[string]int, sb *strings.Builder) {
	for k, v := range m {
		fmt.Fprintf(sb, "%s=%d\n", k, v) // want "fmt.Fprintf inside range over map"
	}
}

func writeKeys(m map[string]int, sb *strings.Builder) {
	for k := range m {
		sb.WriteString(k) // want "Builder.WriteString inside range over map"
	}
}

func commutativeFold(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v // order-free accumulation: clean
	}
	return total
}

func mapToMap(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v // map insert is order-free: clean
	}
	return out
}
