// Package slotmath is the airvet slotmath corpus: raw cyclic-index
// arithmetic on Program dimensions must go through the core accessors.
package slotmath

import "tcsa/internal/core"

func direct(p *core.Program, abs int) int {
	return abs % p.Length() // want "raw % arithmetic on Program.Length()"
}

func viaLocal(p *core.Program, abs int) int {
	L := p.Length()
	return abs % L // want "raw % arithmetic on Program.Length()"
}

func remAssign(p *core.Program, col int) int {
	col %= p.Length() // want "raw % arithmetic on Program.Length()"
	return col
}

func channelSweep(p *core.Program, ch int) int {
	return (ch + 1) % p.Channels() // want "raw % arithmetic on Program.Channels()"
}

func accessors(p *core.Program, abs, ch int) (int, int) {
	return p.Column(abs), p.WrapChannel(ch)
}

func unrelatedModulo(a, b int) int {
	if b == 0 {
		return 0
	}
	return a % b
}

func lengthWithoutModulo(p *core.Program) int {
	return p.Length() * p.Channels()
}

func suppressed(p *core.Program, abs int) int {
	//lint:ignore slotmath corpus demonstrates the escape hatch
	return abs % p.Length()
}

func suppressedMultiline(p *core.Program, abs, ch int) (int, int) {
	// The directive on the line above a multi-line statement covers the
	// whole statement, not just its first line (regression: PR 6).
	//lint:ignore slotmath corpus demonstrates statement-scoped suppression
	return abs % p.Length(),
		(ch + 1) %
			p.Channels()
}
