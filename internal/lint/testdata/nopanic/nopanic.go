// Package nopanic is the airvet nopanic corpus: library code returns
// errors; only Must* invariant helpers may panic.
package nopanic

import "errors"

var errNegative = errors.New("nopanic: negative input")

func bad(x int) int {
	if x < 0 {
		panic("negative input") // want "panic in library code"
	}
	return x
}

func badInClosure(xs []int) func() {
	return func() {
		if len(xs) == 0 {
			panic(errNegative) // want "panic in library code"
		}
	}
}

func MustPositive(x int) int {
	if x < 0 {
		panic(errNegative)
	}
	return x
}

func good(x int) (int, error) {
	if x < 0 {
		return 0, errNegative
	}
	return x, nil
}

func suppressed(x int) int {
	if x < 0 {
		//lint:ignore nopanic corpus demonstrates the escape hatch
		panic("unreachable: callers validate x")
	}
	return x
}
