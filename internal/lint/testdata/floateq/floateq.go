// Package floateq is the airvet floateq corpus. The corpus is loaded
// under a delay-math package path, where exact float comparison is
// forbidden.
package floateq

// Delay is a named float; the underlying kind is what matters.
type Delay float64

func equal(a, b float64) bool {
	return a == b // want "floating-point == comparison"
}

func notZero(d float64) bool {
	return d != 0 // want "floating-point != comparison"
}

func namedEqual(a, b Delay) bool {
	return a == b // want "floating-point == comparison"
}

func withinTolerance(a, b float64) bool {
	return absDiff(a, b) < 1e-9
}

func absDiff(a, b float64) float64 {
	if a > b {
		return a - b
	}
	return b - a
}

func intsAreFine(a, b int) bool {
	return a == b
}

func orderingIsFine(a, b float64) bool {
	return a < b
}

func suppressed(a, b float64) bool {
	//lint:ignore floateq corpus demonstrates the escape hatch
	return a == b
}
