// Package leaf holds the buried wall-clock read of the facts-engine
// test module, two package boundaries away from the deterministic entry
// point that must be blamed for it.
package leaf

import "time"

// Stamp is hop three: second package boundary (mid -> leaf), and the
// direct wall-clock read.
func Stamp() int64 {
	return time.Now().UnixNano()
}
