// Package mid is the middle hop of the facts-engine test module.
package mid

import "factsmod/leaf"

// Tick is hop two: first package boundary (entry -> mid).
func Tick() int64 {
	return leaf.Stamp()
}
