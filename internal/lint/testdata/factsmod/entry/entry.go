// Package entry is the deterministic entry layer of the facts-engine
// test module: its exported API reaches time.Now only through a chain
// of three calls crossing two package boundaries (entry -> mid -> leaf),
// which the wallclock analyzer must surface here, at the entry point,
// with the full witness chain.
//
//lint:deterministic test module: replay contract spans packages
package entry

import "factsmod/mid"

// Run is the deterministic entry point under test.
func Run() int64 {
	return prepare()
}

// prepare is hop one (same package).
func prepare() int64 {
	return mid.Tick()
}

// Pure must stay clean: no fact reaches it.
func Pure(a, b int64) int64 {
	return a + b
}
