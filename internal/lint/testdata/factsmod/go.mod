module factsmod

go 1.23
