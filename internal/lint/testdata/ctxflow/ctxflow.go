// Package ctxflow is the airvet ctxflow corpus: a function that accepts
// a context must not reach a blocking operation the context cannot
// interrupt, and exported APIs must not leak uncancellable goroutines.
package ctxflow

import (
	"context"
	"time"
)

var spins int

func SleepsBlind(ctx context.Context, d time.Duration) {
	time.Sleep(d) // want "accepts a context but blocks here"
}

func SleepsChecked(ctx context.Context, d time.Duration) {
	if ctx.Err() != nil {
		return // consulting ctx.Err counts as honoring the context
	}
	time.Sleep(d)
}

func RecvGuarded(ctx context.Context, ch chan int) int {
	select {
	case v := <-ch:
		return v
	case <-ctx.Done():
		return 0
	}
}

func blockingHelper(ch chan int) int {
	return <-ch
}

func CallsBlocker(ctx context.Context, ch chan int) int {
	return blockingHelper(ch) // want "blockingHelper, which blocks"
}

func forwardsCtx(ctx context.Context, ch chan int) int {
	return RecvGuarded(ctx, ch) // context passed on: clean
}

func SpawnsBusyLoop() {
	go func() { // want "loops forever with no cancellation path"
		for {
			spins++
		}
	}()
}

func SpawnsDrainer(ch chan int) {
	go func() {
		for v := range ch { // range over channel ends on close: clean
			spins += v
		}
	}()
}

func SpawnsReturning(ctx context.Context) {
	go func() {
		for {
			if ctx.Err() != nil {
				return // context-checked loop: clean
			}
		}
	}()
}
