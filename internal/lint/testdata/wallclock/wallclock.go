// Package wallclock is the airvet wallclock corpus: exported entry
// points of a //lint:deterministic package must not reach the wall
// clock or the global math/rand source, even through call chains.
//
//lint:deterministic corpus package exercising the determinism analyzers
package wallclock

import (
	"math/rand"
	"time"
)

func Entry() int64 { // want "deterministic entry point Entry reaches the wall clock"
	return helper()
}

func helper() int64 {
	return clockRead()
}

func clockRead() int64 {
	return time.Now().UnixNano()
}

func Roll() int { // want "deterministic entry point Roll reaches the global math/rand source"
	return rand.Intn(6)
}

func Seeded(seed int64) int {
	rng := rand.New(rand.NewSource(seed)) // explicitly seeded: clean
	return rng.Intn(6)
}

func Pure(a, b int) int {
	return a + b
}
