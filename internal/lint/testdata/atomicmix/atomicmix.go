// Package atomicmix is the airvet atomicmix corpus: a variable touched
// through the sync/atomic function API must never also be read or
// written plainly.
package atomicmix

import "sync/atomic"

type counter struct {
	hits int64
	safe atomic.Int64
}

func (c *counter) bump() {
	atomic.AddInt64(&c.hits, 1)
}

func (c *counter) peek() int64 {
	return c.hits // want "hits is accessed with sync/atomic"
}

func (c *counter) bumpSafe() {
	c.safe.Add(1) // typed atomic wrapper: clean
}

func (c *counter) peekSafe() int64 {
	return c.safe.Load()
}

var pages int64

func bumpPages() {
	atomic.AddInt64(&pages, 1)
}

func resetPages() {
	pages = 0 // want "pages is accessed with sync/atomic"
}

func loadPages() int64 {
	return atomic.LoadInt64(&pages) // atomic access again: clean
}
