package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parseTestPackage type-checks a single in-memory source file as its own
// package, resolving stdlib imports through the same export-data path the
// loader uses.
func parseTestPackage(t *testing.T, name, src string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, name+".go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parsing %s: %v", name, err)
	}
	exports := map[string]string{}
	if len(f.Imports) > 0 {
		var patterns []string
		for _, imp := range f.Imports {
			patterns = append(patterns, strings.Trim(imp.Path.Value, `"`))
		}
		listed, err := goList(".", patterns)
		if err != nil {
			t.Fatalf("listing imports of %s: %v", name, err)
		}
		for _, p := range listed {
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}
	pkg, err := check(fset, newExportImporter(fset, exports), name, "", []*ast.File{f})
	if err != nil {
		t.Fatalf("type-checking %s: %v", name, err)
	}
	return pkg
}

// TestFactsCrossPackageChain loads the self-contained testdata module
// factsmod (three packages: entry -> mid -> leaf) and asserts the
// wallclock analyzer blames the annotated entry point for a time.Now
// buried two package boundaries away — with the full witness call chain
// in the message. This is the facts engine's core contract: summaries
// propagate across packages, not just within a file.
func TestFactsCrossPackageChain(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to the go tool")
	}
	diags, err := Run("testdata/factsmod", []string{"./..."}, []*Analyzer{WallClock})
	if err != nil {
		t.Fatalf("running wallclock over factsmod: %v", err)
	}
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want exactly 1:\n%s", len(diags), diagLines(diags))
	}
	d := diags[0]
	if !strings.HasSuffix(d.Pos.Filename, "entry/entry.go") {
		t.Errorf("diagnostic fired at %s, want the entry package", d.Pos.Filename)
	}
	if !strings.Contains(d.Message, "entry point Run") {
		t.Errorf("diagnostic does not blame Run: %s", d.Message)
	}
	for _, hop := range []string{"entry.Run", "entry.prepare", "mid.Tick", "leaf.Stamp", "time.Now()"} {
		if !strings.Contains(d.Message, hop) {
			t.Errorf("witness chain missing hop %q: %s", hop, d.Message)
		}
	}
}

func diagLines(diags []Diagnostic) string {
	var sb strings.Builder
	for _, d := range diags {
		fmt.Fprintf(&sb, "  %s\n", d)
	}
	return sb.String()
}

// TestDeterministicDirective checks annotation detection and the module
// bookkeeping of ComputeFacts on a directly constructed package.
func TestDeterministicDirective(t *testing.T) {
	pkg := parseTestPackage(t, "det", `
// Package det does deterministic things.
//
//lint:deterministic test annotation
package det

func F() int { return 1 }
`)
	facts := ComputeFacts([]*Package{pkg})
	if !facts.Deterministic("det") {
		t.Error("//lint:deterministic annotation not detected")
	}
	if facts.Deterministic("other") {
		t.Error("unannotated package reported deterministic")
	}
}

// TestFactsDirectAndPropagated exercises the collector and propagation
// inside a single package: direct facts, one-hop inheritance, and the
// deterministic witness chain.
func TestFactsDirectAndPropagated(t *testing.T) {
	pkg := parseTestPackage(t, "p", `
package p

import "time"

func direct() time.Time { return time.Now() }

func oneHop() time.Time { return direct() }

func twoHops() time.Time { return oneHop() }

func clean(a int) int { return a * 2 }
`)
	facts := ComputeFacts([]*Package{pkg})
	for _, name := range []string{"p.direct", "p.oneHop", "p.twoHops"} {
		steps, what, _, ok := facts.chain(name, factWallClock)
		if !ok {
			t.Errorf("%s: wallclock fact not propagated", name)
			continue
		}
		if what != "time.Now()" {
			t.Errorf("%s: chain terminates at %q, want time.Now()", name, what)
		}
		if len(steps) == 0 {
			t.Errorf("%s: empty witness chain", name)
		}
	}
	if steps, _, _, _ := facts.chain("p.twoHops", factWallClock); len(steps) != 3 {
		t.Errorf("p.twoHops chain length = %d (%v), want 3", len(steps), steps)
	}
	if _, _, _, ok := facts.chain("p.clean", factWallClock); ok {
		t.Error("p.clean inherited a wallclock fact from nowhere")
	}
}

// TestFactsBlocksGuarded checks that channel ops inside a multi-clause
// select do not produce the blocks fact, while naked ones do.
func TestFactsBlocksGuarded(t *testing.T) {
	pkg := parseTestPackage(t, "b", `
package b

func naked(ch chan int) int { return <-ch }

func guarded(ch, done chan int) int {
	select {
	case v := <-ch:
		return v
	case <-done:
		return 0
	}
}

func singleCase(ch chan int) int {
	select {
	case v := <-ch:
		return v
	}
}
`)
	facts := ComputeFacts([]*Package{pkg})
	if _, _, _, ok := facts.chain("b.naked", factBlocks); !ok {
		t.Error("naked receive did not produce the blocks fact")
	}
	if _, _, _, ok := facts.chain("b.guarded", factBlocks); ok {
		t.Error("multi-clause select receive wrongly produced the blocks fact")
	}
	if _, _, _, ok := facts.chain("b.singleCase", factBlocks); !ok {
		t.Error("single-case select should still count as blocking")
	}
}
