package lint

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// Baseline support: `airvet -baseline lint_baseline.json` fails only on
// diagnostics NOT recorded in the committed baseline, so a new analyzer
// can land with its pre-existing debt ratcheted (never growing) instead
// of blocking the tree. `-update` rewrites the file from the current
// findings. The repo's committed baseline is empty — every finding the
// v2 analyzers produced was fixed or justified in the PR that added
// them — and the CI gate keeps it that way.
//
// Entries match on (analyzer, module-relative file, message), not line
// numbers, so unrelated edits above a baselined finding do not un-bless
// it. Matching is multiset-aware: two identical findings need two
// baseline entries.

// BaselineEntry identifies one blessed finding.
type BaselineEntry struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"` // slash-separated, relative to the module root
	Message  string `json:"message"`
}

// Baseline is the on-disk format of lint_baseline.json.
type Baseline struct {
	Version     int             `json:"version"`
	Diagnostics []BaselineEntry `json:"diagnostics"`
}

// LoadBaseline reads a baseline file. A missing file is an error: the
// gate must not silently pass because of a typoed path.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("lint: reading baseline: %w", err)
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("lint: parsing baseline %s: %w", path, err)
	}
	return &b, nil
}

// entryFor converts a diagnostic to its baseline identity, with the file
// path relativized against root.
func entryFor(d Diagnostic, root string) BaselineEntry {
	file := d.Pos.Filename
	if rel, err := filepath.Rel(root, file); err == nil {
		file = rel
	}
	return BaselineEntry{Analyzer: d.Analyzer, File: filepath.ToSlash(file), Message: d.Message}
}

// Filter returns the diagnostics not covered by the baseline. Each
// baseline entry absorbs at most one matching finding.
func (b *Baseline) Filter(diags []Diagnostic, root string) []Diagnostic {
	budget := map[BaselineEntry]int{}
	for _, e := range b.Diagnostics {
		budget[e]++
	}
	var kept []Diagnostic
	for _, d := range diags {
		e := entryFor(d, root)
		if budget[e] > 0 {
			budget[e]--
			continue
		}
		kept = append(kept, d)
	}
	return kept
}

// WriteBaseline records diags as the new blessed set at path.
func WriteBaseline(path, root string, diags []Diagnostic) error {
	b := Baseline{Version: 1, Diagnostics: []BaselineEntry{}}
	for _, d := range diags {
		b.Diagnostics = append(b.Diagnostics, entryFor(d, root))
	}
	sort.Slice(b.Diagnostics, func(i, j int) bool {
		a, c := b.Diagnostics[i], b.Diagnostics[j]
		if a.File != c.File {
			return a.File < c.File
		}
		if a.Analyzer != c.Analyzer {
			return a.Analyzer < c.Analyzer
		}
		return a.Message < c.Message
	})
	data, err := json.MarshalIndent(&b, "", "  ")
	if err != nil {
		return fmt.Errorf("lint: encoding baseline: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
