package lint

import "testing"

// TestAirvetSelfCheck enforces the suite's core contract: `airvet ./...`
// runs clean on this repository. Any new violation — raw slot arithmetic,
// a dropped constructor error, a float equality in the delay math — fails
// this test (and the scripts/check.sh gate) until fixed or explicitly
// suppressed with a justified //lint:ignore.
func TestAirvetSelfCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("self-check shells out to the go tool for export data")
	}
	root, err := moduleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Run(root, []string{"./..."}, All())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
