package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded, parsed and type-checked target package.
type Package struct {
	Path   string
	Module string
	Fset   *token.FileSet
	Files  []*ast.File
	Types  *types.Package
	Info   *types.Info
}

// Run loads the packages matching patterns (resolved by the go tool
// relative to dir), type-checks their non-test sources and applies the
// analyzers. Findings are returned sorted; a non-nil error means the
// analysis itself could not run (broken code, missing export data), not
// that findings exist.
func Run(dir string, patterns []string, analyzers []*Analyzer) ([]Diagnostic, error) {
	pkgs, err := load(dir, patterns)
	if err != nil {
		return nil, err
	}
	facts := ComputeFacts(pkgs)
	var diags []Diagnostic
	for _, pkg := range pkgs {
		diags = append(diags, analyze(pkg, analyzers, facts)...)
	}
	sortDiagnostics(diags)
	return diags, nil
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	CgoFiles   []string
	Standard   bool
	DepOnly    bool
	Module     *struct{ Path string }
	Error      *struct{ Err string }
}

// load shells out to the go tool for package metadata plus compiled export
// data of every dependency, then parses and type-checks each non-dependency
// match from source.
func load(dir string, patterns []string) ([]*Package, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := map[string]string{}
	var targets []*listedPackage
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if p.Error != nil {
			return nil, fmt.Errorf("lint: %s: %s", p.ImportPath, strings.TrimSpace(p.Error.Err))
		}
		if !p.DepOnly && !p.Standard {
			targets = append(targets, p)
		}
	}

	fset := token.NewFileSet()
	imp := newExportImporter(fset, exports)
	var pkgs []*Package
	for _, p := range targets {
		if len(p.GoFiles) == 0 {
			continue
		}
		if len(p.CgoFiles) > 0 {
			return nil, fmt.Errorf("lint: %s uses cgo, which the loader does not support", p.ImportPath)
		}
		pkg, err := typecheck(fset, imp, p)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// goList runs `go list -e -deps -export -json` and decodes the package
// stream.
func goList(dir string, patterns []string) ([]*listedPackage, error) {
	args := append([]string{"list", "-e", "-deps", "-export", "-json", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("lint: starting go list: %w", err)
	}
	var pkgs []*listedPackage
	dec := json.NewDecoder(out)
	for {
		p := new(listedPackage)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			_ = cmd.Wait()
			return nil, fmt.Errorf("lint: decoding go list output: %w", err)
		}
		pkgs = append(pkgs, p)
	}
	if err := cmd.Wait(); err != nil {
		return nil, fmt.Errorf("lint: go list %s: %w\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	return pkgs, nil
}

// newExportImporter returns a types.Importer that reads gc export data
// from the files go list reported, so imports resolve without recompiling
// anything from source.
func newExportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(file)
	})
}

// typecheck parses p's sources and runs the type checker over them.
func typecheck(fset *token.FileSet, imp types.Importer, p *listedPackage) (*Package, error) {
	files, err := parseFiles(fset, p.Dir, p.GoFiles)
	if err != nil {
		return nil, err
	}
	module := ""
	if p.Module != nil {
		module = p.Module.Path
	}
	return check(fset, imp, p.ImportPath, module, files)
}

// parseFiles parses the named files in dir with comments retained (the
// suppression scanner needs them).
func parseFiles(fset *token.FileSet, dir string, names []string) ([]*ast.File, error) {
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		files = append(files, f)
	}
	return files, nil
}

// check runs go/types over already-parsed files.
func check(fset *token.FileSet, imp types.Importer, path, module string, files []*ast.File) (*Package, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	return &Package{
		Path:   path,
		Module: module,
		Fset:   fset,
		Files:  files,
		Types:  tpkg,
		Info:   info,
	}, nil
}

// loadDir loads a single directory of Go files (an analyzer test corpus)
// as though it were package asPath of module "tcsa". Export data for its
// imports is fetched through the regular go list path, so corpora may
// import both the standard library and this module's packages.
func loadDir(dir, asPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var files []*ast.File
	importSet := map[string]bool{}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		for _, imp := range f.Imports {
			importSet[strings.Trim(imp.Path.Value, `"`)] = true
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	exports := map[string]string{}
	if len(importSet) > 0 {
		root, err := moduleRoot(dir)
		if err != nil {
			return nil, err
		}
		var patterns []string
		for imp := range importSet {
			patterns = append(patterns, imp)
		}
		listed, err := goList(root, patterns)
		if err != nil {
			return nil, err
		}
		for _, p := range listed {
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}
	return check(fset, newExportImporter(fset, exports), asPath, "tcsa", files)
}

// moduleRoot locates the enclosing module's root directory.
func moduleRoot(dir string) (string, error) {
	cmd := exec.Command("go", "env", "GOMOD")
	cmd.Dir = dir
	out, err := cmd.Output()
	if err != nil {
		return "", fmt.Errorf("lint: go env GOMOD: %w", err)
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == os.DevNull {
		return "", fmt.Errorf("lint: %s is not inside a module", dir)
	}
	return filepath.Dir(gomod), nil
}
