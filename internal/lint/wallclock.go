package lint

import (
	"go/ast"
)

// WallClock flags wall-clock reads (time.Now/Since/Until/After/Tick...)
// and global math/rand usage reachable — through any chain of statically
// resolved module-local calls, across package boundaries — from an
// exported entry point of a //lint:deterministic package. Those entry
// points (chaos.Run, sim.MeasureStream, the SUSC/PAMAD/OPT builders) are
// bit-identical-replay contracts: the chaos trace digests and the
// paper's Theorem 3.1-3.3 oracles all assume two runs with the same seed
// observe the same values, which a wall-clock read or unseeded RNG
// silently breaks. The diagnostic fires at the entry point and carries
// the full witness call chain.
var WallClock = &Analyzer{
	Name: "wallclock",
	Doc:  "wall clock or global math/rand reachable from a deterministic entry point",
	Run:  runWallClock,
}

func runWallClock(pass *Pass) {
	if pass.Facts == nil || !pass.Facts.Deterministic(pass.Pkg.Path()) {
		return
	}
	kinds := []struct {
		kind factKind
		noun string
		fix  string
	}{
		{factWallClock, "the wall clock", "inject a clock or pass timestamps in"},
		{factGlobalRNG, "the global math/rand source", "use an explicitly seeded rand.New(rand.NewSource(seed))"},
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !ast.IsExported(fd.Name.Name) {
				continue
			}
			key := pass.declKey(fd)
			if key == "" {
				continue
			}
			for _, k := range kinds {
				steps, what, pos, ok := pass.Facts.chain(key, k.kind)
				if !ok {
					continue
				}
				pass.Reportf(fd.Name.Pos(),
					"deterministic entry point %s reaches %s: %s; %s",
					fd.Name.Name, k.noun, pass.Facts.chainString(steps, what, pos), k.fix)
			}
		}
	}
}
