package lint

import "go/ast"

// This file is the intra-function control-flow graph builder behind the
// path-sensitive analyzers (lockbal today). The graph is deliberately
// statement-grained: every statement is one node, compound statements
// (if/for/switch/select) contribute a header node whose successors are
// the entries of their branches. That is coarse enough to stay ~200
// lines of stdlib-only code and fine enough to answer "does every path
// from this Lock reach an Unlock before returning".
//
// Approximations, chosen to avoid false positives rather than catch
// every path:
//
//   - goto is treated as terminating (no successors): paths through a
//     goto are simply not analyzed.
//   - panic(...) and the os.Exit/log.Fatal family terminate their node,
//     so a panicking path owes no lock release.
//   - for-statement init/cond/post ride on the loop header node.
//   - function literals are opaque: their bodies are separate flows and
//     are not part of the enclosing function's graph.

// cfgNode is one statement (or the synthetic entry/exit) in a function's
// control-flow graph.
type cfgNode struct {
	stmt  ast.Stmt // nil for synthetic entry and exit
	succs []*cfgNode
	index int
}

// funcCFG is the statement-level control-flow graph of one function
// body. exit is the single synthetic node every return reaches; the
// fall-off-the-end path also flows into it.
type funcCFG struct {
	entry *cfgNode
	exit  *cfgNode
	nodes []*cfgNode
}

// flowCtx is one enclosing breakable (and possibly continuable)
// construct on the builder stack.
type flowCtx struct {
	label      string
	breakTo    *cfgNode
	continueTo *cfgNode // nil for switch/select
}

type cfgBuilder struct {
	nodes         []*cfgNode
	exit          *cfgNode
	stack         []flowCtx
	fallthroughTo *cfgNode
}

// buildCFG constructs the control-flow graph of body.
func buildCFG(body *ast.BlockStmt) *funcCFG {
	b := &cfgBuilder{}
	b.exit = b.node(nil)
	entry := b.node(nil)
	first := b.buildList(body.List, b.exit)
	entry.succs = append(entry.succs, first)
	return &funcCFG{entry: entry, exit: b.exit, nodes: b.nodes}
}

func (b *cfgBuilder) node(s ast.Stmt) *cfgNode {
	n := &cfgNode{stmt: s, index: len(b.nodes)}
	b.nodes = append(b.nodes, n)
	return n
}

// buildList wires a statement list so control flows to next, returning
// the entry node of the list (next itself when the list is empty).
func (b *cfgBuilder) buildList(list []ast.Stmt, next *cfgNode) *cfgNode {
	entry := next
	for i := len(list) - 1; i >= 0; i-- {
		entry = b.buildStmt(list[i], "", entry)
	}
	return entry
}

// buildStmt wires one statement (labeled label when non-empty) so
// control flows to next and returns its entry node.
func (b *cfgBuilder) buildStmt(s ast.Stmt, label string, next *cfgNode) *cfgNode {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return b.buildList(s.List, next)

	case *ast.LabeledStmt:
		return b.buildStmt(s.Stmt, s.Label.Name, next)

	case *ast.IfStmt:
		header := b.node(s)
		header.succs = append(header.succs, b.buildList(s.Body.List, next))
		switch el := s.Else.(type) {
		case nil:
			header.succs = append(header.succs, next)
		case *ast.BlockStmt:
			header.succs = append(header.succs, b.buildList(el.List, next))
		case *ast.IfStmt:
			header.succs = append(header.succs, b.buildStmt(el, "", next))
		}
		return header

	case *ast.ForStmt:
		header := b.node(s)
		b.stack = append(b.stack, flowCtx{label: label, breakTo: next, continueTo: header})
		body := b.buildList(s.Body.List, header)
		b.stack = b.stack[:len(b.stack)-1]
		header.succs = append(header.succs, body)
		if s.Cond != nil {
			header.succs = append(header.succs, next)
		}
		return header

	case *ast.RangeStmt:
		header := b.node(s)
		b.stack = append(b.stack, flowCtx{label: label, breakTo: next, continueTo: header})
		body := b.buildList(s.Body.List, header)
		b.stack = b.stack[:len(b.stack)-1]
		header.succs = append(header.succs, body, next)
		return header

	case *ast.SwitchStmt:
		return b.buildSwitch(s, s.Body.List, label, next, true)

	case *ast.TypeSwitchStmt:
		return b.buildSwitch(s, s.Body.List, label, next, false)

	case *ast.SelectStmt:
		header := b.node(s)
		b.stack = append(b.stack, flowCtx{label: label, breakTo: next})
		for _, cl := range s.Body.List {
			cc, ok := cl.(*ast.CommClause)
			if !ok {
				continue
			}
			entry := b.buildList(cc.Body, next)
			if cc.Comm != nil {
				entry = b.buildStmt(cc.Comm, "", entry)
			}
			header.succs = append(header.succs, entry)
		}
		b.stack = b.stack[:len(b.stack)-1]
		// An empty select{} blocks forever: no successors.
		return header

	case *ast.ReturnStmt:
		n := b.node(s)
		n.succs = append(n.succs, b.exit)
		return n

	case *ast.BranchStmt:
		n := b.node(s)
		switch s.Tok.String() {
		case "break":
			if t := b.target(labelName(s), false); t != nil {
				n.succs = append(n.succs, t)
			}
		case "continue":
			if t := b.target(labelName(s), true); t != nil {
				n.succs = append(n.succs, t)
			}
		case "fallthrough":
			if b.fallthroughTo != nil {
				n.succs = append(n.succs, b.fallthroughTo)
			}
		case "goto":
			// Approximation: paths through a goto are not analyzed.
		}
		return n

	default:
		n := b.node(s)
		if !terminates(s) {
			n.succs = append(n.succs, next)
		}
		return n
	}
}

// buildSwitch wires a (type) switch: header fans out to every case entry,
// case bodies flow to next, fallthrough flows to the following case.
func (b *cfgBuilder) buildSwitch(s ast.Stmt, clauses []ast.Stmt, label string, next *cfgNode, allowFallthrough bool) *cfgNode {
	header := b.node(s)
	b.stack = append(b.stack, flowCtx{label: label, breakTo: next})
	hasDefault := false
	var entries []*cfgNode
	var follow *cfgNode // entry of the textually following case
	for i := len(clauses) - 1; i >= 0; i-- {
		cc, ok := clauses[i].(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
		}
		saved := b.fallthroughTo
		if allowFallthrough {
			b.fallthroughTo = follow
		}
		entry := b.buildList(cc.Body, next)
		b.fallthroughTo = saved
		follow = entry
		entries = append(entries, entry)
	}
	b.stack = b.stack[:len(b.stack)-1]
	header.succs = append(header.succs, entries...)
	if !hasDefault {
		header.succs = append(header.succs, next)
	}
	return header
}

// target resolves a break (continue=false) or continue (continue=true)
// to its destination node, innermost-first, honoring labels.
func (b *cfgBuilder) target(label string, isContinue bool) *cfgNode {
	for i := len(b.stack) - 1; i >= 0; i-- {
		c := b.stack[i]
		if isContinue && c.continueTo == nil {
			continue
		}
		if label != "" && c.label != label {
			continue
		}
		if isContinue {
			return c.continueTo
		}
		return c.breakTo
	}
	return nil
}

func labelName(s *ast.BranchStmt) string {
	if s.Label == nil {
		return ""
	}
	return s.Label.Name
}

// terminates reports whether s is an expression statement that never
// returns: panic(...) or a well-known process-terminating call.
func terminates(s ast.Stmt) bool {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		pkg, ok := fun.X.(*ast.Ident)
		if !ok {
			return false
		}
		switch pkg.Name + "." + fun.Sel.Name {
		case "os.Exit", "log.Fatal", "log.Fatalf", "log.Fatalln", "runtime.Goexit":
			return true
		}
	}
	return false
}
