package lint

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"sort"
)

// LockBal runs a forward dataflow over the intra-function CFG (cfg.go)
// to prove every sync.Mutex/RWMutex Lock is balanced by an Unlock on
// every path to return, and that no path unlocks a mutex it does not
// hold. The netcast server and the OPT work-stealing search are exactly
// the code where an early-return between Lock and Unlock deadlocks the
// broadcast tick loop — a bug the race detector cannot see because
// nothing races, it just stops.
//
// The lattice per lock is unheld / held / mixed (held on only some
// incoming paths). A `defer mu.Unlock()` anywhere in the function
// discharges the exit obligation for that lock; panicking statements
// terminate their path without owing a release. Locks are identified by
// the printed receiver expression ("s.mu"), so two different instances
// spelled identically in one function alias — acceptable for a
// structural check.
var LockBal = &Analyzer{
	Name: "lockbal",
	Doc:  "Lock without Unlock on some path to return; Unlock without a held Lock",
	Run:  runLockBal,
}

// Lock state lattice values.
const (
	lkUnheld uint8 = iota
	lkHeld
	lkMixed
)

// lockOp is one Lock/Unlock call found in a statement.
type lockOp struct {
	key    string // printed receiver + mode, e.g. "s.mu/W"
	unlock bool
	pos    token.Pos
}

func runLockBal(pass *Pass) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkLockBalance(pass, fd)
		}
	}
}

func checkLockBalance(pass *Pass, fd *ast.FuncDecl) {
	deferred := map[string]bool{}     // lock keys released by a defer
	lockPos := map[string]token.Pos{} // first Lock position per key
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // closures release on their own goroutine/flow
		}
		if ds, ok := n.(*ast.DeferStmt); ok {
			if op, ok := lockCallOp(pass, ds.Call); ok && op.unlock {
				deferred[op.key] = true
			}
		}
		return true
	})

	g := buildCFG(fd.Body)
	// Pre-scan ops per node; bail out early if the function locks nothing.
	ops := make([][]lockOp, len(g.nodes))
	anyLock := false
	for _, n := range g.nodes {
		ops[n.index] = stmtLockOps(pass, n.stmt)
		for _, op := range ops[n.index] {
			if !op.unlock {
				anyLock = true
				if _, seen := lockPos[op.key]; !seen {
					lockPos[op.key] = op.pos
				}
			}
		}
	}
	if !anyLock {
		return
	}

	preds := make([][]*cfgNode, len(g.nodes))
	for _, n := range g.nodes {
		for _, s := range n.succs {
			preds[s.index] = append(preds[s.index], n)
		}
	}

	in := make([]map[string]uint8, len(g.nodes))
	out := make([]map[string]uint8, len(g.nodes))
	reported := map[token.Pos]bool{}
	report := func(pos token.Pos, format string, args ...any) {
		if !reported[pos] {
			reported[pos] = true
			pass.Reportf(pos, format, args...)
		}
	}

	// Forward fixed-point iteration from entry (no reporting yet: states
	// are not trustworthy until convergence). Round-robin over node index
	// is fine at these sizes.
	for changed := true; changed; {
		changed = false
		for _, n := range g.nodes {
			state := mergePreds(n, preds[n.index], out, g.entry)
			if state == nil {
				continue // not yet reachable
			}
			in[n.index] = state
			newOut := applyOps(state, ops[n.index], lockPos, nil)
			if !stateEqual(out[n.index], newOut) {
				out[n.index] = newOut
				changed = true
			}
		}
	}

	// Reporting pass over the converged states.
	for _, n := range g.nodes {
		if in[n.index] != nil && len(ops[n.index]) > 0 {
			applyOps(in[n.index], ops[n.index], lockPos, report)
		}
	}

	// Exit obligation: anything still (possibly) held at the exit node
	// without a deferred release escaped the function locked.
	exitState := in[g.exit.index]
	keys := make([]string, 0, len(exitState))
	for k := range exitState {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if deferred[k] {
			continue
		}
		name := k[:len(k)-2] // strip "/W" or "/R" mode suffix
		switch exitState[k] {
		case lkHeld:
			report(lockPos[k], "%s is locked here but never unlocked before returning (add defer %s.Unlock())", name, name)
		case lkMixed:
			report(lockPos[k], "%s is locked here but not unlocked on every path to return", name)
		}
	}
}

// mergePreds joins the out-states of n's predecessors: equal values
// survive, disagreements become lkMixed. Returns nil while no
// predecessor has been computed (unreachable so far).
func mergePreds(n *cfgNode, preds []*cfgNode, out []map[string]uint8, entry *cfgNode) map[string]uint8 {
	if n == entry {
		return map[string]uint8{}
	}
	var merged map[string]uint8
	seen := 0
	for _, p := range preds {
		po := out[p.index]
		if po == nil {
			continue
		}
		seen++
		if merged == nil {
			merged = make(map[string]uint8, len(po))
			for k, v := range po {
				merged[k] = v
			}
			continue
		}
		for k, v := range po {
			if mv, ok := merged[k]; !ok {
				if v != lkUnheld {
					merged[k] = lkMixed
				}
			} else if mv != v {
				merged[k] = lkMixed
			}
		}
		for k, v := range merged {
			if _, ok := po[k]; !ok && v != lkUnheld {
				merged[k] = lkMixed
			}
		}
	}
	if seen == 0 {
		return nil
	}
	return merged
}

// applyOps runs one node's lock operations over state. With a non-nil
// report callback (the post-convergence pass) it also reports definite
// double-locks and unlock-without-lock.
func applyOps(state map[string]uint8, ops []lockOp, lockPos map[string]token.Pos, report func(token.Pos, string, ...any)) map[string]uint8 {
	if len(ops) == 0 {
		return state
	}
	next := make(map[string]uint8, len(state))
	for k, v := range state {
		next[k] = v
	}
	for _, op := range ops {
		name := op.key[:len(op.key)-2]
		exclusive := op.key[len(op.key)-1] == 'W'
		switch {
		case op.unlock:
			if report != nil && next[op.key] == lkUnheld {
				if _, lockedHere := lockPos[op.key]; lockedHere {
					report(op.pos, "%s.Unlock() without a held Lock on this path (double unlock?)", name)
				}
			}
			next[op.key] = lkUnheld
		default:
			if report != nil && exclusive && next[op.key] == lkHeld {
				report(op.pos, "%s.Lock() while %s is already locked on this path (self-deadlock)", name, name)
			}
			next[op.key] = lkHeld
		}
	}
	return next
}

// stateEqual compares two lock states semantically: a key absent from a
// map means unheld.
func stateEqual(a, b map[string]uint8) bool {
	if a == nil {
		return false
	}
	for k, v := range a {
		if b[k] != v && !(v == lkUnheld && b[k] == 0) {
			return false
		}
	}
	for k, v := range b {
		if a[k] != v && !(v == lkUnheld && a[k] == 0) {
			return false
		}
	}
	return true
}

// stmtLockOps extracts the Lock/Unlock calls a CFG node executes. For
// compound statements only the header expressions are scanned (their
// bodies are separate nodes); function literals are opaque.
func stmtLockOps(pass *Pass, s ast.Stmt) []lockOp {
	if s == nil {
		return nil
	}
	var roots []ast.Node
	switch s := s.(type) {
	case *ast.IfStmt:
		if s.Init != nil {
			roots = append(roots, s.Init)
		}
		roots = append(roots, s.Cond)
	case *ast.ForStmt:
		if s.Init != nil {
			roots = append(roots, s.Init)
		}
		if s.Cond != nil {
			roots = append(roots, s.Cond)
		}
		if s.Post != nil {
			roots = append(roots, s.Post)
		}
	case *ast.RangeStmt:
		roots = append(roots, s.X)
	case *ast.SwitchStmt:
		if s.Init != nil {
			roots = append(roots, s.Init)
		}
		if s.Tag != nil {
			roots = append(roots, s.Tag)
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			roots = append(roots, s.Init)
		}
		roots = append(roots, s.Assign)
	case *ast.SelectStmt:
		return nil
	case *ast.DeferStmt:
		return nil // handled via the deferred set
	case *ast.GoStmt:
		return nil // runs on another goroutine
	default:
		roots = append(roots, s)
	}
	var ops []lockOp
	for _, root := range roots {
		ast.Inspect(root, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			if call, ok := n.(*ast.CallExpr); ok {
				if op, ok := lockCallOp(pass, call); ok {
					ops = append(ops, op)
				}
			}
			return true
		})
	}
	return ops
}

// lockCallOp classifies call as a mutex Lock/Unlock operation, keyed by
// the printed receiver expression plus mode (W for Lock/Unlock, R for
// RLock/RUnlock).
func lockCallOp(pass *Pass, call *ast.CallExpr) (lockOp, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return lockOp{}, false
	}
	obj, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok || obj.Pkg() == nil {
		return lockOp{}, false
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return lockOp{}, false
	}
	recv := sig.Recv().Type()
	if !isNamed(recv, "sync", "Mutex") && !isNamed(recv, "sync", "RWMutex") {
		return lockOp{}, false
	}
	var mode string
	var unlock bool
	switch obj.Name() {
	case "Lock":
		mode = "W"
	case "Unlock":
		mode, unlock = "W", true
	case "RLock":
		mode = "R"
	case "RUnlock":
		mode, unlock = "R", true
	default:
		return lockOp{}, false // TryLock/TryRLock: conditional, out of scope
	}
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, pass.Fset, sel.X); err != nil {
		return lockOp{}, false
	}
	return lockOp{key: buf.String() + "/" + mode, unlock: unlock, pos: call.Pos()}, true
}
