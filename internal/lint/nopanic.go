package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// NoPanic flags panic calls in library (non-main, non-test) packages.
// Library code reports failures through the core sentinel errors so
// callers can degrade (fall back to PAMAD, reject a request) instead of
// crashing a broadcast server. The one documented exception is the Must*
// constructor pattern (core.MustGroupSet), whose entire contract is
// "panics on invalid input, for tests and static tables".
var NoPanic = &Analyzer{
	Name: "nopanic",
	Doc:  "panic in library code outside Must* invariant helpers",
	Run:  runNoPanic,
}

func runNoPanic(pass *Pass) {
	if pass.Pkg.Name() == "main" {
		return
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if strings.HasPrefix(fn.Name.Name, "Must") {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				id, ok := ast.Unparen(call.Fun).(*ast.Ident)
				if !ok {
					return true
				}
				if builtin, ok := pass.Info.Uses[id].(*types.Builtin); ok && builtin.Name() == "panic" {
					pass.Reportf(call.Pos(), "panic in library code; return an error wrapping a core sentinel, or move the invariant into a Must* helper")
				}
				return true
			})
		}
	}
}
