package lint

import (
	"go/ast"
	"go/types"
)

// CtxFlow enforces that cancellation actually flows: a function that
// accepts a context.Context must not reach a blocking operation the
// context cannot interrupt. Three shapes are flagged:
//
//  1. The function directly contains an unguarded blocking op (naked
//     channel send/receive, single-case select, time.Sleep,
//     WaitGroup/Cond.Wait) and never consults ctx.Done/Err/Deadline.
//  2. The function calls a module-local function whose facts summary
//     says it blocks, without passing the context on — the callee can
//     stall forever and ctx cannot reach it.
//  3. An exported API spawns a goroutine whose body loops forever with
//     no exit path (no return/break, no channel op, no context) — a
//     leak with no cancellation story.
//
// Consulting ctx.Err() counts as honoring the context: the OPT
// branch-and-bound workers poll ctx.Err() per node rather than select
// on Done, which cancels just as deterministically.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc:  "context accepted but not honored on a blocking path; goroutines with no cancellation",
	Run:  runCtxFlow,
}

func runCtxFlow(pass *Pass) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ctxParams := contextParams(pass, fd)
			if len(ctxParams) > 0 && !consultsContext(pass, fd, ctxParams) {
				checkBlockingWithoutCtx(pass, fd)
			}
			if ast.IsExported(fd.Name.Name) {
				checkOrphanGoroutines(pass, fd, ctxParams)
			}
		}
	}
}

// contextParams returns the objects of fd's context.Context parameters.
func contextParams(pass *Pass, fd *ast.FuncDecl) []types.Object {
	var out []types.Object
	for _, field := range fd.Type.Params.List {
		tv, ok := pass.Info.Types[field.Type]
		if !ok || !isNamed(tv.Type, "context", "Context") {
			continue
		}
		for _, name := range field.Names {
			if obj := pass.Info.Defs[name]; obj != nil {
				out = append(out, obj)
			}
		}
	}
	return out
}

// consultsContext reports whether fd's body calls Done, Err or Deadline
// on one of its context parameters (directly or inside a closure).
func consultsContext(pass *Pass, fd *ast.FuncDecl, ctxParams []types.Object) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		switch sel.Sel.Name {
		case "Done", "Err", "Deadline":
		default:
			return true
		}
		id, ok := ast.Unparen(sel.X).(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.Info.Uses[id]
		for _, p := range ctxParams {
			if obj == p {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// checkBlockingWithoutCtx reports fd's first direct unguarded blocking
// op and every call to a module function that blocks without receiving
// the context.
func checkBlockingWithoutCtx(pass *Pass, fd *ast.FuncDecl) {
	if pass.Facts == nil {
		return
	}
	key := pass.declKey(fd)
	fn := pass.Facts.fn(key)
	if fn == nil {
		return
	}
	if src := fn.facts[factBlocks]; src != nil && src.next == "" {
		pass.Reportf(src.pos,
			"%s accepts a context but blocks here (%s) without a ctx.Done() select or ctx.Err() check",
			fd.Name.Name, src.what)
	}
	for _, edge := range fn.calls {
		if edge.passesCtx {
			continue
		}
		steps, what, pos, ok := pass.Facts.chain(edge.callee, factBlocks)
		if !ok {
			continue
		}
		pass.Reportf(edge.pos,
			"%s accepts a context but calls %s, which blocks (%s), without passing the context",
			fd.Name.Name, pass.Facts.displayKey(edge.callee),
			pass.Facts.chainString(steps, what, pos))
	}
}

// checkOrphanGoroutines flags `go func(){...}()` in exported APIs whose
// body contains an infinite loop with no exit path and no cancellation
// signal (no return/break inside, no channel op, no select, no use of a
// context parameter).
func checkOrphanGoroutines(pass *Pass, fd *ast.FuncDecl, ctxParams []types.Object) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		gs, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit)
		if !ok {
			return true
		}
		ast.Inspect(lit.Body, func(inner ast.Node) bool {
			loop, ok := inner.(*ast.ForStmt)
			if !ok || loop.Cond != nil {
				return true
			}
			if loopHasExitPath(pass, loop, ctxParams) {
				return true
			}
			pass.Reportf(gs.Pos(),
				"goroutine spawned by exported %s loops forever with no cancellation path (no return, channel op, or context check in the loop)",
				fd.Name.Name)
			return false
		})
		return true
	})
}

// loopHasExitPath reports whether an infinite for loop contains any way
// out: a return, a break (any level), a channel operation or select (a
// close can unblock it), or a use of a context parameter.
func loopHasExitPath(pass *Pass, loop *ast.ForStmt, ctxParams []types.Object) bool {
	has := false
	ast.Inspect(loop.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ReturnStmt, *ast.SelectStmt, *ast.SendStmt:
			has = true
		case *ast.BranchStmt:
			if n.Tok.String() == "break" || n.Tok.String() == "goto" {
				has = true
			}
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				has = true
			}
		case *ast.Ident:
			obj := pass.Info.Uses[n]
			for _, p := range ctxParams {
				if obj == p {
					has = true
				}
			}
		case *ast.ExprStmt:
			if terminates(n) {
				has = true
			}
		}
		return !has
	})
	return has
}
