package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// floatEqPackages are the delay-math packages where exact float comparison
// is a correctness hazard: they implement the paper's Eq. 2/3/5/7 and the
// estimators built on them, where two mathematically equal delays can
// differ in the last ulp depending on summation order.
var floatEqPackages = map[string]bool{
	"tcsa/internal/delaymodel": true,
	"tcsa/internal/estimator":  true,
	"tcsa/internal/stats":      true,
	"tcsa/internal/pamad":      true,
}

// FloatEq flags == and != between floating-point expressions in the delay
// math packages. Compare against a tolerance instead, or suppress with a
// justification when the operands provably come from the identical
// computation (see the PAMAD tie-break for the canonical example).
var FloatEq = &Analyzer{
	Name: "floateq",
	Doc:  "== / != between float64 expressions in the delay-math packages",
	Run:  runFloatEq,
}

func runFloatEq(pass *Pass) {
	if !floatEqPackages[pass.Pkg.Path()] {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			bin, ok := n.(*ast.BinaryExpr)
			if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
				return true
			}
			if isFloat(pass.Info.TypeOf(bin.X)) && isFloat(pass.Info.TypeOf(bin.Y)) {
				pass.Reportf(bin.Pos(), "floating-point %s comparison in delay math (Eq. 2/3/5/7); compare with a tolerance", bin.Op)
			}
			return true
		})
	}
}

// isFloat reports whether t's underlying type is a floating-point kind.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	basic, ok := t.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsFloat != 0
}
