// Package eventsim is a small deterministic discrete-event simulation
// engine: a virtual clock and a time-ordered event queue with FIFO
// tie-breaking. The broadcast-system and on-demand-channel simulators are
// built on it.
//
// Time is a float64 in broadcast slots, matching the rest of the module.
// Events scheduled for the same instant run in scheduling order, so a
// simulation driven by seeded randomness is reproducible bit-for-bit.
package eventsim

import (
	"container/heap"
	"errors"
	"fmt"
)

// ErrPastEvent reports an attempt to schedule an event before the current
// simulation time.
var ErrPastEvent = errors.New("eventsim: event scheduled in the past")

// Simulator owns the virtual clock and the pending-event queue. The zero
// value is a ready simulator at time 0.
type Simulator struct {
	now   float64
	seq   uint64
	queue eventQueue
}

type event struct {
	at  float64
	seq uint64
	fn  func()
}

// Now returns the current simulation time in slots.
func (s *Simulator) Now() float64 { return s.now }

// Pending returns the number of queued events.
func (s *Simulator) Pending() int { return len(s.queue) }

// At schedules fn to run at absolute time t (>= Now).
func (s *Simulator) At(t float64, fn func()) error {
	if t < s.now {
		return fmt.Errorf("%w: %f < now %f", ErrPastEvent, t, s.now)
	}
	if fn == nil {
		return errors.New("eventsim: nil event function")
	}
	s.seq++
	heap.Push(&s.queue, &event{at: t, seq: s.seq, fn: fn})
	return nil
}

// After schedules fn to run d slots from now (d >= 0).
func (s *Simulator) After(d float64, fn func()) error {
	return s.At(s.now+d, fn)
}

// Periodic schedules fn at start and then every interval slots for as long
// as fn returns true. fn receives the firing time.
func (s *Simulator) Periodic(start, interval float64, fn func(t float64) bool) error {
	if interval <= 0 {
		return fmt.Errorf("eventsim: non-positive interval %f", interval)
	}
	if fn == nil {
		return errors.New("eventsim: nil event function")
	}
	var tick func()
	tick = func() {
		if fn(s.now) {
			// Scheduling from inside an event cannot fail: now+interval is
			// in the future.
			_ = s.After(interval, tick)
		}
	}
	return s.At(start, tick)
}

// PeriodicVar schedules fn at start and then after interval(k) slots
// following its k-th firing (k counts from 0), for as long as fn returns
// true. It is Periodic with a per-tick interval — the substrate for slot
// jitter, where consecutive slot boundaries are not exactly one slot
// apart. interval must return positive values; a non-positive interval
// stops the train (fn is not called again), so a buggy jitter source
// degrades to silence instead of looping at a frozen clock.
func (s *Simulator) PeriodicVar(start float64, interval func(k int) float64, fn func(t float64) bool) error {
	if interval == nil {
		return errors.New("eventsim: nil interval function")
	}
	if fn == nil {
		return errors.New("eventsim: nil event function")
	}
	k := 0
	var tick func()
	tick = func() {
		if !fn(s.now) {
			return
		}
		d := interval(k)
		k++
		if d <= 0 {
			return
		}
		_ = s.After(d, tick)
	}
	return s.At(start, tick)
}

// Step executes the earliest pending event, advancing the clock to its
// time. It returns false when the queue is empty.
func (s *Simulator) Step() bool {
	if len(s.queue) == 0 {
		return false
	}
	ev := heap.Pop(&s.queue).(*event)
	s.now = ev.at
	ev.fn()
	return true
}

// Run executes events until the queue drains, returning how many ran.
func (s *Simulator) Run() int {
	n := 0
	for s.Step() {
		n++
	}
	return n
}

// RunUntil executes events with time <= deadline, then advances the clock
// to exactly deadline. It returns how many events ran.
func (s *Simulator) RunUntil(deadline float64) int {
	n := 0
	for len(s.queue) > 0 && s.queue[0].at <= deadline {
		s.Step()
		n++
	}
	if deadline > s.now {
		s.now = deadline
	}
	return n
}

// RunLimit executes at most limit events; it returns the number executed
// (less than limit only if the queue drained first). A guard against
// accidental infinite self-scheduling loops.
func (s *Simulator) RunLimit(limit int) int {
	n := 0
	for n < limit && s.Step() {
		n++
	}
	return n
}

// eventQueue implements heap.Interface ordered by (at, seq).
type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }

func (q *eventQueue) Push(x any) { *q = append(*q, x.(*event)) }

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}
