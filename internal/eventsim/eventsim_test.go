package eventsim

import (
	"errors"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestZeroValueReady(t *testing.T) {
	var s Simulator
	if s.Now() != 0 || s.Pending() != 0 {
		t.Error("zero value not a fresh simulator")
	}
	if s.Step() {
		t.Error("Step on empty queue returned true")
	}
	if s.Run() != 0 {
		t.Error("Run on empty queue executed events")
	}
}

func TestEventsRunInTimeOrder(t *testing.T) {
	var s Simulator
	var order []float64
	for _, at := range []float64{5, 1, 3, 2, 4} {
		at := at
		if err := s.At(at, func() { order = append(order, at) }); err != nil {
			t.Fatal(err)
		}
	}
	if n := s.Run(); n != 5 {
		t.Fatalf("Run = %d, want 5", n)
	}
	if !sort.Float64sAreSorted(order) {
		t.Errorf("events ran out of order: %v", order)
	}
	if s.Now() != 5 {
		t.Errorf("Now = %f, want 5", s.Now())
	}
}

func TestFIFOTieBreak(t *testing.T) {
	var s Simulator
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		if err := s.At(7, func() { order = append(order, i) }); err != nil {
			t.Fatal(err)
		}
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events ran out of scheduling order: %v", order)
		}
	}
}

func TestAtValidation(t *testing.T) {
	var s Simulator
	if err := s.At(5, func() {}); err != nil {
		t.Fatal(err)
	}
	s.Run()
	err := s.At(3, func() {})
	if !errors.Is(err, ErrPastEvent) {
		t.Errorf("past event error = %v, want ErrPastEvent", err)
	}
	if err := s.At(9, nil); err == nil {
		t.Error("nil function accepted")
	}
}

func TestAfter(t *testing.T) {
	var s Simulator
	var at float64 = -1
	if err := s.At(4, func() {
		_ = s.After(2.5, func() { at = s.Now() })
	}); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if at != 6.5 {
		t.Errorf("After event ran at %f, want 6.5", at)
	}
}

func TestEventsCanScheduleEvents(t *testing.T) {
	var s Simulator
	depth := 0
	var recurse func()
	recurse = func() {
		depth++
		if depth < 100 {
			_ = s.After(1, recurse)
		}
	}
	_ = s.At(0, recurse)
	if n := s.Run(); n != 100 {
		t.Errorf("Run = %d, want 100", n)
	}
	if s.Now() != 99 {
		t.Errorf("Now = %f, want 99", s.Now())
	}
}

func TestRunUntil(t *testing.T) {
	var s Simulator
	ran := 0
	for _, at := range []float64{1, 2, 3, 10} {
		_ = s.At(at, func() { ran++ })
	}
	if n := s.RunUntil(3); n != 3 {
		t.Errorf("RunUntil(3) = %d, want 3", n)
	}
	if s.Now() != 3 {
		t.Errorf("Now = %f, want exactly 3", s.Now())
	}
	if s.Pending() != 1 {
		t.Errorf("Pending = %d, want 1", s.Pending())
	}
	if n := s.RunUntil(2); n != 0 {
		t.Errorf("RunUntil into the past ran %d events", n)
	}
}

func TestRunLimit(t *testing.T) {
	var s Simulator
	for i := 0; i < 5; i++ {
		_ = s.At(float64(i), func() {})
	}
	if n := s.RunLimit(3); n != 3 {
		t.Errorf("RunLimit(3) = %d, want 3", n)
	}
	if n := s.RunLimit(99); n != 2 {
		t.Errorf("RunLimit(99) = %d, want remaining 2", n)
	}
}

func TestPeriodic(t *testing.T) {
	var s Simulator
	var fires []float64
	err := s.Periodic(2, 3, func(at float64) bool {
		fires = append(fires, at)
		return len(fires) < 4
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Run()
	want := []float64{2, 5, 8, 11}
	if len(fires) != len(want) {
		t.Fatalf("fires = %v, want %v", fires, want)
	}
	for i := range want {
		if fires[i] != want[i] {
			t.Fatalf("fires = %v, want %v", fires, want)
		}
	}
}

func TestPeriodicValidation(t *testing.T) {
	var s Simulator
	if err := s.Periodic(0, 0, func(float64) bool { return false }); err == nil {
		t.Error("zero interval accepted")
	}
	if err := s.Periodic(0, 1, nil); err == nil {
		t.Error("nil function accepted")
	}
}

// Property: an arbitrary schedule of events always executes in
// non-decreasing time order with ties FIFO.
func TestOrderingProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var s Simulator
		type stamp struct {
			at  float64
			seq int
		}
		var execs []stamp
		n := 1 + rng.Intn(200)
		for i := 0; i < n; i++ {
			at := float64(rng.Intn(20)) // coarse times force many ties
			seq := i
			_ = s.At(at, func() { execs = append(execs, stamp{at, seq}) })
		}
		if s.Run() != n {
			return false
		}
		for i := 1; i < len(execs); i++ {
			prev, cur := execs[i-1], execs[i]
			if cur.at < prev.at {
				return false
			}
			if cur.at == prev.at && cur.seq < prev.seq {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPeriodicVar(t *testing.T) {
	var s Simulator
	// Intervals 1, 2, 3, ... : tick k fires at 0, 1, 3, 6 (triangular).
	var fired []float64
	err := s.PeriodicVar(0, func(k int) float64 { return float64(k + 1) }, func(at float64) bool {
		fired = append(fired, at)
		return len(fired) < 4
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Run()
	want := []float64{0, 1, 3, 6}
	if len(fired) != len(want) {
		t.Fatalf("fired %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired %v, want %v", fired, want)
		}
	}
}

func TestPeriodicVarStopsOnNonPositiveInterval(t *testing.T) {
	var s Simulator
	ticks := 0
	err := s.PeriodicVar(0, func(k int) float64 { return float64(1 - k) }, func(float64) bool {
		ticks++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	// interval(0)=1 bridges to the second tick; interval(1)=0 ends the
	// train even though fn keeps returning true.
	if s.Run() == 0 || ticks != 2 {
		t.Errorf("ticks = %d, want 2", ticks)
	}
}

func TestPeriodicVarRejectsNil(t *testing.T) {
	var s Simulator
	if err := s.PeriodicVar(0, nil, func(float64) bool { return false }); err == nil {
		t.Error("nil interval accepted")
	}
	if err := s.PeriodicVar(0, func(int) float64 { return 1 }, nil); err == nil {
		t.Error("nil function accepted")
	}
}
