package chaos

import (
	"tcsa/internal/core"
	"tcsa/internal/sim"
	"tcsa/internal/workload"
)

// Replay drives the full discrete-event simulation (schedule-aware
// clients on the airwave substrate) through the fault plan cfg describes:
// the plan's channel-side faults become the medium's drop function and
// its jitter becomes the slot clock's. Where RunParallel answers "what do
// the metrics look like under these faults" analytically per request,
// Replay exercises the actual retune/re-plan client machinery under the
// identical, seed-replayable fault schedule.
func Replay(prog *core.Program, reqs []workload.Request, cfg Config) (*sim.Outcome, *Plan, error) {
	plan, err := NewPlan(cfg, prog.Channels(), prog.Length())
	if err != nil {
		return nil, nil, err
	}
	simCfg := sim.Config{
		Mode:   sim.ScheduleAware,
		Jitter: plan.JitterFunc(),
	}
	if cfg.Active() {
		simCfg.Drop = plan.DropFunc()
		// Bound the simulation by the give-up horizon: a client that a
		// hostile plan starves past MaxCycles cycles is abandoned to the
		// on-demand channel rather than spinning forever.
		simCfg.AbandonAfter = float64(cfg.maxCycles()*prog.Length()) / float64(minTime(prog))
	}
	out, err := sim.Run(prog, reqs, simCfg)
	if err != nil {
		return nil, nil, err
	}
	return out, plan, nil
}

// minTime is the smallest expected time in the program's group set (the
// scale AbandonAfter multiplies).
func minTime(prog *core.Program) int {
	return prog.GroupSet().Group(0).Time
}
