// Package chaos is the deterministic fault-injection layer of the
// broadcast runtime: seed-replayable frame loss (i.i.d. and Gilbert–
// Elliott bursts), slot jitter, periodic server stall windows, client
// churn and frame corruption, plus the measurement engine that drives a
// per-client deadline-miss ledger through them.
//
// Everything is a pure function of (Config.Seed, channel, slot) — or, for
// the sequential burst chain, of a per-channel tape precomputed at Plan
// construction — so a failing run replays bit-for-bit from its seed at
// any worker count. With every fault probability zero the engine's
// arithmetic is an exact mirror of sim.MeasureStream, and the package
// tests pin that equality bit-for-bit; conformance.MissFreeLaw then turns
// "zero faults on a valid program" into a machine-checked zero-miss law.
//
//lint:deterministic bit-identical replay contract: no wall clock, no global RNG, no map-order folds
package chaos

import (
	"fmt"
	"math"

	"tcsa/internal/airwave"
)

// Fault-kind tags folded into the stateless per-(channel, slot) hashes.
// Distinct tags decorrelate the fault processes sharing one seed.
const (
	kindLoss uint64 = iota + 1
	kindCorrupt
	kindJitter
	kindChurn
	kindBurst
)

// BurstConfig parameterises the per-channel Gilbert–Elliott burst-loss
// chain (the same model as airwave.GilbertElliott, replayed onto a
// deterministic per-channel tape so it stays seekable).
type BurstConfig struct {
	// GoodToBad and BadToGood are per-slot state transition probabilities.
	GoodToBad, BadToGood float64
	// LossGood and LossBad are the loss probabilities within each state.
	LossGood, LossBad float64
}

// Config selects which faults a Plan injects. The zero value is the
// fault-free plan.
type Config struct {
	// Seed drives every fault process; identical Seed + Config replays the
	// identical fault pattern.
	Seed int64
	// Loss is the i.i.d. per-(channel, slot) frame-loss probability.
	Loss float64
	// Burst, when non-nil, adds Gilbert–Elliott burst loss per channel.
	Burst *BurstConfig
	// Corrupt is the per-(channel, slot) probability that a frame arrives
	// undecodable (same timing effect as loss, ledgered separately).
	Corrupt float64
	// StallEvery/StallFor inject periodic server stall windows: the first
	// StallFor slots of every StallEvery-slot period transmit nothing on
	// any channel. StallEvery 0 disables stalls.
	StallEvery, StallFor int
	// Jitter is the maximum slot-boundary jitter in slots, in [0, 0.5]:
	// slot k's transmission is delayed by a hash-uniform offset in
	// [0, Jitter].
	Jitter float64
	// Churn is the probability that a client is mid-disconnect (rejoining)
	// when an appearance of its page airs, independently per attempt.
	Churn float64
	// MaxCycles bounds how many broadcast cycles a client waits before
	// giving up (ledgered as Unserved). 0 means DefaultMaxCycles.
	MaxCycles int
	// Horizon bounds the burst-tape length in slots; beyond it the burst
	// chain is treated as fault-free. 0 derives (MaxCycles+2)*length,
	// capped at DefaultHorizonCap.
	Horizon int
	// Replan enables the graceful-degradation path: the engine re-runs
	// PAMAD against the effective channel capacity observed under the
	// plan's loss rate and reports the degraded schedule (Result.Replan).
	Replan bool
}

// DefaultMaxCycles is the give-up bound when Config.MaxCycles is 0: far
// beyond any plausible wait on a working channel, small enough that a
// fully stalled channel still terminates.
const DefaultMaxCycles = 64

// DefaultHorizonCap caps the derived burst-tape length (64 Ki-slots per
// channel ≈ 8 KiB of bitset per channel).
const DefaultHorizonCap = 1 << 21

// Validate reports the first malformed field.
func (c Config) Validate() error {
	for name, p := range map[string]float64{"Loss": c.Loss, "Corrupt": c.Corrupt, "Churn": c.Churn} {
		if p < 0 || p > 1 || math.IsNaN(p) {
			return fmt.Errorf("chaos: %s probability %g outside [0, 1]", name, p)
		}
	}
	if c.Jitter < 0 || c.Jitter > 0.5 || math.IsNaN(c.Jitter) {
		return fmt.Errorf("chaos: jitter %g outside [0, 0.5]", c.Jitter)
	}
	if c.StallEvery < 0 || c.StallFor < 0 {
		return fmt.Errorf("chaos: negative stall window %d/%d", c.StallEvery, c.StallFor)
	}
	if c.StallEvery > 0 && c.StallFor >= c.StallEvery {
		return fmt.Errorf("chaos: stall %d of every %d slots leaves no air time", c.StallFor, c.StallEvery)
	}
	if c.MaxCycles < 0 {
		return fmt.Errorf("chaos: negative MaxCycles %d", c.MaxCycles)
	}
	if c.Horizon < 0 {
		return fmt.Errorf("chaos: negative Horizon %d", c.Horizon)
	}
	if b := c.Burst; b != nil {
		for name, p := range map[string]float64{
			"GoodToBad": b.GoodToBad, "BadToGood": b.BadToGood,
			"LossGood": b.LossGood, "LossBad": b.LossBad,
		} {
			if p < 0 || p > 1 || math.IsNaN(p) {
				return fmt.Errorf("chaos: burst %s probability %g outside [0, 1]", name, p)
			}
		}
		if b.BadToGood == 0 && b.GoodToBad > 0 {
			return fmt.Errorf("chaos: burst chain absorbs in the bad state (BadToGood = 0)")
		}
	}
	return nil
}

// Active reports whether the config injects any fault at all. Inactive
// configs take the exact sim.MeasureStream arithmetic path.
func (c Config) Active() bool {
	return c.Loss > 0 || c.Corrupt > 0 || c.Churn > 0 || c.Jitter > 0 ||
		(c.StallEvery > 0 && c.StallFor > 0) ||
		(c.Burst != nil && (c.Burst.LossGood > 0 || c.Burst.LossBad > 0))
}

// maxCycles resolves the give-up bound.
func (c Config) maxCycles() int {
	if c.MaxCycles > 0 {
		return c.MaxCycles
	}
	return DefaultMaxCycles
}

// Plan is a materialised fault schedule for one broadcast configuration:
// stateless hashes for the memoryless processes plus per-channel burst
// tapes for the Markov chain. A Plan is immutable after construction and
// safe for concurrent use; it implements netcast.FaultInjector.
type Plan struct {
	cfg      Config
	channels int
	length   int
	horizon  int        // burst-tape length in slots (0 when Burst is nil)
	burst    [][]uint64 // per-channel loss bitset over [0, horizon)
}

// NewPlan validates cfg and precomputes the burst tapes for a program
// with the given channel count and cycle length.
func NewPlan(cfg Config, channels, length int) (*Plan, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if channels < 1 || length < 1 {
		return nil, fmt.Errorf("chaos: %d channels x %d slots", channels, length)
	}
	p := &Plan{cfg: cfg, channels: channels, length: length}
	if cfg.Burst != nil {
		p.horizon = cfg.Horizon
		if p.horizon == 0 {
			p.horizon = (cfg.maxCycles() + 2) * length
			if p.horizon > DefaultHorizonCap {
				p.horizon = DefaultHorizonCap
			}
		}
		p.burst = make([][]uint64, channels)
		for ch := 0; ch < channels; ch++ {
			p.burst[ch] = burstTape(cfg.Seed, *cfg.Burst, ch, p.horizon)
		}
	}
	return p, nil
}

// Config returns the plan's configuration.
func (p *Plan) Config() Config { return p.cfg }

// splitmix64 is the avalanche finalizer also used by workload's per-shard
// seeding: a bijection over uint64 whose output bits are uniform.
func splitmix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// hash01 maps (seed, kind, a, b) to a uniform float64 in [0, 1). Distinct
// odd multipliers keep the three key components from aliasing.
func (p *Plan) hash01(kind, a, b uint64) float64 {
	z := uint64(p.cfg.Seed) ^ 0x6a09e667f3bcc909
	z += kind * 0x9e3779b97f4a7c15
	z += a * 0xc2b2ae3d27d4eb4f
	z += b * 0x165667b19e3779f9
	return float64(splitmix64(z)>>11) / (1 << 53)
}

// burstRNG is a tiny deterministic PRNG (splitmix64 stream) for the
// sequential burst chain; math/rand would also do, but a counter stream
// keeps the tape reproducible from first principles in the docs.
type burstRNG struct{ state uint64 }

func (r *burstRNG) float64() float64 {
	r.state += 0x9e3779b97f4a7c15
	return float64(splitmix64(r.state)>>11) / (1 << 53)
}

// burstTape runs the Gilbert–Elliott chain for one channel over horizon
// slots and records the lost slots as a bitset. One state step and one
// loss draw per slot, mirroring airwave.GilbertElliott's per-slot
// behaviour.
func burstTape(seed int64, b BurstConfig, channel, horizon int) []uint64 {
	rng := burstRNG{state: uint64(seed) ^ splitmix64(kindBurst+uint64(channel)*0x9e3779b97f4a7c15)}
	tape := make([]uint64, (horizon+63)/64)
	bad := false
	for s := 0; s < horizon; s++ {
		if bad {
			if rng.float64() < b.BadToGood {
				bad = false
			}
		} else {
			if rng.float64() < b.GoodToBad {
				bad = true
			}
		}
		loss := b.LossGood
		if bad {
			loss = b.LossBad
		}
		if loss > 0 && rng.float64() < loss {
			tape[s/64] |= 1 << (s % 64)
		}
	}
	return tape
}

// Stalled reports whether the server transmits nothing (on any channel)
// during absolute slot abs.
func (p *Plan) Stalled(abs int) bool {
	if p.cfg.StallEvery <= 0 || p.cfg.StallFor <= 0 || abs < 0 {
		return false
	}
	return abs%p.cfg.StallEvery < p.cfg.StallFor
}

// Drop reports whether the frame on channel ch at absolute slot abs is
// lost in transit (i.i.d. or burst loss; stalls and corruption are
// separate predicates).
func (p *Plan) Drop(ch, abs int) bool {
	if abs < 0 {
		return false
	}
	if p.cfg.Loss > 0 && p.hash01(kindLoss, uint64(ch), uint64(abs)) < p.cfg.Loss {
		return true
	}
	if p.burst != nil && ch >= 0 && ch < p.channels && abs < p.horizon {
		return p.burst[ch][abs/64]&(1<<(abs%64)) != 0
	}
	return false
}

// Corrupt reports whether the frame on channel ch at absolute slot abs
// arrives undecodable.
func (p *Plan) Corrupt(ch, abs int) bool {
	return p.cfg.Corrupt > 0 && abs >= 0 &&
		p.hash01(kindCorrupt, uint64(ch), uint64(abs)) < p.cfg.Corrupt
}

// JitterAt returns the transmission delay of absolute slot abs, a
// hash-uniform offset in [0, Config.Jitter].
func (p *Plan) JitterAt(abs int) float64 {
	if p.cfg.Jitter <= 0 || abs < 0 {
		return 0
	}
	return p.hash01(kindJitter, uint64(abs), 0) * p.cfg.Jitter
}

// ChurnAway reports whether the client serving global request req is
// mid-disconnect (and so deaf) at its attempt-th delivery opportunity.
func (p *Plan) ChurnAway(req int64, attempt int) bool {
	return p.cfg.Churn > 0 &&
		p.hash01(kindChurn, uint64(req), uint64(attempt)) < p.cfg.Churn
}

// Lost reports whether the delivery on channel ch at absolute slot abs
// fails for any channel-side reason (stall, loss or corruption).
func (p *Plan) Lost(ch, abs int) bool {
	return p.Stalled(abs) || p.Drop(ch, abs) || p.Corrupt(ch, abs)
}

// SkipReason classifies why one delivery opportunity on a channel was
// missed, in the measurement engine's ledger taxonomy.
type SkipReason int

const (
	// SkipNone: the frame aired intact (churn may still apply per client).
	SkipNone SkipReason = iota
	// SkipStall: the server stalled for the whole slot.
	SkipStall
	// SkipLoss: the frame was lost in transit (i.i.d. or burst).
	SkipLoss
	// SkipCorrupt: the frame arrived but failed its checksum.
	SkipCorrupt
)

// Classify reports the channel-side fate of the frame on channel ch at
// absolute slot abs, evaluating the fault predicates in the same
// priority order as the measurement engine (stall, then drop, then
// corruption). Client-side churn is per request, not per frame, and is
// judged separately via ChurnAway.
func (p *Plan) Classify(ch, abs int) SkipReason {
	switch {
	case p.Stalled(abs):
		return SkipStall
	case p.Drop(ch, abs):
		return SkipLoss
	case p.Corrupt(ch, abs):
		return SkipCorrupt
	default:
		return SkipNone
	}
}

// DropFunc adapts the channel-side faults to the airwave loss interface,
// for replaying the plan through the discrete-event simulation.
func (p *Plan) DropFunc() airwave.DropFunc {
	return func(f airwave.Frame) bool { return p.Lost(f.Channel, f.Slot) }
}

// JitterFunc adapts JitterAt for airwave.WithSlotJitter; nil when the
// plan has no jitter, so lossless media keep the fixed-period fast path.
func (p *Plan) JitterFunc() func(slot int) float64 {
	if p.cfg.Jitter <= 0 {
		return nil
	}
	return p.JitterAt
}

// EffectiveLossRate is the fraction of the first maxCycles cycles' frame
// slots lost to stalls, drops and corruption — the observed channel
// quality the graceful-degradation path feeds back into PAMAD. It is a
// pure function of the plan, so every worker and every replay sees the
// same value.
func (p *Plan) EffectiveLossRate() float64 {
	if !p.cfg.Active() {
		return 0
	}
	window := p.cfg.maxCycles() * p.length
	if window > 1<<16 {
		window = 1 << 16 // ample for a stable rate estimate, bounded work
	}
	lost := 0
	for abs := 0; abs < window; abs++ {
		for ch := 0; ch < p.channels; ch++ {
			if p.Lost(ch, abs) {
				lost++
			}
		}
	}
	return float64(lost) / float64(window*p.channels)
}

// EffectiveChannels converts the observed loss rate into the usable
// channel capacity: the nominal count scaled down by the loss rate,
// floored, never below one channel.
func (p *Plan) EffectiveChannels() int {
	n := int(float64(p.channels) * (1 - p.EffectiveLossRate()))
	if n < 1 {
		n = 1
	}
	return n
}
