package chaos

import (
	"math"
	"testing"

	"tcsa/internal/core"
	"tcsa/internal/sim"
	"tcsa/internal/susc"
	"tcsa/internal/workload"
)

// FuzzChaosDeterminism fuzzes the determinism contract itself: for any
// fault configuration, (a) the same seed replays the identical trace
// digest, ledger and metrics, (b) the result is identical at 1 and 4
// workers, and (c) an inactive configuration reproduces
// sim.MeasureParallel bit-for-bit.
func FuzzChaosDeterminism(f *testing.F) {
	gs, err := core.Geometric(4, 2, []int{3, 5, 9})
	if err != nil {
		f.Fatalf("Geometric: %v", err)
	}
	prog, err := susc.Build(gs, gs.MinChannels())
	if err != nil {
		f.Fatalf("susc.Build: %v", err)
	}
	a := core.Analyze(prog)
	stream, err := workload.NewStream(gs, prog.Length(), workload.RequestConfig{
		Count: 1500, Seed: 404, Choice: workload.UniformPages,
	})
	if err != nil {
		f.Fatalf("NewStream: %v", err)
	}

	f.Add(int64(1), uint16(0), uint16(0), uint16(0), uint16(0), uint8(0), uint8(0), false)
	f.Add(int64(7), uint16(1<<14), uint16(100), uint16(3000), uint16(2000), uint8(40), uint8(3), true)
	f.Add(int64(-9), uint16(0xffff), uint16(0), uint16(0), uint16(0), uint8(0), uint8(0), false)

	f.Fuzz(func(t *testing.T, seed int64, loss, corrupt, churn, jitter uint16, stallEvery, stallFor uint8, burst bool) {
		cfg := Config{
			Seed:    seed,
			Loss:    float64(loss) / (1 << 16),
			Corrupt: float64(corrupt) / (1 << 16),
			Churn:   float64(churn) / (1 << 16),
			Jitter:  float64(jitter) / (1 << 17), // <= 0.5
		}
		if stallEvery > 0 && int(stallFor) < int(stallEvery) {
			cfg.StallEvery, cfg.StallFor = int(stallEvery), int(stallFor)
		}
		if burst {
			cfg.Burst = &BurstConfig{GoodToBad: 0.05, BadToGood: 0.25, LossBad: 0.8}
		}
		if cfg.Loss > 0.9 {
			cfg.MaxCycles = 4 // keep near-total loss cheap: every walk hits the bound fast
		}
		r1, err := RunParallel(a, stream, cfg, 1)
		if err != nil {
			t.Fatalf("run 1: %v", err)
		}
		r2, err := RunParallel(a, stream, cfg, 4)
		if err != nil {
			t.Fatalf("run 2: %v", err)
		}
		if r1.TraceDigest != r2.TraceDigest {
			t.Fatalf("digest drift across workers: %#x != %#x", r1.TraceDigest, r2.TraceDigest)
		}
		if r1.Ledger != r2.Ledger {
			t.Fatalf("ledger drift across workers: %+v != %+v", r1.Ledger, r2.Ledger)
		}
		if math.Float64bits(r1.AvgWait) != math.Float64bits(r2.AvgWait) ||
			math.Float64bits(r1.AvgDelay) != math.Float64bits(r2.AvgDelay) ||
			math.Float64bits(r1.Wait.Max) != math.Float64bits(r2.Wait.Max) {
			t.Fatalf("metric drift across workers: %+v != %+v", r1.Metrics, r2.Metrics)
		}
		r3, err := RunParallel(a, stream, cfg, 1)
		if err != nil {
			t.Fatalf("run 3: %v", err)
		}
		if r3.TraceDigest != r1.TraceDigest {
			t.Fatalf("digest drift across replays: %#x != %#x", r1.TraceDigest, r3.TraceDigest)
		}
		if !cfg.Active() {
			want, err := sim.MeasureParallel(a, stream, 2)
			if err != nil {
				t.Fatalf("MeasureParallel: %v", err)
			}
			if math.Float64bits(r1.AvgWait) != math.Float64bits(want.AvgWait) ||
				math.Float64bits(r1.AvgDelay) != math.Float64bits(want.AvgDelay) {
				t.Fatalf("inactive config diverged from MeasureParallel: %+v != %+v",
					r1.Metrics, *want)
			}
		}
	})
}
