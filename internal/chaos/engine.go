package chaos

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"tcsa/internal/core"
	"tcsa/internal/delaymodel"
	"tcsa/internal/replan"
	"tcsa/internal/sim"
	"tcsa/internal/stats"
	"tcsa/internal/workload"
)

// Sketch parameters, identical to sim.MeasureStream's: the zero-fault run
// must build bit-identical sketches.
const (
	sketchQuantileAccuracy = 0.01
	sketchResolution       = 1 << 20
)

// Ledger is the per-client deadline-miss bookkeeping the fault plan
// drives: how many scheduled deliveries each fault class ate, how many
// extra appearances clients waited through, and how many gave up.
type Ledger struct {
	// LostDeliveries counts appearances of a requested page lost to
	// i.i.d. or burst frame loss while the client was listening.
	LostDeliveries int64
	// CorruptSkips counts appearances that arrived undecodable.
	CorruptSkips int64
	// StallSkips counts appearances swallowed by server stall windows.
	StallSkips int64
	// ChurnSkips counts appearances missed because the client was
	// mid-disconnect/rejoin.
	ChurnSkips int64
	// Retries is the total number of extra appearances waited for
	// (the sum of the four skip classes).
	Retries int64
	// Unserved counts requests that hit the MaxCycles give-up bound.
	Unserved int64
}

func (l *Ledger) add(o *Ledger) {
	l.LostDeliveries += o.LostDeliveries
	l.CorruptSkips += o.CorruptSkips
	l.StallSkips += o.StallSkips
	l.ChurnSkips += o.ChurnSkips
	l.Retries += o.Retries
	l.Unserved += o.Unserved
}

// Replan reports the graceful-degradation path: the incremental replan
// engine resizing the live schedule down to the effective channel capacity
// the plan's loss rate leaves usable.
type Replan struct {
	// EffectiveChannels is the degraded capacity fed back into PAMAD.
	EffectiveChannels int
	// Frequencies is the degraded per-group broadcast frequency vector.
	Frequencies delaymodel.Frequencies
	// MajorCycle is the degraded schedule's cycle length in slots.
	MajorCycle int
	// AnalyticDelay is the delay model's D' for the degraded schedule.
	AnalyticDelay float64
	// DeltaKind is how the replan engine classified the resize (a channel
	// change is always "rebuild"; kept observable so a future fast path
	// shows up in reports).
	DeltaKind string
	// ClearedCells/PlacedCells is the engine's cell accounting for the
	// resize: transmissions vacated from the nominal schedule and written
	// into the degraded one.
	ClearedCells int
	PlacedCells  int
}

// Result is a chaos measurement: the standard metrics (Wait doubles as
// the staleness/age-of-information profile — Delay.Max is the worst
// deadline overshoot), the fault ledger, and the replay fingerprint.
type Result struct {
	sim.Metrics
	Ledger
	// Misses is the exact deadline-miss count (MissRatio's numerator).
	Misses int64
	// EffectiveLoss is the plan's observed frame-loss rate.
	EffectiveLoss float64
	// TraceDigest fingerprints every per-request outcome (page, wait bits,
	// attempt count) in shard order: identical seed + config + stream give
	// an identical digest at any worker count.
	TraceDigest uint64
	// Replan is the graceful-degradation schedule, when Config.Replan is
	// set and the plan degrades capacity below nominal.
	Replan *Replan
}

// pageCursor mirrors sim's sorted-stream appearance cursor: identical
// traversal, so the zero-fault run lands on the identical column index.
type pageCursor struct {
	k     int32
	prevU float64
}

// nextSortedIdx is the index-returning twin of sim.nextSorted: the same
// cursor movement over the same columns stops at the same k.
func nextSortedIdx(pc *pageCursor, cols []int32, u float64) int32 {
	if u < pc.prevU {
		pc.k = 0
	}
	pc.prevU = u
	k := pc.k
	for int(k) < len(cols) && float64(cols[k]) < u {
		k++
	}
	pc.k = k
	return k
}

// ceilF mirrors core's dependency-free ceil for non-negative floats (the
// unsorted-stream column search must match core.Analysis.NextAfter).
func ceilF(x float64) float64 {
	if x >= 1<<63 {
		return x
	}
	i := float64(int64(x))
	if i < x {
		return i + 1
	}
	return i
}

// fnvOffset/fnvPrime are the FNV-1a 64-bit constants (same family as the
// perf-report series checksums).
const (
	fnvOffset uint64 = 0xcbf29ce484222325
	fnvPrime  uint64 = 0x100000001b3
)

func fnvByte(h uint64, b byte) uint64 { return (h ^ uint64(b)) * fnvPrime }

func fnv64(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h = fnvByte(h, byte(v>>(8*i)))
	}
	return h
}

// partial accumulates one shard, mirroring sim's partial field-for-field
// and adding the ledger and the shard trace digest.
type partial struct {
	wait, delay       stats.Online
	waitSum, delaySum float64
	misses            int64
	ledger            Ledger
	digest            uint64
	err               error
}

// Run measures stream against the analysed program under the faults cfg
// describes, serially. It is RunParallel at one worker.
func Run(a *core.Analysis, stream workload.Stream, cfg Config) (*Result, error) {
	return RunParallel(a, stream, cfg, 1)
}

// RunParallel shards the stream across workers exactly as
// sim.MeasureParallel does — atomic shard claiming, per-shard partials
// folded in ascending shard order — so the Result (metrics, ledger and
// trace digest alike) is bit-for-bit identical at any worker count, and,
// with an inactive cfg, bit-for-bit identical to sim.MeasureParallel's
// Metrics.
func RunParallel(a *core.Analysis, stream workload.Stream, cfg Config, workers int) (*Result, error) {
	if a == nil {
		return nil, errors.New("chaos: nil analysis")
	}
	if stream == nil {
		return nil, errors.New("chaos: nil stream")
	}
	prog := a.Program()
	plan, err := NewPlan(cfg, prog.Channels(), prog.Length())
	if err != nil {
		return nil, err
	}
	count := stream.Count()
	if count == 0 {
		return finish(&Result{}, plan, prog)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	shards := stream.Shards()
	if workers > shards {
		workers = shards
	}

	gs := prog.GroupSet()
	ix := a.Index()
	pages := gs.Pages()
	Li := prog.Length()
	L := float64(Li)
	sorted := stream.Sorted()
	active := cfg.Active()
	maxCycles := cfg.maxCycles()
	times := make([]float64, pages)
	for i := range times {
		times[i] = float64(gs.TimeOf(core.PageID(i)))
	}
	var chanOf [][]int32
	if active {
		chanOf = ChannelTable(prog, ix)
	}

	partials := make([]partial, shards)
	waitSketches := make([]*stats.Sketch, workers)
	delaySketches := make([]*stats.Sketch, workers)

	var nextShard atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	var sketchErr atomic.Value
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(widx int) {
			defer wg.Done()
			ws, err1 := stats.NewSketch(L/sketchResolution, L, sketchQuantileAccuracy)
			ds, err2 := stats.NewSketch(L/sketchResolution, L, sketchQuantileAccuracy)
			if err1 != nil || err2 != nil {
				sketchErr.Store(errors.Join(err1, err2))
				failed.Store(true)
				return
			}
			waitSketches[widx] = ws
			delaySketches[widx] = ds
			cur := stream.NewCursor()
			var cursors []pageCursor
			if sorted {
				cursors = make([]pageCursor, pages)
			}
			var r workload.Request
			for {
				if failed.Load() {
					return
				}
				shard := int(nextShard.Add(1)) - 1
				if shard >= shards {
					return
				}
				p := &partials[shard]
				p.digest = fnvOffset
				cur.Seek(shard)
				for local := 0; cur.Next(&r); local++ {
					if r.Page < 0 || int(r.Page) >= pages {
						p.err = fmt.Errorf("%w: request %d page %d",
							core.ErrPageRange, shard*workload.ShardSize+local, r.Page)
						failed.Store(true)
						return
					}
					if r.Arrival < 0 {
						p.err = fmt.Errorf("%w: request %d arrival %f negative",
							core.ErrSlotRange, shard*workload.ShardSize+local, r.Arrival)
						failed.Store(true)
						return
					}
					u := math.Mod(r.Arrival, L)
					var wait float64
					attempts := 0
					cols := ix.Columns(r.Page)
					if len(cols) == 0 {
						wait = L
					} else {
						// Locate the first candidate appearance with the exact
						// arithmetic sim.MeasureParallel uses.
						var k int32
						if sorted {
							k = nextSortedIdx(&cursors[r.Page], cols, u)
						} else {
							target := int32(ceilF(u))
							k = int32(sort.Search(len(cols), func(i int) bool { return cols[i] >= target }))
						}
						wraps := 0
						if int(k) == len(cols) {
							k, wraps = 0, 1
						}
						if !active {
							if wraps == 0 {
								wait = float64(cols[k]) - u
							} else {
								wait = float64(cols[0]) + L - u
							}
						} else {
							reqIdx := int64(shard)*workload.ShardSize + int64(local)
							for {
								if wraps >= maxCycles {
									p.ledger.Unserved++
									wait = float64(maxCycles) * L
									break
								}
								abs := wraps*Li + int(cols[k])
								ch := int(chanOf[r.Page][k])
								skipped := true
								switch {
								case plan.Stalled(abs):
									p.ledger.StallSkips++
								case plan.Drop(ch, abs):
									p.ledger.LostDeliveries++
								case plan.Corrupt(ch, abs):
									p.ledger.CorruptSkips++
								case plan.ChurnAway(reqIdx, attempts):
									p.ledger.ChurnSkips++
								default:
									skipped = false
								}
								if skipped {
									attempts++
									p.ledger.Retries++
									if k++; int(k) == len(cols) {
										k, wraps = 0, wraps+1
									}
									continue
								}
								if wraps == 0 {
									wait = float64(cols[k]) - u
								} else {
									wait = float64(cols[k]) + float64(wraps)*L - u
								}
								wait += plan.JitterAt(abs)
								break
							}
						}
					}
					delay := wait - times[r.Page]
					if delay < 0 {
						delay = 0
					} else if delay > 0 {
						p.misses++
					}
					p.wait.Add(wait)
					p.delay.Add(delay)
					p.waitSum += wait
					p.delaySum += delay
					ws.Add(wait)
					ds.Add(delay)
					d := fnv64(p.digest, uint64(uint32(r.Page)))
					d = fnv64(d, math.Float64bits(wait))
					p.digest = fnv64(d, uint64(attempts))
				}
			}
		}(w)
	}
	wg.Wait()

	for k := range partials {
		if partials[k].err != nil {
			return nil, partials[k].err
		}
	}
	if err, _ := sketchErr.Load().(error); err != nil {
		return nil, err
	}

	var wait, delay stats.Online
	var waitSum, delaySum float64
	var misses int64
	var ledger Ledger
	digest := fnvOffset
	for k := range partials {
		wait.Merge(partials[k].wait)
		delay.Merge(partials[k].delay)
		waitSum += partials[k].waitSum
		delaySum += partials[k].delaySum
		misses += partials[k].misses
		ledger.add(&partials[k].ledger)
		digest = fnv64(digest, partials[k].digest)
	}
	waitSketch, delaySketch := waitSketches[0], delaySketches[0]
	for w := 1; w < workers; w++ {
		if waitSketches[w] == nil {
			continue
		}
		if err := waitSketch.Merge(waitSketches[w]); err != nil {
			return nil, err
		}
		if err := delaySketch.Merge(delaySketches[w]); err != nil {
			return nil, err
		}
	}

	res := &Result{
		Metrics: sim.Metrics{
			Requests:  count,
			AvgWait:   waitSum / float64(count),
			AvgDelay:  delaySum / float64(count),
			MissRatio: float64(misses) / float64(count),
			Wait:      summary(wait, waitSketch),
			Delay:     summary(delay, delaySketch),
		},
		Ledger:      ledger,
		Misses:      misses,
		TraceDigest: digest,
	}
	return finish(res, plan, prog)
}

// finish attaches the plan-level quantities (effective loss, degradation
// replan) that do not depend on the measured stream. The degradation path
// runs through the incremental replan engine — the same machinery a live
// broadcaster uses to resize its schedule — so the chaos report additionally
// carries the engine's delta accounting; the derived frequencies, cycle and
// delay are identical to a from-scratch pamad.Build at the degraded budget
// (the engine's differential gate pins that equivalence).
func finish(res *Result, plan *Plan, prog *core.Program) (*Result, error) {
	res.EffectiveLoss = plan.EffectiveLossRate()
	if plan.cfg.Replan {
		eff := plan.EffectiveChannels()
		if eff < prog.Channels() {
			eng, err := replan.New(prog.GroupSet(), prog.Channels())
			if err != nil {
				return nil, fmt.Errorf("chaos: degradation replan at %d channels: %w", eff, err)
			}
			delta, err := eng.SetChannels(eff)
			if err != nil {
				return nil, fmt.Errorf("chaos: degradation replan at %d channels: %w", eff, err)
			}
			res.Replan = &Replan{
				EffectiveChannels: eff,
				Frequencies:       eng.Frequencies(),
				MajorCycle:        eng.Program().Length(),
				AnalyticDelay:     eng.Delay(),
				DeltaKind:         delta.Kind.String(),
				ClearedCells:      delta.ClearedCells,
				PlacedCells:       delta.PlacedCells,
			}
		}
	}
	return res, nil
}

// summary mirrors sim's streamSummary.
func summary(o stats.Online, sk *stats.Sketch) stats.Summary {
	return stats.Summary{
		N:      int(o.N()),
		Mean:   o.Mean(),
		StdDev: o.StdDev(),
		Min:    o.Min(),
		Max:    o.Max(),
		P50:    sk.Quantile(0.50),
		P95:    sk.Quantile(0.95),
		P99:    sk.Quantile(0.99),
	}
}

// ChannelTable aligns each page's broadcast channel with its appearance
// columns: the result's [p][k] is the channel carrying ix.Columns(p)[k].
// Pages appear on one channel in SUSC programs but may straddle channels
// under PAMAD placement, so the table is per-appearance. Both the
// measurement engine and the loadgen client harness key their fault
// lookups through it.
func ChannelTable(prog *core.Program, ix *core.AppearanceIndex) [][]int32 {
	pages := prog.GroupSet().Pages()
	chanOf := make([][]int32, pages)
	for p := 0; p < pages; p++ {
		chanOf[p] = make([]int32, len(ix.Columns(core.PageID(p))))
	}
	for ch := 0; ch < prog.Channels(); ch++ {
		for c := 0; c < prog.Length(); c++ {
			p := prog.At(ch, c)
			if p == core.None {
				continue
			}
			cols := ix.Columns(p)
			k := sort.Search(len(cols), func(i int) bool { return cols[i] >= int32(c) })
			if k < len(cols) && cols[k] == int32(c) {
				chanOf[p][k] = int32(ch)
			}
		}
	}
	return chanOf
}
