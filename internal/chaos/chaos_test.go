package chaos

import (
	"math"
	"testing"

	"tcsa/internal/adaptive"
	"tcsa/internal/conformance"
	"tcsa/internal/core"
	"tcsa/internal/pamad"
	"tcsa/internal/replan"
	"tcsa/internal/sim"
	"tcsa/internal/stats"
	"tcsa/internal/susc"
	"tcsa/internal/workload"
)

func testGroupSet(t *testing.T) *core.GroupSet {
	t.Helper()
	gs, err := core.Geometric(4, 2, []int{3, 5, 9})
	if err != nil {
		t.Fatalf("Geometric: %v", err)
	}
	return gs
}

func suscProgram(t *testing.T) (*core.GroupSet, *core.Program) {
	t.Helper()
	gs := testGroupSet(t)
	prog, err := susc.Build(gs, gs.MinChannels())
	if err != nil {
		t.Fatalf("susc.Build: %v", err)
	}
	return gs, prog
}

func uniformStream(t *testing.T, gs *core.GroupSet, cycle, count int, seed int64) workload.Stream {
	t.Helper()
	s, err := workload.NewStream(gs, cycle, workload.RequestConfig{
		Count: count, Seed: seed, Choice: workload.UniformPages,
	})
	if err != nil {
		t.Fatalf("NewStream: %v", err)
	}
	return s
}

func poissonStream(t *testing.T, gs *core.GroupSet, count int, seed int64) workload.Stream {
	t.Helper()
	s, err := workload.NewPoissonStream(gs, workload.PoissonConfig{
		RequestConfig: workload.RequestConfig{Count: count, Seed: seed},
		Rate:          2.0,
	})
	if err != nil {
		t.Fatalf("NewPoissonStream: %v", err)
	}
	return s
}

// eqBits asserts float bit equality — tolerances would defeat the whole
// point of the determinism contract.
func eqBits(t *testing.T, name string, got, want float64) {
	t.Helper()
	if math.Float64bits(got) != math.Float64bits(want) {
		t.Errorf("%s: %v (%#x) != %v (%#x)",
			name, got, math.Float64bits(got), want, math.Float64bits(want))
	}
}

func eqSummary(t *testing.T, name string, got, want stats.Summary) {
	t.Helper()
	if got.N != want.N {
		t.Errorf("%s.N: %d != %d", name, got.N, want.N)
	}
	eqBits(t, name+".Mean", got.Mean, want.Mean)
	eqBits(t, name+".StdDev", got.StdDev, want.StdDev)
	eqBits(t, name+".Min", got.Min, want.Min)
	eqBits(t, name+".Max", got.Max, want.Max)
	eqBits(t, name+".P50", got.P50, want.P50)
	eqBits(t, name+".P95", got.P95, want.P95)
	eqBits(t, name+".P99", got.P99, want.P99)
}

func eqMetrics(t *testing.T, got, want *sim.Metrics) {
	t.Helper()
	if got.Requests != want.Requests {
		t.Errorf("Requests: %d != %d", got.Requests, want.Requests)
	}
	eqBits(t, "AvgWait", got.AvgWait, want.AvgWait)
	eqBits(t, "AvgDelay", got.AvgDelay, want.AvgDelay)
	eqBits(t, "MissRatio", got.MissRatio, want.MissRatio)
	eqSummary(t, "Wait", got.Wait, want.Wait)
	eqSummary(t, "Delay", got.Delay, want.Delay)
}

// TestZeroFaultMatchesMeasureStream is the acceptance criterion: with no
// faults configured, the chaos engine's metrics are bit-for-bit the
// sim.MeasureStream metrics — on sorted and unsorted streams, on SUSC and
// PAMAD programs.
func TestZeroFaultMatchesMeasureStream(t *testing.T) {
	gs, suscProg := suscProgram(t)
	pamadProg, _, err := pamad.Build(gs, gs.MinChannels()-1)
	if err != nil {
		t.Fatalf("pamad.Build: %v", err)
	}
	progs := map[string]*core.Program{"susc": suscProg, "pamad": pamadProg}
	for name, prog := range progs {
		a := core.Analyze(prog)
		streams := map[string]workload.Stream{
			"uniform": uniformStream(t, gs, prog.Length(), 5000, 42),
			"poisson": poissonStream(t, gs, 5000, 43),
		}
		for sname, stream := range streams {
			t.Run(name+"/"+sname, func(t *testing.T) {
				want, err := sim.MeasureParallel(a, stream, 3)
				if err != nil {
					t.Fatalf("MeasureParallel: %v", err)
				}
				got, err := RunParallel(a, stream, Config{Seed: 7}, 3)
				if err != nil {
					t.Fatalf("RunParallel: %v", err)
				}
				eqMetrics(t, &got.Metrics, want)
				if got.Retries != 0 || got.Unserved != 0 {
					t.Errorf("zero-fault ledger not empty: %+v", got.Ledger)
				}
				if got.EffectiveLoss != 0 { //lint:ignore floateq exact zero by construction
					t.Errorf("zero-fault EffectiveLoss = %g", got.EffectiveLoss)
				}
			})
		}
	}
}

// TestWorkerCountInvariance pins the second acceptance criterion: the
// whole Result — metrics, ledger and trace digest — is identical at any
// worker count, faults on or off.
func TestWorkerCountInvariance(t *testing.T) {
	gs, prog := suscProgram(t)
	a := core.Analyze(prog)
	// > 1 shard so the parallel path is actually exercised.
	stream := uniformStream(t, gs, prog.Length(), 3*workload.ShardSize/2, 11)
	cfgs := map[string]Config{
		"zero": {Seed: 1},
		"faulty": {
			Seed: 1, Loss: 0.2, Corrupt: 0.05, Churn: 0.1, Jitter: 0.3,
			StallEvery: 50, StallFor: 3,
			Burst: &BurstConfig{GoodToBad: 0.05, BadToGood: 0.3, LossBad: 0.9},
		},
	}
	for name, cfg := range cfgs {
		t.Run(name, func(t *testing.T) {
			base, err := RunParallel(a, stream, cfg, 1)
			if err != nil {
				t.Fatalf("serial run: %v", err)
			}
			for _, workers := range []int{2, 4, 8} {
				got, err := RunParallel(a, stream, cfg, workers)
				if err != nil {
					t.Fatalf("%d workers: %v", workers, err)
				}
				eqMetrics(t, &got.Metrics, &base.Metrics)
				if got.Ledger != base.Ledger {
					t.Errorf("%d workers: ledger %+v != %+v", workers, got.Ledger, base.Ledger)
				}
				if got.TraceDigest != base.TraceDigest {
					t.Errorf("%d workers: digest %#x != %#x", workers, got.TraceDigest, base.TraceDigest)
				}
				eqBits(t, "EffectiveLoss", got.EffectiveLoss, base.EffectiveLoss)
			}
		})
	}
}

// TestSeedReplay: the same seed replays the same run; a different seed
// produces a different fault pattern.
func TestSeedReplay(t *testing.T) {
	gs, prog := suscProgram(t)
	a := core.Analyze(prog)
	stream := uniformStream(t, gs, prog.Length(), 4000, 3)
	cfg := Config{Seed: 99, Loss: 0.25}
	r1, err := Run(a, stream, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(a, stream, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r1.TraceDigest != r2.TraceDigest {
		t.Errorf("same seed, digests %#x != %#x", r1.TraceDigest, r2.TraceDigest)
	}
	eqMetrics(t, &r2.Metrics, &r1.Metrics)

	cfg.Seed = 100
	r3, err := Run(a, stream, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r3.TraceDigest == r1.TraceDigest {
		t.Errorf("different seeds replayed the same digest %#x", r1.TraceDigest)
	}
}

// TestZeroLossValidProgramMissFree closes the loop with the conformance
// oracle: a SUSC-valid program under zero faults records zero deadline
// misses.
func TestZeroLossValidProgramMissFree(t *testing.T) {
	gs, prog := suscProgram(t)
	a := core.Analyze(prog)
	stream := uniformStream(t, gs, prog.Length(), 20000, 5)
	res, err := Run(a, stream, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := conformance.MissFreeLaw(prog, res.Misses); err != nil {
		t.Error(err)
	}
	if res.MissRatio != 0 { //lint:ignore floateq exact zero is the law under test
		t.Errorf("MissRatio = %g on a valid program with no faults", res.MissRatio)
	}
}

// TestFaultClassesLedger: each fault class, enabled alone, registers in
// its own ledger column and nowhere else.
func TestFaultClassesLedger(t *testing.T) {
	gs, prog := suscProgram(t)
	a := core.Analyze(prog)
	stream := uniformStream(t, gs, prog.Length(), 5000, 17)
	cases := []struct {
		name string
		cfg  Config
		col  func(*Result) int64
	}{
		{"loss", Config{Seed: 2, Loss: 0.3}, func(r *Result) int64 { return r.LostDeliveries }},
		{"burst", Config{Seed: 2, Burst: &BurstConfig{GoodToBad: 0.1, BadToGood: 0.2, LossBad: 1}},
			func(r *Result) int64 { return r.LostDeliveries }},
		{"corrupt", Config{Seed: 2, Corrupt: 0.3}, func(r *Result) int64 { return r.CorruptSkips }},
		{"stall", Config{Seed: 2, StallEvery: 10, StallFor: 2}, func(r *Result) int64 { return r.StallSkips }},
		{"churn", Config{Seed: 2, Churn: 0.3}, func(r *Result) int64 { return r.ChurnSkips }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res, err := Run(a, stream, tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			if tc.col(res) == 0 {
				t.Errorf("fault class did not register: %+v", res.Ledger)
			}
			if res.Retries != res.LostDeliveries+res.CorruptSkips+res.StallSkips+res.ChurnSkips {
				t.Errorf("Retries %d != sum of skip classes in %+v", res.Retries, res.Ledger)
			}
		})
	}
}

// TestLossDegradesWaits: injected loss can only lengthen waits relative
// to the fault-free run, and total loss exhausts the give-up bound.
func TestLossDegradesWaits(t *testing.T) {
	gs, prog := suscProgram(t)
	a := core.Analyze(prog)
	stream := uniformStream(t, gs, prog.Length(), 5000, 23)
	base, err := Run(a, stream, Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	lossy, err := Run(a, stream, Config{Seed: 3, Loss: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	if lossy.AvgWait <= base.AvgWait {
		t.Errorf("40%% loss did not raise AvgWait: %g <= %g", lossy.AvgWait, base.AvgWait)
	}
	if lossy.Misses == 0 {
		t.Error("40% loss on a minimum-channel program caused no deadline misses")
	}

	dead, err := Run(a, stream, Config{Seed: 3, Loss: 1, MaxCycles: 4})
	if err != nil {
		t.Fatal(err)
	}
	if int(dead.Unserved) != stream.Count() {
		t.Errorf("total loss: %d unserved of %d", dead.Unserved, stream.Count())
	}
	wantWait := float64(4) * float64(prog.Length())
	eqBits(t, "give-up wait", dead.Wait.Max, wantWait)
}

// TestJitterBoundsWait: jitter adds at most Jitter slots to any wait.
func TestJitterBoundsWait(t *testing.T) {
	gs, prog := suscProgram(t)
	a := core.Analyze(prog)
	stream := uniformStream(t, gs, prog.Length(), 5000, 29)
	base, err := Run(a, stream, Config{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	jit, err := Run(a, stream, Config{Seed: 4, Jitter: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if jit.AvgWait < base.AvgWait {
		t.Errorf("jitter shortened AvgWait: %g < %g", jit.AvgWait, base.AvgWait)
	}
	if jit.AvgWait > base.AvgWait+0.5 {
		t.Errorf("jitter added more than its bound: %g > %g + 0.5", jit.AvgWait, base.AvgWait)
	}
}

// TestReplanDegradation: under heavy loss on a minimum-channel program
// the degradation path re-runs PAMAD at the observed effective capacity.
func TestReplanDegradation(t *testing.T) {
	gs, prog := suscProgram(t)
	a := core.Analyze(prog)
	stream := uniformStream(t, gs, prog.Length(), 1000, 31)
	res, err := Run(a, stream, Config{Seed: 5, Loss: 0.5, Replan: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.EffectiveLoss < 0.4 || res.EffectiveLoss > 0.6 {
		t.Fatalf("EffectiveLoss = %g for a 0.5 loss plan", res.EffectiveLoss)
	}
	if res.Replan == nil {
		t.Fatal("no Replan despite degraded capacity")
	}
	if res.Replan.EffectiveChannels >= prog.Channels() {
		t.Errorf("EffectiveChannels %d not below nominal %d",
			res.Replan.EffectiveChannels, prog.Channels())
	}
	// The degraded schedule must itself satisfy the placement law.
	dprog, dres, err := pamad.Build(gs, res.Replan.EffectiveChannels)
	if err != nil {
		t.Fatalf("rebuilding degraded schedule: %v", err)
	}
	if err := conformance.SpillAccounting(dprog, dres.Frequencies, conformance.PlacementCounts(dres.Placement)); err != nil {
		t.Errorf("degraded schedule violates placement law: %v", err)
	}
	if dres.MajorCycle != res.Replan.MajorCycle {
		t.Errorf("Replan.MajorCycle %d != pamad rebuild %d", res.Replan.MajorCycle, dres.MajorCycle)
	}
	// The resize rides the incremental replan engine: a channel change is
	// always a rebuild, and the cell accounting must match the nominal and
	// degraded transmission totals.
	if res.Replan.DeltaKind != "rebuild" {
		t.Errorf("DeltaKind = %q, want \"rebuild\" for a channel resize", res.Replan.DeltaKind)
	}
	nomS, _, err := pamad.Frequencies(gs, prog.Channels())
	if err != nil {
		t.Fatal(err)
	}
	if want := nomS.TotalSlots(gs); res.Replan.ClearedCells != want {
		t.Errorf("ClearedCells = %d, want nominal F=%d", res.Replan.ClearedCells, want)
	}
	if want := dres.Frequencies.TotalSlots(gs); res.Replan.PlacedCells != want {
		t.Errorf("PlacedCells = %d, want degraded F=%d", res.Replan.PlacedCells, want)
	}

	clean, err := Run(a, stream, Config{Seed: 5, Replan: true})
	if err != nil {
		t.Fatal(err)
	}
	if clean.Replan != nil {
		t.Error("fault-free run produced a degradation Replan")
	}
}

// TestReplayServesClients drives the full DES through the plan: fault-
// free, every client is served; under loss, every client is either served
// or abandoned at the give-up bound — none lost by the machinery.
func TestReplayServesClients(t *testing.T) {
	gs, prog := suscProgram(t)
	reqs, err := workload.GenerateRequests(gs, prog.Length(), workload.RequestConfig{
		Count: 200, Seed: 37, Choice: workload.UniformPages,
	})
	if err != nil {
		t.Fatalf("GenerateRequests: %v", err)
	}
	out, _, err := Replay(prog, reqs, Config{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if out.Served != len(reqs) || out.Abandoned != 0 {
		t.Errorf("fault-free replay: served %d, abandoned %d of %d",
			out.Served, out.Abandoned, len(reqs))
	}
	if out.MissRatio != 0 { //lint:ignore floateq exact zero on a valid program
		t.Errorf("fault-free replay MissRatio = %g", out.MissRatio)
	}

	lossy, _, err := Replay(prog, reqs, Config{Seed: 6, Loss: 0.3, MaxCycles: 8})
	if err != nil {
		t.Fatal(err)
	}
	if lossy.Served+lossy.Abandoned != len(reqs) {
		t.Errorf("lossy replay lost clients: served %d + abandoned %d != %d",
			lossy.Served, lossy.Abandoned, len(reqs))
	}
	if lossy.Served > 0 && lossy.AvgWait < out.AvgWait {
		t.Errorf("loss shortened DES AvgWait: %g < %g", lossy.AvgWait, out.AvgWait)
	}
}

// TestConfigValidate rejects each malformed knob.
func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Loss: -0.1},
		{Loss: 1.5},
		{Corrupt: 2},
		{Churn: math.NaN()},
		{Jitter: 0.6},
		{Jitter: -0.1},
		{StallEvery: 5, StallFor: 5},
		{StallEvery: -1},
		{MaxCycles: -2},
		{Horizon: -1},
		{Burst: &BurstConfig{GoodToBad: 1.2}},
		{Burst: &BurstConfig{GoodToBad: 0.5, BadToGood: 0}},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted %+v", i, cfg)
		}
	}
	if err := (Config{}).Validate(); err != nil {
		t.Errorf("zero config rejected: %v", err)
	}
	if (Config{}).Active() {
		t.Error("zero config reports Active")
	}
}

// TestDegradationTransitionBound closes the loop between the chaos
// degradation path and the live-transition machinery: flipping from the
// nominal PAMAD schedule to the loss-degraded one must keep every page's
// splice wait within adaptive.SpliceBounds, checked by the independent
// conformance replay. Page identities are stable across a channel resize,
// so the item universe is the identity map.
func TestDegradationTransitionBound(t *testing.T) {
	gs, prog := suscProgram(t)
	eng, err := replan.New(gs, prog.Channels())
	if err != nil {
		t.Fatal(err)
	}
	nominal := eng.Snapshot()
	a := core.Analyze(prog)
	stream := uniformStream(t, gs, prog.Length(), 1000, 31)
	res, err := Run(a, stream, Config{Seed: 5, Loss: 0.5, Replan: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Replan == nil {
		t.Fatal("no Replan despite degraded capacity")
	}
	if _, err := eng.SetChannels(res.Replan.EffectiveChannels); err != nil {
		t.Fatal(err)
	}
	degraded := eng.Snapshot()
	ids := make([]core.PageID, gs.Pages())
	for i := range ids {
		ids[i] = core.PageID(i)
	}
	bounds, err := adaptive.SpliceBounds(
		adaptive.Epoch{Program: nominal, IDs: ids},
		adaptive.Epoch{Program: degraded, IDs: ids},
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := conformance.TransitionBound(nominal, degraded, ids, ids, bounds); err != nil {
		t.Errorf("degradation transition exceeds SpliceBounds: %v", err)
	}
}
