package experiments

import (
	"context"
	"fmt"
	"strings"
	"sync"

	"tcsa/internal/core"
	"tcsa/internal/pamad"
	"tcsa/internal/workload"
)

// Figure2 reruns the paper's worked example (P = 3,5,3; t = 2,4,8;
// N_real = 3) and renders the derivation trace and final program — the
// textual form of the paper's Figure 2 panels (b)-(d).
func Figure2() (string, error) {
	gs, err := core.NewGroupSet([]core.Group{{Time: 2, Count: 3}, {Time: 4, Count: 5}, {Time: 8, Count: 3}})
	if err != nil {
		return "", err
	}
	prog, res, err := pamad.Build(gs, 3)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 2 — PAMAD worked example: %v, N_real=3 (minimum %d)\n\n",
		gs, gs.MinChannels())
	for _, st := range res.Trace {
		fmt.Fprintf(&b, "step %d (within t_%d=%d):\n", st.Stage, st.Stage, gs.Group(st.Stage-1).Time)
		for _, c := range st.Candidates {
			marker := " "
			if c.R == st.Chosen {
				marker = "*"
			}
			fmt.Fprintf(&b, "  %s r_%d=%d -> D'_%d=%.4f\n", marker, st.Stage-1, c.R, st.Stage, c.Delay)
		}
	}
	fmt.Fprintf(&b, "\nfrequencies S = %v, t_major = %d, analytic D' = %.4f\n\n",
		[]int(res.Frequencies), res.MajorCycle, res.Delay)
	b.WriteString(prog.String())
	return b.String(), nil
}

// Figure5Parallel computes one Figure 5 subplot with the channel counts
// fanned out over a bounded worker pool; results are identical to Figure5
// (every point derives its own request seed) but wall-clock scales with
// the available cores. workers <= 0 uses 4.
func Figure5Parallel(ctx context.Context, p Params, dist workload.Distribution, workers int) (*Fig5Series, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	if workers <= 0 {
		workers = 4
	}
	gs, err := p.Instance(dist)
	if err != nil {
		return nil, err
	}
	series := &Fig5Series{Dist: dist, Set: gs, MinChannels: gs.MinChannels()}
	var channels []int
	for n := 1; n <= series.MinChannels; n += p.ChannelStride {
		channels = append(channels, n)
	}
	if channels[len(channels)-1] != series.MinChannels {
		channels = append(channels, series.MinChannels)
	}

	points := make([]*Fig5Point, len(channels))
	errs := make([]error, len(channels))
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for i, n := range channels {
		i, n := i, n
		wg.Add(1)
		go func() {
			defer wg.Done()
			select {
			case sem <- struct{}{}:
				defer func() { <-sem }()
			case <-ctx.Done():
				errs[i] = ctx.Err()
				return
			}
			points[i], errs[i] = figure5Point(ctx, p, gs, n)
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("experiments: %v at %d channels: %w", dist, channels[i], err)
		}
	}
	for _, pt := range points {
		series.Points = append(series.Points, *pt)
	}
	return series, nil
}
