package experiments

import (
	"fmt"
	"strings"

	"tcsa/internal/core"
	"tcsa/internal/pamad"
)

// Figure2 reruns the paper's worked example (P = 3,5,3; t = 2,4,8;
// N_real = 3) and renders the derivation trace and final program — the
// textual form of the paper's Figure 2 panels (b)-(d).
func Figure2() (string, error) {
	gs, err := core.NewGroupSet([]core.Group{{Time: 2, Count: 3}, {Time: 4, Count: 5}, {Time: 8, Count: 3}})
	if err != nil {
		return "", err
	}
	prog, res, err := pamad.Build(gs, 3)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 2 — PAMAD worked example: %v, N_real=3 (minimum %d)\n\n",
		gs, gs.MinChannels())
	for _, st := range res.Trace {
		fmt.Fprintf(&b, "step %d (within t_%d=%d):\n", st.Stage, st.Stage, gs.Group(st.Stage-1).Time)
		for _, c := range st.Candidates {
			marker := " "
			if c.R == st.Chosen {
				marker = "*"
			}
			fmt.Fprintf(&b, "  %s r_%d=%d -> D'_%d=%.4f\n", marker, st.Stage-1, c.R, st.Stage, c.Delay)
		}
	}
	fmt.Fprintf(&b, "\nfrequencies S = %v, t_major = %d, analytic D' = %.4f\n\n",
		[]int(res.Frequencies), res.MajorCycle, res.Delay)
	b.WriteString(prog.String())
	return b.String(), nil
}
