package experiments

import (
	"context"
	"strings"
	"testing"

	"tcsa/internal/online"
	"tcsa/internal/workload"
)

// fastParams shrinks the sweep so the full matrix stays test-speed; the
// paper-scale runs live in cmd/airbench and the repository benchmarks.
func fastParams() Params {
	p := DefaultParams()
	p.Requests = 1000
	p.ChannelStride = 8
	return p
}

func TestDefaultParamsMatchFigure4(t *testing.T) {
	p := DefaultParams()
	if p.Pages != 1000 || p.Groups != 8 || p.BaseTime != 4 || p.Ratio != 2 || p.Requests != 3000 {
		t.Errorf("DefaultParams = %+v does not match the paper's Figure 4", p)
	}
	gs, err := p.Instance(workload.Uniform)
	if err != nil {
		t.Fatal(err)
	}
	if gs.MaxTime() != 512 {
		t.Errorf("t_h = %d, want 512", gs.MaxTime())
	}
}

func TestParamsValidate(t *testing.T) {
	p := DefaultParams()
	p.Pages = 3
	if _, err := Figure5(context.Background(), p, workload.Uniform); err == nil {
		t.Error("pages < groups accepted")
	}
	p = DefaultParams()
	p.Requests = 0
	if _, err := Figure3(p); err == nil {
		t.Error("0 requests accepted")
	}
}

// TestFigure5PaperObservations verifies the paper's Section 5 claims on the
// uniform subplot:
//  1. PAMAD tracks OPT closely at every measured channel count;
//  2. PAMAD beats m-PB by a wide margin through the sweep;
//  3. delay at ~N_min/5 channels is a tiny fraction of the 1-channel delay.
func TestFigure5PaperObservations(t *testing.T) {
	p := fastParams()
	s, err := Figure5(context.Background(), p, workload.Uniform)
	if err != nil {
		t.Fatal(err)
	}
	if s.MinChannels != 63 {
		t.Errorf("N_min = %d, want 63", s.MinChannels)
	}
	for _, pt := range s.Points {
		// Observation 1: PAMAD within noise of OPT (absolute slack for the
		// small-delay tail, relative for the head).
		if pt.PAMAD > pt.OPT*1.35+1.5 {
			t.Errorf("channels=%d: PAMAD %.2f far above OPT %.2f", pt.Channels, pt.PAMAD, pt.OPT)
		}
		// Observation 2: m-PB far worse while channels are scarce.
		if pt.Channels <= s.MinChannels/2 && pt.MPB < 2*pt.PAMAD {
			t.Errorf("channels=%d: m-PB %.2f not clearly worse than PAMAD %.2f", pt.Channels, pt.MPB, pt.PAMAD)
		}
	}
	// Observation 3 via the knee helper.
	knee, err := Knee(s, 10)
	if err != nil {
		t.Fatal(err)
	}
	if knee.DelayAtOne < 100 {
		t.Fatalf("1-channel delay %.1f unexpectedly small", knee.DelayAtOne)
	}
	if knee.DelayAtFifth > knee.DelayAtOne/20 {
		t.Errorf("delay at N_min/5 = %.2f, not 'almost ignorable' vs %.1f at 1 channel",
			knee.DelayAtFifth, knee.DelayAtOne)
	}
	if knee.Knee < 0 || knee.Knee > knee.FifthOfMin+p.ChannelStride {
		t.Errorf("knee at %d channels, paper expects around N_min/5 = %d", knee.Knee, knee.FifthOfMin)
	}
}

// TestFigure5MeasurementTracksExact: the 1000-request Monte-Carlo stays
// near the closed-form expectation at every point.
func TestFigure5MeasurementTracksExact(t *testing.T) {
	p := fastParams()
	s, err := Figure5(context.Background(), p, workload.Normal)
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range s.Points {
		if diff := abs(pt.PAMAD - pt.PAMADExact); diff > 0.15*pt.PAMADExact+1.0 {
			t.Errorf("channels=%d: measured %.2f vs exact %.2f", pt.Channels, pt.PAMAD, pt.PAMADExact)
		}
	}
}

func TestFigure5SkipOPT(t *testing.T) {
	p := fastParams()
	p.SkipOPT = true
	p.ChannelStride = 20
	s, err := Figure5(context.Background(), p, workload.SSkewed)
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range s.Points {
		if pt.OPT != 0 || pt.OPTExact != 0 {
			t.Errorf("SkipOPT left OPT values: %+v", pt)
		}
	}
}

func TestFigure5EndsAtMinChannels(t *testing.T) {
	p := fastParams()
	p.ChannelStride = 10
	s, err := Figure5(context.Background(), p, workload.SSkewed)
	if err != nil {
		t.Fatal(err)
	}
	last := s.Points[len(s.Points)-1]
	if last.Channels != s.MinChannels {
		t.Errorf("sweep ends at %d, want N_min=%d", last.Channels, s.MinChannels)
	}
}

func TestFigure5Cancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Figure5(ctx, fastParams(), workload.Uniform); err == nil {
		t.Error("cancelled context accepted")
	}
}

func TestFigure3ShapesAndRender(t *testing.T) {
	rows, err := Figure3(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		sum := 0
		for _, c := range r.Counts {
			sum += c
		}
		if sum != 1000 {
			t.Errorf("%v counts sum to %d", r.Dist, sum)
		}
	}
	out := RenderFigure3(rows)
	for _, want := range []string{"normal", "L-skewed", "S-skewed", "uniform", "G8"} {
		if !strings.Contains(out, want) {
			t.Errorf("Figure 3 table missing %q:\n%s", want, out)
		}
	}
}

func TestRenderFigure4(t *testing.T) {
	out := RenderFigure4(DefaultParams())
	for _, want := range []string{"1000", "4, 8, 16, 32, 64, 128, 256, 512", "3000"} {
		if !strings.Contains(out, want) {
			t.Errorf("Figure 4 table missing %q:\n%s", want, out)
		}
	}
}

func TestSeriesRenderers(t *testing.T) {
	p := fastParams()
	p.ChannelStride = 30
	s, err := Figure5(context.Background(), p, workload.Uniform)
	if err != nil {
		t.Fatal(err)
	}
	tab := s.Table()
	if !strings.Contains(tab, "PAMAD") || !strings.Contains(tab, "uniform") {
		t.Errorf("Table missing headers:\n%s", tab)
	}
	csv := s.CSV()
	if !strings.HasPrefix(csv, "distribution,channels,") {
		t.Errorf("CSV missing header: %q", csv[:40])
	}
	if got := strings.Count(csv, "\n"); got != len(s.Points)+1 {
		t.Errorf("CSV has %d lines, want %d", got, len(s.Points)+1)
	}
}

func TestKneeValidation(t *testing.T) {
	if _, err := Knee(nil, 1); err == nil {
		t.Error("nil series accepted")
	}
	if _, err := Knee(&Fig5Series{}, 1); err == nil {
		t.Error("empty series accepted")
	}
}

// TestAblateTieBreak: both policies produce finite sweeps; neither
// dominates catastrophically on the paper's workload.
func TestAblateTieBreak(t *testing.T) {
	p := fastParams()
	p.ChannelStride = 16
	pts, err := AblateTieBreak(p, workload.Uniform)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) == 0 {
		t.Fatal("no points")
	}
	for _, pt := range pts {
		if pt.TowardRatio > 3*pt.SmallestR+2 || pt.SmallestR > 3*pt.TowardRatio+2 {
			t.Errorf("channels=%d: tie-break policies diverge wildly: %.2f vs %.2f",
				pt.Channels, pt.TowardRatio, pt.SmallestR)
		}
	}
	out := RenderTieBreak(workload.Uniform, pts)
	if !strings.Contains(out, "toward-ratio") {
		t.Errorf("render missing column: %s", out)
	}
}

// TestModelCheck: the exact program delay matches the measurement; the
// heuristic D' objective is correlated but not identical.
func TestModelCheck(t *testing.T) {
	p := fastParams()
	p.ChannelStride = 16
	pts, err := ModelCheck(p, workload.Uniform)
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range pts {
		if diff := abs(pt.Measured - pt.Exact); diff > 0.15*pt.Exact+1.0 {
			t.Errorf("channels=%d: measured %.2f vs exact %.2f", pt.Channels, pt.Measured, pt.Exact)
		}
		if pt.Ideal < 0 || pt.Heuristic < 0 {
			t.Errorf("channels=%d: negative model values %+v", pt.Channels, pt)
		}
	}
	out := RenderModelCheck(workload.Uniform, pts)
	if !strings.Contains(out, "measured") {
		t.Errorf("render missing column: %s", out)
	}
}

// TestAblateOptGap: on the paper's workload the greedy-vs-exhaustive gap is
// small in absolute terms, supporting the "almost overlaps" claim.
func TestAblateOptGap(t *testing.T) {
	p := fastParams()
	p.ChannelStride = 12
	gap, err := AblateOptGap(context.Background(), p, workload.Uniform)
	if err != nil {
		t.Fatal(err)
	}
	// Near the sufficient-channel floor both delays are a few slots and the
	// D'-objective ratio can swing; the visual "almost overlaps" claim is
	// asserted in measured-delay space by TestFigure5PaperObservations.
	// Here we sanity-bound the objective-space divergence.
	if gap.MaxRelGap > 3 {
		t.Errorf("max relative PAMAD-OPT D' gap = %.1f%%, out of sanity range", 100*gap.MaxRelGap)
	}
	if gap.MeanAbsGap > 10 {
		t.Errorf("mean PAMAD-OPT D' gap = %.2f slots, out of sanity range", gap.MeanAbsGap)
	}
	out := RenderOptGap([]*OptGap{gap})
	if !strings.Contains(out, "uniform") {
		t.Errorf("render missing row: %s", out)
	}
}

// TestAblateOptPruning: the pruned OPT search agrees with the exhaustive
// scan on every sweep point (the ablation itself errors on any divergence)
// while evaluating at least an order of magnitude fewer candidates on the
// paper's instance.
func TestAblateOptPruning(t *testing.T) {
	p := fastParams()
	p.ChannelStride = 16
	pts, err := AblateOptPruning(context.Background(), p, workload.Uniform)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) == 0 {
		t.Fatal("no points")
	}
	for _, pt := range pts {
		if pt.Pruned < 1 || pt.Exhaustive < pt.Pruned {
			t.Errorf("channels=%d: evaluation counts %d pruned vs %d exhaustive out of range",
				pt.Channels, pt.Pruned, pt.Exhaustive)
		}
		if pt.Reduction < 10 {
			t.Errorf("channels=%d: reduction %.0fx below the 10x floor", pt.Channels, pt.Reduction)
		}
	}
	out := RenderOptPrune(workload.Uniform, pts)
	if !strings.Contains(out, "pruned evals") {
		t.Errorf("render missing column: %s", out)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestFigure2Walkthrough(t *testing.T) {
	out, err := Figure2()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"N_real=3 (minimum 4)",
		"* r_1=2 -> D'_2=0.0000",
		"r_1=1 -> D'_2=0.1250",
		"* r_2=2 -> D'_3=0.0417",
		"S = [4 2 1], t_major = 9",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Figure2 output missing %q:\n%s", want, out)
		}
	}
}

// TestFigure5ParallelMatchesSerial: the worker-pool sweep returns exactly
// the serial results.
func TestFigure5ParallelMatchesSerial(t *testing.T) {
	p := fastParams()
	p.ChannelStride = 10
	serial, err := Figure5(context.Background(), p, workload.SSkewed)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Figure5Parallel(context.Background(), p, workload.SSkewed, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial.Points) != len(parallel.Points) {
		t.Fatalf("point counts differ: %d vs %d", len(serial.Points), len(parallel.Points))
	}
	for i := range serial.Points {
		if serial.Points[i] != parallel.Points[i] {
			t.Errorf("point %d differs: %+v vs %+v", i, serial.Points[i], parallel.Points[i])
		}
	}
}

func TestFigure5ParallelCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Figure5Parallel(ctx, fastParams(), workload.SSkewed, 2); err == nil {
		t.Error("cancelled context accepted")
	}
}

func TestPlotRenders(t *testing.T) {
	p := fastParams()
	p.ChannelStride = 6
	s, err := Figure5(context.Background(), p, workload.SSkewed)
	if err != nil {
		t.Fatal(err)
	}
	plot := s.Plot(50, 12)
	if !strings.Contains(plot, "p") || !strings.Contains(plot, "m") {
		t.Errorf("plot missing series marks:\n%s", plot)
	}
	if got := strings.Count(plot, "\n"); got != 12+3 {
		t.Errorf("plot has %d lines, want %d", got, 15)
	}
	// Degenerate sizes clamp to defaults without panicking.
	_ = s.Plot(0, 0)
}

// TestFairness checks the design-rationale claim: PAMAD disperses the
// unavoidable delay more evenly across pages than m-PB through most of the
// scarce region.
func TestFairness(t *testing.T) {
	p := fastParams()
	p.ChannelStride = 8
	pts, err := Fairness(p, workload.Uniform)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) == 0 {
		t.Fatal("no points")
	}
	// The dispersion claim applies where delay is unavoidable: the scarce
	// half of the sweep. Near sufficiency most PAMAD pages reach zero
	// delay, which Jain's index reads as concentration (see FairnessPoint
	// docs).
	var scarce, pamadWins int
	for _, pt := range pts {
		if pt.PAMADFairness < 0 || pt.PAMADFairness > 1 || pt.MPBFairness < 0 || pt.MPBFairness > 1 {
			t.Fatalf("fairness out of [0,1]: %+v", pt)
		}
		if pt.Channels > 31 { // N_min/2 for the uniform workload
			continue
		}
		scarce++
		if pt.PAMADFairness > pt.MPBFairness {
			pamadWins++
		}
	}
	if scarce == 0 || pamadWins < scarce {
		t.Errorf("PAMAD more even on only %d of %d scarce points", pamadWins, scarce)
	}
	out := RenderFairness(workload.Uniform, pts)
	if !strings.Contains(out, "Jain index") {
		t.Errorf("render missing header: %s", out)
	}
}

func TestFigure5All(t *testing.T) {
	p := fastParams()
	p.ChannelStride = 25
	p.SkipOPT = true
	series, err := Figure5All(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 4 {
		t.Fatalf("got %d series, want 4", len(series))
	}
	seen := map[string]bool{}
	for _, s := range series {
		seen[s.Dist.String()] = true
		if len(s.Points) == 0 {
			t.Errorf("%v series empty", s.Dist)
		}
	}
	for _, want := range []string{"normal", "L-skewed", "S-skewed", "uniform"} {
		if !seen[want] {
			t.Errorf("missing %s series", want)
		}
	}
	bad := p
	bad.Pages = 1
	if _, err := Figure5All(context.Background(), bad); err == nil {
		t.Error("invalid params accepted")
	}
}

func TestAblateBaselinesAndRender(t *testing.T) {
	p := fastParams()
	p.ChannelStride = 20
	pts, err := AblateBaselines(p, workload.SSkewed)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) == 0 {
		t.Fatal("no points")
	}
	for _, pt := range pts {
		if pt.PAMADWait <= 0 || pt.FlatWait <= 0 {
			t.Errorf("channels=%d: non-positive waits %+v", pt.Channels, pt)
		}
		// Flat is mean-wait optimal under uniform access: it cannot lose
		// the wait comparison by more than discretisation noise.
		if pt.FlatWait > pt.PAMADWait*1.1+1 {
			t.Errorf("channels=%d: flat wait %.2f above PAMAD %.2f", pt.Channels, pt.FlatWait, pt.PAMADWait)
		}
	}
	out := RenderBaselines(workload.SSkewed, pts)
	if !strings.Contains(out, "flat-disk AvgD") {
		t.Errorf("render missing column:\n%s", out)
	}
	bad := p
	bad.Requests = 0
	if _, err := AblateBaselines(bad, workload.SSkewed); err == nil {
		t.Error("invalid params accepted")
	}
}

func TestRenderKnee(t *testing.T) {
	p := fastParams()
	p.ChannelStride = 4
	s, err := Figure5(context.Background(), p, workload.SSkewed)
	if err != nil {
		t.Fatal(err)
	}
	k, err := Knee(s, 1)
	if err != nil {
		t.Fatal(err)
	}
	out := RenderKnee([]*KneeResult{k})
	for _, want := range []string{"N_min/5", "S-skewed", "AvgD@1"} {
		if !strings.Contains(out, want) {
			t.Errorf("knee table missing %q:\n%s", want, out)
		}
	}
}

func TestHybridMatrixShape(t *testing.T) {
	p := DefaultParams()
	p.Pages, p.Groups, p.Requests = 80, 4, 400
	rates := []float64{2, 8}
	splits := []online.Split{
		{Mode: online.SplitReserved, OnlineChannels: 1},
		{Mode: online.SplitPureOnline},
	}
	policies := []online.Policy{online.LWF, online.FCFS}
	pts, err := HybridMatrix(p, workload.Uniform, rates, splits, policies)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != len(rates)*len(splits)*len(policies) {
		t.Fatalf("matrix has %d cells, want %d", len(pts), len(rates)*len(splits)*len(policies))
	}
	for _, pt := range pts {
		if pt.PullShare < 0 || pt.PullShare > 1 {
			t.Fatalf("pull share %g outside [0,1]: %+v", pt.PullShare, pt)
		}
		if pt.EndToEndMean <= 0 || pt.EndToEndMax < pt.EndToEndMean {
			t.Fatalf("end-to-end stats inconsistent: %+v", pt)
		}
		if pt.PullShare > 0 && pt.OnlineMaxDF < 1 {
			t.Fatalf("delay factor below 1 with defectors present: %+v", pt)
		}
	}
	// Determinism: the same matrix twice is bit-identical.
	again, err := HybridMatrix(p, workload.Uniform, rates, splits, policies)
	if err != nil {
		t.Fatal(err)
	}
	a, b := HybridSeries(pts), HybridSeries(again)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("series value %d drifted: %g vs %g", i, a[i], b[i])
		}
	}
	if len(RenderHybridMatrix(workload.Uniform, pts)) == 0 {
		t.Fatal("empty render")
	}
	if _, err := HybridMatrix(p, workload.Uniform, nil, splits, policies); err == nil {
		t.Fatal("empty axis accepted")
	}
}
