package experiments

import (
	"fmt"
	"math"
	"strings"
)

// Plot renders a Figure 5 series as an ASCII chart, log10 AvgD on the
// vertical axis against channel count — the shape the paper's plots show.
// Marks: 'p' = PAMAD, 'm' = m-PB, 'o' = OPT, '*' = overlapping points.
func (s *Fig5Series) Plot(width, height int) string {
	if width < 20 {
		width = 64
	}
	if height < 5 {
		height = 16
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}

	// Log scale over [floor, peak]; zero/negative clamp to the floor row.
	const floor = 0.01
	peak := floor
	for _, pt := range s.Points {
		for _, v := range []float64{pt.PAMAD, pt.MPB, pt.OPT} {
			if v > peak {
				peak = v
			}
		}
	}
	logFloor, logPeak := math.Log10(floor), math.Log10(peak)
	if logPeak <= logFloor {
		logPeak = logFloor + 1
	}
	row := func(v float64) int {
		if v < floor {
			v = floor
		}
		frac := (math.Log10(v) - logFloor) / (logPeak - logFloor)
		r := int(math.Round(float64(height-1) * (1 - frac)))
		if r < 0 {
			r = 0
		}
		if r > height-1 {
			r = height - 1
		}
		return r
	}
	maxCh := s.Points[len(s.Points)-1].Channels
	col := func(ch int) int {
		c := int(math.Round(float64(width-1) * float64(ch-1) / math.Max(1, float64(maxCh-1))))
		if c < 0 {
			c = 0
		}
		if c > width-1 {
			c = width - 1
		}
		return c
	}
	mark := func(r, c int, m byte) {
		if grid[r][c] != ' ' && grid[r][c] != m {
			grid[r][c] = '*'
			return
		}
		grid[r][c] = m
	}
	for _, pt := range s.Points {
		c := col(pt.Channels)
		mark(row(pt.MPB), c, 'm')
		mark(row(pt.OPT), c, 'o')
		mark(row(pt.PAMAD), c, 'p')
	}

	var b strings.Builder
	fmt.Fprintf(&b, "AvgD (log) vs channels — %v (p=PAMAD m=m-PB o=OPT *=overlap)\n", s.Dist)
	for r, line := range grid {
		label := "        "
		switch r {
		case 0:
			label = fmt.Sprintf("%7.1f ", peak)
		case height - 1:
			label = fmt.Sprintf("%7.2f ", floor)
		}
		fmt.Fprintf(&b, "%s|%s\n", label, string(line))
	}
	fmt.Fprintf(&b, "        +%s\n", strings.Repeat("-", width))
	fmt.Fprintf(&b, "        1%sN_min=%d\n", strings.Repeat(" ", width-2-len(fmt.Sprint(maxCh))), maxCh)
	return b.String()
}
