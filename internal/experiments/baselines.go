package experiments

import (
	"fmt"
	"strings"
	"text/tabwriter"

	"tcsa/internal/bdisk"
	"tcsa/internal/core"
	"tcsa/internal/pamad"
	"tcsa/internal/sim"
	"tcsa/internal/workload"
)

// BaselinePoint contrasts the deadline-aware scheduler with the classic
// mean-access-time scheduler at one channel count: AvgD is the paper's
// metric, AvgW the broadcast-disks literature's.
type BaselinePoint struct {
	Channels   int
	PAMADDelay float64
	FlatDelay  float64 // flat broadcast disk (mean-wait optimal, uniform access)
	PAMADWait  float64
	FlatWait   float64
}

// AblateBaselines sweeps channel counts comparing PAMAD against the flat
// Broadcast Disks schedule (extension ablation A5): each optimises its own
// metric and loses on the other's wherever bandwidth is worth
// prioritising.
func AblateBaselines(p Params, dist workload.Distribution) ([]BaselinePoint, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	gs, err := p.Instance(dist)
	if err != nil {
		return nil, err
	}
	flatDisks := bdisk.FlatDisks(gs)
	var out []BaselinePoint
	for n := 1; n <= gs.MinChannels(); n += p.ChannelStride {
		bp := BaselinePoint{Channels: n}

		pamadProg, _, err := pamad.Build(gs, n)
		if err != nil {
			return nil, err
		}
		bp.PAMADDelay, bp.PAMADWait, err = measureBoth(p, pamadProg, n, 11)
		if err != nil {
			return nil, err
		}

		flatProg, err := bdisk.Build(gs, flatDisks, n)
		if err != nil {
			return nil, err
		}
		bp.FlatDelay, bp.FlatWait, err = measureBoth(p, flatProg, n, 12)
		if err != nil {
			return nil, err
		}
		out = append(out, bp)
	}
	return out, nil
}

func measureBoth(p Params, prog *core.Program, n, alg int) (delay, wait float64, err error) {
	reqs, err := workload.GenerateRequests(prog.GroupSet(), prog.Length(), workload.RequestConfig{
		Count: p.Requests,
		Seed:  p.Seed*9_000_011 + int64(n)*37 + int64(alg),
	})
	if err != nil {
		return 0, 0, err
	}
	m, err := sim.Measure(prog, reqs)
	if err != nil {
		return 0, 0, err
	}
	return m.AvgDelay, m.AvgWait, nil
}

// RenderBaselines renders the A5 sweep.
func RenderBaselines(dist fmt.Stringer, pts []BaselinePoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation A5 — deadline-aware vs mean-wait scheduling, %v distribution\n", dist)
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(w, "channels\tPAMAD AvgD\tflat-disk AvgD\tPAMAD wait\tflat-disk wait\t")
	for _, pt := range pts {
		fmt.Fprintf(w, "%d\t%.3f\t%.3f\t%.2f\t%.2f\t\n",
			pt.Channels, pt.PAMADDelay, pt.FlatDelay, pt.PAMADWait, pt.FlatWait)
	}
	_ = w.Flush() // cannot fail: flushes into the in-memory builder
	return b.String()
}
