package experiments

import (
	"fmt"
	"strings"
	"text/tabwriter"
)

// Table renders a Figure 5 series as an aligned text table, one row per
// channel count — the textual equivalent of one subplot.
func (s *Fig5Series) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 5 — AvgD vs channels, %v distribution (n=%d pages, N_min=%d)\n",
		s.Dist, s.Set.Pages(), s.MinChannels)
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(w, "channels\tPAMAD\tm-PB\tOPT\tPAMAD(exact)\tm-PB(exact)\tOPT(exact)\t")
	for _, pt := range s.Points {
		fmt.Fprintf(w, "%d\t%.3f\t%.3f\t%.3f\t%.3f\t%.3f\t%.3f\t\n",
			pt.Channels, pt.PAMAD, pt.MPB, pt.OPT, pt.PAMADExact, pt.MPBExact, pt.OPTExact)
	}
	_ = w.Flush() // cannot fail: flushes into the in-memory builder
	return b.String()
}

// CSV renders the series as comma-separated values with a header row.
func (s *Fig5Series) CSV() string {
	var b strings.Builder
	b.WriteString("distribution,channels,pamad,mpb,opt,pamad_exact,mpb_exact,opt_exact\n")
	for _, pt := range s.Points {
		fmt.Fprintf(&b, "%v,%d,%.6f,%.6f,%.6f,%.6f,%.6f,%.6f\n",
			s.Dist, pt.Channels, pt.PAMAD, pt.MPB, pt.OPT, pt.PAMADExact, pt.MPBExact, pt.OPTExact)
	}
	return b.String()
}

// RenderFigure3 renders the group-size distribution table.
func RenderFigure3(rows []Fig3Row) string {
	var b strings.Builder
	b.WriteString("Figure 3 — group size distributions\n")
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', tabwriter.AlignRight)
	fmt.Fprint(w, "distribution\t")
	if len(rows) > 0 {
		for i := range rows[0].Counts {
			fmt.Fprintf(w, "G%d\t", i+1)
		}
	}
	fmt.Fprintln(w)
	for _, r := range rows {
		fmt.Fprintf(w, "%v\t", r.Dist)
		for _, c := range r.Counts {
			fmt.Fprintf(w, "%d\t", c)
		}
		fmt.Fprintln(w)
	}
	_ = w.Flush() // cannot fail: flushes into the in-memory builder
	return b.String()
}

// RenderFigure4 renders the parameter table.
func RenderFigure4(p Params) string {
	var b strings.Builder
	b.WriteString("Figure 4 — parameter settings\n")
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintf(w, "n - total number\t%d\n", p.Pages)
	fmt.Fprintf(w, "h - number of groups\t%d\n", p.Groups)
	times := make([]string, p.Groups)
	t := p.BaseTime
	for i := range times {
		times[i] = fmt.Sprint(t)
		t *= p.Ratio
	}
	fmt.Fprintf(w, "t_i - expected time\t%s\n", strings.Join(times, ", "))
	fmt.Fprintf(w, "group size distributions\t{normal, L-skewed, S-skewed, uniform}\n")
	fmt.Fprintf(w, "number of requests\t%d\n", p.Requests)
	_ = w.Flush() // cannot fail: flushes into the in-memory builder
	return b.String()
}

// RenderKnee renders the knee analysis for several series.
func RenderKnee(results []*KneeResult) string {
	var b strings.Builder
	b.WriteString("Observation 3 — delay knee vs the 1/5-of-minimum rule\n")
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(w, "distribution\tN_min\tAvgD@1\tknee(AvgD<=thr)\tN_min/5\tAvgD@N_min/5\t")
	for _, r := range results {
		fmt.Fprintf(w, "%v\t%d\t%.2f\t%d\t%d\t%.3f\t\n",
			r.Dist, r.MinChannels, r.DelayAtOne, r.Knee, r.FifthOfMin, r.DelayAtFifth)
	}
	_ = w.Flush() // cannot fail: flushes into the in-memory builder
	return b.String()
}

// RenderTieBreak renders the tie-break ablation sweep.
func RenderTieBreak(dist fmt.Stringer, pts []TiePoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation A1 — Algorithm 3 tie-break policies, %v distribution\n", dist)
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(w, "channels\ttoward-ratio\tsmallest-r\ttoward(D')\tsmallest(D')\t")
	for _, pt := range pts {
		fmt.Fprintf(w, "%d\t%.3f\t%.3f\t%.3f\t%.3f\t\n",
			pt.Channels, pt.TowardRatio, pt.SmallestR, pt.TowardModel, pt.SmallestModel)
	}
	_ = w.Flush() // cannot fail: flushes into the in-memory builder
	return b.String()
}

// RenderModelCheck renders the model-vs-measurement ablation sweep.
func RenderModelCheck(dist fmt.Stringer, pts []ModelPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation A3 — delay models vs measurement (PAMAD), %v distribution\n", dist)
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(w, "channels\tD'(heuristic)\tideal-spacing\texact(program)\tmeasured\t")
	for _, pt := range pts {
		fmt.Fprintf(w, "%d\t%.3f\t%.3f\t%.3f\t%.3f\t\n",
			pt.Channels, pt.Heuristic, pt.Ideal, pt.Exact, pt.Measured)
	}
	_ = w.Flush() // cannot fail: flushes into the in-memory builder
	return b.String()
}

// RenderOptPrune renders the OPT pruning ablation sweep.
func RenderOptPrune(dist fmt.Stringer, pts []OptPruneStat) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation — OPT branch-and-bound vs exhaustive scan, %v distribution (identical results)\n", dist)
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(w, "channels\tD'\texhaustive evals\tpruned evals\treduction\t")
	for _, pt := range pts {
		fmt.Fprintf(w, "%d\t%.3f\t%d\t%d\t%.0fx\t\n",
			pt.Channels, pt.Delay, pt.Exhaustive, pt.Pruned, pt.Reduction)
	}
	_ = w.Flush() // cannot fail: flushes into the in-memory builder
	return b.String()
}

// RenderOptGap renders the greedy-vs-exhaustive gap summaries.
func RenderOptGap(gaps []*OptGap) string {
	var b strings.Builder
	b.WriteString("Ablation A1 — PAMAD vs OPT exact program-delay gap\n")
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(w, "distribution\tmax gap (slots)\tmean gap\tmax rel gap\tworst at channels\t")
	for _, g := range gaps {
		fmt.Fprintf(w, "%v\t%.4f\t%.4f\t%.1f%%\t%d\t\n",
			g.Dist, g.MaxAbsGap, g.MeanAbsGap, 100*g.MaxRelGap, g.WorstChannel)
	}
	_ = w.Flush() // cannot fail: flushes into the in-memory builder
	return b.String()
}
