package experiments

import (
	"fmt"
	"strings"
	"text/tabwriter"

	"tcsa/internal/core"
	"tcsa/internal/mpb"
	"tcsa/internal/pamad"
	"tcsa/internal/stats"
	"tcsa/internal/workload"
)

// FairnessPoint checks the paper's design rationale — "Our idea is to
// equally disperse the delay caused by channel insufficiency to all
// broadcast data ... so that the delay of each data page remains about the
// same" — at one channel count. Fairness is Jain's index of the per-page
// absolute delays: 1.0 means every page carries the same delay.
//
// Interpretation notes: m-PB stretches every gap by the same factor, so
// its *relative* delays (delay/t_i) are uniform by construction while its
// absolute delays grow linearly with t_i (index ≈ 0.37 under the uniform
// workload). PAMAD equalises absolute delays where delay is unavoidable;
// near sufficiency its index drops because most pages reach *zero* delay —
// a win for clients that Jain's index reads as concentration.
type FairnessPoint struct {
	Channels      int
	PAMADFairness float64
	MPBFairness   float64
	PAMADDelay    float64 // exact AvgD for context
	MPBDelay      float64
}

// Fairness sweeps channel counts comparing how evenly PAMAD and m-PB
// spread the unavoidable delay (ablation A6).
func Fairness(p Params, dist workload.Distribution) ([]FairnessPoint, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	gs, err := p.Instance(dist)
	if err != nil {
		return nil, err
	}
	var out []FairnessPoint
	for n := 1; n < gs.MinChannels(); n += p.ChannelStride {
		fp := FairnessPoint{Channels: n}

		pProg, _, err := pamad.Build(gs, n)
		if err != nil {
			return nil, err
		}
		fp.PAMADFairness, fp.PAMADDelay = fairnessOf(pProg)

		mProg, _, err := mpb.Build(gs, n)
		if err != nil {
			return nil, err
		}
		fp.MPBFairness, fp.MPBDelay = fairnessOf(mProg)

		out = append(out, fp)
	}
	return out, nil
}

// fairnessOf computes Jain's index of per-page absolute delays plus the
// average delay of the program.
func fairnessOf(prog *core.Program) (fairness, avgDelay float64) {
	a := core.Analyze(prog)
	gs := prog.GroupSet()
	rel := make([]float64, gs.Pages())
	for id := range rel {
		rel[id] = a.PageDelay(core.PageID(id))
	}
	return stats.JainIndex(rel), a.AvgDelay()
}

// RenderFairness renders the A6 sweep.
func RenderFairness(dist fmt.Stringer, pts []FairnessPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation A6 — delay-dispersion fairness (Jain index of per-page delays), %v distribution\n", dist)
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(w, "channels\tPAMAD fairness\tm-PB fairness\tPAMAD AvgD\tm-PB AvgD\t")
	for _, pt := range pts {
		fmt.Fprintf(w, "%d\t%.3f\t%.3f\t%.3f\t%.3f\t\n",
			pt.Channels, pt.PAMADFairness, pt.MPBFairness, pt.PAMADDelay, pt.MPBDelay)
	}
	_ = w.Flush() // cannot fail: flushes into the in-memory builder
	return b.String()
}
