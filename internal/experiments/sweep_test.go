package experiments

import (
	"context"
	"math"
	"strings"
	"testing"

	"tcsa/internal/core"
	"tcsa/internal/pamad"
	"tcsa/internal/workload"
)

// serialReference is the pre-engine Figure5 loop, kept verbatim as the
// equivalence oracle: one point after another in channel order, right
// endpoint appended when the stride skips it.
func serialReference(ctx context.Context, p Params, dist workload.Distribution) (*Fig5Series, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	gs, err := p.Instance(dist)
	if err != nil {
		return nil, err
	}
	series := &Fig5Series{Dist: dist, Set: gs, MinChannels: gs.MinChannels()}
	for n := 1; n <= series.MinChannels; n += p.ChannelStride {
		pt, err := figure5Point(ctx, p, gs, n)
		if err != nil {
			return nil, err
		}
		series.Points = append(series.Points, *pt)
	}
	if last := series.Points[len(series.Points)-1]; last.Channels != series.MinChannels {
		pt, err := figure5Point(ctx, p, gs, series.MinChannels)
		if err != nil {
			return nil, err
		}
		series.Points = append(series.Points, *pt)
	}
	return series, nil
}

// requireSameSeries fails unless the two series are bit-for-bit identical
// (Fig5Point is all ints and float64s, so struct equality is exact).
func requireSameSeries(t *testing.T, label string, want, got *Fig5Series) {
	t.Helper()
	if want.Dist != got.Dist || want.MinChannels != got.MinChannels {
		t.Fatalf("%s: series headers differ: %v/%d vs %v/%d",
			label, want.Dist, want.MinChannels, got.Dist, got.MinChannels)
	}
	if len(want.Points) != len(got.Points) {
		t.Fatalf("%s: point counts differ: %d vs %d", label, len(want.Points), len(got.Points))
	}
	for i := range want.Points {
		if want.Points[i] != got.Points[i] {
			t.Errorf("%s: point %d differs: %+v vs %+v", label, i, want.Points[i], got.Points[i])
		}
	}
}

// TestSweepMatchesSerialReference: the unified worker-pool engine
// reproduces the historical serial sweep bit-for-bit at the same seeds, at
// the default worker count and at 1 worker (the serial configuration).
func TestSweepMatchesSerialReference(t *testing.T) {
	p := fastParams()
	p.ChannelStride = 10
	ctx := context.Background()
	want, err := serialReference(ctx, p, workload.SSkewed)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Figure5(ctx, p, workload.SSkewed)
	if err != nil {
		t.Fatal(err)
	}
	requireSameSeries(t, "default workers", want, got)
	serial, err := Figure5Parallel(ctx, p, workload.SSkewed, 1)
	if err != nil {
		t.Fatal(err)
	}
	requireSameSeries(t, "1 worker", want, serial)
}

// TestFigure5AllMatchesFigure5: sweeping all four distributions over the
// shared worker budget returns exactly the per-distribution results, in
// the paper's order.
func TestFigure5AllMatchesFigure5(t *testing.T) {
	p := fastParams()
	p.ChannelStride = 25
	p.SkipOPT = true
	ctx := context.Background()
	all, err := Figure5All(ctx, p)
	if err != nil {
		t.Fatal(err)
	}
	dists := workload.Distributions()
	if len(all) != len(dists) {
		t.Fatalf("got %d series, want %d", len(all), len(dists))
	}
	for i, dist := range dists {
		want, err := Figure5(ctx, p, dist)
		if err != nil {
			t.Fatal(err)
		}
		requireSameSeries(t, dist.String(), want, all[i])
	}
}

func TestSweepChannelCounts(t *testing.T) {
	tests := []struct {
		min, stride int
		want        []int
	}{
		{1, 1, []int{1}},
		{5, 1, []int{1, 2, 3, 4, 5}},
		{7, 3, []int{1, 4, 7}},
		{8, 3, []int{1, 4, 7, 8}},
		{63, 25, []int{1, 26, 51, 63}},
	}
	for _, tc := range tests {
		got := sweepChannelCounts(tc.min, tc.stride)
		if len(got) != len(tc.want) {
			t.Errorf("sweepChannelCounts(%d, %d) = %v, want %v", tc.min, tc.stride, got, tc.want)
			continue
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("sweepChannelCounts(%d, %d) = %v, want %v", tc.min, tc.stride, got, tc.want)
				break
			}
		}
	}
}

// TestSweepErrorContext: a failing point surfaces with the
// "experiments: <dist> at <n> channels" context at every sweep position —
// including the stride-skipped right endpoint, whose error the old serial
// loop's retry branch used to return bare.
func TestSweepErrorContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Figure5(ctx, fastParams(), workload.SSkewed)
	if err == nil {
		t.Fatal("cancelled context accepted")
	}
	if !strings.Contains(err.Error(), "experiments: S-skewed at ") || !strings.Contains(err.Error(), " channels") {
		t.Errorf("error missing sweep context: %v", err)
	}
	if !strings.Contains(err.Error(), context.Canceled.Error()) {
		t.Errorf("error does not wrap the cause: %v", err)
	}
}

// TestMeasurePinsLegacyPipeline: the streaming measure() reproduces the
// historical GenerateRequests + materialised-sampler AvgD bit for bit at
// the same derived seed — the invariant that keeps BENCH_sweep.json series
// checksums frozen across the engine swap.
func TestMeasurePinsLegacyPipeline(t *testing.T) {
	p := fastParams()
	gs, err := p.Instance(workload.SSkewed)
	if err != nil {
		t.Fatal(err)
	}
	prog, _, err := pamad.Build(gs, 3)
	if err != nil {
		t.Fatal(err)
	}
	const alg = 0
	reqs, err := workload.GenerateRequests(prog.GroupSet(), prog.Length(), workload.RequestConfig{
		Count: p.Requests,
		Seed:  p.Seed*1_000_003 + int64(3)*31 + int64(alg),
	})
	if err != nil {
		t.Fatal(err)
	}
	a := core.Analyze(prog)
	L := float64(prog.Length())
	var sum float64
	for _, r := range reqs {
		wait := a.NextAfter(r.Page, math.Mod(r.Arrival, L))
		delay := wait - float64(gs.TimeOf(r.Page))
		if delay < 0 {
			delay = 0
		}
		sum += delay
	}
	want := sum / float64(len(reqs))

	got, exact, err := measure(p, prog, 3, alg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(got) != math.Float64bits(want) {
		t.Errorf("measured AvgD = %v (%#x), legacy pipeline %v (%#x)",
			got, math.Float64bits(got), want, math.Float64bits(want))
	}
	if math.Float64bits(exact) != math.Float64bits(a.AvgDelay()) {
		t.Errorf("exact AvgD drifted: %v vs %v", exact, a.AvgDelay())
	}
}
