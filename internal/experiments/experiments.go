// Package experiments is the reproduction harness for the evaluation
// section of "Time-Constrained Service on Air" (ICDCS 2005). Every figure
// and table of the paper maps to one function here (see DESIGN.md's
// per-experiment index); cmd/airbench and the repository benchmarks are
// thin wrappers over this package.
//
//	Figure3  -> the four group-size distributions (workload shapes)
//	Figure4  -> the default parameter table (DefaultParams)
//	Figure5  -> AvgD vs channel count for PAMAD / m-PB / OPT, per shape
//	Knee     -> the "1/5 of the minimum channels is enough" observation
//	AblateTieBreak / ModelCheck -> design-choice ablations from DESIGN.md
package experiments

import (
	"context"
	"fmt"
	"sync"

	"tcsa/internal/core"
	"tcsa/internal/mpb"
	"tcsa/internal/opt"
	"tcsa/internal/pamad"
	"tcsa/internal/sim"
	"tcsa/internal/workload"
)

// Params mirrors the paper's Figure 4 parameter table, plus reproduction
// knobs the paper leaves implicit.
type Params struct {
	Pages    int   // n - total number of data pages (paper: 1000)
	Groups   int   // h - number of expected-time groups (paper: 8)
	BaseTime int   // t_1 (paper: 4)
	Ratio    int   // c, so t_i = 4,8,...,512 (paper: 2)
	Requests int   // requests per measured point (paper: 3000)
	Seed     int64 // master seed; everything downstream derives from it

	// ChannelStride samples every k-th channel count in sweeps; 1 = every
	// count (the paper's plots). Benchmarks use larger strides.
	ChannelStride int
	// OptMaxFactor caps OPT's per-position repetition factors (0 = auto).
	OptMaxFactor int
	// SkipOPT drops the OPT series (it dominates sweep cost on wide
	// instances).
	SkipOPT bool
}

// DefaultParams returns the paper's Figure 4 settings.
func DefaultParams() Params {
	return Params{
		Pages:         1000,
		Groups:        8,
		BaseTime:      4,
		Ratio:         2,
		Requests:      3000,
		Seed:          1,
		ChannelStride: 1,
	}
}

// Instance materialises the group set for one distribution under p.
func (p Params) Instance(dist workload.Distribution) (*core.GroupSet, error) {
	return workload.GroupSet(dist, p.Groups, p.Pages, p.BaseTime, p.Ratio)
}

// ScaledInstance materialises the instance with the page count multiplied
// by factor, keeping every other paper parameter. Scale sweeps and the
// paper-scale OPT-quality benchmarks use it to stress the engines beyond
// Figure 4's 1000 pages without inventing a second parameter set.
func (p Params) ScaledInstance(dist workload.Distribution, factor int) (*core.GroupSet, error) {
	if factor < 1 {
		return nil, fmt.Errorf("experiments: scale factor %d", factor)
	}
	return workload.GroupSet(dist, p.Groups, p.Pages*factor, p.BaseTime, p.Ratio)
}

// validate normalises and sanity-checks p.
func (p *Params) validate() error {
	if p.Pages < p.Groups || p.Groups < 1 {
		return fmt.Errorf("experiments: %d pages over %d groups", p.Pages, p.Groups)
	}
	if p.Requests < 1 {
		return fmt.Errorf("experiments: %d requests", p.Requests)
	}
	if p.ChannelStride < 1 {
		p.ChannelStride = 1
	}
	return nil
}

// Fig5Point is one x-position of a Figure 5 subplot: the measured and
// closed-form average delay of the three algorithms at one channel count.
type Fig5Point struct {
	Channels int
	// Measured AvgD over p.Requests random requests (the paper's metric).
	PAMAD, MPB, OPT float64
	// Exact closed-form AvgD of the same programs (infinite requests).
	PAMADExact, MPBExact, OPTExact float64
}

// Fig5Series is one subplot of Figure 5.
type Fig5Series struct {
	Dist        workload.Distribution
	Set         *core.GroupSet
	MinChannels int
	Points      []Fig5Point
}

// Figure5 reproduces one subplot of the paper's Figure 5: AvgD of PAMAD,
// m-PB and OPT as the channel count sweeps from 1 to the Theorem 3.1
// minimum for the given group-size distribution. Points are computed on a
// GOMAXPROCS worker pool; because each point derives its own request seed,
// the series is bit-for-bit identical to the historical serial sweep
// (Figure5Parallel with 1 worker).
func Figure5(ctx context.Context, p Params, dist workload.Distribution) (*Fig5Series, error) {
	return runSweep(ctx, p, dist, defaultWorkers())
}

func figure5Point(ctx context.Context, p Params, gs *core.GroupSet, n int) (*Fig5Point, error) {
	pt := &Fig5Point{Channels: n}

	// The Monte-Carlo measures below are the expensive stages and do not
	// take the context themselves (they are deterministic batch work);
	// poll between them so a cancelled sweep stops at the next stage
	// boundary instead of finishing the whole point.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	pamadProg, _, err := pamad.Build(gs, n)
	if err != nil {
		return nil, fmt.Errorf("pamad: %w", err)
	}
	pt.PAMAD, pt.PAMADExact, err = measure(p, pamadProg, n, 0)
	if err != nil {
		return nil, err
	}

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	mpbProg, _, err := mpb.Build(gs, n)
	if err != nil {
		return nil, fmt.Errorf("mpb: %w", err)
	}
	pt.MPB, pt.MPBExact, err = measure(p, mpbProg, n, 1)
	if err != nil {
		return nil, err
	}

	if p.SkipOPT {
		return pt, nil
	}
	optProg, _, err := opt.Build(ctx, gs, n, opt.Options{MaxFactor: p.OptMaxFactor})
	if err != nil {
		return nil, fmt.Errorf("opt: %w", err)
	}
	pt.OPT, pt.OPTExact, err = measure(p, optProg, n, 2)
	if err != nil {
		return nil, err
	}
	return pt, nil
}

// measure returns (Monte-Carlo AvgD over p.Requests, closed-form AvgD) for
// one program. The request seed is derived from (master seed, channel
// count, algorithm) so every point is reproducible in isolation. Requests
// are generated on the fly through the streaming engine rather than
// materialised; for counts up to workload.ShardSize (every paper setting)
// the stream occupies one shard and AvgD is bit-for-bit what the
// historical GenerateRequests + MeasureAnalyzed pipeline computed.
func measure(p Params, prog *core.Program, n, alg int) (measured, exact float64, err error) {
	stream, err := workload.NewStream(prog.GroupSet(), prog.Length(), workload.RequestConfig{
		Count: p.Requests,
		Seed:  p.Seed*1_000_003 + int64(n)*31 + int64(alg),
	})
	if err != nil {
		return 0, 0, err
	}
	a := core.Analyze(prog)
	m, err := sim.MeasureStream(a, stream)
	if err != nil {
		return 0, 0, err
	}
	return m.AvgDelay, a.AvgDelay(), nil
}

// Figure5All runs all four subplots in the paper's order. The
// distributions sweep concurrently over one shared GOMAXPROCS worker
// budget, so the whole figure costs barely more wall-clock than its widest
// subplot; each series is still bit-for-bit what Figure5 returns alone.
func Figure5All(ctx context.Context, p Params) ([]*Fig5Series, error) {
	dists := workload.Distributions()
	out := make([]*Fig5Series, len(dists))
	errs := make([]error, len(dists))
	sem := defaultWorkers()
	var wg sync.WaitGroup
	for i, dist := range dists {
		i, dist := i, dist
		wg.Add(1)
		go func() {
			defer wg.Done()
			out[i], errs[i] = runSweep(ctx, p, dist, sem)
		}()
	}
	wg.Wait()
	// The sweeps exit promptly on cancellation (runSweep selects on
	// ctx.Done), so Wait cannot hang; prefer reporting the cancellation
	// itself over whichever per-series error surfaced first.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Fig3Row is one distribution's group sizes.
type Fig3Row struct {
	Dist   workload.Distribution
	Counts []int
}

// Figure3 reproduces the group-size distribution shapes of Figure 3.
func Figure3(p Params) ([]Fig3Row, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	var rows []Fig3Row
	for _, dist := range workload.Distributions() {
		counts, err := workload.GroupCounts(dist, p.Groups, p.Pages)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig3Row{Dist: dist, Counts: counts})
	}
	return rows, nil
}
