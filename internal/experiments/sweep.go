package experiments

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"tcsa/internal/workload"
)

// This file is the single sweep engine behind every Figure 5 entry point.
// Figure5, Figure5Parallel and Figure5All all funnel into runSweep; the
// only difference between them is the size (and sharing) of the worker-slot
// semaphore. One worker slot reproduces the historical serial loop; the
// default is GOMAXPROCS slots; Figure5All shares one budget across all four
// distributions so a machine-wide sweep saturates the cores without
// oversubscribing them.

// sweepChannelCounts returns the x-axis of one Figure 5 subplot: every
// stride-th channel count from 1, with the Theorem 3.1 minimum always
// included as the right endpoint.
func sweepChannelCounts(minChannels, stride int) []int {
	counts := make([]int, 0, minChannels/stride+2)
	for n := 1; n <= minChannels; n += stride {
		counts = append(counts, n)
	}
	if counts[len(counts)-1] != minChannels {
		counts = append(counts, minChannels)
	}
	return counts
}

// defaultWorkers returns a fresh worker-slot semaphore sized to the
// machine.
func defaultWorkers() chan struct{} {
	return make(chan struct{}, runtime.GOMAXPROCS(0))
}

// runSweep evaluates figure5Point at every channel count of dist's series,
// fanning points over the worker-slot semaphore sem. Every point derives
// its request seed from (master seed, channel count, algorithm) exactly as
// the historical serial loop did, so the resulting series is bit-for-bit
// identical for any semaphore size — see TestSweepMatchesSerialReference.
// Errors carry the same "experiments: <dist> at <n> channels" context at
// every point, the right endpoint included.
func runSweep(ctx context.Context, p Params, dist workload.Distribution, sem chan struct{}) (*Fig5Series, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	gs, err := p.Instance(dist)
	if err != nil {
		return nil, err
	}
	series := &Fig5Series{Dist: dist, Set: gs, MinChannels: gs.MinChannels()}
	counts := sweepChannelCounts(series.MinChannels, p.ChannelStride)

	points := make([]*Fig5Point, len(counts))
	errs := make([]error, len(counts))
	var wg sync.WaitGroup
	for i, n := range counts {
		i, n := i, n
		wg.Add(1)
		go func() {
			defer wg.Done()
			select {
			case sem <- struct{}{}:
				defer func() { <-sem }()
			case <-ctx.Done():
				errs[i] = ctx.Err()
				return
			}
			points[i], errs[i] = figure5Point(ctx, p, gs, n)
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("experiments: %v at %d channels: %w", dist, counts[i], err)
		}
	}
	series.Points = make([]Fig5Point, len(points))
	for i, pt := range points {
		series.Points[i] = *pt
	}
	return series, nil
}

// Figure5Parallel computes one Figure 5 subplot with an explicit worker
// count: 1 reproduces the serial sweep, workers <= 0 defaults to 4 (the
// historical behaviour). Results are identical to Figure5 at any worker
// count; only wall-clock changes.
func Figure5Parallel(ctx context.Context, p Params, dist workload.Distribution, workers int) (*Fig5Series, error) {
	if workers <= 0 {
		workers = 4
	}
	return runSweep(ctx, p, dist, make(chan struct{}, workers))
}
