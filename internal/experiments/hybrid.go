package experiments

import (
	"fmt"
	"strings"
	"text/tabwriter"

	"tcsa/internal/core"
	"tcsa/internal/hybrid"
	"tcsa/internal/online"
	"tcsa/internal/pamad"
	"tcsa/internal/workload"
)

// HybridPoint is one cell of the arrival-intensity x split x policy matrix:
// a Poisson request stream at Rate arrivals/slot driven through the coupled
// push/online system on a scarce PAMAD program.
type HybridPoint struct {
	Rate   float64
	Split  online.Split
	Policy online.Policy

	// PullShare is the fraction of clients the broadcast lost to the
	// online tier (the paper's congestion driver).
	PullShare float64
	// OnlineAvgFlow / OnlineMaxDF summarise the online tier's service of
	// the defectors: mean flow time and worst delay factor.
	OnlineAvgFlow float64
	OnlineMaxDF   float64
	// StolenSlots counts push cells the online tier borrowed (steal mode).
	StolenSlots int
	// EndToEndMean / EndToEndMax cover every request across both tiers.
	EndToEndMean float64
	EndToEndMax  float64
}

// HybridMatrix sweeps Poisson arrival intensity against pull/push splits
// and online policies on one scarce program (1/5 of the minimum channels,
// the paper's knee-rule operating point). Every cell reuses the same
// request stream per rate, so differences across a row are attributable to
// the split and policy alone.
func HybridMatrix(p Params, dist workload.Distribution, rates []float64,
	splits []online.Split, policies []online.Policy) ([]HybridPoint, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	if len(rates) == 0 || len(splits) == 0 || len(policies) == 0 {
		return nil, fmt.Errorf("experiments: empty hybrid matrix axis (%d rates, %d splits, %d policies)",
			len(rates), len(splits), len(policies))
	}
	gs, err := p.Instance(dist)
	if err != nil {
		return nil, err
	}
	prog, _, err := pamad.Build(gs, core.CeilDiv(gs.MinChannels(), 5))
	if err != nil {
		return nil, err
	}
	out := make([]HybridPoint, 0, len(rates)*len(splits)*len(policies))
	for ri, rate := range rates {
		reqs, err := workload.GeneratePoissonRequests(gs, workload.PoissonConfig{
			RequestConfig: workload.RequestConfig{Count: p.Requests, Seed: p.Seed + int64(ri)},
			Rate:          rate,
		})
		if err != nil {
			return nil, err
		}
		for _, split := range splits {
			for _, policy := range policies {
				rep, err := hybrid.Run(prog, reqs, hybrid.Config{
					AbandonAfter: 1.0,
					Online:       &online.Config{Policy: policy, Split: split},
				})
				if err != nil {
					return nil, fmt.Errorf("experiments: hybrid rate %g %v/%v: %w",
						rate, split, policy, err)
				}
				pt := HybridPoint{
					Rate:         rate,
					Split:        split,
					Policy:       policy,
					PullShare:    rep.PullShare,
					EndToEndMean: rep.EndToEnd.Mean,
					EndToEndMax:  rep.EndToEnd.Max,
				}
				if rep.Online != nil {
					pt.OnlineAvgFlow = rep.Online.AvgFlow
					pt.OnlineMaxDF = rep.Online.MaxDelayFactor
					pt.StolenSlots = rep.Online.StolenSlots
				}
				out = append(out, pt)
			}
		}
	}
	return out, nil
}

// HybridSeries flattens the matrix into a checksum-friendly float series in
// row order: the fingerprint the airbench -hybrid gate freezes.
func HybridSeries(pts []HybridPoint) []float64 {
	s := make([]float64, 0, 5*len(pts))
	for _, pt := range pts {
		s = append(s, pt.PullShare, pt.OnlineAvgFlow, pt.OnlineMaxDF,
			float64(pt.StolenSlots), pt.EndToEndMean)
	}
	return s
}

// RenderHybridMatrix renders the sweep as one table per arrival rate.
func RenderHybridMatrix(dist fmt.Stringer, pts []HybridPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Hybrid pull/push matrix — Poisson intensity x split x policy, %v distribution\n", dist)
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(w, "rate\tsplit\tpolicy\tpull share\tonline flow\tmax DF\tstolen\te2e mean\te2e max\t")
	for _, pt := range pts {
		fmt.Fprintf(w, "%.2f\t%v\t%v\t%.3f\t%.3f\t%.2f\t%d\t%.3f\t%.3f\t\n",
			pt.Rate, pt.Split, pt.Policy, pt.PullShare, pt.OnlineAvgFlow,
			pt.OnlineMaxDF, pt.StolenSlots, pt.EndToEndMean, pt.EndToEndMax)
	}
	_ = w.Flush() // cannot fail: flushes into the in-memory builder
	return b.String()
}
