package experiments

import (
	"context"
	"fmt"

	"tcsa/internal/core"
	"tcsa/internal/delaymodel"
	"tcsa/internal/opt"
	"tcsa/internal/pamad"
	"tcsa/internal/sim"
	"tcsa/internal/workload"
)

// KneeResult quantifies the paper's third observation for one distribution:
// "when the number of available channels increases to about 1/5 of the
// minimally sufficient channels, the average delay decreases to an amount
// almost ignorable".
type KneeResult struct {
	Dist        workload.Distribution
	MinChannels int
	// Knee is the smallest channel count at which PAMAD's measured AvgD
	// drops below Threshold slots.
	Knee      int
	Threshold float64
	// FifthOfMin is ceil(MinChannels/5), the paper's rule of thumb.
	FifthOfMin int
	// DelayAtFifth is PAMAD's AvgD at FifthOfMin channels.
	DelayAtFifth float64
	// DelayAtOne is PAMAD's AvgD at a single channel, for scale.
	DelayAtOne float64
}

// Knee locates the delay knee of a Figure 5 series. threshold <= 0 defaults
// to 1 slot.
func Knee(s *Fig5Series, threshold float64) (*KneeResult, error) {
	if s == nil || len(s.Points) == 0 {
		return nil, fmt.Errorf("experiments: empty series")
	}
	if threshold <= 0 {
		threshold = 1
	}
	r := &KneeResult{
		Dist:        s.Dist,
		MinChannels: s.MinChannels,
		Threshold:   threshold,
		FifthOfMin:  core.CeilDiv(s.MinChannels, 5),
		Knee:        -1,
		DelayAtOne:  s.Points[0].PAMAD,
	}
	for _, pt := range s.Points {
		if r.Knee < 0 && pt.PAMAD <= threshold {
			r.Knee = pt.Channels
		}
		if pt.Channels <= r.FifthOfMin {
			r.DelayAtFifth = pt.PAMAD
		}
	}
	return r, nil
}

// TiePoint compares the two Algorithm 3 tie-break policies at one channel
// count.
type TiePoint struct {
	Channels      int
	TowardRatio   float64 // measured AvgD, default policy
	SmallestR     float64 // measured AvgD, paper-literal policy
	TowardModel   float64 // analytic D' of the default policy's frequencies
	SmallestModel float64
}

// AblateTieBreak sweeps the channel counts comparing PAMAD's default
// tie-break (toward the deadline ratio) against the paper-literal smallest-
// argmin rule (ablation A1 in DESIGN.md).
func AblateTieBreak(p Params, dist workload.Distribution) ([]TiePoint, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	gs, err := p.Instance(dist)
	if err != nil {
		return nil, err
	}
	var out []TiePoint
	for n := 1; n <= gs.MinChannels(); n += p.ChannelStride {
		tp := TiePoint{Channels: n}
		for i, tie := range []pamad.TieBreak{pamad.TieTowardRatio, pamad.TieSmallestR} {
			prog, res, err := pamad.BuildOpt(gs, n, pamad.Options{TieBreak: tie})
			if err != nil {
				return nil, err
			}
			measured, _, err := measure(p, prog, n, 3+i)
			if err != nil {
				return nil, err
			}
			if tie == pamad.TieTowardRatio {
				tp.TowardRatio = measured
				tp.TowardModel = res.Delay
			} else {
				tp.SmallestR = measured
				tp.SmallestModel = res.Delay
			}
		}
		out = append(out, tp)
	}
	return out, nil
}

// ModelPoint compares the three delay estimates for PAMAD's program at one
// channel count: the D' heuristic objective, the exact closed form of the
// placed program, and the Monte-Carlo measurement (ablation A3).
type ModelPoint struct {
	Channels  int
	Heuristic float64 // D' (Eq. 2 family) of the chosen frequencies
	Ideal     float64 // Section 4.1 exact model, even spacing assumed
	Exact     float64 // closed form of the actual placed program
	Measured  float64 // Monte-Carlo over p.Requests
}

// ModelCheck sweeps the channel counts collecting the model-vs-measurement
// comparison for PAMAD.
func ModelCheck(p Params, dist workload.Distribution) ([]ModelPoint, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	gs, err := p.Instance(dist)
	if err != nil {
		return nil, err
	}
	var out []ModelPoint
	for n := 1; n <= gs.MinChannels(); n += p.ChannelStride {
		prog, res, err := pamad.Build(gs, n)
		if err != nil {
			return nil, err
		}
		a := core.Analyze(prog)
		reqs, err := workload.GenerateRequests(gs, prog.Length(), workload.RequestConfig{
			Count: p.Requests,
			Seed:  p.Seed*7_000_003 + int64(n),
		})
		if err != nil {
			return nil, err
		}
		m, err := sim.MeasureAnalyzed(a, reqs)
		if err != nil {
			return nil, err
		}
		out = append(out, ModelPoint{
			Channels:  n,
			Heuristic: res.Delay,
			Ideal:     delaymodel.ExactDelay(gs, res.Frequencies, n),
			Exact:     a.AvgDelay(),
			Measured:  m.AvgDelay,
		})
	}
	return out, nil
}

// OptGap summarises the PAMAD-vs-OPT gap over a sweep in exact program-
// delay terms — the space in which the paper's "almost overlaps" claim is
// made (ablation A1's companion number reported in EXPERIMENTS.md).
type OptGap struct {
	Dist         workload.Distribution
	MaxAbsGap    float64 // max over channel counts of PAMAD exact - OPT exact
	MeanAbsGap   float64
	MaxRelGap    float64 // max of gap / max(OPT exact, 1 slot)
	WorstChannel int     // channel count of MaxRelGap
}

// AblateOptGap measures how far PAMAD's greedy schedule sits from OPT's
// exhaustive one across the sweep, comparing the exact closed-form delays
// of the generated programs.
func AblateOptGap(ctx context.Context, p Params, dist workload.Distribution) (*OptGap, error) {
	s, err := Figure5(ctx, p, dist)
	if err != nil {
		return nil, err
	}
	return OptGapFromSeries(s)
}

// OptPruneStat records one channel count of the OPT pruning ablation: the
// exact-evaluation counts of the exhaustive and branch-and-bound searches,
// which return bit-identical results by construction (verified on every
// point).
type OptPruneStat struct {
	Channels   int
	Delay      float64 // analytic D' of the (shared) optimum
	Exhaustive int64   // candidates scored by the full Cartesian scan
	Pruned     int64   // candidates scored by the branch-and-bound search
	Reduction  float64 // Exhaustive / Pruned
}

// AblateOptPruning sweeps the channel counts comparing the pruned OPT
// search against the exhaustive reference scan: identical results (any
// divergence is an error), with the evaluated-node reduction recorded per
// point. Searches run at Parallelism 1 so the counts are deterministic;
// docs/perf.md reports the measured reduction.
func AblateOptPruning(ctx context.Context, p Params, dist workload.Distribution) ([]OptPruneStat, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	gs, err := p.Instance(dist)
	if err != nil {
		return nil, err
	}
	serial := opt.Options{MaxFactor: p.OptMaxFactor, Parallelism: 1}
	exhaustive := serial
	exhaustive.Exhaustive = true
	var out []OptPruneStat
	for n := 1; n <= gs.MinChannels(); n += p.ChannelStride {
		pruned, err := opt.Search(ctx, gs, n, serial)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s at %d channels: %w", dist, n, err)
		}
		full, err := opt.Search(ctx, gs, n, exhaustive)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s at %d channels: %w", dist, n, err)
		}
		if pruned.Delay != full.Delay {
			return nil, fmt.Errorf("experiments: %s at %d channels: pruned delay %v != exhaustive %v",
				dist, n, pruned.Delay, full.Delay)
		}
		for i := range full.Frequencies {
			if pruned.Frequencies[i] != full.Frequencies[i] {
				return nil, fmt.Errorf("experiments: %s at %d channels: pruned %v != exhaustive %v",
					dist, n, pruned.Frequencies, full.Frequencies)
			}
		}
		out = append(out, OptPruneStat{
			Channels:   n,
			Delay:      full.Delay,
			Exhaustive: full.Evaluated,
			Pruned:     pruned.Evaluated,
			Reduction:  float64(full.Evaluated) / float64(pruned.Evaluated),
		})
	}
	return out, nil
}

// OptGapFromSeries derives the gap summary from an existing Figure 5
// series, avoiding a second sweep.
func OptGapFromSeries(s *Fig5Series) (*OptGap, error) {
	if s == nil || len(s.Points) == 0 {
		return nil, fmt.Errorf("experiments: empty series")
	}
	out := &OptGap{Dist: s.Dist, WorstChannel: s.Points[0].Channels}
	for _, pt := range s.Points {
		gap := pt.PAMADExact - pt.OPTExact
		if gap < 0 {
			gap = 0
		}
		if gap > out.MaxAbsGap {
			out.MaxAbsGap = gap
		}
		denom := pt.OPTExact
		if denom < 1 {
			denom = 1
		}
		if rel := gap / denom; rel > out.MaxRelGap {
			out.MaxRelGap = rel
			out.WorstChannel = pt.Channels
		}
		out.MeanAbsGap += gap
	}
	out.MeanAbsGap /= float64(len(s.Points))
	return out, nil
}
