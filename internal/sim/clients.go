package sim

import (
	"errors"
	"fmt"

	"tcsa/internal/airwave"
	"tcsa/internal/core"
	"tcsa/internal/eventsim"
	"tcsa/internal/stats"
	"tcsa/internal/workload"
)

// ClientMode selects how event-driven clients locate their page.
type ClientMode int

const (
	// ScheduleAware clients know the broadcast program (e.g. from a
	// published schedule segment) and tune directly to the channel of their
	// page's next appearance, re-planning if a frame is lost.
	ScheduleAware ClientMode = iota
	// Scanning clients know nothing: they sweep the channels, listening to
	// each for one full cycle before moving on, so any broadcast page is
	// found within channels+1 cycles. (Per-slot hopping can alias with the
	// cycle length and orbit past a page forever; the sweep cannot.)
	Scanning
)

// Config parameterises the event-driven simulation.
type Config struct {
	// Mode is the client strategy; default ScheduleAware.
	Mode ClientMode
	// AbandonAfter makes a client give up once its wait exceeds
	// AbandonAfter * t_i slots and leave for the on-demand channel
	// (counted, reported via OnAbandon, excluded from wait statistics).
	// 0 means clients never abandon.
	AbandonAfter float64
	// Drop optionally injects frame loss into the medium.
	Drop airwave.DropFunc
	// Jitter, when non-nil, delays slot k's transmission by Jitter(k)
	// slots (clamped to [0, 0.5] by the medium): imperfect slot clocking.
	Jitter func(slot int) float64
	// OnAbandon, when non-nil, is invoked at the simulated instant a client
	// abandons, with the request and that instant. Hook for coupling to an
	// on-demand server model.
	OnAbandon func(req workload.Request, at float64)
	// MaxSlots bounds the simulation length as a safety net; 0 derives a
	// bound from the workload (last arrival + a generous number of cycles).
	MaxSlots int
	// Trace, when non-nil, receives one Event per client arrival, (re)tune,
	// service and abandonment — e.g. a *RingTracer's Record method.
	Trace func(Event)
}

// Outcome extends Metrics with event-simulation-specific counts.
type Outcome struct {
	Metrics
	// Served is the number of requests satisfied from the air.
	Served int
	// Abandoned is the number of clients that gave up waiting.
	Abandoned int
	// SlotsSimulated is the number of broadcast slots replayed.
	SlotsSimulated int
}

// client is one listening session.
type client struct {
	idx     int // request index, for tracing
	req     workload.Request
	want    core.PageID
	expect  int // expected time t_i
	arrival float64
	tuner   *airwave.Tuner
	heard   int // frames listened to (Scanning sweep progress)
	done    bool
}

// Run replays the program on the airwave substrate and drives one client
// per request through it. Requests arrive at their Arrival instant within
// the first broadcast cycle. The simulation ends when every client is
// served or abandoned (or at the MaxSlots safety bound).
func Run(prog *core.Program, reqs []workload.Request, cfg Config) (*Outcome, error) {
	if prog == nil {
		return nil, errors.New("sim: nil program")
	}
	if cfg.Mode != ScheduleAware && cfg.Mode != Scanning {
		return nil, fmt.Errorf("sim: unknown client mode %d", cfg.Mode)
	}
	gs := prog.GroupSet()
	a := core.Analyze(prog)

	var simulator eventsim.Simulator
	var opts []airwave.Option
	if cfg.Drop != nil {
		opts = append(opts, airwave.WithDropFunc(cfg.Drop))
	}
	if cfg.Jitter != nil {
		opts = append(opts, airwave.WithSlotJitter(cfg.Jitter))
	}
	medium, err := airwave.New(&simulator, prog, opts...)
	if err != nil {
		return nil, err
	}

	out := &Outcome{}
	waits := make([]float64, 0, len(reqs))
	delays := make([]float64, 0, len(reqs))
	misses := 0
	remaining := len(reqs)

	trace := func(kind EventKind, c *client, at float64, channel int) {
		if cfg.Trace != nil {
			cfg.Trace(Event{Kind: kind, Time: at, Client: c.idx, Page: c.want, Channel: channel})
		}
	}
	serve := func(c *client, at float64) {
		if c.done {
			return
		}
		trace(EventServe, c, at, c.tuner.Channel())
		c.done = true
		c.tuner.Detach()
		remaining--
		wait := at - c.arrival
		delay := wait - float64(c.expect)
		if delay < 0 {
			delay = 0
		} else if delay > 0 {
			misses++
		}
		waits = append(waits, wait)
		delays = append(delays, delay)
		out.Served++
	}
	abandon := func(c *client, at float64) {
		if c.done {
			return
		}
		trace(EventAbandon, c, at, c.tuner.Channel())
		c.done = true
		c.tuner.Detach()
		remaining--
		out.Abandoned++
		if cfg.OnAbandon != nil {
			cfg.OnAbandon(c.req, at)
		}
	}

	lastArrival := 0.0
	for i, r := range reqs {
		if r.Page < 0 || int(r.Page) >= gs.Pages() {
			return nil, fmt.Errorf("%w: request %d page %d", core.ErrPageRange, i, r.Page)
		}
		if r.Arrival < 0 {
			return nil, fmt.Errorf("%w: request %d arrival %f", core.ErrSlotRange, i, r.Arrival)
		}
		if r.Arrival > lastArrival {
			lastArrival = r.Arrival
		}
		c := &client{idx: i, req: r, want: r.Page, expect: gs.TimeOf(r.Page), arrival: r.Arrival}
		tuner, err := medium.NewTuner(func(f airwave.Frame) {
			if c.done {
				return
			}
			if f.Page == c.want {
				serve(c, simulator.Now())
				return
			}
			switch cfg.Mode {
			case Scanning:
				// Sweep: stay one full cycle per channel, then advance.
				c.heard++
				next := prog.WrapChannel(int(c.want) + c.heard/prog.Length())
				if next != f.Channel {
					trace(EventTune, c, simulator.Now(), next)
				}
				_ = c.tuner.TuneTo(next)
			case ScheduleAware:
				// The expected frame did not carry the page (loss); re-plan
				// from the next slot boundary.
				before := c.tuner.Channel()
				retuneToNext(medium, a, c, simulator.Now()+1)
				if after := c.tuner.Channel(); after != before {
					trace(EventTune, c, simulator.Now(), after)
				}
			}
		})
		if err != nil {
			return nil, err
		}
		c.tuner = tuner
		// Client arrival: tune in.
		if err := simulator.At(r.Arrival, func() {
			trace(EventArrive, c, simulator.Now(), -1)
			switch cfg.Mode {
			case Scanning:
				_ = c.tuner.TuneTo(prog.WrapChannel(int(c.want)))
			case ScheduleAware:
				retuneToNext(medium, a, c, simulator.Now())
			}
			trace(EventTune, c, simulator.Now(), c.tuner.Channel())
		}); err != nil {
			return nil, err
		}
		if cfg.AbandonAfter > 0 {
			deadline := r.Arrival + cfg.AbandonAfter*float64(c.expect)
			if err := simulator.At(deadline, func() { abandon(c, simulator.Now()) }); err != nil {
				return nil, err
			}
		}
	}

	maxSlots := cfg.MaxSlots
	if maxSlots <= 0 {
		// Every page recurs within one cycle, so the last arrival plus a
		// few cycles is ample even with re-planning; scanning can need N
		// extra passes.
		maxSlots = int(lastArrival) + prog.Length()*(3+prog.Channels()) + 4
	}
	if err := medium.Start(); err != nil {
		return nil, err
	}
	for slot := 0; slot < maxSlots && remaining > 0; slot++ {
		simulator.RunUntil(float64(slot) + 0.5)
	}
	medium.Stop()
	simulator.Run()
	out.SlotsSimulated = medium.Slot()

	out.Requests = len(reqs)
	out.AvgWait = stats.Mean(waits)
	out.AvgDelay = stats.Mean(delays)
	out.Wait = stats.Summarize(waits)
	out.Delay = stats.Summarize(delays)
	if served := len(waits); served > 0 {
		out.MissRatio = float64(misses) / float64(served)
	}
	return out, nil
}

// retuneToNext points the client's tuner at the channel carrying its page's
// next appearance at or after time from.
func retuneToNext(medium *airwave.Medium, a *core.Analysis, c *client, from float64) {
	prog := medium.Program()
	wait := a.NextAfter(c.want, mod(from, float64(prog.Length())))
	col := prog.Column(int(mod(from, float64(prog.Length())) + wait + 0.5))
	for ch := 0; ch < prog.Channels(); ch++ {
		if prog.At(ch, col) == c.want {
			_ = c.tuner.TuneTo(ch)
			return
		}
	}
	// Page never broadcast: stay detached; the abandonment timer (if any)
	// will fire, otherwise the slot bound ends the simulation.
	c.tuner.Detach()
}

// mod is a float modulus with non-negative result for positive m.
func mod(x, m float64) float64 {
	r := x - float64(int(x/m))*m
	if r < 0 {
		r += m
	}
	return r
}
