package sim

import (
	"fmt"
	"strings"

	"tcsa/internal/core"
)

// EventKind classifies a simulation trace event.
type EventKind int

const (
	// EventArrive: a client tuned into the system.
	EventArrive EventKind = iota
	// EventTune: a client (re)tuned to a channel.
	EventTune
	// EventServe: a client received its page.
	EventServe
	// EventAbandon: a client gave up and left for the on-demand channel.
	EventAbandon
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case EventArrive:
		return "arrive"
	case EventTune:
		return "tune"
	case EventServe:
		return "serve"
	case EventAbandon:
		return "abandon"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one traced occurrence. Channel is -1 where not applicable.
type Event struct {
	Kind    EventKind
	Time    float64
	Client  int // request index
	Page    core.PageID
	Channel int
}

// String renders one event line.
func (e Event) String() string {
	return fmt.Sprintf("t=%8.2f client=%-5d %-7s page=%-4d ch=%d",
		e.Time, e.Client, e.Kind, e.Page, e.Channel)
}

// RingTracer keeps the most recent events in a bounded buffer; use it as
// Config.Trace. The zero value is unusable; construct with NewRingTracer.
type RingTracer struct {
	buf     []Event
	next    int
	total   int
	wrapped bool
}

// NewRingTracer allocates a tracer holding the last `capacity` events.
func NewRingTracer(capacity int) (*RingTracer, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("sim: tracer capacity %d", capacity)
	}
	return &RingTracer{buf: make([]Event, 0, capacity)}, nil
}

// Record appends an event, evicting the oldest when full.
func (r *RingTracer) Record(e Event) {
	r.total++
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, e)
		return
	}
	r.buf[r.next] = e
	r.next = (r.next + 1) % cap(r.buf)
	r.wrapped = true
}

// Total returns how many events were recorded over the tracer's lifetime
// (including evicted ones).
func (r *RingTracer) Total() int { return r.total }

// Events returns the retained events oldest-first.
func (r *RingTracer) Events() []Event {
	if !r.wrapped {
		return append([]Event(nil), r.buf...)
	}
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// String renders the retained events one per line.
func (r *RingTracer) String() string {
	var b strings.Builder
	if r.wrapped {
		fmt.Fprintf(&b, "... %d earlier events evicted ...\n", r.total-len(r.buf))
	}
	for _, e := range r.Events() {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}
