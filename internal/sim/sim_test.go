package sim

import (
	"math"
	"strings"
	"testing"

	"tcsa/internal/airwave"
	"tcsa/internal/core"
	"tcsa/internal/mpb"
	"tcsa/internal/pamad"
	"tcsa/internal/susc"
	"tcsa/internal/workload"
)

func fig2() *core.GroupSet {
	return core.MustGroupSet([]core.Group{{Time: 2, Count: 3}, {Time: 4, Count: 5}, {Time: 8, Count: 3}})
}

func TestMeasureValidProgramHasZeroDelay(t *testing.T) {
	gs := fig2()
	prog, err := susc.BuildMinimal(gs)
	if err != nil {
		t.Fatal(err)
	}
	reqs, err := workload.GenerateRequests(gs, prog.Length(), workload.RequestConfig{Count: 2000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	m, err := Measure(prog, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if m.AvgDelay != 0 || m.MissRatio != 0 {
		t.Errorf("valid program measured AvgD=%f miss=%f, want 0", m.AvgDelay, m.MissRatio)
	}
	if m.AvgWait <= 0 {
		t.Errorf("AvgWait = %f, want > 0", m.AvgWait)
	}
	if m.Requests != 2000 {
		t.Errorf("Requests = %d", m.Requests)
	}
}

// TestMeasureConvergesToClosedForm: the Monte-Carlo AvgD over many requests
// approaches the closed-form expectation from core.Analyze.
func TestMeasureConvergesToClosedForm(t *testing.T) {
	gs := fig2()
	prog, _, err := pamad.Build(gs, 2) // insufficient: nonzero delays
	if err != nil {
		t.Fatal(err)
	}
	a := core.Analyze(prog)
	reqs, err := workload.GenerateRequests(gs, prog.Length(), workload.RequestConfig{Count: 100000, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	m, err := MeasureAnalyzed(a, reqs)
	if err != nil {
		t.Fatal(err)
	}
	want := a.AvgDelay()
	if want == 0 {
		t.Fatalf("expected nonzero closed-form delay, instance too easy")
	}
	if math.Abs(m.AvgDelay-want) > 0.05*want+0.05 {
		t.Errorf("measured AvgD %f vs closed form %f", m.AvgDelay, want)
	}
	if math.Abs(m.AvgWait-a.AvgWait()) > 0.05*a.AvgWait()+0.05 {
		t.Errorf("measured wait %f vs closed form %f", m.AvgWait, a.AvgWait())
	}
}

func TestMeasureValidation(t *testing.T) {
	gs := fig2()
	prog, _ := core.NewProgram(gs, 1, 4)
	if _, err := Measure(nil, nil); err == nil {
		t.Error("nil program accepted")
	}
	if _, err := MeasureAnalyzed(nil, nil); err == nil {
		t.Error("nil analysis accepted")
	}
	if _, err := Measure(prog, []workload.Request{{Page: 99, Arrival: 0}}); err == nil {
		t.Error("out-of-range page accepted")
	}
	if _, err := Measure(prog, []workload.Request{{Page: 0, Arrival: -1}}); err == nil {
		t.Error("negative arrival accepted")
	}
	m, err := Measure(prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.Requests != 0 || m.AvgDelay != 0 {
		t.Error("empty request stream not zeroed")
	}
}

// TestRunScheduleAwareMatchesMeasure: the event-driven simulation with
// schedule-aware clients reproduces the fast sampler's waits exactly (same
// requests, no loss, no impatience).
func TestRunScheduleAwareMatchesMeasure(t *testing.T) {
	gs := fig2()
	for _, channels := range []int{1, 2, 3} {
		prog, _, err := pamad.Build(gs, channels)
		if err != nil {
			t.Fatal(err)
		}
		reqs, err := workload.GenerateRequests(gs, prog.Length(), workload.RequestConfig{Count: 300, Seed: 4})
		if err != nil {
			t.Fatal(err)
		}
		fast, err := Measure(prog, reqs)
		if err != nil {
			t.Fatal(err)
		}
		slow, err := Run(prog, reqs, Config{Mode: ScheduleAware})
		if err != nil {
			t.Fatal(err)
		}
		if slow.Served != len(reqs) || slow.Abandoned != 0 {
			t.Fatalf("N=%d: served %d abandoned %d, want %d/0", channels, slow.Served, slow.Abandoned, len(reqs))
		}
		if math.Abs(slow.AvgWait-fast.AvgWait) > 1e-9 {
			t.Errorf("N=%d: event-driven wait %f != sampler wait %f", channels, slow.AvgWait, fast.AvgWait)
		}
		if math.Abs(slow.AvgDelay-fast.AvgDelay) > 1e-9 {
			t.Errorf("N=%d: event-driven AvgD %f != sampler AvgD %f", channels, slow.AvgDelay, fast.AvgDelay)
		}
	}
}

// TestRunScanningIsSlowerButComplete: blind scanners find every page, with
// waits at least as long as schedule-aware clients'.
func TestRunScanningIsSlowerButComplete(t *testing.T) {
	gs := fig2()
	prog, _, err := pamad.Build(gs, 3)
	if err != nil {
		t.Fatal(err)
	}
	reqs, err := workload.GenerateRequests(gs, prog.Length(), workload.RequestConfig{Count: 200, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	aware, err := Run(prog, reqs, Config{Mode: ScheduleAware})
	if err != nil {
		t.Fatal(err)
	}
	scan, err := Run(prog, reqs, Config{Mode: Scanning})
	if err != nil {
		t.Fatal(err)
	}
	if scan.Served != len(reqs) {
		t.Fatalf("scanning served %d of %d", scan.Served, len(reqs))
	}
	if scan.AvgWait < aware.AvgWait-1e-9 {
		t.Errorf("scanning wait %f beat schedule-aware %f", scan.AvgWait, aware.AvgWait)
	}
}

// TestRunImpatience: with a tight abandonment threshold, exactly the
// requests whose wait would exceed it disappear into the on-demand channel.
func TestRunImpatience(t *testing.T) {
	gs := fig2()
	prog, _, err := pamad.Build(gs, 1)
	if err != nil {
		t.Fatal(err)
	}
	reqs, err := workload.GenerateRequests(gs, prog.Length(), workload.RequestConfig{Count: 400, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	fast, err := Measure(prog, reqs)
	if err != nil {
		t.Fatal(err)
	}
	var abandonedAt []float64
	out, err := Run(prog, reqs, Config{
		Mode:         ScheduleAware,
		AbandonAfter: 1.0,
		OnAbandon:    func(_ workload.Request, at float64) { abandonedAt = append(abandonedAt, at) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Served+out.Abandoned != len(reqs) {
		t.Fatalf("served %d + abandoned %d != %d", out.Served, out.Abandoned, len(reqs))
	}
	wantAbandoned := int(fast.MissRatio*float64(len(reqs)) + 0.5)
	if out.Abandoned != wantAbandoned {
		t.Errorf("abandoned %d, want %d (the deadline-missing requests)", out.Abandoned, wantAbandoned)
	}
	if len(abandonedAt) != out.Abandoned {
		t.Errorf("OnAbandon fired %d times for %d abandonments", len(abandonedAt), out.Abandoned)
	}
	// Survivors were all served within their expected time.
	if out.MissRatio != 0 {
		t.Errorf("served requests have miss ratio %f, want 0", out.MissRatio)
	}
}

func TestRunWithFrameLoss(t *testing.T) {
	gs := fig2()
	prog, err := susc.BuildMinimal(gs)
	if err != nil {
		t.Fatal(err)
	}
	reqs, err := workload.GenerateRequests(gs, prog.Length(), workload.RequestConfig{Count: 100, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	dropEvery5th := func(f airwave.Frame) bool { return f.Slot%5 == 4 }
	out, err := Run(prog, reqs, Config{Mode: ScheduleAware, Drop: dropEvery5th})
	if err != nil {
		t.Fatal(err)
	}
	if out.Served != len(reqs) {
		t.Fatalf("served %d of %d under loss", out.Served, len(reqs))
	}
	lossless, err := Run(prog, reqs, Config{Mode: ScheduleAware})
	if err != nil {
		t.Fatal(err)
	}
	if out.AvgWait < lossless.AvgWait-1e-9 {
		t.Errorf("lossy wait %f beat lossless %f", out.AvgWait, lossless.AvgWait)
	}
}

func TestRunValidation(t *testing.T) {
	gs := fig2()
	prog, _, err := mpb.Build(gs, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(nil, nil, Config{}); err == nil {
		t.Error("nil program accepted")
	}
	if _, err := Run(prog, nil, Config{Mode: ClientMode(7)}); err == nil {
		t.Error("unknown mode accepted")
	}
	if _, err := Run(prog, []workload.Request{{Page: -1}}, Config{}); err == nil {
		t.Error("bad page accepted")
	}
	if _, err := Run(prog, []workload.Request{{Page: 0, Arrival: -1}}, Config{}); err == nil {
		t.Error("bad arrival accepted")
	}
	out, err := Run(prog, nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Served != 0 || out.Requests != 0 {
		t.Error("empty run not zeroed")
	}
}

func TestRingTracer(t *testing.T) {
	if _, err := NewRingTracer(0); err == nil {
		t.Error("capacity 0 accepted")
	}
	r, err := NewRingTracer(3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		r.Record(Event{Kind: EventServe, Time: float64(i), Client: i})
	}
	if r.Total() != 5 {
		t.Errorf("Total = %d, want 5", r.Total())
	}
	events := r.Events()
	if len(events) != 3 {
		t.Fatalf("retained %d events, want 3", len(events))
	}
	for i, e := range events {
		if e.Client != i+2 {
			t.Errorf("Events() = %v, want clients 2,3,4 oldest-first", events)
			break
		}
	}
	s := r.String()
	if !strings.Contains(s, "evicted") || !strings.Contains(s, "serve") {
		t.Errorf("String() = %q", s)
	}
}

func TestEventKindString(t *testing.T) {
	wants := map[EventKind]string{
		EventArrive: "arrive", EventTune: "tune", EventServe: "serve",
		EventAbandon: "abandon", EventKind(99): "EventKind(99)",
	}
	for k, want := range wants {
		if got := k.String(); got != want {
			t.Errorf("String(%d) = %q, want %q", int(k), got, want)
		}
	}
}

// TestRunTracesClients: every client produces an arrive, a tune and a
// terminal (serve/abandon) event, in time order.
func TestRunTracesClients(t *testing.T) {
	gs := fig2()
	prog, _, err := pamad.Build(gs, 2)
	if err != nil {
		t.Fatal(err)
	}
	reqs, err := workload.GenerateRequests(gs, prog.Length(), workload.RequestConfig{Count: 50, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	tracer, err := NewRingTracer(10000)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Run(prog, reqs, Config{
		Mode:         ScheduleAware,
		AbandonAfter: 2.0,
		Trace:        tracer.Record,
	})
	if err != nil {
		t.Fatal(err)
	}
	arrives := map[int]int{}
	terminal := map[int]int{}
	var prev float64 = -1
	for _, e := range tracer.Events() {
		if e.Time < prev-1e-9 {
			t.Fatalf("trace out of order at %v", e)
		}
		prev = e.Time
		switch e.Kind {
		case EventArrive:
			arrives[e.Client]++
		case EventServe, EventAbandon:
			terminal[e.Client]++
		}
	}
	for i := range reqs {
		if arrives[i] != 1 {
			t.Errorf("client %d arrived %d times", i, arrives[i])
		}
		if terminal[i] != 1 {
			t.Errorf("client %d has %d terminal events", i, terminal[i])
		}
	}
	if out.Served+out.Abandoned != len(reqs) {
		t.Errorf("accounting mismatch")
	}
}

// TestRunUnderBurstLoss: schedule-aware clients recover from Gilbert-
// Elliott fading bursts — everyone is eventually served, and waits degrade
// monotonically with the fade depth.
func TestRunUnderBurstLoss(t *testing.T) {
	gs := fig2()
	prog, err := susc.BuildMinimal(gs)
	if err != nil {
		t.Fatal(err)
	}
	reqs, err := workload.GenerateRequests(gs, prog.Length(), workload.RequestConfig{Count: 150, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	waitAt := func(lossBad float64) float64 {
		drop, err := airwave.GilbertElliott{
			GoodToBad: 0.4, BadToGood: 0.4, LossGood: 0, LossBad: lossBad, Seed: 6,
		}.DropFunc()
		if err != nil {
			t.Fatal(err)
		}
		out, err := Run(prog, reqs, Config{Mode: ScheduleAware, Drop: drop, MaxSlots: 100000})
		if err != nil {
			t.Fatal(err)
		}
		if out.Served != len(reqs) {
			t.Fatalf("lossBad=%f: served %d of %d", lossBad, out.Served, len(reqs))
		}
		return out.AvgWait
	}
	clean := waitAt(0)
	faded := waitAt(0.9)
	if faded <= clean {
		t.Errorf("deep fades did not increase waits: %f vs %f", faded, clean)
	}
}

// TestPoissonStreamAcrossCycles: a Poisson arrival stream spanning many
// cycles runs through both the fast sampler and the event simulation, and
// the two agree exactly.
func TestPoissonStreamAcrossCycles(t *testing.T) {
	gs := fig2()
	prog, _, err := pamad.Build(gs, 2)
	if err != nil {
		t.Fatal(err)
	}
	reqs, err := workload.GeneratePoissonRequests(gs, workload.PoissonConfig{
		RequestConfig: workload.RequestConfig{Count: 400, Seed: 14},
		Rate:          0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	last := reqs[len(reqs)-1].Arrival
	if last <= float64(prog.Length()) {
		t.Fatalf("stream too short to span cycles: last arrival %f", last)
	}
	fast, err := Measure(prog, reqs)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := Run(prog, reqs, Config{Mode: ScheduleAware})
	if err != nil {
		t.Fatal(err)
	}
	if slow.Served != len(reqs) {
		t.Fatalf("served %d of %d", slow.Served, len(reqs))
	}
	if math.Abs(slow.AvgWait-fast.AvgWait) > 1e-9 {
		t.Errorf("event wait %f != sampler wait %f on a multi-cycle stream", slow.AvgWait, fast.AvgWait)
	}
}

// TestRunWithSlotJitter: jittered slot clocking delays every delivery by
// at most the jitter bound, so schedule-aware clients still all get
// served and the average wait moves by less than one full slot.
func TestRunWithSlotJitter(t *testing.T) {
	gs := fig2()
	prog, err := susc.BuildMinimal(gs)
	if err != nil {
		t.Fatal(err)
	}
	reqs, err := workload.GenerateRequests(gs, prog.Length(), workload.RequestConfig{Count: 300, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	base, err := Run(prog, reqs, Config{Mode: ScheduleAware})
	if err != nil {
		t.Fatal(err)
	}
	jit, err := Run(prog, reqs, Config{
		Mode:   ScheduleAware,
		Jitter: func(slot int) float64 { return float64(slot%2) * 0.4 },
	})
	if err != nil {
		t.Fatal(err)
	}
	if jit.Served != len(reqs) {
		t.Fatalf("jittered run served %d of %d", jit.Served, len(reqs))
	}
	if jit.AvgWait < base.AvgWait {
		t.Errorf("jitter shortened AvgWait: %f < %f", jit.AvgWait, base.AvgWait)
	}
	if jit.AvgWait > base.AvgWait+0.5 {
		t.Errorf("jitter exceeded its bound: %f > %f + 0.5", jit.AvgWait, base.AvgWait)
	}
}
