package sim

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"tcsa/internal/core"
	"tcsa/internal/stats"
	"tcsa/internal/workload"
)

// sketchQuantileAccuracy is the relative bucket width of the wait/delay
// quantile sketches: estimates are within ~1% of the exact order statistic.
const sketchQuantileAccuracy = 0.01

// sketchResolution divides the cycle length to set the smallest resolvable
// wait: anything below L/2^20 slots reports as a zero quantile.
const sketchResolution = 1 << 20

// partial holds the per-shard accumulation state. Shards are disjoint, so
// workers write their shard's partial without synchronisation; the engine
// folds partials in ascending shard order afterwards, which makes every
// float in the result independent of the worker count. waitSum/delaySum
// are plain left-to-right sums so that a single-shard stream reproduces
// the historical stats.Mean arithmetic bit for bit.
type partial struct {
	wait, delay       stats.Online
	waitSum, delaySum float64
	misses            int64
	err               error
}

// pageCursor tracks the appearance-column position of one page while a
// worker walks a sorted shard: k is the smallest index not yet known to
// precede prevU. Arrivals within a shard are non-decreasing, so each
// page's columns are scanned at most once per cycle wrap instead of
// binary-searched per request.
type pageCursor struct {
	k     int32
	prevU float64
}

// nextSorted is Analysis.NextAfter for non-decreasing arrival instants:
// identical arithmetic (so identical bits), but the column index advances
// from the previous request's position instead of restarting a binary
// search. cols must be non-empty.
func nextSorted(pc *pageCursor, cols []int32, u, L float64) float64 {
	if u < pc.prevU {
		pc.k = 0 // the arrival wrapped to a new cycle (or a new shard began)
	}
	pc.prevU = u
	k := pc.k
	// cols holds integers, so cols[k] >= ceil(u) iff float64(cols[k]) >= u:
	// this stops at exactly the index NextAfter's sort.Search finds.
	for int(k) < len(cols) && float64(cols[k]) < u {
		k++
	}
	pc.k = k
	if int(k) == len(cols) {
		return float64(cols[0]) + L - u
	}
	return float64(cols[k]) - u
}

// MeasureStream evaluates a request stream against a finished program's
// analysis without materialising the requests or retaining samples: one
// pass, O(1) memory in the request count. It is the serial core of
// MeasureParallel and produces bit-identical Metrics to it at any worker
// count.
func MeasureStream(a *core.Analysis, stream workload.Stream) (*Metrics, error) {
	return MeasureParallel(a, stream, 1)
}

// MeasureParallel is MeasureStream sharded across a worker pool: workers
// claim fixed-size stream shards (workload.ShardSize requests) from an
// atomic counter, accumulate per-shard partials and per-worker quantile
// sketches, and the engine folds the partials in ascending shard order.
// Shard boundaries and fold order depend only on the stream, so the
// returned Metrics are bit-for-bit identical for any worker count,
// including 1 (the serial path). workers <= 0 uses GOMAXPROCS.
func MeasureParallel(a *core.Analysis, stream workload.Stream, workers int) (*Metrics, error) {
	if a == nil {
		return nil, errors.New("sim: nil analysis")
	}
	if stream == nil {
		return nil, errors.New("sim: nil stream")
	}
	count := stream.Count()
	if count == 0 {
		return &Metrics{}, nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	shards := stream.Shards()
	if workers > shards {
		workers = shards
	}

	gs := a.Program().GroupSet()
	ix := a.Index()
	pages := gs.Pages()
	L := float64(a.Program().Length())
	sorted := stream.Sorted()
	// Per-page expected times, precomputed once: GroupSet.TimeOf binary-
	// searches the group table, which is too hot for the per-request loop.
	times := make([]float64, pages)
	for i := range times {
		times[i] = float64(gs.TimeOf(core.PageID(i)))
	}

	partials := make([]partial, shards)
	waitSketches := make([]*stats.Sketch, workers)
	delaySketches := make([]*stats.Sketch, workers)

	var nextShard atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	var sketchErr atomic.Value
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(widx int) {
			defer wg.Done()
			ws, err1 := stats.NewSketch(L/sketchResolution, L, sketchQuantileAccuracy)
			ds, err2 := stats.NewSketch(L/sketchResolution, L, sketchQuantileAccuracy)
			if err1 != nil || err2 != nil {
				sketchErr.Store(errors.Join(err1, err2))
				failed.Store(true)
				return
			}
			waitSketches[widx] = ws
			delaySketches[widx] = ds
			cur := stream.NewCursor()
			var cursors []pageCursor
			if sorted {
				cursors = make([]pageCursor, pages)
			}
			var r workload.Request
			for {
				if failed.Load() {
					return
				}
				k := int(nextShard.Add(1)) - 1
				if k >= shards {
					return
				}
				p := &partials[k]
				cur.Seek(k)
				for local := 0; cur.Next(&r); local++ {
					if r.Page < 0 || int(r.Page) >= pages {
						p.err = fmt.Errorf("%w: request %d page %d",
							core.ErrPageRange, k*workload.ShardSize+local, r.Page)
						failed.Store(true)
						return
					}
					if r.Arrival < 0 {
						p.err = fmt.Errorf("%w: request %d arrival %f negative",
							core.ErrSlotRange, k*workload.ShardSize+local, r.Arrival)
						failed.Store(true)
						return
					}
					// The program is cyclic, so arrivals beyond the first
					// cycle (e.g. Poisson streams) fold back into it.
					u := math.Mod(r.Arrival, L)
					var wait float64
					if cols := ix.Columns(r.Page); len(cols) == 0 {
						wait = L
					} else if sorted {
						wait = nextSorted(&cursors[r.Page], cols, u, L)
					} else {
						wait = a.NextAfter(r.Page, u)
					}
					delay := wait - times[r.Page]
					if delay < 0 {
						delay = 0
					} else if delay > 0 {
						p.misses++
					}
					p.wait.Add(wait)
					p.delay.Add(delay)
					p.waitSum += wait
					p.delaySum += delay
					ws.Add(wait)
					ds.Add(delay)
				}
			}
		}(w)
	}
	wg.Wait()

	// Shards are claimed in ascending order and each claimed shard runs to
	// completion, so the lowest-index error is always recorded: the error a
	// caller sees does not depend on worker scheduling.
	for k := range partials {
		if partials[k].err != nil {
			return nil, partials[k].err
		}
	}
	if err, _ := sketchErr.Load().(error); err != nil {
		return nil, err
	}

	// Fold partials in shard order (fixed, worker-independent) and sketches
	// in worker order (bucket counts are integers, so any order gives the
	// same quantiles).
	var wait, delay stats.Online
	var waitSum, delaySum float64
	var misses int64
	for k := range partials {
		wait.Merge(partials[k].wait)
		delay.Merge(partials[k].delay)
		waitSum += partials[k].waitSum
		delaySum += partials[k].delaySum
		misses += partials[k].misses
	}
	waitSketch, delaySketch := waitSketches[0], delaySketches[0]
	for w := 1; w < workers; w++ {
		if waitSketches[w] == nil {
			continue // worker exited before claiming a shard
		}
		if err := waitSketch.Merge(waitSketches[w]); err != nil {
			return nil, err
		}
		if err := delaySketch.Merge(delaySketches[w]); err != nil {
			return nil, err
		}
	}

	return &Metrics{
		Requests:  count,
		AvgWait:   waitSum / float64(count),
		AvgDelay:  delaySum / float64(count),
		MissRatio: float64(misses) / float64(count),
		Wait:      streamSummary(wait, waitSketch),
		Delay:     streamSummary(delay, delaySketch),
	}, nil
}

// streamSummary assembles a Summary from the exactly folded moments and
// the merged quantile sketch.
func streamSummary(o stats.Online, sk *stats.Sketch) stats.Summary {
	return stats.Summary{
		N:      int(o.N()),
		Mean:   o.Mean(),
		StdDev: o.StdDev(),
		Min:    o.Min(),
		Max:    o.Max(),
		P50:    sk.Quantile(0.50),
		P95:    sk.Quantile(0.95),
		P99:    sk.Quantile(0.99),
	}
}
