// Package sim measures what clients actually experience under a broadcast
// program: waiting time, delay beyond the expected time (the paper's AvgD
// metric), deadline-miss ratio and abandonment.
//
// Two measurement modes are provided:
//
//   - Measure: a fast sampler that evaluates a request stream directly
//     against the program's appearance structure (core.Analysis). This is
//     what the Figure 5 reproduction uses — the paper's "3000 requests"
//     evaluation — and it agrees with the closed-form expectation by
//     construction. It runs on a streaming, worker-sharded engine
//     (MeasureStream / MeasureParallel) that holds O(1) sample memory
//     regardless of the request count; see docs/perf.md.
//   - Run: a full discrete-event simulation on the airwave substrate, with
//     schedule-aware or blind-scanning single-tuner clients, optional frame
//     loss, and an impatience model in which clients abandon the broadcast
//     channel after a multiple of their expected time (the paper's
//     Section 1 motivation for bounding waits: abandonments become pull
//     requests that congest the on-demand channel).
//
//lint:deterministic bit-identical replay contract: no wall clock, no global RNG, no map-order folds
package sim

import (
	"errors"

	"tcsa/internal/core"
	"tcsa/internal/stats"
	"tcsa/internal/workload"
)

// Metrics aggregates per-request outcomes of a measurement. AvgWait,
// AvgDelay, MissRatio and the Summary moment fields (N, Mean, StdDev, Min,
// Max) are exact; the Summary quantiles (P50/P95/P99) from the streaming
// sampler are stats.Sketch estimates within ~1% of the exact order
// statistic (the full simulation in Run still reports exact quantiles).
type Metrics struct {
	Requests  int
	AvgWait   float64 // mean slots from tune-in to reception
	AvgDelay  float64 // mean slots beyond the expected time (paper's AvgD)
	MissRatio float64 // fraction of requests served after their expected time
	Wait      stats.Summary
	Delay     stats.Summary
}

// Measure evaluates a request stream against a finished program using its
// appearance structure: each request waits from its arrival instant to the
// next broadcast of its page on any channel (the multi-channel, schedule-
// aware model under which the paper's AvgD is defined).
func Measure(prog *core.Program, reqs []workload.Request) (*Metrics, error) {
	if prog == nil {
		return nil, errors.New("sim: nil program")
	}
	a := core.Analyze(prog)
	return MeasureAnalyzed(a, reqs)
}

// MeasureAnalyzed is Measure for callers that already hold the Analysis
// (e.g. sweeps that reuse it across request batches). It is a thin wrapper
// over the streaming engine: the request slice is consumed through
// workload.SliceStream and MeasureStream, so the scalar metrics and
// Summary moments are bit-for-bit what the historical slice-based sampler
// produced (see TestMeasureStreamPinsLegacySampler).
func MeasureAnalyzed(a *core.Analysis, reqs []workload.Request) (*Metrics, error) {
	return MeasureStream(a, workload.SliceStream(reqs))
}
