// Package sim measures what clients actually experience under a broadcast
// program: waiting time, delay beyond the expected time (the paper's AvgD
// metric), deadline-miss ratio and abandonment.
//
// Two measurement modes are provided:
//
//   - Measure: a fast sampler that evaluates a request stream directly
//     against the program's appearance structure (core.Analysis). This is
//     what the Figure 5 reproduction uses — the paper's "3000 requests"
//     evaluation — and it agrees with the closed-form expectation by
//     construction.
//   - Run: a full discrete-event simulation on the airwave substrate, with
//     schedule-aware or blind-scanning single-tuner clients, optional frame
//     loss, and an impatience model in which clients abandon the broadcast
//     channel after a multiple of their expected time (the paper's
//     Section 1 motivation for bounding waits: abandonments become pull
//     requests that congest the on-demand channel).
package sim

import (
	"errors"
	"fmt"
	"math"

	"tcsa/internal/core"
	"tcsa/internal/stats"
	"tcsa/internal/workload"
)

// Metrics aggregates per-request outcomes of a measurement.
type Metrics struct {
	Requests  int
	AvgWait   float64 // mean slots from tune-in to reception
	AvgDelay  float64 // mean slots beyond the expected time (paper's AvgD)
	MissRatio float64 // fraction of requests served after their expected time
	Wait      stats.Summary
	Delay     stats.Summary
}

// Measure evaluates a request stream against a finished program using its
// appearance structure: each request waits from its arrival instant to the
// next broadcast of its page on any channel (the multi-channel, schedule-
// aware model under which the paper's AvgD is defined).
func Measure(prog *core.Program, reqs []workload.Request) (*Metrics, error) {
	if prog == nil {
		return nil, errors.New("sim: nil program")
	}
	a := core.Analyze(prog)
	return MeasureAnalyzed(a, reqs)
}

// MeasureAnalyzed is Measure for callers that already hold the Analysis
// (e.g. sweeps that reuse it across request batches).
func MeasureAnalyzed(a *core.Analysis, reqs []workload.Request) (*Metrics, error) {
	if a == nil {
		return nil, errors.New("sim: nil analysis")
	}
	gs := a.Program().GroupSet()
	L := float64(a.Program().Length())
	waits := make([]float64, 0, len(reqs))
	delays := make([]float64, 0, len(reqs))
	misses := 0
	for i, r := range reqs {
		if r.Page < 0 || int(r.Page) >= gs.Pages() {
			return nil, fmt.Errorf("%w: request %d page %d", core.ErrPageRange, i, r.Page)
		}
		if r.Arrival < 0 {
			return nil, fmt.Errorf("%w: request %d arrival %f negative", core.ErrSlotRange, i, r.Arrival)
		}
		// The program is cyclic, so arrivals beyond the first cycle (e.g.
		// Poisson streams) fold back into it.
		wait := a.NextAfter(r.Page, math.Mod(r.Arrival, L))
		delay := wait - float64(gs.TimeOf(r.Page))
		if delay < 0 {
			delay = 0
		} else if delay > 0 {
			misses++
		}
		waits = append(waits, wait)
		delays = append(delays, delay)
	}
	m := &Metrics{
		Requests: len(reqs),
		AvgWait:  stats.Mean(waits),
		AvgDelay: stats.Mean(delays),
		Wait:     stats.Summarize(waits),
		Delay:    stats.Summarize(delays),
	}
	if len(reqs) > 0 {
		m.MissRatio = float64(misses) / float64(len(reqs))
	}
	return m, nil
}
