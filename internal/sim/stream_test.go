package sim

import (
	"errors"
	"math"
	"sort"
	"testing"

	"tcsa/internal/core"
	"tcsa/internal/pamad"
	"tcsa/internal/stats"
	"tcsa/internal/workload"
)

// legacyMeasure is the pre-streaming MeasureAnalyzed loop, kept verbatim as
// the oracle the streaming engine is pinned against: materialise every
// sample, naive means, full sorts.
func legacyMeasure(t *testing.T, a *core.Analysis, reqs []workload.Request) *Metrics {
	t.Helper()
	gs := a.Program().GroupSet()
	L := float64(a.Program().Length())
	waits := make([]float64, 0, len(reqs))
	delays := make([]float64, 0, len(reqs))
	misses := 0
	for _, r := range reqs {
		wait := a.NextAfter(r.Page, math.Mod(r.Arrival, L))
		delay := wait - float64(gs.TimeOf(r.Page))
		if delay < 0 {
			delay = 0
		} else if delay > 0 {
			misses++
		}
		waits = append(waits, wait)
		delays = append(delays, delay)
	}
	m := &Metrics{
		Requests: len(reqs),
		AvgWait:  stats.Mean(waits),
		AvgDelay: stats.Mean(delays),
		Wait:     stats.Summarize(waits),
		Delay:    stats.Summarize(delays),
	}
	if len(reqs) > 0 {
		m.MissRatio = float64(misses) / float64(len(reqs))
	}
	return m
}

// requireBitwiseCore asserts the exact fields of two Metrics — everything
// except the Summary quantiles, which moved from exact sorts to sketch
// estimates — are bit-for-bit equal.
func requireBitwiseCore(t *testing.T, label string, got, want *Metrics) {
	t.Helper()
	type field struct {
		name      string
		got, want float64
	}
	fields := []field{
		{"AvgWait", got.AvgWait, want.AvgWait},
		{"AvgDelay", got.AvgDelay, want.AvgDelay},
		{"MissRatio", got.MissRatio, want.MissRatio},
		{"Wait.Mean", got.Wait.Mean, want.Wait.Mean},
		{"Wait.StdDev", got.Wait.StdDev, want.Wait.StdDev},
		{"Wait.Min", got.Wait.Min, want.Wait.Min},
		{"Wait.Max", got.Wait.Max, want.Wait.Max},
		{"Delay.Mean", got.Delay.Mean, want.Delay.Mean},
		{"Delay.StdDev", got.Delay.StdDev, want.Delay.StdDev},
		{"Delay.Min", got.Delay.Min, want.Delay.Min},
		{"Delay.Max", got.Delay.Max, want.Delay.Max},
	}
	if got.Requests != want.Requests {
		t.Errorf("%s: Requests = %d, want %d", label, got.Requests, want.Requests)
	}
	for _, f := range fields {
		if math.Float64bits(f.got) != math.Float64bits(f.want) {
			t.Errorf("%s: %s = %v (%#x), want %v (%#x)", label, f.name,
				f.got, math.Float64bits(f.got), f.want, math.Float64bits(f.want))
		}
	}
}

// TestMeasureStreamPinsLegacySampler: the streaming engine reproduces the
// historical materialise-and-sort sampler bit for bit on every exact field,
// on both the binary-search path (unsorted arrivals) and the cursor path
// (sorted arrivals), and its sketch quantiles track the exact ones.
func TestMeasureStreamPinsLegacySampler(t *testing.T) {
	gs := fig2()
	prog, _, err := pamad.Build(gs, 2) // insufficient channels: nonzero delays
	if err != nil {
		t.Fatal(err)
	}
	a := core.Analyze(prog)

	uniform, err := workload.GenerateRequests(gs, prog.Length(), workload.RequestConfig{Count: 3000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	poisson, err := workload.GeneratePoissonRequests(gs, workload.PoissonConfig{
		RequestConfig: workload.RequestConfig{Count: 3000, Seed: 6},
		Rate:          0.7,
	})
	if err != nil {
		t.Fatal(err)
	}
	sortedUniform := append([]workload.Request(nil), uniform...)
	sort.Slice(sortedUniform, func(i, j int) bool {
		return sortedUniform[i].Arrival < sortedUniform[j].Arrival
	})

	cases := []struct {
		label  string
		reqs   []workload.Request
		sorted bool
	}{
		{"uniform-unsorted", uniform, false},
		{"poisson-sorted", poisson, true}, // multi-cycle arrivals: cursor wraps
		{"uniform-sorted", sortedUniform, true},
	}
	for _, tc := range cases {
		stream := workload.SliceStream(tc.reqs)
		if stream.Sorted() != tc.sorted {
			t.Fatalf("%s: Sorted() = %v, want %v", tc.label, stream.Sorted(), tc.sorted)
		}
		want := legacyMeasure(t, a, tc.reqs)
		got, err := MeasureAnalyzed(a, tc.reqs)
		if err != nil {
			t.Fatal(err)
		}
		requireBitwiseCore(t, tc.label, got, want)
		// Sketch quantiles: within 2% of the exact sorted percentiles (1%
		// bucket width plus closest-rank vs interpolation slack), except
		// that sub-resolution exact values must report 0.
		checkQ := func(name string, gotQ, exactQ float64) {
			lo := float64(prog.Length()) / (1 << 20)
			if exactQ <= lo {
				if gotQ != 0 {
					t.Errorf("%s: %s = %g for sub-resolution exact %g, want 0", tc.label, name, gotQ, exactQ)
				}
				return
			}
			if gotQ < exactQ/1.03-1e-9 || gotQ > exactQ*1.03+1e-9 {
				t.Errorf("%s: %s = %g, exact %g", tc.label, name, gotQ, exactQ)
			}
		}
		checkQ("Wait.P50", got.Wait.P50, want.Wait.P50)
		checkQ("Wait.P95", got.Wait.P95, want.Wait.P95)
		checkQ("Wait.P99", got.Wait.P99, want.Wait.P99)
		checkQ("Delay.P99", got.Delay.P99, want.Delay.P99)
	}
}

// bigStreams builds multi-shard streams (several ShardSize shards) of each
// flavour over the paper's default-scale instance.
func bigStreams(t *testing.T, gs *core.GroupSet, cycleLen, count int) map[string]workload.Stream {
	t.Helper()
	gen, err := workload.NewStream(gs, cycleLen, workload.RequestConfig{Count: count, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	zipf, err := workload.NewStream(gs, cycleLen, workload.RequestConfig{
		Count: count, Seed: 12, Choice: workload.ZipfPages, Theta: 0.8,
	})
	if err != nil {
		t.Fatal(err)
	}
	poisson, err := workload.NewPoissonStream(gs, workload.PoissonConfig{
		RequestConfig: workload.RequestConfig{Count: count, Seed: 13},
		Rate:          1.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	return map[string]workload.Stream{"uniform": gen, "zipf": zipf, "poisson": poisson}
}

// TestMeasureParallelDeterminism: on the paper's default instance, 1, 2 and
// 8 workers produce Metrics bit-for-bit equal to the serial wrapper, for
// generated (multi-shard) and slice-backed streams alike.
func TestMeasureParallelDeterminism(t *testing.T) {
	gs := fig2()
	prog, _, err := pamad.Build(gs, 2)
	if err != nil {
		t.Fatal(err)
	}
	a := core.Analyze(prog)
	const count = 3*workload.ShardSize + 1234 // 4 shards, last one ragged

	streams := bigStreams(t, gs, prog.Length(), count)
	// A slice stream too: materialise the uniform stream through a cursor.
	reqs := make([]workload.Request, 0, count)
	cur := streams["uniform"].NewCursor()
	for k := 0; k < streams["uniform"].Shards(); k++ {
		cur.Seek(k)
		var r workload.Request
		for cur.Next(&r) {
			reqs = append(reqs, r)
		}
	}
	if len(reqs) != count {
		t.Fatalf("cursor yielded %d of %d requests", len(reqs), count)
	}
	streams["slice"] = workload.SliceStream(reqs)

	for label, stream := range streams {
		serial, err := MeasureStream(a, stream)
		if err != nil {
			t.Fatal(err)
		}
		if serial.Requests != count {
			t.Fatalf("%s: measured %d requests", label, serial.Requests)
		}
		for _, workers := range []int{1, 2, 8} {
			par, err := MeasureParallel(a, stream, workers)
			if err != nil {
				t.Fatal(err)
			}
			requireBitwiseCore(t, label, par, serial)
			for _, q := range []struct {
				name      string
				got, want float64
			}{
				{"Wait.P50", par.Wait.P50, serial.Wait.P50},
				{"Wait.P95", par.Wait.P95, serial.Wait.P95},
				{"Wait.P99", par.Wait.P99, serial.Wait.P99},
				{"Delay.P50", par.Delay.P50, serial.Delay.P50},
				{"Delay.P95", par.Delay.P95, serial.Delay.P95},
				{"Delay.P99", par.Delay.P99, serial.Delay.P99},
			} {
				if math.Float64bits(q.got) != math.Float64bits(q.want) {
					t.Errorf("%s workers=%d: %s = %v, serial %v", label, workers, q.name, q.got, q.want)
				}
			}
		}
	}
}

// TestMeasureParallelMatchesLegacyOnGeneratedStream: a generated single-
// shard stream reproduces GenerateRequests + the legacy loop bit for bit —
// the contract that keeps Figure 5 checksums frozen.
func TestMeasureParallelMatchesLegacyOnGeneratedStream(t *testing.T) {
	gs := fig2()
	prog, _, err := pamad.Build(gs, 2)
	if err != nil {
		t.Fatal(err)
	}
	a := core.Analyze(prog)
	cfg := workload.RequestConfig{Count: 3000, Seed: 77}
	reqs, err := workload.GenerateRequests(gs, prog.Length(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	stream, err := workload.NewStream(gs, prog.Length(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := legacyMeasure(t, a, reqs)
	got, err := MeasureStream(a, stream)
	if err != nil {
		t.Fatal(err)
	}
	requireBitwiseCore(t, "generated", got, want)
}

// TestMeasureParallelRace exercises the engine under many workers and all
// stream flavours; its real assertions run under `go test -race` in CI.
func TestMeasureParallelRace(t *testing.T) {
	gs := fig2()
	prog, _, err := pamad.Build(gs, 2)
	if err != nil {
		t.Fatal(err)
	}
	a := core.Analyze(prog)
	for label, stream := range bigStreams(t, gs, prog.Length(), 2*workload.ShardSize+99) {
		m, err := MeasureParallel(a, stream, 0) // GOMAXPROCS workers
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		if m.Requests != stream.Count() || m.AvgWait <= 0 {
			t.Errorf("%s: implausible metrics %+v", label, m)
		}
	}
}

// TestMeasureParallelErrors: validation failures surface the lowest global
// request index regardless of worker count, and nil inputs are rejected.
func TestMeasureParallelErrors(t *testing.T) {
	gs := fig2()
	prog, _ := core.NewProgram(gs, 1, 4)
	a := core.Analyze(prog)
	if _, err := MeasureStream(nil, workload.SliceStream(nil)); err == nil {
		t.Error("nil analysis accepted")
	}
	if _, err := MeasureStream(a, nil); err == nil {
		t.Error("nil stream accepted")
	}

	reqs := make([]workload.Request, workload.ShardSize+10)
	for i := range reqs {
		reqs[i] = workload.Request{Page: 0, Arrival: float64(i % 4)}
	}
	reqs[workload.ShardSize+3] = workload.Request{Page: 99, Arrival: 0}
	for _, workers := range []int{1, 4} {
		_, err := MeasureParallel(a, workload.SliceStream(reqs), workers)
		if !errors.Is(err, core.ErrPageRange) {
			t.Fatalf("workers=%d: err = %v, want ErrPageRange", workers, err)
		}
	}
	reqs[workload.ShardSize+3] = workload.Request{Page: 0, Arrival: -0.5}
	if _, err := MeasureParallel(a, workload.SliceStream(reqs), 4); !errors.Is(err, core.ErrSlotRange) {
		t.Fatalf("err = %v, want ErrSlotRange", err)
	}
	// Two bad shards: the lower-indexed one wins deterministically.
	reqs[5] = workload.Request{Page: -1, Arrival: 0}
	for _, workers := range []int{1, 4} {
		_, err := MeasureParallel(a, workload.SliceStream(reqs), workers)
		if !errors.Is(err, core.ErrPageRange) {
			t.Fatalf("workers=%d: err = %v, want ErrPageRange from shard 0", workers, err)
		}
	}

	m, err := MeasureStream(a, workload.SliceStream(nil))
	if err != nil {
		t.Fatal(err)
	}
	if m.Requests != 0 || m.AvgDelay != 0 {
		t.Error("empty stream not zeroed")
	}
}

// TestMeasureAllocsIndependentOfRequestCount pins the O(1) sample memory
// claim: the allocation count of a measurement does not grow with the
// request count (only with worker count and shard-table size, both fixed
// here by using the same worker count at both sizes).
func TestMeasureAllocsIndependentOfRequestCount(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation counting over multi-shard streams is slow")
	}
	gs := fig2()
	prog, _, err := pamad.Build(gs, 2)
	if err != nil {
		t.Fatal(err)
	}
	a := core.Analyze(prog)
	allocs := func(count int) float64 {
		stream, err := workload.NewStream(gs, prog.Length(), workload.RequestConfig{Count: count, Seed: 21})
		if err != nil {
			t.Fatal(err)
		}
		return testing.AllocsPerRun(2, func() {
			if _, err := MeasureParallel(a, stream, 2); err != nil {
				t.Fatal(err)
			}
		})
	}
	small := allocs(2 * workload.ShardSize)
	big := allocs(8 * workload.ShardSize)
	// The shard-partial table is the only thing that scales (one slice
	// either way); everything else must be flat.
	if big > small+2 {
		t.Errorf("allocs grew with request count: %v at 128K vs %v at 512K requests", small, big)
	}
}

// TestNextSortedAgreesWithNextAfter cross-checks the cursor against the
// binary search on adversarial arrival sequences (wraps, repeats, exact
// column hits).
func TestNextSortedAgreesWithNextAfter(t *testing.T) {
	gs := fig2()
	prog, _, err := pamad.Build(gs, 2)
	if err != nil {
		t.Fatal(err)
	}
	a := core.Analyze(prog)
	L := float64(prog.Length())
	for id := 0; id < gs.Pages(); id++ {
		cols := a.Index().Columns(core.PageID(id))
		if len(cols) == 0 {
			continue
		}
		var pc pageCursor
		// Non-decreasing instants with repeats and exact hits, then a wrap.
		us := []float64{0, 0, 0.5, float64(cols[0]), float64(cols[0]), L - 0.25}
		us = append(us, 0.125, 1, L-1e-9) // wrapped cycle
		for _, u := range us {
			got := nextSorted(&pc, cols, u, L)
			want := a.NextAfter(core.PageID(id), u)
			if math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("page %d u=%v: cursor %v, NextAfter %v", id, u, got, want)
			}
		}
	}
}
