package replan

import (
	"testing"

	"tcsa/internal/core"
	"tcsa/internal/pamad"
)

// FuzzReplanEquivalence is the adversarial half of the tentpole gate: an
// arbitrary instance shape and an arbitrary byte-driven edit script run
// through one live engine, and after every edit the live program must be
// bit-identical to pamad placement rerun from scratch on the edited
// instance, with the engine's derived frequencies and accounting matching
// the scratch run exactly.
func FuzzReplanEquivalence(f *testing.F) {
	f.Add(2, 2, uint8(3), uint8(5), uint8(3), 3, []byte{0x00, 0x41, 0x82, 0xc3})
	f.Add(4, 2, uint8(20), uint8(30), uint8(40), 5, []byte{0x01, 0x01, 0x41, 0x41, 0x85})
	f.Add(1, 3, uint8(1), uint8(0), uint8(9), 1, []byte{0xff, 0x00, 0x7f})
	f.Add(8, 4, uint8(60), uint8(60), uint8(60), 9, []byte{0x02, 0x42, 0x82, 0xc2, 0x03})
	f.Fuzz(func(t *testing.T, t1, c int, p1, p2, p3 uint8, nReal int, script []byte) {
		if t1 > 64 || c > 8 || nReal < 1 || nReal > 16 || len(script) > 24 {
			return
		}
		var counts []int
		for _, p := range []uint8{p1, p2, p3} {
			if p > 0 {
				counts = append(counts, int(p))
			}
		}
		if len(counts) == 0 {
			return
		}
		gs, err := core.Geometric(t1, c, counts)
		if err != nil {
			return
		}
		eng, err := New(gs, nReal)
		if err != nil {
			// Valid Geometric instances always derive frequencies at
			// nReal >= 1; a failure here is a real bug.
			t.Fatalf("New(%v, %d): %v", gs, nReal, err)
		}
		for step, op := range script {
			// Top two bits pick the event, the rest parameterise it.
			arg := int(op & 0x3f)
			var d *Delta
			var evErr error
			switch op >> 6 {
			case 0:
				d, evErr = eng.AddPage(arg % eng.GroupSet().Len())
			case 1:
				g := arg % eng.GroupSet().Len()
				if eng.GroupSet().Group(g).Count == 1 {
					continue
				}
				d, evErr = eng.RetirePage(g)
			case 2:
				d, evErr = eng.SetChannels(1 + arg%16)
			default:
				// Halve or double group 0's time when the chain allows it.
				gsCur := eng.GroupSet()
				t0 := gsCur.Group(0).Time
				tNew := t0 * 2
				if arg%2 == 0 && t0%2 == 0 {
					tNew = t0 / 2
				}
				if gsCur.Len() > 1 && (tNew >= gsCur.Group(1).Time || gsCur.Group(1).Time%tNew != 0) {
					continue
				}
				d, evErr = eng.SetExpectedTime(0, tNew)
			}
			if evErr != nil {
				t.Fatalf("step %d (op %#x): %v", step, op, evErr)
			}

			s, _, err := pamad.Frequencies(eng.GroupSet(), eng.Channels())
			if err != nil {
				t.Fatalf("step %d: scratch frequencies: %v", step, err)
			}
			if !s.Equal(eng.Frequencies()) {
				t.Fatalf("step %d: engine frequencies %v, scratch %v", step, eng.Frequencies(), s)
			}
			want, wantStats, err := pamad.PlaceEvenly(eng.GroupSet(), s, eng.Channels())
			if err != nil {
				t.Fatalf("step %d: scratch placement: %v", step, err)
			}
			got := eng.Program()
			if got.Channels() != want.Channels() || got.Length() != want.Length() ||
				got.Filled() != want.Filled() {
				t.Fatalf("step %d (kind %v): live %dx%d/%d cells, scratch %dx%d/%d",
					step, d.Kind, got.Channels(), got.Length(), got.Filled(),
					want.Channels(), want.Length(), want.Filled())
			}
			for ch := 0; ch < want.Channels(); ch++ {
				for slot := 0; slot < want.Length(); slot++ {
					if got.At(ch, slot) != want.At(ch, slot) {
						t.Fatalf("step %d (kind %v): cell (%d,%d) = %d, scratch %d",
							step, d.Kind, ch, slot, got.At(ch, slot), want.At(ch, slot))
					}
				}
			}
			if eng.Stats() != wantStats {
				t.Fatalf("step %d (kind %v): stats %+v, scratch %+v", step, d.Kind, eng.Stats(), wantStats)
			}
		}
	})
}
