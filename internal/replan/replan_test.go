package replan

import (
	"math/rand"
	"testing"

	"tcsa/internal/core"
	"tcsa/internal/pamad"
)

// scratch builds the from-scratch PAMAD program for (gs, nReal): the ground
// truth every incremental edit is pinned against.
func scratch(t *testing.T, gs *core.GroupSet, nReal int) *core.Program {
	t.Helper()
	s, _, err := pamad.Frequencies(gs, nReal)
	if err != nil {
		t.Fatalf("Frequencies(%v, %d): %v", gs, nReal, err)
	}
	prog, _, err := pamad.PlaceEvenly(gs, s, nReal)
	if err != nil {
		t.Fatalf("PlaceEvenly(%v, %v, %d): %v", gs, s, nReal, err)
	}
	return prog
}

func gridsEqual(t *testing.T, step int, got, want *core.Program) {
	t.Helper()
	if got.Channels() != want.Channels() || got.Length() != want.Length() {
		t.Fatalf("step %d: grid shape %dx%d, want %dx%d",
			step, got.Channels(), got.Length(), want.Channels(), want.Length())
	}
	if got.Filled() != want.Filled() {
		t.Fatalf("step %d: Filled = %d, want %d", step, got.Filled(), want.Filled())
	}
	for ch := 0; ch < want.Channels(); ch++ {
		for slot := 0; slot < want.Length(); slot++ {
			if got.At(ch, slot) != want.At(ch, slot) {
				t.Fatalf("step %d: cell (%d,%d) = %d, want %d",
					step, ch, slot, got.At(ch, slot), want.At(ch, slot))
			}
		}
	}
}

// applyDelta replays an incremental Delta against a snapshot of the pre-edit
// grid: clear the vacated cells (checking they held the advertised pages),
// remap every surviving ID, write the placed cells into empty slots. The
// result must reproduce the post-edit program exactly — the Delta is a
// complete description of the edit, which is what lets the broadcast layer
// patch live state instead of diffing two grids.
func applyDelta(t *testing.T, step int, old *core.Program, d *Delta, want *core.Program) {
	t.Helper()
	type cell struct{ ch, col int }
	grid := make(map[cell]core.PageID, old.Filled())
	for ch := 0; ch < old.Channels(); ch++ {
		for col := 0; col < old.Length(); col++ {
			if id := old.At(ch, col); id != core.None {
				grid[cell{ch, col}] = id
			}
		}
	}
	for _, c := range d.Cleared {
		got, ok := grid[cell{c.Channel, c.Column}]
		if !ok || got != c.Page {
			t.Fatalf("step %d: cleared cell (%d,%d) advertises page %d, grid holds %d",
				step, c.Channel, c.Column, c.Page, got)
		}
		delete(grid, cell{c.Channel, c.Column})
	}
	for k, id := range grid {
		nid := d.RemapPage(id)
		if nid == core.None {
			t.Fatalf("step %d: surviving cell (%d,%d) page %d remaps to None", step, k.ch, k.col, id)
		}
		grid[k] = nid
	}
	for _, c := range d.Placed {
		if prev, ok := grid[cell{c.Channel, c.Column}]; ok {
			t.Fatalf("step %d: placed cell (%d,%d) already holds %d", step, c.Channel, c.Column, prev)
		}
		grid[cell{c.Channel, c.Column}] = c.Page
	}
	if len(grid) != want.Filled() {
		t.Fatalf("step %d: delta application yields %d cells, want %d", step, len(grid), want.Filled())
	}
	for ch := 0; ch < want.Channels(); ch++ {
		for col := 0; col < want.Length(); col++ {
			wantID := want.At(ch, col)
			gotID, ok := grid[cell{ch, col}]
			if !ok {
				gotID = core.None
			}
			if gotID != wantID {
				t.Fatalf("step %d: delta-applied cell (%d,%d) = %d, want %d", step, ch, col, gotID, wantID)
			}
		}
	}
}

func checkAccounting(t *testing.T, step int, d *Delta) {
	t.Helper()
	switch d.Kind {
	case KindNone, KindRebuild:
		if d.Cleared != nil || d.Placed != nil {
			t.Fatalf("step %d: %v delta carries cell lists", step, d.Kind)
		}
	default:
		if d.ClearedCells != len(d.Cleared) || d.PlacedCells != len(d.Placed) {
			t.Fatalf("step %d: cell counts %d/%d disagree with lists %d/%d",
				step, d.ClearedCells, d.PlacedCells, len(d.Cleared), len(d.Placed))
		}
		if d.Unchanged+d.Moved+d.Added != d.PlacedCells {
			t.Fatalf("step %d: unchanged %d + moved %d + added %d != placed %d",
				step, d.Unchanged, d.Moved, d.Added, d.PlacedCells)
		}
		if d.Evicted > d.ClearedCells {
			t.Fatalf("step %d: evicted %d > cleared %d", step, d.Evicted, d.ClearedCells)
		}
	}
}

// TestEngineMatchesScratchUnderEditSequences is the tentpole differential
// gate: drive one engine through long random edit sequences — pages added
// and retired across all groups, deadlines tightened and relaxed, the
// channel budget resized — and after every single edit require the live
// program to be bit-identical to pamad placement rerun from scratch on the
// edited instance, the Delta to reproduce the edit exactly when applied to
// the pre-edit grid, and the program to stay paper-valid.
func TestEngineMatchesScratchUnderEditSequences(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	kinds := map[Kind]int{}
	for run := 0; run < 8; run++ {
		groups := make([]core.Group, 1+rng.Intn(4))
		tt := 2 + rng.Intn(4)
		for i := range groups {
			groups[i] = core.Group{Time: tt, Count: 2 + rng.Intn(20)}
			tt *= 2
		}
		gs := core.MustGroupSet(groups)
		nReal := 1 + rng.Intn(8)
		eng, err := New(gs, nReal)
		if err != nil {
			t.Fatal(err)
		}
		gridsEqual(t, -1, eng.Program(), scratch(t, gs, nReal))

		for step := 0; step < 60; step++ {
			before := eng.Snapshot()
			var d *Delta
			var evErr error
			switch rng.Intn(5) {
			case 0:
				d, evErr = eng.AddPage(rng.Intn(eng.GroupSet().Len()))
			case 1:
				g := rng.Intn(eng.GroupSet().Len())
				if eng.GroupSet().Group(g).Count == 1 {
					continue
				}
				d, evErr = eng.RetirePage(g)
			case 2:
				gsCur := eng.GroupSet()
				t0 := gsCur.Group(0).Time
				tNew := t0 * 2
				if rng.Intn(2) == 0 && t0%2 == 0 {
					tNew = t0 / 2
				}
				if gsCur.Len() > 1 && (tNew >= gsCur.Group(1).Time || gsCur.Group(1).Time%tNew != 0) {
					continue
				}
				d, evErr = eng.SetExpectedTime(0, tNew)
			case 3:
				d, evErr = eng.SetChannels(1 + rng.Intn(8))
			default:
				d, evErr = eng.SetChannels(eng.Channels())
			}
			if evErr != nil {
				t.Fatalf("run %d step %d: %v", run, step, evErr)
			}
			kinds[d.Kind]++
			if d.Seq != eng.Seq() {
				t.Fatalf("run %d step %d: delta seq %d, engine seq %d", run, step, d.Seq, eng.Seq())
			}
			want := scratch(t, eng.GroupSet(), eng.Channels())
			gridsEqual(t, step, eng.Program(), want)
			checkAccounting(t, step, d)
			if d.Kind == KindSuffix || d.Kind == KindAppend {
				applyDelta(t, step, before, d, want)
			}
			if eng.Program().Filled() != eng.Frequencies().TotalSlots(eng.GroupSet()) {
				t.Fatalf("run %d step %d: live program holds %d cells, want F=%d",
					run, step, eng.Program().Filled(), eng.Frequencies().TotalSlots(eng.GroupSet()))
			}
		}
	}
	for _, k := range []Kind{KindNone, KindAppend, KindSuffix, KindRebuild} {
		if kinds[k] == 0 {
			t.Fatalf("edit sequences never exercised %v (distribution %v)", k, kinds)
		}
	}
}

// TestDeltaRemap pins the O(1) ID remap arithmetic for both edit shapes.
func TestDeltaRemap(t *testing.T) {
	gs := core.MustGroupSet([]core.Group{{Time: 2, Count: 3}, {Time: 4, Count: 3}})
	eng, err := New(gs, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Add to group 0: new page takes ID 3, old IDs 3..5 shift to 4..6.
	d, err := eng.AddPage(0)
	if err != nil {
		t.Fatal(err)
	}
	for old, want := range map[core.PageID]core.PageID{0: 0, 1: 1, 2: 2, 3: 4, 4: 5, 5: 6} {
		if got := d.RemapPage(old); got != want {
			t.Errorf("add: RemapPage(%d) = %d, want %d", old, got, want)
		}
	}
	if got := d.RemapPage(6); got != core.None {
		t.Errorf("add: RemapPage(6) = %d, want None for out-of-range old ID", got)
	}
	// Retire last page of group 0 (old ID 3): IDs above shift down.
	d, err = eng.RetirePage(0)
	if err != nil {
		t.Fatal(err)
	}
	if got := d.RemapPage(3); got != core.None {
		t.Errorf("retire: RemapPage(3) = %d, want None for the retired page", got)
	}
	for old, want := range map[core.PageID]core.PageID{0: 0, 2: 2, 4: 3, 6: 5} {
		if got := d.RemapPage(old); got != want {
			t.Errorf("retire: RemapPage(%d) = %d, want %d", old, got, want)
		}
	}
}

// TestEngineKinds pins the classification: a no-op budget change is
// KindNone, resizing is KindRebuild, retiring from the last group replays
// only that group, and the last-group append hits the O(S_h) fast path
// whenever the frequency vector survives.
func TestEngineKinds(t *testing.T) {
	gs := core.MustGroupSet([]core.Group{{Time: 4, Count: 30}, {Time: 8, Count: 40}, {Time: 16, Count: 50}})
	nReal := 6
	eng, err := New(gs, nReal)
	if err != nil {
		t.Fatal(err)
	}
	d, err := eng.SetChannels(nReal)
	if err != nil || d.Kind != KindNone {
		t.Fatalf("SetChannels(same) -> %v, %v; want KindNone", d.Kind, err)
	}
	d, err = eng.SetChannels(nReal + 2)
	if err != nil || d.Kind != KindRebuild {
		t.Fatalf("SetChannels(+2) -> %v, %v; want KindRebuild", d.Kind, err)
	}
	if eng.Channels() != nReal+2 {
		t.Fatalf("Channels() = %d after resize, want %d", eng.Channels(), nReal+2)
	}
	gridsEqual(t, 0, eng.Program(), scratch(t, eng.GroupSet(), eng.Channels()))

	// Find an instance state where retiring from the last group keeps
	// t_major: drive a few retire events and check FromGroup.
	d, err = eng.RetirePage(2)
	if err != nil {
		t.Fatal(err)
	}
	if d.Kind == KindSuffix && d.FromGroup != 2 {
		t.Fatalf("retire from last group replayed from group %d", d.FromGroup)
	}
	gridsEqual(t, 1, eng.Program(), scratch(t, eng.GroupSet(), eng.Channels()))
	d, err = eng.AddPage(2)
	if err != nil {
		t.Fatal(err)
	}
	if d.Kind == KindAppend {
		if len(d.Placed) != eng.Frequencies()[2] {
			t.Fatalf("append placed %d cells, want S_h=%d", len(d.Placed), eng.Frequencies()[2])
		}
		if d.Added != len(d.Placed) || d.Moved != 0 || d.Evicted != 0 {
			t.Fatalf("append accounting %+v, want pure Added", d)
		}
	}
	gridsEqual(t, 2, eng.Program(), scratch(t, eng.GroupSet(), eng.Channels()))
}

// TestEngineRejects pins the engine's input validation.
func TestEngineRejects(t *testing.T) {
	gs := core.MustGroupSet([]core.Group{{Time: 2, Count: 1}, {Time: 4, Count: 2}})
	eng, err := New(gs, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.AddPage(-1); err == nil {
		t.Error("AddPage(-1) accepted")
	}
	if _, err := eng.RetirePage(5); err == nil {
		t.Error("RetirePage(5) accepted")
	}
	if _, err := eng.RetirePage(0); err == nil {
		t.Error("retiring a group's only page accepted")
	}
	if _, err := eng.SetExpectedTime(0, 3); err == nil {
		t.Error("SetExpectedTime breaking the divisor chain accepted")
	}
	if _, err := eng.SetChannels(0); err == nil {
		t.Error("SetChannels(0) accepted")
	}
	// Failed edits must leave the engine untouched.
	gridsEqual(t, 0, eng.Program(), scratch(t, gs, 2))
	if eng.Seq() != 0 {
		t.Errorf("failed edits advanced Seq to %d", eng.Seq())
	}
}

// TestKindString covers the report labels.
func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		KindNone: "none", KindAppend: "append", KindSuffix: "suffix", KindRebuild: "rebuild", Kind(9): "Kind(9)",
	} {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), got, want)
		}
	}
}
