// Package replan is the incremental placement engine behind the elastic
// runtime: it turns dynamic instance events — a page added or retired, a
// group's expected time changed, the channel budget resized — into
// O(Δ)-work edits of the live PAMAD program instead of O(n) rebuilds.
//
// The engine exploits two structural facts of Algorithm 4 placement. First,
// every frequency vector Algorithm 3 (and the PTAS) emits is a divisor
// chain, so the descending-frequency placement order is exactly the group
// order: pages of group i are placed before every page of group i+1.
// Second, page IDs are dense group by group, so an edit to group g leaves
// the IDs — and therefore the placements — of groups 0..g-1 untouched.
// Together these mean a from-scratch rebuild after an edit to group g
// replays the old placement verbatim up to the group-g boundary; the
// pamad.Placer checkpoints that boundary state (union-find column chain,
// per-column fill, placement log), so the engine can restore it and replay
// only the suffix. When the edit also leaves the whole frequency vector and
// t_major unchanged and merely appends a page to the last group, the replay
// collapses to placing that one page against the live chain: O(S_h)
// amortized.
//
// Every edit yields a Delta — the cleared and written cells with page
// identities on both sides of the edit, plus moved/placed/evicted
// accounting and an O(1) old-ID→new-ID remap — and the post-edit program
// is bit-identical to pamad.PlaceEvenly rerun from scratch on the edited
// instance (differential- and fuzz-gated; see the package tests and
// FuzzReplanEquivalence).
//
//lint:deterministic bit-identical replay contract: no wall clock, no global RNG, no map-order folds
package replan

import (
	"fmt"

	"tcsa/internal/core"
	"tcsa/internal/delaymodel"
	"tcsa/internal/pamad"
)

// Kind classifies how much work an edit cost.
type Kind int

const (
	// KindNone: the edit did not change the placement (e.g. SetChannels to
	// the current budget).
	KindNone Kind = iota
	// KindAppend: one page appended to the last group with the frequency
	// vector and t_major unchanged — placed against the live chain in
	// O(S_h) with no replay.
	KindAppend
	// KindSuffix: groups below the earliest affected index kept their
	// placement; the suffix was replayed from the checkpoint.
	KindSuffix
	// KindRebuild: the derived frequency vector, t_major, or the channel
	// budget changed, so the whole placement was rebuilt.
	KindRebuild
)

// String names the kind for reports and logs.
func (k Kind) String() string {
	switch k {
	case KindNone:
		return "none"
	case KindAppend:
		return "append"
	case KindSuffix:
		return "suffix"
	case KindRebuild:
		return "rebuild"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// CellRef is one grid-cell change: the cell and the page involved. Pages
// in Delta.Cleared carry pre-edit IDs, pages in Delta.Placed post-edit IDs.
type CellRef struct {
	Channel int
	Column  int
	Page    core.PageID
}

// Delta describes what one edit did to the live program.
type Delta struct {
	// Seq is the engine's edit sequence number, 1-based.
	Seq int
	// Kind classifies the work done.
	Kind Kind
	// FromGroup is the earliest replayed group (KindAppend/KindSuffix).
	FromGroup int
	// Cleared lists the cells the edit vacated (pre-edit page IDs), in
	// placement order. Nil for KindNone and KindRebuild (a rebuild swaps
	// the whole grid; per-cell diffs would cost the O(n) the engine
	// avoids).
	Cleared []CellRef
	// Placed lists the cells the edit wrote (post-edit page IDs), in
	// placement order. Nil for KindNone and KindRebuild.
	Placed []CellRef
	// ClearedCells/PlacedCells count the vacated and written cells for
	// every kind, including rebuilds (where they are the old and new
	// transmission totals F).
	ClearedCells int
	PlacedCells  int
	// Unchanged counts written cells re-occupied by the page (under its
	// remapped ID) that held them before the edit; Moved counts cells
	// written with a surviving page somewhere it was not; Added counts
	// cells of the brand-new page; Evicted counts vacated cells of retired
	// pages. All four are zero for KindNone and KindRebuild.
	Unchanged int
	Moved     int
	Added     int
	Evicted   int

	// remap parameters: old IDs at or above shiftAt move by shiftBy;
	// removed (or core.None) is the one old ID with no successor.
	shiftAt  core.PageID
	shiftBy  int
	removed  core.PageID
	oldPages int
	newPages int
}

// RemapPage translates a pre-edit PageID to its post-edit identity, or
// core.None when the page was retired. Pages are stable handles across
// every other edit: only the dense-ID packing shifts.
func (d *Delta) RemapPage(id core.PageID) core.PageID {
	if id < 0 || int(id) >= d.oldPages {
		return core.None
	}
	if id == d.removed {
		return core.None
	}
	if id >= d.shiftAt {
		return id + core.PageID(d.shiftBy)
	}
	return id
}

// OldPages and NewPages report the instance size on each side of the edit.
func (d *Delta) OldPages() int { return d.oldPages }

// NewPages reports the post-edit page count.
func (d *Delta) NewPages() int { return d.newPages }

// Engine owns a live PAMAD placement and applies instance edits to it
// incrementally. Not safe for concurrent use: callers serialise edits and
// publish Snapshot() clones to concurrent readers (the netcast epoch-flip
// path).
type Engine struct {
	nReal  int
	placer *pamad.Placer
	seq    int
}

// New derives Algorithm 3 frequencies for gs at nReal channels and builds
// the checkpointed placement the engine edits in place.
func New(gs *core.GroupSet, nReal int) (*Engine, error) {
	s, _, err := pamad.Frequencies(gs, nReal)
	if err != nil {
		return nil, err
	}
	placer, err := pamad.NewPlacer(gs, s, nReal)
	if err != nil {
		return nil, err
	}
	return &Engine{nReal: nReal, placer: placer}, nil
}

// Program returns the live program. The engine keeps mutating it; use
// Snapshot for a stable copy to publish.
func (e *Engine) Program() *core.Program { return e.placer.Program() }

// Snapshot returns an immutable copy of the live program, the
// copy-on-write handle the broadcast layer stages for an epoch flip.
func (e *Engine) Snapshot() *core.Program { return e.placer.Program().Clone() }

// GroupSet returns the live instance.
func (e *Engine) GroupSet() *core.GroupSet { return e.placer.GroupSet() }

// Frequencies returns the live frequency vector.
func (e *Engine) Frequencies() delaymodel.Frequencies { return e.placer.Frequencies() }

// Channels returns the live channel budget.
func (e *Engine) Channels() int { return e.nReal }

// Seq returns the number of edits applied so far.
func (e *Engine) Seq() int { return e.seq }

// Stats returns the live placement accounting, identical to PlaceEvenly's
// for the current instance.
func (e *Engine) Stats() pamad.PlacementStats { return e.placer.Stats() }

// Delay returns the analytic D' of the live schedule.
func (e *Engine) Delay() float64 {
	return delaymodel.GroupDelay(e.GroupSet(), e.Frequencies(), e.nReal)
}

// edit carries the identity bookkeeping of one event into apply.
type edit struct {
	shiftAt core.PageID // old IDs >= shiftAt move by shiftBy
	shiftBy int
	removed core.PageID // retired old ID, or core.None
	added   core.PageID // brand-new post-edit ID, or core.None
}

func identityEdit() edit {
	return edit{shiftAt: 0, shiftBy: 0, removed: core.None, added: core.None}
}

// AddPage appends one page to group (0-based): the page gets the ID right
// after the group's current last page, and every later ID shifts up by
// one. When the derived frequencies and t_major survive the edit and the
// group is the last one, this is the O(S_h) append fast path.
func (e *Engine) AddPage(group int) (*Delta, error) {
	gs := e.GroupSet()
	if group < 0 || group >= gs.Len() {
		return nil, fmt.Errorf("%w: group %d of %d", core.ErrInvalidGroupSet, group+1, gs.Len())
	}
	groups := gs.Groups()
	groups[group].Count++
	gsNew, err := core.NewGroupSet(groups)
	if err != nil {
		return nil, err
	}
	first, count := gs.GroupPages(group)
	insertAt := first + core.PageID(count)
	ed := edit{shiftAt: insertAt, shiftBy: 1, removed: core.None, added: insertAt}
	return e.apply(gsNew, e.nReal, ed)
}

// RetirePage retires the last page of group (0-based); later IDs shift
// down by one. A group never empties: retiring its only page is an error
// (drop the group by editing times instead — group structure edits are a
// rebuild anyway).
func (e *Engine) RetirePage(group int) (*Delta, error) {
	gs := e.GroupSet()
	if group < 0 || group >= gs.Len() {
		return nil, fmt.Errorf("%w: group %d of %d", core.ErrInvalidGroupSet, group+1, gs.Len())
	}
	if gs.Group(group).Count == 1 {
		return nil, fmt.Errorf("%w: retiring the only page of group %d", core.ErrInvalidGroupSet, group+1)
	}
	groups := gs.Groups()
	groups[group].Count--
	gsNew, err := core.NewGroupSet(groups)
	if err != nil {
		return nil, err
	}
	first, count := gs.GroupPages(group)
	removed := first + core.PageID(count-1)
	ed := edit{shiftAt: removed + 1, shiftBy: -1, removed: removed, added: core.None}
	return e.apply(gsNew, e.nReal, ed)
}

// SetExpectedTime changes group's expected time (0-based group index). The
// new time must keep the strictly-increasing divisor chain valid —
// core.NewGroupSet enforces it. Page identities are unchanged.
func (e *Engine) SetExpectedTime(group, t int) (*Delta, error) {
	gs := e.GroupSet()
	if group < 0 || group >= gs.Len() {
		return nil, fmt.Errorf("%w: group %d of %d", core.ErrInvalidGroupSet, group+1, gs.Len())
	}
	groups := gs.Groups()
	groups[group].Time = t
	gsNew, err := core.NewGroupSet(groups)
	if err != nil {
		return nil, err
	}
	return e.apply(gsNew, e.nReal, identityEdit())
}

// SetChannels resizes the broadcast channel budget. Page identities are
// unchanged; anything but a no-op is a full rebuild (t_major moves with
// the budget).
func (e *Engine) SetChannels(n int) (*Delta, error) {
	return e.apply(e.GroupSet(), n, identityEdit())
}

// apply re-derives frequencies for the edited instance, classifies the
// edit, and performs the cheapest placement update that is bit-identical
// to a from-scratch PlaceEvenly on (gsNew, nReal).
func (e *Engine) apply(gsNew *core.GroupSet, nReal int, ed edit) (*Delta, error) {
	sNew, _, err := pamad.Frequencies(gsNew, nReal)
	if err != nil {
		return nil, err
	}
	old := e.placer
	gsOld, sOld := old.GroupSet(), old.Frequencies()
	d := &Delta{
		Seq:      e.seq + 1,
		shiftAt:  ed.shiftAt,
		shiftBy:  ed.shiftBy,
		removed:  ed.removed,
		oldPages: gsOld.Pages(),
		newPages: gsNew.Pages(),
	}

	h := gsNew.Len()
	rebuild := nReal != old.Channels() ||
		h != gsOld.Len() ||
		sNew.MajorCycle(gsNew, nReal) != old.MajorCycle()
	if rebuild {
		d.ClearedCells = sOld.TotalSlots(gsOld)
		placer, err := pamad.NewPlacer(gsNew, sNew, nReal)
		if err != nil {
			return nil, err
		}
		e.placer = placer
		e.nReal = nReal
		e.seq++
		d.Kind = KindRebuild
		d.PlacedCells = sNew.TotalSlots(gsNew)
		return d, nil
	}

	// Earliest group whose shape or frequency the edit touched: everything
	// below it placed identically, by the divisor-chain order argument.
	g := h
	for i := 0; i < h; i++ {
		if gsOld.Group(i) != gsNew.Group(i) || sOld[i] != sNew[i] {
			g = i
			break
		}
	}
	if g == h {
		if _, err := old.ReplayFrom(h, gsNew, sNew); err != nil {
			return nil, err
		}
		e.seq++
		d.Kind = KindNone
		return d, nil
	}

	if ed.added != core.None && g == h-1 && sOld.Equal(sNew) {
		placed, err := old.AppendLast(gsNew)
		if err != nil {
			return nil, err
		}
		e.seq++
		d.Kind = KindAppend
		d.FromGroup = g
		d.Placed = make([]CellRef, len(placed))
		for i, c := range placed {
			d.Placed[i] = CellRef{Channel: int(c.Channel), Column: int(c.Column), Page: ed.added}
		}
		d.PlacedCells = len(d.Placed)
		d.Added = len(d.Placed)
		return d, nil
	}

	// Suffix replay. Annotate the doomed cells with their pre-edit pages
	// before the replay rewrites the log.
	d.Cleared = annotate(old.SuffixCells(g), gsOld, sOld, g)
	placed, err := old.ReplayFrom(g, gsNew, sNew)
	if err != nil {
		return nil, err
	}
	e.seq++
	d.Kind = KindSuffix
	d.FromGroup = g
	d.Placed = annotate(placed, gsNew, sNew, g)
	d.ClearedCells = len(d.Cleared)
	d.PlacedCells = len(d.Placed)
	d.account(ed)
	return d, nil
}

// annotate pairs raw placement-log cells with the pages that occupy them:
// the log order is groups ascending from `from`, pages ascending within a
// group, k=0..S_i-1 appearances per page.
func annotate(cells []pamad.Cell, gs *core.GroupSet, s delaymodel.Frequencies, from int) []CellRef {
	refs := make([]CellRef, len(cells))
	i := 0
	for gi := from; gi < gs.Len(); gi++ {
		first, count := gs.GroupPages(gi)
		for j := 0; j < count; j++ {
			id := first + core.PageID(j)
			for k := 0; k < s[gi]; k++ {
				c := cells[i]
				refs[i] = CellRef{Channel: int(c.Channel), Column: int(c.Column), Page: id}
				i++
			}
		}
	}
	return refs
}

// account fills the unchanged/moved/added/evicted counters from the
// cleared and placed cell lists, in O(Δ): lookups only, no map iteration.
func (d *Delta) account(ed edit) {
	key := func(ch, col int) int64 { return int64(ch)<<32 | int64(col) }
	prev := make(map[int64]core.PageID, len(d.Cleared))
	for _, c := range d.Cleared {
		nid := d.RemapPage(c.Page)
		if nid == core.None {
			d.Evicted++
		}
		prev[key(c.Channel, c.Column)] = nid
	}
	for _, c := range d.Placed {
		switch {
		case prev[key(c.Channel, c.Column)] == c.Page:
			d.Unchanged++
		case ed.added != core.None && c.Page == ed.added:
			d.Added++
		default:
			d.Moved++
		}
	}
}
