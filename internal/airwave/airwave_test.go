package airwave

import (
	"testing"

	"tcsa/internal/core"
	"tcsa/internal/eventsim"
)

// twoChannelProgram builds a 2x4 program:
//
//	ch0 | 0 1 0 1
//	ch1 | 2 2 2 2
func twoChannelProgram(t *testing.T) *core.Program {
	t.Helper()
	gs := core.MustGroupSet([]core.Group{{Time: 2, Count: 2}, {Time: 4, Count: 1}})
	p, err := core.NewProgram(gs, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	for slot := 0; slot < 4; slot++ {
		if err := p.Place(0, slot, core.PageID(slot%2)); err != nil {
			t.Fatal(err)
		}
		if err := p.Place(1, slot, 2); err != nil {
			t.Fatal(err)
		}
	}
	return p
}

func TestNewValidation(t *testing.T) {
	var sim eventsim.Simulator
	prog := twoChannelProgram(t)
	if _, err := New(nil, prog); err == nil {
		t.Error("nil simulator accepted")
	}
	if _, err := New(&sim, nil); err == nil {
		t.Error("nil program accepted")
	}
	m, err := New(&sim, prog)
	if err != nil {
		t.Fatal(err)
	}
	if m.Program() != prog {
		t.Error("Program() mismatch")
	}
	if _, err := m.NewTuner(nil); err == nil {
		t.Error("nil callback accepted")
	}
}

func TestBroadcastDeliversProgramCyclically(t *testing.T) {
	var sim eventsim.Simulator
	m, err := New(&sim, twoChannelProgram(t))
	if err != nil {
		t.Fatal(err)
	}
	var got []core.PageID
	tuner, err := m.NewTuner(func(f Frame) { got = append(got, f.Page) })
	if err != nil {
		t.Fatal(err)
	}
	if err := tuner.TuneTo(0); err != nil {
		t.Fatal(err)
	}
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	sim.RunUntil(9.5) // slots 0..9
	want := []core.PageID{0, 1, 0, 1, 0, 1, 0, 1, 0, 1}
	if len(got) != len(want) {
		t.Fatalf("received %d frames, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("frames = %v, want %v", got, want)
		}
	}
	if m.Slot() != 10 {
		t.Errorf("Slot = %d, want 10", m.Slot())
	}
}

func TestTunerHearsOnlyItsChannel(t *testing.T) {
	var sim eventsim.Simulator
	m, _ := New(&sim, twoChannelProgram(t))
	var frames []Frame
	tuner, _ := m.NewTuner(func(f Frame) { frames = append(frames, f) })
	_ = tuner.TuneTo(1)
	_ = m.Start()
	sim.RunUntil(3.5)
	for _, f := range frames {
		if f.Channel != 1 || f.Page != 2 {
			t.Fatalf("heard foreign frame %+v", f)
		}
	}
	if len(frames) != 4 {
		t.Errorf("received %d frames, want 4", len(frames))
	}
}

func TestRetuneMidBroadcast(t *testing.T) {
	var sim eventsim.Simulator
	m, _ := New(&sim, twoChannelProgram(t))
	var got []core.PageID
	var tuner *Tuner
	tuner, _ = m.NewTuner(func(f Frame) {
		got = append(got, f.Page)
		if len(got) == 2 {
			_ = tuner.TuneTo(1)
		}
	})
	_ = tuner.TuneTo(0)
	_ = m.Start()
	sim.RunUntil(4.5)
	// Slots 0,1 on ch0 (pages 0,1) then slots 2,3,4 on ch1 (page 2).
	want := []core.PageID{0, 1, 2, 2, 2}
	if len(got) != len(want) {
		t.Fatalf("frames = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("frames = %v, want %v", got, want)
		}
	}
}

func TestDetach(t *testing.T) {
	var sim eventsim.Simulator
	m, _ := New(&sim, twoChannelProgram(t))
	count := 0
	var tuner *Tuner
	tuner, _ = m.NewTuner(func(Frame) {
		count++
		if count == 3 {
			tuner.Detach()
		}
	})
	_ = tuner.TuneTo(0)
	_ = m.Start()
	sim.RunUntil(9.5)
	if count != 3 {
		t.Errorf("received %d frames after detach-at-3, want 3", count)
	}
	if tuner.Channel() != -1 {
		t.Errorf("Channel = %d after Detach, want -1", tuner.Channel())
	}
}

func TestTuneToValidation(t *testing.T) {
	var sim eventsim.Simulator
	m, _ := New(&sim, twoChannelProgram(t))
	tuner, _ := m.NewTuner(func(Frame) {})
	if err := tuner.TuneTo(5); err == nil {
		t.Error("out-of-range channel accepted")
	}
	if err := tuner.TuneTo(-1); err == nil {
		t.Error("negative channel accepted")
	}
}

func TestDropFunc(t *testing.T) {
	var sim eventsim.Simulator
	dropOdd := func(f Frame) bool { return f.Slot%2 == 1 }
	m, err := New(&sim, twoChannelProgram(t), WithDropFunc(dropOdd))
	if err != nil {
		t.Fatal(err)
	}
	var slots []int
	tuner, _ := m.NewTuner(func(f Frame) { slots = append(slots, f.Slot) })
	_ = tuner.TuneTo(0)
	_ = m.Start()
	sim.RunUntil(7.5)
	want := []int{0, 2, 4, 6}
	if len(slots) != len(want) {
		t.Fatalf("slots = %v, want %v", slots, want)
	}
	for i := range want {
		if slots[i] != want[i] {
			t.Fatalf("slots = %v, want %v", slots, want)
		}
	}
}

func TestStartTwiceAndStop(t *testing.T) {
	var sim eventsim.Simulator
	m, _ := New(&sim, twoChannelProgram(t))
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	if err := m.Start(); err == nil {
		t.Error("second Start accepted")
	}
	count := 0
	tuner, _ := m.NewTuner(func(Frame) {
		count++
		if count == 2 {
			m.Stop()
		}
	})
	_ = tuner.TuneTo(0)
	sim.Run() // must terminate because Stop ends the periodic event
	if count != 2 {
		t.Errorf("frames after Stop-at-2: %d", count)
	}
}

func TestStartAtFractionalTime(t *testing.T) {
	var sim eventsim.Simulator
	_ = sim.At(2.3, func() {})
	sim.Run() // now = 2.3
	m, _ := New(&sim, twoChannelProgram(t))
	var first float64 = -1
	tuner, _ := m.NewTuner(func(Frame) {
		if first < 0 {
			first = sim.Now()
		}
		m.Stop()
	})
	_ = tuner.TuneTo(0)
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	sim.Run()
	if first != 3 {
		t.Errorf("first frame at %f, want next slot boundary 3", first)
	}
}

func TestPageAt(t *testing.T) {
	var sim eventsim.Simulator
	m, _ := New(&sim, twoChannelProgram(t))
	if got := m.PageAt(0, 6); got != 0 { // column 6%4=2 on ch0 = page 0
		t.Errorf("PageAt(0,6) = %d, want 0", got)
	}
	if got := m.PageAt(1, 100); got != 2 {
		t.Errorf("PageAt(1,100) = %d, want 2", got)
	}
	if got := m.PageAt(5, 0); got != core.None {
		t.Errorf("PageAt bad channel = %d, want None", got)
	}
	if got := m.PageAt(0, -1); got != core.None {
		t.Errorf("PageAt negative slot = %d, want None", got)
	}
}

// TestSlotJitterShiftsDeliveryInstants: with WithSlotJitter, frame k is
// delivered at k + jitter(k) instead of exactly k, frames still arrive in
// slot order, and an out-of-contract jitter value is clamped.
func TestSlotJitterShiftsDeliveryInstants(t *testing.T) {
	var sim eventsim.Simulator
	jitter := func(slot int) float64 {
		switch slot % 3 {
		case 1:
			return 0.25
		case 2:
			return 2.0 // out of contract: must clamp to 0.5
		}
		return 0
	}
	m, err := New(&sim, twoChannelProgram(t), WithSlotJitter(jitter))
	if err != nil {
		t.Fatal(err)
	}
	type delivery struct {
		slot int
		at   float64
	}
	var got []delivery
	tuner, err := m.NewTuner(func(f Frame) { got = append(got, delivery{f.Slot, sim.Now()}) })
	if err != nil {
		t.Fatal(err)
	}
	if err := tuner.TuneTo(1); err != nil {
		t.Fatal(err)
	}
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	sim.RunUntil(6.9)
	m.Stop()
	sim.Run()
	if len(got) < 6 {
		t.Fatalf("heard %d frames, want >= 6", len(got))
	}
	for i, d := range got[:6] {
		if d.slot != i {
			t.Fatalf("frame %d carries slot %d; deliveries: %+v", i, d.slot, got)
		}
		want := float64(i)
		switch i % 3 {
		case 1:
			want += 0.25
		case 2:
			want += 0.5 // clamped
		}
		if d.at != want { //lint:ignore floateq jittered instants are exact sums of exact offsets
			t.Errorf("slot %d delivered at %v, want %v", i, d.at, want)
		}
	}
}
