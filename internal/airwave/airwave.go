// Package airwave models the broadcast medium itself: a set of slotted
// wireless channels driven by a cyclic broadcast program, with tuners that
// listen to one channel at a time and optional frame-loss injection.
//
// It is the physical substrate under the client simulator: the scheduling
// packages decide *what* occupies each (channel, slot) cell; airwave
// replays those cells over virtual time on an eventsim.Simulator and
// delivers frames to whoever is tuned in. Frames are delivered at the slot
// start instant, matching the waiting-time convention of core.Analysis.
package airwave

import (
	"errors"
	"fmt"
	"math"

	"tcsa/internal/core"
	"tcsa/internal/eventsim"
)

// Frame is one slot's transmission on one channel. Page is core.None for an
// idle slot.
type Frame struct {
	Channel int
	Slot    int // absolute slot index since Start
	Page    core.PageID
}

// DropFunc decides whether a frame is lost before reaching a given tuner;
// it is evaluated per delivery, so loss can be made channel-, slot- or
// tuner-position dependent.
type DropFunc func(Frame) bool

// Option configures a Medium.
type Option func(*Medium)

// WithDropFunc installs a loss model; nil means lossless (the default).
func WithDropFunc(f DropFunc) Option {
	return func(m *Medium) { m.drop = f }
}

// WithSlotJitter delays each slot's transmission by jitter(slot) slots,
// with values in [0, 0.5] so consecutive slots never reorder. nil keeps
// the exact fixed-period clock (the default).
func WithSlotJitter(jitter func(slot int) float64) Option {
	return func(m *Medium) { m.jitter = jitter }
}

// Medium is the on-air broadcast system: it replays a program cyclically,
// one column per slot, delivering frames to tuned receivers.
type Medium struct {
	sim     *eventsim.Simulator
	prog    *core.Program
	drop    DropFunc
	jitter  func(slot int) float64
	tuners  []*Tuner // insertion order, for deterministic delivery
	tuned   []int    // per-slot snapshot of tuner channels (scratch)
	slot    int
	started bool
	stopped bool
}

// New creates a Medium over prog driven by sim.
func New(sim *eventsim.Simulator, prog *core.Program, opts ...Option) (*Medium, error) {
	if sim == nil {
		return nil, errors.New("airwave: nil simulator")
	}
	if prog == nil {
		return nil, errors.New("airwave: nil program")
	}
	m := &Medium{sim: sim, prog: prog}
	for _, opt := range opts {
		opt(m)
	}
	return m, nil
}

// Program returns the program being broadcast.
func (m *Medium) Program() *core.Program { return m.prog }

// Slot returns the absolute index of the next slot to transmit.
func (m *Medium) Slot() int { return m.slot }

// PageAt returns the page scheduled on channel ch at absolute slot abs
// (the program repeats cyclically).
func (m *Medium) PageAt(ch, abs int) core.PageID {
	if ch < 0 || ch >= m.prog.Channels() || abs < 0 {
		return core.None
	}
	return m.prog.AtAbs(ch, abs)
}

// Start begins transmitting at the next integer slot boundary (time
// ceil(now)). It may be called once.
func (m *Medium) Start() error {
	if m.started {
		return errors.New("airwave: already started")
	}
	m.started = true
	first := float64(int(m.sim.Now()))
	if first < m.sim.Now() {
		first++
	}
	tick := func(float64) bool {
		if m.stopped {
			return false
		}
		m.transmit()
		return true
	}
	if m.jitter == nil {
		return m.sim.Periodic(first, 1, tick)
	}
	// Jittered clock: slot k is transmitted at first + k + jitter(k), so
	// the interval after tick k bridges to the next jittered boundary.
	// clampJ keeps a misbehaving jitter source from reordering slots.
	return m.sim.PeriodicVar(first+clampJ(m.jitter(0)), func(k int) float64 {
		return 1 + clampJ(m.jitter(k+1)) - clampJ(m.jitter(k))
	}, tick)
}

// clampJ bounds a jitter offset to [0, 0.5] — the contract of
// WithSlotJitter — so inter-slot intervals stay positive.
func clampJ(j float64) float64 {
	if j < 0 || math.IsNaN(j) {
		return 0
	}
	if j > 0.5 {
		return 0.5
	}
	return j
}

// Stop ends transmission after the current slot.
func (m *Medium) Stop() { m.stopped = true }

// transmit delivers the current column on every channel. Tuner channels are
// snapshotted at slot start: a single-frequency receiver that retunes while
// handling a frame hears the new channel only from the next slot on.
func (m *Medium) transmit() {
	col := m.prog.Column(m.slot)
	if cap(m.tuned) < len(m.tuners) {
		m.tuned = make([]int, len(m.tuners))
	}
	m.tuned = m.tuned[:len(m.tuners)]
	for i, t := range m.tuners {
		m.tuned[i] = t.channel
	}
	for ch := 0; ch < m.prog.Channels(); ch++ {
		f := Frame{Channel: ch, Slot: m.slot, Page: m.prog.At(ch, col)}
		for i, t := range m.tuners {
			if m.tuned[i] != ch {
				continue
			}
			if m.drop != nil && m.drop(f) {
				continue
			}
			t.fn(f)
		}
	}
	m.slot++
}

// Tuner is a single-frequency receiver: it hears exactly one channel at a
// time (or none when detached, channel = -1).
type Tuner struct {
	m       *Medium
	channel int
	fn      func(Frame)
}

// NewTuner registers a detached tuner whose callback runs for every frame
// on its tuned channel.
func (m *Medium) NewTuner(fn func(Frame)) (*Tuner, error) {
	if fn == nil {
		return nil, errors.New("airwave: nil tuner callback")
	}
	t := &Tuner{m: m, channel: -1, fn: fn}
	m.tuners = append(m.tuners, t)
	return t, nil
}

// TuneTo points the tuner at channel ch; frames transmitted from the next
// slot onward are delivered. Tuning takes effect immediately (zero switch
// latency, as the paper assumes).
func (t *Tuner) TuneTo(ch int) error {
	if ch < 0 || ch >= t.m.prog.Channels() {
		return fmt.Errorf("%w: channel %d of %d", core.ErrSlotRange, ch, t.m.prog.Channels())
	}
	t.channel = ch
	return nil
}

// Detach stops reception; the tuner can be re-tuned later.
func (t *Tuner) Detach() { t.channel = -1 }

// Channel returns the tuned channel, or -1 when detached.
func (t *Tuner) Channel() int { return t.channel }
