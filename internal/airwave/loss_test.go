package airwave

import (
	"math"
	"testing"
)

func TestUniformLoss(t *testing.T) {
	if _, err := UniformLoss(-0.1, 1); err == nil {
		t.Error("negative probability accepted")
	}
	if _, err := UniformLoss(1.1, 1); err == nil {
		t.Error("probability > 1 accepted")
	}
	drop, err := UniformLoss(0.3, 7)
	if err != nil {
		t.Fatal(err)
	}
	lost := 0
	const frames = 100000
	for i := 0; i < frames; i++ {
		if drop(Frame{Slot: i}) {
			lost++
		}
	}
	if rate := float64(lost) / frames; math.Abs(rate-0.3) > 0.01 {
		t.Errorf("loss rate %f, want ~0.3", rate)
	}
}

func TestUniformLossDeterministic(t *testing.T) {
	a, _ := UniformLoss(0.5, 42)
	b, _ := UniformLoss(0.5, 42)
	for i := 0; i < 1000; i++ {
		f := Frame{Slot: i}
		if a(f) != b(f) {
			t.Fatal("same seed diverged")
		}
	}
}

func TestGilbertElliottValidation(t *testing.T) {
	if _, err := (GilbertElliott{GoodToBad: 2}).DropFunc(); err == nil {
		t.Error("probability > 1 accepted")
	}
	if _, err := (GilbertElliott{GoodToBad: 0.1, BadToGood: 0}).DropFunc(); err == nil {
		t.Error("absorbing bad state accepted")
	}
}

// TestGilbertElliottStationaryRate: the long-run loss rate matches the
// stationary-distribution prediction.
func TestGilbertElliottStationaryRate(t *testing.T) {
	g := GilbertElliott{
		GoodToBad: 0.05,
		BadToGood: 0.25,
		LossGood:  0.01,
		LossBad:   0.8,
		Seed:      3,
	}
	drop, err := g.DropFunc()
	if err != nil {
		t.Fatal(err)
	}
	lost := 0
	const frames = 400000
	for i := 0; i < frames; i++ {
		if drop(Frame{Slot: i}) {
			lost++
		}
	}
	piBad := g.GoodToBad / (g.GoodToBad + g.BadToGood)
	want := piBad*g.LossBad + (1-piBad)*g.LossGood
	if rate := float64(lost) / frames; math.Abs(rate-want) > 0.01 {
		t.Errorf("loss rate %f, want ~%f", rate, want)
	}
}

// TestGilbertElliottBursts: losses cluster — the conditional probability
// of losing frame k+1 given frame k was lost is far above the marginal.
func TestGilbertElliottBursts(t *testing.T) {
	g := GilbertElliott{
		GoodToBad: 0.02,
		BadToGood: 0.2,
		LossGood:  0.0,
		LossBad:   0.9,
		Seed:      4,
	}
	drop, err := g.DropFunc()
	if err != nil {
		t.Fatal(err)
	}
	const frames = 200000
	losses := make([]bool, frames)
	total := 0
	for i := 0; i < frames; i++ {
		losses[i] = drop(Frame{Slot: i})
		if losses[i] {
			total++
		}
	}
	marginal := float64(total) / frames
	var afterLoss, lossAfterLoss int
	for i := 1; i < frames; i++ {
		if losses[i-1] {
			afterLoss++
			if losses[i] {
				lossAfterLoss++
			}
		}
	}
	conditional := float64(lossAfterLoss) / float64(afterLoss)
	if conditional < 3*marginal {
		t.Errorf("conditional loss %f not much above marginal %f — no burstiness", conditional, marginal)
	}
}

// TestGilbertElliottSameSlotSharesState: frames in the same slot see the
// same channel state (the chain advances per slot, not per frame).
func TestGilbertElliottSameSlotSharesState(t *testing.T) {
	g := GilbertElliott{GoodToBad: 0.5, BadToGood: 0.5, LossGood: 0, LossBad: 1, Seed: 5}
	drop, err := g.DropFunc()
	if err != nil {
		t.Fatal(err)
	}
	for slot := 0; slot < 2000; slot++ {
		first := drop(Frame{Slot: slot, Channel: 0})
		second := drop(Frame{Slot: slot, Channel: 1})
		if first != second {
			t.Fatalf("slot %d: channel 0 lost=%v but channel 1 lost=%v with deterministic per-state loss",
				slot, first, second)
		}
	}
}
