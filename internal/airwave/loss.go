package airwave

import (
	"fmt"
	"math/rand"
)

// UniformLoss returns a DropFunc that loses each frame independently with
// probability p, seeded for reproducibility.
func UniformLoss(p float64, seed int64) (DropFunc, error) {
	if p < 0 || p > 1 {
		return nil, fmt.Errorf("airwave: loss probability %f", p)
	}
	rng := rand.New(rand.NewSource(seed))
	return func(Frame) bool { return rng.Float64() < p }, nil
}

// GilbertElliott models bursty wireless loss with the classic two-state
// chain: a Good state with low loss and a Bad state (deep fade) with high
// loss, switching with the given per-frame transition probabilities. The
// stationary loss rate is
//
//	pBad/(pGood+pBad)*lossBad + pGood/(pGood+pBad)*lossGood
//
// with mean burst length 1/pBad frames.
type GilbertElliott struct {
	// GoodToBad and BadToGood are per-frame transition probabilities.
	GoodToBad, BadToGood float64
	// LossGood and LossBad are the loss probabilities within each state.
	LossGood, LossBad float64
	// Seed drives the chain.
	Seed int64
}

// DropFunc materialises the model. The returned function is stateful and
// must be used by a single Medium (the simulation is single-threaded).
func (g GilbertElliott) DropFunc() (DropFunc, error) {
	for _, p := range []float64{g.GoodToBad, g.BadToGood, g.LossGood, g.LossBad} {
		if p < 0 || p > 1 {
			return nil, fmt.Errorf("airwave: gilbert-elliott probability %f outside [0,1]", p)
		}
	}
	if g.BadToGood == 0 && g.GoodToBad > 0 {
		return nil, fmt.Errorf("airwave: gilbert-elliott absorbs in the bad state (BadToGood = 0)")
	}
	rng := rand.New(rand.NewSource(g.Seed))
	bad := false
	lastSlot := -1
	return func(f Frame) bool {
		// Advance the channel state once per slot (frames within a slot
		// share fading conditions).
		if f.Slot != lastSlot {
			steps := 1
			if lastSlot >= 0 && f.Slot > lastSlot {
				steps = f.Slot - lastSlot
			}
			for i := 0; i < steps; i++ {
				if bad {
					if rng.Float64() < g.BadToGood {
						bad = false
					}
				} else {
					if rng.Float64() < g.GoodToBad {
						bad = true
					}
				}
			}
			lastSlot = f.Slot
		}
		if bad {
			return rng.Float64() < g.LossBad
		}
		return rng.Float64() < g.LossGood
	}, nil
}
