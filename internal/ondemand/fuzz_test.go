package ondemand

import (
	"math/rand"
	"sort"
	"testing"

	"tcsa/internal/eventsim"
	"tcsa/internal/stats"
)

// modelRun replays a submission schedule through a deliberately naive
// reference model of the server: a plain slice instead of a heap, linear
// scans instead of sift-ups, and the eventsim tie rule made explicit —
// upfront-scheduled submissions carry smaller sequence numbers than any
// completion scheduled during the run, so at equal times submissions win;
// among completions, scheduling order wins. It returns the completion log
// (tag, submitted, completed) and the reference metrics counters.
type modelCompletion struct {
	tag                  uint64
	submitted, completed float64
}

type modelOutcome struct {
	log       []modelCompletion
	responses []float64
	rejected  int
	misses    int
	maxQ      int
}

type modelSub struct {
	at, deadline float64
	tag          uint64
}

func modelRun(subs []modelSub, cfg Config) modelOutcome {
	type inService struct {
		tag             uint64
		submitted, done float64
		seq             int
		deadline        float64
	}
	type waiting struct {
		deadline float64
		seq      int // submission order = heap seq order
		tag      uint64
		at       float64
	}
	if cfg.Workers == 0 {
		cfg.Workers = 1
	}
	var out modelOutcome
	var queue []waiting
	var busy []inService
	compSeq := len(subs) // completions are scheduled after every upfront At
	subSeq := 0
	next := 0 // next submission index
	start := func(tag uint64, deadline, submitted, now float64) {
		busy = append(busy, inService{tag: tag, submitted: submitted,
			done: now + cfg.ServiceTime, seq: compSeq, deadline: deadline})
		compSeq++
	}
	for next < len(subs) || len(busy) > 0 {
		// Earliest pending completion, ties by scheduling seq.
		ci := -1
		for i, b := range busy {
			if ci < 0 || b.done < busy[ci].done ||
				(b.done == busy[ci].done && b.seq < busy[ci].seq) {
				ci = i
			}
		}
		// Submissions at the same instant precede completions (smaller seq).
		if next < len(subs) && (ci < 0 || subs[next].at <= busy[ci].done) {
			s := subs[next]
			next++
			if len(busy) < cfg.Workers {
				start(s.tag, s.deadline, s.at, s.at)
				continue
			}
			if cfg.QueueLimit > 0 && len(queue) >= cfg.QueueLimit {
				out.rejected++
				continue
			}
			queue = append(queue, waiting{deadline: s.deadline, seq: subSeq, tag: s.tag, at: s.at})
			subSeq++
			if len(queue) > out.maxQ {
				out.maxQ = len(queue)
			}
			continue
		}
		b := busy[ci]
		busy = append(busy[:ci], busy[ci+1:]...)
		out.log = append(out.log, modelCompletion{b.tag, b.submitted, b.done})
		out.responses = append(out.responses, b.done-b.submitted)
		if b.done > b.deadline {
			out.misses++
		}
		if len(queue) > 0 {
			wi := 0
			for i, w := range queue {
				if cfg.Discipline == EDF {
					if w.deadline < queue[wi].deadline ||
						(w.deadline == queue[wi].deadline && w.seq < queue[wi].seq) {
						wi = i
					}
				} else if w.seq < queue[wi].seq {
					wi = i
				}
			}
			w := queue[wi]
			queue = append(queue[:wi], queue[wi+1:]...)
			start(w.tag, w.deadline, w.at, b.done)
		}
	}
	return out
}

// FuzzOndemandQueue drives random submit/complete interleavings through the
// server and checks three contracts against the linear-scan model: the
// completion log matches event for event (which pins EDF's (deadline, seq)
// order and FCFS's seq order, including tie-breaks at simultaneous
// completions), the counters conserve requests, and the time-weighted queue
// length stays within [0, MaxQueueLen]. Discrete submission times and
// service durations make equal-instant collisions the common case rather
// than the rare one.
func FuzzOndemandQueue(f *testing.F) {
	f.Add(int64(1), uint8(30), uint8(1), uint8(3), uint8(0), uint8(0))
	f.Add(int64(2), uint8(80), uint8(3), uint8(1), uint8(1), uint8(0))
	f.Add(int64(3), uint8(12), uint8(2), uint8(7), uint8(1), uint8(2))
	f.Add(int64(4), uint8(255), uint8(1), uint8(4), uint8(0), uint8(5))
	f.Fuzz(func(t *testing.T, seed int64, count, workersB, svcB, discB, limitB uint8) {
		cfg := Config{
			ServiceTime: 0.25 * float64(1+int(svcB)%8),
			Workers:     1 + int(workersB)%4,
			Discipline:  Discipline(int(discB) % 2),
			QueueLimit:  int(limitB) % 8, // 0 = unbounded
		}
		rng := rand.New(rand.NewSource(seed))
		n := int(count)
		subs := make([]modelSub, n)
		for i := range subs {
			deadline := NoDeadline
			if rng.Intn(4) > 0 {
				deadline = float64(rng.Intn(8)) * 5 // coarse: EDF ties abound
			}
			subs[i] = modelSub{
				at:       float64(rng.Intn(80)) / 2, // coarse: time ties abound
				deadline: deadline,
				tag:      uint64(i),
			}
		}
		// eventsim dispatches by (time, seq): pre-sorting keeps the model's
		// "next submission" scan trivial without changing dispatch order.
		sort.SliceStable(subs, func(i, j int) bool { return subs[i].at < subs[j].at })

		var sim eventsim.Simulator
		var got []modelCompletion
		cfg.OnComplete = func(req Request, submitted, completed float64) {
			got = append(got, modelCompletion{req.Tag, submitted, completed})
		}
		srv, err := New(&sim, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range subs {
			s := s
			if err := sim.At(s.at, func() {
				srv.Submit(Request{Page: 0, Deadline: s.deadline, Tag: s.tag})
			}); err != nil {
				t.Fatal(err)
			}
		}
		// Mid-run probes: conservation must hold at arbitrary instants, not
		// just after the queue drains.
		for i := 0; i < 4; i++ {
			if err := sim.At(float64(rng.Intn(90))/2, func() {
				m := srv.Metrics()
				if m.Submitted != m.Completed+m.Rejected+srv.QueueLen()+srv.Busy() {
					t.Errorf("mid-run conservation: %d != %d+%d+%d+%d",
						m.Submitted, m.Completed, m.Rejected, srv.QueueLen(), srv.Busy())
				}
			}); err != nil {
				t.Fatal(err)
			}
		}
		sim.Run()

		want := modelRun(subs, cfg)
		m := srv.Metrics()
		if m.Submitted != n || m.Completed != len(want.log) || m.Rejected != want.rejected {
			t.Fatalf("counters: %+v, want completed %d rejected %d of %d",
				m, len(want.log), want.rejected, n)
		}
		if m.Submitted != m.Completed+m.Rejected || srv.QueueLen() != 0 || srv.Busy() != 0 {
			t.Fatalf("post-run conservation: %+v (queue %d busy %d)", m, srv.QueueLen(), srv.Busy())
		}
		if len(got) != len(want.log) {
			t.Fatalf("completion log length %d, want %d", len(got), len(want.log))
		}
		for i := range got {
			if got[i] != want.log[i] {
				t.Fatalf("completion %d: %+v, want %+v (discipline %d)", i, got[i], want.log[i], cfg.Discipline)
			}
		}
		if m.DeadlineMisses != want.misses {
			t.Fatalf("misses %d, want %d", m.DeadlineMisses, want.misses)
		}
		if m.MaxQueueLen != want.maxQ {
			t.Fatalf("max queue %d, want %d", m.MaxQueueLen, want.maxQ)
		}
		if m.AvgResponse != stats.Mean(want.responses) {
			t.Fatalf("avg response %g, want %g", m.AvgResponse, stats.Mean(want.responses))
		}
		if m.AvgQueueLen < 0 || m.AvgQueueLen > float64(m.MaxQueueLen) {
			t.Fatalf("time-weighted queue length %g outside [0, %d]", m.AvgQueueLen, m.MaxQueueLen)
		}
	})
}
