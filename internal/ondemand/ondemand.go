// Package ondemand models the pull side of a hybrid broadcast system: the
// uplink request channel and the server that answers individual client
// requests. The paper's Section 1 motivates time-constrained broadcast
// scheduling with exactly this coupling — every client whose expected time
// the broadcast misses "actively sends a pull request through an uplink
// channel", and too many such switches congest the on-demand channel. This
// package makes that congestion measurable.
//
// The server is a multi-worker queueing station on the shared eventsim
// clock: requests arrive via Submit, wait in a FCFS or earliest-deadline-
// first queue (optionally bounded), occupy a worker for a fixed service
// time, and leave response-time and deadline-miss statistics behind.
package ondemand

import (
	"container/heap"
	"errors"
	"fmt"
	"math"

	"tcsa/internal/core"
	"tcsa/internal/eventsim"
	"tcsa/internal/stats"
)

// Discipline orders the pending-request queue.
type Discipline int

const (
	// FCFS serves requests in arrival order.
	FCFS Discipline = iota
	// EDF serves the request with the earliest deadline first.
	EDF
)

// Request is one pull request.
type Request struct {
	Page core.PageID
	// Deadline is the absolute simulation time by which the response is
	// useful; it orders the EDF queue and feeds deadline-miss accounting.
	// +Inf (or simply math.MaxFloat64) means "no deadline".
	Deadline float64
	// Tag is an opaque caller-defined correlation id, echoed to OnComplete.
	Tag uint64
}

// Config parameterises the server.
type Config struct {
	// ServiceTime is the slots one request occupies a worker; must be > 0.
	ServiceTime float64
	// Workers is the number of parallel servers; 0 defaults to 1.
	Workers int
	// Discipline selects the queue order; default FCFS.
	Discipline Discipline
	// QueueLimit bounds the waiting queue; 0 means unbounded. Submissions
	// beyond the bound are rejected (counted, not served).
	QueueLimit int
	// OnComplete, when non-nil, is invoked at each request's completion
	// instant with the request and its submit/complete times — the hook
	// that lets callers (e.g. the hybrid system) attribute per-request
	// response times.
	OnComplete func(req Request, submitted, completed float64)
}

// Metrics summarises a server's lifetime.
type Metrics struct {
	Submitted      int
	Completed      int
	Rejected       int
	DeadlineMisses int           // completions after their deadline
	AvgResponse    float64       // mean submit-to-completion time
	Response       stats.Summary // full response-time profile
	MaxQueueLen    int
	AvgQueueLen    float64 // time-weighted mean queue length
}

// Server is the on-demand station. Create with New; methods are not
// goroutine-safe (the simulation is single-threaded by design).
type Server struct {
	sim  *eventsim.Simulator
	cfg  Config
	q    requestQueue
	busy int
	seq  uint64

	submitted  int
	completed  int
	rejected   int
	misses     int
	responses  []float64
	maxQ       int
	qArea      float64 // integral of queue length over time
	lastChange float64
}

// New creates a server on the shared simulator clock.
func New(sim *eventsim.Simulator, cfg Config) (*Server, error) {
	if sim == nil {
		return nil, errors.New("ondemand: nil simulator")
	}
	if cfg.ServiceTime <= 0 {
		return nil, fmt.Errorf("ondemand: service time %f", cfg.ServiceTime)
	}
	if cfg.Workers == 0 {
		cfg.Workers = 1
	}
	if cfg.Workers < 0 {
		return nil, fmt.Errorf("ondemand: %d workers", cfg.Workers)
	}
	if cfg.Discipline != FCFS && cfg.Discipline != EDF {
		return nil, fmt.Errorf("ondemand: unknown discipline %d", cfg.Discipline)
	}
	if cfg.QueueLimit < 0 {
		return nil, fmt.Errorf("ondemand: queue limit %d", cfg.QueueLimit)
	}
	s := &Server{sim: sim, cfg: cfg}
	s.q.byDeadline = cfg.Discipline == EDF
	return s, nil
}

// Submit hands a request to the server at the current simulation time.
// It returns false if the queue bound rejected the request.
func (s *Server) Submit(req Request) bool {
	s.submitted++
	if s.busy < s.cfg.Workers {
		s.busy++
		s.startService(req, s.sim.Now())
		return true
	}
	if s.cfg.QueueLimit > 0 && s.q.Len() >= s.cfg.QueueLimit {
		s.rejected++
		return false
	}
	s.accountQueue()
	s.seq++
	heap.Push(&s.q, queued{req: req, at: s.sim.Now(), seq: s.seq})
	if s.q.Len() > s.maxQ {
		s.maxQ = s.q.Len()
	}
	return true
}

// startService occupies a worker for one request submitted at submitTime.
func (s *Server) startService(req Request, submitTime float64) {
	// Scheduling service completion never fails: the delay is positive.
	_ = s.sim.After(s.cfg.ServiceTime, func() {
		now := s.sim.Now()
		s.completed++
		s.responses = append(s.responses, now-submitTime)
		if now > req.Deadline {
			s.misses++
		}
		if s.cfg.OnComplete != nil {
			s.cfg.OnComplete(req, submitTime, now)
		}
		if s.q.Len() > 0 {
			s.accountQueue()
			next := heap.Pop(&s.q).(queued)
			s.startService(next.req, next.at)
		} else {
			s.busy--
		}
	})
}

// accountQueue integrates queue length over time for AvgQueueLen.
func (s *Server) accountQueue() {
	now := s.sim.Now()
	s.qArea += float64(s.q.Len()) * (now - s.lastChange)
	s.lastChange = now
}

// QueueLen returns the current number of waiting (not in-service) requests.
func (s *Server) QueueLen() int { return s.q.Len() }

// Busy returns the number of occupied workers.
func (s *Server) Busy() int { return s.busy }

// Metrics snapshots the server's statistics at the current simulation time.
func (s *Server) Metrics() Metrics {
	m := Metrics{
		Submitted:      s.submitted,
		Completed:      s.completed,
		Rejected:       s.rejected,
		DeadlineMisses: s.misses,
		AvgResponse:    stats.Mean(s.responses),
		Response:       stats.Summarize(s.responses),
		MaxQueueLen:    s.maxQ,
	}
	if now := s.sim.Now(); now > 0 {
		m.AvgQueueLen = (s.qArea + float64(s.q.Len())*(now-s.lastChange)) / now
	}
	return m
}

// NoDeadline is a convenience deadline for requests without one.
const NoDeadline = math.MaxFloat64

// queued is a waiting request.
type queued struct {
	req Request
	at  float64
	seq uint64
}

// requestQueue is a heap ordered FCFS (seq) or EDF (deadline, then seq).
type requestQueue struct {
	items      []queued
	byDeadline bool
}

func (q *requestQueue) Len() int { return len(q.items) }

func (q *requestQueue) Less(i, j int) bool {
	a, b := q.items[i], q.items[j]
	if q.byDeadline && a.req.Deadline != b.req.Deadline {
		return a.req.Deadline < b.req.Deadline
	}
	return a.seq < b.seq
}

func (q *requestQueue) Swap(i, j int) { q.items[i], q.items[j] = q.items[j], q.items[i] }

func (q *requestQueue) Push(x any) { q.items = append(q.items, x.(queued)) }

func (q *requestQueue) Pop() any {
	old := q.items
	n := len(old)
	it := old[n-1]
	q.items = old[:n-1]
	return it
}
