package ondemand

import (
	"math"
	"math/rand"
	"testing"

	"tcsa/internal/eventsim"
)

func TestNewValidation(t *testing.T) {
	var sim eventsim.Simulator
	if _, err := New(nil, Config{ServiceTime: 1}); err == nil {
		t.Error("nil simulator accepted")
	}
	if _, err := New(&sim, Config{ServiceTime: 0}); err == nil {
		t.Error("zero service time accepted")
	}
	if _, err := New(&sim, Config{ServiceTime: 1, Workers: -1}); err == nil {
		t.Error("negative workers accepted")
	}
	if _, err := New(&sim, Config{ServiceTime: 1, Discipline: Discipline(9)}); err == nil {
		t.Error("unknown discipline accepted")
	}
	if _, err := New(&sim, Config{ServiceTime: 1, QueueLimit: -1}); err == nil {
		t.Error("negative queue limit accepted")
	}
}

func TestSingleWorkerFCFS(t *testing.T) {
	var sim eventsim.Simulator
	srv, err := New(&sim, Config{ServiceTime: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Three requests at t=0: responses complete at 2, 4, 6.
	_ = sim.At(0, func() {
		srv.Submit(Request{Page: 0, Deadline: NoDeadline})
		srv.Submit(Request{Page: 1, Deadline: NoDeadline})
		srv.Submit(Request{Page: 2, Deadline: NoDeadline})
	})
	sim.Run()
	m := srv.Metrics()
	if m.Submitted != 3 || m.Completed != 3 || m.Rejected != 0 {
		t.Fatalf("metrics = %+v", m)
	}
	if want := (2.0 + 4.0 + 6.0) / 3; math.Abs(m.AvgResponse-want) > 1e-12 {
		t.Errorf("AvgResponse = %f, want %f", m.AvgResponse, want)
	}
	if m.MaxQueueLen != 2 {
		t.Errorf("MaxQueueLen = %d, want 2", m.MaxQueueLen)
	}
	if sim.Now() != 6 {
		t.Errorf("finished at %f, want 6", sim.Now())
	}
}

func TestParallelWorkers(t *testing.T) {
	var sim eventsim.Simulator
	srv, _ := New(&sim, Config{ServiceTime: 2, Workers: 3})
	_ = sim.At(0, func() {
		for i := 0; i < 3; i++ {
			srv.Submit(Request{Deadline: NoDeadline})
		}
	})
	sim.Run()
	m := srv.Metrics()
	if m.AvgResponse != 2 {
		t.Errorf("AvgResponse = %f, want 2 (all parallel)", m.AvgResponse)
	}
	if m.MaxQueueLen != 0 {
		t.Errorf("MaxQueueLen = %d, want 0", m.MaxQueueLen)
	}
}

func TestEDFOrdering(t *testing.T) {
	var sim eventsim.Simulator
	srv, _ := New(&sim, Config{ServiceTime: 1, Discipline: EDF})
	var completions []float64 // deadlines in completion order
	_ = sim.At(0, func() {
		// First occupies the worker; the rest queue with shuffled deadlines.
		srv.Submit(Request{Deadline: NoDeadline})
		for _, d := range []float64{50, 10, 30, 20, 40} {
			srv.Submit(Request{Deadline: d})
		}
	})
	// Track completion order by sampling the queue's head effect: the
	// completion times are 1,2,3,4,5,6 and EDF serves 10,20,30,40,50 after
	// the first.
	sim.Run()
	m := srv.Metrics()
	if m.Completed != 6 {
		t.Fatalf("completed %d", m.Completed)
	}
	// With EDF, deadline-10 request finishes at t=2 (only miss candidates
	// are the late ones): misses are completions after deadline — none here
	// since deadlines are generous.
	if m.DeadlineMisses != 0 {
		t.Errorf("misses = %d, want 0", m.DeadlineMisses)
	}
	_ = completions
}

func TestEDFBeatsFCFSOnMisses(t *testing.T) {
	run := func(d Discipline) Metrics {
		var sim eventsim.Simulator
		srv, _ := New(&sim, Config{ServiceTime: 2, Discipline: d})
		_ = sim.At(0, func() {
			srv.Submit(Request{Deadline: NoDeadline}) // occupies worker until 2
			srv.Submit(Request{Deadline: 100})        // loose
			srv.Submit(Request{Deadline: 4.5})        // tight: must be next
		})
		sim.Run()
		return srv.Metrics()
	}
	fcfs := run(FCFS)
	edf := run(EDF)
	// FCFS serves the loose request first: tight one completes at 6 > 4.5.
	if fcfs.DeadlineMisses != 1 {
		t.Errorf("FCFS misses = %d, want 1", fcfs.DeadlineMisses)
	}
	// EDF serves the tight one at 2..4 < 4.5: no miss.
	if edf.DeadlineMisses != 0 {
		t.Errorf("EDF misses = %d, want 0", edf.DeadlineMisses)
	}
}

func TestQueueLimitRejects(t *testing.T) {
	var sim eventsim.Simulator
	srv, _ := New(&sim, Config{ServiceTime: 1, QueueLimit: 2})
	accepted := 0
	_ = sim.At(0, func() {
		for i := 0; i < 5; i++ {
			if srv.Submit(Request{Deadline: NoDeadline}) {
				accepted++
			}
		}
	})
	sim.Run()
	m := srv.Metrics()
	if accepted != 3 { // 1 in service + 2 queued
		t.Errorf("accepted = %d, want 3", accepted)
	}
	if m.Rejected != 2 || m.Completed != 3 || m.Submitted != 5 {
		t.Errorf("metrics = %+v", m)
	}
}

// TestCongestionGrowsWithLoad reproduces the paper's motivating effect:
// pushing the arrival rate past service capacity blows response times up.
func TestCongestionGrowsWithLoad(t *testing.T) {
	response := func(interval float64) float64 {
		var sim eventsim.Simulator
		srv, _ := New(&sim, Config{ServiceTime: 1})
		for i := 0; i < 200; i++ {
			_ = sim.At(float64(i)*interval, func() {
				srv.Submit(Request{Deadline: NoDeadline})
			})
		}
		sim.Run()
		return srv.Metrics().AvgResponse
	}
	light := response(2.0) // utilisation 0.5
	heavy := response(0.5) // utilisation 2.0: overload
	if light != 1 {
		t.Errorf("light-load response = %f, want exactly the service time 1", light)
	}
	if heavy < 10*light {
		t.Errorf("overload response %f not much larger than light-load %f", heavy, light)
	}
}

func TestQueueLengthAccounting(t *testing.T) {
	var sim eventsim.Simulator
	srv, _ := New(&sim, Config{ServiceTime: 2})
	_ = sim.At(0, func() {
		srv.Submit(Request{Deadline: NoDeadline})
		srv.Submit(Request{Deadline: NoDeadline})
	})
	sim.Run()
	// Queue holds 1 request during [0,2), 0 during [2,4): avg = 0.5.
	m := srv.Metrics()
	if math.Abs(m.AvgQueueLen-0.5) > 1e-12 {
		t.Errorf("AvgQueueLen = %f, want 0.5", m.AvgQueueLen)
	}
	if srv.QueueLen() != 0 || srv.Busy() != 0 {
		t.Error("server not drained")
	}
}

// Property: work conservation — with unbounded queue everything submitted
// eventually completes, and responses are >= service time.
func TestWorkConservationProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 30; trial++ {
		var sim eventsim.Simulator
		workers := 1 + rng.Intn(3)
		srv, _ := New(&sim, Config{ServiceTime: 0.5 + rng.Float64(), Workers: workers, Discipline: Discipline(rng.Intn(2))})
		n := 1 + rng.Intn(100)
		for i := 0; i < n; i++ {
			_ = sim.At(rng.Float64()*50, func() {
				srv.Submit(Request{Deadline: rng.Float64() * 100})
			})
		}
		sim.Run()
		m := srv.Metrics()
		if m.Completed != n || m.Rejected != 0 {
			t.Fatalf("trial %d: completed %d of %d", trial, m.Completed, n)
		}
		if m.Response.Min < srv.cfg.ServiceTime-1e-9 {
			t.Fatalf("trial %d: response %f below service time", trial, m.Response.Min)
		}
	}
}

func TestOnCompleteHook(t *testing.T) {
	var sim eventsim.Simulator
	type completion struct {
		tag                  uint64
		submitted, completed float64
	}
	var got []completion
	srv, err := New(&sim, Config{
		ServiceTime: 2,
		OnComplete: func(req Request, submitted, completed float64) {
			got = append(got, completion{req.Tag, submitted, completed})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = sim.At(0, func() {
		srv.Submit(Request{Tag: 7, Deadline: NoDeadline})
		srv.Submit(Request{Tag: 8, Deadline: NoDeadline})
	})
	sim.Run()
	if len(got) != 2 {
		t.Fatalf("OnComplete fired %d times, want 2", len(got))
	}
	if got[0].tag != 7 || got[0].submitted != 0 || got[0].completed != 2 {
		t.Errorf("first completion = %+v", got[0])
	}
	if got[1].tag != 8 || got[1].submitted != 0 || got[1].completed != 4 {
		t.Errorf("second completion = %+v", got[1])
	}
}

// TestZeroRequestMetrics: a server that never saw a request must report a
// well-defined all-zero snapshot, not NaNs from empty-slice means.
func TestZeroRequestMetrics(t *testing.T) {
	var sim eventsim.Simulator
	srv, err := New(&sim, Config{ServiceTime: 1})
	if err != nil {
		t.Fatal(err)
	}
	sim.Run()
	m := srv.Metrics()
	if m != (Metrics{}) {
		t.Fatalf("zero-request metrics = %+v, want zero value", m)
	}
	if math.IsNaN(m.AvgResponse) || math.IsNaN(m.AvgQueueLen) {
		t.Fatal("NaN leaked into empty metrics")
	}
}

// TestDeadlineMissBoundary pins the miss semantics: a completion exactly at
// its deadline is on time (strict now > Deadline), and the nearest float
// below the completion instant misses.
func TestDeadlineMissBoundary(t *testing.T) {
	run := func(deadline float64) Metrics {
		var sim eventsim.Simulator
		srv, _ := New(&sim, Config{ServiceTime: 2})
		_ = sim.At(0, func() {
			srv.Submit(Request{Deadline: deadline})
		})
		sim.Run()
		return srv.Metrics()
	}
	if m := run(2); m.DeadlineMisses != 0 {
		t.Errorf("completion exactly at deadline counted as miss: %+v", m)
	}
	if m := run(math.Nextafter(2, 0)); m.DeadlineMisses != 1 {
		t.Errorf("completion just past deadline not counted: %+v", m)
	}
}

// TestRejectionAccounting: Submit counts a rejected request as submitted
// (the uplink saw it), returns false, and leaves the queue untouched, so
// conservation holds through and after the rejection burst.
func TestRejectionAccounting(t *testing.T) {
	var sim eventsim.Simulator
	srv, _ := New(&sim, Config{ServiceTime: 1, QueueLimit: 1})
	var rejectedAt0 int
	_ = sim.At(0, func() {
		for i := 0; i < 4; i++ { // 1 in service, 1 queued, 2 rejected
			if !srv.Submit(Request{Deadline: NoDeadline}) {
				rejectedAt0++
			}
		}
		m := srv.Metrics()
		if m.Submitted != m.Completed+m.Rejected+srv.QueueLen()+srv.Busy() {
			t.Errorf("conservation inside burst: %+v", m)
		}
	})
	// After the backlog drains the bound no longer binds.
	_ = sim.At(10, func() {
		if !srv.Submit(Request{Deadline: NoDeadline}) {
			t.Error("post-drain submission rejected")
		}
	})
	sim.Run()
	m := srv.Metrics()
	if rejectedAt0 != 2 || m.Rejected != 2 {
		t.Errorf("rejected %d/%d, want 2", rejectedAt0, m.Rejected)
	}
	if m.Submitted != 5 || m.Completed != 3 {
		t.Errorf("metrics = %+v, want 5 submitted / 3 completed", m)
	}
	if m.MaxQueueLen != 1 {
		t.Errorf("MaxQueueLen = %d, want 1 (rejections never enter the queue)", m.MaxQueueLen)
	}
}

// TestSimultaneousCompletionOrder: workers finishing at the same instant
// fire OnComplete in service-start order — the eventsim (time, seq) rule,
// not map or heap accidents.
func TestSimultaneousCompletionOrder(t *testing.T) {
	var sim eventsim.Simulator
	var order []uint64
	srv, _ := New(&sim, Config{
		ServiceTime: 2,
		Workers:     3,
		OnComplete: func(req Request, _, completed float64) {
			if completed != 2 {
				t.Errorf("tag %d completed at %f, want 2", req.Tag, completed)
			}
			order = append(order, req.Tag)
		},
	})
	_ = sim.At(0, func() {
		for _, tag := range []uint64{11, 22, 33} {
			srv.Submit(Request{Tag: tag, Deadline: NoDeadline})
		}
	})
	sim.Run()
	if len(order) != 3 || order[0] != 11 || order[1] != 22 || order[2] != 33 {
		t.Fatalf("completion order %v, want [11 22 33]", order)
	}
}
