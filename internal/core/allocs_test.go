// Allocation guards for the analysis hot path. These lock in the flat
// AppearanceIndex win as a test, not just a benchmark: the CSR build is a
// constant number of allocations on any instance, so a regression back to
// per-page append growth (thousands of allocations on the paper's default
// workload) fails immediately.
//
// The file is an external test package so it can build the paper's default
// instance (n=1000, h=8, t=4..512) through workload and pamad, which both
// import core.
package core_test

import (
	"testing"

	"tcsa/internal/core"
	"tcsa/internal/pamad"
	"tcsa/internal/workload"
)

// paperProgram builds PAMAD's program for the paper's default uniform
// instance at 1/5 of the minimum channels (the knee regime every sweep
// point passes through).
func paperProgram(t *testing.T) *core.Program {
	t.Helper()
	gs, err := workload.GroupSet(workload.Uniform, 8, 1000, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	prog, _, err := pamad.Build(gs, core.CeilDiv(gs.MinChannels(), 5))
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func TestAppearanceIndexAllocations(t *testing.T) {
	prog := paperProgram(t)
	// The build contract is six allocations (index struct, offsets, scratch,
	// arena) regardless of instance size.
	if got := testing.AllocsPerRun(10, func() {
		core.BuildAppearanceIndex(prog)
	}); got > 6 {
		t.Errorf("BuildAppearanceIndex allocates %.0f times per run, want <= 6", got)
	}
}

func TestAnalyzeAllocations(t *testing.T) {
	prog := paperProgram(t)
	// Index build (4 data allocations + struct) plus the Analysis struct and
	// one arena for the three per-page series.
	if got := testing.AllocsPerRun(10, func() {
		core.Analyze(prog)
	}); got > 8 {
		t.Errorf("Analyze allocates %.0f times per run, want <= 8", got)
	}
}
