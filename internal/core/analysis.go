package core

import (
	"fmt"
	"sort"
)

// Analysis is an immutable snapshot of a program's per-page appearance
// structure plus the closed-form delay quantities derived from it. Build one
// with Analyze after the program is complete; it does not track later edits.
//
// The delay model matches Section 4.1 of the paper: a client starts to
// listen at a time uniformly distributed over the cycle and waits for the
// next appearance of its page. With appearance columns a_0 < ... < a_{s-1}
// and cyclic gaps g_k, for a page with expected time t:
//
//	E[wait]        = sum_k g_k^2 / (2L)
//	E[delay]       = sum_k max(g_k - t, 0)^2 / (2L)
//	P[delay > 0]   = sum_k max(g_k - t, 0) / L
type Analysis struct {
	program *Program
	ix      *AppearanceIndex
	// perPageDelay[i] is E[delay] of page i; perPageWait likewise.
	perPageDelay []float64
	perPageWait  []float64
	perPageMiss  []float64
	maxDelay     float64
}

// Analyze computes the appearance snapshot of p. Pages that never appear
// get +Inf-free sentinel treatment: their wait and delay are reported as the
// full cycle length (the worst deterministic bound) and miss probability 1.
func Analyze(p *Program) *Analysis {
	n := p.gs.Pages()
	// One arena for the three per-page series keeps Analyze at a small
	// constant allocation count (guarded by TestAnalyzeAllocations).
	buf := make([]float64, 3*n)
	a := &Analysis{
		program:      p,
		ix:           BuildAppearanceIndex(p),
		perPageDelay: buf[:n:n],
		perPageWait:  buf[n : 2*n : 2*n],
		perPageMiss:  buf[2*n:],
	}
	L := float64(p.length)
	for id := 0; id < n; id++ {
		cols := a.ix.Columns(PageID(id))
		t := float64(p.gs.TimeOf(PageID(id)))
		if len(cols) == 0 {
			a.perPageWait[id] = L
			a.perPageDelay[id] = L
			a.perPageMiss[id] = 1
			if L > a.maxDelay {
				a.maxDelay = L
			}
			continue
		}
		var wait, delay, miss float64
		for k := 0; k < len(cols); k++ {
			var g float64
			if k+1 < len(cols) {
				g = float64(cols[k+1] - cols[k])
			} else {
				g = float64(int(cols[0]) + p.length - int(cols[k]))
			}
			wait += g * g / (2 * L)
			if d := g - t; d > 0 {
				delay += d * d / (2 * L)
				miss += d / L
				if d > a.maxDelay {
					a.maxDelay = d
				}
			}
		}
		a.perPageWait[id] = wait
		a.perPageDelay[id] = delay
		a.perPageMiss[id] = miss
	}
	return a
}

// Program returns the analyzed program.
func (a *Analysis) Program() *Program { return a.program }

// Index returns the appearance index snapshot backing the analysis.
func (a *Analysis) Index() *AppearanceIndex { return a.ix }

// PageDelay returns E[delay] (slots beyond the expected time) of page id.
func (a *Analysis) PageDelay(id PageID) float64 { return a.perPageDelay[id] }

// PageWait returns E[wait] (slots from tune-in to reception) of page id.
func (a *Analysis) PageWait(id PageID) float64 { return a.perPageWait[id] }

// PageMissProbability returns P[delay > 0] for page id.
func (a *Analysis) PageMissProbability(id PageID) float64 { return a.perPageMiss[id] }

// AvgDelay returns the paper's AvgD metric under uniform page access:
// (1/n) * sum_i E[delay of page i].
func (a *Analysis) AvgDelay() float64 { return mean(a.perPageDelay) }

// AvgWait returns the mean expected waiting time under uniform page access.
func (a *Analysis) AvgWait() float64 { return mean(a.perPageWait) }

// MissProbability returns the mean probability that a uniformly chosen
// request misses its expected time.
func (a *Analysis) MissProbability() float64 { return mean(a.perPageMiss) }

// MaxDelay returns the worst-case delay beyond the expected time over all
// pages and start instants.
func (a *Analysis) MaxDelay() float64 { return a.maxDelay }

// WeightedAvgDelay returns AvgD under the supplied per-page access
// probabilities, which must sum to ~1 and have length n.
func (a *Analysis) WeightedAvgDelay(prob []float64) (float64, error) {
	if len(prob) != len(a.perPageDelay) {
		return 0, fmt.Errorf("%w: %d probabilities for %d pages", ErrPageRange, len(prob), len(a.perPageDelay))
	}
	var d float64
	for i, p := range prob {
		d += p * a.perPageDelay[i]
	}
	return d, nil
}

// Appearances returns the sorted distinct appearance columns of page id as
// a freshly allocated slice; Index().Columns(id) is the allocation-free
// equivalent.
func (a *Analysis) Appearances(id PageID) []int {
	return a.ix.AppendColumns(nil, id)
}

// NextAfter returns the waiting time from continuous cycle instant u (in
// [0, cycle length)) until the next appearance of page id, treating the
// program as infinitely repeating. A page broadcast exactly at u is received
// with zero wait. Pages that never appear wait a full cycle.
func (a *Analysis) NextAfter(id PageID, u float64) float64 {
	cols := a.ix.Columns(id)
	L := float64(a.program.length)
	if len(cols) == 0 {
		return L
	}
	// First column >= u.
	target := int32(ceilF(u))
	k := sort.Search(len(cols), func(i int) bool { return cols[i] >= target })
	if k == len(cols) {
		return float64(cols[0]) + L - u
	}
	return float64(cols[k]) - u
}

// ceilF is a dependency-free ceil for non-negative floats. Values at or
// above 2^63 never fit an int64 — that conversion is implementation-defined
// in Go — but every float64 that large is already integral (the mantissa
// has 52 fraction bits), so they are their own ceiling.
func ceilF(x float64) float64 {
	if x >= 1<<63 {
		return x
	}
	i := float64(int64(x))
	if i < x {
		return i + 1
	}
	return i
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// GroupDelay returns the mean expected delay of group i's pages (uniform
// access within the group).
func (a *Analysis) GroupDelay(i int) float64 {
	gs := a.program.gs
	first, count := gs.GroupPages(i)
	var sum float64
	for j := 0; j < count; j++ {
		sum += a.perPageDelay[first+PageID(j)]
	}
	return sum / float64(count)
}

// GroupWait returns the mean expected waiting time of group i's pages.
func (a *Analysis) GroupWait(i int) float64 {
	gs := a.program.gs
	first, count := gs.GroupPages(i)
	var sum float64
	for j := 0; j < count; j++ {
		sum += a.perPageWait[first+PageID(j)]
	}
	return sum / float64(count)
}

// WorstGap returns the largest inter-appearance gap (cyclic) of page id in
// slots; pages that never appear report the cycle length.
func (a *Analysis) WorstGap(id PageID) int {
	return a.ix.WorstGap(id)
}
