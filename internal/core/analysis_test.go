package core

import (
	"math"
	"math/rand"
	"testing"
)

// TestAnalysisSinglePageEveryK checks the textbook case: one page of
// expected time t broadcast every g slots has
// E[wait] = g/2, E[delay] = (g-t)^2/(2g), P[miss] = (g-t)/g.
func TestAnalysisSinglePageEveryK(t *testing.T) {
	tests := []struct {
		t, g int
	}{
		{2, 2}, {2, 4}, {2, 8}, {4, 6}, {4, 12}, {3, 9},
	}
	for _, tt := range tests {
		gs := MustGroupSet([]Group{{tt.t, 1}})
		p, err := NewProgram(gs, 1, tt.g)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Place(0, 0, 0); err != nil {
			t.Fatal(err)
		}
		a := Analyze(p)
		g, tf := float64(tt.g), float64(tt.t)
		if got, want := a.PageWait(0), g/2; absDiff(got, want) > 1e-12 {
			t.Errorf("t=%d g=%d: wait = %f, want %f", tt.t, tt.g, got, want)
		}
		wantDelay := 0.0
		wantMiss := 0.0
		if g > tf {
			wantDelay = (g - tf) * (g - tf) / (2 * g)
			wantMiss = (g - tf) / g
		}
		if got := a.PageDelay(0); absDiff(got, wantDelay) > 1e-12 {
			t.Errorf("t=%d g=%d: delay = %f, want %f", tt.t, tt.g, got, wantDelay)
		}
		if got := a.PageMissProbability(0); absDiff(got, wantMiss) > 1e-12 {
			t.Errorf("t=%d g=%d: miss = %f, want %f", tt.t, tt.g, got, wantMiss)
		}
	}
}

func TestAnalysisUnevenGaps(t *testing.T) {
	// Page t=2 at columns 0 and 3 of a length-8 cycle: gaps 3 and 5.
	// E[delay] = (1^2 + 3^2)/(2*8) = 10/16; E[wait] = (9+25)/16.
	gs := MustGroupSet([]Group{{2, 1}})
	p, _ := NewProgram(gs, 1, 8)
	mustPlaceAll(p, [][3]int{{0, 0, 0}, {0, 3, 0}})
	a := Analyze(p)
	if got, want := a.PageDelay(0), 10.0/16.0; absDiff(got, want) > 1e-12 {
		t.Errorf("delay = %f, want %f", got, want)
	}
	if got, want := a.PageWait(0), 34.0/16.0; absDiff(got, want) > 1e-12 {
		t.Errorf("wait = %f, want %f", got, want)
	}
	if got, want := a.MaxDelay(), 3.0; got != want {
		t.Errorf("MaxDelay = %f, want %f", got, want)
	}
}

func TestAnalysisMissingPage(t *testing.T) {
	gs := MustGroupSet([]Group{{2, 2}})
	p, _ := NewProgram(gs, 1, 6)
	mustPlaceAll(p, [][3]int{{0, 0, 0}}) // page 1 never broadcast
	a := Analyze(p)
	if got := a.PageDelay(1); got != 6 {
		t.Errorf("missing page delay = %f, want cycle length 6", got)
	}
	if got := a.PageMissProbability(1); got != 1 {
		t.Errorf("missing page miss = %f, want 1", got)
	}
}

func TestAvgDelayIsMeanOverPages(t *testing.T) {
	gs := MustGroupSet([]Group{{2, 2}})
	p, _ := NewProgram(gs, 1, 8)
	// Page 0 every 4 slots (delay (4-2)^2/8 = 0.5); page 1 every 8
	// (delay (8-2)^2/16 = 2.25).
	mustPlaceAll(p, [][3]int{{0, 0, 0}, {0, 4, 0}, {0, 1, 1}})
	a := Analyze(p)
	if got, want := a.AvgDelay(), (0.5+2.25)/2; absDiff(got, want) > 1e-12 {
		t.Errorf("AvgDelay = %f, want %f", got, want)
	}
	w, err := a.WeightedAvgDelay([]float64{1, 0})
	if err != nil || absDiff(w, 0.5) > 1e-12 {
		t.Errorf("WeightedAvgDelay = %f,%v want 0.5,nil", w, err)
	}
	if _, err := a.WeightedAvgDelay([]float64{1}); err == nil {
		t.Error("wrong-length weights accepted")
	}
}

func TestNextAfter(t *testing.T) {
	gs := MustGroupSet([]Group{{2, 2}}) // page 1 never placed
	p, _ := NewProgram(gs, 1, 8)
	mustPlaceAll(p, [][3]int{{0, 1, 0}, {0, 5, 0}})
	a := Analyze(p)
	tests := []struct {
		u    float64
		want float64
	}{
		{0, 1}, {1, 0}, {1.5, 3.5}, {5, 0}, {5.5, 3.5}, {7.9, 1.1},
	}
	for _, tt := range tests {
		if got := a.NextAfter(0, tt.u); absDiff(got, tt.want) > 1e-9 {
			t.Errorf("NextAfter(0, %f) = %f, want %f", tt.u, got, tt.want)
		}
	}
	if got := a.NextAfter(1, 3); got != 8 {
		t.Errorf("NextAfter(missing page) = %f, want cycle length 8", got)
	}
}

// TestNextAfterConsistentWithWait cross-checks the closed-form E[wait]
// against Monte-Carlo integration of NextAfter.
func TestNextAfterConsistentWithWait(t *testing.T) {
	gs := MustGroupSet([]Group{{4, 3}})
	p, _ := NewProgram(gs, 2, 12)
	mustPlaceAll(p, [][3]int{
		{0, 0, 0}, {0, 7, 0}, {1, 3, 1}, {0, 9, 1}, {1, 6, 2},
	})
	a := Analyze(p)
	rng := rand.New(rand.NewSource(7))
	const samples = 200000
	for id := PageID(0); id < 3; id++ {
		var sum float64
		for s := 0; s < samples; s++ {
			sum += a.NextAfter(id, rng.Float64()*12)
		}
		got := sum / samples
		want := a.PageWait(id)
		if math.Abs(got-want) > 0.03 {
			t.Errorf("page %d: MC wait %f vs closed form %f", id, got, want)
		}
	}
}

func TestAnalysisMissProbabilityAggregates(t *testing.T) {
	gs := MustGroupSet([]Group{{2, 1}, {4, 1}})
	p, _ := NewProgram(gs, 1, 8)
	// Page 0 (t=2) every 8: miss (8-2)/8 = 0.75. Page 1 (t=4) every 4: 0.
	mustPlaceAll(p, [][3]int{{0, 0, 0}, {0, 1, 1}, {0, 5, 1}})
	a := Analyze(p)
	if got, want := a.MissProbability(), 0.75/2; absDiff(got, want) > 1e-12 {
		t.Errorf("MissProbability = %f, want %f", got, want)
	}
	if got := a.AvgWait(); got <= 0 {
		t.Errorf("AvgWait = %f, want > 0", got)
	}
	if a.Program() != p {
		t.Error("Program() does not return analyzed program")
	}
}

func TestCeilDiv(t *testing.T) {
	tests := []struct{ a, b, want int }{
		{0, 1, 0}, {1, 1, 1}, {1, 2, 1}, {2, 2, 1}, {3, 2, 2},
		{25, 3, 9}, {24, 3, 8}, {1000, 512, 2}, {7, 0, 0}, {-3, 2, -1},
	}
	for _, tt := range tests {
		if got := CeilDiv(tt.a, tt.b); got != tt.want {
			t.Errorf("CeilDiv(%d,%d) = %d, want %d", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestGCDLCM(t *testing.T) {
	if got := gcd(12, 18); got != 6 {
		t.Errorf("gcd(12,18) = %d, want 6", got)
	}
	if got := lcm(4, 6); got != 12 {
		t.Errorf("lcm(4,6) = %d, want 12", got)
	}
	if got := lcm(0, 5); got != 0 {
		t.Errorf("lcm(0,5) = %d, want 0", got)
	}
}

func TestGroupDelayAndWait(t *testing.T) {
	gs := MustGroupSet([]Group{{2, 2}, {4, 1}})
	p, _ := NewProgram(gs, 1, 8)
	// Page 0 every 4 (delay 0.5), page 1 every 8 (delay 2.25), page 2
	// (t=4) every 8 (delay (8-4)^2/16 = 1).
	mustPlaceAll(p, [][3]int{{0, 0, 0}, {0, 4, 0}, {0, 1, 1}, {0, 2, 2}})
	a := Analyze(p)
	if got, want := a.GroupDelay(0), (0.5+2.25)/2; absDiff(got, want) > 1e-12 {
		t.Errorf("GroupDelay(0) = %f, want %f", got, want)
	}
	if got, want := a.GroupDelay(1), 1.0; absDiff(got, want) > 1e-12 {
		t.Errorf("GroupDelay(1) = %f, want %f", got, want)
	}
	if a.GroupWait(0) <= 0 || a.GroupWait(1) <= 0 {
		t.Error("group waits not positive")
	}
}

func TestWorstGap(t *testing.T) {
	gs := MustGroupSet([]Group{{2, 2}})
	p, _ := NewProgram(gs, 1, 8)
	mustPlaceAll(p, [][3]int{{0, 0, 0}, {0, 3, 0}}) // gaps 3 and 5
	a := Analyze(p)
	if got := a.WorstGap(0); got != 5 {
		t.Errorf("WorstGap = %d, want 5", got)
	}
	if got := a.WorstGap(1); got != 8 {
		t.Errorf("WorstGap(absent) = %d, want cycle 8", got)
	}
}

// TestCeilF pins the dependency-free ceiling against math.Ceil, including
// the 2^63 boundary where a bare int64 conversion would overflow into
// implementation-defined behaviour.
func TestCeilF(t *testing.T) {
	const two63 = float64(1 << 63)
	cases := []float64{
		0, 0.25, 0.5, 1, 1.0000001, 3.999, 4,
		float64(1 << 52), float64(1<<52) + 0.5,
		float64(1 << 62),
		math.Nextafter(two63, 0), // largest float64 below 2^63
		two63,
		math.Nextafter(two63, math.Inf(1)),
		float64(1) * (1 << 63) * 2, // 2^64
		1e300,
	}
	for _, x := range cases {
		if got, want := ceilF(x), math.Ceil(x); got != want {
			t.Errorf("ceilF(%g) = %g, want %g", x, got, want)
		}
	}
}
