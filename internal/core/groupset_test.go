package core

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewGroupSetValidation(t *testing.T) {
	tests := []struct {
		name   string
		groups []Group
		wantOK bool
	}{
		{"single group", []Group{{Time: 4, Count: 10}}, true},
		{"paper figure 2", []Group{{2, 3}, {4, 5}, {8, 3}}, true},
		{"divisible non-geometric", []Group{{2, 1}, {4, 1}, {16, 1}}, true},
		{"empty", nil, false},
		{"zero time", []Group{{0, 1}}, false},
		{"negative time", []Group{{-2, 1}}, false},
		{"zero count", []Group{{2, 0}}, false},
		{"negative count", []Group{{2, -1}}, false},
		{"equal times", []Group{{2, 1}, {2, 1}}, false},
		{"decreasing times", []Group{{4, 1}, {2, 1}}, false},
		{"non-divisible", []Group{{2, 1}, {3, 1}}, false},
		{"non-divisible later", []Group{{2, 1}, {4, 1}, {6, 1}}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			gs, err := NewGroupSet(tt.groups)
			if tt.wantOK {
				if err != nil {
					t.Fatalf("NewGroupSet(%v) error: %v", tt.groups, err)
				}
				if gs.Len() != len(tt.groups) {
					t.Errorf("Len() = %d, want %d", gs.Len(), len(tt.groups))
				}
				return
			}
			if err == nil {
				t.Fatalf("NewGroupSet(%v) succeeded, want error", tt.groups)
			}
			if !errors.Is(err, ErrInvalidGroupSet) {
				t.Errorf("error %v is not ErrInvalidGroupSet", err)
			}
		})
	}
}

func TestGeometric(t *testing.T) {
	gs, err := Geometric(4, 2, []int{10, 20, 30})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{4, 8, 16}
	for i, w := range want {
		if got := gs.Group(i).Time; got != w {
			t.Errorf("t_%d = %d, want %d", i+1, got, w)
		}
	}
	if gs.Pages() != 60 {
		t.Errorf("Pages() = %d, want 60", gs.Pages())
	}
	if c, ok := gs.Ratio(); !ok || c != 2 {
		t.Errorf("Ratio() = %d,%v want 2,true", c, ok)
	}
}

func TestGeometricRejectsBadInput(t *testing.T) {
	if _, err := Geometric(0, 2, []int{1}); err == nil {
		t.Error("t1=0 accepted")
	}
	if _, err := Geometric(2, 1, []int{1}); err == nil {
		t.Error("c=1 accepted")
	}
	if _, err := Geometric(2, 2, []int{1, 0}); err == nil {
		t.Error("zero count accepted")
	}
}

func TestRatioNonUniform(t *testing.T) {
	gs := MustGroupSet([]Group{{2, 1}, {4, 1}, {16, 1}})
	if _, ok := gs.Ratio(); ok {
		t.Error("Ratio() reported uniform ratio for 2,4,16")
	}
}

// TestMinChannelsPaperExample reproduces the Section 3.1 example:
// P=(2,3), t=(2,4) => ceil(2/2 + 3/4) = ceil(1.75) = 2.
func TestMinChannelsPaperExample(t *testing.T) {
	gs := MustGroupSet([]Group{{2, 2}, {4, 3}})
	if got := gs.MinChannels(); got != 2 {
		t.Errorf("MinChannels() = %d, want 2", got)
	}
}

// TestMinChannelsFigure2 reproduces the Figure 2 instance: P=(3,5,3),
// t=(2,4,8) => ceil(3/2 + 5/4 + 3/8) = ceil(3.125) = 4 channels.
func TestMinChannelsFigure2(t *testing.T) {
	gs := MustGroupSet([]Group{{2, 3}, {4, 5}, {8, 3}})
	if got := gs.MinChannels(); got != 4 {
		t.Errorf("MinChannels() = %d, want 4", got)
	}
}

func TestMinChannelsTable(t *testing.T) {
	tests := []struct {
		groups []Group
		want   int
	}{
		{[]Group{{1, 1}}, 1},
		{[]Group{{1, 7}}, 7},
		{[]Group{{4, 4}}, 1},
		{[]Group{{4, 5}}, 2},
		{[]Group{{2, 2}, {4, 3}}, 2},
		{[]Group{{2, 3}, {4, 5}, {8, 3}}, 4},
		{[]Group{{512, 1000}}, 2},
		{[]Group{{4, 125}, {8, 125}, {16, 125}, {32, 125}, {64, 125}, {128, 125}, {256, 125}, {512, 125}}, 63},
	}
	for _, tt := range tests {
		gs := MustGroupSet(tt.groups)
		if got := gs.MinChannels(); got != tt.want {
			t.Errorf("MinChannels(%v) = %d, want %d", gs, got, tt.want)
		}
	}
}

// Property: MinChannels equals ceil(Density) within floating error, and
// SufficientFor is its exact predicate form.
func TestMinChannelsMatchesDensity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 500; trial++ {
		gs := randomGroupSet(rng)
		n := gs.MinChannels()
		d := gs.Density()
		if float64(n) < d-1e-9 || float64(n-1) >= d+1e-9 {
			t.Fatalf("instance %v: MinChannels=%d inconsistent with density %f", gs, n, d)
		}
		if !gs.SufficientFor(n) || gs.SufficientFor(n-1) {
			t.Fatalf("instance %v: SufficientFor inconsistent at n=%d", gs, n)
		}
	}
}

func TestGroupOfAndTimeOf(t *testing.T) {
	gs := MustGroupSet([]Group{{2, 3}, {4, 5}, {8, 3}})
	wantGroups := []int{0, 0, 0, 1, 1, 1, 1, 1, 2, 2, 2}
	for id, wg := range wantGroups {
		if got := gs.GroupOf(PageID(id)); got != wg {
			t.Errorf("GroupOf(%d) = %d, want %d", id, got, wg)
		}
		if got, want := gs.TimeOf(PageID(id)), gs.Group(wg).Time; got != want {
			t.Errorf("TimeOf(%d) = %d, want %d", id, got, want)
		}
	}
	if gs.GroupOf(-1) != -1 || gs.GroupOf(11) != -1 {
		t.Error("GroupOf out-of-range did not return -1")
	}
	if gs.TimeOf(99) != 0 {
		t.Error("TimeOf out-of-range did not return 0")
	}
}

func TestPageAtAndGroupPages(t *testing.T) {
	gs := MustGroupSet([]Group{{2, 3}, {4, 5}, {8, 3}})
	if got := gs.PageAt(1, 0); got != 3 {
		t.Errorf("PageAt(1,0) = %d, want 3", got)
	}
	if got := gs.PageAt(2, 2); got != 10 {
		t.Errorf("PageAt(2,2) = %d, want 10", got)
	}
	first, count := gs.GroupPages(1)
	if first != 3 || count != 5 {
		t.Errorf("GroupPages(1) = %d,%d want 3,5", first, count)
	}
}

func TestGroupSetAccessors(t *testing.T) {
	groups := []Group{{2, 3}, {4, 5}, {8, 3}}
	gs := MustGroupSet(groups)
	if gs.MaxTime() != 8 {
		t.Errorf("MaxTime() = %d, want 8", gs.MaxTime())
	}
	ts, ps := gs.Times(), gs.Counts()
	for i, g := range groups {
		if ts[i] != g.Time || ps[i] != g.Count {
			t.Errorf("Times/Counts[%d] = %d/%d, want %d/%d", i, ts[i], ps[i], g.Time, g.Count)
		}
	}
	gg := gs.Groups()
	gg[0].Count = 999 // must not alias internal state
	if gs.Group(0).Count != 3 {
		t.Error("Groups() aliases internal state")
	}
}

func TestGroupSetEqual(t *testing.T) {
	a := MustGroupSet([]Group{{2, 3}, {4, 5}})
	b := MustGroupSet([]Group{{2, 3}, {4, 5}})
	c := MustGroupSet([]Group{{2, 3}, {4, 6}})
	d := MustGroupSet([]Group{{2, 3}})
	if !a.Equal(b) {
		t.Error("identical sets not Equal")
	}
	if a.Equal(c) || a.Equal(d) {
		t.Error("different sets reported Equal")
	}
	var nilSet *GroupSet
	if a.Equal(nilSet) {
		t.Error("Equal(nil) = true")
	}
}

func TestGroupSetString(t *testing.T) {
	gs := MustGroupSet([]Group{{2, 3}, {4, 5}})
	if got, want := gs.String(), "{t=2:P=3, t=4:P=5}"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestMustGroupSetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustGroupSet did not panic on invalid input")
		}
	}()
	MustGroupSet(nil)
}

// Property: GroupOf(PageAt(i, j)) == i for all in-range (i, j).
func TestGroupOfInversesPageAt(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		gs := randomGroupSet(rng)
		for i := 0; i < gs.Len(); i++ {
			for j := 0; j < gs.Group(i).Count; j++ {
				if gs.GroupOf(gs.PageAt(i, j)) != i {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// randomGroupSet draws a random valid instance: 1..6 groups, geometric-ish
// divisibility chain, counts 1..40.
func randomGroupSet(rng *rand.Rand) *GroupSet {
	h := 1 + rng.Intn(6)
	groups := make([]Group, h)
	t := 1 + rng.Intn(6)
	for i := 0; i < h; i++ {
		groups[i] = Group{Time: t, Count: 1 + rng.Intn(40)}
		t *= 2 + rng.Intn(3)
	}
	return MustGroupSet(groups)
}
