// Package core implements the data model of "Time-Constrained Service on
// Air" (Chung, Chen, Lee; ICDCS 2005): broadcast pages annotated with
// expected times, geometric expected-time groups, cyclic multi-channel
// broadcast programs, the minimum-channel bound of Theorem 3.1, and exact
// (closed-form) delay analysis of arbitrary programs.
//
// # Model
//
// A broadcast server pushes n data pages over a set of broadcast channels.
// Time is divided into unit slots; broadcasting one page takes one slot.
// Each page carries an expected time t: no matter when a client starts to
// listen, the page should be received within t slots of the start.
//
// Expected times are organised into h groups G_1..G_h with group times
// t_1 < t_2 < ... < t_h where every t_i divides t_{i+1} (the paper uses the
// special case t_{i+1} = c*t_i for a constant integer ratio c). Arbitrary
// per-page expected times are mapped into this shape by Rearrange, which
// rounds each time down so the original constraint is never relaxed.
//
// A broadcast program is a cyclic channels x length grid of page IDs. The
// program is valid (every client receives every page within its expected
// time regardless of start instant) exactly when every page of group i
// appears within the first t_i columns and consecutive appearances —
// including the cyclic wrap — are at most t_i columns apart.
//
//lint:deterministic bit-identical replay contract: no wall clock, no global RNG, no map-order folds
package core
