package core

import (
	"fmt"
	"sort"
)

// Rearrangement is the result of mapping arbitrary per-page expected times
// onto the paper's geometric group structure (Section 2). Every new time is
// <= its original (constraints are tightened, never relaxed) and is the
// largest value t_1*c^k not exceeding the original, so bandwidth waste is
// minimal within the chosen (t_1, c).
type Rearrangement struct {
	// Set is the resulting validated group set.
	Set *GroupSet
	// Ratio is the geometric ratio c used.
	Ratio int
	// GroupIndex[i] is the 0-based group of input page i.
	GroupIndex []int
	// NewTimes[i] is the rearranged expected time of input page i.
	NewTimes []int
	// IDs[i] is the PageID assigned to input page i in Set. Within a group,
	// IDs preserve input order.
	IDs []PageID
	// Waste is the mean relative tightening, avg((orig-new)/orig), a measure
	// of the bandwidth over-provisioning introduced by the rearrangement.
	Waste float64
}

// Rearrange maps arbitrary positive expected times onto geometric groups
// with base t_1 = min(times) and ratio c: each time t becomes
// t_1 * c^floor(log_c(t/t_1)). The paper's example (times 2,3,4,6,9 with
// c=2 becoming 2,2,4,4,8) is reproduced by this function.
func Rearrange(times []int, c int) (*Rearrangement, error) {
	if len(times) == 0 {
		return nil, fmt.Errorf("%w: no expected times", ErrInvalidGroupSet)
	}
	if c < 2 {
		return nil, fmt.Errorf("%w: ratio %d < 2", ErrInvalidGroupSet, c)
	}
	t1 := times[0]
	for _, t := range times {
		if t < 1 {
			return nil, fmt.Errorf("%w: expected time %d < 1", ErrInvalidGroupSet, t)
		}
		if t < t1 {
			t1 = t
		}
	}

	// Round each time down to the nearest t1*c^k and bucket by k.
	newTimes := make([]int, len(times))
	levels := make([]int, len(times))
	counts := map[int]int{} // level k -> count
	var waste float64
	for i, t := range times {
		k := 0
		v := t1
		for v <= t/c && v*c <= t { // advance while t1*c^(k+1) <= t
			v *= c
			k++
		}
		newTimes[i] = v
		levels[i] = k
		counts[k]++
		waste += float64(t-v) / float64(t)
	}
	waste /= float64(len(times))

	// Build groups in ascending level order.
	levelList := make([]int, 0, len(counts))
	for k := range counts {
		levelList = append(levelList, k)
	}
	sort.Ints(levelList)
	groups := make([]Group, len(levelList))
	levelToGroup := make(map[int]int, len(levelList))
	for gi, k := range levelList {
		t := t1
		for j := 0; j < k; j++ {
			t *= c
		}
		groups[gi] = Group{Time: t, Count: counts[k]}
		levelToGroup[k] = gi
	}
	gs, err := NewGroupSet(groups)
	if err != nil {
		return nil, err
	}

	// Assign IDs: within each group, input order is preserved.
	next := make([]int, len(groups))
	groupIdx := make([]int, len(times))
	ids := make([]PageID, len(times))
	for i := range times {
		gi := levelToGroup[levels[i]]
		groupIdx[i] = gi
		ids[i] = gs.PageAt(gi, next[gi])
		next[gi]++
	}
	return &Rearrangement{
		Set:        gs,
		Ratio:      c,
		GroupIndex: groupIdx,
		NewTimes:   newTimes,
		IDs:        ids,
		Waste:      waste,
	}, nil
}

// RearrangeAuto tries every ratio c in [2, maxRatio] and returns the
// rearrangement minimising the Theorem 3.1 minimum channel count, breaking
// ties by smaller Waste and then by smaller c. maxRatio < 2 defaults to 8.
func RearrangeAuto(times []int, maxRatio int) (*Rearrangement, error) {
	if maxRatio < 2 {
		maxRatio = 8
	}
	var best *Rearrangement
	for c := 2; c <= maxRatio; c++ {
		r, err := Rearrange(times, c)
		if err != nil {
			return nil, err
		}
		if best == nil || better(r, best) {
			best = r
		}
	}
	return best, nil
}

// better reports whether a is a strictly preferable rearrangement to b.
func better(a, b *Rearrangement) bool {
	an, bn := a.Set.MinChannels(), b.Set.MinChannels()
	if an != bn {
		return an < bn
	}
	if a.Waste != b.Waste {
		return a.Waste < b.Waste
	}
	return a.Ratio < b.Ratio
}
