package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestRearrangePaperExample reproduces the Section 2 example: expected times
// 2,3,4,6,9 with ratio 2 become 2,2,4,4,8 forming groups t=(2,4,8) with
// counts (2,2,1).
func TestRearrangePaperExample(t *testing.T) {
	r, err := Rearrange([]int{2, 3, 4, 6, 9}, 2)
	if err != nil {
		t.Fatal(err)
	}
	wantTimes := []int{2, 2, 4, 4, 8}
	for i, w := range wantTimes {
		if r.NewTimes[i] != w {
			t.Errorf("NewTimes[%d] = %d, want %d", i, r.NewTimes[i], w)
		}
	}
	want := MustGroupSet([]Group{{2, 2}, {4, 2}, {8, 1}})
	if !r.Set.Equal(want) {
		t.Errorf("Set = %v, want %v", r.Set, want)
	}
	if r.Ratio != 2 {
		t.Errorf("Ratio = %d, want 2", r.Ratio)
	}
}

func TestRearrangeGroupIndexAndIDs(t *testing.T) {
	r, err := Rearrange([]int{9, 2, 6, 3, 4}, 2)
	if err != nil {
		t.Fatal(err)
	}
	// New times: 8,2,4,2,4 -> groups 2,0,1,0,1.
	wantGroup := []int{2, 0, 1, 0, 1}
	for i, wg := range wantGroup {
		if r.GroupIndex[i] != wg {
			t.Errorf("GroupIndex[%d] = %d, want %d", i, r.GroupIndex[i], wg)
		}
	}
	// IDs must be a permutation of 0..n-1 consistent with groups.
	seen := map[PageID]bool{}
	for i, id := range r.IDs {
		if seen[id] {
			t.Fatalf("duplicate PageID %d", id)
		}
		seen[id] = true
		if got := r.Set.GroupOf(id); got != r.GroupIndex[i] {
			t.Errorf("GroupOf(IDs[%d]=%d) = %d, want %d", i, id, got, r.GroupIndex[i])
		}
	}
}

func TestRearrangeErrors(t *testing.T) {
	if _, err := Rearrange(nil, 2); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := Rearrange([]int{1, 2}, 1); err == nil {
		t.Error("ratio 1 accepted")
	}
	if _, err := Rearrange([]int{0, 2}, 2); err == nil {
		t.Error("non-positive time accepted")
	}
}

func TestRearrangeSinglePage(t *testing.T) {
	r, err := Rearrange([]int{7}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if r.Set.Len() != 1 || r.Set.Group(0).Time != 7 {
		t.Errorf("single-page rearrangement = %v, want {t=7:P=1}", r.Set)
	}
	if r.Waste != 0 {
		t.Errorf("Waste = %f, want 0", r.Waste)
	}
}

// Rearrangement invariants, property-checked:
//  1. new time <= original (never relax a constraint);
//  2. new time > original/c (closest representable: one more factor of c
//     would exceed the original);
//  3. new time = t_min * c^k for some k >= 0;
//  4. the resulting GroupSet validates.
func TestRearrangeProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		c := 2 + rng.Intn(4)
		times := make([]int, n)
		for i := range times {
			times[i] = 1 + rng.Intn(500)
		}
		r, err := Rearrange(times, c)
		if err != nil {
			return false
		}
		tmin := times[0]
		for _, v := range times {
			if v < tmin {
				tmin = v
			}
		}
		for i, orig := range times {
			nt := r.NewTimes[i]
			if nt > orig {
				return false
			}
			if nt*c <= orig {
				return false // not the closest power
			}
			v := nt
			for v > tmin {
				if v%c != 0 {
					return false
				}
				v /= c
			}
			if v != tmin {
				return false
			}
		}
		return r.Set.Pages() == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestRearrangeWaste(t *testing.T) {
	// times 2 and 3 with c=2: page 2 keeps 2 (waste 0), page 3 -> 2
	// (waste 1/3); mean = 1/6.
	r, err := Rearrange([]int{2, 3}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if want := 1.0 / 6.0; absDiff(r.Waste, want) > 1e-12 {
		t.Errorf("Waste = %f, want %f", r.Waste, want)
	}
}

func TestRearrangeAutoPicksLowerChannelCount(t *testing.T) {
	// Times heavily favouring ratio 3: 5, 15, 45, 135.
	times := []int{5, 15, 45, 135, 15, 45}
	r, err := RearrangeAuto(times, 8)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Rearrange(times, 2)
	if err != nil {
		t.Fatal(err)
	}
	if r.Set.MinChannels() > r2.Set.MinChannels() {
		t.Errorf("auto rearrangement needs %d channels, worse than c=2's %d",
			r.Set.MinChannels(), r2.Set.MinChannels())
	}
	if r.Ratio != 3 {
		t.Errorf("Ratio = %d, want 3 (zero waste)", r.Ratio)
	}
	if r.Waste != 0 {
		t.Errorf("Waste = %f, want 0 for exact geometric input", r.Waste)
	}
}

func TestRearrangeAutoDefaultMaxRatio(t *testing.T) {
	if _, err := RearrangeAuto([]int{4, 8, 16}, 0); err != nil {
		t.Fatalf("default maxRatio failed: %v", err)
	}
}

func absDiff(a, b float64) float64 {
	if a > b {
		return a - b
	}
	return b - a
}
