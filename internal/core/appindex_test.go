package core

import (
	"math/rand"
	"testing"
)

// randomProgram fills a fraction of a channels x length grid with random
// pages (duplicates across channels included, to exercise column dedup).
func randomProgram(t *testing.T, rng *rand.Rand, groups []Group, channels, length int) *Program {
	t.Helper()
	gs, err := NewGroupSet(groups)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewProgram(gs, channels, length)
	if err != nil {
		t.Fatal(err)
	}
	n := gs.Pages()
	for ch := 0; ch < channels; ch++ {
		for slot := 0; slot < length; slot++ {
			switch rng.Intn(4) {
			case 0: // leave empty
			case 1: // duplicate the page of a lower channel in this column
				if ch > 0 {
					if id := p.At(rng.Intn(ch), slot); id != None {
						if err := p.Place(ch, slot, id); err != nil {
							t.Fatal(err)
						}
						continue
					}
				}
				fallthrough
			default:
				if err := p.Place(ch, slot, PageID(rng.Intn(n))); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	return p
}

var indexTestGroups = []Group{{Time: 4, Count: 7}, {Time: 8, Count: 9}, {Time: 16, Count: 4}}

// TestAppearanceIndexMatchesTable: the CSR index and the legacy [][]int
// table describe the same appearance structure on random programs,
// including pages that never appear and multi-channel duplicate columns.
func TestAppearanceIndexMatchesTable(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p := randomProgram(t, rng, indexTestGroups, 1+rng.Intn(5), 1+rng.Intn(40))
		ix := p.AppearanceIndex()
		table := p.AppearanceTable()
		if ix.Pages() != len(table) {
			t.Fatalf("seed %d: index covers %d pages, table %d", seed, ix.Pages(), len(table))
		}
		if ix.Length() != p.Length() {
			t.Fatalf("seed %d: index length %d, program %d", seed, ix.Length(), p.Length())
		}
		for id := 0; id < ix.Pages(); id++ {
			cols := ix.Columns(PageID(id))
			if len(cols) != len(table[id]) || ix.Count(PageID(id)) != len(table[id]) {
				t.Fatalf("seed %d page %d: %d columns vs table %d", seed, id, len(cols), len(table[id]))
			}
			for k, c := range cols {
				if int(c) != table[id][k] {
					t.Fatalf("seed %d page %d: column %d is %d, table %d", seed, id, k, c, table[id][k])
				}
				if k > 0 && cols[k-1] >= c {
					t.Fatalf("seed %d page %d: columns not strictly ascending: %v", seed, id, cols)
				}
			}
		}
	}
}

// TestProgramAppearancesMatchesTable pins the satellite contract: the
// index-routed Program.Appearances(id) equals AppearanceTable()[id] for a
// fuzz-style random program.
func TestProgramAppearancesMatchesTable(t *testing.T) {
	for seed := int64(100); seed < 120; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p := randomProgram(t, rng, indexTestGroups, 1+rng.Intn(4), 1+rng.Intn(30))
		table := p.AppearanceTable()
		for id := 0; id < p.GroupSet().Pages(); id++ {
			got := p.Appearances(PageID(id))
			if len(got) != len(table[id]) {
				t.Fatalf("seed %d page %d: Appearances %v vs table %v", seed, id, got, table[id])
			}
			for k := range got {
				if got[k] != table[id][k] {
					t.Fatalf("seed %d page %d: Appearances %v vs table %v", seed, id, got, table[id])
				}
			}
		}
	}
}

// TestAppearanceIndexTableContract: Table() keeps the documented legacy
// shape — nil (not empty) slices for pages never broadcast.
func TestAppearanceIndexTableContract(t *testing.T) {
	gs := MustGroupSet([]Group{{Time: 4, Count: 3}})
	p, err := NewProgram(gs, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Place(0, 1, 0); err != nil {
		t.Fatal(err)
	}
	table := p.AppearanceTable()
	if table[1] != nil || table[2] != nil {
		t.Errorf("absent pages should have nil table entries, got %v", table)
	}
	if len(table[0]) != 1 || table[0][0] != 1 {
		t.Errorf("table[0] = %v, want [1]", table[0])
	}
	ix := p.AppearanceIndex()
	if got := ix.Columns(1); got == nil || len(got) != 0 {
		t.Errorf("index Columns for absent page = %v, want empty non-nil", got)
	}
	if got := ix.WorstGap(1); got != p.Length() {
		t.Errorf("WorstGap of absent page = %d, want cycle length %d", got, p.Length())
	}
	if got := ix.WorstGap(0); got != p.Length() {
		t.Errorf("WorstGap of single-appearance page = %d, want %d", got, p.Length())
	}
}

// TestAppendColumns: AppendColumns extends dst rather than replacing it.
func TestAppendColumns(t *testing.T) {
	gs := MustGroupSet([]Group{{Time: 4, Count: 2}})
	p, err := NewProgram(gs, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, slot := range []int{0, 2} {
		if err := p.Place(0, slot, 1); err != nil {
			t.Fatal(err)
		}
	}
	ix := p.AppearanceIndex()
	got := ix.AppendColumns([]int{-1}, 1)
	want := []int{-1, 0, 2}
	if len(got) != len(want) {
		t.Fatalf("AppendColumns = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("AppendColumns = %v, want %v", got, want)
		}
	}
}
