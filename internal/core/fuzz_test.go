package core

import (
	"encoding/json"
	"testing"
)

// FuzzRearrange checks the rearrangement invariants on arbitrary inputs:
// no panics, and on success every new time is the closest power-of-c
// multiple of the minimum not exceeding its original.
func FuzzRearrange(f *testing.F) {
	f.Add(int64(2), int64(3), int64(9), 2)
	f.Add(int64(1), int64(1), int64(1), 3)
	f.Add(int64(5), int64(500), int64(7), 4)
	f.Add(int64(0), int64(-3), int64(10), 2) // invalid time
	f.Add(int64(2), int64(4), int64(8), 1)   // invalid ratio
	f.Add(int64(1000000), int64(1), int64(999983), 7)
	f.Fuzz(func(t *testing.T, a, b, c int64, ratio int) {
		times := []int{int(a % 100000), int(b % 100000), int(c % 100000)}
		r, err := Rearrange(times, ratio)
		if err != nil {
			return // invalid input rejected: fine
		}
		for i, orig := range times {
			nt := r.NewTimes[i]
			if nt < 1 || nt > orig {
				t.Fatalf("times %v ratio %d: new time %d out of (0, %d]", times, ratio, nt, orig)
			}
			if nt <= orig/ratio && nt*ratio <= orig {
				t.Fatalf("times %v ratio %d: %d not the closest power (x%d still fits)", times, ratio, nt, ratio)
			}
		}
		if r.Set.Pages() != len(times) {
			t.Fatalf("lost pages: %d != %d", r.Set.Pages(), len(times))
		}
		if err := validateChain(r.Set); err != nil {
			t.Fatal(err)
		}
	})
}

// FuzzRearrangeMonotone checks the Section 2 tightening contract on wider
// instances than FuzzRearrange: rearranged times never exceed their
// originals, the input order of times is preserved in the output, every
// assigned page ID carries the rearranged time, and the mapping is
// idempotent (tightened times already sit on the geometric grid, so a
// second pass is the identity).
func FuzzRearrangeMonotone(f *testing.F) {
	f.Add([]byte{2, 3, 4, 6, 9}, 2) // the paper's Section 2 example
	f.Add([]byte{1, 1, 255}, 3)
	f.Add([]byte{10}, 9)
	f.Add([]byte{7, 0, 7}, 2) // contains an invalid zero time
	f.Fuzz(func(t *testing.T, raw []byte, ratio int) {
		if len(raw) > 64 {
			raw = raw[:64]
		}
		times := make([]int, len(raw))
		for i, b := range raw {
			times[i] = int(b)
		}
		r, err := Rearrange(times, ratio)
		if err != nil {
			return // invalid input rejected: fine
		}
		for i, orig := range times {
			nt := r.NewTimes[i]
			if nt < 1 || nt > orig {
				t.Fatalf("times %v ratio %d: new time %d out of (0, %d]", times, ratio, nt, orig)
			}
			if got := r.Set.TimeOf(r.IDs[i]); got != nt {
				t.Fatalf("times %v ratio %d: page %d has group time %d, NewTimes %d",
					times, ratio, r.IDs[i], got, nt)
			}
		}
		for i := range times {
			for j := range times {
				if times[i] <= times[j] && r.NewTimes[i] > r.NewTimes[j] {
					t.Fatalf("times %v ratio %d: order broken at %d,%d: %v",
						times, ratio, i, j, r.NewTimes)
				}
			}
		}
		again, err := Rearrange(r.NewTimes, ratio)
		if err != nil {
			t.Fatalf("re-rearranging %v: %v", r.NewTimes, err)
		}
		for i, nt := range r.NewTimes {
			if again.NewTimes[i] != nt {
				t.Fatalf("not idempotent: %v -> %v", r.NewTimes, again.NewTimes)
			}
		}
	})
}

// validateChain re-checks the divisibility chain independently of
// NewGroupSet's own validation.
func validateChain(gs *GroupSet) error {
	for i := 1; i < gs.Len(); i++ {
		if gs.Group(i).Time%gs.Group(i-1).Time != 0 {
			return ErrInvalidGroupSet
		}
	}
	return nil
}

// FuzzProgramJSON ensures arbitrary bytes never panic the decoder and that
// anything it accepts is internally consistent.
func FuzzProgramJSON(f *testing.F) {
	gs := MustGroupSet([]Group{{2, 2}, {4, 1}})
	p, _ := NewProgram(gs, 2, 4)
	_ = p.Place(0, 0, 0)
	_ = p.Place(0, 2, 0)
	_ = p.Place(1, 0, 1)
	_ = p.Place(1, 2, 1)
	_ = p.Place(0, 1, 2)
	good, _ := json.Marshal(p)
	f.Add(good)
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"version":1,"groups":[{"Time":2,"Count":1}],"channels":1,"length":1,"grid":[[0]]}`))
	f.Add([]byte(`not json`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var prog Program
		if err := json.Unmarshal(data, &prog); err != nil {
			return
		}
		// Accepted programs must be analyzable without panics and agree
		// with a re-encode/decode cycle.
		a := Analyze(&prog)
		reenc, err := json.Marshal(&prog)
		if err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		var back Program
		if err := json.Unmarshal(reenc, &back); err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if Analyze(&back).AvgWait() != a.AvgWait() {
			t.Fatal("re-encoded program differs")
		}
	})
}

// FuzzGroupSetJSON: arbitrary bytes never panic; accepted sets satisfy the
// invariants.
func FuzzGroupSetJSON(f *testing.F) {
	f.Add([]byte(`{"groups":[{"Time":2,"Count":3},{"Time":4,"Count":5}]}`))
	f.Add([]byte(`{"groups":[]}`))
	f.Add([]byte(`{"groups":[{"Time":-1,"Count":3}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var gs GroupSet
		if err := json.Unmarshal(data, &gs); err != nil {
			return
		}
		if gs.Len() < 1 || gs.Pages() < 1 {
			t.Fatalf("accepted empty set: %v", &gs)
		}
		if err := validateChain(&gs); err != nil {
			t.Fatal(err)
		}
		if gs.MinChannels() < 1 {
			t.Fatalf("MinChannels = %d", gs.MinChannels())
		}
	})
}
