package core

import (
	"errors"
	"strings"
	"testing"
)

func fig2GroupSet() *GroupSet {
	return MustGroupSet([]Group{{2, 3}, {4, 5}, {8, 3}})
}

func TestNewProgramValidation(t *testing.T) {
	gs := fig2GroupSet()
	if _, err := NewProgram(nil, 1, 1); err == nil {
		t.Error("nil group set accepted")
	}
	if _, err := NewProgram(gs, 0, 4); err == nil {
		t.Error("0 channels accepted")
	}
	if _, err := NewProgram(gs, 2, 0); err == nil {
		t.Error("0 length accepted")
	}
	p, err := NewProgram(gs, 3, 9)
	if err != nil {
		t.Fatal(err)
	}
	if p.Channels() != 3 || p.Length() != 9 {
		t.Errorf("dimensions = %dx%d, want 3x9", p.Channels(), p.Length())
	}
	if p.Filled() != 0 || p.Occupancy() != 0 {
		t.Error("new program not empty")
	}
	for ch := 0; ch < 3; ch++ {
		for slot := 0; slot < 9; slot++ {
			if p.At(ch, slot) != None {
				t.Fatalf("cell (%d,%d) not None", ch, slot)
			}
		}
	}
}

func TestPlaceAndClear(t *testing.T) {
	p, _ := NewProgram(fig2GroupSet(), 2, 4)
	if err := p.Place(0, 1, 5); err != nil {
		t.Fatal(err)
	}
	if p.At(0, 1) != 5 || p.Filled() != 1 {
		t.Error("Place did not record page")
	}
	if err := p.Place(0, 1, 6); !errors.Is(err, ErrSlotOccupied) {
		t.Errorf("double placement error = %v, want ErrSlotOccupied", err)
	}
	if err := p.Place(5, 0, 1); !errors.Is(err, ErrSlotRange) {
		t.Errorf("out-of-range channel error = %v, want ErrSlotRange", err)
	}
	if err := p.Place(0, 9, 1); !errors.Is(err, ErrSlotRange) {
		t.Errorf("out-of-range slot error = %v, want ErrSlotRange", err)
	}
	if err := p.Place(1, 0, 99); !errors.Is(err, ErrPageRange) {
		t.Errorf("out-of-range page error = %v, want ErrPageRange", err)
	}
	if err := p.Place(1, 0, None); !errors.Is(err, ErrPageRange) {
		t.Errorf("placing None error = %v, want ErrPageRange", err)
	}
	p.Clear(0, 1)
	if p.At(0, 1) != None || p.Filled() != 0 {
		t.Error("Clear did not empty the cell")
	}
	p.Clear(0, 1) // idempotent
	p.Clear(9, 9) // out of range: no-op
	if p.Filled() != 0 {
		t.Error("Clear changed fill count unexpectedly")
	}
}

func TestAppearancesDeduplicatesColumns(t *testing.T) {
	p, _ := NewProgram(fig2GroupSet(), 2, 4)
	mustPlace(t, p, 0, 1, 3)
	mustPlace(t, p, 1, 1, 3) // same column, second channel
	mustPlace(t, p, 0, 3, 3)
	cols := p.Appearances(3)
	if len(cols) != 2 || cols[0] != 1 || cols[1] != 3 {
		t.Errorf("Appearances = %v, want [1 3]", cols)
	}
	if got := p.CountOf(3); got != 3 {
		t.Errorf("CountOf = %d, want 3 (per-cell)", got)
	}
	table := p.AppearanceTable()
	if len(table[3]) != 2 {
		t.Errorf("AppearanceTable[3] = %v, want 2 columns", table[3])
	}
	if table[0] != nil {
		t.Errorf("AppearanceTable[0] = %v, want nil for absent page", table[0])
	}
}

func TestValidateConditions(t *testing.T) {
	gs := MustGroupSet([]Group{{2, 1}, {4, 1}})
	build := func(place func(p *Program)) *Program {
		p, _ := NewProgram(gs, 1, 4)
		place(p)
		return p
	}
	tests := []struct {
		name    string
		p       *Program
		wantErr string
	}{
		{
			"valid",
			build(func(p *Program) {
				mustPlaceAll(p, [][3]int{{0, 0, 0}, {0, 2, 0}, {0, 1, 1}})
			}),
			"",
		},
		{
			"missing page",
			build(func(p *Program) {
				mustPlaceAll(p, [][3]int{{0, 0, 0}, {0, 2, 0}})
			}),
			"never broadcast",
		},
		{
			"first appearance too late",
			build(func(p *Program) {
				// Page 0 (t=2) first appears at slot 2.
				mustPlaceAll(p, [][3]int{{0, 2, 0}, {0, 0, 1}})
			}),
			"first broadcast",
		},
		{
			"interior gap too large",
			build(func(p *Program) {
				// Page 0 (t=2) at slots 0 and 3: gap 3 > 2.
				mustPlaceAll(p, [][3]int{{0, 0, 0}, {0, 3, 0}, {0, 1, 1}})
			}),
			"gap",
		},
		{
			"cyclic wrap gap too large",
			build(func(p *Program) {
				// Page 0 (t=2) at slot 1 only: wrap gap 4 > 2.
				mustPlaceAll(p, [][3]int{{0, 1, 0}, {0, 0, 1}})
			}),
			"wrap",
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.p.Validate()
			if tt.wantErr == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if err == nil {
				t.Fatal("Validate() = nil, want error")
			}
			if !errors.Is(err, ErrInvalidProgram) {
				t.Errorf("error %v is not ErrInvalidProgram", err)
			}
			if !strings.Contains(err.Error(), tt.wantErr) {
				t.Errorf("error %q does not mention %q", err, tt.wantErr)
			}
		})
	}
}

func TestValidateWrapCountsAsGap(t *testing.T) {
	// Page with t=4 appearing at slots 0 and 2 of a length-8 cycle: the
	// interior gap is 2 but the wrap gap is 6 > 4.
	gs := MustGroupSet([]Group{{4, 1}, {8, 1}})
	p, _ := NewProgram(gs, 1, 8)
	mustPlaceAll(p, [][3]int{{0, 0, 0}, {0, 2, 0}, {0, 1, 1}})
	if err := p.Validate(); err == nil {
		t.Error("Validate accepted wrap gap 6 > t=4")
	}
}

func TestClone(t *testing.T) {
	p, _ := NewProgram(fig2GroupSet(), 2, 4)
	mustPlace(t, p, 0, 0, 1)
	q := p.Clone()
	mustPlace(t, q, 0, 1, 2)
	if p.At(0, 1) != None {
		t.Error("Clone shares grid storage with original")
	}
	if q.At(0, 0) != 1 {
		t.Error("Clone lost existing placements")
	}
	if p.Filled() != 1 || q.Filled() != 2 {
		t.Errorf("Filled() = %d/%d, want 1/2", p.Filled(), q.Filled())
	}
}

func TestProgramString(t *testing.T) {
	p, _ := NewProgram(fig2GroupSet(), 2, 3)
	mustPlace(t, p, 0, 0, 7)
	s := p.String()
	if !strings.Contains(s, "ch0") || !strings.Contains(s, "7") || !strings.Contains(s, "--") {
		t.Errorf("String() = %q missing expected elements", s)
	}
	if got := strings.Count(s, "\n"); got != 2 {
		t.Errorf("String() has %d lines, want 2", got)
	}
}

func mustPlace(t *testing.T, p *Program, ch, slot int, id PageID) {
	t.Helper()
	if err := p.Place(ch, slot, id); err != nil {
		t.Fatalf("Place(%d,%d,%d): %v", ch, slot, id, err)
	}
}

// mustPlaceAll places (ch, slot, id) triples, panicking on failure; for
// building small fixtures.
func mustPlaceAll(p *Program, triples [][3]int) {
	for _, tr := range triples {
		if err := p.Place(tr[0], tr[1], PageID(tr[2])); err != nil {
			panic(err)
		}
	}
}

func TestProgramWrapAccessors(t *testing.T) {
	p, _ := NewProgram(fig2GroupSet(), 3, 4)
	mustPlace(t, p, 1, 3, 5)
	cases := []struct{ abs, col int }{
		{0, 0}, {3, 3}, {4, 0}, {7, 3}, {11, 3}, {-1, 3}, {-4, 0}, {-5, 3},
	}
	for _, c := range cases {
		if got := p.Column(c.abs); got != c.col {
			t.Errorf("Column(%d) = %d, want %d", c.abs, got, c.col)
		}
	}
	if got := p.AtAbs(1, 7); got != 5 {
		t.Errorf("AtAbs(1, 7) = %d, want 5", got)
	}
	if got := p.AtAbs(1, -1); got != 5 {
		t.Errorf("AtAbs(1, -1) = %d, want 5", got)
	}
	chCases := []struct{ ch, want int }{{0, 0}, {2, 2}, {3, 0}, {7, 1}, {-1, 2}}
	for _, c := range chCases {
		if got := p.WrapChannel(c.ch); got != c.want {
			t.Errorf("WrapChannel(%d) = %d, want %d", c.ch, got, c.want)
		}
	}
}
