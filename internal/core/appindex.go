package core

// AppearanceIndex is the flat CSR-style appearance structure of a program:
// for every page, its sorted distinct appearance columns, stored in a single
// shared column arena instead of one heap slice per page. It is the
// allocation-free backbone of Analyze, Program.Validate and the air-index
// math in internal/bindex; the legacy [][]int AppearanceTable is a thin
// materialisation of this index kept for compatibility.
//
// Layout: page id's columns are cols[offs[id]:offs[id+1]], ascending. Pages
// that never appear have an empty (not nil) range. Columns fit in int32 by
// construction: a Program's length is an int built from slot counts that the
// schedulers keep far below 2^31, and PageID itself is an int32.
type AppearanceIndex struct {
	length int
	offs   []int32 // len Pages()+1; monotone, offs[0] == 0
	cols   []int32 // column arena, grouped by page, ascending within a page
}

// BuildAppearanceIndex scans p's grid and returns its appearance index.
// The build is two linear column-major passes (count, then fill) over the
// grid with O(n) scratch — no per-page append growth, six allocations total
// regardless of how many pages or appearances the program has.
func BuildAppearanceIndex(p *Program) *AppearanceIndex {
	n := p.gs.Pages()
	ix := &AppearanceIndex{
		length: p.length,
		offs:   make([]int32, n+1),
	}
	// mark[id] deduplicates a page broadcast on several channels of the same
	// column. The counting pass stores slot+1 (always positive), the fill
	// pass stores ^slot (always negative), so one array serves both passes
	// without a reset in between.
	scratch := make([]int32, 2*n)
	mark, cur := scratch[:n:n], scratch[n:]

	for slot := 0; slot < p.length; slot++ {
		for ch := 0; ch < p.channels; ch++ {
			id := p.grid[ch*p.length+slot]
			if id == None || mark[id] == int32(slot+1) {
				continue
			}
			mark[id] = int32(slot + 1)
			ix.offs[id+1]++
		}
	}
	for i := 0; i < n; i++ {
		ix.offs[i+1] += ix.offs[i]
	}
	ix.cols = make([]int32, ix.offs[n])
	copy(cur, ix.offs[:n])
	for slot := 0; slot < p.length; slot++ {
		for ch := 0; ch < p.channels; ch++ {
			id := p.grid[ch*p.length+slot]
			if id == None || mark[id] == ^int32(slot) {
				continue
			}
			mark[id] = ^int32(slot)
			ix.cols[cur[id]] = int32(slot)
			cur[id]++
		}
	}
	return ix
}

// Pages returns the number of pages the index covers.
func (ix *AppearanceIndex) Pages() int { return len(ix.offs) - 1 }

// Length returns the cycle length of the indexed program.
func (ix *AppearanceIndex) Length() int { return ix.length }

// Count returns how many distinct columns page id appears in.
func (ix *AppearanceIndex) Count(id PageID) int {
	return int(ix.offs[id+1] - ix.offs[id])
}

// Columns returns page id's sorted distinct appearance columns as a
// subslice of the shared arena; callers must not modify it. Pages that
// never appear return an empty slice.
func (ix *AppearanceIndex) Columns(id PageID) []int32 {
	return ix.cols[ix.offs[id]:ix.offs[id+1]]
}

// AppendColumns appends page id's appearance columns to dst and returns the
// extended slice, for callers that need []int values.
func (ix *AppearanceIndex) AppendColumns(dst []int, id PageID) []int {
	for _, c := range ix.Columns(id) {
		dst = append(dst, int(c))
	}
	return dst
}

// Table materialises the legacy per-page [][]int appearance table from the
// index: one arena allocation plus the header slice, with nil entries for
// pages that never appear (the historical AppearanceTable contract).
func (ix *AppearanceIndex) Table() [][]int {
	table := make([][]int, ix.Pages())
	arena := make([]int, len(ix.cols))
	for i := range ix.cols {
		arena[i] = int(ix.cols[i])
	}
	for id := range table {
		lo, hi := ix.offs[id], ix.offs[id+1]
		if lo == hi {
			continue
		}
		table[id] = arena[lo:hi:hi]
	}
	return table
}

// WorstGap returns the largest cyclic inter-appearance gap of page id in
// slots; pages that never appear report the cycle length.
func (ix *AppearanceIndex) WorstGap(id PageID) int {
	cols := ix.Columns(id)
	if len(cols) == 0 {
		return ix.length
	}
	worst := int(cols[0]) + ix.length - int(cols[len(cols)-1])
	for k := 1; k < len(cols); k++ {
		if g := int(cols[k] - cols[k-1]); g > worst {
			worst = g
		}
	}
	return worst
}
