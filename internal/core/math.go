package core

// CeilDiv returns ceil(a/b) for positive b. It is exact for all int inputs
// with a >= 0 and panics-free for the negative-a case (rounds toward +inf).
func CeilDiv(a, b int) int {
	if b <= 0 {
		return 0
	}
	q := a / b
	if a%b != 0 && (a > 0) == (b > 0) {
		q++
	}
	return q
}

// gcd returns the greatest common divisor of two positive ints.
func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// lcm returns the least common multiple of two positive ints.
func lcm(a, b int) int {
	if a == 0 || b == 0 {
		return 0
	}
	return a / gcd(a, b) * b
}
