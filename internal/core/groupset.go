package core

import (
	"fmt"
	"strings"
)

// PageID identifies a broadcast data page. IDs are dense: a GroupSet with n
// pages uses IDs 0..n-1, assigned group by group in ascending expected-time
// order (all pages of G_1 first, then G_2, ...).
type PageID int32

// None marks an empty broadcast slot.
const None PageID = -1

// Group describes one expected-time group G_i: Count pages (P_i in the
// paper), each with expected time Time slots (t_i).
type Group struct {
	Time  int // expected time t_i, in slots
	Count int // number of pages P_i
}

// GroupSet is an immutable, validated sequence of expected-time groups
// G_1..G_h with t_1 < t_2 < ... < t_h and t_i | t_{i+1}. It is the problem
// instance every scheduler in this module consumes.
type GroupSet struct {
	groups []Group
	prefix []int // prefix[i] = number of pages in groups 0..i-1; len h+1
}

// NewGroupSet validates groups and builds a GroupSet. Requirements: at least
// one group; every Time >= 1 and Count >= 1; times strictly increasing; each
// time divides the next (the paper's geometric-expected-time assumption in
// its general divisibility form).
func NewGroupSet(groups []Group) (*GroupSet, error) {
	if len(groups) == 0 {
		return nil, fmt.Errorf("%w: no groups", ErrInvalidGroupSet)
	}
	for i, g := range groups {
		if g.Time < 1 {
			return nil, fmt.Errorf("%w: group %d has time %d < 1", ErrInvalidGroupSet, i+1, g.Time)
		}
		if g.Count < 1 {
			return nil, fmt.Errorf("%w: group %d has count %d < 1", ErrInvalidGroupSet, i+1, g.Count)
		}
		if i > 0 {
			prev := groups[i-1].Time
			if g.Time <= prev {
				return nil, fmt.Errorf("%w: group times not strictly increasing (t_%d=%d, t_%d=%d)",
					ErrInvalidGroupSet, i, prev, i+1, g.Time)
			}
			if g.Time%prev != 0 {
				return nil, fmt.Errorf("%w: t_%d=%d does not divide t_%d=%d",
					ErrInvalidGroupSet, i, prev, i+1, g.Time)
			}
		}
	}
	gs := &GroupSet{
		groups: append([]Group(nil), groups...),
		prefix: make([]int, len(groups)+1),
	}
	for i, g := range groups {
		gs.prefix[i+1] = gs.prefix[i] + g.Count
	}
	return gs, nil
}

// MustGroupSet is NewGroupSet for static instances; it panics on invalid
// input and is intended for tests and examples only.
func MustGroupSet(groups []Group) *GroupSet {
	gs, err := NewGroupSet(groups)
	if err != nil {
		panic(err)
	}
	return gs
}

// Geometric builds the paper's canonical instance shape: h groups with
// t_i = t1 * c^(i-1) and counts[i-1] pages in group i.
func Geometric(t1, c int, counts []int) (*GroupSet, error) {
	if t1 < 1 {
		return nil, fmt.Errorf("%w: base time %d < 1", ErrInvalidGroupSet, t1)
	}
	if c < 2 {
		return nil, fmt.Errorf("%w: ratio %d < 2", ErrInvalidGroupSet, c)
	}
	groups := make([]Group, len(counts))
	t := t1
	for i, p := range counts {
		groups[i] = Group{Time: t, Count: p}
		if i < len(counts)-1 {
			if t > (1<<31)/c {
				return nil, fmt.Errorf("%w: group time overflow at group %d", ErrInvalidGroupSet, i+2)
			}
			t *= c
		}
	}
	return NewGroupSet(groups)
}

// Len returns the number of groups h.
func (gs *GroupSet) Len() int { return len(gs.groups) }

// Pages returns the total number of pages n.
func (gs *GroupSet) Pages() int { return gs.prefix[len(gs.groups)] }

// Group returns group i (0-based).
func (gs *GroupSet) Group(i int) Group { return gs.groups[i] }

// Groups returns a copy of the group slice.
func (gs *GroupSet) Groups() []Group { return append([]Group(nil), gs.groups...) }

// Times returns the group expected times t_1..t_h.
func (gs *GroupSet) Times() []int {
	ts := make([]int, len(gs.groups))
	for i, g := range gs.groups {
		ts[i] = g.Time
	}
	return ts
}

// Counts returns the group page counts P_1..P_h.
func (gs *GroupSet) Counts() []int {
	ps := make([]int, len(gs.groups))
	for i, g := range gs.groups {
		ps[i] = g.Count
	}
	return ps
}

// MaxTime returns t_h, the largest expected time; for a valid sufficient-
// channel program this is also the broadcast cycle length.
func (gs *GroupSet) MaxTime() int { return gs.groups[len(gs.groups)-1].Time }

// Ratio returns the common ratio c when the group times form an exact
// geometric sequence t_{i+1} = c*t_i, and ok=false otherwise (divisibility
// alone is guaranteed by construction, a single ratio is not).
func (gs *GroupSet) Ratio() (c int, ok bool) {
	if len(gs.groups) < 2 {
		return 1, true
	}
	c = gs.groups[1].Time / gs.groups[0].Time
	for i := 1; i < len(gs.groups); i++ {
		if gs.groups[i].Time != gs.groups[i-1].Time*c {
			return 0, false
		}
	}
	return c, true
}

// GroupOf returns the 0-based group index of page id.
func (gs *GroupSet) GroupOf(id PageID) int {
	p := int(id)
	if p < 0 || p >= gs.Pages() {
		return -1
	}
	// Binary search over prefix sums.
	lo, hi := 0, len(gs.groups)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if p < gs.prefix[mid+1] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// TimeOf returns the expected time of page id, or 0 when id is out of range.
func (gs *GroupSet) TimeOf(id PageID) int {
	g := gs.GroupOf(id)
	if g < 0 {
		return 0
	}
	return gs.groups[g].Time
}

// PageAt returns the PageID of the j-th page (0-based) of group i (0-based).
func (gs *GroupSet) PageAt(i, j int) PageID {
	return PageID(gs.prefix[i] + j)
}

// GroupPages returns the contiguous ID range [first, first+count) of group i.
func (gs *GroupSet) GroupPages(i int) (first PageID, count int) {
	return PageID(gs.prefix[i]), gs.groups[i].Count
}

// Density returns sum_i P_i/t_i, the aggregate broadcast bandwidth demand in
// channels. MinChannels is its ceiling.
func (gs *GroupSet) Density() float64 {
	var d float64
	for _, g := range gs.groups {
		d += float64(g.Count) / float64(g.Time)
	}
	return d
}

// MinChannels returns the Theorem 3.1 lower bound on the number of channels
// needed for a valid broadcast program: ceil(sum_i P_i/t_i). The computation
// is exact integer arithmetic (every t_i divides t_h).
func (gs *GroupSet) MinChannels() int {
	th := gs.MaxTime()
	num := 0
	for _, g := range gs.groups {
		num += g.Count * (th / g.Time)
	}
	return CeilDiv(num, th)
}

// SufficientFor reports whether nReal channels satisfy the Theorem 3.1 bound.
func (gs *GroupSet) SufficientFor(nReal int) bool { return nReal >= gs.MinChannels() }

// Equal reports whether two group sets describe the same instance.
func (gs *GroupSet) Equal(other *GroupSet) bool {
	if gs == nil || other == nil {
		return gs == other
	}
	if len(gs.groups) != len(other.groups) {
		return false
	}
	for i := range gs.groups {
		if gs.groups[i] != other.groups[i] {
			return false
		}
	}
	return true
}

// String renders the instance compactly, e.g. "{t=2:P=3, t=4:P=5, t=8:P=3}".
func (gs *GroupSet) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, g := range gs.groups {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "t=%d:P=%d", g.Time, g.Count)
	}
	b.WriteByte('}')
	return b.String()
}
