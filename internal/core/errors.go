package core

import "errors"

var (
	// ErrInvalidGroupSet reports a malformed group specification: no groups,
	// non-positive times or counts, non-increasing times, or a group time
	// that does not divide its successor.
	ErrInvalidGroupSet = errors.New("core: invalid group set")

	// ErrInsufficientChannels reports that a program cannot be built because
	// the supplied channel count is below the Theorem 3.1 minimum.
	ErrInsufficientChannels = errors.New("core: insufficient channels")

	// ErrSlotOccupied reports an attempt to place a page into a slot that
	// already holds one.
	ErrSlotOccupied = errors.New("core: slot occupied")

	// ErrInvalidProgram reports a broadcast program that violates the
	// validity conditions of Section 3.1 of the paper.
	ErrInvalidProgram = errors.New("core: invalid broadcast program")

	// ErrPageRange reports a page ID outside [0, n).
	ErrPageRange = errors.New("core: page id out of range")

	// ErrSlotRange reports a channel or slot index outside the program grid.
	ErrSlotRange = errors.New("core: slot index out of range")
)
