package core

import (
	"fmt"
	"strings"
)

// Program is a cyclic multi-channel broadcast program B: a channels x length
// grid of page IDs. Row x is broadcast channel x; column y is the set of
// pages transmitted simultaneously during slot y of the cycle. The program
// repeats forever with period length.
//
// The zero Program is not usable; construct with NewProgram.
type Program struct {
	gs       *GroupSet
	channels int
	length   int
	grid     []PageID // row-major: grid[ch*length+slot]
	filled   int
}

// NewProgram allocates an empty program of the given dimensions over gs.
func NewProgram(gs *GroupSet, channels, length int) (*Program, error) {
	if gs == nil {
		return nil, fmt.Errorf("%w: nil group set", ErrInvalidGroupSet)
	}
	if channels < 1 {
		return nil, fmt.Errorf("%w: %d channels", ErrSlotRange, channels)
	}
	if length < 1 {
		return nil, fmt.Errorf("%w: length %d", ErrSlotRange, length)
	}
	p := &Program{
		gs:       gs,
		channels: channels,
		length:   length,
		grid:     make([]PageID, channels*length),
	}
	for i := range p.grid {
		p.grid[i] = None
	}
	return p, nil
}

// GroupSet returns the problem instance the program was built for.
func (p *Program) GroupSet() *GroupSet { return p.gs }

// Channels returns the number of broadcast channels (grid rows).
func (p *Program) Channels() int { return p.channels }

// Length returns the broadcast cycle length in slots (grid columns).
func (p *Program) Length() int { return p.length }

// Filled returns the number of occupied slots.
func (p *Program) Filled() int { return p.filled }

// Occupancy returns the fraction of occupied slots in [0,1].
func (p *Program) Occupancy() float64 {
	return float64(p.filled) / float64(len(p.grid))
}

// At returns the page broadcast on channel ch during slot y, or None.
func (p *Program) At(ch, slot int) PageID {
	return p.grid[ch*p.length+slot]
}

// Column maps an absolute (possibly multi-cycle) slot index onto the
// program's cyclic column in [0, Length()). Negative indexes wrap
// backwards, so Column(-1) is the last column of the cycle. Callers must
// use this instead of raw % arithmetic on Length() (enforced by the
// airvet slotmath analyzer).
func (p *Program) Column(abs int) int {
	col := abs % p.length
	if col < 0 {
		col += p.length
	}
	return col
}

// AtAbs returns the page broadcast on channel ch at absolute slot abs of
// the infinitely repeating program: At(ch, Column(abs)).
func (p *Program) AtAbs(ch, abs int) PageID {
	return p.At(ch, p.Column(abs))
}

// WrapChannel maps an arbitrary channel index onto [0, Channels()),
// wrapping cyclically in both directions (channel-sweep arithmetic).
func (p *Program) WrapChannel(ch int) int {
	c := ch % p.channels
	if c < 0 {
		c += p.channels
	}
	return c
}

// InRange reports whether (ch, slot) addresses a grid cell.
func (p *Program) InRange(ch, slot int) bool {
	return ch >= 0 && ch < p.channels && slot >= 0 && slot < p.length
}

// Place assigns page id to (ch, slot). It fails if the cell is occupied, the
// indexes are out of range, or the page ID is not part of the group set.
func (p *Program) Place(ch, slot int, id PageID) error {
	if !p.InRange(ch, slot) {
		return fmt.Errorf("%w: (%d,%d) in %dx%d program", ErrSlotRange, ch, slot, p.channels, p.length)
	}
	if id < 0 || int(id) >= p.gs.Pages() {
		return fmt.Errorf("%w: %d (n=%d)", ErrPageRange, id, p.gs.Pages())
	}
	cell := &p.grid[ch*p.length+slot]
	if *cell != None {
		return fmt.Errorf("%w: (%d,%d) holds page %d", ErrSlotOccupied, ch, slot, *cell)
	}
	*cell = id
	p.filled++
	return nil
}

// PlaceRepeats assigns page id to the Theorem 3.3 repetition pattern
// first, first+period, ..., first+(count-1)*period on channel ch. It is the
// bulk counterpart of Place for schedule construction: the channel, page and
// slot range are validated once for the whole pattern instead of once per
// cell, and the cells are written directly. If any target cell is occupied
// nothing is modified.
func (p *Program) PlaceRepeats(ch, first, period, count int, id PageID) error {
	if period < 1 || count < 1 {
		return fmt.Errorf("%w: repeat pattern period %d count %d", ErrSlotRange, period, count)
	}
	last := first + (count-1)*period
	if !p.InRange(ch, first) || last >= p.length {
		return fmt.Errorf("%w: repeats (%d,%d..%d step %d) in %dx%d program",
			ErrSlotRange, ch, first, last, period, p.channels, p.length)
	}
	if id < 0 || int(id) >= p.gs.Pages() {
		return fmt.Errorf("%w: %d (n=%d)", ErrPageRange, id, p.gs.Pages())
	}
	row := p.grid[ch*p.length : (ch+1)*p.length]
	for slot := first; slot <= last; slot += period {
		if row[slot] != None {
			return fmt.Errorf("%w: (%d,%d) holds page %d", ErrSlotOccupied, ch, slot, row[slot])
		}
	}
	for slot := first; slot <= last; slot += period {
		row[slot] = id
	}
	p.filled += count
	return nil
}

// Clear empties cell (ch, slot); clearing an empty cell is a no-op.
func (p *Program) Clear(ch, slot int) {
	if !p.InRange(ch, slot) {
		return
	}
	cell := &p.grid[ch*p.length+slot]
	if *cell != None {
		*cell = None
		p.filled--
	}
}

// AppearanceIndex builds the flat appearance index of the program's
// current grid. The index is a snapshot: later Place/Clear edits are not
// reflected.
func (p *Program) AppearanceIndex() *AppearanceIndex {
	return BuildAppearanceIndex(p)
}

// Appearances returns the sorted distinct columns in which page id is
// broadcast (on any channel).
func (p *Program) Appearances(id PageID) []int {
	return p.AppearanceIndex().AppendColumns(nil, id)
}

// AppearanceTable returns, for every page, its sorted distinct appearance
// columns. Pages that never appear have a nil slice.
//
// It is a compatibility shim over AppearanceIndex, which new code should
// prefer: the index holds all columns in one arena instead of one heap
// slice per page.
func (p *Program) AppearanceTable() [][]int {
	return p.AppearanceIndex().Table()
}

// Validate checks the Section 3.1 validity conditions for every page:
//
//  1. each page of group i appears at least once within columns [0, t_i);
//  2. the gap between consecutive appearances, including the wrap from the
//     last appearance of one cycle to the first of the next, is <= t_i.
//
// It returns nil for a valid program and an error wrapping
// ErrInvalidProgram describing the first violation otherwise.
func (p *Program) Validate() error {
	ix := p.AppearanceIndex()
	for id := 0; id < ix.Pages(); id++ {
		t := p.gs.TimeOf(PageID(id))
		cols := ix.Columns(PageID(id))
		if len(cols) == 0 {
			return fmt.Errorf("%w: page %d never broadcast", ErrInvalidProgram, id)
		}
		if int(cols[0]) >= t {
			return fmt.Errorf("%w: page %d first broadcast at slot %d >= t=%d",
				ErrInvalidProgram, id, cols[0], t)
		}
		for k := 1; k < len(cols); k++ {
			if gap := int(cols[k] - cols[k-1]); gap > t {
				return fmt.Errorf("%w: page %d gap %d > t=%d between slots %d and %d",
					ErrInvalidProgram, id, gap, t, cols[k-1], cols[k])
			}
		}
		if wrap := int(cols[0]) + p.length - int(cols[len(cols)-1]); wrap > t {
			return fmt.Errorf("%w: page %d cyclic wrap gap %d > t=%d",
				ErrInvalidProgram, id, wrap, t)
		}
	}
	return nil
}

// CountOf returns how many cells hold page id (appearances counted per
// channel, unlike Appearances which deduplicates columns).
func (p *Program) CountOf(id PageID) int {
	n := 0
	for _, v := range p.grid {
		if v == id {
			n++
		}
	}
	return n
}

// Rebind swaps the group set the program's cells are interpreted against
// without touching the grid. It is the O(1) primitive the incremental
// replan engine uses to carry a placement prefix across an instance edit:
// when groups 0..g-1 are unchanged, their page IDs are identical in the
// old and new group sets, so the grid cells those groups occupy remain
// valid verbatim.
//
// The caller owns the invariant that every occupied cell's PageID is
// meaningful under gs — Rebind deliberately does not walk the grid
// (that scan would cost the O(n) the replan engine exists to avoid).
// Callers that cannot prove the invariant must Clear the affected cells
// before rebinding; the replan differential and fuzz gates pin the only
// production caller cell for cell.
func (p *Program) Rebind(gs *GroupSet) error {
	if gs == nil {
		return fmt.Errorf("%w: nil group set", ErrInvalidGroupSet)
	}
	p.gs = gs
	return nil
}

// Clone returns a deep copy of the program.
func (p *Program) Clone() *Program {
	q := *p
	q.grid = append([]PageID(nil), p.grid...)
	return &q
}

// String renders the grid with one line per channel; empty cells print "--".
// Intended for small programs (examples, debugging).
func (p *Program) String() string {
	var b strings.Builder
	width := 2
	if n := p.gs.Pages(); n > 100 {
		width = 4
	}
	for ch := 0; ch < p.channels; ch++ {
		fmt.Fprintf(&b, "ch%-2d |", ch)
		for slot := 0; slot < p.length; slot++ {
			id := p.At(ch, slot)
			if id == None {
				fmt.Fprintf(&b, " %*s", width, strings.Repeat("-", width))
			} else {
				fmt.Fprintf(&b, " %*d", width, id)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
