package core

import (
	"encoding/json"
	"fmt"
)

// programJSON is the stable on-disk representation of a Program. The grid
// is stored row-major with -1 for empty cells, so files are readable and
// diff-able; versioning guards future format changes.
type programJSON struct {
	Version  int       `json:"version"`
	Groups   []Group   `json:"groups"`
	Channels int       `json:"channels"`
	Length   int       `json:"length"`
	Grid     [][]int32 `json:"grid"` // [channel][slot], -1 = empty
}

// encodingVersion identifies the current file format.
const encodingVersion = 1

// groupSetJSON mirrors GroupSet for encoding.
type groupSetJSON struct {
	Groups []Group `json:"groups"`
}

// MarshalJSON encodes the group set as its group list.
func (gs *GroupSet) MarshalJSON() ([]byte, error) {
	return json.Marshal(groupSetJSON{Groups: gs.groups})
}

// UnmarshalJSON decodes and re-validates a group set.
func (gs *GroupSet) UnmarshalJSON(data []byte) error {
	var raw groupSetJSON
	if err := json.Unmarshal(data, &raw); err != nil {
		return fmt.Errorf("core: decoding group set: %w", err)
	}
	decoded, err := NewGroupSet(raw.Groups)
	if err != nil {
		return err
	}
	*gs = *decoded
	return nil
}

// MarshalJSON encodes the program, including its instance, so a file is
// self-contained.
func (p *Program) MarshalJSON() ([]byte, error) {
	grid := make([][]int32, p.channels)
	for ch := 0; ch < p.channels; ch++ {
		row := make([]int32, p.length)
		for slot := 0; slot < p.length; slot++ {
			row[slot] = int32(p.At(ch, slot))
		}
		grid[ch] = row
	}
	return json.Marshal(programJSON{
		Version:  encodingVersion,
		Groups:   p.gs.groups,
		Channels: p.channels,
		Length:   p.length,
		Grid:     grid,
	})
}

// UnmarshalJSON decodes a program, re-validating the instance, the grid
// dimensions and every cell's page ID.
func (p *Program) UnmarshalJSON(data []byte) error {
	var raw programJSON
	if err := json.Unmarshal(data, &raw); err != nil {
		return fmt.Errorf("core: decoding program: %w", err)
	}
	if raw.Version != encodingVersion {
		return fmt.Errorf("%w: unsupported program version %d", ErrInvalidProgram, raw.Version)
	}
	gs, err := NewGroupSet(raw.Groups)
	if err != nil {
		return err
	}
	prog, err := NewProgram(gs, raw.Channels, raw.Length)
	if err != nil {
		return err
	}
	if len(raw.Grid) != raw.Channels {
		return fmt.Errorf("%w: %d grid rows for %d channels", ErrInvalidProgram, len(raw.Grid), raw.Channels)
	}
	for ch, row := range raw.Grid {
		if len(row) != raw.Length {
			return fmt.Errorf("%w: row %d has %d slots, want %d", ErrInvalidProgram, ch, len(row), raw.Length)
		}
		for slot, v := range row {
			if v == int32(None) {
				continue
			}
			if err := prog.Place(ch, slot, PageID(v)); err != nil {
				return fmt.Errorf("core: decoding cell (%d,%d): %w", ch, slot, err)
			}
		}
	}
	*p = *prog
	return nil
}
