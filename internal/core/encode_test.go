package core

import (
	"encoding/json"
	"math/rand"
	"strings"
	"testing"
)

func TestGroupSetJSONRoundTrip(t *testing.T) {
	gs := MustGroupSet([]Group{{2, 3}, {4, 5}, {8, 3}})
	data, err := json.Marshal(gs)
	if err != nil {
		t.Fatal(err)
	}
	var back GroupSet
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !gs.Equal(&back) {
		t.Errorf("round trip lost data: %v vs %v", gs, &back)
	}
	// Derived state must be rebuilt, not just the raw fields.
	if back.Pages() != gs.Pages() || back.MinChannels() != gs.MinChannels() {
		t.Error("decoded group set has stale derived state")
	}
}

func TestGroupSetJSONRejectsInvalid(t *testing.T) {
	var gs GroupSet
	if err := json.Unmarshal([]byte(`{"groups":[{"Time":4,"Count":1},{"Time":6,"Count":1}]}`), &gs); err == nil {
		t.Error("non-divisible times accepted")
	}
	if err := json.Unmarshal([]byte(`{"groups":`), &gs); err == nil {
		t.Error("truncated JSON accepted")
	}
}

func TestProgramJSONRoundTrip(t *testing.T) {
	gs := MustGroupSet([]Group{{2, 2}, {4, 2}})
	p, _ := NewProgram(gs, 2, 4)
	mustPlaceAll(p, [][3]int{{0, 0, 0}, {0, 2, 0}, {1, 1, 1}, {1, 3, 1}, {0, 1, 2}, {1, 0, 3}})
	data, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	var back Program
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Channels() != 2 || back.Length() != 4 || back.Filled() != p.Filled() {
		t.Fatalf("dimensions lost: %dx%d filled %d", back.Channels(), back.Length(), back.Filled())
	}
	for ch := 0; ch < 2; ch++ {
		for slot := 0; slot < 4; slot++ {
			if back.At(ch, slot) != p.At(ch, slot) {
				t.Errorf("cell (%d,%d) = %d, want %d", ch, slot, back.At(ch, slot), p.At(ch, slot))
			}
		}
	}
	if !back.GroupSet().Equal(gs) {
		t.Error("instance lost")
	}
}

func TestProgramJSONRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 50; trial++ {
		gs := randomGroupSet(rng)
		p, err := NewProgram(gs, 1+rng.Intn(4), 1+rng.Intn(30))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 20; i++ {
			_ = p.Place(rng.Intn(p.Channels()), rng.Intn(p.Length()), PageID(rng.Intn(gs.Pages())))
		}
		data, err := json.Marshal(p)
		if err != nil {
			t.Fatal(err)
		}
		var back Program
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if back.Filled() != p.Filled() {
			t.Fatalf("trial %d: filled %d != %d", trial, back.Filled(), p.Filled())
		}
		// Delay analysis must survive the round trip exactly.
		if a, b := Analyze(p).AvgWait(), Analyze(&back).AvgWait(); a != b {
			t.Fatalf("trial %d: wait %f != %f", trial, a, b)
		}
	}
}

func TestProgramJSONRejectsMalformed(t *testing.T) {
	gs := MustGroupSet([]Group{{2, 1}})
	p, _ := NewProgram(gs, 1, 2)
	good, _ := json.Marshal(p)

	tests := []struct {
		name   string
		mutate func(string) string
	}{
		{"bad version", func(s string) string { return strings.Replace(s, `"version":1`, `"version":9`, 1) }},
		{"page out of range", func(s string) string { return strings.Replace(s, `[[-1,-1]]`, `[[7,-1]]`, 1) }},
		{"row count mismatch", func(s string) string { return strings.Replace(s, `[[-1,-1]]`, `[[-1,-1],[-1,-1]]`, 1) }},
		{"row length mismatch", func(s string) string { return strings.Replace(s, `[[-1,-1]]`, `[[-1]]`, 1) }},
		{"bad groups", func(s string) string { return strings.Replace(s, `"Time":2`, `"Time":0`, 1) }},
		{"truncated", func(s string) string { return s[:len(s)/2] }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			mutated := tt.mutate(string(good))
			if mutated == string(good) {
				t.Fatalf("mutation had no effect on %s", good)
			}
			var back Program
			if err := json.Unmarshal([]byte(mutated), &back); err == nil {
				t.Errorf("malformed input accepted: %s", mutated)
			}
		})
	}
}
