package core

import (
	"errors"
	"testing"
)

func placeRepeatsProgram(t *testing.T) *Program {
	t.Helper()
	gs := MustGroupSet([]Group{{Time: 2, Count: 2}, {Time: 4, Count: 3}})
	prog, err := NewProgram(gs, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func TestPlaceRepeatsMatchesPlace(t *testing.T) {
	bulk := placeRepeatsProgram(t)
	cellwise := placeRepeatsProgram(t)
	if err := bulk.PlaceRepeats(1, 1, 2, 4, 3); err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 4; k++ {
		if err := cellwise.Place(1, 1+2*k, 3); err != nil {
			t.Fatal(err)
		}
	}
	if bulk.Filled() != cellwise.Filled() {
		t.Errorf("Filled = %d, want %d", bulk.Filled(), cellwise.Filled())
	}
	for ch := 0; ch < 2; ch++ {
		for slot := 0; slot < 8; slot++ {
			if bulk.At(ch, slot) != cellwise.At(ch, slot) {
				t.Errorf("cell (%d,%d) = %d, want %d", ch, slot, bulk.At(ch, slot), cellwise.At(ch, slot))
			}
		}
	}
}

func TestPlaceRepeatsRejectsBadPatterns(t *testing.T) {
	prog := placeRepeatsProgram(t)
	cases := []struct {
		name                     string
		ch, first, period, count int
		id                       PageID
		want                     error
	}{
		{"zero period", 0, 0, 0, 2, 0, ErrSlotRange},
		{"zero count", 0, 0, 2, 0, 0, ErrSlotRange},
		{"channel out of range", 2, 0, 2, 1, 0, ErrSlotRange},
		{"pattern past cycle end", 0, 1, 4, 3, 0, ErrSlotRange},
		{"negative first", 0, -1, 2, 1, 0, ErrSlotRange},
		{"page out of range", 0, 0, 2, 1, 99, ErrPageRange},
	}
	for _, tc := range cases {
		if err := prog.PlaceRepeats(tc.ch, tc.first, tc.period, tc.count, tc.id); !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}
	if prog.Filled() != 0 {
		t.Errorf("failed PlaceRepeats modified the program: Filled = %d", prog.Filled())
	}
}

// TestPlaceRepeatsAtomicOnCollision: a pattern whose later cell collides
// must leave every cell untouched, including the ones before the collision.
func TestPlaceRepeatsAtomicOnCollision(t *testing.T) {
	prog := placeRepeatsProgram(t)
	if err := prog.Place(0, 4, 1); err != nil {
		t.Fatal(err)
	}
	if err := prog.PlaceRepeats(0, 0, 2, 4, 2); !errors.Is(err, ErrSlotOccupied) {
		t.Fatalf("err = %v, want ErrSlotOccupied", err)
	}
	if prog.Filled() != 1 {
		t.Errorf("Filled = %d, want 1 (atomic failure)", prog.Filled())
	}
	if prog.At(0, 0) != None || prog.At(0, 2) != None {
		t.Error("collision left partial pattern behind")
	}
}
