//go:build linux && arm64

package netcast

import "syscall"

// sysSendmmsg is the sendmmsg(2) syscall number on linux/arm64.
const sysSendmmsg = syscall.SYS_SENDMMSG
