package netcast

import (
	"context"
	"encoding/binary"
	"net"
	"sync"
	"testing"
	"time"

	"tcsa/internal/core"
)

// listenLoopback binds a throwaway loopback UDP socket.
func listenLoopback(t testing.TB) *net.UDPConn {
	t.Helper()
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = conn.Close() })
	return conn
}

// TestBatcherFanoutDelivers pins that the batched send path delivers the
// frame to every destination — including one listed twice, which must
// receive two copies — and reports the full send count.
func TestBatcherFanoutDelivers(t *testing.T) {
	sender := listenLoopback(t)
	listeners := make([]*net.UDPConn, 5)
	addrs := make([]*net.UDPAddr, 0, 6)
	for i := range listeners {
		listeners[i] = listenLoopback(t)
		addrs = append(addrs, listeners[i].LocalAddr().(*net.UDPAddr))
	}
	addrs = append(addrs, addrs[0]) // duplicate: two frames to listener 0

	frame := appendFrame(nil, Frame{Channel: 3, Slot: 7, Page: 42})
	b := NewBatcher(sender)
	ds := NewDestSet(addrs)
	if sent := b.Fanout(frame, ds); sent != len(addrs) {
		t.Fatalf("Fanout sent %d, want %d", sent, len(addrs))
	}

	buf := make([]byte, FrameSize+16)
	for i, l := range listeners {
		copies := 1
		if i == 0 {
			copies = 2
		}
		for c := 0; c < copies; c++ {
			if err := l.SetReadDeadline(time.Now().Add(2 * time.Second)); err != nil {
				t.Fatal(err)
			}
			n, _, err := l.ReadFromUDP(buf)
			if err != nil {
				t.Fatalf("listener %d copy %d: %v", i, c, err)
			}
			f, err := parseFrame(buf[:n])
			if err != nil {
				t.Fatalf("listener %d: %v", i, err)
			}
			if f.Page != 42 || f.Slot != 7 || f.Channel != 3 {
				t.Fatalf("listener %d got %+v", i, f)
			}
		}
	}
}

// countingFault counts every Drop/Corrupt consultation so tests can pin
// which channels the engine even asks about.
type countingFault struct {
	mu       sync.Mutex
	dropAsks map[int]int
	dropAll  bool
}

func (f *countingFault) Stalled(int) bool { return false }
func (f *countingFault) Drop(ch, _ int) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.dropAsks == nil {
		f.dropAsks = make(map[int]int)
	}
	f.dropAsks[ch]++
	return f.dropAll
}
func (f *countingFault) Corrupt(int, int) bool { return false }

func (f *countingFault) asks(ch int) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.dropAsks[ch]
}

// TestUDPSkipsSilentChannels pins the empty-channel fix: on the UDP path
// the engine neither encodes nor fault-accounts channels with zero
// subscribers (the fault injector is never consulted for them), while a
// subscribed channel keeps the exact tuner-visible behavior — its frames
// still air, its drops still count.
func TestUDPSkipsSilentChannels(t *testing.T) {
	prog := testProgram(t)
	fault := &countingFault{dropAll: true}
	tr, err := NewUDPTransport(prog.Channels(), "")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = tr.Close() })
	caster, err := NewCaster(prog, tr, fault)
	if err != nil {
		t.Fatal(err)
	}

	const silentSlots = 50
	for abs := 0; abs < silentSlots; abs++ {
		caster.CastSlot(abs)
	}
	for ch := 0; ch < prog.Channels(); ch++ {
		if asks := fault.asks(ch); asks != 0 {
			t.Errorf("silent channel %d: fault injector consulted %d times, want 0", ch, asks)
		}
	}
	if got := caster.Faults(); got != (FaultStats{}) {
		t.Errorf("silent air accrued faults %+v, want none", got)
	}

	// Subscribe a tuner on channel 0 and air more slots: channel 0's drop
	// accounting resumes exactly, channel 1 stays unasked.
	tuner, err := NewTuner()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = tuner.Close() })
	addr, err := tr.ChannelAddr(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := tuner.Tune(addr); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for tr.Subscribers(0) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("subscription not registered")
		}
		time.Sleep(time.Millisecond)
	}
	for abs := silentSlots; abs < 2*silentSlots; abs++ {
		caster.CastSlot(abs)
	}
	if asks := fault.asks(0); asks != silentSlots {
		t.Errorf("subscribed channel 0 consulted %d times, want %d", asks, silentSlots)
	}
	if asks := fault.asks(1); asks != 0 {
		t.Errorf("still-silent channel 1 consulted %d times, want 0", asks)
	}
	if got := caster.Faults().DroppedFrames; got != silentSlots {
		t.Errorf("DroppedFrames = %d, want %d", got, silentSlots)
	}
}

// TestCorruptFlipLandsInPayload pins the named corruption constant to the
// frame layout: the flipped byte sits inside the page field, so a v2
// receiver rejects the frame by checksum while a checksum-less v1 frame
// decodes to a different page — corrupted payload, intact framing.
func TestCorruptFlipLandsInPayload(t *testing.T) {
	if corruptFlipOffset < framePageOff || corruptFlipOffset >= framePageOff+4 {
		t.Fatalf("corruptFlipOffset %d outside the page field [%d, %d)",
			corruptFlipOffset, framePageOff, framePageOff+4)
	}

	v2 := appendFrame(nil, Frame{Channel: 1, Slot: 9, Page: 0x0102})
	v2[corruptFlipOffset] ^= corruptFlipMask
	if _, err := parseFrame(v2); err == nil {
		t.Error("v2 checksum accepted a corrupted payload byte")
	}

	v1 := appendFrame(nil, Frame{Channel: 1, Slot: 9, Page: 0x0102})
	v1[frameVersionOff] = frameVersionV1
	binary.BigEndian.PutUint16(v1[frameSumOff:], 0) // v1 reserved the field
	clean, err := parseFrame(v1)
	if err != nil {
		t.Fatal(err)
	}
	v1[corruptFlipOffset] ^= corruptFlipMask
	dirty, err := parseFrame(v1)
	if err != nil {
		t.Fatalf("v1 frame must parse uncheckedly: %v", err)
	}
	if dirty.Page == clean.Page {
		t.Errorf("flip at offset %d did not change the decoded page %d", corruptFlipOffset, clean.Page)
	}
	if dirty.Channel != clean.Channel || dirty.Slot != clean.Slot {
		t.Errorf("flip leaked outside the page field: %+v vs %+v", dirty, clean)
	}
}

// TestUDPChurnStorm races rapid subscribe/unsubscribe traffic against a
// full-rate caster driving the transport; under -race this is the proof
// the COW snapshots, mailboxes and control readers never share state
// unsafely. Tuner-visible behavior (decodable frames on the tuned
// channel) is spot-checked alongside.
func TestUDPChurnStorm(t *testing.T) {
	prog := testProgram(t)
	tr, err := NewUDPTransport(prog.Channels(), "")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = tr.Close() })
	caster, err := NewCaster(prog, tr, nil)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tuner, err := NewTuner()
			if err != nil {
				t.Error(err)
				return
			}
			defer tuner.Close()
			for i := 0; ctx.Err() == nil; i++ {
				addr, err := tr.ChannelAddr((w + i) % prog.Channels())
				if err != nil {
					t.Error(err)
					return
				}
				if err := tuner.Tune(addr); err != nil {
					return // socket shut down under us: storm is over
				}
				_, _ = tuner.ReadFrame(5 * time.Millisecond)
				if err := tuner.Detach(); err != nil {
					return
				}
			}
		}(w)
	}
	for abs := 0; abs < 3000; abs++ {
		caster.CastSlot(abs)
		if abs%100 == 0 {
			time.Sleep(time.Millisecond) // let control traffic interleave
		}
	}
	cancel()
	wg.Wait()
}

// benchDestSet builds n distinct loopback destinations backed by a
// handful of real sockets (so sends land somewhere) — the send cost per
// destination is identical either way, which is what the fan-out
// benchmark measures.
func benchDestSet(tb testing.TB, n int) *DestSet {
	tb.Helper()
	sinks := make([]*net.UDPAddr, 8)
	for i := range sinks {
		sinks[i] = listenLoopback(tb).LocalAddr().(*net.UDPAddr)
	}
	addrs := make([]*net.UDPAddr, n)
	for i := range addrs {
		addrs[i] = sinks[i%len(sinks)]
	}
	return NewDestSet(addrs)
}

// BenchmarkFanoutUDP measures the UDP engine at 10k subscribers on two
// axes.
//
// wire/*: one full fan-out to every destination — batched sendmmsg
// against the serial per-subscriber WriteToUDP loop. On a single-core
// host the kernel's per-datagram delivery dominates both, so this ratio
// is modest; on multi-core hosts the per-channel workers multiply it.
//
// slotpath/*: the work the slot clock is blocked on per slot — the
// pre-Transport server fanned out serially on the tick goroutine
// (O(subscribers) syscalls before the next slot could air), the engine
// hands the encoded frame to the channel worker in O(1). This is the
// ratio the acceptance criteria gate on: it is what lets the slot clock
// keep airing at rate regardless of subscriber count.
func BenchmarkFanoutUDP(b *testing.B) {
	const subs = 10_000
	frame := appendFrame(nil, Frame{Channel: 0, Slot: 1, Page: 2})
	b.Run("wire/batched", func(b *testing.B) {
		batcher := NewBatcher(listenLoopback(b))
		ds := benchDestSet(b, subs)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if sent := batcher.Fanout(frame, ds); sent == 0 {
				b.Fatal("no frames sent")
			}
		}
		b.ReportMetric(float64(subs)*float64(b.N)/b.Elapsed().Seconds(), "frames/s")
	})
	b.Run("wire/serial", func(b *testing.B) {
		batcher := NewBatcher(listenLoopback(b))
		ds := benchDestSet(b, subs)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if sent := batcher.serialFanout(frame, ds, 0); sent == 0 {
				b.Fatal("no frames sent")
			}
		}
		b.ReportMetric(float64(subs)*float64(b.N)/b.Elapsed().Seconds(), "frames/s")
	})
	b.Run("slotpath/sharded", func(b *testing.B) {
		gs := core.MustGroupSet([]core.Group{{Time: 2, Count: 2}, {Time: 4, Count: 3}})
		prog := mustProgram(b, gs)
		tr, err := NewUDPTransport(prog.Channels(), "")
		if err != nil {
			b.Fatal(err)
		}
		defer tr.Close()
		ds := benchDestSet(b, subs)
		if err := tr.Provision(0, ds.addrs); err != nil {
			b.Fatal(err)
		}
		caster, err := NewCaster(prog, tr, nil)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			caster.CastSlot(i)
		}
		b.StopTimer()
		b.ReportMetric(float64(tr.Overruns())/float64(b.N), "overruns/op")
	})
	b.Run("slotpath/serial", func(b *testing.B) {
		batcher := NewBatcher(listenLoopback(b))
		ds := benchDestSet(b, subs)
		scratch := make([]byte, 0, FrameSize)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// The pre-Transport transmit(): encode, then send to every
			// subscriber before the tick goroutine can move on.
			scratch = appendFrame(scratch[:0], Frame{Channel: 0, Slot: uint32(i), Page: 2})
			batcher.serialFanout(scratch, ds, 0)
		}
	})
}
