package netcast

import (
	"context"
	"encoding/binary"
	"errors"
	"sync"
	"testing"
	"time"

	"tcsa/internal/chaos"
	"tcsa/internal/core"
	"tcsa/internal/replan"
)

// startFaultyServer is startServer with a fault injector attached.
func startFaultyServer(t *testing.T, prog *core.Program, slot time.Duration, fault FaultInjector) *Server {
	t.Helper()
	srv, err := NewServer(prog, ServerConfig{SlotDuration: slot, Fault: fault})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Run(context.Background()) }()
	t.Cleanup(func() {
		srv.Stop()
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("Run returned %v", err)
			}
		case <-time.After(5 * time.Second):
			t.Error("server did not stop")
		}
	})
	return srv
}

// testPlan builds a chaos.Plan for prog, proving along the way that
// chaos.Plan satisfies the netcast FaultInjector contract with no
// adapter.
func testPlan(t *testing.T, prog *core.Program, cfg chaos.Config) FaultInjector {
	t.Helper()
	plan, err := chaos.NewPlan(cfg, prog.Channels(), prog.Length())
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

func TestFrameV1Compat(t *testing.T) {
	// A version-1 sender wrote zeros where version 2 keeps the checksum;
	// its frames must still decode.
	f := Frame{Channel: 1, Slot: 77, Page: 5}
	buf := appendFrame(nil, f)
	buf[2] = frameVersionV1
	binary.BigEndian.PutUint16(buf[6:8], 0)
	got, err := parseFrame(buf)
	if err != nil {
		t.Fatalf("v1 frame rejected: %v", err)
	}
	if got != f {
		t.Errorf("v1 round trip %+v -> %+v", f, got)
	}
}

func TestFrameChecksumRejectsCorruption(t *testing.T) {
	good := appendFrame(nil, Frame{Channel: 2, Slot: 9, Page: 4})
	for _, i := range []int{3, 5, 8, 12, 13, 15} {
		bad := append([]byte(nil), good...)
		bad[i] ^= 0xA5
		if _, err := parseFrame(bad); !errors.Is(err, ErrBadFrame) {
			t.Errorf("corrupted byte %d accepted", i)
		}
	}
}

func TestServerStallSilencesAir(t *testing.T) {
	prog := testProgram(t)
	// Stall 3 of every 4 slots: the air is mostly dead but frames that do
	// get through still carry the right schedule column.
	srv := startFaultyServer(t, prog, time.Millisecond,
		testPlan(t, prog, chaos.Config{Seed: 1, StallEvery: 4, StallFor: 3}))
	addr, err := srv.ChannelAddr(0)
	if err != nil {
		t.Fatal(err)
	}
	tuner, err := NewTuner()
	if err != nil {
		t.Fatal(err)
	}
	defer tuner.Close()
	if err := tuner.Tune(addr); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		f, err := tuner.ReadFrame(2 * time.Second)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if int(f.Slot)%4 < 3 {
			t.Fatalf("received frame from stalled slot %d", f.Slot)
		}
		if want := prog.At(0, int(f.Slot)%prog.Length()); f.Page != want {
			t.Fatalf("slot %d carried page %d, want %d", f.Slot, f.Page, want)
		}
	}
	if got := srv.Faults().StalledSlots; got == 0 {
		t.Error("server counted no stalled slots")
	}
}

func TestServerCorruptionCaughtByChecksum(t *testing.T) {
	prog := testProgram(t)
	// Corrupt every frame: the tuner must discard all of them as bad and
	// count each one.
	srv := startFaultyServer(t, prog, time.Millisecond,
		testPlan(t, prog, chaos.Config{Seed: 2, Corrupt: 1}))
	addr, err := srv.ChannelAddr(0)
	if err != nil {
		t.Fatal(err)
	}
	tuner, err := NewTuner()
	if err != nil {
		t.Fatal(err)
	}
	defer tuner.Close()
	if err := tuner.Tune(addr); err != nil {
		t.Fatal(err)
	}
	if f, err := tuner.ReadFrame(100 * time.Millisecond); err == nil {
		t.Fatalf("decoded a frame (%+v) from an all-corrupt channel", f)
	}
	if tuner.BadFrames() == 0 {
		t.Error("tuner counted no bad frames on an all-corrupt channel")
	}
	if srv.Faults().CorruptFrames == 0 {
		t.Error("server counted no corrupted frames")
	}
}

func TestServerDropSuppressesFrames(t *testing.T) {
	prog := testProgram(t)
	srv := startFaultyServer(t, prog, time.Millisecond,
		testPlan(t, prog, chaos.Config{Seed: 3, Loss: 1}))
	addr, err := srv.ChannelAddr(0)
	if err != nil {
		t.Fatal(err)
	}
	tuner, err := NewTuner()
	if err != nil {
		t.Fatal(err)
	}
	defer tuner.Close()
	if err := tuner.Tune(addr); err != nil {
		t.Fatal(err)
	}
	if f, err := tuner.ReadFrame(100 * time.Millisecond); err == nil {
		t.Fatalf("received frame %+v from a total-loss channel", f)
	}
	if tuner.BadFrames() != 0 {
		t.Error("dropped frames must not reach the tuner at all")
	}
	if srv.Faults().DroppedFrames == 0 {
		t.Error("server counted no dropped frames")
	}
}

// churnStorm hammers the server with concurrent subscribe/unsubscribe
// cycles from many tuners while others read frames — the race test the
// -race gate runs with fault injection both off and on.
func churnStorm(t *testing.T, fault FaultInjector) {
	prog := testProgram(t)
	var srv *Server
	if fault == nil {
		srv = startServer(t, prog, time.Millisecond)
	} else {
		srv = startFaultyServer(t, prog, time.Millisecond, fault)
	}
	addrs := srv.ChannelAddrs()

	const churners = 6
	const readers = 2
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < churners; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			tuner, err := NewTuner()
			if err != nil {
				t.Error(err)
				return
			}
			defer tuner.Close()
			for n := 0; ; n++ {
				select {
				case <-stop:
					return
				default:
				}
				if err := tuner.Tune(addrs[(i+n)%len(addrs)]); err != nil {
					t.Error(err)
					return
				}
				if n%3 == 0 {
					if err := tuner.Detach(); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}()
	}
	for i := 0; i < readers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			tuner, err := NewTuner()
			if err != nil {
				t.Error(err)
				return
			}
			defer tuner.Close()
			if err := tuner.Tune(addrs[i%len(addrs)]); err != nil {
				t.Error(err)
				return
			}
			for {
				select {
				case <-stop:
					return
				default:
				}
				// Under total stall or loss nothing arrives; the short
				// timeout keeps the reader churning through the socket
				// path either way.
				f, err := tuner.ReadFrame(20 * time.Millisecond)
				if err != nil {
					continue
				}
				if want := prog.At(f.Channel, int(f.Slot)%prog.Length()); f.Page != want {
					t.Errorf("slot %d channel %d carried page %d, want %d",
						f.Slot, f.Channel, f.Page, want)
					return
				}
			}
		}()
	}

	// Poll the concurrent accessors too, so the race detector sees the
	// full read surface against the transmit path.
	deadline := time.After(300 * time.Millisecond)
	for done := false; !done; {
		select {
		case <-deadline:
			done = true
		default:
			_ = srv.Slot()
			_ = srv.Faults()
			_ = srv.Subscribers(0)
			time.Sleep(5 * time.Millisecond)
		}
	}
	close(stop)
	wg.Wait()
}

func TestChurnRaceFaultFree(t *testing.T) {
	churnStorm(t, nil)
}

func TestChurnRaceUnderFaults(t *testing.T) {
	prog := testProgram(t)
	churnStorm(t, testPlan(t, prog, chaos.Config{
		Seed: 4, Loss: 0.3, Corrupt: 0.2, StallEvery: 8, StallFor: 2,
		Burst: &chaos.BurstConfig{GoodToBad: 0.1, BadToGood: 0.3, LossBad: 0.9},
	}))
}

// dropColumn suppresses the frames of one schedule column for an
// initial window of absolute slots, deterministically forcing
// SmartFetch to miss the page's early appearances and replan off the
// live stream while every other frame (including the sync frame) still
// flows.
type dropColumn struct {
	ch     int
	col    int
	length int
	until  int
}

func (d dropColumn) Stalled(int) bool { return false }
func (d dropColumn) Drop(ch, slot int) bool {
	return ch == d.ch && slot%d.length == d.col && slot < d.until
}
func (d dropColumn) Corrupt(int, int) bool { return false }

func TestSmartFetchReplansUnderLoss(t *testing.T) {
	prog := longCycleProgram(t) // 1 channel, cycle 32
	const page = core.PageID(7)
	ch, abs, ok := (&Schedule{Program: prog}).Locate(page, 0)
	if !ok {
		t.Fatalf("page %d not in schedule", page)
	}
	// Drop exactly the page's column for the first 8 cycles: the fetch
	// syncs and dozes normally, misses the appearance, and must replan.
	srv, err := NewServer(prog, ServerConfig{
		SlotDuration: time.Millisecond,
		Fault: dropColumn{
			ch: ch, col: abs % prog.Length(), length: prog.Length(),
			until: 8 * prog.Length(),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Run(context.Background()) }()
	defer func() {
		srv.Stop()
		<-done
	}()
	ss, err := ServeSchedule("127.0.0.1:0", srv)
	if err != nil {
		t.Fatal(err)
	}
	defer ss.Close()

	res, err := SmartFetch(ss.Addr().String(), page, 20*time.Second)
	if err != nil {
		t.Fatalf("SmartFetch under loss: %v", err)
	}
	if res.Page != page {
		t.Errorf("fetched page %d, want %d", res.Page, page)
	}
	if res.Replans == 0 {
		t.Error("fetch during the drop window completed without replanning")
	}
	t.Logf("replans=%d active=%d dozed=%d bad=%d elapsed=%v",
		res.Replans, res.ActiveFrames, res.DozedSlots, res.BadFrames, res.Elapsed)
}

// liveReplanStorm is the churn-storm race test for the elastic runtime:
// concurrent tuners subscribe and unsubscribe while the replan engine keeps
// editing the instance and staging fresh snapshots for zero-pause epoch
// flips. Readers only ever see frames that decode cleanly and carry page
// IDs from some staged epoch; the exact flip alignment is pinned by the
// deterministic TestRingEpochFlipZeroPause — here the point is the -race
// coverage of StageProgram/Epoch against the transmit path.
func liveReplanStorm(t *testing.T, useRing bool) {
	gs, err := core.Geometric(4, 2, []int{5, 7, 9})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := replan.New(gs, 4)
	if err != nil {
		t.Fatal(err)
	}
	maxPages := eng.GroupSet().Pages() + 1 // edits alternate retire/add on the last group

	var tr Transport
	var ring *BroadcastRing
	if useRing {
		ring, err = NewBroadcastRing(eng.Channels(), DefaultRingSlots)
		if err != nil {
			t.Fatal(err)
		}
		tr = ring
	}
	srv, err := NewServer(eng.Snapshot(), ServerConfig{SlotDuration: time.Millisecond, Transport: tr})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Run(context.Background()) }()
	defer func() {
		srv.Stop()
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("Run returned %v", err)
			}
		case <-time.After(5 * time.Second):
			t.Error("server did not stop")
		}
	}()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	if useRing {
		// Ring readers chase the head concurrently with flips.
		for i := 0; i < 3; i++ {
			ch := i % eng.Channels()
			wg.Add(1)
			go func() {
				defer wg.Done()
				var abs int64
				for {
					select {
					case <-stop:
						return
					default:
					}
					f, st := ring.Poll(ch, abs)
					switch st {
					case RingOK:
						if f.Page != core.None && (f.Page < 0 || int(f.Page) >= maxPages) {
							t.Errorf("slot %d ch %d: page %d outside every staged epoch", abs, ch, f.Page)
							return
						}
						abs++
					case RingSkipped:
						abs++
					case RingLost:
						abs = ring.Head(ch) // fell behind: resync
					case RingPending:
						time.Sleep(200 * time.Microsecond)
					default:
						t.Errorf("slot %d ch %d: unexpected status %v", abs, ch, st)
						return
					}
				}
			}()
		}
	} else {
		addrs := srv.ChannelAddrs()
		for i := 0; i < 4; i++ {
			i := i
			wg.Add(1)
			go func() {
				defer wg.Done()
				tuner, err := NewTuner()
				if err != nil {
					t.Error(err)
					return
				}
				defer tuner.Close()
				for n := 0; ; n++ {
					select {
					case <-stop:
						return
					default:
					}
					if err := tuner.Tune(addrs[(i+n)%len(addrs)]); err != nil {
						t.Error(err)
						return
					}
					f, err := tuner.ReadFrame(20 * time.Millisecond)
					if err == nil && f.Page != core.None && (f.Page < 0 || int(f.Page) >= maxPages) {
						t.Errorf("slot %d ch %d: page %d outside every staged epoch", f.Slot, f.Channel, f.Page)
						return
					}
					if n%3 == 0 {
						if err := tuner.Detach(); err != nil {
							t.Error(err)
							return
						}
					}
				}
			}()
		}
	}

	// Observer goroutine: the full concurrent read surface, including the
	// epoch accessor, against transmits and flips.
	wg.Add(1)
	go func() {
		defer wg.Done()
		lastSeq := -1
		for {
			select {
			case <-stop:
				return
			default:
			}
			ep := srv.Epoch()
			if ep.Seq < lastSeq {
				t.Errorf("epoch seq went backwards: %d -> %d", lastSeq, ep.Seq)
				return
			}
			lastSeq = ep.Seq
			_ = srv.Slot()
			_ = srv.Faults()
			_ = srv.Subscribers(0)
			time.Sleep(2 * time.Millisecond)
		}
	}()

	// The replan loop: retire/add cycling on the last group, each edit
	// staged as a fresh snapshot. The engine itself is single-owner; only
	// the snapshots cross goroutines.
	deadline := time.After(300 * time.Millisecond)
	for i := 0; ; i++ {
		select {
		case <-deadline:
			close(stop)
			wg.Wait()
			if srv.Epoch().Seq == 0 {
				t.Error("storm finished without a single epoch flip")
			}
			return
		default:
		}
		var evErr error
		if i%2 == 0 {
			_, evErr = eng.RetirePage(2)
		} else {
			_, evErr = eng.AddPage(2)
		}
		if evErr != nil {
			t.Error(evErr)
			close(stop)
			wg.Wait()
			return
		}
		if err := srv.StageProgram(eng.Snapshot()); err != nil {
			t.Error(err)
			close(stop)
			wg.Wait()
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestChurnRaceLiveReplanUDP(t *testing.T) {
	liveReplanStorm(t, false)
}

func TestChurnRaceLiveReplanRing(t *testing.T) {
	liveReplanStorm(t, true)
}
