package netcast

import (
	"fmt"
	"time"

	"tcsa/internal/core"
)

// SmartResult reports a schedule-aware fetch: how many frames the radio
// was actually awake for (the energy cost) versus how long the fetch took.
type SmartResult struct {
	Page core.PageID
	// ActiveFrames counts frames the tuner listened to: the sync frame,
	// the wake-up margin and the page frame itself. A schedule-ignorant
	// client would instead stay awake for its entire wait.
	ActiveFrames int
	// DozedSlots is how many slots the radio slept through.
	DozedSlots int
	// Elapsed is the wall-clock fetch duration.
	Elapsed time.Duration
}

// SmartFetch retrieves a page using the published schedule: fetch the
// program over TCP, listen for a single frame to synchronise with the
// server's slot counter, locate the page's next appearance, doze until
// just before it, then wake and capture it. The doze margin absorbs timer
// jitter; two slots is ample for the millisecond-scale slots used in
// tests.
func SmartFetch(scheduleAddr string, page core.PageID, timeout time.Duration) (*SmartResult, error) {
	start := time.Now()
	sched, err := FetchSchedule(scheduleAddr, timeout)
	if err != nil {
		return nil, err
	}
	n := sched.Program.GroupSet().Pages()
	if page < 0 || int(page) >= n {
		return nil, fmt.Errorf("%w: %d", core.ErrPageRange, page)
	}
	tuner, err := NewTuner()
	if err != nil {
		return nil, err
	}
	defer tuner.Close()

	res := &SmartResult{Page: page}

	// Synchronise: one frame from any channel tells us the absolute slot.
	if err := tuner.Tune(sched.ChannelAddrs[0]); err != nil {
		return nil, err
	}
	sync, err := tuner.ReadFrame(timeout)
	if err != nil {
		return nil, fmt.Errorf("netcast: synchronising: %w", err)
	}
	res.ActiveFrames++
	if sync.Page == page {
		res.Elapsed = time.Since(start)
		return res, nil // lucky: the sync frame was the page
	}

	// Locate the next appearance, leaving a 2-slot wake-up margin.
	const margin = 2
	channel, abs, ok := sched.Locate(page, int(sync.Slot)+1)
	if !ok {
		return nil, fmt.Errorf("netcast: page %d is not in the broadcast schedule", page)
	}
	if err := tuner.Detach(); err != nil {
		return nil, err
	}
	doze := abs - int(sync.Slot) - 1 - margin
	if doze > 0 {
		time.Sleep(time.Duration(doze) * sched.SlotDuration)
		res.DozedSlots = doze
	}
	if err := tuner.Tune(sched.ChannelAddrs[channel]); err != nil {
		return nil, err
	}
	frames, err := tuner.WaitForPage(page, timeout-time.Since(start))
	if err != nil {
		return nil, err
	}
	res.ActiveFrames += frames
	res.Elapsed = time.Since(start)
	return res, nil
}
