package netcast

import (
	"fmt"
	"time"

	"tcsa/internal/core"
)

// SmartResult reports a schedule-aware fetch: how many frames the radio
// was actually awake for (the energy cost) versus how long the fetch took.
type SmartResult struct {
	Page core.PageID
	// ActiveFrames counts frames the tuner listened to: the sync frame,
	// the wake-up margin and the page frame itself. A schedule-ignorant
	// client would instead stay awake for its entire wait.
	ActiveFrames int
	// DozedSlots is how many slots the radio slept through.
	DozedSlots int
	// Replans counts missed appearances: the expected frame never arrived
	// (dropped, stalled, or rejected by the checksum), so the client
	// re-synchronised off the live stream and dozed to the next one.
	Replans int
	// BadFrames counts corrupted datagrams the tuner discarded.
	BadFrames int
	// Elapsed is the wall-clock fetch duration.
	Elapsed time.Duration
}

// SmartFetch retrieves a page using the published schedule: fetch the
// program over TCP, listen for a single frame to synchronise with the
// server's slot counter, locate the page's next appearance, doze until
// just before it, then wake and capture it. The doze margin absorbs timer
// jitter; two slots is ample for the millisecond-scale slots used in
// tests.
//
// When the expected frame never arrives — dropped on a lossy channel,
// silenced by a server stall, or rejected by the frame checksum — the
// client replans: it re-synchronises off whatever the channel is
// currently carrying, locates the page's following appearance and dozes
// to that, repeating until the page lands or timeout expires. Each
// missed appearance costs one schedule period of latency but keeps the
// radio asleep in between, so the energy story survives the loss.
func SmartFetch(scheduleAddr string, page core.PageID, timeout time.Duration) (*SmartResult, error) {
	start := time.Now()
	sched, err := FetchSchedule(scheduleAddr, timeout)
	if err != nil {
		return nil, err
	}
	n := sched.Program.GroupSet().Pages()
	if page < 0 || int(page) >= n {
		return nil, fmt.Errorf("%w: %d", core.ErrPageRange, page)
	}
	tuner, err := NewTuner()
	if err != nil {
		return nil, err
	}
	defer tuner.Close()

	res := &SmartResult{Page: page}
	finish := func() (*SmartResult, error) {
		res.BadFrames = tuner.BadFrames()
		res.Elapsed = time.Since(start)
		return res, nil
	}

	// Synchronise: one frame from any channel tells us the absolute slot.
	if err := tuner.Tune(sched.ChannelAddrs[0]); err != nil {
		return nil, err
	}
	sync, err := tuner.ReadFrame(timeout)
	if err != nil {
		return nil, fmt.Errorf("netcast: synchronising: %w", err)
	}
	res.ActiveFrames++
	if sync.Page == page {
		return finish() // lucky: the sync frame was the page
	}

	const margin = 2
	for {
		// Locate the next appearance, leaving a 2-slot wake-up margin.
		channel, abs, ok := sched.Locate(page, int(sync.Slot)+1)
		if !ok {
			return nil, fmt.Errorf("netcast: page %d is not in the broadcast schedule", page)
		}
		if err := tuner.Detach(); err != nil {
			return nil, err
		}
		doze := abs - int(sync.Slot) - 1 - margin
		if doze > 0 {
			time.Sleep(time.Duration(doze) * sched.SlotDuration)
			res.DozedSlots += doze
		}
		if err := tuner.Tune(sched.ChannelAddrs[channel]); err != nil {
			return nil, err
		}
		// Listen only until just past the expected appearance; an open-ended
		// wait would burn the energy budget the doze saved.
		wait := time.Duration(abs-int(sync.Slot)+2*margin) * sched.SlotDuration
		if remaining := timeout - time.Since(start); wait > remaining {
			wait = remaining
		}
		frames, err := tuner.WaitForPage(page, wait)
		res.ActiveFrames += frames
		if err == nil {
			return finish()
		}
		if timeout-time.Since(start) <= 0 {
			return nil, fmt.Errorf("netcast: page %d not received within %v (%d replans)",
				page, timeout, res.Replans)
		}
		// Missed it. Re-synchronise off the live stream and doze to the
		// page's next appearance.
		res.Replans++
		sync, err = tuner.ReadFrame(timeout - time.Since(start))
		if err != nil {
			return nil, fmt.Errorf("netcast: re-synchronising after miss: %w", err)
		}
		res.ActiveFrames++
		if sync.Page == page {
			return finish()
		}
	}
}
