//go:build linux && (amd64 || arm64)

package netcast

import (
	"net"
	"syscall"
	"unsafe"
)

// mmsgBatch is how many destinations one sendmmsg call covers: a slot's
// fan-out to N subscribers costs ceil(N/128) syscalls instead of N.
const mmsgBatch = 128

// mmsgHdr mirrors the kernel's struct mmsghdr on linux/amd64: a msghdr
// plus the per-message byte count the kernel writes back, padded to
// 8-byte alignment.
type mmsgHdr struct {
	hdr syscall.Msghdr
	len uint32
	_   [4]byte
}

// destSys carries each destination precomputed as the raw IPv4 sockaddr
// sendmmsg wants. all4 is false when any destination is not expressible
// (non-IPv4), which routes the whole set to the serial fallback.
type destSys struct {
	raw  []syscall.RawSockaddrInet4
	all4 bool
}

func makeDestSys(addrs []*net.UDPAddr) destSys {
	s := destSys{raw: make([]syscall.RawSockaddrInet4, len(addrs)), all4: true}
	for i, a := range addrs {
		ip4 := a.IP.To4()
		if ip4 == nil || a.Port < 0 || a.Port > 0xFFFF {
			s.all4 = false
			return s
		}
		r := &s.raw[i]
		r.Family = syscall.AF_INET
		// sin_port is network byte order regardless of host endianness.
		r.Port = uint16(a.Port)<<8 | uint16(a.Port)>>8
		copy(r.Addr[:], ip4)
	}
	return s
}

// batcherSys holds the preallocated syscall plumbing for one socket: the
// raw connection, one iovec shared by every message in a batch (they all
// carry the same frame), the mmsghdr array reused across calls, and the
// write callback built once so the steady-state send path allocates
// nothing.
type batcherSys struct {
	rc   syscall.RawConn
	iov  syscall.Iovec
	hdrs [mmsgBatch]mmsgHdr

	// writeFn in/out parameters: rc.Write calls a prebuilt closure over
	// these fields, so no per-batch closure or escaping locals.
	n       int
	got     uintptr
	errno   syscall.Errno
	writeFn func(fd uintptr) bool
}

func makeBatcherSys(conn *net.UDPConn) batcherSys {
	var s batcherSys
	if conn == nil {
		return s
	}
	if rc, err := conn.SyscallConn(); err == nil {
		s.rc = rc
	}
	return s
}

// fanout sends frame to every destination via sendmmsg batches, falling
// back to the serial loop when the raw connection or an IPv4 encoding is
// unavailable, or when a batch fails outright.
func (b *Batcher) fanout(frame []byte, ds *DestSet) int {
	if b.sys.rc == nil || !ds.sys.all4 || len(frame) == 0 {
		return b.serialFanout(frame, ds, 0)
	}
	b.sys.iov.Base = &frame[0]
	b.sys.iov.SetLen(len(frame))
	sent := 0
	for sent < len(ds.sys.raw) {
		n := len(ds.sys.raw) - sent
		if n > mmsgBatch {
			n = mmsgBatch
		}
		for i := 0; i < n; i++ {
			h := &b.sys.hdrs[i].hdr
			h.Name = (*byte)(unsafe.Pointer(&ds.sys.raw[sent+i]))
			h.Namelen = syscall.SizeofSockaddrInet4
			h.Iov = &b.sys.iov
			h.Iovlen = 1
		}
		got, errno := b.sendmmsg(n)
		if errno != 0 || got <= 0 {
			// Kernel refused the batch: finish this set one datagram at a
			// time so a transient batching failure never silences a slot.
			return sent + b.serialFanout(frame, ds, sent)
		}
		sent += got
	}
	return sent
}

// sendmmsg issues one batched send of the first n prepared headers,
// waiting for writability on EAGAIN like the net package does.
func (b *Batcher) sendmmsg(n int) (int, syscall.Errno) {
	s := &b.sys
	if s.writeFn == nil {
		s.writeFn = func(fd uintptr) bool {
			s.got, _, s.errno = syscall.Syscall6(
				sysSendmmsg,
				fd,
				uintptr(unsafe.Pointer(&s.hdrs[0])),
				uintptr(s.n),
				0, 0, 0,
			)
			if s.errno == syscall.EAGAIN {
				return false // not writable yet; Write parks until it is
			}
			return true
		}
	}
	s.n = n
	if err := s.rc.Write(s.writeFn); err != nil {
		return 0, syscall.EBADF
	}
	return int(s.got), s.errno
}
