package netcast

import (
	"errors"
	"sync/atomic"

	"tcsa/internal/core"
)

// Transport is the fan-out substrate a broadcast slot engine publishes
// through. The engine (Caster) does the per-(channel, slot) work that is
// independent of the subscriber count — claiming the column, injecting
// faults, encoding the frame once — and the transport does the delivery:
// over UDP sockets to every subscriber, or into the in-process broadcast
// ring subscribers read lock-free.
type Transport interface {
	// Channels reports the channel count the transport was built for.
	Channels() int
	// NeedsFrame reports whether channel ch wants a frame published even
	// though the engine might know of nothing listening. Transports whose
	// per-slot delivery cost scales with the subscriber count (UDP)
	// return false for silent channels so the engine can skip the encode
	// and fault work; transports with O(1) delivery cost (the ring)
	// always return true — late subscribers can still read the slot.
	NeedsFrame(ch int) bool
	// Publish delivers the encoded frame (FrameSize bytes) for channel ch
	// at absolute slot abs. The buffer is reused by the caller:
	// implementations must copy what they need before returning.
	Publish(ch, abs int, frame []byte)
	// Skip records that channel ch transmits nothing at slot abs — a
	// stall, an injected drop, or a silent channel. The ring advances its
	// slot watermark so subscribers can tell "lost" from "not yet aired";
	// UDP has nothing to do (a missing datagram is the loss).
	Skip(ch, abs int)
	// Close releases the transport's resources and stops its workers.
	// Safe to call more than once.
	Close() error
}

// FaultStats counts the faults a slot engine has injected so far.
type FaultStats struct {
	StalledSlots  int64 // whole slots silenced across all channels
	DroppedFrames int64 // per-channel frames suppressed
	CorruptFrames int64 // per-channel frames sent with a flipped byte
}

// EpochInfo describes a program epoch the caster airs: the program, the
// absolute slot where its phase 0 started, and how many flips preceded it.
type EpochInfo struct {
	// Seq counts completed epoch flips; 0 is the bootstrap epoch.
	Seq int
	// Base is the absolute slot at which this epoch's column 0 aired (or
	// will air: the bootstrap epoch has Base 0 even before the first cast).
	Base int
	// Program is this epoch's broadcast program. Epochs are copy-on-write:
	// the program behind an EpochInfo is never mutated, a replan stages a
	// fresh snapshot instead.
	Program *core.Program
}

// Caster is the transport-independent slot engine: one call per absolute
// slot encodes each channel's frame exactly once and publishes it through
// the Transport, with fault injection applied in the same priority order
// as the chaos measurement engine (stall, then drop, then corruption).
//
// The caster owns the live-transition protocol. A replan stages its new
// program with StageProgram; the cast loop keeps airing the old epoch and
// flips exactly at the next slot that starts an old-program cycle — the
// boundary the adaptive transition model assumes: the old epoch runs to
// the end of its cycle, the new one starts at phase zero. The flip is a
// pointer swap between two immutable snapshots, so no slot is ever paused
// and no frame mixes epochs; clients' extra wait across the boundary is
// bounded by adaptive.SpliceBounds and checked by the
// conformance.TransitionBound oracle in the package tests.
//
// CastSlot is not safe for concurrent use — one goroutine (the server's
// tick loop, or a load generator's virtual-time broadcaster) owns the
// cast sequence. StageProgram, Epoch and Faults may be called
// concurrently with it.
type Caster struct {
	epoch     *EpochInfo                // owned by the cast goroutine
	published atomic.Pointer[EpochInfo] // last flipped epoch, for observers
	staged    atomic.Pointer[core.Program]
	tr        Transport
	fault     FaultInjector
	frame     []byte

	stalledSlots  atomic.Int64
	droppedFrames atomic.Int64
	corruptFrames atomic.Int64
}

// NewCaster builds a slot engine for prog over tr. fault may be nil
// (fault-free air).
func NewCaster(prog *core.Program, tr Transport, fault FaultInjector) (*Caster, error) {
	if prog == nil {
		return nil, errors.New("netcast: nil program")
	}
	if tr == nil {
		return nil, errors.New("netcast: nil transport")
	}
	if tr.Channels() != prog.Channels() {
		return nil, errors.New("netcast: transport/program channel count mismatch")
	}
	c := &Caster{
		epoch: &EpochInfo{Seq: 0, Base: 0, Program: prog},
		tr:    tr,
		fault: fault,
		frame: make([]byte, 0, FrameSize),
	}
	c.published.Store(c.epoch)
	return c, nil
}

// StageProgram hands the caster the next epoch's program. The cast loop
// flips to it at the next slot that starts a cycle of the airing epoch;
// until then the old program keeps airing without a pause. The program
// must not be mutated after staging (pass a snapshot — replan.Engine's
// Snapshot is the production source). Staging again before the flip
// replaces the pending program: the last staged snapshot wins. The
// channel count must match the transport: the broadcast spectrum is
// fixed hardware here, only the schedule is elastic.
func (c *Caster) StageProgram(next *core.Program) error {
	if next == nil {
		return errors.New("netcast: nil program")
	}
	if next.Channels() != c.tr.Channels() {
		return errors.New("netcast: staged program channel count mismatch")
	}
	c.staged.Store(next)
	return nil
}

// Epoch reports the epoch currently on air. Safe to call concurrently
// with CastSlot; during a flip it returns either the old or the new epoch,
// never a torn mix.
func (c *Caster) Epoch() EpochInfo { return *c.published.Load() }

// CastSlot encodes and publishes absolute slot abs on every channel.
func (c *Caster) CastSlot(abs int) {
	if st := c.staged.Load(); st != nil && c.epoch.Program.Column(abs-c.epoch.Base) == 0 {
		// Start of an old-epoch cycle: flip. The CAS tolerates a racing
		// StageProgram — a snapshot staged after the Load simply waits for
		// the next boundary.
		if c.staged.CompareAndSwap(st, nil) {
			c.epoch = &EpochInfo{Seq: c.epoch.Seq + 1, Base: abs, Program: st}
			c.published.Store(c.epoch)
		}
	}
	prog := c.epoch.Program
	if c.fault != nil && c.fault.Stalled(abs) {
		// The slot counter still advances during a stall: broadcast time
		// is locked to the clock, a stalled server simply wastes the slot.
		c.stalledSlots.Add(1)
		for ch := 0; ch < prog.Channels(); ch++ {
			c.tr.Skip(ch, abs)
		}
		return
	}
	col := prog.Column(abs - c.epoch.Base)
	for ch := 0; ch < prog.Channels(); ch++ {
		if !c.tr.NeedsFrame(ch) {
			// Nobody is listening and the transport pays per subscriber:
			// skip the fault predicates and the encode outright. A frame
			// that was never sent cannot be dropped or corrupted, so the
			// fault counters only ever account for channels with
			// listeners on this path.
			c.tr.Skip(ch, abs)
			continue
		}
		if c.fault != nil && c.fault.Drop(ch, abs) {
			c.droppedFrames.Add(1)
			c.tr.Skip(ch, abs)
			continue
		}
		f := Frame{Channel: ch, Slot: uint32(abs), Page: prog.At(ch, col)}
		c.frame = appendFrame(c.frame[:0], f)
		if c.fault != nil && c.fault.Corrupt(ch, abs) {
			// Flip a page byte after the checksum was computed: the frame
			// goes out damaged and every receiver's checksum rejects it.
			c.frame[corruptFlipOffset] ^= corruptFlipMask
			c.corruptFrames.Add(1)
		}
		c.tr.Publish(ch, abs, c.frame)
	}
}

// Faults reports the faults injected so far. Safe to call concurrently
// with CastSlot.
func (c *Caster) Faults() FaultStats {
	return FaultStats{
		StalledSlots:  c.stalledSlots.Load(),
		DroppedFrames: c.droppedFrames.Load(),
		CorruptFrames: c.corruptFrames.Load(),
	}
}
