//go:build linux && amd64

package netcast

// sysSendmmsg is the sendmmsg(2) syscall number on linux/amd64; the
// frozen syscall package never grew the constant, so it lives here.
const sysSendmmsg = 307
