package netcast

import (
	"testing"
	"time"

	"tcsa/internal/core"
)

func TestServeAndFetchSchedule(t *testing.T) {
	prog := testProgram(t)
	srv := startServer(t, prog, time.Millisecond)
	ss, err := ServeSchedule("127.0.0.1:0", srv)
	if err != nil {
		t.Fatal(err)
	}
	defer ss.Close()

	sched, err := FetchSchedule(ss.Addr().String(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if sched.Program.Channels() != prog.Channels() || sched.Program.Length() != prog.Length() {
		t.Fatalf("fetched %dx%d, want %dx%d",
			sched.Program.Channels(), sched.Program.Length(), prog.Channels(), prog.Length())
	}
	if sched.SlotDuration != time.Millisecond {
		t.Errorf("slot duration = %v", sched.SlotDuration)
	}
	if len(sched.ChannelAddrs) != prog.Channels() {
		t.Fatalf("%d channel addrs", len(sched.ChannelAddrs))
	}
	for ch := 0; ch < prog.Channels(); ch++ {
		for col := 0; col < prog.Length(); col++ {
			if sched.Program.At(ch, col) != prog.At(ch, col) {
				t.Fatalf("cell (%d,%d) differs", ch, col)
			}
		}
	}
}

func TestFetchScheduleMultipleClients(t *testing.T) {
	srv := startServer(t, testProgram(t), time.Millisecond)
	ss, err := ServeSchedule("127.0.0.1:0", srv)
	if err != nil {
		t.Fatal(err)
	}
	defer ss.Close()
	for i := 0; i < 5; i++ {
		if _, err := FetchSchedule(ss.Addr().String(), 2*time.Second); err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}
}

func TestServeScheduleValidation(t *testing.T) {
	if _, err := ServeSchedule("127.0.0.1:0", nil); err == nil {
		t.Error("nil server accepted")
	}
	srv := startServer(t, testProgram(t), time.Millisecond)
	if _, err := ServeSchedule("256.256.256.256:0", srv); err == nil {
		t.Error("bad address accepted")
	}
}

func TestFetchScheduleErrors(t *testing.T) {
	if _, err := FetchSchedule("127.0.0.1:1", 200*time.Millisecond); err == nil {
		t.Error("dead endpoint accepted")
	}
}

func TestScheduleLocate(t *testing.T) {
	prog := testProgram(t) // SUSC over {t=2:P=2, t=4:P=3}
	sched := &Schedule{Program: prog}
	// Page 0 (t=2) appears every 2 slots on its channel.
	ch, slot, ok := sched.Locate(0, 0)
	if !ok {
		t.Fatal("page 0 not located")
	}
	if prog.At(ch, slot%prog.Length()) != 0 {
		t.Fatalf("Locate returned (%d,%d) which holds %d", ch, slot, prog.At(ch, slot%prog.Length()))
	}
	// From a later absolute slot, the result advances monotonically.
	_, slot2, ok := sched.Locate(0, slot+1)
	if !ok || slot2 <= slot {
		t.Errorf("Locate(from %d) = %d, want > %d", slot+1, slot2, slot)
	}
	// A page that is never broadcast.
	empty, _ := core.NewProgram(prog.GroupSet(), 1, 4)
	s2 := &Schedule{Program: empty}
	if _, _, ok := s2.Locate(0, 0); ok {
		t.Error("located a page in an empty program")
	}
}

func TestCloseStopsAccepting(t *testing.T) {
	srv := startServer(t, testProgram(t), time.Millisecond)
	ss, err := ServeSchedule("127.0.0.1:0", srv)
	if err != nil {
		t.Fatal(err)
	}
	addr := ss.Addr().String()
	if err := ss.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := FetchSchedule(addr, 300*time.Millisecond); err == nil {
		t.Error("fetch succeeded after Close")
	}
}
