package netcast

import (
	"testing"

	"tcsa/internal/adaptive"
	"tcsa/internal/conformance"
	"tcsa/internal/core"
	"tcsa/internal/replan"
)

// flipFixture drives a replan edit and returns the pre- and post-edit
// program snapshots plus the surviving item universe across the edit.
func flipFixture(t *testing.T, edit func(*replan.Engine) (*replan.Delta, error)) (
	old, next *core.Program, oldIDs, newIDs []core.PageID) {
	t.Helper()
	gs, err := core.Geometric(4, 2, []int{5, 7, 9})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := replan.New(gs, 4)
	if err != nil {
		t.Fatal(err)
	}
	old = eng.Snapshot()
	oldPages := eng.GroupSet().Pages()
	d, err := edit(eng)
	if err != nil {
		t.Fatal(err)
	}
	next = eng.Snapshot()
	for id := core.PageID(0); int(id) < oldPages; id++ {
		if nid := d.RemapPage(id); nid != core.None {
			oldIDs = append(oldIDs, id)
			newIDs = append(newIDs, nid)
		}
	}
	return old, next, oldIDs, newIDs
}

// TestRingEpochFlipZeroPause is the zero-pause gate: stage a replanned
// program mid-cycle and poll every (channel, slot) of the whole run off
// the seqlock ring. Every slot must read back RingOK — no pause, no skip,
// no torn frame — with the old program's pages bit-exact up to the flip
// boundary and the new program's pages, phase-aligned to the boundary,
// after it.
func TestRingEpochFlipZeroPause(t *testing.T) {
	old, next, _, _ := flipFixture(t, func(e *replan.Engine) (*replan.Delta, error) {
		return e.RetirePage(2)
	})
	ring, err := NewBroadcastRing(old.Channels(), DefaultRingSlots)
	if err != nil {
		t.Fatal(err)
	}
	caster, err := NewCaster(old, ring, nil)
	if err != nil {
		t.Fatal(err)
	}
	lOld := old.Length()
	stageAt := lOld/2 + 1 // mid-cycle: the flip must wait for the boundary
	total := 3*lOld + 2*next.Length()
	flipAbs := -1
	for abs := 0; abs < total; abs++ {
		if abs == stageAt {
			if err := caster.StageProgram(next); err != nil {
				t.Fatal(err)
			}
		}
		caster.CastSlot(abs)
		if ep := caster.Epoch(); ep.Seq == 1 && flipAbs == -1 {
			flipAbs = ep.Base
		}
	}
	wantFlip := ((stageAt + lOld - 1) / lOld) * lOld // next cycle start after staging
	if flipAbs != wantFlip {
		t.Fatalf("flip at abs %d, want next old-cycle boundary %d (staged at %d)", flipAbs, wantFlip, stageAt)
	}
	if ep := caster.Epoch(); ep.Seq != 1 || ep.Program != next {
		t.Fatalf("final epoch seq %d, program %p; want seq 1 airing the staged snapshot", ep.Seq, ep.Program)
	}
	for abs := 0; abs < total; abs++ {
		prog, phase := old, abs
		if abs >= flipAbs {
			prog, phase = next, abs-flipAbs
		}
		col := prog.Column(phase)
		for ch := 0; ch < prog.Channels(); ch++ {
			f, st := ring.Poll(ch, int64(abs))
			if st != RingOK {
				t.Fatalf("slot %d ch %d: status %v, want RingOK (zero-pause violated)", abs, ch, st)
			}
			if want := prog.At(ch, col); f.Page != want {
				t.Fatalf("slot %d ch %d: page %d, want %d (flip at %d)", abs, ch, f.Page, want, flipAbs)
			}
		}
	}
}

// TestFlipRespectsSpliceBounds measures, client-side off the ring, the
// worst wait of every surviving item for arrivals in the final old cycle,
// and checks the measurement against adaptive.SpliceBounds — then hands
// the same transition to the conformance.TransitionBound oracle. This is
// the per-client deadline-regression guarantee of a live replan.
func TestFlipRespectsSpliceBounds(t *testing.T) {
	for name, edit := range map[string]func(*replan.Engine) (*replan.Delta, error){
		"retire":   func(e *replan.Engine) (*replan.Delta, error) { return e.RetirePage(1) },
		"add":      func(e *replan.Engine) (*replan.Delta, error) { return e.AddPage(2) },
		"channels": func(e *replan.Engine) (*replan.Delta, error) { return e.SetChannels(3) },
	} {
		t.Run(name, func(t *testing.T) {
			old, next, oldIDs, newIDs := flipFixture(t, edit)
			bounds, err := adaptive.SpliceBounds(
				adaptive.Epoch{Program: old, IDs: oldIDs},
				adaptive.Epoch{Program: next, IDs: newIDs},
			)
			if err != nil {
				t.Fatal(err)
			}
			if err := conformance.TransitionBound(old, next, oldIDs, newIDs, bounds); err != nil {
				t.Fatalf("oracle rejects SpliceBounds: %v", err)
			}

			// Air the transition for real. The staged program may have a
			// different channel count (SetChannels replans onto different
			// hardware in the model): skip the on-air measurement then —
			// the oracle above already covered the schedule-level bound.
			if next.Channels() != old.Channels() {
				return
			}
			ring, err := NewBroadcastRing(old.Channels(), DefaultRingSlots)
			if err != nil {
				t.Fatal(err)
			}
			caster, err := NewCaster(old, ring, nil)
			if err != nil {
				t.Fatal(err)
			}
			lOld, lNew := old.Length(), next.Length()
			flipAbs := lOld // staged mid-first-cycle: flips at the second cycle start
			total := flipAbs + 2*lNew
			for abs := 0; abs < total; abs++ {
				if abs == 1 {
					if err := caster.StageProgram(next); err != nil {
						t.Fatal(err)
					}
				}
				caster.CastSlot(abs)
			}
			if ep := caster.Epoch(); ep.Seq != 1 || ep.Base != flipAbs {
				t.Fatalf("epoch %+v, want flip at %d", ep, flipAbs)
			}
			// firstOnAir(id, from) scans the aired frames for page id.
			firstOnAir := func(id core.PageID, from int) int {
				for abs := from; abs < total; abs++ {
					for ch := 0; ch < old.Channels(); ch++ {
						f, st := ring.Poll(ch, int64(abs))
						if st == RingOK && f.Page == id {
							return abs
						}
					}
				}
				return -1
			}
			for i := range oldIDs {
				for u := 0; u < lOld; u++ {
					arrive := u // arrivals across the final old cycle before the flip
					served := firstOnAir(oldIDs[i], arrive)
					if served >= flipAbs || served == -1 {
						// Not aired again before the boundary: the client
						// re-tunes to the new identity after the flip.
						served = firstOnAir(newIDs[i], flipAbs)
					}
					if served == -1 {
						t.Fatalf("item %d never served after arriving at %d", i, arrive)
					}
					if wait := float64(served - arrive); wait > bounds[i]+1e-9 {
						t.Fatalf("item %d arriving at slot %d waited %.0f slots > bound %.2f",
							i, arrive, wait, bounds[i])
					}
				}
			}
		})
	}
}

// TestStageProgramValidation pins the staging contract.
func TestStageProgramValidation(t *testing.T) {
	old, _, _, _ := flipFixture(t, func(e *replan.Engine) (*replan.Delta, error) {
		return e.AddPage(0)
	})
	ring, err := NewBroadcastRing(old.Channels(), 64)
	if err != nil {
		t.Fatal(err)
	}
	caster, err := NewCaster(old, ring, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := caster.StageProgram(nil); err == nil {
		t.Error("nil staged program accepted")
	}
	gs, err := core.Geometric(2, 2, []int{3})
	if err != nil {
		t.Fatal(err)
	}
	wrong, err := core.NewProgram(gs, old.Channels()+1, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := caster.StageProgram(wrong); err == nil {
		t.Error("channel-count mismatch accepted")
	}
	if ep := caster.Epoch(); ep.Seq != 0 || ep.Program != old {
		t.Errorf("failed staging disturbed the epoch: %+v", ep)
	}
}
