//go:build !(linux && (amd64 || arm64))

package netcast

import "net"

// destSys is empty off Linux: the portable fan-out path sends straight
// from the *net.UDPAddr list.
type destSys struct{}

func makeDestSys(addrs []*net.UDPAddr) destSys { return destSys{} }

// batcherSys is empty off Linux.
type batcherSys struct{}

func makeBatcherSys(conn *net.UDPConn) batcherSys { return batcherSys{} }

// fanout on non-Linux platforms is the serial per-destination loop; the
// sharded per-channel workers still parallelize across channels.
func (b *Batcher) fanout(frame []byte, ds *DestSet) int {
	return b.serialFanout(frame, ds, 0)
}
