package netcast

import (
	"fmt"
	"sync"
	"testing"

	"tcsa/internal/core"
	"tcsa/internal/susc"
)

// mustProgram builds the minimal SUSC program for gs, for benchmarks
// that cannot take *testing.T.
func mustProgram(tb testing.TB, gs *core.GroupSet) *core.Program {
	tb.Helper()
	prog, err := susc.BuildMinimal(gs)
	if err != nil {
		tb.Fatal(err)
	}
	return prog
}

// ringCaster builds a ring + caster pair over prog.
func ringCaster(t testing.TB, prog *core.Program, slots int, fault FaultInjector) (*BroadcastRing, *Caster) {
	t.Helper()
	ring, err := NewBroadcastRing(prog.Channels(), slots)
	if err != nil {
		t.Fatal(err)
	}
	caster, err := NewCaster(prog, ring, fault)
	if err != nil {
		t.Fatal(err)
	}
	return ring, caster
}

func TestRingValidation(t *testing.T) {
	if _, err := NewBroadcastRing(0, 8); err == nil {
		t.Error("expected error for zero channels")
	}
	ring, err := NewBroadcastRing(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := ring.Slots(); got != DefaultRingSlots {
		t.Errorf("default slots = %d, want %d", got, DefaultRingSlots)
	}
	ring, err = NewBroadcastRing(1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if got := ring.Slots(); got != 8 {
		t.Errorf("slots rounded to %d, want 8", got)
	}
}

func TestCasterValidation(t *testing.T) {
	prog := testProgram(t)
	ring, err := NewBroadcastRing(prog.Channels()+1, 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewCaster(nil, ring, nil); err == nil {
		t.Error("expected error for nil program")
	}
	if _, err := NewCaster(prog, nil, nil); err == nil {
		t.Error("expected error for nil transport")
	}
	if _, err := NewCaster(prog, ring, nil); err == nil {
		t.Error("expected error for channel count mismatch")
	}
}

// TestRingPollMatchesProgram pins the happy path: every polled frame
// carries exactly the page the program schedules at that (channel, slot).
func TestRingPollMatchesProgram(t *testing.T) {
	prog := testProgram(t)
	ring, caster := ringCaster(t, prog, 16, nil)

	if _, st := ring.Poll(0, 0); st != RingPending {
		t.Fatalf("pre-air poll = %v, want RingPending", st)
	}
	const slots = 12
	for abs := 0; abs < slots; abs++ {
		caster.CastSlot(abs)
	}
	for ch := 0; ch < prog.Channels(); ch++ {
		if got := ring.Head(ch); got != slots {
			t.Fatalf("Head(%d) = %d, want %d", ch, got, slots)
		}
		for abs := int64(0); abs < slots; abs++ {
			f, st := ring.Poll(ch, abs)
			if st != RingOK {
				t.Fatalf("Poll(%d, %d) = %v, want RingOK", ch, abs, st)
			}
			want := prog.At(ch, prog.Column(int(abs)))
			if f.Page != want || f.Channel != ch || f.Slot != uint32(abs) {
				t.Fatalf("Poll(%d, %d) = %+v, want page %d", ch, abs, f, want)
			}
		}
		if _, st := ring.Poll(ch, slots); st != RingPending {
			t.Fatalf("future poll = %v, want RingPending", st)
		}
	}
}

// TestRingLapDetection pins that a reader further behind than the ring
// length gets a definite RingLost, never a stale or torn frame.
func TestRingLapDetection(t *testing.T) {
	prog := testProgram(t)
	ring, caster := ringCaster(t, prog, 8, nil)
	for abs := 0; abs < 20; abs++ {
		caster.CastSlot(abs)
	}
	if _, st := ring.Poll(0, 0); st != RingLost {
		t.Errorf("lapped poll = %v, want RingLost", st)
	}
	if f, st := ring.Poll(0, 19); st != RingOK || f.Slot != 19 {
		t.Errorf("newest poll = %v/%v, want RingOK slot 19", f, st)
	}
}

// slotFault scripts per-(channel, slot) faults for transport tests.
type slotFault struct {
	stall   map[int]bool
	drop    map[[2]int]bool
	corrupt map[[2]int]bool
}

func (f *slotFault) Stalled(abs int) bool     { return f.stall[abs] }
func (f *slotFault) Drop(ch, abs int) bool    { return f.drop[[2]int{ch, abs}] }
func (f *slotFault) Corrupt(ch, abs int) bool { return f.corrupt[[2]int{ch, abs}] }

// TestRingSkipAndCorrupt pins the fault-visible poll statuses: a stalled
// slot and a dropped frame poll as RingSkipped, a corrupted frame as
// RingCorrupt, and the fault counters account for each.
func TestRingSkipAndCorrupt(t *testing.T) {
	prog := testProgram(t)
	fault := &slotFault{
		stall:   map[int]bool{1: true},
		drop:    map[[2]int]bool{{0, 2}: true},
		corrupt: map[[2]int]bool{{1, 3}: true},
	}
	ring, caster := ringCaster(t, prog, 16, fault)
	for abs := 0; abs < 5; abs++ {
		caster.CastSlot(abs)
	}
	for ch := 0; ch < prog.Channels(); ch++ {
		if _, st := ring.Poll(ch, 1); st != RingSkipped {
			t.Errorf("stalled Poll(%d, 1) = %v, want RingSkipped", ch, st)
		}
	}
	if _, st := ring.Poll(0, 2); st != RingSkipped {
		t.Errorf("dropped Poll(0, 2) = %v, want RingSkipped", st)
	}
	if f, st := ring.Poll(1, 2); st != RingOK || f.Slot != 2 {
		t.Errorf("undropped channel Poll(1, 2) = %v/%v, want RingOK", f, st)
	}
	if _, st := ring.Poll(1, 3); st != RingCorrupt {
		t.Errorf("corrupt Poll(1, 3) = %v, want RingCorrupt", st)
	}
	if f, st := ring.Poll(0, 3); st != RingOK || f.Slot != 3 {
		t.Errorf("uncorrupted channel Poll(0, 3) = %v/%v, want RingOK", f, st)
	}
	got := caster.Faults()
	want := FaultStats{StalledSlots: 1, DroppedFrames: 1, CorruptFrames: 1}
	if got != want {
		t.Errorf("Faults() = %+v, want %+v", got, want)
	}
}

// TestRingZeroAllocs is the acceptance-criteria alloc guard: the ring
// transport does zero allocations per slot on the publish side and zero
// per poll on the subscriber side, at any subscriber count — the O(1)
// server-work claim in allocation form.
func TestRingZeroAllocs(t *testing.T) {
	prog := testProgram(t)
	ring, caster := ringCaster(t, prog, 64, nil)
	abs := 0
	if g := testing.AllocsPerRun(1000, func() {
		caster.CastSlot(abs)
		abs++
	}); g != 0 {
		t.Errorf("CastSlot allocates %v per slot, want 0", g)
	}
	newest := int64(abs) - 1
	if g := testing.AllocsPerRun(1000, func() {
		if _, st := ring.Poll(0, newest); st != RingOK {
			t.Fatalf("Poll(0, %d) = %v, want RingOK", newest, st)
		}
	}); g != 0 {
		t.Errorf("Poll allocates %v per call, want 0", g)
	}
}

// TestRingChurnStorm hammers the seqlock from many readers joining and
// leaving mid-broadcast while one writer publishes flat out; under -race
// this doubles as the data-race proof for the atomic-word protocol. Every
// RingOK frame must be internally consistent (the exact slot asked for,
// the program's page for it) — torn reads surface as wrong pages.
func TestRingChurnStorm(t *testing.T) {
	prog := testProgram(t)
	ring, caster := ringCaster(t, prog, 16, nil)
	const slots = 20000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ch := w % prog.Channels()
			var abs int64
			for {
				select {
				case <-stop:
					return
				default:
				}
				head := ring.Head(ch)
				if head == 0 {
					continue
				}
				if abs < head-int64(ring.Slots()) || abs >= head {
					abs = head - 1 // rejoin at the newest slot, like a retuning client
				}
				f, st := ring.Poll(ch, abs)
				switch st {
				case RingOK:
					want := prog.At(ch, prog.Column(int(abs)))
					if f.Slot != uint32(abs) || f.Page != want {
						t.Errorf("torn read: Poll(%d, %d) = %+v, want page %d", ch, abs, f, want)
						return
					}
					abs++
				case RingLost:
					abs = ring.Head(ch) - 1
				case RingCorrupt:
					t.Errorf("corrupt frame without fault injection at (%d, %d)", ch, abs)
					return
				}
			}
		}(w)
	}
	for abs := 0; abs < slots; abs++ {
		caster.CastSlot(abs)
	}
	close(stop)
	wg.Wait()
}

// BenchmarkFanoutRing measures delivered frames per second through the
// ring at three subscriber scales: one CastSlot publish plus one poll per
// subscriber per iteration. Publish cost is flat across the scales — the
// O(1) server-work claim in wall-clock form.
func BenchmarkFanoutRing(b *testing.B) {
	gs := core.MustGroupSet([]core.Group{{Time: 2, Count: 2}, {Time: 4, Count: 3}})
	prog := mustProgram(b, gs)
	for _, subs := range []int{1_000, 100_000, 1_000_000} {
		b.Run(fmt.Sprintf("subs=%d", subs), func(b *testing.B) {
			ring, caster := ringCaster(b, prog, 64, nil)
			b.ReportAllocs()
			b.ResetTimer()
			delivered := 0
			for i := 0; i < b.N; i++ {
				caster.CastSlot(i)
				abs := int64(i)
				for s := 0; s < subs; s++ {
					if _, st := ring.Poll(s%prog.Channels(), abs); st == RingOK {
						delivered++
					}
				}
			}
			b.StopTimer()
			if delivered == 0 {
				b.Fatal("no frames delivered")
			}
			b.ReportMetric(float64(delivered)/b.Elapsed().Seconds(), "frames/s")
		})
	}
}
