package netcast

import (
	"errors"
	"fmt"
	"net"
	"time"

	"tcsa/internal/core"
)

// Tuner is a single-channel UDP receiver. Like the radio tuner of the
// paper's model it hears exactly one channel at a time; Retune moves it.
// A Tuner is not safe for concurrent use.
type Tuner struct {
	conn      *net.UDPConn
	current   *net.UDPAddr
	badFrames int
	buf       [FrameSize + 16]byte
}

// NewTuner opens the client socket (not yet tuned to any channel).
func NewTuner() (*Tuner, error) {
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		return nil, fmt.Errorf("netcast: opening tuner socket: %w", err)
	}
	return &Tuner{conn: conn}, nil
}

// Tune subscribes to the channel at addr, unsubscribing from the previous
// channel first.
func (t *Tuner) Tune(addr *net.UDPAddr) error {
	if addr == nil {
		return errors.New("netcast: nil channel address")
	}
	if err := t.Detach(); err != nil {
		return err
	}
	if _, err := t.conn.WriteToUDP(subscribeMsg, addr); err != nil {
		return fmt.Errorf("netcast: subscribing to %v: %w", addr, err)
	}
	t.current = addr
	return nil
}

// Detach unsubscribes from the current channel, if any.
func (t *Tuner) Detach() error {
	if t.current == nil {
		return nil
	}
	if _, err := t.conn.WriteToUDP(unsubscribeMsg, t.current); err != nil {
		return fmt.Errorf("netcast: unsubscribing from %v: %w", t.current, err)
	}
	t.current = nil
	return nil
}

// ReadFrame blocks for the next frame on the tuned channel, up to timeout.
// Datagrams from other sources and undecodable datagrams are skipped.
func (t *Tuner) ReadFrame(timeout time.Duration) (Frame, error) {
	deadline := time.Now().Add(timeout)
	if err := t.conn.SetReadDeadline(deadline); err != nil {
		return Frame{}, err
	}
	for {
		n, addr, err := t.conn.ReadFromUDP(t.buf[:])
		if err != nil {
			return Frame{}, fmt.Errorf("netcast: reading frame: %w", err)
		}
		if t.current == nil || addr.String() != t.current.String() {
			continue // stale traffic from a previous channel
		}
		f, err := parseFrame(t.buf[:n])
		if err != nil {
			// Undecodable traffic from the tuned channel: a corrupted
			// frame the checksum caught. Count it — it is a real loss.
			t.badFrames++
			continue
		}
		return f, nil
	}
}

// BadFrames reports how many undecodable datagrams from the tuned
// channel this tuner has discarded — corruption the frame checksum
// caught.
func (t *Tuner) BadFrames() int {
	return t.badFrames
}

// WaitForPage reads frames on the already-tuned channel until the wanted
// page arrives (or timeout) and returns the number of frames observed
// while waiting — a direct slot-count measure of the waiting time.
func (t *Tuner) WaitForPage(want core.PageID, timeout time.Duration) (framesSeen int, err error) {
	deadline := time.Now().Add(timeout)
	for {
		remaining := time.Until(deadline)
		if remaining <= 0 {
			return framesSeen, fmt.Errorf("netcast: page %d not received within %v", want, timeout)
		}
		f, err := t.ReadFrame(remaining)
		if err != nil {
			return framesSeen, err
		}
		framesSeen++
		if f.Page == want {
			return framesSeen, nil
		}
	}
}

// LocalAddr returns the tuner's socket address.
func (t *Tuner) LocalAddr() *net.UDPAddr {
	return t.conn.LocalAddr().(*net.UDPAddr)
}

// Close detaches and releases the socket.
func (t *Tuner) Close() error {
	detachErr := t.Detach()
	closeErr := t.conn.Close()
	if detachErr != nil {
		return detachErr
	}
	return closeErr
}
