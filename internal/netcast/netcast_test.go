package netcast

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"

	"tcsa/internal/core"
	"tcsa/internal/susc"
)

// testProgram builds the Section 3.1 example program: 2 channels, cycle 4.
func testProgram(t *testing.T) *core.Program {
	t.Helper()
	gs := core.MustGroupSet([]core.Group{{Time: 2, Count: 2}, {Time: 4, Count: 3}})
	prog, err := susc.BuildMinimal(gs)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

// startServer runs a server in the background and returns it plus a
// cleanup that stops it and waits for Run to return.
func startServer(t *testing.T, prog *core.Program, slot time.Duration) *Server {
	t.Helper()
	srv, err := NewServer(prog, ServerConfig{SlotDuration: slot})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Run(context.Background()) }()
	t.Cleanup(func() {
		srv.Stop()
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("Run returned %v", err)
			}
		case <-time.After(5 * time.Second):
			t.Error("server did not stop")
		}
	})
	return srv
}

func TestFrameRoundTrip(t *testing.T) {
	for _, f := range []Frame{
		{Channel: 0, Slot: 0, Page: 0},
		{Channel: 3, Slot: 12345, Page: 999},
		{Channel: 65535, Slot: 1<<32 - 1, Page: core.None},
	} {
		buf := appendFrame(nil, f)
		if len(buf) != FrameSize {
			t.Fatalf("encoded %d bytes, want %d", len(buf), FrameSize)
		}
		got, err := parseFrame(buf)
		if err != nil {
			t.Fatal(err)
		}
		if got != f {
			t.Errorf("round trip %+v -> %+v", f, got)
		}
	}
}

func TestParseFrameRejects(t *testing.T) {
	good := appendFrame(nil, Frame{Channel: 1, Slot: 2, Page: 3})
	if _, err := parseFrame(good[:10]); !errors.Is(err, ErrBadFrame) {
		t.Error("short frame accepted")
	}
	bad := append([]byte(nil), good...)
	bad[0] = 0xFF // magic
	if _, err := parseFrame(bad); !errors.Is(err, ErrBadFrame) {
		t.Error("bad magic accepted")
	}
	bad = append([]byte(nil), good...)
	bad[2] = 99 // version
	if _, err := parseFrame(bad); !errors.Is(err, ErrBadFrame) {
		t.Error("bad version accepted")
	}
}

func TestNewServerValidation(t *testing.T) {
	if _, err := NewServer(nil, ServerConfig{SlotDuration: time.Millisecond}); err == nil {
		t.Error("nil program accepted")
	}
	if _, err := NewServer(testProgram(t), ServerConfig{}); err == nil {
		t.Error("zero slot duration accepted")
	}
}

func TestSubscribeReceiveCyclic(t *testing.T) {
	prog := testProgram(t)
	srv := startServer(t, prog, time.Millisecond)
	addr, err := srv.ChannelAddr(0)
	if err != nil {
		t.Fatal(err)
	}

	tuner, err := NewTuner()
	if err != nil {
		t.Fatal(err)
	}
	defer tuner.Close()
	if err := tuner.Tune(addr); err != nil {
		t.Fatal(err)
	}

	// Collect a handful of frames and verify they follow the program
	// column sequence on channel 0 (tolerating initial offset and the odd
	// dropped datagram by checking each frame against its slot index).
	for i := 0; i < 12; i++ {
		f, err := tuner.ReadFrame(2 * time.Second)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if f.Channel != 0 {
			t.Fatalf("frame from channel %d", f.Channel)
		}
		want := prog.At(0, int(f.Slot)%prog.Length())
		if f.Page != want {
			t.Fatalf("slot %d carried page %d, want %d", f.Slot, f.Page, want)
		}
	}
}

func TestChannelAddrs(t *testing.T) {
	srv := startServer(t, testProgram(t), time.Millisecond)
	addrs := srv.ChannelAddrs()
	if len(addrs) != 2 {
		t.Fatalf("%d addresses, want 2", len(addrs))
	}
	if addrs[0].Port == addrs[1].Port {
		t.Error("channels share a port")
	}
	if _, err := srv.ChannelAddr(9); err == nil {
		t.Error("bad channel index accepted")
	}
}

func TestUnsubscribeStopsDelivery(t *testing.T) {
	srv := startServer(t, testProgram(t), time.Millisecond)
	addr, _ := srv.ChannelAddr(0)
	tuner, err := NewTuner()
	if err != nil {
		t.Fatal(err)
	}
	defer tuner.Close()
	if err := tuner.Tune(addr); err != nil {
		t.Fatal(err)
	}
	if _, err := tuner.ReadFrame(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	waitForSubs(t, srv, 0, 1)
	if err := tuner.Detach(); err != nil {
		t.Fatal(err)
	}
	waitForSubs(t, srv, 0, 0)
	// Drain in-flight frames; after the server saw UNS, silence.
	for {
		if _, err := tuner.ReadFrame(50 * time.Millisecond); err != nil {
			break
		}
	}
}

func TestRetuneAcrossChannels(t *testing.T) {
	prog := testProgram(t)
	srv := startServer(t, prog, time.Millisecond)
	a0, _ := srv.ChannelAddr(0)
	a1, _ := srv.ChannelAddr(1)

	tuner, err := NewTuner()
	if err != nil {
		t.Fatal(err)
	}
	defer tuner.Close()

	if err := tuner.Tune(a0); err != nil {
		t.Fatal(err)
	}
	f, err := tuner.ReadFrame(2 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if f.Channel != 0 {
		t.Fatalf("frame from channel %d, want 0", f.Channel)
	}

	if err := tuner.Tune(a1); err != nil {
		t.Fatal(err)
	}
	// Frames already in flight from channel 0 are filtered by source
	// address; the next accepted frame must be channel 1.
	f, err = tuner.ReadFrame(2 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if f.Channel != 1 {
		t.Fatalf("frame from channel %d after retune, want 1", f.Channel)
	}
}

// TestWaitForPageWithinExpectedTime: on a valid SUSC program, a tuner
// camping on a page's channel sees it within t_i frames (the paper's
// guarantee, measured over real sockets).
func TestWaitForPageWithinExpectedTime(t *testing.T) {
	prog := testProgram(t)
	srv := startServer(t, prog, time.Millisecond)
	gs := prog.GroupSet()

	// Find page 0's channel (SUSC keeps a page on one channel).
	cols := prog.Appearances(0)
	channel := -1
	for ch := 0; ch < prog.Channels(); ch++ {
		if prog.At(ch, cols[0]) == 0 {
			channel = ch
			break
		}
	}
	addr, _ := srv.ChannelAddr(channel)

	tuner, err := NewTuner()
	if err != nil {
		t.Fatal(err)
	}
	defer tuner.Close()
	if err := tuner.Tune(addr); err != nil {
		t.Fatal(err)
	}
	frames, err := tuner.WaitForPage(0, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// Page 0 has t=2: it recurs every 2 slots on its channel, so even with
	// a worst-case phase the tuner sees it within 2 frames (plus slack for
	// a rare loopback drop).
	if frames > gs.TimeOf(0)+2 {
		t.Errorf("saw %d frames before page 0, expected <= t_i=%d (+slack)", frames, gs.TimeOf(0))
	}
}

func TestTunerValidation(t *testing.T) {
	tuner, err := NewTuner()
	if err != nil {
		t.Fatal(err)
	}
	defer tuner.Close()
	if err := tuner.Tune(nil); err == nil {
		t.Error("nil address accepted")
	}
	if err := tuner.Detach(); err != nil {
		t.Errorf("detached Detach errored: %v", err)
	}
	if tuner.LocalAddr() == nil {
		t.Error("no local address")
	}
}

func TestServerStopIdempotent(t *testing.T) {
	srv, err := NewServer(testProgram(t), ServerConfig{SlotDuration: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Run(context.Background()) }()
	srv.Stop()
	srv.Stop()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("Run = %v, want nil on Stop", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not return")
	}
}

func TestRunHonoursContext(t *testing.T) {
	srv, err := NewServer(testProgram(t), ServerConfig{SlotDuration: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Run(ctx) }()
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("Run = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not return on cancellation")
	}
}

func TestMultipleSubscribersSameChannel(t *testing.T) {
	srv := startServer(t, testProgram(t), time.Millisecond)
	addr, _ := srv.ChannelAddr(1)
	const clients = 3
	tuners := make([]*Tuner, clients)
	for i := range tuners {
		tuner, err := NewTuner()
		if err != nil {
			t.Fatal(err)
		}
		defer tuner.Close()
		if err := tuner.Tune(addr); err != nil {
			t.Fatal(err)
		}
		tuners[i] = tuner
	}
	waitForSubs(t, srv, 1, clients)
	for i, tuner := range tuners {
		if _, err := tuner.ReadFrame(2 * time.Second); err != nil {
			t.Errorf("subscriber %d starved: %v", i, err)
		}
	}
}

// TestSubscribeDuringTransmission churns subscriptions on both channels
// while the server ticks as fast as it can, exercising the copy-on-write
// snapshot swap against concurrent transmits (the -race gate for this
// package). Frames must still flow to a subscriber that stays attached.
func TestSubscribeDuringTransmission(t *testing.T) {
	srv := startServer(t, testProgram(t), 100*time.Microsecond)
	a0, _ := srv.ChannelAddr(0)
	a1, _ := srv.ChannelAddr(1)

	stable, err := NewTuner()
	if err != nil {
		t.Fatal(err)
	}
	defer stable.Close()
	if err := stable.Tune(a0); err != nil {
		t.Fatal(err)
	}
	if _, err := stable.ReadFrame(2 * time.Second); err != nil {
		t.Fatalf("no frames before churn: %v", err)
	}

	const churners = 4
	done := make(chan error, churners)
	for i := 0; i < churners; i++ {
		addr := a0
		if i%2 == 1 {
			addr = a1
		}
		go func(addr *net.UDPAddr) {
			tuner, err := NewTuner()
			if err != nil {
				done <- err
				return
			}
			defer tuner.Close()
			for j := 0; j < 50; j++ {
				if err := tuner.Tune(addr); err != nil {
					done <- err
					return
				}
				if err := tuner.Detach(); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(addr)
	}
	for i := 0; i < churners; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	// The stable subscriber survived the churn and still receives frames.
	for {
		if _, err := stable.ReadFrame(2 * time.Second); err != nil {
			t.Fatalf("stable subscriber starved after churn: %v", err)
		}
		if srv.Subscribers(0) == 1 && srv.Subscribers(1) == 0 {
			break
		}
	}
}

// waitForSubs polls until channel ch has want subscribers (control
// datagrams are asynchronous).
func waitForSubs(t *testing.T, srv *Server, ch, want int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for srv.Subscribers(ch) != want {
		if time.Now().After(deadline) {
			t.Fatalf("channel %d has %d subscribers, want %d", ch, srv.Subscribers(ch), want)
		}
		time.Sleep(time.Millisecond)
	}
}
