package netcast

import (
	"testing"

	"tcsa/internal/core"
)

// FuzzParseFrame: arbitrary datagrams never panic; accepted frames
// round-trip exactly.
func FuzzParseFrame(f *testing.F) {
	f.Add(appendFrame(nil, Frame{Channel: 1, Slot: 42, Page: 7}))
	f.Add(appendFrame(nil, Frame{Channel: 0, Slot: 0, Page: core.None}))
	f.Add([]byte{})
	f.Add([]byte{0x7C, 0x5A, 1, 0})
	f.Add(make([]byte, FrameSize))
	f.Fuzz(func(t *testing.T, data []byte) {
		frame, err := parseFrame(data)
		if err != nil {
			return
		}
		back := appendFrame(nil, frame)
		if len(back) != FrameSize {
			t.Fatalf("re-encoded %d bytes", len(back))
		}
		again, err := parseFrame(back)
		if err != nil {
			t.Fatalf("re-parse failed: %v", err)
		}
		if again != frame {
			t.Fatalf("round trip changed frame: %+v -> %+v", frame, again)
		}
	})
}
