package netcast

import (
	"errors"
	"sync/atomic"
)

// PollStatus classifies the outcome of reading one slot from a
// BroadcastRing.
type PollStatus int

const (
	// RingOK: the slot's frame was read intact.
	RingOK PollStatus = iota
	// RingPending: the server has not aired the slot yet.
	RingPending
	// RingSkipped: the slot aired but this channel transmitted nothing —
	// a stall, an injected drop, or a channel the engine silenced.
	RingSkipped
	// RingCorrupt: a frame was transmitted but fails frame validation
	// (bad checksum): the wire-level corruption the chaos plan injects.
	RingCorrupt
	// RingLost: the slot has already been overwritten — the reader fell
	// more than one ring length behind the writer.
	RingLost
)

// ringCell is one slot's storage. The frame travels as two packed
// big-endian words so readers can snapshot it with plain atomic loads —
// no lock, no copy_out of a byte slice, and no race-detector report,
// because every access is an atomic operation. seq carries the seqlock
// protocol stamped with the absolute slot number:
//
//	2*abs+1  write in progress for slot abs
//	2*abs+2  slot abs stable (readable)
//
// Folding abs into the sequence makes wrap-around detection free: a
// reader asking for slot abs that observes any other stamp knows the
// cell was lapped, with no separate generation counter to maintain.
type ringCell struct {
	seq atomic.Uint64
	w0  atomic.Uint64
	w1  atomic.Uint64
}

// ringChannel is one channel's ring: a single-writer circular buffer of
// cells plus the published watermark. head is the count of slots aired
// (head-1 is the newest readable absolute slot); it is stored after the
// cell so a reader that sees head > abs is guaranteed to find cell abs
// either stable or already lapped — never mid-write by the same slot.
type ringChannel struct {
	head  atomic.Int64
	cells []ringCell
}

// BroadcastRing is the in-process Transport: a per-channel single-writer
// ring of encoded frames. The writer does O(1) work per (channel, slot)
// no matter how many subscribers exist — subscribers pull, lock-free,
// with zero allocations per poll — so one server saturates millions of
// in-process clients.
//
// The seqlock protocol (odd stamp while writing, even stamp when stable,
// verified again after the payload words are loaded) means a reader
// either gets the exact frame for the slot it asked for, or a definite
// RingLost — torn reads are impossible because the two payload words are
// only trusted when the same even stamp brackets both loads.
type BroadcastRing struct {
	chans []ringChannel
	mask  int64
}

// DefaultRingSlots is the per-channel ring length used when a caller
// passes slots <= 0: enough slack for a reader to fall a full kilocycle
// of slots behind before losing data.
const DefaultRingSlots = 1024

// NewBroadcastRing builds a ring transport with the given channel count.
// slots (rounded up to a power of two; DefaultRingSlots if <= 0) is how
// many consecutive slots stay readable per channel.
func NewBroadcastRing(channels, slots int) (*BroadcastRing, error) {
	if channels <= 0 {
		return nil, errors.New("netcast: ring needs at least one channel")
	}
	if slots <= 0 {
		slots = DefaultRingSlots
	}
	n := 1
	for n < slots {
		n <<= 1
	}
	r := &BroadcastRing{
		chans: make([]ringChannel, channels),
		mask:  int64(n) - 1,
	}
	for ch := range r.chans {
		r.chans[ch].cells = make([]ringCell, n)
	}
	return r, nil
}

// Channels implements Transport.
func (r *BroadcastRing) Channels() int { return len(r.chans) }

// NeedsFrame implements Transport. The ring always wants the frame:
// publishing costs O(1) regardless of subscribers, and a slot written
// now is readable by a subscriber that arrives later.
func (r *BroadcastRing) NeedsFrame(ch int) bool { return true }

// Slots reports the per-channel ring capacity.
func (r *BroadcastRing) Slots() int { return int(r.mask) + 1 }

// Publish implements Transport: single writer per channel.
func (r *BroadcastRing) Publish(ch, abs int, frame []byte) {
	rc := &r.chans[ch]
	cell := &rc.cells[int64(abs)&r.mask]
	w0, w1 := packFrameWords(frame)
	cell.seq.Store(2*uint64(abs) + 1)
	cell.w0.Store(w0)
	cell.w1.Store(w1)
	cell.seq.Store(2*uint64(abs) + 2)
	rc.head.Store(int64(abs) + 1)
}

// Skip implements Transport: the slot aired with nothing on this channel.
// The cell keeps whatever older slot it held (its stamp exposes the lap),
// and only the watermark moves — readers polling this slot see the head
// pass them while the cell still carries a different slot's stamp, which
// Poll reports as RingSkipped rather than RingLost.
func (r *BroadcastRing) Skip(ch, abs int) {
	r.chans[ch].head.Store(int64(abs) + 1)
}

// Close implements Transport. The ring holds no OS resources and spawns
// no goroutines; readers may keep polling historical slots after Close.
func (r *BroadcastRing) Close() error { return nil }

// Head reports how many slots channel ch has aired (the next absolute
// slot to be published).
func (r *BroadcastRing) Head(ch int) int64 { return r.chans[ch].head.Load() }

// Poll reads absolute slot abs from channel ch. It never blocks and
// never allocates. RingOK returns the decoded frame; every other status
// returns a zero Frame.
func (r *BroadcastRing) Poll(ch int, abs int64) (Frame, PollStatus) {
	rc := &r.chans[ch]
	if rc.head.Load() <= abs {
		return Frame{}, RingPending
	}
	cell := &rc.cells[abs&r.mask]
	want := 2*uint64(abs) + 2
	seq := cell.seq.Load()
	if seq != want {
		if seq > want {
			// The cell already carries a newer slot: lapped.
			return Frame{}, RingLost
		}
		// The slot aired (head moved past it) but nothing was written
		// here for it: the engine skipped this channel at this slot.
		return Frame{}, RingSkipped
	}
	w0 := cell.w0.Load()
	w1 := cell.w1.Load()
	if cell.seq.Load() != want {
		// A writer lapped us between the stamp check and the word loads:
		// the words may be torn, discard them.
		return Frame{}, RingLost
	}
	f, ok := frameFromWords(w0, w1)
	if !ok {
		return Frame{}, RingCorrupt
	}
	return f, RingOK
}
