package netcast

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"tcsa/internal/core"
)

// udpJob is one encoded frame handed to a channel's transmit worker. The
// frame travels by value so Publish never allocates and never shares the
// engine's reusable encode buffer across goroutines.
type udpJob struct {
	frame [FrameSize]byte
}

// udpJobQueue is the per-channel mailbox depth. Transmission is
// best-effort like the air: if a worker falls this many slots behind, new
// frames are dropped (and counted in Overruns) rather than stalling the
// slot clock.
const udpJobQueue = 1024

// UDPTransport is the socket-backed Transport: one UDP socket per
// broadcast channel, one transmit worker per channel fanning each frame
// out to that channel's subscribers from a copy-on-write snapshot. The
// per-subscriber send loop is batched through a Batcher (sendmmsg on
// Linux, a portable serial loop elsewhere), so a slot costs
// O(subscribers / batch) syscalls per channel, issued in parallel across
// channels — against O(subscribers) sequential syscalls for the whole
// slot in the pre-Transport server.
//
// Subscription control ("SUB"/"UNS" datagrams on the channel socket) is
// owned by the transport; Server delegates its subscriber accessors here.
type UDPTransport struct {
	conns    []*net.UDPConn
	batchers []*Batcher

	mu   sync.Mutex
	subs []map[string]*net.UDPAddr

	// dests[ch] is the copy-on-write fan-out snapshot of subs[ch]: the
	// control reader swaps in a freshly built DestSet on every SUB/UNS
	// and nobody mutates a published set, so workers read it with one
	// atomic load and no lock.
	dests []atomic.Pointer[DestSet]

	jobs     []chan udpJob
	overruns atomic.Int64

	closeOnce sync.Once
	done      chan struct{}
	wg        sync.WaitGroup
}

// NewUDPTransport binds one socket per channel on host (default
// "127.0.0.1") and starts the control readers and transmit workers.
// Close releases everything.
func NewUDPTransport(channels int, host string) (*UDPTransport, error) {
	if channels <= 0 {
		return nil, errors.New("netcast: UDP transport needs at least one channel")
	}
	if host == "" {
		host = "127.0.0.1"
	}
	t := &UDPTransport{
		subs:  make([]map[string]*net.UDPAddr, channels),
		dests: make([]atomic.Pointer[DestSet], channels),
		jobs:  make([]chan udpJob, channels),
		done:  make(chan struct{}),
	}
	for ch := 0; ch < channels; ch++ {
		conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.ParseIP(host)})
		if err != nil {
			t.closeConns()
			return nil, fmt.Errorf("netcast: binding channel %d: %w", ch, err)
		}
		t.conns = append(t.conns, conn)
		t.batchers = append(t.batchers, NewBatcher(conn))
		t.subs[ch] = make(map[string]*net.UDPAddr)
		t.jobs[ch] = make(chan udpJob, udpJobQueue)
	}
	for ch := 0; ch < channels; ch++ {
		ch := ch
		t.wg.Add(2)
		go func() {
			defer t.wg.Done()
			t.readControl(ch)
		}()
		go func() {
			defer t.wg.Done()
			t.transmitWorker(ch)
		}()
	}
	return t, nil
}

// Channels implements Transport.
func (t *UDPTransport) Channels() int { return len(t.conns) }

// NeedsFrame implements Transport: a channel nobody subscribes to has no
// datagrams to send, so the engine can skip its encode and fault work.
func (t *UDPTransport) NeedsFrame(ch int) bool {
	ds := t.dests[ch].Load()
	return ds != nil && len(ds.addrs) > 0
}

// Publish implements Transport: hand the frame to channel ch's transmit
// worker. Never blocks — a full mailbox drops the frame (best-effort,
// like the air) and counts it in Overruns.
func (t *UDPTransport) Publish(ch, abs int, frame []byte) {
	var j udpJob
	copy(j.frame[:], frame)
	select {
	case t.jobs[ch] <- j:
	default:
		t.overruns.Add(1)
	}
}

// Skip implements Transport: an unaired channel-slot sends nothing, and
// on UDP a missing datagram needs no marker.
func (t *UDPTransport) Skip(ch, abs int) {}

// Overruns reports how many frames were dropped because a channel's
// transmit worker had fallen a full mailbox behind the slot clock.
func (t *UDPTransport) Overruns() int64 { return t.overruns.Load() }

// Close implements Transport: stops the workers, closes the sockets
// (unblocking the control readers) and waits for both to exit. Safe to
// call more than once.
func (t *UDPTransport) Close() error {
	t.closeOnce.Do(func() {
		close(t.done)
		t.closeConns()
		t.wg.Wait()
	})
	return nil
}

func (t *UDPTransport) closeConns() {
	for _, c := range t.conns {
		if c != nil {
			_ = c.Close()
		}
	}
}

// ChannelAddr returns the UDP address of broadcast channel ch.
func (t *UDPTransport) ChannelAddr(ch int) (*net.UDPAddr, error) {
	if ch < 0 || ch >= len(t.conns) {
		return nil, fmt.Errorf("%w: channel %d", core.ErrSlotRange, ch)
	}
	return t.conns[ch].LocalAddr().(*net.UDPAddr), nil
}

// ChannelAddrs returns all channel addresses in channel order.
func (t *UDPTransport) ChannelAddrs() []*net.UDPAddr {
	addrs := make([]*net.UDPAddr, len(t.conns))
	for ch := range t.conns {
		addrs[ch] = t.conns[ch].LocalAddr().(*net.UDPAddr)
	}
	return addrs
}

// Subscribers returns the current subscriber count of channel ch.
func (t *UDPTransport) Subscribers(ch int) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	if ch < 0 || ch >= len(t.subs) {
		return 0
	}
	return len(t.subs[ch])
}

// Provision bulk-registers addrs as subscribers of channel ch without
// control-plane round-trips — the path load generators and benchmarks use
// to stand up large populations instantly. Entries get synthetic keys, so
// the same address may be provisioned repeatedly (each copy receives its
// own datagram); datagram delivery is indistinguishable from the same
// subscriptions arriving as SUB control messages.
func (t *UDPTransport) Provision(ch int, addrs []*net.UDPAddr) error {
	if ch < 0 || ch >= len(t.subs) {
		return fmt.Errorf("%w: channel %d", core.ErrSlotRange, ch)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	base := len(t.subs[ch])
	for i, a := range addrs {
		t.subs[ch][fmt.Sprintf("%d/%s", base+i, a)] = a
	}
	t.resnap(ch)
	return nil
}

// transmitWorker drains channel ch's mailbox, fanning each frame out to
// the channel's current subscriber snapshot, until Close.
func (t *UDPTransport) transmitWorker(ch int) {
	for {
		select {
		case <-t.done:
			return
		case j := <-t.jobs[ch]:
			if ds := t.dests[ch].Load(); ds != nil {
				t.batchers[ch].Fanout(j.frame[:], ds)
			}
		}
	}
}

// readControl consumes SUB/UNS datagrams on channel ch's socket until it
// is closed.
func (t *UDPTransport) readControl(ch int) {
	buf := make([]byte, 64)
	for {
		n, addr, err := t.conns[ch].ReadFromUDP(buf)
		if err != nil {
			return // socket closed by Close
		}
		switch string(buf[:n]) {
		case string(subscribeMsg):
			t.mu.Lock()
			t.subs[ch][addr.String()] = addr
			t.resnap(ch)
			t.mu.Unlock()
		case string(unsubscribeMsg):
			t.mu.Lock()
			delete(t.subs[ch], addr.String())
			t.resnap(ch)
			t.mu.Unlock()
		default:
			// Unknown control traffic is ignored; the air interface has no
			// back-channel errors either.
		}
	}
}

// resnap publishes a fresh immutable DestSet for subs[ch]. Callers hold mu.
func (t *UDPTransport) resnap(ch int) {
	addrs := make([]*net.UDPAddr, 0, len(t.subs[ch]))
	for _, a := range t.subs[ch] {
		addrs = append(addrs, a)
	}
	t.dests[ch].Store(NewDestSet(addrs))
}

// DestSet is an immutable fan-out target list with the platform-specific
// socket-address representation precomputed per destination, so the hot
// send path performs no per-send conversions.
type DestSet struct {
	addrs []*net.UDPAddr
	sys   destSys
}

// NewDestSet precomputes a fan-out set over addrs. The slice is retained;
// callers must not mutate it afterwards.
func NewDestSet(addrs []*net.UDPAddr) *DestSet {
	return &DestSet{addrs: addrs, sys: makeDestSys(addrs)}
}

// Len reports the number of destinations.
func (d *DestSet) Len() int { return len(d.addrs) }

// Batcher sends one frame to many destinations from a single socket with
// as few syscalls as the platform allows: sendmmsg batches on Linux, a
// plain WriteToUDP loop elsewhere (and as the fallback for destinations
// sendmmsg cannot express). A Batcher is bound to one socket and is not
// safe for concurrent use — each transmit worker owns its own.
type Batcher struct {
	conn *net.UDPConn
	sys  batcherSys
}

// NewBatcher binds a Batcher to conn.
func NewBatcher(conn *net.UDPConn) *Batcher {
	b := &Batcher{conn: conn}
	b.sys = makeBatcherSys(conn)
	return b
}

// Fanout sends frame to every destination in ds, returning how many
// sends were handed to the kernel. Best-effort: failed sends are lost
// frames, exactly like the air.
func (b *Batcher) Fanout(frame []byte, ds *DestSet) int {
	return b.fanout(frame, ds)
}

// serialFanout is the portable one-syscall-per-destination path, also
// used when the batched path cannot express a destination set.
func (b *Batcher) serialFanout(frame []byte, ds *DestSet, from int) int {
	sent := 0
	for _, addr := range ds.addrs[from:] {
		if _, err := b.conn.WriteToUDP(frame, addr); err == nil {
			sent++
		}
	}
	return sent
}
