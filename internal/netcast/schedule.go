package netcast

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"tcsa/internal/core"
)

// ScheduleServer publishes the broadcast program (and the channel socket
// addresses) over TCP, so clients can become schedule-aware: fetch the
// program once, compute their page's next appearance locally, tune to the
// right channel just in time and doze meanwhile — the software analogue of
// the paper's published-schedule assumption.
//
// Wire format: a single JSON document per connection, then close.
type ScheduleServer struct {
	listener net.Listener
	payload  []byte

	mu     sync.Mutex
	closed bool
	wg     sync.WaitGroup
}

// scheduleDoc is the published document.
type scheduleDoc struct {
	Program  json.RawMessage `json:"program"`
	Channels []string        `json:"channels"` // UDP address per channel
	SlotMS   float64         `json:"slot_ms"`
}

// Schedule is the client-side view of a fetched schedule.
type Schedule struct {
	Program      *core.Program
	ChannelAddrs []*net.UDPAddr
	SlotDuration time.Duration
}

// ServeSchedule starts a TCP listener on addr (e.g. "127.0.0.1:0")
// publishing srv's program and channel addresses. Close the returned
// server to stop.
func ServeSchedule(addr string, srv *Server) (*ScheduleServer, error) {
	if srv == nil {
		return nil, errors.New("netcast: nil broadcast server")
	}
	progJSON, err := json.Marshal(srv.prog)
	if err != nil {
		return nil, fmt.Errorf("netcast: encoding program: %w", err)
	}
	doc := scheduleDoc{
		Program: progJSON,
		SlotMS:  float64(srv.slotDur) / float64(time.Millisecond),
	}
	for _, a := range srv.ChannelAddrs() {
		doc.Channels = append(doc.Channels, a.String())
	}
	payload, err := json.Marshal(doc)
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("netcast: listening on %q: %w", addr, err)
	}
	ss := &ScheduleServer{listener: ln, payload: payload}
	ss.wg.Add(1)
	go func() {
		defer ss.wg.Done()
		ss.acceptLoop()
	}()
	return ss, nil
}

// Addr returns the TCP address clients fetch from.
func (ss *ScheduleServer) Addr() net.Addr { return ss.listener.Addr() }

// Close stops the listener and waits for in-flight responses.
func (ss *ScheduleServer) Close() error {
	ss.mu.Lock()
	ss.closed = true
	ss.mu.Unlock()
	err := ss.listener.Close()
	ss.wg.Wait()
	return err
}

func (ss *ScheduleServer) acceptLoop() {
	for {
		conn, err := ss.listener.Accept()
		if err != nil {
			return // closed
		}
		ss.wg.Add(1)
		go func() {
			defer ss.wg.Done()
			defer conn.Close()
			_ = conn.SetWriteDeadline(time.Now().Add(5 * time.Second))
			_, _ = conn.Write(ss.payload)
		}()
	}
}

// FetchSchedule downloads and decodes the published schedule.
func FetchSchedule(addr string, timeout time.Duration) (*Schedule, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("netcast: dialing schedule server: %w", err)
	}
	defer conn.Close()
	_ = conn.SetReadDeadline(time.Now().Add(timeout))
	data, err := io.ReadAll(io.LimitReader(conn, 64<<20))
	if err != nil {
		return nil, fmt.Errorf("netcast: reading schedule: %w", err)
	}
	var doc scheduleDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("netcast: decoding schedule: %w", err)
	}
	var prog core.Program
	if err := json.Unmarshal(doc.Program, &prog); err != nil {
		return nil, fmt.Errorf("netcast: decoding program: %w", err)
	}
	sched := &Schedule{
		Program:      &prog,
		SlotDuration: time.Duration(doc.SlotMS * float64(time.Millisecond)),
	}
	if len(doc.Channels) != prog.Channels() {
		return nil, fmt.Errorf("%w: %d channel addresses for %d channels",
			ErrBadFrame, len(doc.Channels), prog.Channels())
	}
	for _, s := range doc.Channels {
		udp, err := net.ResolveUDPAddr("udp", s)
		if err != nil {
			return nil, fmt.Errorf("netcast: channel address %q: %w", s, err)
		}
		sched.ChannelAddrs = append(sched.ChannelAddrs, udp)
	}
	return sched, nil
}

// Locate returns the channel and column of the next appearance of page at
// or after the given absolute slot, using the fetched program. ok is false
// when the page is never broadcast.
func (s *Schedule) Locate(page core.PageID, fromSlot int) (channel, slot int, ok bool) {
	L := s.Program.Length()
	for step := 0; step < L; step++ {
		abs := fromSlot + step
		col := s.Program.Column(abs)
		for ch := 0; ch < s.Program.Channels(); ch++ {
			if s.Program.At(ch, col) == page {
				return ch, abs, true
			}
		}
	}
	return 0, 0, false
}
