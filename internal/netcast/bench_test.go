package netcast

import (
	"testing"

	"tcsa/internal/core"
)

// BenchmarkFrameCodec measures the UDP frame encode+decode round trip.
func BenchmarkFrameCodec(b *testing.B) {
	b.ReportAllocs()
	var buf []byte
	for i := 0; i < b.N; i++ {
		buf = appendFrame(buf[:0], Frame{Channel: i % 64, Slot: uint32(i), Page: core.PageID(i % 1000)})
		if _, err := parseFrame(buf); err != nil {
			b.Fatal(err)
		}
	}
}
