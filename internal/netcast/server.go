package netcast

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"tcsa/internal/core"
)

// FaultInjector decides, per absolute slot, whether the server's
// transmission is impaired. The contract matches chaos.Plan so a
// deterministic fault schedule drives the real broadcaster with no
// adapter: Stalled silences every channel for the slot, Drop suppresses
// one channel's frame, Corrupt flips a payload byte after the checksum
// is computed so tuners detect and discard the frame.
type FaultInjector interface {
	Stalled(slot int) bool
	Drop(channel, slot int) bool
	Corrupt(channel, slot int) bool
}

// ServerConfig tunes a Server.
type ServerConfig struct {
	// SlotDuration is the real-time length of one broadcast slot; must be
	// positive. Tests use ~1ms; a production deployment would match the
	// page transmission time of its radio link.
	SlotDuration time.Duration
	// Host is the interface to bind, default "127.0.0.1". One UDP socket is
	// opened per broadcast channel on an ephemeral port. Ignored when
	// Transport is set.
	Host string
	// Fault, when non-nil, injects transmission faults per slot. The slot
	// counter still advances during a stall: broadcast time is locked to
	// the wall clock, a stalled server simply wastes its slots.
	Fault FaultInjector
	// Transport, when non-nil, replaces the default UDP transport — e.g. a
	// BroadcastRing for in-process load generation. The server takes
	// ownership: Stop closes it. Channel count must match the program.
	Transport Transport
}

// Server replays a broadcast program in real time: one tick per slot,
// each tick encoded once per channel by a Caster and fanned out through
// a pluggable Transport (UDP sockets by default, an in-process
// BroadcastRing for load generation).
type Server struct {
	prog    *core.Program
	slotDur time.Duration
	caster  *Caster
	tr      Transport
	udp     *UDPTransport // non-nil iff tr is the default UDP transport

	mu   sync.Mutex
	slot uint32

	stopOnce sync.Once
	stopped  chan struct{}
}

// NewServer builds the transport (binding the per-channel sockets unless
// cfg.Transport overrides it); call Run to start transmitting.
func NewServer(prog *core.Program, cfg ServerConfig) (*Server, error) {
	if prog == nil {
		return nil, errors.New("netcast: nil program")
	}
	if cfg.SlotDuration <= 0 {
		return nil, fmt.Errorf("netcast: slot duration %v", cfg.SlotDuration)
	}
	s := &Server{
		prog:    prog,
		slotDur: cfg.SlotDuration,
		tr:      cfg.Transport,
		stopped: make(chan struct{}),
	}
	if s.tr == nil {
		udp, err := NewUDPTransport(prog.Channels(), cfg.Host)
		if err != nil {
			return nil, err
		}
		s.tr = udp
		s.udp = udp
	}
	caster, err := NewCaster(prog, s.tr, cfg.Fault)
	if err != nil {
		if s.udp != nil {
			_ = s.udp.Close()
		}
		return nil, err
	}
	s.caster = caster
	return s, nil
}

// errNotUDP reports a socket-only accessor used with a custom transport.
var errNotUDP = errors.New("netcast: server is not using the UDP transport")

// ChannelAddr returns the UDP address of broadcast channel ch.
func (s *Server) ChannelAddr(ch int) (*net.UDPAddr, error) {
	if s.udp == nil {
		return nil, errNotUDP
	}
	return s.udp.ChannelAddr(ch)
}

// ChannelAddrs returns all channel addresses in channel order, or nil if
// the server is not using the UDP transport.
func (s *Server) ChannelAddrs() []*net.UDPAddr {
	if s.udp == nil {
		return nil
	}
	return s.udp.ChannelAddrs()
}

// Subscribers returns the current subscriber count of channel ch (zero
// for non-UDP transports, which do not track subscribers).
func (s *Server) Subscribers(ch int) int {
	if s.udp == nil {
		return 0
	}
	return s.udp.Subscribers(ch)
}

// Slot returns the next slot index to transmit.
func (s *Server) Slot() uint32 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.slot
}

// Faults reports the faults injected so far. Safe to call concurrently
// with Run.
func (s *Server) Faults() FaultStats {
	return s.caster.Faults()
}

// Transport returns the transport the server broadcasts through.
func (s *Server) Transport() Transport { return s.tr }

// StageProgram stages the next epoch's program for a zero-pause live
// transition: the running program keeps airing and the tick loop flips at
// the next slot that starts one of its cycles. Safe to call while Run is
// transmitting; pass an immutable snapshot (replan.Engine.Snapshot).
func (s *Server) StageProgram(next *core.Program) error {
	return s.caster.StageProgram(next)
}

// Epoch reports the program epoch currently on air.
func (s *Server) Epoch() EpochInfo { return s.caster.Epoch() }

// Run transmits until ctx is cancelled or Stop is called; the transport
// owns its own reader/worker goroutines, Run owns only the slot clock.
func (s *Server) Run(ctx context.Context) error {
	ticker := time.NewTicker(s.slotDur)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			s.Stop()
			return ctx.Err()
		case <-s.stopped:
			return nil
		case <-ticker.C:
			s.transmit()
		}
	}
}

// Stop ends transmission, closes the transport and unblocks Run. Safe to
// call more than once and concurrently with Run.
func (s *Server) Stop() {
	s.stopOnce.Do(func() {
		close(s.stopped)
		_ = s.tr.Close()
	})
}

// transmit claims the next slot under the lock and hands it to the slot
// engine; all fan-out happens behind the Transport.
func (s *Server) transmit() {
	s.mu.Lock()
	slot := s.slot
	s.slot++
	s.mu.Unlock()
	s.caster.CastSlot(int(slot))
}
