package netcast

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"tcsa/internal/core"
)

// FaultInjector decides, per absolute slot, whether the server's
// transmission is impaired. The contract matches chaos.Plan so a
// deterministic fault schedule drives the real UDP broadcaster with no
// adapter: Stalled silences every channel for the slot, Drop suppresses
// one channel's frame, Corrupt flips a payload byte after the checksum
// is computed so tuners detect and discard the frame.
type FaultInjector interface {
	Stalled(slot int) bool
	Drop(channel, slot int) bool
	Corrupt(channel, slot int) bool
}

// ServerConfig tunes a Server.
type ServerConfig struct {
	// SlotDuration is the real-time length of one broadcast slot; must be
	// positive. Tests use ~1ms; a production deployment would match the
	// page transmission time of its radio link.
	SlotDuration time.Duration
	// Host is the interface to bind, default "127.0.0.1". One UDP socket is
	// opened per broadcast channel on an ephemeral port.
	Host string
	// Fault, when non-nil, injects transmission faults per slot. The slot
	// counter still advances during a stall: broadcast time is locked to
	// the wall clock, a stalled server simply wastes its slots.
	Fault FaultInjector
}

// FaultStats counts the faults a Server has injected so far.
type FaultStats struct {
	StalledSlots  int64 // whole slots silenced across all channels
	DroppedFrames int64 // per-channel frames suppressed
	CorruptFrames int64 // per-channel frames sent with a flipped byte
}

// Server replays a broadcast program over UDP, one socket per channel, one
// frame per slot to every subscriber of that channel.
type Server struct {
	prog    *core.Program
	slotDur time.Duration
	conns   []*net.UDPConn
	fault   FaultInjector

	stalledSlots  atomic.Int64
	droppedFrames atomic.Int64
	corruptFrames atomic.Int64

	mu   sync.Mutex
	subs []map[string]*net.UDPAddr // per channel, keyed by addr string
	// snaps[ch] is a copy-on-write snapshot of subs[ch]: readControl swaps
	// in a freshly built slice on every SUB/UNS and nobody mutates a
	// published snapshot, so transmit can fan frames out from it outside
	// the lock instead of rebuilding the target list every tick.
	snaps [][]*net.UDPAddr
	slot  uint32

	// Scratch reused across ticks by transmit, which only ever runs on the
	// Run tick goroutine: the per-channel snapshot headers and the frame
	// encode buffer.
	targets [][]*net.UDPAddr
	frame   []byte

	stopOnce sync.Once
	stopped  chan struct{}
	wg       sync.WaitGroup
}

// NewServer binds the per-channel sockets; call Run to start transmitting.
func NewServer(prog *core.Program, cfg ServerConfig) (*Server, error) {
	if prog == nil {
		return nil, errors.New("netcast: nil program")
	}
	if cfg.SlotDuration <= 0 {
		return nil, fmt.Errorf("netcast: slot duration %v", cfg.SlotDuration)
	}
	host := cfg.Host
	if host == "" {
		host = "127.0.0.1"
	}
	s := &Server{
		prog:    prog,
		slotDur: cfg.SlotDuration,
		fault:   cfg.Fault,
		subs:    make([]map[string]*net.UDPAddr, prog.Channels()),
		snaps:   make([][]*net.UDPAddr, prog.Channels()),
		targets: make([][]*net.UDPAddr, prog.Channels()),
		frame:   make([]byte, 0, FrameSize),
		stopped: make(chan struct{}),
	}
	for ch := 0; ch < prog.Channels(); ch++ {
		conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.ParseIP(host)})
		if err != nil {
			s.closeConns()
			return nil, fmt.Errorf("netcast: binding channel %d: %w", ch, err)
		}
		s.conns = append(s.conns, conn)
		s.subs[ch] = make(map[string]*net.UDPAddr)
	}
	return s, nil
}

// ChannelAddr returns the UDP address of broadcast channel ch.
func (s *Server) ChannelAddr(ch int) (*net.UDPAddr, error) {
	if ch < 0 || ch >= len(s.conns) {
		return nil, fmt.Errorf("%w: channel %d", core.ErrSlotRange, ch)
	}
	return s.conns[ch].LocalAddr().(*net.UDPAddr), nil
}

// ChannelAddrs returns all channel addresses in channel order.
func (s *Server) ChannelAddrs() []*net.UDPAddr {
	addrs := make([]*net.UDPAddr, len(s.conns))
	for ch := range s.conns {
		addrs[ch] = s.conns[ch].LocalAddr().(*net.UDPAddr)
	}
	return addrs
}

// Subscribers returns the current subscriber count of channel ch.
func (s *Server) Subscribers(ch int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if ch < 0 || ch >= len(s.subs) {
		return 0
	}
	return len(s.subs[ch])
}

// Slot returns the next slot index to transmit.
func (s *Server) Slot() uint32 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.slot
}

// Faults reports the faults injected so far. Safe to call concurrently
// with Run.
func (s *Server) Faults() FaultStats {
	return FaultStats{
		StalledSlots:  s.stalledSlots.Load(),
		DroppedFrames: s.droppedFrames.Load(),
		CorruptFrames: s.corruptFrames.Load(),
	}
}

// Run transmits until ctx is cancelled or Stop is called. It owns the
// control-message readers and the tick loop and returns after both have
// shut down cleanly.
func (s *Server) Run(ctx context.Context) error {
	for ch := range s.conns {
		ch := ch
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.readControl(ch)
		}()
	}

	ticker := time.NewTicker(s.slotDur)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			s.Stop()
			s.wg.Wait()
			return ctx.Err()
		case <-s.stopped:
			s.wg.Wait()
			return nil
		case <-ticker.C:
			s.transmit()
		}
	}
}

// Stop ends transmission and unblocks Run. Safe to call more than once and
// concurrently with Run.
func (s *Server) Stop() {
	s.stopOnce.Do(func() {
		close(s.stopped)
		s.closeConns() // unblocks the control readers
	})
}

func (s *Server) closeConns() {
	for _, c := range s.conns {
		if c != nil {
			_ = c.Close()
		}
	}
}

// readControl consumes SUB/UNS datagrams on channel ch's socket until it
// is closed.
func (s *Server) readControl(ch int) {
	buf := make([]byte, 64)
	for {
		n, addr, err := s.conns[ch].ReadFromUDP(buf)
		if err != nil {
			return // socket closed by Stop
		}
		switch string(buf[:n]) {
		case string(subscribeMsg):
			s.mu.Lock()
			s.subs[ch][addr.String()] = addr
			s.resnap(ch)
			s.mu.Unlock()
		case string(unsubscribeMsg):
			s.mu.Lock()
			delete(s.subs[ch], addr.String())
			s.resnap(ch)
			s.mu.Unlock()
		default:
			// Unknown control traffic is ignored; the air interface has no
			// back-channel errors either.
		}
	}
}

// resnap publishes a fresh immutable snapshot of subs[ch]. Callers hold mu.
func (s *Server) resnap(ch int) {
	snap := make([]*net.UDPAddr, 0, len(s.subs[ch]))
	for _, a := range s.subs[ch] {
		snap = append(snap, a)
	}
	s.snaps[ch] = snap
}

// transmit sends the current column on every channel to its subscribers.
// The lock is held only long enough to claim the slot and copy the
// per-channel snapshot headers; the snapshots themselves are immutable, so
// the sends happen unlocked without racing SUB/UNS handling.
func (s *Server) transmit() {
	s.mu.Lock()
	slot := s.slot
	s.slot++
	copy(s.targets, s.snaps)
	s.mu.Unlock()

	if s.fault != nil && s.fault.Stalled(int(slot)) {
		s.stalledSlots.Add(1)
		return
	}
	col := s.prog.Column(int(slot))
	for ch := range s.conns {
		if s.fault != nil && s.fault.Drop(ch, int(slot)) {
			s.droppedFrames.Add(1)
			continue
		}
		f := Frame{Channel: ch, Slot: slot, Page: s.prog.At(ch, col)}
		s.frame = appendFrame(s.frame[:0], f)
		if s.fault != nil && s.fault.Corrupt(ch, int(slot)) {
			// Flip a page byte after the checksum was computed: the frame
			// goes out damaged and every tuner's parseFrame rejects it.
			s.frame[13] ^= 0xA5
			s.corruptFrames.Add(1)
		}
		for _, addr := range s.targets[ch] {
			// Best-effort, like the air: a failed send is a lost frame.
			_, _ = s.conns[ch].WriteToUDP(s.frame, addr)
		}
	}
}
