// Package netcast carries a broadcast program over real UDP sockets: the
// wireless "air" of the paper mapped onto the network stack. The server
// owns one UDP socket per broadcast channel and pushes one frame per slot
// to every subscribed tuner; tuners are single-channel receivers, exactly
// like the radio hardware the paper assumes — they subscribe to one
// channel socket at a time and retune by resubscribing elsewhere.
//
// The transport is deliberately datagram-based: broadcast pages are
// idempotent, self-contained and periodically retransmitted, so a lost
// frame costs one cycle of latency, never correctness — the same loss
// semantics as the air interface. Subscription uses two control datagrams
// ("SUB"/"UNS") on the same socket.
package netcast

import (
	"encoding/binary"
	"errors"
	"fmt"

	"tcsa/internal/core"
)

// Wire format constants.
const (
	frameMagic uint16 = 0x7C5A // "tcsa"
	// frameVersion 2 adds a 16-bit payload checksum in the bytes version 1
	// reserved; parseFrame still accepts checksum-less version-1 frames
	// from older senders.
	frameVersion   byte = 2
	frameVersionV1 byte = 1
	// FrameSize is the fixed encoded size of a Frame in bytes.
	FrameSize = 16
)

// Field offsets of the encoded frame. appendFrame and parseFrame index
// through these so the layout is written down exactly once.
const (
	frameMagicOff   = 0  // magic(2)
	frameVersionOff = 2  // version(1)
	frameFlagsOff   = 3  // flags(1)
	frameChannelOff = 4  // channel(2)
	frameSumOff     = 6  // checksum(2)
	frameSlotOff    = 8  // slot(4)
	framePageOff    = 12 // page(4)
)

// Fault injection flips exactly one payload byte after the checksum is
// computed. The probe sits inside the page field — payload, not framing —
// so a corrupted frame still looks like traffic from this protocol: a
// version-2 receiver rejects it by checksum, while a checksum-less
// version-1 receiver decodes a wrong page (the corruption version 2 was
// introduced to catch).
const (
	corruptFlipOffset = framePageOff + 1
	corruptFlipMask   = 0xA5
)

// ErrBadFrame reports an undecodable datagram.
var ErrBadFrame = errors.New("netcast: bad frame")

// Frame is one slot's transmission on one channel.
//
// Encoding (big endian): magic(2) version(1) flags(1) channel(2)
// checksum(2) slot(4) page(4). Page -1 (empty slot) is carried as the
// two's-complement pattern. The checksum is frameSum over the other 14
// bytes; version-1 frames carried zeros there and are accepted unchecked.
type Frame struct {
	Channel int
	Slot    uint32
	Page    core.PageID
}

// frameSum is a 16-bit FNV-1a fold over the frame bytes outside the
// checksum field: cheap enough for a per-slot hot path, strong enough
// that a corrupted payload byte is caught (a single flipped bit always
// changes the fold).
func frameSum(b []byte) uint16 {
	h := uint32(2166136261)
	for i, c := range b {
		if i == frameSumOff || i == frameSumOff+1 {
			continue // the checksum's own slot
		}
		h = (h ^ uint32(c)) * 16777619
	}
	return uint16(h>>16) ^ uint16(h)
}

// appendFrame encodes f onto buf.
func appendFrame(buf []byte, f Frame) []byte {
	var b [FrameSize]byte
	binary.BigEndian.PutUint16(b[frameMagicOff:], frameMagic)
	b[frameVersionOff] = frameVersion
	b[frameFlagsOff] = 0
	binary.BigEndian.PutUint16(b[frameChannelOff:], uint16(f.Channel))
	binary.BigEndian.PutUint32(b[frameSlotOff:], f.Slot)
	binary.BigEndian.PutUint32(b[framePageOff:], uint32(f.Page))
	binary.BigEndian.PutUint16(b[frameSumOff:], frameSum(b[:]))
	return append(buf, b[:]...)
}

// parseFrame decodes one datagram.
func parseFrame(b []byte) (Frame, error) {
	if len(b) != FrameSize {
		return Frame{}, fmt.Errorf("%w: %d bytes", ErrBadFrame, len(b))
	}
	if binary.BigEndian.Uint16(b[frameMagicOff:]) != frameMagic {
		return Frame{}, fmt.Errorf("%w: bad magic %#x", ErrBadFrame, b[frameMagicOff:frameMagicOff+2])
	}
	switch b[frameVersionOff] {
	case frameVersion:
		if got, want := binary.BigEndian.Uint16(b[frameSumOff:]), frameSum(b); got != want {
			return Frame{}, fmt.Errorf("%w: checksum %#04x, computed %#04x", ErrBadFrame, got, want)
		}
	case frameVersionV1:
		// Pre-checksum wire format: nothing further to verify.
	default:
		return Frame{}, fmt.Errorf("%w: version %d", ErrBadFrame, b[frameVersionOff])
	}
	return Frame{
		Channel: int(binary.BigEndian.Uint16(b[frameChannelOff:])),
		Slot:    binary.BigEndian.Uint32(b[frameSlotOff:]),
		Page:    core.PageID(int32(binary.BigEndian.Uint32(b[framePageOff:]))),
	}, nil
}

// packFrameWords splits an encoded frame into the two big-endian machine
// words the broadcast ring stores atomically (FrameSize is exactly 16).
func packFrameWords(b []byte) (w0, w1 uint64) {
	return binary.BigEndian.Uint64(b[0:8]), binary.BigEndian.Uint64(b[8:16])
}

// frameFromWords is parseFrame over the ring's packed representation: the
// same validation rules, no byte slice, no allocation on any path (the
// ring's subscriber hot loop calls this once per poll).
func frameFromWords(w0, w1 uint64) (Frame, bool) {
	if uint16(w0>>48) != frameMagic {
		return Frame{}, false
	}
	switch byte(w0 >> 40) {
	case frameVersion:
		if uint16(w0) != frameSumWords(w0, w1) {
			return Frame{}, false
		}
	case frameVersionV1:
		// Pre-checksum wire format: nothing further to verify.
	default:
		return Frame{}, false
	}
	return Frame{
		Channel: int(uint16(w0 >> 16)),
		Slot:    uint32(w1 >> 32),
		Page:    core.PageID(int32(uint32(w1))),
	}, true
}

// frameSumWords is frameSum over the packed words: identical fold,
// identical skip of the checksum's own bytes.
func frameSumWords(w0, w1 uint64) uint16 {
	h := uint32(2166136261)
	for i := 0; i < FrameSize; i++ {
		if i == frameSumOff || i == frameSumOff+1 {
			continue
		}
		w := w0
		if i >= 8 {
			w = w1
		}
		c := byte(w >> (56 - 8*uint(i%8)))
		h = (h ^ uint32(c)) * 16777619
	}
	return uint16(h>>16) ^ uint16(h)
}

// Control datagrams.
var (
	subscribeMsg   = []byte("SUB")
	unsubscribeMsg = []byte("UNS")
)
