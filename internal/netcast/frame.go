// Package netcast carries a broadcast program over real UDP sockets: the
// wireless "air" of the paper mapped onto the network stack. The server
// owns one UDP socket per broadcast channel and pushes one frame per slot
// to every subscribed tuner; tuners are single-channel receivers, exactly
// like the radio hardware the paper assumes — they subscribe to one
// channel socket at a time and retune by resubscribing elsewhere.
//
// The transport is deliberately datagram-based: broadcast pages are
// idempotent, self-contained and periodically retransmitted, so a lost
// frame costs one cycle of latency, never correctness — the same loss
// semantics as the air interface. Subscription uses two control datagrams
// ("SUB"/"UNS") on the same socket.
package netcast

import (
	"encoding/binary"
	"errors"
	"fmt"

	"tcsa/internal/core"
)

// Wire format constants.
const (
	frameMagic uint16 = 0x7C5A // "tcsa"
	// frameVersion 2 adds a 16-bit payload checksum in the bytes version 1
	// reserved; parseFrame still accepts checksum-less version-1 frames
	// from older senders.
	frameVersion   byte = 2
	frameVersionV1 byte = 1
	// FrameSize is the fixed encoded size of a Frame in bytes.
	FrameSize = 16
)

// ErrBadFrame reports an undecodable datagram.
var ErrBadFrame = errors.New("netcast: bad frame")

// Frame is one slot's transmission on one channel.
//
// Encoding (big endian): magic(2) version(1) flags(1) channel(2)
// checksum(2) slot(4) page(4). Page -1 (empty slot) is carried as the
// two's-complement pattern. The checksum is frameSum over the other 14
// bytes; version-1 frames carried zeros there and are accepted unchecked.
type Frame struct {
	Channel int
	Slot    uint32
	Page    core.PageID
}

// frameSum is a 16-bit FNV-1a fold over the frame bytes outside the
// checksum field: cheap enough for a per-slot hot path, strong enough
// that a corrupted payload byte is caught (a single flipped bit always
// changes the fold).
func frameSum(b []byte) uint16 {
	h := uint32(2166136261)
	for i, c := range b {
		if i == 6 || i == 7 {
			continue // the checksum's own slot
		}
		h = (h ^ uint32(c)) * 16777619
	}
	return uint16(h>>16) ^ uint16(h)
}

// appendFrame encodes f onto buf.
func appendFrame(buf []byte, f Frame) []byte {
	var b [FrameSize]byte
	binary.BigEndian.PutUint16(b[0:2], frameMagic)
	b[2] = frameVersion
	b[3] = 0
	binary.BigEndian.PutUint16(b[4:6], uint16(f.Channel))
	binary.BigEndian.PutUint32(b[8:12], f.Slot)
	binary.BigEndian.PutUint32(b[12:16], uint32(f.Page))
	binary.BigEndian.PutUint16(b[6:8], frameSum(b[:]))
	return append(buf, b[:]...)
}

// parseFrame decodes one datagram.
func parseFrame(b []byte) (Frame, error) {
	if len(b) != FrameSize {
		return Frame{}, fmt.Errorf("%w: %d bytes", ErrBadFrame, len(b))
	}
	if binary.BigEndian.Uint16(b[0:2]) != frameMagic {
		return Frame{}, fmt.Errorf("%w: bad magic %#x", ErrBadFrame, b[0:2])
	}
	switch b[2] {
	case frameVersion:
		if got, want := binary.BigEndian.Uint16(b[6:8]), frameSum(b); got != want {
			return Frame{}, fmt.Errorf("%w: checksum %#04x, computed %#04x", ErrBadFrame, got, want)
		}
	case frameVersionV1:
		// Pre-checksum wire format: nothing further to verify.
	default:
		return Frame{}, fmt.Errorf("%w: version %d", ErrBadFrame, b[2])
	}
	return Frame{
		Channel: int(binary.BigEndian.Uint16(b[4:6])),
		Slot:    binary.BigEndian.Uint32(b[8:12]),
		Page:    core.PageID(int32(binary.BigEndian.Uint32(b[12:16]))),
	}, nil
}

// Control datagrams.
var (
	subscribeMsg   = []byte("SUB")
	unsubscribeMsg = []byte("UNS")
)
