package netcast

import (
	"testing"
	"time"

	"tcsa/internal/core"
	"tcsa/internal/susc"
)

// longCycleProgram: one page per 32-slot cycle at a known column, so a
// schedule-ignorant camper averages ~16 active frames while the smart
// client dozes through almost all of them.
func longCycleProgram(t *testing.T) *core.Program {
	t.Helper()
	gs := core.MustGroupSet([]core.Group{{Time: 32, Count: 30}})
	prog, err := susc.BuildMinimal(gs) // 1 channel, cycle 32
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func TestSmartFetchDozes(t *testing.T) {
	prog := longCycleProgram(t)
	srv := startServer(t, prog, 2*time.Millisecond)
	ss, err := ServeSchedule("127.0.0.1:0", srv)
	if err != nil {
		t.Fatal(err)
	}
	defer ss.Close()

	var totalActive, totalDozed int
	const fetches = 6
	for i := 0; i < fetches; i++ {
		res, err := SmartFetch(ss.Addr().String(), core.PageID(i*5%30), 10*time.Second)
		if err != nil {
			t.Fatalf("fetch %d: %v", i, err)
		}
		totalActive += res.ActiveFrames
		totalDozed += res.DozedSlots
	}
	// A camping client averages ~16 active frames per fetch on a 32-slot
	// cycle; the smart client should be well under half that on average
	// (sync + margin + page + jitter slack).
	if avg := float64(totalActive) / fetches; avg > 10 {
		t.Errorf("smart fetch averaged %.1f active frames, want < 10", avg)
	}
	if totalDozed == 0 {
		t.Error("smart fetch never dozed on a long cycle")
	}
}

func TestSmartFetchValidation(t *testing.T) {
	prog := longCycleProgram(t)
	srv := startServer(t, prog, 2*time.Millisecond)
	ss, err := ServeSchedule("127.0.0.1:0", srv)
	if err != nil {
		t.Fatal(err)
	}
	defer ss.Close()
	if _, err := SmartFetch(ss.Addr().String(), 999, 2*time.Second); err == nil {
		t.Error("out-of-range page accepted")
	}
	if _, err := SmartFetch("127.0.0.1:1", 0, 300*time.Millisecond); err == nil {
		t.Error("dead schedule endpoint accepted")
	}
}
