// Package perf defines the benchmark-trajectory report that
// `airbench -bench` emits (BENCH_sweep.json) and the comparator CI uses to
// flag regressions between two reports.
//
// A report is a flat list of named samples. Each sample carries the three
// cost metrics of one benchmark (ns/op, allocs/op, B/op) plus an optional
// checksum over the result series the benchmark computed, so a comparison
// can distinguish "got slower" from "now computes something different".
// Allocation counts and checksums are deterministic and therefore the
// primary CI signal; wall time is noisy on shared runners and is only
// checked when the caller opts in with a slowdown bound.
//
// The package is deliberately pure data + comparison: it does not import
// testing, run benchmarks, or know how samples are produced.
package perf

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math"
	"os"
)

// SchemaVersion identifies the report layout. Bump it on incompatible
// changes; Compare refuses to diff reports with different schemas.
const SchemaVersion = 1

// Sample is one benchmark measurement.
type Sample struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	// Checksum fingerprints the numeric series the benchmarked code
	// produced (see SeriesChecksum); empty when the benchmark has no
	// meaningful output to fingerprint.
	Checksum string `json:"checksum,omitempty"`
}

// Report is the BENCH_sweep.json document.
type Report struct {
	Schema   int      `json:"schema"`
	GOOS     string   `json:"goos"`
	GOARCH   string   `json:"goarch"`
	MaxProcs int      `json:"maxprocs"`
	Samples  []Sample `json:"samples"`
}

// Find returns the sample with the given name, or nil.
func (r *Report) Find(name string) *Sample {
	for i := range r.Samples {
		if r.Samples[i].Name == name {
			return &r.Samples[i]
		}
	}
	return nil
}

// WriteFile marshals the report as indented JSON.
func (r *Report) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("perf: marshal report: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadFile loads a report written by WriteFile.
func ReadFile(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("perf: parse %s: %w", path, err)
	}
	return &r, nil
}

// SeriesChecksum fingerprints a float series with FNV-1a over the exact
// IEEE-754 bits, little-endian. Bit-identical series — the contract the
// sweep engine and analysis refactors are held to — therefore produce
// identical checksums, and any numeric drift changes them.
func SeriesChecksum(vals []float64) string {
	h := fnv.New64a()
	var buf [8]byte
	for _, v := range vals {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		_, _ = h.Write(buf[:]) // hash.Hash writes never fail
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// Options bounds how much a current report may degrade from the baseline.
type Options struct {
	// MaxSlowdown flags samples with NsPerOp > baseline*MaxSlowdown.
	// <= 0 disables the wall-time check (recommended on shared CI).
	MaxSlowdown float64
	// MaxAllocGrowth flags samples with AllocsPerOp > baseline*MaxAllocGrowth.
	// Growth of at most 2 allocs/op is always tolerated so tiny baselines
	// (e.g. 6 allocs) don't trip on a single extra allocation.
	// <= 0 disables the allocation check.
	MaxAllocGrowth float64
}

// Regression is one detected degradation.
type Regression struct {
	Sample string  // sample name
	Metric string  // "ns/op", "allocs/op", "checksum", "missing", "schema"
	Base   float64 // baseline value (0 for non-numeric metrics)
	Cur    float64 // current value (0 for non-numeric metrics)
	Detail string  // human-readable explanation
}

func (r Regression) String() string {
	return fmt.Sprintf("%s [%s]: %s", r.Sample, r.Metric, r.Detail)
}

// Compare diffs cur against base and returns every regression found:
// schema mismatches, samples that disappeared, checksum drift, and metric
// degradations beyond opts. A nil/empty result means cur is acceptable.
// Samples present only in cur are new benchmarks, not regressions.
func Compare(base, cur *Report, opts Options) []Regression {
	var regs []Regression
	if base.Schema != cur.Schema {
		return []Regression{{
			Metric: "schema",
			Base:   float64(base.Schema),
			Cur:    float64(cur.Schema),
			Detail: fmt.Sprintf("baseline schema %d vs current %d", base.Schema, cur.Schema),
		}}
	}
	for _, b := range base.Samples {
		c := cur.Find(b.Name)
		if c == nil {
			regs = append(regs, Regression{
				Sample: b.Name,
				Metric: "missing",
				Detail: "sample present in baseline but absent from current report",
			})
			continue
		}
		if b.Checksum != "" && c.Checksum != "" && b.Checksum != c.Checksum {
			regs = append(regs, Regression{
				Sample: b.Name,
				Metric: "checksum",
				Detail: fmt.Sprintf("series checksum drifted: %s -> %s", b.Checksum, c.Checksum),
			})
		}
		if opts.MaxAllocGrowth > 0 && c.AllocsPerOp > b.AllocsPerOp+2 &&
			float64(c.AllocsPerOp) > float64(b.AllocsPerOp)*opts.MaxAllocGrowth {
			regs = append(regs, Regression{
				Sample: b.Name,
				Metric: "allocs/op",
				Base:   float64(b.AllocsPerOp),
				Cur:    float64(c.AllocsPerOp),
				Detail: fmt.Sprintf("allocs/op grew %d -> %d (limit %.2fx)", b.AllocsPerOp, c.AllocsPerOp, opts.MaxAllocGrowth),
			})
		}
		if opts.MaxSlowdown > 0 && c.NsPerOp > b.NsPerOp*opts.MaxSlowdown {
			regs = append(regs, Regression{
				Sample: b.Name,
				Metric: "ns/op",
				Base:   b.NsPerOp,
				Cur:    c.NsPerOp,
				Detail: fmt.Sprintf("ns/op grew %.0f -> %.0f (limit %.2fx)", b.NsPerOp, c.NsPerOp, opts.MaxSlowdown),
			})
		}
	}
	return regs
}
