package perf

import (
	"math"
	"path/filepath"
	"testing"
)

func TestSeriesChecksumStable(t *testing.T) {
	a := SeriesChecksum([]float64{1, 2.5, 0, -3})
	b := SeriesChecksum([]float64{1, 2.5, 0, -3})
	if a != b {
		t.Fatalf("checksum not deterministic: %s vs %s", a, b)
	}
	if len(a) != 16 {
		t.Fatalf("checksum %q is not 16 hex digits", a)
	}
	if c := SeriesChecksum([]float64{1, 2.5, 0, -3 + 1e-15}); c == a {
		t.Error("checksum blind to a 1-ulp-scale perturbation")
	}
	// Signed zero and NaN payloads are distinct bit patterns: the checksum
	// fingerprints bits, not values.
	if SeriesChecksum([]float64{0}) == SeriesChecksum([]float64{math.Copysign(0, -1)}) {
		t.Error("checksum conflates +0 and -0")
	}
}

func TestSeriesChecksumEmpty(t *testing.T) {
	// FNV-1a offset basis: no writes.
	if got := SeriesChecksum(nil); got != "cbf29ce484222325" {
		t.Errorf("empty checksum = %s, want FNV-1a offset basis", got)
	}
}

func report(samples ...Sample) *Report {
	return &Report{Schema: SchemaVersion, GOOS: "linux", GOARCH: "amd64", MaxProcs: 1, Samples: samples}
}

func TestCompareClean(t *testing.T) {
	base := report(Sample{Name: "Analyze", NsPerOp: 100, AllocsPerOp: 6, Checksum: "aa"})
	cur := report(Sample{Name: "Analyze", NsPerOp: 120, AllocsPerOp: 6, Checksum: "aa"},
		Sample{Name: "NewBench", NsPerOp: 1, AllocsPerOp: 1})
	if regs := Compare(base, cur, Options{MaxSlowdown: 1.5, MaxAllocGrowth: 1.5}); len(regs) != 0 {
		t.Fatalf("clean compare flagged regressions: %v", regs)
	}
}

func TestCompareFlagsEachMetric(t *testing.T) {
	base := report(
		Sample{Name: "slow", NsPerOp: 100, AllocsPerOp: 10},
		Sample{Name: "alloc", NsPerOp: 100, AllocsPerOp: 10},
		Sample{Name: "drift", NsPerOp: 100, AllocsPerOp: 10, Checksum: "aa"},
		Sample{Name: "gone", NsPerOp: 100, AllocsPerOp: 10},
	)
	cur := report(
		Sample{Name: "slow", NsPerOp: 500, AllocsPerOp: 10},
		Sample{Name: "alloc", NsPerOp: 100, AllocsPerOp: 40},
		Sample{Name: "drift", NsPerOp: 100, AllocsPerOp: 10, Checksum: "bb"},
	)
	regs := Compare(base, cur, Options{MaxSlowdown: 2, MaxAllocGrowth: 2})
	want := map[string]string{"slow": "ns/op", "alloc": "allocs/op", "drift": "checksum", "gone": "missing"}
	if len(regs) != len(want) {
		t.Fatalf("got %d regressions %v, want %d", len(regs), regs, len(want))
	}
	for _, r := range regs {
		if want[r.Sample] != r.Metric {
			t.Errorf("sample %s flagged as %s, want %s", r.Sample, r.Metric, want[r.Sample])
		}
	}
}

func TestCompareAllocSlack(t *testing.T) {
	// Tiny baselines tolerate +2 allocs even when the ratio bound is blown.
	base := report(Sample{Name: "tiny", AllocsPerOp: 1})
	cur := report(Sample{Name: "tiny", AllocsPerOp: 3})
	if regs := Compare(base, cur, Options{MaxAllocGrowth: 1.5}); len(regs) != 0 {
		t.Errorf("+2 allocs on a 1-alloc baseline flagged: %v", regs)
	}
	cur.Samples[0].AllocsPerOp = 4
	if regs := Compare(base, cur, Options{MaxAllocGrowth: 1.5}); len(regs) != 1 {
		t.Errorf("+3 allocs beyond ratio bound not flagged: %v", regs)
	}
}

func TestCompareSchemaMismatch(t *testing.T) {
	base := report()
	cur := report()
	cur.Schema = SchemaVersion + 1
	regs := Compare(base, cur, Options{})
	if len(regs) != 1 || regs[0].Metric != "schema" {
		t.Fatalf("schema mismatch not flagged: %v", regs)
	}
}

func TestReportRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_sweep.json")
	r := report(Sample{Name: "Figure5/uniform", Iterations: 1, NsPerOp: 1.5e7, AllocsPerOp: 1086, BytesPerOp: 123, Checksum: "deadbeefdeadbeef"})
	if err := r.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != r.Schema || len(got.Samples) != 1 || got.Samples[0] != r.Samples[0] {
		t.Errorf("round trip mismatch: %+v vs %+v", got, r)
	}
	if got.Find("Figure5/uniform") == nil || got.Find("nope") != nil {
		t.Error("Find misbehaves after round trip")
	}
}
