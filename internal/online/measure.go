package online

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"tcsa/internal/core"
	"tcsa/internal/stats"
	"tcsa/internal/workload"
)

// airIndex is the online airing log in CSR form: for every page, its
// ascending absolute airing slots. A page airs online at most once per slot
// (the pick clears it before the next channel chooses), and the log is
// appended in slot order, so the fill below is already sorted.
type airIndex struct {
	offs  []int32
	slots []int64
}

func buildAirIndex(pages int, airings []Airing) *airIndex {
	ix := &airIndex{offs: make([]int32, pages+1)}
	for _, a := range airings {
		ix.offs[a.Page+1]++
	}
	for i := 0; i < pages; i++ {
		ix.offs[i+1] += ix.offs[i]
	}
	ix.slots = make([]int64, len(airings))
	fill := make([]int32, pages)
	copy(fill, ix.offs[:pages])
	for _, a := range airings {
		ix.slots[fill[a.Page]] = int64(a.Slot)
		fill[a.Page]++
	}
	return ix
}

// nextOnline is the first online airing of page at or after arrival a, as
// a flow time (float64(slot) - a), or +Inf when the page never airs online
// again. Airings never wrap: the log is a finite timeline, not a cycle.
func (ix *airIndex) nextOnline(page core.PageID, a float64) float64 {
	slots := ix.slots[ix.offs[page]:ix.offs[page+1]]
	if len(slots) == 0 {
		return math.Inf(1)
	}
	target := int64(ceilF(a))
	k := sort.Search(len(slots), func(i int) bool { return slots[i] >= target })
	if k == len(slots) {
		return math.Inf(1)
	}
	return float64(slots[k]) - a
}

// onlineCursor walks one page's airing slots for non-decreasing arrivals,
// the airIndex analogue of sim's pageCursor: identical arithmetic to
// nextOnline, amortised O(1) per request. Online slots are absolute (no
// cycle wrap), so the cursor only ever advances within a shard.
type onlineCursor struct {
	k     int32
	prevA float64
}

func (ix *airIndex) nextSorted(oc *onlineCursor, page core.PageID, a float64) float64 {
	if a < oc.prevA {
		oc.k = 0 // new shard restarted the arrival clock
	}
	oc.prevA = a
	slots := ix.slots[ix.offs[page]:ix.offs[page+1]]
	k := oc.k
	for int(k) < len(slots) && float64(slots[k]) < a {
		k++
	}
	oc.k = k
	if int(k) == len(slots) {
		return math.Inf(1)
	}
	return float64(slots[k]) - a
}

// mpartial is the per-shard accumulation state of the measurement pass,
// mirroring sim's partial: disjoint shards written without synchronisation,
// folded afterwards in ascending shard order so every float and the digest
// are independent of the worker count.
type mpartial struct {
	flow, df       stats.Online
	flowSum, dfSum float64
	onlineServed   int64
	digest         uint64
	err            error
}

// measure computes every request's flow against the fixed push+online
// timeline: flow = min(first push appearance >= arrival, first online
// airing >= arrival). The decision pass guarantees the two tiers never air
// the same page in the same slot, so the min is never a tie and the serving
// tier is unambiguous; it also guarantees the min reproduces the decision
// pass's clearing instants (a waiting request is cleared by whichever tier
// airs its page first).
func measure(prog *core.Program, stream workload.Stream, airings []Airing, cfg Config) (*Result, error) {
	count := stream.Count()
	gs := prog.GroupSet()
	pages := gs.Pages()
	res := &Result{Requests: count}
	if count == 0 {
		return res, nil
	}

	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	shards := stream.Shards()
	if workers > shards {
		workers = shards
	}

	a := core.Analyze(prog)
	ix := a.Index()
	air := buildAirIndex(pages, airings)
	L := float64(prog.Length())
	pure := cfg.Split.Mode == SplitPureOnline
	sorted := stream.Sorted()
	times := make([]float64, pages)
	for i := range times {
		times[i] = float64(gs.TimeOf(core.PageID(i)))
	}

	var flows []float64
	var servedOn []bool
	if cfg.RecordFlows {
		flows = make([]float64, count)
		servedOn = make([]bool, count)
	}

	partials := make([]mpartial, shards)
	flowSketches := make([]*stats.Sketch, workers)
	dfSketches := make([]*stats.Sketch, workers)

	var nextShard atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	var sketchErr atomic.Value
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(widx int) {
			defer wg.Done()
			fs, err1 := stats.NewSketch(L/(1<<20), flowSketchSpan*L, sketchQuantileAccuracy)
			ds, err2 := stats.NewSketch(dfSketchLo, dfSketchHi, sketchQuantileAccuracy)
			if err1 != nil || err2 != nil {
				sketchErr.Store(errors.Join(err1, err2))
				failed.Store(true)
				return
			}
			flowSketches[widx] = fs
			dfSketches[widx] = ds
			cur := stream.NewCursor()
			var pushCursors []pageCursor
			var onCursors []onlineCursor
			if sorted {
				pushCursors = make([]pageCursor, pages)
				onCursors = make([]onlineCursor, pages)
			}
			var r workload.Request
			for {
				if failed.Load() {
					return
				}
				k := int(nextShard.Add(1)) - 1
				if k >= shards {
					return
				}
				p := &partials[k]
				d := fnvOffset
				cur.Seek(k)
				for local := 0; cur.Next(&r); local++ {
					// The decision pass validated the stream; a request it
					// never saw means the stream is not replayable.
					if r.Page < 0 || int(r.Page) >= pages || r.Arrival < 0 {
						p.err = fmt.Errorf("online: stream not replayable: request %d/%d changed to page %d arrival %f",
							k, local, r.Page, r.Arrival)
						failed.Store(true)
						return
					}
					flowPush := math.Inf(1)
					if !pure {
						// Identical arithmetic to the serial reference's
						// float64(serveSlot) - arrival: math.Mod is exact,
						// so both subtractions round the same real number.
						if cols := ix.Columns(r.Page); len(cols) != 0 {
							u := math.Mod(r.Arrival, L)
							if sorted {
								flowPush = nextSorted(&pushCursors[r.Page], cols, u, L)
							} else {
								flowPush = a.NextAfter(r.Page, u)
							}
						}
					}
					var flowOn float64
					if sorted {
						flowOn = air.nextSorted(&onCursors[r.Page], r.Page, r.Arrival)
					} else {
						flowOn = air.nextOnline(r.Page, r.Arrival)
					}
					flow := flowPush
					online := false
					if flowOn < flowPush {
						flow = flowOn
						online = true
						p.onlineServed++
					}
					if math.IsInf(flow, 1) {
						p.err = fmt.Errorf("online: request %d/%d page %d never served (internal inconsistency)",
							k, local, r.Page)
						failed.Store(true)
						return
					}
					df := flow / times[r.Page]
					if df < 1 {
						df = 1
					}
					p.flow.Add(flow)
					p.df.Add(df)
					p.flowSum += flow
					p.dfSum += df
					fs.Add(flow)
					ds.Add(df)
					d = fnv64(d, uint64(uint32(r.Page)))
					d = fnv64(d, math.Float64bits(flow))
					served := uint64(0)
					if online {
						served = 1
					}
					d = fnv64(d, served)
					if cfg.RecordFlows {
						flows[k*workload.ShardSize+local] = flow
						servedOn[k*workload.ShardSize+local] = online
					}
				}
				p.digest = d
			}
		}(w)
	}
	wg.Wait()

	for k := range partials {
		if partials[k].err != nil {
			return nil, partials[k].err
		}
	}
	if err, _ := sketchErr.Load().(error); err != nil {
		return nil, err
	}

	// Fold partials in shard order (worker-independent), sketches in worker
	// order (integer buckets, so any order yields the same quantiles).
	var flow, df stats.Online
	var flowSum, dfSum float64
	var onlineServed int64
	digest := fnvOffset
	for k := range partials {
		flow.Merge(partials[k].flow)
		df.Merge(partials[k].df)
		flowSum += partials[k].flowSum
		dfSum += partials[k].dfSum
		onlineServed += partials[k].onlineServed
		digest = fnv64(digest, partials[k].digest)
	}
	flowSketch, dfSketch := flowSketches[0], dfSketches[0]
	for w := 1; w < workers; w++ {
		if flowSketches[w] == nil {
			continue // worker exited before claiming a shard
		}
		if err := flowSketch.Merge(flowSketches[w]); err != nil {
			return nil, err
		}
		if err := dfSketch.Merge(dfSketches[w]); err != nil {
			return nil, err
		}
	}

	res.OnlineServed = int(onlineServed)
	res.PushServed = count - int(onlineServed)
	res.AvgFlow = flowSum / float64(count)
	res.MaxFlow = flow.Max()
	res.AvgDelayFactor = dfSum / float64(count)
	res.MaxDelayFactor = df.Max()
	res.Flow = summaryOf(flow, flowSketch)
	res.DelayFactor = summaryOf(df, dfSketch)
	res.TraceDigest = digest
	res.Flows = flows
	res.ServedOnline = servedOn
	return res, nil
}

// pageCursor + nextSorted mirror sim's sorted-shard column walk: identical
// arithmetic to Analysis.NextAfter (identical bits), amortised O(1).
type pageCursor struct {
	k     int32
	prevU float64
}

func nextSorted(pc *pageCursor, cols []int32, u, L float64) float64 {
	if u < pc.prevU {
		pc.k = 0 // arrival wrapped to a new cycle (or a new shard began)
	}
	pc.prevU = u
	k := pc.k
	for int(k) < len(cols) && float64(cols[k]) < u {
		k++
	}
	pc.k = k
	if int(k) == len(cols) {
		return float64(cols[0]) + L - u
	}
	return float64(cols[k]) - u
}

func summaryOf(o stats.Online, sk *stats.Sketch) stats.Summary {
	return stats.Summary{
		N:      int(o.N()),
		Mean:   o.Mean(),
		StdDev: o.StdDev(),
		Min:    o.Min(),
		Max:    o.Max(),
		P50:    sk.Quantile(0.50),
		P95:    sk.Quantile(0.95),
		P99:    sk.Quantile(0.99),
	}
}
