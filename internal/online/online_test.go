package online

import (
	"errors"
	"math"
	"testing"

	"tcsa/internal/conformance"
	"tcsa/internal/core"
	"tcsa/internal/pamad"
	"tcsa/internal/susc"
	"tcsa/internal/workload"
)

func mustGroupSet(t *testing.T, d workload.Distribution, h, n, t1, c int) *core.GroupSet {
	t.Helper()
	gs, err := workload.GroupSet(d, h, n, t1, c)
	if err != nil {
		t.Fatalf("GroupSet: %v", err)
	}
	return gs
}

func sliceStream(pages []core.PageID, arrivals []float64) workload.Stream {
	reqs := make([]workload.Request, len(pages))
	for i := range pages {
		reqs[i] = workload.Request{Page: pages[i], Arrival: arrivals[i]}
	}
	return workload.SliceStream(reqs)
}

// materialize drains a stream into parallel page/arrival slices for the
// conformance oracles.
func materialize(stream workload.Stream) (pages []core.PageID, arrivals []float64) {
	cur := stream.NewCursor()
	var r workload.Request
	for k := 0; k < stream.Shards(); k++ {
		cur.Seek(k)
		for cur.Next(&r) {
			pages = append(pages, r.Page)
			arrivals = append(arrivals, r.Arrival)
		}
	}
	return pages, arrivals
}

// toSlotAirings converts the engine's airing log for the oracles.
func toSlotAirings(airings []Airing) []conformance.SlotAiring {
	out := make([]conformance.SlotAiring, len(airings))
	for i, a := range airings {
		out[i] = conformance.SlotAiring{Slot: a.Slot, Channel: a.Channel, Page: a.Page}
	}
	return out
}

// pushRowsOf is the oracle-facing push-owned row count of a split.
func pushRowsOf(prog *core.Program, split Split) int {
	if split.Mode == SplitPureOnline {
		return 0
	}
	return prog.Channels()
}

func TestParsePolicy(t *testing.T) {
	for _, p := range Policies() {
		got, err := ParsePolicy(p.String())
		if err != nil || got != p {
			t.Fatalf("ParsePolicy(%q) = %v, %v", p.String(), got, err)
		}
	}
	if _, err := ParsePolicy("sjf"); err == nil {
		t.Fatal("ParsePolicy accepted unknown policy")
	}
}

func TestParseSplit(t *testing.T) {
	cases := map[string]Split{
		"pure":       {Mode: SplitPureOnline},
		"reserved":   {Mode: SplitReserved, OnlineChannels: 1},
		"reserved:3": {Mode: SplitReserved, OnlineChannels: 3},
		"steal":      {Mode: SplitSteal},
		"steal:8":    {Mode: SplitSteal, StealThreshold: 8},
		"steal:2.5":  {Mode: SplitSteal, StealThreshold: 2.5},
	}
	for in, want := range cases {
		got, err := ParseSplit(in)
		if err != nil || got != want {
			t.Fatalf("ParseSplit(%q) = %+v, %v; want %+v", in, got, err, want)
		}
	}
	for _, bad := range []string{"", "quota", "reserved:x", "steal:"} {
		if _, err := ParseSplit(bad); err == nil {
			t.Fatalf("ParseSplit(%q) succeeded", bad)
		}
	}
	// Round trip through the String form.
	for in := range cases {
		s, err := ParseSplit(in)
		if err != nil {
			t.Fatal(err)
		}
		again, err := ParseSplit(s.String())
		if err != nil || again != s {
			t.Fatalf("ParseSplit(%q).String() = %q does not round-trip", in, s.String())
		}
	}
}

func TestRunValidation(t *testing.T) {
	gs := mustGroupSet(t, workload.Uniform, 2, 8, 4, 2)
	prog, err := susc.BuildMinimal(gs)
	if err != nil {
		t.Fatal(err)
	}
	stream := sliceStream([]core.PageID{0}, []float64{0})
	if _, err := Run(nil, stream, Config{Split: Split{Mode: SplitPureOnline}}); err == nil {
		t.Fatal("nil program accepted")
	}
	if _, err := Run(prog, nil, Config{Split: Split{Mode: SplitPureOnline}}); err == nil {
		t.Fatal("nil stream accepted")
	}
	if _, err := Run(prog, stream, Config{Split: Split{Mode: SplitReserved}}); err == nil {
		t.Fatal("reserved split with zero channels accepted")
	}
	if _, err := Run(prog, stream, Config{Policy: Policy(99), Split: Split{Mode: SplitPureOnline}}); err == nil {
		t.Fatal("unknown policy accepted")
	}
	if _, err := Run(prog, stream, Config{Split: Split{Mode: SplitSteal, StealThreshold: -1}}); err == nil {
		t.Fatal("negative steal threshold accepted")
	}
	bad := sliceStream([]core.PageID{99}, []float64{0})
	if _, err := Run(prog, bad, Config{Split: Split{Mode: SplitPureOnline}}); !errors.Is(err, core.ErrPageRange) {
		t.Fatalf("out-of-range page: %v", err)
	}
	neg := sliceStream([]core.PageID{0}, []float64{-1})
	if _, err := Run(prog, neg, Config{Split: Split{Mode: SplitPureOnline}}); !errors.Is(err, core.ErrSlotRange) {
		t.Fatalf("negative arrival: %v", err)
	}
}

func TestZeroRequests(t *testing.T) {
	gs := mustGroupSet(t, workload.Uniform, 2, 8, 4, 2)
	prog, err := susc.BuildMinimal(gs)
	if err != nil {
		t.Fatal(err)
	}
	for _, run := range []func(*core.Program, workload.Stream, Config) (*Result, error){Run, RunSerial} {
		res, err := run(prog, workload.SliceStream(nil), Config{Split: Split{Mode: SplitPureOnline}})
		if err != nil {
			t.Fatal(err)
		}
		if res.Requests != 0 || res.OnlineAirings != 0 || res.HorizonSlots != 0 || res.AvgFlow != 0 {
			t.Fatalf("zero-request result not zeroed: %+v", res)
		}
	}
}

// TestPureOnlineFCFSExactFlows pins the engine's slot semantics on a
// hand-checkable single-channel instance: three pages, one request each,
// FCFS order, flow = serve slot - arrival.
func TestPureOnlineFCFSExactFlows(t *testing.T) {
	gs := mustGroupSet(t, workload.Uniform, 1, 3, 16, 2)
	prog, err := susc.Build(gs, 1)
	if err != nil {
		t.Fatal(err)
	}
	stream := sliceStream(
		[]core.PageID{2, 0, 1},
		[]float64{0, 0.5, 0.75},
	)
	res, err := Run(prog, stream, Config{
		Policy:      FCFS,
		Split:       Split{Mode: SplitPureOnline},
		RecordFlows: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Slot 0 admits only page 2 (arrival 0) and airs it; pages 0 and 1
	// (bucket 1) then go in arrival order: page 0 at slot 1, page 1 at 2.
	wantFlows := []float64{0, 0.5, 1.25}
	for i, want := range wantFlows {
		if res.Flows[i] != want {
			t.Fatalf("flow[%d] = %g, want %g (flows %v)", i, res.Flows[i], want, res.Flows)
		}
	}
	if res.OnlineServed != 3 || res.PushServed != 0 {
		t.Fatalf("pure online attribution: %+v", res)
	}
	if res.MaxFlow != 1.25 || res.AvgFlow != (0+0.5+1.25)/3 {
		t.Fatalf("flow summary: avg %g max %g", res.AvgFlow, res.MaxFlow)
	}
	want := []Airing{{0, 0, 2}, {1, 0, 0}, {2, 0, 1}}
	if len(res.Airings) != len(want) {
		t.Fatalf("airings %v", res.Airings)
	}
	for i := range want {
		if res.Airings[i] != want[i] {
			t.Fatalf("airing[%d] = %+v, want %+v", i, res.Airings[i], want[i])
		}
	}
}

// TestConservationAllPoliciesAndSplits is the request-clearing conservation
// gate of the acceptance criteria: every policy under every split serves
// every request exactly once at its first on-air instant, never preempting
// a filled push cell, on a PAMAD program with spilled pages (scarce
// channels) so both tiers genuinely compete.
func TestConservationAllPoliciesAndSplits(t *testing.T) {
	gs := mustGroupSet(t, workload.Uniform, 4, 80, 2, 2)
	prog, _, err := pamad.Build(gs, 3) // scarce: some pages spill out of the push grid
	if err != nil {
		t.Fatal(err)
	}
	// Guarantee empty cells so the steal splits can reach spilled pages.
	prog.Clear(0, 0)
	prog.Clear(1, prog.Length()-1)
	stream, err := workload.NewStream(gs, prog.Length(), workload.RequestConfig{
		Count: 400, Choice: workload.ZipfPages, Theta: 0.8, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	pages, arrivals := materialize(stream)
	splits := []Split{
		{Mode: SplitReserved, OnlineChannels: 1},
		{Mode: SplitReserved, OnlineChannels: 2},
		{Mode: SplitSteal, StealThreshold: 0},
		{Mode: SplitSteal, StealThreshold: 4},
		{Mode: SplitPureOnline},
	}
	for _, policy := range Policies() {
		for _, split := range splits {
			res, err := Run(prog, stream, Config{Policy: policy, Split: split, RecordFlows: true, MaxSlots: 50000})
			if err != nil {
				t.Fatalf("%v/%v: %v", policy, split, err)
			}
			if res.PushServed+res.OnlineServed != res.Requests {
				t.Fatalf("%v/%v: served %d+%d != %d", policy, split, res.PushServed, res.OnlineServed, res.Requests)
			}
			rows := pushRowsOf(prog, split)
			air := toSlotAirings(res.Airings)
			if err := conformance.OnlineConservation(prog, rows, air, pages, arrivals, res.Flows); err != nil {
				t.Fatalf("%v/%v: %v", policy, split, err)
			}
			if err := conformance.PushIntegrity(prog, rows, air); err != nil {
				t.Fatalf("%v/%v: %v", policy, split, err)
			}
			if split.Mode != SplitSteal && res.StolenSlots != 0 {
				t.Fatalf("%v/%v: stole %d slots outside steal mode", policy, split, res.StolenSlots)
			}
			for i, f := range res.Flows {
				if f < 0 {
					t.Fatalf("%v/%v: negative flow %g at %d", policy, split, f, i)
				}
			}
			if res.MaxDelayFactor < 1 || res.AvgDelayFactor < 1 {
				t.Fatalf("%v/%v: delay factors below 1: %+v", policy, split, res)
			}
		}
	}
}

// TestStealRespectsThreshold: with an infinite threshold nothing is stolen;
// with threshold zero the empty row is used and flows improve.
func TestStealRespectsThreshold(t *testing.T) {
	gs := mustGroupSet(t, workload.Uniform, 1, 4, 4, 2)
	// Two channels, row 0 a valid SUSC cycle, row 1 entirely empty.
	prog, err := core.NewProgram(gs, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 4; s++ {
		if err := prog.Place(0, s, core.PageID(s)); err != nil {
			t.Fatal(err)
		}
	}
	stream := sliceStream(
		[]core.PageID{3, 3, 2},
		[]float64{0, 0.25, 0.25},
	)
	never, err := Run(prog, stream, Config{
		Policy:      LWF,
		Split:       Split{Mode: SplitSteal, StealThreshold: math.Inf(1)},
		MaxSlots:    64,
		RecordFlows: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if never.StolenSlots != 0 || never.OnlineServed != 0 {
		t.Fatalf("infinite threshold still stole: %+v", never)
	}
	eager, err := Run(prog, stream, Config{
		Policy:      LWF,
		Split:       Split{Mode: SplitSteal, StealThreshold: 0},
		RecordFlows: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if eager.StolenSlots == 0 || eager.OnlineServed == 0 {
		t.Fatalf("zero threshold never stole: %+v", eager)
	}
	if eager.AvgFlow >= never.AvgFlow {
		t.Fatalf("stealing did not improve flow: %g >= %g", eager.AvgFlow, never.AvgFlow)
	}
	pages, arrivals := materialize(stream)
	for _, res := range []*Result{never, eager} {
		if err := conformance.OnlineConservation(prog, prog.Channels(), toSlotAirings(res.Airings), pages, arrivals, res.Flows); err != nil {
			t.Fatal(err)
		}
	}
}

// TestUnservableRequestFails: a page outside the push grid under a split
// that never yields an online slot must fail at the slot bound, not loop.
func TestUnservableRequestFails(t *testing.T) {
	gs := mustGroupSet(t, workload.Uniform, 1, 4, 4, 2)
	prog, err := core.NewProgram(gs, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 4; s++ {
		// Page 3 never airs; its cell broadcasts page 0 instead.
		id := core.PageID(s)
		if s == 3 {
			id = 0
		}
		if err := prog.Place(0, s, id); err != nil {
			t.Fatal(err)
		}
	}
	stream := sliceStream([]core.PageID{3}, []float64{0})
	cfg := Config{Policy: LWF, Split: Split{Mode: SplitSteal, StealThreshold: math.Inf(1)}, MaxSlots: 32}
	if _, err := Run(prog, stream, cfg); err == nil {
		t.Fatal("unservable request did not fail")
	}
	if _, err := RunSerial(prog, stream, cfg); err == nil {
		t.Fatal("unservable request did not fail in the reference")
	}
}

// TestLWFDominanceAdversarial runs the conformance adversarial family on a
// single pure-online channel: LWF must beat (or tie) every rival policy on
// total flow, strictly beating the arrival-order and deadline-order
// policies that burn slots on the decoy backlog.
func TestLWFDominanceAdversarial(t *testing.T) {
	const decoys, hot = 5, 3
	gs := mustGroupSet(t, workload.Uniform, 1, decoys+1, 16, 2)
	prog, err := susc.Build(gs, 1)
	if err != nil {
		t.Fatal(err)
	}
	pages, arrivals := conformance.SingleChannelBacklog(hot, decoys)
	stream := sliceStream(pages, arrivals)
	totals := make(map[Policy]float64)
	for _, policy := range Policies() {
		res, err := Run(prog, stream, Config{Policy: policy, Split: Split{Mode: SplitPureOnline}, RecordFlows: true})
		if err != nil {
			t.Fatalf("%v: %v", policy, err)
		}
		if err := conformance.OnlineConservation(prog, 0, toSlotAirings(res.Airings), pages, arrivals, res.Flows); err != nil {
			t.Fatalf("%v: %v", policy, err)
		}
		var total float64
		for _, f := range res.Flows {
			total += f
		}
		totals[policy] = total
	}
	for _, rival := range []Policy{MRF, EDF, FCFS} {
		if err := conformance.LWFDominance(totals[LWF], rival.String(), totals[rival]); err != nil {
			t.Fatal(err)
		}
	}
	// The backlog family is built to make arrival- and deadline-order
	// scheduling strictly worse, not merely tied.
	if totals[LWF] >= totals[FCFS] {
		t.Fatalf("LWF %g not strictly better than FCFS %g", totals[LWF], totals[FCFS])
	}
	if totals[LWF] >= totals[EDF] {
		t.Fatalf("LWF %g not strictly better than EDF %g", totals[LWF], totals[EDF])
	}
}

// TestReservedKeepsPushValid: under a reserved split the push grid is
// untouched by construction; the oracle-checked as-aired validity is the
// acceptance criterion "push-tier conformance still green under every
// split".
func TestReservedKeepsPushValid(t *testing.T) {
	gs := mustGroupSet(t, workload.Uniform, 3, 30, 2, 2)
	prog, err := susc.BuildMinimal(gs)
	if err != nil {
		t.Fatal(err)
	}
	if err := conformance.ValidFromAnyStart(prog); err != nil {
		t.Fatal(err)
	}
	stream, err := workload.NewStream(gs, prog.Length(), workload.RequestConfig{Count: 200, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(prog, stream, Config{Policy: LWF, Split: Split{Mode: SplitReserved, OnlineChannels: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if err := conformance.PushIntegrity(prog, prog.Channels(), toSlotAirings(res.Airings)); err != nil {
		t.Fatal(err)
	}
	// The grid itself is immutable through the run, so the Section 3.1
	// guarantee still holds verbatim.
	if err := conformance.ValidFromAnyStart(prog); err != nil {
		t.Fatal(err)
	}
	for _, a := range res.Airings {
		if a.Channel != prog.Channels() {
			t.Fatalf("reserved airing on unexpected channel: %+v", a)
		}
	}
}
