package online

import (
	"errors"
	"fmt"
	"math"

	"tcsa/internal/core"
	"tcsa/internal/workload"
)

// admitted is the request stream bucketed by admission slot: request i of
// the stream becomes admissible at the start of slot ceil(arrival), and
// within a bucket requests keep their stream order (the counting sort is
// stable), so every float accumulation the policies perform has one fixed
// order regardless of how the stream was generated or sharded.
type admitted struct {
	page []int32   // page per request, bucket-major, stream order inside
	arr  []float64 // arrival per request, same order
	// start[b] .. start[b+1] index the requests of bucket b; len maxBucket+2.
	start []int32
	max   int // largest non-empty bucket, -1 when the stream is empty
}

// bucketOf is the admission slot of arrival a: the first integer slot at
// which an airing can serve it (float64(s) >= a).
func bucketOf(a float64) int {
	return int(ceilF(a))
}

// ceilF mirrors core's dependency-free ceiling for non-negative floats.
func ceilF(x float64) float64 {
	if x >= 1<<63 {
		return x
	}
	i := float64(int64(x))
	if i < x {
		return i + 1
	}
	return i
}

// admit drains the stream (serially — the decision pass is sequential
// anyway) and counting-sorts it by admission bucket, stable in stream
// order. Validation matches sim.MeasureParallel: pages in range, arrivals
// non-negative and finite.
func admit(stream workload.Stream, pages int) (*admitted, error) {
	n := stream.Count()
	ad := &admitted{
		page: make([]int32, n),
		arr:  make([]float64, n),
		max:  -1,
	}
	if n == 0 {
		ad.start = make([]int32, 2)
		return ad, nil
	}
	cur := stream.NewCursor()
	var r workload.Request
	// Pass 1: validate, find the bucket span.
	idx := 0
	for k := 0; k < stream.Shards(); k++ {
		cur.Seek(k)
		for cur.Next(&r) {
			if r.Page < 0 || int(r.Page) >= pages {
				return nil, fmt.Errorf("%w: request %d page %d", core.ErrPageRange, idx, r.Page)
			}
			if r.Arrival < 0 || math.IsInf(r.Arrival, 0) || math.IsNaN(r.Arrival) {
				return nil, fmt.Errorf("%w: request %d arrival %f", core.ErrSlotRange, idx, r.Arrival)
			}
			if b := bucketOf(r.Arrival); b > ad.max {
				ad.max = b
			}
			idx++
		}
	}
	ad.start = make([]int32, ad.max+2)
	// Pass 2: count per bucket.
	for k := 0; k < stream.Shards(); k++ {
		cur.Seek(k)
		for cur.Next(&r) {
			ad.start[bucketOf(r.Arrival)+1]++
		}
	}
	for b := 1; b < len(ad.start); b++ {
		ad.start[b] += ad.start[b-1]
	}
	// Pass 3: stable fill in stream order.
	fill := make([]int32, ad.max+1)
	copy(fill, ad.start[:ad.max+1])
	for k := 0; k < stream.Shards(); k++ {
		cur.Seek(k)
		for cur.Next(&r) {
			b := bucketOf(r.Arrival)
			ad.page[fill[b]] = int32(r.Page)
			ad.arr[fill[b]] = r.Arrival
			fill[b]++
		}
	}
	return ad, nil
}

// queue is the live per-page request queue of the decision pass. Per-page
// aggregates are exactly what the four policies need, maintained
// incrementally; the active list is swap-removed (order is irrelevant —
// every policy uses the strict (score, page ID) total order, so the argmin/
// argmax is a pure function of the aggregate values).
type queue struct {
	count  []int64   // waiting requests per page
	sumArr []float64 // sum of waiting arrivals (LWF), accumulated in admission order
	minArr []float64 // oldest waiting arrival (FCFS, steal threshold)
	minDL  []float64 // earliest waiting deadline arrival+t_page (EDF)
	pos    []int32   // index into active, -1 when page has no waiters
	active []core.PageID
	times  []float64 // per-page expected time (deadline window)
}

func newQueue(gs *core.GroupSet) *queue {
	n := gs.Pages()
	q := &queue{
		count:  make([]int64, n),
		sumArr: make([]float64, n),
		minArr: make([]float64, n),
		minDL:  make([]float64, n),
		pos:    make([]int32, n),
		times:  make([]float64, n),
	}
	for i := range q.pos {
		q.pos[i] = -1
		q.times[i] = float64(gs.TimeOf(core.PageID(i)))
	}
	return q
}

func (q *queue) admit(page int32, arr float64) {
	p := page
	if q.pos[p] < 0 {
		q.pos[p] = int32(len(q.active))
		q.active = append(q.active, core.PageID(p))
		q.count[p] = 1
		q.sumArr[p] = arr
		q.minArr[p] = arr
		q.minDL[p] = arr + q.times[p]
		return
	}
	q.count[p]++
	q.sumArr[p] += arr
	if arr < q.minArr[p] {
		q.minArr[p] = arr
	}
	if dl := arr + q.times[p]; dl < q.minDL[p] {
		q.minDL[p] = dl
	}
}

// clear removes every waiter of page and returns how many there were.
func (q *queue) clear(page core.PageID) int64 {
	n := q.count[page]
	q.count[page] = 0
	q.sumArr[page] = 0
	i := q.pos[page]
	last := len(q.active) - 1
	moved := q.active[last]
	q.active[i] = moved
	q.pos[moved] = i
	q.active = q.active[:last]
	q.pos[page] = -1
	return n
}

// oldest returns the oldest waiting arrival across all pages (+Inf when
// the queue is empty): the steal-threshold trigger.
func (q *queue) oldest() float64 {
	old := math.Inf(1)
	for _, p := range q.active {
		if q.minArr[p] < old {
			old = q.minArr[p]
		}
	}
	return old
}

// pick returns the page the policy airs at instant now, or (None, false)
// when no page is waiting. Ties break toward the smaller page ID, making
// the choice a pure function of the aggregates — both the engine (swap-
// removed active order) and the serial reference (ascending page scan)
// land on the same page.
func (q *queue) pick(policy Policy, now float64) (core.PageID, bool) {
	if len(q.active) == 0 {
		return core.None, false
	}
	best := q.active[0]
	switch policy {
	case LWF:
		// Aggregate waiting time of page p is count*now - sum(arrivals):
		// one multiply keeps the float arithmetic identical no matter when
		// the score is evaluated.
		bv := float64(q.count[best])*now - q.sumArr[best]
		for _, p := range q.active[1:] {
			v := float64(q.count[p])*now - q.sumArr[p]
			if v > bv || (v == bv && p < best) {
				best, bv = p, v
			}
		}
	case MRF:
		bv := q.count[best]
		for _, p := range q.active[1:] {
			v := q.count[p]
			if v > bv || (v == bv && p < best) {
				best, bv = p, v
			}
		}
	case EDF:
		bv := q.minDL[best]
		for _, p := range q.active[1:] {
			v := q.minDL[p]
			if v < bv || (v == bv && p < best) {
				best, bv = p, v
			}
		}
	default: // FCFS
		bv := q.minArr[best]
		for _, p := range q.active[1:] {
			v := q.minArr[p]
			if v < bv || (v == bv && p < best) {
				best, bv = p, v
			}
		}
	}
	return best, true
}

// schedule is the decision pass: it replays the slot clock, admits each
// arrival bucket, lets scheduled push airings clear their waiters first
// (push owns its grid under every split — filled cells are never
// preempted), then fills the online-owned channels from the policy. The
// airing log it returns fixes the complete timeline; measurement is a
// separate, shardable pass over that log.
func schedule(prog *core.Program, ad *admitted, cfg Config) ([]Airing, int, int, error) {
	L := prog.Length()
	pushRows := prog.Channels()
	onlineFrom, onlineTo := pushRows, pushRows // online channel range per slot
	switch cfg.Split.Mode {
	case SplitReserved:
		onlineTo = pushRows + cfg.Split.OnlineChannels
	case SplitPureOnline:
		onlineFrom, onlineTo = 0, pushRows
		pushRows = 0
	case SplitSteal:
		// No static online rows: steals are decided per slot below.
	}

	maxSlots := cfg.MaxSlots
	if maxSlots <= 0 {
		// Safety net, not a tight bound: last admission plus full drain
		// slack. Reserved/pure modes clear at least one waiting page per
		// slot, so pages+2L covers them; steal mode additionally waits out
		// its threshold (capped — a practically-infinite threshold should
		// fail fast, not crawl).
		slack := float64(ad.max) + 2*float64(L) + float64(len(ad.page)) + float64(prog.GroupSet().Pages()) + 16
		if cfg.Split.Mode == SplitSteal {
			t := cfg.Split.StealThreshold
			if t > 1<<20 {
				t = 1 << 20
			}
			slack += t
		}
		maxSlots = int(slack)
	}

	q := newQueue(prog.GroupSet())
	pending := len(ad.page)
	nextAdmit := 0
	var airings []Airing
	stolen := 0
	horizon := 0

	for s := 0; ; s++ {
		if pending == 0 && nextAdmit >= len(ad.page) {
			break
		}
		if s >= maxSlots {
			return nil, 0, 0, fmt.Errorf("online: %d requests still pending at slot bound %d (split %s cannot serve them?)",
				pending, maxSlots, cfg.Split)
		}
		// Admit this slot's arrival bucket.
		if s <= ad.max {
			for i := ad.start[s]; i < ad.start[s+1]; i++ {
				q.admit(ad.page[i], ad.arr[i])
			}
			nextAdmit = int(ad.start[s+1])
		}
		if len(q.active) == 0 {
			// Nothing waiting: neither tier interacts with the queue, so
			// jump the clock to the next arrival bucket.
			if nextAdmit >= len(ad.page) {
				break
			}
			if nb := bucketOf(ad.arr[nextAdmit]); nb > s+1 {
				s = nb - 1
			}
			continue
		}
		horizon = s + 1
		now := float64(s)
		// Push-owned cells first: a page the push program airs this slot
		// clears its waiters before any online pick, so the online tier
		// never duplicates a push airing within a slot.
		for ch := 0; ch < pushRows; ch++ {
			if page := prog.AtAbs(ch, s); page != core.None && q.pos[page] >= 0 {
				pending -= int(q.clear(page))
			}
		}
		// Online-owned channels: reserved channels (appended after the push
		// rows) or, in pure mode, the whole grid.
		for ch := onlineFrom; ch < onlineTo; ch++ {
			page, ok := q.pick(cfg.Policy, now)
			if !ok {
				break
			}
			airings = append(airings, Airing{Slot: s, Channel: ch, Page: page})
			pending -= int(q.clear(page))
		}
		// Stolen cells: the push grid's empty cells, claimed only while the
		// oldest waiter has aged past the threshold. Clearing can only raise
		// the oldest-arrival watermark, so once the trigger fails it stays
		// failed for the rest of the slot.
		if cfg.Split.Mode == SplitSteal {
			col := prog.Column(s)
			for ch := 0; ch < pushRows; ch++ {
				if prog.At(ch, col) != core.None {
					continue
				}
				if now-q.oldest() < cfg.Split.StealThreshold {
					break
				}
				page, ok := q.pick(cfg.Policy, now)
				if !ok {
					break
				}
				airings = append(airings, Airing{Slot: s, Channel: ch, Page: page})
				stolen++
				pending -= int(q.clear(page))
			}
		}
	}
	return airings, stolen, horizon, nil
}

// Run executes the online tier: the serial decision pass fixes the airing
// timeline, then the sharded measurement pass (bit-identical at any worker
// count) computes every request's flow time against the combined
// push+online timeline. See RunSerial for the one-pass reference this is
// differentially pinned against.
func Run(prog *core.Program, stream workload.Stream, cfg Config) (*Result, error) {
	if prog == nil {
		return nil, errors.New("online: nil program")
	}
	if stream == nil {
		return nil, errors.New("online: nil stream")
	}
	if err := cfg.Split.validate(); err != nil {
		return nil, err
	}
	if cfg.Policy < LWF || cfg.Policy > FCFS {
		return nil, fmt.Errorf("online: unknown policy %d", int(cfg.Policy))
	}
	ad, err := admit(stream, prog.GroupSet().Pages())
	if err != nil {
		return nil, err
	}
	airings, stolen, horizon, err := schedule(prog, ad, cfg)
	if err != nil {
		return nil, err
	}
	res, err := measure(prog, stream, airings, cfg)
	if err != nil {
		return nil, err
	}
	res.OnlineAirings = len(airings)
	res.StolenSlots = stolen
	res.HorizonSlots = horizon
	res.Airings = airings
	return res, nil
}
