package online

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"tcsa/internal/core"
	"tcsa/internal/stats"
	"tcsa/internal/workload"
)

// RunSerial is the retained reference implementation of Run: one
// goroutine, explicit per-page waiting lists instead of incremental
// aggregates, policy scores recomputed from scratch at every decision, and
// flow times taken directly from the clearing instants of its own event
// replay rather than reconstructed from the airing log. The differential
// and fuzz suites pin Run against it bit for bit — every float, every
// digest — at any worker count.
func RunSerial(prog *core.Program, stream workload.Stream, cfg Config) (*Result, error) {
	if prog == nil {
		return nil, errors.New("online: nil program")
	}
	if stream == nil {
		return nil, errors.New("online: nil stream")
	}
	if err := cfg.Split.validate(); err != nil {
		return nil, err
	}
	if cfg.Policy < LWF || cfg.Policy > FCFS {
		return nil, fmt.Errorf("online: unknown policy %d", int(cfg.Policy))
	}

	gs := prog.GroupSet()
	pages := gs.Pages()
	n := stream.Count()

	// Materialise the stream in its original order.
	type sreq struct {
		page core.PageID
		arr  float64
		idx  int
	}
	reqs := make([]sreq, 0, n)
	cur := stream.NewCursor()
	var r workload.Request
	for k := 0; k < stream.Shards(); k++ {
		cur.Seek(k)
		for cur.Next(&r) {
			i := len(reqs)
			if r.Page < 0 || int(r.Page) >= pages {
				return nil, fmt.Errorf("%w: request %d page %d", core.ErrPageRange, i, r.Page)
			}
			if r.Arrival < 0 || math.IsInf(r.Arrival, 0) || math.IsNaN(r.Arrival) {
				return nil, fmt.Errorf("%w: request %d arrival %f", core.ErrSlotRange, i, r.Arrival)
			}
			reqs = append(reqs, sreq{page: r.Page, arr: r.Arrival, idx: i})
		}
	}

	// Admission order: by admission slot, stream order inside a slot — the
	// same order the engine's stable counting sort produces, reached here
	// through a stable comparison sort instead.
	order := make([]sreq, len(reqs))
	copy(order, reqs)
	sort.SliceStable(order, func(i, j int) bool {
		return bucketOf(order[i].arr) < bucketOf(order[j].arr)
	})
	maxBucket := -1
	if len(order) > 0 {
		maxBucket = bucketOf(order[len(order)-1].arr)
	}

	L := prog.Length()
	pushRows := prog.Channels()
	onlineFrom, onlineTo := pushRows, pushRows
	switch cfg.Split.Mode {
	case SplitReserved:
		onlineTo = pushRows + cfg.Split.OnlineChannels
	case SplitPureOnline:
		onlineFrom, onlineTo = 0, pushRows
		pushRows = 0
	case SplitSteal:
		// No static online rows: steals are decided per slot below.
	}

	maxSlots := cfg.MaxSlots
	if maxSlots <= 0 {
		slack := float64(maxBucket) + 2*float64(L) + float64(n) + float64(pages) + 16
		if cfg.Split.Mode == SplitSteal {
			t := cfg.Split.StealThreshold
			if t > 1<<20 {
				t = 1 << 20
			}
			slack += t
		}
		maxSlots = int(slack)
	}

	// waiting[p] is page p's live request list, insertion-ordered.
	waiting := make([][]sreq, pages)
	times := make([]float64, pages)
	for i := range times {
		times[i] = float64(gs.TimeOf(core.PageID(i)))
	}

	flows := make([]float64, n)
	servedOn := make([]bool, n)
	var airings []Airing
	pending := n
	next := 0
	stolen := 0
	horizon := 0

	// clear serves page p's whole waiting list at slot s.
	clear := func(p core.PageID, s int, online bool) {
		for _, q := range waiting[p] {
			flows[q.idx] = float64(s) - q.arr
			servedOn[q.idx] = online
			pending--
		}
		waiting[p] = waiting[p][:0]
	}
	// anyWaiting scans every page — no shortcut state to go wrong.
	anyWaiting := func() bool {
		for p := 0; p < pages; p++ {
			if len(waiting[p]) > 0 {
				return true
			}
		}
		return false
	}
	oldest := func() float64 {
		old := math.Inf(1)
		for p := 0; p < pages; p++ {
			for _, q := range waiting[p] {
				if q.arr < old {
					old = q.arr
				}
			}
		}
		return old
	}
	// pick scans pages in ascending ID order, recomputing each score from
	// the list. The (score, page ID) tie-break is a strict total order, so
	// this lands on the same page as the engine's aggregate-based scan.
	pick := func(now float64) (core.PageID, bool) {
		best := core.None
		var bv float64
		for p := 0; p < pages; p++ {
			w := waiting[p]
			if len(w) == 0 {
				continue
			}
			var v float64
			switch cfg.Policy {
			case LWF:
				// Same formula and accumulation order as the engine:
				// count*now minus the left-to-right arrival sum.
				var sum float64
				for _, q := range w {
					sum += q.arr
				}
				v = float64(len(w))*now - sum
			case MRF:
				v = float64(len(w))
			case EDF:
				v = math.Inf(1)
				for _, q := range w {
					if dl := q.arr + times[p]; dl < v {
						v = dl
					}
				}
				v = -v // minimise
			default: // FCFS
				v = math.Inf(1)
				for _, q := range w {
					if q.arr < v {
						v = q.arr
					}
				}
				v = -v // minimise
			}
			if best == core.None || v > bv {
				best, bv = core.PageID(p), v
			}
		}
		return best, best != core.None
	}

	for s := 0; ; s++ {
		if pending == 0 && next >= len(order) {
			break
		}
		if s >= maxSlots {
			return nil, fmt.Errorf("online: %d requests still pending at slot bound %d (split %s cannot serve them?)",
				pending, maxSlots, cfg.Split)
		}
		for next < len(order) && bucketOf(order[next].arr) == s {
			q := order[next]
			waiting[q.page] = append(waiting[q.page], q)
			next++
		}
		if !anyWaiting() {
			if next >= len(order) {
				break
			}
			// Fast-forward to the next admission slot (the engine's jump).
			if nb := bucketOf(order[next].arr); nb > s+1 {
				s = nb - 1
			}
			continue
		}
		horizon = s + 1
		now := float64(s)
		for ch := 0; ch < pushRows; ch++ {
			if page := prog.AtAbs(ch, s); page != core.None && len(waiting[page]) > 0 {
				clear(page, s, false)
			}
		}
		for ch := onlineFrom; ch < onlineTo; ch++ {
			page, ok := pick(now)
			if !ok {
				break
			}
			airings = append(airings, Airing{Slot: s, Channel: ch, Page: page})
			clear(page, s, true)
		}
		if cfg.Split.Mode == SplitSteal {
			col := prog.Column(s)
			for ch := 0; ch < pushRows; ch++ {
				if prog.At(ch, col) != core.None {
					continue
				}
				if now-oldest() < cfg.Split.StealThreshold {
					break
				}
				page, ok := pick(now)
				if !ok {
					break
				}
				airings = append(airings, Airing{Slot: s, Channel: ch, Page: page})
				stolen++
				clear(page, s, true)
			}
		}
	}

	pageOf := make([]core.PageID, n)
	for i := range reqs {
		pageOf[i] = reqs[i].page
	}
	res, err := summarizeSerial(pageOf, flows, servedOn, times, float64(L))
	if err != nil {
		return nil, err
	}
	res.Requests = n
	res.OnlineAirings = len(airings)
	res.StolenSlots = stolen
	res.HorizonSlots = horizon
	res.Airings = airings
	if cfg.RecordFlows {
		res.Flows = flows
		res.ServedOnline = servedOn
	}
	return res, nil
}

// summarizeSerial folds per-request outcomes exactly the way the parallel
// measurement pass does — per-shard left-to-right sums and Welford moments
// merged in ascending shard order, one sketch, per-shard FNV digests folded
// in shard order — so a bit-identical Result is the expected outcome, not a
// lucky one.
func summarizeSerial(pageOf []core.PageID, flows []float64, servedOn []bool, times []float64, L float64) (*Result, error) {
	n := len(flows)
	res := &Result{}
	if n == 0 {
		return res, nil
	}
	fs, err1 := stats.NewSketch(L/(1<<20), flowSketchSpan*L, sketchQuantileAccuracy)
	ds, err2 := stats.NewSketch(dfSketchLo, dfSketchHi, sketchQuantileAccuracy)
	if err1 != nil || err2 != nil {
		return nil, errors.Join(err1, err2)
	}
	var flow, df stats.Online
	var flowSum, dfSum float64
	onlineServed := 0
	digest := fnvOffset
	for start := 0; start < n; start += workload.ShardSize {
		end := start + workload.ShardSize
		if end > n {
			end = n
		}
		var cflow, cdf stats.Online
		var cflowSum, cdfSum float64
		d := fnvOffset
		for i := start; i < end; i++ {
			f := flows[i]
			v := f / times[pageOf[i]]
			if v < 1 {
				v = 1
			}
			cflow.Add(f)
			cdf.Add(v)
			cflowSum += f
			cdfSum += v
			fs.Add(f)
			ds.Add(v)
			d = fnv64(d, uint64(uint32(pageOf[i])))
			d = fnv64(d, math.Float64bits(f))
			served := uint64(0)
			if servedOn[i] {
				served = 1
				onlineServed++
			}
			d = fnv64(d, served)
		}
		flow.Merge(cflow)
		df.Merge(cdf)
		flowSum += cflowSum
		dfSum += cdfSum
		digest = fnv64(digest, d)
	}
	res.OnlineServed = onlineServed
	res.PushServed = n - onlineServed
	res.AvgFlow = flowSum / float64(n)
	res.MaxFlow = flow.Max()
	res.AvgDelayFactor = dfSum / float64(n)
	res.MaxDelayFactor = df.Max()
	res.Flow = summaryOf(flow, fs)
	res.DelayFactor = summaryOf(df, ds)
	res.TraceDigest = digest
	return res, nil
}
