// Package online is the slot-level online broadcast scheduler of the
// hybrid pull/push tier: a live request queue competing with the static
// push program (SUSC/PAMAD) for broadcast slots.
//
// The paper's model is pure push — every page airs on a fixed cyclic
// program — but its Section 1 motivation is the hybrid dynamic: impatient
// clients defect to an on-demand uplink, and "too many such actions could
// seriously congest the on-demand channels". This package gives those
// defectors (and any other request-driven workload) a real online
// scheduler instead of a detached queueing model: requests wait in a
// per-page queue, and at every slot the online tier may air the page a
// pluggable policy selects, clearing *all* waiting requests for it at once
// (the broadcast clearing model of the online scheduling literature).
//
// Policies are the principled baselines from that literature: Longest
// Wait First (Chekuri–Im–Moseley, "Longest Wait First for Broadcast
// Scheduling"), Most Requests First, Earliest Deadline First and FCFS.
// Performance is measured the way those papers measure it — per-request
// flow time (serve instant minus arrival), max flow time (Im–Sviridenko)
// and delay factor (flow over the page's expected-time window, floored at
// 1) — folded into mergeable stats.Sketches that are bit-identical at any
// worker or shard count.
//
// The split between the tiers is configurable (Split): reserved online
// channels appended to the push program, threshold-triggered stealing of
// the push grid's empty cells, or a pure online system. No split mode ever
// preempts a filled push cell, so the push tier's Section 3.1 validity
// guarantee survives every split as aired — the property the
// conformance.PushIntegrity oracle checks.
//
// Run is the production path: a serial slot-level decision pass (the
// scheduling itself is inherently sequential) followed by a sharded
// parallel measurement pass over the then-fixed airing timeline, exactly
// the sim.MeasureStream worker discipline. RunSerial is the retained
// one-pass reference implementation the differential and fuzz suites pin
// Run against, bit for bit.
//
//lint:deterministic bit-identical replay contract: no wall clock, no global RNG, no map-order folds
package online

import (
	"fmt"
	"math"

	"tcsa/internal/core"
	"tcsa/internal/stats"
)

// Policy selects which waiting page the online tier airs when it owns a
// slot. All policies break ties toward the smaller page ID, so the
// selection is a pure function of the queue state.
type Policy int

const (
	// LWF airs the page with the largest aggregate waiting time — the sum
	// over its waiting requests of (now - arrival). The Longest Wait First
	// policy of Chekuri–Im–Moseley, O(1)-competitive for total flow time.
	LWF Policy = iota
	// MRF airs the page with the most waiting requests (Most Requests
	// First), the classic throughput-greedy broadcast policy.
	MRF
	// EDF airs the page whose waiting requests contain the earliest
	// deadline (arrival + expected time).
	EDF
	// FCFS airs the page holding the oldest waiting request.
	FCFS
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case LWF:
		return "lwf"
	case MRF:
		return "mrf"
	case EDF:
		return "edf"
	case FCFS:
		return "fcfs"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// ParsePolicy maps "lwf", "mrf", "edf", "fcfs" to a Policy.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "lwf":
		return LWF, nil
	case "mrf":
		return MRF, nil
	case "edf":
		return EDF, nil
	case "fcfs":
		return FCFS, nil
	default:
		return 0, fmt.Errorf("online: unknown policy %q", s)
	}
}

// Policies lists every policy, in declaration order.
func Policies() []Policy { return []Policy{LWF, MRF, EDF, FCFS} }

// SplitMode selects how the online tier obtains broadcast slots.
type SplitMode int

const (
	// SplitReserved appends Split.OnlineChannels dedicated online channels
	// after the push program's rows: the push tier keeps every one of its
	// slots, the online tier owns the reserved channels outright.
	SplitReserved SplitMode = iota
	// SplitSteal gives the online tier the push grid's *empty* cells
	// (spill slots, t_major rounding slack), claimed only while the oldest
	// waiting request has waited at least Split.StealThreshold slots.
	// Filled push cells are never preempted.
	SplitSteal
	// SplitPureOnline drives every channel from the online policy; the
	// push program contributes no airings (it still defines the instance,
	// the channel count and the cycle length).
	SplitPureOnline
)

// String implements fmt.Stringer.
func (m SplitMode) String() string {
	switch m {
	case SplitReserved:
		return "reserved"
	case SplitSteal:
		return "steal"
	case SplitPureOnline:
		return "pure"
	default:
		return fmt.Sprintf("SplitMode(%d)", int(m))
	}
}

// Split configures the pull/push slot competition.
type Split struct {
	Mode SplitMode
	// OnlineChannels is the reserved-channel quota (SplitReserved only);
	// must be >= 1 in that mode.
	OnlineChannels int
	// StealThreshold is the wait (slots) of the oldest queued request
	// beyond which the online tier claims empty push cells (SplitSteal
	// only); 0 steals every empty cell, +Inf never steals.
	StealThreshold float64
}

// ParseSplit maps "reserved:K", "steal:T" and "pure" to a Split
// ("reserved" alone defaults to one channel, "steal" to threshold 0).
func ParseSplit(s string) (Split, error) {
	var k int
	var t float64
	switch {
	case s == "pure":
		return Split{Mode: SplitPureOnline}, nil
	case s == "reserved":
		return Split{Mode: SplitReserved, OnlineChannels: 1}, nil
	case s == "steal":
		return Split{Mode: SplitSteal}, nil
	default:
		if n, err := fmt.Sscanf(s, "reserved:%d", &k); err == nil && n == 1 {
			return Split{Mode: SplitReserved, OnlineChannels: k}, nil
		}
		if n, err := fmt.Sscanf(s, "steal:%g", &t); err == nil && n == 1 {
			return Split{Mode: SplitSteal, StealThreshold: t}, nil
		}
		return Split{}, fmt.Errorf("online: unknown split %q (want reserved[:K], steal[:T] or pure)", s)
	}
}

// String renders the split in ParseSplit syntax.
func (s Split) String() string {
	switch s.Mode {
	case SplitReserved:
		return fmt.Sprintf("reserved:%d", s.OnlineChannels)
	case SplitSteal:
		return fmt.Sprintf("steal:%g", s.StealThreshold)
	default:
		return s.Mode.String()
	}
}

// validate checks the split parameters.
func (s Split) validate() error {
	switch s.Mode {
	case SplitReserved:
		if s.OnlineChannels < 1 {
			return fmt.Errorf("online: reserved split needs >= 1 online channel, got %d", s.OnlineChannels)
		}
	case SplitSteal:
		if s.StealThreshold < 0 || math.IsNaN(s.StealThreshold) {
			return fmt.Errorf("online: steal threshold %f", s.StealThreshold)
		}
	case SplitPureOnline:
		// no parameters
	default:
		return fmt.Errorf("online: unknown split mode %d", int(s.Mode))
	}
	return nil
}

// Config parameterises a run of the online tier.
type Config struct {
	// Policy selects the slot-competition policy; default LWF.
	Policy Policy
	// Split selects the pull/push slot split; default reserved with one
	// online channel.
	Split Split
	// Workers shards the measurement pass; <= 0 uses GOMAXPROCS. The
	// result is bit-identical at any worker count.
	Workers int
	// MaxSlots bounds the decision pass as a safety net; 0 derives a bound
	// from the workload (last arrival + drain slack). Requests the split
	// can never serve (e.g. a spilled page under an infinite steal
	// threshold) make Run fail at this bound instead of looping.
	MaxSlots int
	// RecordFlows retains the per-request flow times (and serving tier) in
	// the Result, indexed by request position in the stream. Off by
	// default: the sketches make the result O(1) in the request count.
	RecordFlows bool
}

// Airing is one slot the online tier aired: at absolute slot Slot, channel
// Channel carried page Page. Push airings are not logged — they are the
// program grid itself.
type Airing struct {
	Slot    int
	Channel int
	Page    core.PageID
}

// Result is the outcome of one online-tier run.
type Result struct {
	// Requests is the stream size; PushServed + OnlineServed == Requests.
	Requests     int
	PushServed   int // requests cleared by a scheduled push airing
	OnlineServed int // requests cleared by an online airing

	// OnlineAirings is the number of slots the online tier aired
	// (== len(Airings)); StolenSlots counts the SplitSteal subset.
	OnlineAirings int
	StolenSlots   int
	// HorizonSlots is the number of slots the decision pass replayed.
	HorizonSlots int

	// AvgFlow / MaxFlow are the mean and maximum per-request flow time
	// (serve instant - arrival, in slots); exact.
	AvgFlow float64
	MaxFlow float64
	// AvgDelayFactor / MaxDelayFactor summarise max(1, flow / t_page),
	// the delay-factor objective of the online broadcast literature.
	AvgDelayFactor float64
	MaxDelayFactor float64

	// Flow and DelayFactor carry the full profiles: moment fields exact,
	// quantiles stats.Sketch estimates (~1%), identical at any worker
	// count.
	Flow        stats.Summary
	DelayFactor stats.Summary

	// TraceDigest fingerprints every per-request outcome (page, flow
	// bits, serving tier) in shard order; bit-identical at any worker
	// count.
	TraceDigest uint64

	// Airings is the online airing log, in (slot, channel) order.
	Airings []Airing

	// Flows / ServedOnline are per-request records, present only when
	// Config.RecordFlows was set.
	Flows        []float64
	ServedOnline []bool
}

// flowSketchSpan is the sketch range multiplier: flows up to
// flowSketchSpan cycles resolve to ~1% buckets, larger flows clamp into
// the top bucket (the exact Max is carried separately).
const flowSketchSpan = 64

// Delay-factor sketch range: factors are >= 1 by definition, so lo = 0.5
// keeps them out of the sketch's zero bucket; factors beyond dfSketchHi
// clamp into the top bucket.
const (
	dfSketchLo = 0.5
	dfSketchHi = 4096
)

// sketchQuantileAccuracy mirrors sim.MeasureStream's bucket width.
const sketchQuantileAccuracy = 0.01

// FNV-1a 64-bit folding, the repo's standard trace-digest construction
// (same as chaos.TraceDigest).
const (
	fnvOffset uint64 = 0xcbf29ce484222325
	fnvPrime  uint64 = 0x100000001b3
)

func fnv64(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h = (h ^ uint64(byte(v>>(8*i)))) * fnvPrime
	}
	return h
}
