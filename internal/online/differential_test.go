package online

import (
	"testing"

	"tcsa/internal/pamad"
	"tcsa/internal/susc"
	"tcsa/internal/workload"
)

// assertResultsEqual compares two Results bit for bit: every moment, every
// sketch-derived quantile, the digest, the airing log, and (when recorded)
// every per-request flow.
func assertResultsEqual(t *testing.T, label string, a, b *Result) {
	t.Helper()
	if a.Requests != b.Requests || a.PushServed != b.PushServed || a.OnlineServed != b.OnlineServed {
		t.Fatalf("%s: served counts differ: %d/%d/%d vs %d/%d/%d", label,
			a.Requests, a.PushServed, a.OnlineServed, b.Requests, b.PushServed, b.OnlineServed)
	}
	if a.OnlineAirings != b.OnlineAirings || a.StolenSlots != b.StolenSlots || a.HorizonSlots != b.HorizonSlots {
		t.Fatalf("%s: airing counts differ: %d/%d/%d vs %d/%d/%d", label,
			a.OnlineAirings, a.StolenSlots, a.HorizonSlots, b.OnlineAirings, b.StolenSlots, b.HorizonSlots)
	}
	if a.AvgFlow != b.AvgFlow || a.MaxFlow != b.MaxFlow ||
		a.AvgDelayFactor != b.AvgDelayFactor || a.MaxDelayFactor != b.MaxDelayFactor {
		t.Fatalf("%s: scalar metrics differ:\n%+v\n%+v", label, a, b)
	}
	if a.Flow != b.Flow {
		t.Fatalf("%s: flow summaries differ:\n%+v\n%+v", label, a.Flow, b.Flow)
	}
	if a.DelayFactor != b.DelayFactor {
		t.Fatalf("%s: delay-factor summaries differ:\n%+v\n%+v", label, a.DelayFactor, b.DelayFactor)
	}
	if a.TraceDigest != b.TraceDigest {
		t.Fatalf("%s: trace digests differ: %016x vs %016x", label, a.TraceDigest, b.TraceDigest)
	}
	if len(a.Airings) != len(b.Airings) {
		t.Fatalf("%s: airing logs differ in length: %d vs %d", label, len(a.Airings), len(b.Airings))
	}
	for i := range a.Airings {
		if a.Airings[i] != b.Airings[i] {
			t.Fatalf("%s: airing %d differs: %+v vs %+v", label, i, a.Airings[i], b.Airings[i])
		}
	}
	if len(a.Flows) != len(b.Flows) {
		t.Fatalf("%s: flow records differ in length: %d vs %d", label, len(a.Flows), len(b.Flows))
	}
	for i := range a.Flows {
		if a.Flows[i] != b.Flows[i] || a.ServedOnline[i] != b.ServedOnline[i] {
			t.Fatalf("%s: request %d differs: flow %g/%v vs %g/%v", label, i,
				a.Flows[i], a.ServedOnline[i], b.Flows[i], b.ServedOnline[i])
		}
	}
}

// TestDifferentialSerialVsParallel is the tentpole's bit-identity gate:
// for every policy, every split mode, and three stream families, the
// production Run at worker counts 1/4/8/32 must equal the retained serial
// reference in every float, digest and airing.
func TestDifferentialSerialVsParallel(t *testing.T) {
	gs, err := workload.GroupSet(workload.Uniform, 3, 36, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	prog, _, err := pamad.Build(gs, 4) // scarce enough that both tiers work
	if err != nil {
		t.Fatal(err)
	}
	prog.Clear(0, 0) // one empty cell for the steal split
	uniform, err := workload.NewStream(gs, prog.Length(), workload.RequestConfig{Count: 900, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	zipf, err := workload.NewStream(gs, prog.Length(), workload.RequestConfig{
		Count: 900, Choice: workload.ZipfPages, Theta: 0.9, Seed: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	poisson, err := workload.NewPoissonStream(gs, workload.PoissonConfig{
		RequestConfig: workload.RequestConfig{Count: 900, Seed: 13},
		Rate:          6,
	})
	if err != nil {
		t.Fatal(err)
	}
	streams := map[string]workload.Stream{"uniform": uniform, "zipf": zipf, "poisson": poisson}
	splits := []Split{
		{Mode: SplitReserved, OnlineChannels: 2},
		{Mode: SplitSteal, StealThreshold: 2},
		{Mode: SplitPureOnline},
	}
	for name, stream := range streams {
		for _, policy := range Policies() {
			for _, split := range splits {
				cfg := Config{Policy: policy, Split: split, RecordFlows: true, MaxSlots: 100000}
				ref, err := RunSerial(prog, stream, cfg)
				if err != nil {
					t.Fatalf("%s/%v/%v: reference: %v", name, policy, split, err)
				}
				for _, workers := range []int{1, 4, 8, 32} {
					cfg.Workers = workers
					got, err := Run(prog, stream, cfg)
					if err != nil {
						t.Fatalf("%s/%v/%v/w%d: %v", name, policy, split, workers, err)
					}
					label := name + "/" + policy.String() + "/" + split.String() + "/w" + string(rune('0'+workers%10))
					assertResultsEqual(t, label, ref, got)
				}
			}
		}
	}
}

// TestDifferentialMultiShard exercises genuine multi-shard parallelism:
// 150k Poisson requests span three workload.ShardSize shards, so workers
// actually race over the shard counter and the fold order matters.
func TestDifferentialMultiShard(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-shard differential is a few seconds")
	}
	gs, err := workload.GroupSet(workload.Uniform, 2, 24, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := susc.Build(gs, gs.MinChannels())
	if err != nil {
		t.Fatal(err)
	}
	stream, err := workload.NewPoissonStream(gs, workload.PoissonConfig{
		RequestConfig: workload.RequestConfig{Count: 150_000, Seed: 21},
		Rate:          60,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Policy: LWF, Split: Split{Mode: SplitReserved, OnlineChannels: 1}}
	ref, err := RunSerial(prog, stream, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 3, 8} {
		cfg.Workers = workers
		got, err := Run(prog, stream, cfg)
		if err != nil {
			t.Fatalf("workers %d: %v", workers, err)
		}
		assertResultsEqual(t, "multi-shard", ref, got)
	}
	if ref.Requests != 150_000 || ref.PushServed+ref.OnlineServed != ref.Requests {
		t.Fatalf("conservation: %+v", ref)
	}
}

// TestRecordFlowsOptional: withholding RecordFlows must not change any
// metric, only drop the per-request arrays.
func TestRecordFlowsOptional(t *testing.T) {
	gs, err := workload.GroupSet(workload.Uniform, 2, 12, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := susc.Build(gs, gs.MinChannels())
	if err != nil {
		t.Fatal(err)
	}
	stream, err := workload.NewStream(gs, prog.Length(), workload.RequestConfig{Count: 300, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Policy: MRF, Split: Split{Mode: SplitReserved, OnlineChannels: 1}}
	bare, err := Run(prog, stream, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.RecordFlows = true
	full, err := Run(prog, stream, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if bare.Flows != nil || bare.ServedOnline != nil {
		t.Fatal("per-request records present without RecordFlows")
	}
	if len(full.Flows) != 300 || len(full.ServedOnline) != 300 {
		t.Fatalf("per-request records missing: %d/%d", len(full.Flows), len(full.ServedOnline))
	}
	if bare.TraceDigest != full.TraceDigest || bare.Flow != full.Flow || bare.AvgFlow != full.AvgFlow {
		t.Fatal("RecordFlows changed the metrics")
	}
}
