package online

import (
	"math/rand"
	"testing"

	"tcsa/internal/conformance"
	"tcsa/internal/core"
	"tcsa/internal/pamad"
	"tcsa/internal/workload"
)

// FuzzOnlineEquivalence drives random request interleavings through every
// knob of the online tier — policy, split mode, split parameter, worker
// count — and asserts the two load-bearing contracts at once: the sharded
// parallel path is bit-identical to the serial reference, and the outcome
// passes the brute-force conservation and push-integrity oracles.
func FuzzOnlineEquivalence(f *testing.F) {
	f.Add(int64(1), uint8(40), uint8(0), uint8(0), uint8(1), uint8(1))
	f.Add(int64(2), uint8(90), uint8(1), uint8(1), uint8(3), uint8(4))
	f.Add(int64(3), uint8(17), uint8(2), uint8(2), uint8(0), uint8(8))
	f.Add(int64(4), uint8(255), uint8(3), uint8(1), uint8(0), uint8(2))
	f.Fuzz(func(t *testing.T, seed int64, count, policyB, modeB, param, workersB uint8) {
		gs, err := workload.GroupSet(workload.Uniform, 2, 12, 4, 2)
		if err != nil {
			t.Fatal(err)
		}
		prog, _, err := pamad.Build(gs, 2) // scarce: spill makes both tiers matter
		if err != nil {
			t.Fatal(err)
		}
		prog.Clear(0, 0) // empty cell so steal splits terminate
		policy := Policy(int(policyB) % len(Policies()))
		var split Split
		switch modeB % 3 {
		case 0:
			split = Split{Mode: SplitReserved, OnlineChannels: 1 + int(param)%3}
		case 1:
			split = Split{Mode: SplitSteal, StealThreshold: float64(int(param) % 12)}
		default:
			split = Split{Mode: SplitPureOnline}
		}
		rng := rand.New(rand.NewSource(seed))
		n := int(count)
		pages := make([]core.PageID, n)
		arrivals := make([]float64, n)
		reqs := make([]workload.Request, n)
		for i := 0; i < n; i++ {
			pages[i] = core.PageID(rng.Intn(gs.Pages()))
			arrivals[i] = rng.Float64() * 64
			reqs[i] = workload.Request{Page: pages[i], Arrival: arrivals[i]}
		}
		stream := workload.SliceStream(reqs)
		cfg := Config{Policy: policy, Split: split, RecordFlows: true, MaxSlots: 20000}
		ref, refErr := RunSerial(prog, stream, cfg)
		cfg.Workers = 1 + int(workersB)%8
		got, gotErr := Run(prog, stream, cfg)
		if (refErr == nil) != (gotErr == nil) {
			t.Fatalf("error disagreement: serial %v, parallel %v", refErr, gotErr)
		}
		if refErr != nil {
			return // both failed identically (e.g. unservable split) — fine
		}
		assertResultsEqual(t, "fuzz", ref, got)
		rows := pushRowsOf(prog, split)
		air := toSlotAirings(got.Airings)
		if err := conformance.OnlineConservation(prog, rows, air, pages, arrivals, got.Flows); err != nil {
			t.Fatal(err)
		}
		if err := conformance.PushIntegrity(prog, rows, air); err != nil {
			t.Fatal(err)
		}
		if got.PushServed+got.OnlineServed != got.Requests {
			t.Fatalf("conservation: %+v", got)
		}
	})
}
