package adaptive

import (
	"fmt"

	"tcsa/internal/core"
)

// TransitionReport quantifies what clients experience across an epoch
// switch. The controller publishes epochs at cycle boundaries: the old
// program runs to the end of its current cycle, then the new program
// starts at phase zero. A client that tuned in during the final old cycle
// and was not served before the boundary re-plans on the new schedule —
// its item may have moved to a different PageID, channel and phase.
type TransitionReport struct {
	// AvgSpliceWait is the expected wait of a client arriving uniformly in
	// the final old cycle, served either by the old program (before the
	// boundary) or by the new one (after), averaged over items.
	AvgSpliceWait float64
	// AvgSteadyWait is the expected wait under the new program alone — the
	// post-transition steady state.
	AvgSteadyWait float64
	// AvgExtra = AvgSpliceWait - AvgSteadyWait: the mean transition cost in
	// slots (can be negative when the old epoch served most arrivals
	// faster than the new steady state).
	AvgExtra float64
	// WorstItemExtra is the largest per-item splice-minus-steady gap, and
	// WorstItem the item that suffers it.
	WorstItemExtra float64
	WorstItem      int
	// CarriedOver is the expected fraction of final-cycle arrivals whose
	// service crosses the boundary (uniform item access).
	CarriedOver float64
}

// TransitionCost analyses the handoff from epoch old to epoch next. Both
// epochs must cover the same item universe.
func TransitionCost(old, next Epoch) (*TransitionReport, error) {
	if old.Program == nil || next.Program == nil {
		return nil, fmt.Errorf("adaptive: epoch without program")
	}
	if len(old.IDs) != len(next.IDs) {
		return nil, fmt.Errorf("adaptive: item universes differ (%d vs %d)", len(old.IDs), len(next.IDs))
	}
	items := len(old.IDs)
	oldA := core.Analyze(old.Program)
	newA := core.Analyze(next.Program)
	L := float64(old.Program.Length())
	newStart := newWait0(newA, next.IDs)

	rep := &TransitionReport{WorstItem: -1}
	for item := 0; item < items; item++ {
		oldID, newID := old.IDs[item], next.IDs[item]
		splice := spliceWait(oldA, oldID, L, newStart[item])
		steady := newA.PageWait(newID)
		rep.AvgSpliceWait += splice
		rep.AvgSteadyWait += steady
		if extra := splice - steady; extra > rep.WorstItemExtra || rep.WorstItem < 0 {
			rep.WorstItemExtra = extra
			rep.WorstItem = item
		}
		rep.CarriedOver += carryProbability(oldA, oldID, L)
	}
	rep.AvgSpliceWait /= float64(items)
	rep.AvgSteadyWait /= float64(items)
	rep.CarriedOver /= float64(items)
	rep.AvgExtra = rep.AvgSpliceWait - rep.AvgSteadyWait
	return rep, nil
}

// newWait0 precomputes each item's wait on the new program from phase 0.
func newWait0(a *core.Analysis, ids []core.PageID) []float64 {
	out := make([]float64, len(ids))
	for item, id := range ids {
		out[item] = a.NextAfter(id, 0)
	}
	return out
}

// spliceWait is E over arrival u ~ U[0, L) of the wait when the old
// program stops at L (the cycle boundary) and the new program takes over:
// arrivals at or before the item's last old appearance are served
// in-cycle; later arrivals wait out the boundary plus the new program's
// phase-0 wait.
func spliceWait(a *core.Analysis, id core.PageID, L, newWait float64) float64 {
	cols := a.Index().Columns(id)
	if len(cols) == 0 {
		return L/2 + newWait // never served in-cycle: everyone carries over
	}
	var sum float64
	prev := 0.0
	for _, c := range cols {
		// Arrivals in (prev, c] wait until column c: mean gap/2 over a
		// span of (c - prev).
		span := float64(c) - prev
		sum += span * span / 2
		prev = float64(c)
	}
	// Arrivals after the final appearance carry over the boundary.
	tail := L - prev
	sum += tail * (tail/2 + newWait)
	return sum / L
}

// SpliceBounds returns, per item, a provable worst-case wait (in slots)
// over every integer arrival instant u in [0, L_old) of the final old
// cycle, under the same splice model as TransitionCost: the old program
// runs to its cycle boundary, then the new program starts at phase zero.
//
// With the item's distinct old appearance columns c_0 < ... < c_m, the
// worst in-cycle arrival lands one slot after an appearance and waits out
// the largest inter-appearance hole; the worst carried-over arrival lands
// one slot after c_m and pays the rest of the cycle plus the item's
// phase-0 wait on the new program. The bound is exact for integer
// arrivals — conformance.TransitionBound replays every u and checks it —
// and is what the zero-pause epoch flip promises each client: staging a
// replan never costs more than SpliceBounds says.
func SpliceBounds(old, next Epoch) ([]float64, error) {
	if old.Program == nil || next.Program == nil {
		return nil, fmt.Errorf("adaptive: epoch without program")
	}
	if len(old.IDs) != len(next.IDs) {
		return nil, fmt.Errorf("adaptive: item universes differ (%d vs %d)", len(old.IDs), len(next.IDs))
	}
	oldIx := old.Program.AppearanceIndex()
	newA := core.Analyze(next.Program)
	L := old.Program.Length()
	bounds := make([]float64, len(old.IDs))
	for item := range old.IDs {
		w0 := newA.NextAfter(next.IDs[item], 0)
		cols := oldIx.Columns(old.IDs[item])
		if len(cols) == 0 {
			bounds[item] = float64(L) + w0
			continue
		}
		worst := float64(cols[0]) // u = 0 waits for the first appearance
		for k := 1; k < len(cols); k++ {
			if gap := float64(cols[k] - cols[k-1] - 1); gap > worst {
				worst = gap
			}
		}
		if last := int(cols[len(cols)-1]); last < L-1 {
			if tail := float64(L-last-1) + w0; tail > worst {
				worst = tail
			}
		}
		bounds[item] = worst
	}
	return bounds, nil
}

// carryProbability is the chance a uniform final-cycle arrival for this
// item crosses the boundary.
func carryProbability(a *core.Analysis, id core.PageID, L float64) float64 {
	cols := a.Index().Columns(id)
	if len(cols) == 0 {
		return 1
	}
	return (L - float64(cols[len(cols)-1])) / L
}
