package adaptive

import (
	"math"
	"math/rand"
	"testing"

	"tcsa/internal/conformance"
	"tcsa/internal/core"
	"tcsa/internal/replan"
)

// identicalEpochs builds a controller and returns two epochs with the same
// schedule (rebuild without new information).
func identicalEpochs(t *testing.T) (Epoch, Epoch) {
	t.Helper()
	c, err := New(8, Config{Channels: 2, Fallback: 8})
	if err != nil {
		t.Fatal(err)
	}
	oldE := c.Epoch()
	if err := c.Rebuild(); err != nil {
		t.Fatal(err)
	}
	return oldE, c.Epoch()
}

func TestTransitionValidation(t *testing.T) {
	oldE, newE := identicalEpochs(t)
	if _, err := TransitionCost(Epoch{}, newE); err == nil {
		t.Error("epoch without program accepted")
	}
	short := newE
	short.IDs = short.IDs[:2]
	if _, err := TransitionCost(oldE, short); err == nil {
		t.Error("mismatched universes accepted")
	}
}

// TestIdenticalEpochTransition: switching to the same schedule still costs
// something for the boundary-crossers (the new cycle restarts at phase 0),
// but the splice wait must stay within the old cycle bound and the carried
// fraction must match the appearance structure.
func TestIdenticalEpochTransition(t *testing.T) {
	oldE, newE := identicalEpochs(t)
	rep, err := TransitionCost(oldE, newE)
	if err != nil {
		t.Fatal(err)
	}
	if rep.AvgSpliceWait <= 0 {
		t.Errorf("AvgSpliceWait = %f", rep.AvgSpliceWait)
	}
	if rep.CarriedOver <= 0 || rep.CarriedOver >= 1 {
		t.Errorf("CarriedOver = %f, want in (0,1)", rep.CarriedOver)
	}
	if rep.AvgSpliceWait > float64(oldE.Program.Length())+float64(newE.Program.Length()) {
		t.Errorf("splice wait %f exceeds both cycles", rep.AvgSpliceWait)
	}
	if rep.WorstItem < 0 || rep.WorstItem >= len(oldE.IDs) {
		t.Errorf("WorstItem = %d", rep.WorstItem)
	}
}

// TestSpliceWaitMonteCarlo cross-checks the closed form against direct
// simulation of the splice semantics.
func TestSpliceWaitMonteCarlo(t *testing.T) {
	gs := core.MustGroupSet([]core.Group{{Time: 4, Count: 2}})
	oldP, _ := core.NewProgram(gs, 1, 8)
	for _, c := range [][3]int{{0, 1, 0}, {0, 5, 0}, {0, 3, 1}} {
		if err := oldP.Place(c[0], c[1], core.PageID(c[2])); err != nil {
			t.Fatal(err)
		}
	}
	newP, _ := core.NewProgram(gs, 1, 6)
	for _, c := range [][3]int{{0, 2, 0}, {0, 4, 1}} {
		if err := newP.Place(c[0], c[1], core.PageID(c[2])); err != nil {
			t.Fatal(err)
		}
	}
	oldE := Epoch{Program: oldP, Groups: gs, IDs: []core.PageID{0, 1}}
	newE := Epoch{Program: newP, Groups: gs, IDs: []core.PageID{0, 1}}
	rep, err := TransitionCost(oldE, newE)
	if err != nil {
		t.Fatal(err)
	}

	oldA, newA := core.Analyze(oldP), core.Analyze(newP)
	rng := rand.New(rand.NewSource(3))
	const samples = 400000
	var sum float64
	L := 8.0
	for s := 0; s < samples; s++ {
		item := rng.Intn(2)
		u := rng.Float64() * L
		w := oldA.NextAfter(core.PageID(item), u)
		if u+w >= L { // old program ends at the cycle boundary
			w = (L - u) + newA.NextAfter(core.PageID(item), 0)
		}
		sum += w
	}
	mc := sum / samples
	if math.Abs(mc-rep.AvgSpliceWait) > 0.02 {
		t.Errorf("closed-form splice %f vs Monte-Carlo %f", rep.AvgSpliceWait, mc)
	}
}

// TestTransitionAfterLearning: an epoch switch that tightens hot pages'
// frequencies pays a bounded, measurable one-cycle cost.
func TestTransitionAfterLearning(t *testing.T) {
	c, err := New(16, Config{Channels: 4, Fallback: 64, RebuildEvery: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	before := c.Epoch()
	for item := 0; item < 8; item++ { // half the items turn out urgent
		if _, err := c.Report(item, 4); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Rebuild(); err != nil {
		t.Fatal(err)
	}
	after := c.Epoch()
	if after.Groups.Equal(before.Groups) {
		t.Fatal("rebuild did not change the structure")
	}
	rep, err := TransitionCost(before, after)
	if err != nil {
		t.Fatal(err)
	}
	bound := float64(before.Program.Length() + after.Program.Length())
	if rep.AvgSpliceWait < 0 || rep.AvgSpliceWait > bound {
		t.Errorf("AvgSpliceWait = %f outside [0, %f]", rep.AvgSpliceWait, bound)
	}
	if rep.AvgSteadyWait <= 0 {
		t.Errorf("AvgSteadyWait = %f", rep.AvgSteadyWait)
	}
}

// survivorUniverse lists every old page that survives delta, with its
// remapped identity on the new program.
func survivorUniverse(d *replan.Delta, oldPages int) (oldIDs, newIDs []core.PageID) {
	for id := core.PageID(0); int(id) < oldPages; id++ {
		if nid := d.RemapPage(id); nid != core.None {
			oldIDs = append(oldIDs, id)
			newIDs = append(newIDs, nid)
		}
	}
	return oldIDs, newIDs
}

// TestSpliceBoundsAgainstOracle drives live replan edits and checks, via
// the independent conformance replay, that every client's measured wait
// across the epoch flip stays within SpliceBounds — and that the bounds
// are exact: shaving half a slot off any item's bound makes the oracle
// reject the transition.
func TestSpliceBoundsAgainstOracle(t *testing.T) {
	gs, err := core.Geometric(4, 2, []int{6, 8, 10})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := replan.New(gs, 4)
	if err != nil {
		t.Fatal(err)
	}
	edits := []func() (*replan.Delta, error){
		func() (*replan.Delta, error) { return eng.RetirePage(1) },
		func() (*replan.Delta, error) { return eng.AddPage(2) },
		func() (*replan.Delta, error) { return eng.SetChannels(3) },
		func() (*replan.Delta, error) { return eng.SetExpectedTime(0, 2) },
	}
	for step, edit := range edits {
		oldProg := eng.Snapshot()
		oldPages := eng.GroupSet().Pages()
		d, err := edit()
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		newProg := eng.Snapshot()
		oldIDs, newIDs := survivorUniverse(d, oldPages)
		bounds, err := SpliceBounds(
			Epoch{Program: oldProg, IDs: oldIDs},
			Epoch{Program: newProg, IDs: newIDs},
		)
		if err != nil {
			t.Fatalf("step %d: SpliceBounds: %v", step, err)
		}
		if err := conformance.TransitionBound(oldProg, newProg, oldIDs, newIDs, bounds); err != nil {
			t.Fatalf("step %d (kind %v): measured wait exceeds SpliceBounds: %v", step, d.Kind, err)
		}
		for item := range bounds {
			tight := append([]float64(nil), bounds...)
			tight[item] -= 0.5
			if err := conformance.TransitionBound(oldProg, newProg, oldIDs, newIDs, tight); err == nil {
				t.Fatalf("step %d: bound for item %d (%.1f) is not tight", step, item, bounds[item])
			}
		}
	}
}

// TestSpliceBoundsValidation pins the input contract.
func TestSpliceBoundsValidation(t *testing.T) {
	oldE, newE := identicalEpochs(t)
	if _, err := SpliceBounds(Epoch{}, newE); err == nil {
		t.Error("epoch without program accepted")
	}
	short := newE
	short.IDs = short.IDs[:2]
	if _, err := SpliceBounds(oldE, short); err == nil {
		t.Error("mismatched universes accepted")
	}
	bounds, err := SpliceBounds(oldE, newE)
	if err != nil {
		t.Fatal(err)
	}
	if len(bounds) != len(oldE.IDs) {
		t.Fatalf("%d bounds for %d items", len(bounds), len(oldE.IDs))
	}
	for i, b := range bounds {
		if b < 0 || b > float64(oldE.Program.Length()+newE.Program.Length()) {
			t.Errorf("bound[%d] = %f out of range", i, b)
		}
	}
}
