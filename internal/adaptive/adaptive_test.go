package adaptive

import (
	"math/rand"
	"testing"

	"tcsa/internal/core"
	"tcsa/internal/estimator"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(10, Config{Channels: 0, Fallback: 8}); err == nil {
		t.Error("0 channels accepted")
	}
	if _, err := New(10, Config{Channels: 1, Fallback: 0}); err == nil {
		t.Error("fallback 0 accepted")
	}
	if _, err := New(10, Config{Channels: 1, Fallback: 8, Ratio: 1}); err == nil {
		t.Error("ratio 1 accepted")
	}
	if _, err := New(10, Config{Channels: 1, Fallback: 8, RebuildEvery: -1}); err == nil {
		t.Error("negative rebuild interval accepted")
	}
	if _, err := New(0, Config{Channels: 1, Fallback: 8}); err == nil {
		t.Error("0 pages accepted")
	}
}

func TestBootstrapEpoch(t *testing.T) {
	c, err := New(12, Config{Channels: 4, Fallback: 16})
	if err != nil {
		t.Fatal(err)
	}
	e := c.Epoch()
	if e.Seq != 0 {
		t.Errorf("bootstrap Seq = %d", e.Seq)
	}
	if e.Groups.Len() != 1 || e.Groups.Group(0).Time != 16 {
		t.Errorf("bootstrap groups = %v, want single fallback group", e.Groups)
	}
	if e.Program == nil || e.Program.Validate() != nil {
		t.Error("bootstrap program missing or invalid (channels are sufficient)")
	}
	if e.Algorithm != "SUSC" {
		t.Errorf("bootstrap algorithm = %s", e.Algorithm)
	}
	for item := 0; item < 12; item++ {
		id, err := c.Locate(item)
		if err != nil || id == core.None {
			t.Fatalf("Locate(%d) = %d, %v", item, id, err)
		}
	}
	if _, err := c.Locate(99); err == nil {
		t.Error("Locate out of range accepted")
	}
}

func TestRebuildEveryNReports(t *testing.T) {
	c, err := New(4, Config{Channels: 2, Fallback: 32, RebuildEvery: 10})
	if err != nil {
		t.Fatal(err)
	}
	rebuilds := 0
	for i := 0; i < 35; i++ {
		rebuilt, err := c.Report(i%4, 8)
		if err != nil {
			t.Fatal(err)
		}
		if rebuilt {
			rebuilds++
		}
	}
	if rebuilds != 3 {
		t.Errorf("rebuilds = %d, want 3 after 35 reports at interval 10", rebuilds)
	}
	if c.Epoch().Seq != 3 {
		t.Errorf("Seq = %d, want 3", c.Epoch().Seq)
	}
	if c.Reports(0) != 9 {
		t.Errorf("Reports(0) = %d, want 9", c.Reports(0))
	}
}

func TestReportValidation(t *testing.T) {
	c, err := New(4, Config{Channels: 1, Fallback: 8})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Report(9, 4); err == nil {
		t.Error("out-of-range item accepted")
	}
	if _, err := c.Report(0, -1); err == nil {
		t.Error("negative tolerance accepted")
	}
}

// TestConvergence: with stationary client tolerances the controller's
// schedule converges — after enough reports the group structure stops
// changing and every item's scheduled expected time is at most its true
// tolerance.
func TestConvergence(t *testing.T) {
	const items = 24
	rng := rand.New(rand.NewSource(9))
	truth := make([]float64, items)
	for i := range truth {
		truth[i] = []float64{4, 9, 17, 40}[rng.Intn(4)] + rng.Float64()*2
	}
	c, err := New(items, Config{
		Channels:     8,
		Fallback:     64,
		RebuildEvery: 200,
		Estimator:    estimator.Config{Seed: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 3000; r++ {
		item := rng.Intn(items)
		if _, err := c.Report(item, truth[item]*(1+rng.Float64()*0.3)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Rebuild(); err != nil {
		t.Fatal(err)
	}
	stable := c.Epoch().Groups
	// More reports from the same population must not change the structure.
	for r := 0; r < 1000; r++ {
		item := rng.Intn(items)
		if _, err := c.Report(item, truth[item]*(1+rng.Float64()*0.3)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Rebuild(); err != nil {
		t.Fatal(err)
	}
	if !c.Epoch().Groups.Equal(stable) {
		t.Errorf("structure still drifting: %v -> %v", stable, c.Epoch().Groups)
	}
	// Scheduled times never exceed the strictest plausible client need.
	e := c.Epoch()
	for item := 0; item < items; item++ {
		id, err := c.Locate(item)
		if err != nil {
			t.Fatal(err)
		}
		if got := e.Groups.TimeOf(id); float64(got) > truth[item]*1.3 {
			t.Errorf("item %d scheduled at t=%d beyond any report (truth %f)", item, got, truth[item])
		}
	}
}

// TestEpochSwitchesAlgorithmWithLoad: as reports reveal tighter and
// tighter tolerances, the required channels cross the budget and the
// controller switches SUSC -> PAMAD.
func TestEpochSwitchesAlgorithmWithLoad(t *testing.T) {
	const items = 40
	c, err := New(items, Config{Channels: 3, Fallback: 128, RebuildEvery: items})
	if err != nil {
		t.Fatal(err)
	}
	if c.Epoch().Algorithm != "SUSC" {
		t.Fatalf("bootstrap = %s, want SUSC (density 40/128 < 3)", c.Epoch().Algorithm)
	}
	// Everyone needs everything within 4 slots: density 40/4 = 10 > 3.
	for item := 0; item < items; item++ {
		if _, err := c.Report(item, 4); err != nil {
			t.Fatal(err)
		}
	}
	e := c.Epoch()
	if e.Seq != 1 {
		t.Fatalf("Seq = %d, want 1", e.Seq)
	}
	if e.Algorithm != "PAMAD" {
		t.Errorf("algorithm = %s, want PAMAD once channels are insufficient", e.Algorithm)
	}
	if e.Groups.MinChannels() <= 3 {
		t.Errorf("MinChannels = %d, expected > budget", e.Groups.MinChannels())
	}
}
