// Package adaptive closes the loop the paper leaves open between
// expected-time acquisition and scheduling: a server-side controller that
// continuously folds in piggybacked client tolerance reports
// (internal/estimator), periodically re-derives the geometric group
// structure (core.Rearrange) and rebuilds the broadcast program
// (SUSC/PAMAD via the epoch budget). This is the "adaptive dissemination"
// direction the paper cites (Fernandez-Conde & Ramamritham; Stathatos et
// al.) realised on top of the paper's own schedulers.
//
// Identity: controller items are stable external indices 0..pages-1; every
// rebuild re-maps them to fresh core.PageIDs (rearrangement reorders pages
// by group). Locate translates an item to its current PageID, so clients
// keep a stable handle across epochs.
package adaptive

import (
	"fmt"

	"tcsa/internal/core"
	"tcsa/internal/estimator"
	"tcsa/internal/pamad"
	"tcsa/internal/susc"
)

// Config parameterises the controller.
type Config struct {
	// Channels is the broadcast channel budget; must be >= 1.
	Channels int
	// Ratio is the rearrangement ratio c (default 2).
	Ratio int
	// Fallback is the expected time assigned to items nobody has reported
	// on yet; must be >= 1.
	Fallback int
	// RebuildEvery rebuilds the program after this many new reports
	// (default 1000). Report returns whether a rebuild happened.
	RebuildEvery int
	// Estimator tunes the underlying aggregation (quantile, reservoir,
	// seed).
	Estimator estimator.Config
}

// Epoch is one published schedule generation.
type Epoch struct {
	// Seq increments with every rebuild; 0 is the bootstrap epoch.
	Seq int
	// Program is the broadcast program of this epoch.
	Program *core.Program
	// Groups is the instance it was built for.
	Groups *core.GroupSet
	// Algorithm is "SUSC" or "PAMAD" depending on channel sufficiency.
	Algorithm string
	// IDs maps item index -> PageID within Program.
	IDs []core.PageID
}

// Controller is the adaptive scheduling loop. Not safe for concurrent use;
// wrap with external synchronisation if reports arrive from many
// goroutines.
type Controller struct {
	cfg     Config
	agg     *estimator.Aggregator
	current Epoch
	pending int
}

// New creates a controller for pages items and publishes the bootstrap
// epoch, in which every item carries the fallback expected time.
func New(pages int, cfg Config) (*Controller, error) {
	if cfg.Channels < 1 {
		return nil, fmt.Errorf("%w: %d channels", core.ErrInsufficientChannels, cfg.Channels)
	}
	if cfg.Ratio == 0 {
		cfg.Ratio = 2
	}
	if cfg.Ratio < 2 {
		return nil, fmt.Errorf("adaptive: ratio %d < 2", cfg.Ratio)
	}
	if cfg.Fallback < 1 {
		return nil, fmt.Errorf("adaptive: fallback %d < 1", cfg.Fallback)
	}
	if cfg.RebuildEvery == 0 {
		cfg.RebuildEvery = 1000
	}
	if cfg.RebuildEvery < 1 {
		return nil, fmt.Errorf("adaptive: rebuild interval %d", cfg.RebuildEvery)
	}
	agg, err := estimator.NewAggregator(pages, cfg.Estimator)
	if err != nil {
		return nil, err
	}
	c := &Controller{cfg: cfg, agg: agg}
	epoch, err := c.buildEpoch(0)
	if err != nil {
		return nil, err
	}
	c.current = *epoch
	return c, nil
}

// Report folds in one client's tolerated wait for an item and returns
// whether it triggered a rebuild.
func (c *Controller) Report(item int, tolerance float64) (rebuilt bool, err error) {
	if err := c.agg.Report(core.PageID(item), tolerance); err != nil {
		return false, err
	}
	c.pending++
	if c.pending < c.cfg.RebuildEvery {
		return false, nil
	}
	if err := c.Rebuild(); err != nil {
		return false, err
	}
	return true, nil
}

// Rebuild re-derives the schedule from the current estimates immediately
// and resets the report counter.
func (c *Controller) Rebuild() error {
	epoch, err := c.buildEpoch(c.current.Seq + 1)
	if err != nil {
		return err
	}
	c.current = *epoch
	c.pending = 0
	return nil
}

// Epoch returns the currently published schedule generation.
func (c *Controller) Epoch() Epoch { return c.current }

// Locate returns the current PageID of an item.
func (c *Controller) Locate(item int) (core.PageID, error) {
	if item < 0 || item >= len(c.current.IDs) {
		return core.None, fmt.Errorf("%w: item %d", core.ErrPageRange, item)
	}
	return c.current.IDs[item], nil
}

// Reports exposes the per-item report count (observability).
func (c *Controller) Reports(item int) int { return c.agg.Reports(core.PageID(item)) }

// buildEpoch derives groups from the estimates and schedules them.
func (c *Controller) buildEpoch(seq int) (*Epoch, error) {
	re, err := c.agg.Groups(c.cfg.Ratio, c.cfg.Fallback)
	if err != nil {
		return nil, err
	}
	epoch := &Epoch{Seq: seq, Groups: re.Set, IDs: re.IDs}
	if re.Set.SufficientFor(c.cfg.Channels) {
		prog, err := susc.Build(re.Set, c.cfg.Channels)
		if err != nil {
			return nil, err
		}
		epoch.Program = prog
		epoch.Algorithm = "SUSC"
		return epoch, nil
	}
	prog, _, err := pamad.Build(re.Set, c.cfg.Channels)
	if err != nil {
		return nil, err
	}
	epoch.Program = prog
	epoch.Algorithm = "PAMAD"
	return epoch, nil
}
