// Package mpb implements the modified Periodic Broadcast (m-PB) baseline
// used as the main comparator in "Time-Constrained Service on Air"
// (ICDCS 2005), Section 5.
//
// The original PB method (Xuan et al., RTAS '97) broadcasts each item
// periodically at its deadline-driven frequency on a single channel. The
// paper extends it to multiple channels for a fair comparison: m-PB keeps
// the deadline-proportional frequencies S_i = t_h / t_i — the frequencies a
// sufficient-channel program would use — even when channels are
// insufficient, accepting the longer major cycle
// t_major = ceil(sum_i (t_h/t_i) * P_i / N_real) that results. Placement of
// pages into the multi-channel grid is identical to PAMAD's Algorithm 4
// ("assignment of data to multiple channels is the same as that of the
// PAMAD algorithm once the broadcast frequency is determined").
//
// The contrast with PAMAD isolates the paper's second observation: under
// channel shortage, *reducing broadcast frequency* beats *keeping the
// frequency and stretching the cycle*.
package mpb

import (
	"fmt"

	"tcsa/internal/core"
	"tcsa/internal/delaymodel"
	"tcsa/internal/pamad"
)

// Result reports the frequencies and placement behaviour of a build.
type Result struct {
	Frequencies delaymodel.Frequencies // S_i = t_h / t_i
	MajorCycle  int
	Delay       float64 // analytic D' of the frequencies
	Placement   pamad.PlacementStats
}

// Frequencies returns m-PB's deadline-proportional frequency vector
// S_i = t_h / t_i.
func Frequencies(gs *core.GroupSet) delaymodel.Frequencies {
	return delaymodel.SufficientFrequencies(gs)
}

// Build produces the m-PB broadcast program for nReal channels.
func Build(gs *core.GroupSet, nReal int) (*core.Program, *Result, error) {
	if gs == nil {
		return nil, nil, fmt.Errorf("%w: nil group set", core.ErrInvalidGroupSet)
	}
	if nReal < 1 {
		return nil, nil, fmt.Errorf("%w: %d channels", core.ErrInsufficientChannels, nReal)
	}
	s := Frequencies(gs)
	prog, stats, err := pamad.PlaceEvenly(gs, s, nReal)
	if err != nil {
		return nil, nil, err
	}
	return prog, &Result{
		Frequencies: s,
		MajorCycle:  prog.Length(),
		Delay:       delaymodel.GroupDelay(gs, s, nReal),
		Placement:   stats,
	}, nil
}
