package mpb

import (
	"math/rand"
	"testing"

	"tcsa/internal/core"
	"tcsa/internal/pamad"
)

// TestBuildMatchesPlaceEvenly pins m-PB's grids to PAMAD's Algorithm 4
// placement for the same deadline-proportional frequencies — the paper's
// "assignment of data to multiple channels is the same as that of the PAMAD
// algorithm" setup — on randomized instances. Since pamad.PlaceEvenly is
// itself pinned cell-for-cell against the literal scanning reference, this
// transitively covers m-PB's placement under the construction-engine
// rewrite.
func TestBuildMatchesPlaceEvenly(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 200; trial++ {
		h := 1 + rng.Intn(4)
		groups := make([]core.Group, h)
		tt := 1 + rng.Intn(4)
		for i := 0; i < h; i++ {
			groups[i] = core.Group{Time: tt, Count: 1 + rng.Intn(25)}
			tt *= 2 + rng.Intn(2)
		}
		gs := core.MustGroupSet(groups)
		nReal := 1 + rng.Intn(8)

		prog, res, err := Build(gs, nReal)
		if err != nil {
			t.Fatalf("Build(%v, %d): %v", gs, nReal, err)
		}
		want, wantStats, err := pamad.PlaceEvenly(gs, Frequencies(gs), nReal)
		if err != nil {
			t.Fatalf("PlaceEvenly(%v, %d): %v", gs, nReal, err)
		}
		if res.Placement != wantStats {
			t.Fatalf("stats %+v, want %+v", res.Placement, wantStats)
		}
		if prog.Channels() != want.Channels() || prog.Length() != want.Length() ||
			prog.Filled() != want.Filled() {
			t.Fatalf("grid shape %dx%d/%d, want %dx%d/%d",
				prog.Channels(), prog.Length(), prog.Filled(),
				want.Channels(), want.Length(), want.Filled())
		}
		for ch := 0; ch < want.Channels(); ch++ {
			for slot := 0; slot < want.Length(); slot++ {
				if prog.At(ch, slot) != want.At(ch, slot) {
					t.Fatalf("cell (%d,%d) = %d, want %d (gs=%v, n=%d)",
						ch, slot, prog.At(ch, slot), want.At(ch, slot), gs, nReal)
				}
			}
		}
	}
}
