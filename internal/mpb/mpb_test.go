package mpb

import (
	"math/rand"
	"testing"

	"tcsa/internal/conformance"
	"tcsa/internal/core"
	"tcsa/internal/pamad"
)

func fig2() *core.GroupSet {
	return core.MustGroupSet([]core.Group{{Time: 2, Count: 3}, {Time: 4, Count: 5}, {Time: 8, Count: 3}})
}

func TestFrequenciesAreDeadlineProportional(t *testing.T) {
	s := Frequencies(fig2())
	want := []int{4, 2, 1}
	for i := range want {
		if s[i] != want[i] {
			t.Fatalf("S = %v, want %v", s, want)
		}
	}
}

func TestBuildFigure2Insufficient(t *testing.T) {
	gs := fig2()
	prog, res, err := Build(gs, 3)
	if err != nil {
		t.Fatal(err)
	}
	// F = 4*3 + 2*5 + 1*3 = 25, t_major = ceil(25/3) = 9.
	if prog.Length() != 9 {
		t.Errorf("t_major = %d, want 9", prog.Length())
	}
	if err := conformance.SpillAccounting(prog, res.Frequencies,
		conformance.PlacementCounts(res.Placement)); err != nil {
		t.Error(err)
	}
}

func TestBuildErrors(t *testing.T) {
	if _, _, err := Build(nil, 1); err == nil {
		t.Error("nil group set accepted")
	}
	if _, _, err := Build(fig2(), 0); err == nil {
		t.Error("0 channels accepted")
	}
}

// TestBuildSufficientChannelsIsValid: at N >= MinChannels, m-PB's
// frequencies are the SUSC frequencies and the program meets every
// expected time from any tuning instant (conformance oracle).
func TestBuildSufficientChannelsIsValid(t *testing.T) {
	gs := fig2()
	prog, _, err := Build(gs, gs.MinChannels())
	if err != nil {
		t.Fatal(err)
	}
	if err := conformance.ValidFromAnyStart(prog); err != nil {
		t.Error(err)
	}
	if d := core.Analyze(prog).AvgDelay(); d != 0 {
		t.Errorf("AvgDelay at sufficient channels = %f, want 0", d)
	}
}

// TestPAMADBeatsMPB reproduces the paper's headline comparison on random
// insufficient-channel instances: PAMAD's measured average delay is at most
// m-PB's (allowing discretisation noise on near-ties).
func TestPAMADBeatsMPB(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var pamadWins, ties, mpbWins int
	for trial := 0; trial < 120; trial++ {
		gs := randomGroupSet(rng)
		min := gs.MinChannels()
		if min < 2 {
			continue
		}
		nReal := 1 + rng.Intn(min-1)
		pProg, _, err := pamad.Build(gs, nReal)
		if err != nil {
			t.Fatalf("pamad %v N=%d: %v", gs, nReal, err)
		}
		mProg, _, err := Build(gs, nReal)
		if err != nil {
			t.Fatalf("mpb %v N=%d: %v", gs, nReal, err)
		}
		pd := core.Analyze(pProg).AvgDelay()
		md := core.Analyze(mProg).AvgDelay()
		switch {
		case pd < md-1e-9:
			pamadWins++
		case md < pd-1e-9:
			mpbWins++
			if pd > md*1.25+1.0 {
				t.Errorf("instance %v N=%d: PAMAD %.3f much worse than m-PB %.3f", gs, nReal, pd, md)
			}
		default:
			ties++
		}
	}
	if pamadWins <= mpbWins {
		t.Errorf("PAMAD won %d, m-PB won %d, ties %d — paper's ordering not reproduced",
			pamadWins, mpbWins, ties)
	}
}

func randomGroupSet(rng *rand.Rand) *core.GroupSet {
	h := 2 + rng.Intn(4)
	groups := make([]core.Group, h)
	tt := 2 + rng.Intn(4)
	for i := 0; i < h; i++ {
		groups[i] = core.Group{Time: tt, Count: 1 + rng.Intn(30)}
		tt *= 2
	}
	return core.MustGroupSet(groups)
}
