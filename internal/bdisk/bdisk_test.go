package bdisk

import (
	"testing"

	"tcsa/internal/core"
	"tcsa/internal/pamad"
	"tcsa/internal/sim"
	"tcsa/internal/workload"
)

func fig2() *core.GroupSet {
	return core.MustGroupSet([]core.Group{{Time: 2, Count: 3}, {Time: 4, Count: 5}, {Time: 8, Count: 3}})
}

func TestBuildValidation(t *testing.T) {
	gs := fig2()
	flat := FlatDisks(gs)
	if _, err := Build(nil, flat, 1); err == nil {
		t.Error("nil group set accepted")
	}
	if _, err := Build(gs, flat, 0); err == nil {
		t.Error("0 channels accepted")
	}
	if _, err := Build(gs, nil, 1); err == nil {
		t.Error("no disks accepted")
	}
	if _, err := Build(gs, []Disk{{Pages: []core.PageID{0}, Freq: 0}}, 1); err == nil {
		t.Error("0 frequency accepted")
	}
	if _, err := Build(gs, []Disk{{Pages: nil, Freq: 1}}, 1); err == nil {
		t.Error("empty disk accepted")
	}
	if _, err := Build(gs, []Disk{{Pages: []core.PageID{0, 0}, Freq: 1}}, 1); err == nil {
		t.Error("duplicate page accepted")
	}
	if _, err := Build(gs, []Disk{{Pages: []core.PageID{0, 99}, Freq: 1}}, 1); err == nil {
		t.Error("out-of-range page accepted")
	}
	if _, err := Build(gs, []Disk{{Pages: []core.PageID{0}, Freq: 1}}, 1); err == nil {
		t.Error("uncovered pages accepted")
	}
}

func TestFlatDisksRoundRobin(t *testing.T) {
	gs := fig2()
	prog, err := Build(gs, FlatDisks(gs), 1)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Length() != gs.Pages() {
		t.Errorf("flat cycle = %d, want n = %d", prog.Length(), gs.Pages())
	}
	for id := core.PageID(0); int(id) < gs.Pages(); id++ {
		if got := prog.CountOf(id); got != 1 {
			t.Errorf("page %d appears %d times in flat schedule", id, got)
		}
	}
}

// TestDeadlineDisksFrequencies: group-i pages appear t_h/t_i times per
// major cycle, interleaved chunk-wise.
func TestDeadlineDisksFrequencies(t *testing.T) {
	gs := fig2()
	prog, err := Build(gs, DeadlineDisks(gs), 1)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{4, 2, 1}
	for id := core.PageID(0); int(id) < gs.Pages(); id++ {
		if got := prog.CountOf(id); got != want[gs.GroupOf(id)] {
			t.Errorf("page %d appears %d times, want %d", id, got, want[gs.GroupOf(id)])
		}
	}
}

// TestInterleaveSpacing: on a single disk-speed-2 + disk-speed-1 layout the
// fast disk's chunks recur every minor cycle.
func TestInterleaveSpacing(t *testing.T) {
	gs := core.MustGroupSet([]core.Group{{Time: 2, Count: 2}, {Time: 4, Count: 4}})
	disks := []Disk{
		{Pages: []core.PageID{0, 1}, Freq: 2},
		{Pages: []core.PageID{2, 3, 4, 5}, Freq: 1},
	}
	prog, err := Build(gs, disks, 1)
	if err != nil {
		t.Fatal(err)
	}
	// maxChunks=2: minor cycles = [d0 chunk0, d1 chunk0][d0 chunk0, d1
	// chunk1] -> fast pages appear twice, slow once.
	for _, id := range []core.PageID{0, 1} {
		if prog.CountOf(id) != 2 {
			t.Errorf("fast page %d count = %d", id, prog.CountOf(id))
		}
	}
	for _, id := range []core.PageID{2, 3, 4, 5} {
		if prog.CountOf(id) != 1 {
			t.Errorf("slow page %d count = %d", id, prog.CountOf(id))
		}
	}
}

func TestMultiChannelStriping(t *testing.T) {
	gs := fig2()
	p1, err := Build(gs, DeadlineDisks(gs), 1)
	if err != nil {
		t.Fatal(err)
	}
	p3, err := Build(gs, DeadlineDisks(gs), 3)
	if err != nil {
		t.Fatal(err)
	}
	if p3.Length() != core.CeilDiv(p1.Length()*1, 3) {
		t.Errorf("striped length = %d, want ceil(%d/3)", p3.Length(), p1.Length())
	}
	if p3.Filled() != p1.Filled() {
		t.Errorf("striping lost pages: %d vs %d", p3.Filled(), p1.Filled())
	}
	// Striping must divide waits by roughly the channel count.
	w1 := core.Analyze(p1).AvgWait()
	w3 := core.Analyze(p3).AvgWait()
	if w3 > w1/2 {
		t.Errorf("3-channel wait %f not well below single-channel %f", w3, w1)
	}
}

func TestSqrtRuleDisks(t *testing.T) {
	gs := core.MustGroupSet([]core.Group{{Time: 4, Count: 8}})
	prob := []float64{0.4, 0.2, 0.1, 0.1, 0.05, 0.05, 0.05, 0.05}
	disks, err := SqrtRuleDisks(gs, prob, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(disks) != 3 {
		t.Fatalf("%d disks", len(disks))
	}
	if disks[0].Freq != 4 || disks[1].Freq != 2 || disks[2].Freq != 1 {
		t.Errorf("frequencies = %d,%d,%d want 4,2,1", disks[0].Freq, disks[1].Freq, disks[2].Freq)
	}
	// Hottest page rides the fastest disk.
	if disks[0].Pages[0] != 0 {
		t.Errorf("fastest disk leads with page %d, want 0", disks[0].Pages[0])
	}
	if _, err := SqrtRuleDisks(gs, prob[:3], 2); err == nil {
		t.Error("wrong-length probabilities accepted")
	}
	if _, err := SqrtRuleDisks(gs, prob, 0); err == nil {
		t.Error("0 levels accepted")
	}
	prog, err := Build(gs, disks, 2)
	if err != nil {
		t.Fatal(err)
	}
	if prog.CountOf(0) <= prog.CountOf(7) {
		t.Errorf("hot page broadcast %d times vs cold %d", prog.CountOf(0), prog.CountOf(7))
	}
}

// TestDeadlineAgnosticCostsDelay is the reason this package exists: the
// flat schedule minimises mean wait under uniform access but its AvgD —
// the paper's metric — is far worse than PAMAD's at the same budget.
func TestDeadlineAgnosticCostsDelay(t *testing.T) {
	gs, err := workload.GroupSet(workload.Uniform, 4, 120, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Moderate scarcity (the minimum is 15): under extreme overload PAMAD
	// correctly degenerates to the flat schedule itself, so the schedulers
	// only differentiate when there is bandwidth worth prioritising.
	const channels = 8
	flatProg, err := Build(gs, FlatDisks(gs), channels)
	if err != nil {
		t.Fatal(err)
	}
	pamadProg, _, err := pamad.Build(gs, channels)
	if err != nil {
		t.Fatal(err)
	}
	reqs, err := workload.GenerateRequests(gs, flatProg.Length(), workload.RequestConfig{Count: 3000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	flat, err := sim.Measure(flatProg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	pReqs, err := workload.GenerateRequests(gs, pamadProg.Length(), workload.RequestConfig{Count: 3000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	pm, err := sim.Measure(pamadProg, pReqs)
	if err != nil {
		t.Fatal(err)
	}
	if pm.AvgDelay >= flat.AvgDelay {
		t.Errorf("PAMAD AvgD %.2f not below flat broadcast-disk AvgD %.2f", pm.AvgDelay, flat.AvgDelay)
	}
	// And the converse trade: flat's mean wait is (near) optimal.
	if flat.AvgWait > pm.AvgWait*1.05 {
		t.Errorf("flat wait %.2f above PAMAD wait %.2f — flat should win mean wait", flat.AvgWait, pm.AvgWait)
	}
}
