// Package bdisk implements Broadcast Disks (Acharya, Alonso, Franklin,
// Zdonik; SIGMOD '95) — the classic *mean-access-time* broadcast scheduler
// the paper's introduction positions itself against (its reference [1]).
// Pages are partitioned onto virtual "disks" spinning at different
// relative speeds; each disk is split into chunks and the chunks are
// interleaved so that a disk with relative frequency f contributes a page
// to every f-th minor cycle.
//
// Broadcast Disks knows nothing about expected times: it optimises how
// long an average client waits, not whether a page beats a deadline. The
// package exists as an extension baseline, demonstrating why the
// time-constrained problem needs its own schedulers: under uniform access
// probability the mean-wait-optimal schedule is flat (every page once per
// cycle), which is catastrophic for tight-deadline pages; see the package
// tests and the ablation in EXPERIMENTS.md.
//
// Multi-channel extension: the generated flat slot sequence is striped
// across the channels column-major, preserving relative spacing divided by
// the channel count (the same convention the paper uses for its m-PB
// extension).
package bdisk

import (
	"fmt"
	"math"
	"sort"

	"tcsa/internal/core"
)

// Disk is one spinning region: a set of pages broadcast Freq times per
// major cycle relative to the slowest disk.
type Disk struct {
	Pages []core.PageID
	Freq  int
}

// DeadlineDisks builds one disk per expected-time group with the
// deadline-proportional frequency t_h/t_i — the broadcast-disk analogue of
// the m-PB frequency assignment.
func DeadlineDisks(gs *core.GroupSet) []Disk {
	th := gs.MaxTime()
	disks := make([]Disk, gs.Len())
	for i := 0; i < gs.Len(); i++ {
		first, count := gs.GroupPages(i)
		pages := make([]core.PageID, count)
		for j := range pages {
			pages[j] = first + core.PageID(j)
		}
		disks[i] = Disk{Pages: pages, Freq: th / gs.Group(i).Time}
	}
	return disks
}

// FlatDisks places every page on one unit-frequency disk: the mean-wait-
// optimal schedule under uniform access probability, and the natural
// deadline-agnostic baseline.
func FlatDisks(gs *core.GroupSet) []Disk {
	pages := make([]core.PageID, gs.Pages())
	for i := range pages {
		pages[i] = core.PageID(i)
	}
	return []Disk{{Pages: pages, Freq: 1}}
}

// SqrtRuleDisks partitions pages into `levels` disks by the square-root
// rule (broadcast frequency proportional to sqrt of access probability —
// optimal for mean access time): pages are ranked by probability and split
// into equal-population levels with frequencies 2^(levels-1-k).
func SqrtRuleDisks(gs *core.GroupSet, prob []float64, levels int) ([]Disk, error) {
	n := gs.Pages()
	if len(prob) != n {
		return nil, fmt.Errorf("%w: %d probabilities for %d pages", core.ErrPageRange, len(prob), n)
	}
	if levels < 1 || levels > n {
		return nil, fmt.Errorf("bdisk: %d levels for %d pages", levels, n)
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		// Rank by sqrt(p); ties by index for determinism.
		return math.Sqrt(prob[order[a]]) > math.Sqrt(prob[order[b]])
	})
	disks := make([]Disk, levels)
	per := (n + levels - 1) / levels
	for k := 0; k < levels; k++ {
		lo := k * per
		hi := lo + per
		if hi > n {
			hi = n
		}
		if lo >= hi {
			disks = disks[:k]
			break
		}
		pages := make([]core.PageID, 0, hi-lo)
		for _, idx := range order[lo:hi] {
			pages = append(pages, core.PageID(idx))
		}
		disks[k] = Disk{Pages: pages, Freq: 1 << (levels - 1 - k)}
	}
	return disks, nil
}

// Build generates the broadcast-disk program over the given channels.
func Build(gs *core.GroupSet, disks []Disk, channels int) (*core.Program, error) {
	if gs == nil {
		return nil, fmt.Errorf("%w: nil group set", core.ErrInvalidGroupSet)
	}
	if channels < 1 {
		return nil, fmt.Errorf("%w: %d channels", core.ErrInsufficientChannels, channels)
	}
	if len(disks) == 0 {
		return nil, fmt.Errorf("bdisk: no disks")
	}
	seen := make([]bool, gs.Pages())
	for d, disk := range disks {
		if disk.Freq < 1 {
			return nil, fmt.Errorf("bdisk: disk %d frequency %d", d, disk.Freq)
		}
		if len(disk.Pages) == 0 {
			return nil, fmt.Errorf("bdisk: disk %d empty", d)
		}
		for _, p := range disk.Pages {
			if p < 0 || int(p) >= gs.Pages() {
				return nil, fmt.Errorf("%w: %d on disk %d", core.ErrPageRange, p, d)
			}
			if seen[p] {
				return nil, fmt.Errorf("bdisk: page %d on two disks", p)
			}
			seen[p] = true
		}
	}
	for p, ok := range seen {
		if !ok {
			return nil, fmt.Errorf("bdisk: page %d on no disk", p)
		}
	}

	seq := interleave(disks)
	length := core.CeilDiv(len(seq), channels)
	prog, err := core.NewProgram(gs, channels, length)
	if err != nil {
		return nil, err
	}
	for i, page := range seq {
		if page == core.None {
			continue // chunk padding
		}
		if err := prog.Place(i%channels, i/channels, page); err != nil {
			return nil, err
		}
	}
	return prog, nil
}

// interleave runs the SIGMOD '95 algorithm, producing the single-channel
// slot sequence (core.None marks chunk padding).
func interleave(disks []Disk) []core.PageID {
	// max_chunks = lcm of frequencies; disk j is split into
	// max_chunks/Freq_j chunks.
	maxChunks := 1
	for _, d := range disks {
		maxChunks = lcm(maxChunks, d.Freq)
	}
	type chunked struct {
		chunks    int // number of chunks
		chunkSize int // pages per chunk (last padded)
	}
	layout := make([]chunked, len(disks))
	for j, d := range disks {
		numChunks := maxChunks / d.Freq
		layout[j] = chunked{
			chunks:    numChunks,
			chunkSize: core.CeilDiv(len(d.Pages), numChunks),
		}
	}
	var seq []core.PageID
	for minor := 0; minor < maxChunks; minor++ {
		for j, d := range disks {
			c := minor % layout[j].chunks
			size := layout[j].chunkSize
			for k := 0; k < size; k++ {
				idx := c*size + k
				if idx < len(d.Pages) {
					seq = append(seq, d.Pages[idx])
				} else {
					seq = append(seq, core.None)
				}
			}
		}
	}
	return seq
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func lcm(a, b int) int { return a / gcd(a, b) * b }
