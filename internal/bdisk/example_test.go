package bdisk_test

import (
	"fmt"

	"tcsa/internal/bdisk"
	"tcsa/internal/core"
)

// A two-speed broadcast disk: two hot pages spin twice as fast as four
// cold ones, chunk-interleaved on a single channel (SIGMOD '95).
func ExampleBuild() {
	gs := core.MustGroupSet([]core.Group{{Time: 2, Count: 2}, {Time: 4, Count: 4}})
	disks := []bdisk.Disk{
		{Pages: []core.PageID{0, 1}, Freq: 2},
		{Pages: []core.PageID{2, 3, 4, 5}, Freq: 1},
	}
	prog, err := bdisk.Build(gs, disks, 1)
	if err != nil {
		panic(err)
	}
	fmt.Print(prog)
	// Output:
	// ch0  |  0  1  2  3  0  1  4  5
}
