// Package stats provides the small, dependency-free statistics toolkit the
// simulators and experiment harness use: streaming moments (Welford),
// percentiles, histograms and confidence intervals. Everything is
// deterministic and allocation-conscious.
//
//lint:deterministic bit-identical replay contract: no wall clock, no global RNG, no map-order folds
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Online accumulates count, mean and variance in one pass using Welford's
// algorithm. The zero value is ready to use.
type Online struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds one observation into the accumulator.
func (o *Online) Add(x float64) {
	o.n++
	if o.n == 1 {
		o.min, o.max = x, x
	} else {
		if x < o.min {
			o.min = x
		}
		if x > o.max {
			o.max = x
		}
	}
	d := x - o.mean
	o.mean += d / float64(o.n)
	o.m2 += d * (x - o.mean)
}

// AddAll folds a batch of observations.
func (o *Online) AddAll(xs []float64) {
	for _, x := range xs {
		o.Add(x)
	}
}

// Merge folds another accumulator into this one (parallel reduction).
func (o *Online) Merge(other Online) {
	if other.n == 0 {
		return
	}
	if o.n == 0 {
		*o = other
		return
	}
	n := o.n + other.n
	d := other.mean - o.mean
	o.m2 += other.m2 + d*d*float64(o.n)*float64(other.n)/float64(n)
	o.mean += d * float64(other.n) / float64(n)
	if other.min < o.min {
		o.min = other.min
	}
	if other.max > o.max {
		o.max = other.max
	}
	o.n = n
}

// N returns the observation count.
func (o *Online) N() int64 { return o.n }

// Mean returns the running mean (0 when empty).
func (o *Online) Mean() float64 { return o.mean }

// Variance returns the unbiased sample variance (0 for fewer than two
// observations).
func (o *Online) Variance() float64 {
	if o.n < 2 {
		return 0
	}
	return o.m2 / float64(o.n-1)
}

// StdDev returns the sample standard deviation.
func (o *Online) StdDev() float64 { return math.Sqrt(o.Variance()) }

// Min returns the smallest observation (0 when empty).
func (o *Online) Min() float64 { return o.min }

// Max returns the largest observation (0 when empty).
func (o *Online) Max() float64 { return o.max }

// CI95 returns the half-width of the normal-approximation 95% confidence
// interval of the mean (0 for fewer than two observations).
func (o *Online) CI95() float64 {
	if o.n < 2 {
		return 0
	}
	return 1.96 * o.StdDev() / math.Sqrt(float64(o.n))
}

// String renders "mean ± ci (n=..., min=..., max=...)".
func (o *Online) String() string {
	return fmt.Sprintf("%.4f ± %.4f (n=%d, min=%.4f, max=%.4f)",
		o.Mean(), o.CI95(), o.n, o.min, o.max)
}

// Mean returns the arithmetic mean of xs (0 when empty).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Percentile returns the p-quantile (p in [0,1]) of xs by linear
// interpolation between closest ranks; it copies and sorts internally.
// Callers reading several quantiles of one sample should sort once and use
// PercentileSorted (Summarize does).
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return PercentileSorted(sorted, p)
}

// PercentileSorted is Percentile over an already ascending-sorted sample.
func PercentileSorted(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	pos := p * float64(len(sorted)-1)
	lo := int(pos)
	if lo == len(sorted)-1 {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Summary is a fixed five-number-plus profile of a sample.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	P50    float64
	P95    float64
	P99    float64
	Max    float64
}

// Summarize computes a Summary of xs. The sample is copied and sorted once;
// all three quantiles read from the same sorted copy.
func Summarize(xs []float64) Summary {
	var o Online
	o.AddAll(xs)
	s := Summary{
		N:      len(xs),
		Mean:   o.Mean(),
		StdDev: o.StdDev(),
		Min:    o.Min(),
		Max:    o.Max(),
	}
	if len(xs) > 0 {
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		s.P50 = PercentileSorted(sorted, 0.50)
		s.P95 = PercentileSorted(sorted, 0.95)
		s.P99 = PercentileSorted(sorted, 0.99)
	}
	return s
}

// String renders the summary on one line.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4f sd=%.4f min=%.4f p50=%.4f p95=%.4f p99=%.4f max=%.4f",
		s.N, s.Mean, s.StdDev, s.Min, s.P50, s.P95, s.P99, s.Max)
}

// Histogram is a fixed-bin histogram over [Lo, Hi); out-of-range values
// clamp into the edge bins.
type Histogram struct {
	Lo, Hi float64
	Bins   []int64
	count  int64
}

// NewHistogram allocates bins equal-width bins over [lo, hi).
func NewHistogram(lo, hi float64, bins int) (*Histogram, error) {
	if bins < 1 {
		return nil, fmt.Errorf("stats: %d bins", bins)
	}
	if !(hi > lo) {
		return nil, fmt.Errorf("stats: empty range [%f, %f)", lo, hi)
	}
	return &Histogram{Lo: lo, Hi: hi, Bins: make([]int64, bins)}, nil
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	idx := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Bins)))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(h.Bins) {
		idx = len(h.Bins) - 1
	}
	h.Bins[idx]++
	h.count++
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() int64 { return h.count }

// Fraction returns the share of observations in bin i.
func (h *Histogram) Fraction(i int) float64 {
	if h.count == 0 || i < 0 || i >= len(h.Bins) {
		return 0
	}
	return float64(h.Bins[i]) / float64(h.count)
}

// String renders a compact ASCII bar chart, one row per bin.
func (h *Histogram) String() string {
	var b strings.Builder
	width := float64(h.Hi-h.Lo) / float64(len(h.Bins))
	var peak int64 = 1
	for _, c := range h.Bins {
		if c > peak {
			peak = c
		}
	}
	for i, c := range h.Bins {
		bar := int(float64(c) / float64(peak) * 40)
		fmt.Fprintf(&b, "[%8.2f,%8.2f) %7d %s\n",
			h.Lo+float64(i)*width, h.Lo+float64(i+1)*width, c, strings.Repeat("#", bar))
	}
	return b.String()
}

// JainIndex computes Jain's fairness index of a non-negative sample:
// (sum x)^2 / (n * sum x^2), which is 1 when all values are equal and
// 1/n when one value dominates. An all-zero sample is perfectly fair (1).
func JainIndex(xs []float64) float64 {
	if len(xs) == 0 {
		return 1
	}
	var sum, sumSq float64
	for _, x := range xs {
		sum += x
		sumSq += x * x
	}
	//lint:ignore floateq exact zero guard: a sum of squares is 0 only when every sample is 0
	if sumSq == 0 {
		return 1
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}
