package stats

import (
	"fmt"
	"math"
)

// Sketch is a mergeable, bounded-memory summary of a sample stream: exact
// Welford moments (an Online) plus a log-bucketed quantile histogram. It
// answers the same questions as Summarize — mean, spread, extremes and tail
// quantiles — without retaining the samples, so a million-request
// measurement costs the same memory as a thousand-request one.
//
// Bucket layout: observations at or below Lo land in a dedicated zero
// bucket (quantiles report them as 0 — delay streams are mostly exact
// zeros); observations above Lo land in geometric buckets
// (Lo*γ^i, Lo*γ^(i+1)], γ = (1+α)/(1-α), so a quantile estimate is within
// one bucket — a factor of γ — of the exact order statistic. Observations
// above Hi clamp into the last bucket.
//
// Merging is exact for the bucket counts (integer adds, so any merge order
// and grouping yields identical quantiles) and order-insensitive up to
// floating-point rounding for the moments (Online.Merge).
type Sketch struct {
	moments Online
	zero    int64   // observations <= lo
	bins    []int64 // bins[i] counts observations in (lo*gamma^i, lo*gamma^(i+1)]
	lo      float64
	gamma   float64
	logLo   float64
	invLogG float64 // 1 / ln(gamma)
}

// NewSketch allocates a sketch covering (lo, hi] with relative accuracy
// alpha in (0, 1): the bucket count is ceil(log_γ(hi/lo))+1, fixed at
// construction. For slot waits, lo is the resolution below which values
// collapse to zero and hi is the cycle length.
func NewSketch(lo, hi, alpha float64) (*Sketch, error) {
	if !(lo > 0) || !(hi > lo) || math.IsInf(hi, 1) {
		return nil, fmt.Errorf("stats: sketch range (%g, %g]", lo, hi)
	}
	if !(alpha > 0) || !(alpha < 1) {
		return nil, fmt.Errorf("stats: sketch accuracy %g outside (0, 1)", alpha)
	}
	gamma := (1 + alpha) / (1 - alpha)
	logG := math.Log(gamma)
	nbins := int(math.Ceil(math.Log(hi/lo)/logG)) + 1
	return &Sketch{
		bins:    make([]int64, nbins),
		lo:      lo,
		gamma:   gamma,
		logLo:   math.Log(lo),
		invLogG: 1 / logG,
	}, nil
}

// Add folds one observation into the sketch.
func (s *Sketch) Add(x float64) {
	s.moments.Add(x)
	if x <= s.lo {
		s.zero++
		return
	}
	i := int((math.Log(x) - s.logLo) * s.invLogG)
	if i < 0 {
		i = 0
	} else if i >= len(s.bins) {
		i = len(s.bins) - 1
	}
	s.bins[i]++
}

// N returns the observation count.
func (s *Sketch) N() int64 { return s.moments.N() }

// Moments returns a copy of the exact moment accumulator.
func (s *Sketch) Moments() Online { return s.moments }

// Bins returns the bucket count (the sketch's fixed memory footprint).
func (s *Sketch) Bins() int { return len(s.bins) }

// Merge folds other into s. Both sketches must share a bucket layout
// (same lo, gamma and bucket count). Bucket counts merge exactly; moments
// merge via Online.Merge, which is order-insensitive up to rounding.
func (s *Sketch) Merge(other *Sketch) error {
	if other == nil {
		return nil
	}
	// Bit equality, not tolerance: layouts either came from the same
	// NewSketch parameters or they index different buckets.
	if len(s.bins) != len(other.bins) ||
		math.Float64bits(s.lo) != math.Float64bits(other.lo) ||
		math.Float64bits(s.gamma) != math.Float64bits(other.gamma) {
		return fmt.Errorf("stats: merging incompatible sketches (%d/%g/%g vs %d/%g/%g)",
			len(s.bins), s.lo, s.gamma, len(other.bins), other.lo, other.gamma)
	}
	s.moments.Merge(other.moments)
	s.zero += other.zero
	for i, c := range other.bins {
		s.bins[i] += c
	}
	return nil
}

// Quantile estimates the p-quantile (p in [0, 1]) under the closest-rank
// convention of Percentile: it locates the order statistic nearest rank
// p*(n-1) and reports its bucket's geometric midpoint, clamped into the
// observed [Min, Max]. The estimate is within a factor of gamma of the
// exact order statistic; observations at or below lo report as 0.
func (s *Sketch) Quantile(p float64) float64 {
	n := s.moments.N()
	if n == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	} else if p > 1 {
		p = 1
	}
	rank := int64(math.Round(p * float64(n-1)))
	cum := s.zero
	if rank < cum {
		return 0
	}
	for i, c := range s.bins {
		cum += c
		if rank < cum {
			v := s.lo * math.Pow(s.gamma, float64(i)+0.5)
			if v < s.moments.Min() {
				v = s.moments.Min()
			}
			if v > s.moments.Max() {
				v = s.moments.Max()
			}
			return v
		}
	}
	return s.moments.Max()
}

// Summary emits the five-number-plus profile without retaining samples:
// the moment fields (N, Mean, StdDev, Min, Max) are exact, the quantiles
// are bucket estimates per Quantile.
func (s *Sketch) Summary() Summary {
	return Summary{
		N:      int(s.moments.N()),
		Mean:   s.moments.Mean(),
		StdDev: s.moments.StdDev(),
		Min:    s.moments.Min(),
		Max:    s.moments.Max(),
		P50:    s.Quantile(0.50),
		P95:    s.Quantile(0.95),
		P99:    s.Quantile(0.99),
	}
}

// String renders the summary on one line.
func (s *Sketch) String() string {
	return s.Summary().String()
}
