package stats

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

// testSketch returns a sketch shaped like the measurement engine's: slot
// waits in (lo, hi] at 1% relative accuracy.
func testSketch(t testing.TB) *Sketch {
	t.Helper()
	s, err := NewSketch(1e-3, 4096, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSketchValidation(t *testing.T) {
	bad := []struct{ lo, hi, alpha float64 }{
		{0, 1, 0.01},
		{-1, 1, 0.01},
		{1, 1, 0.01},
		{2, 1, 0.01},
		{1, 2, 0},
		{1, 2, 1},
		{1, 2, -0.5},
		{math.NaN(), 1, 0.01},
		{1, math.Inf(1), 0.01},
	}
	for _, tc := range bad {
		if _, err := NewSketch(tc.lo, tc.hi, tc.alpha); err == nil {
			t.Errorf("NewSketch(%g, %g, %g) accepted", tc.lo, tc.hi, tc.alpha)
		}
	}
}

func TestSketchEmpty(t *testing.T) {
	s := testSketch(t)
	if s.N() != 0 || s.Quantile(0.5) != 0 {
		t.Error("empty sketch not zeroed")
	}
	sum := s.Summary()
	if sum.N != 0 || sum.P99 != 0 {
		t.Errorf("empty Summary = %+v", sum)
	}
}

func TestSketchZeroHeavyStream(t *testing.T) {
	// Delay streams are mostly exact zeros; the zero bucket must carry
	// them and the low quantiles must report 0 exactly.
	s := testSketch(t)
	for i := 0; i < 90; i++ {
		s.Add(0)
	}
	for i := 0; i < 10; i++ {
		s.Add(100)
	}
	if q := s.Quantile(0.5); q != 0 {
		t.Errorf("P50 of zero-heavy stream = %g, want 0", q)
	}
	if q := s.Quantile(0.99); q < 100/1.03 || q > 100*1.03 {
		t.Errorf("P99 = %g, want ~100", q)
	}
	if mo := s.Moments(); mo.Max() != 100 {
		t.Errorf("Max = %g", mo.Max())
	}
}

func TestSketchClampsAboveRange(t *testing.T) {
	s := testSketch(t)
	s.Add(1e9) // far above hi: clamps into the last bucket
	if s.N() != 1 {
		t.Fatal("observation lost")
	}
	// Quantile clamps into [Min, Max], so even the clamped bucket reports
	// the true (single) observation.
	if q := s.Quantile(1); q != 1e9 {
		t.Errorf("Quantile(1) = %g, want 1e9 (clamped to Max)", q)
	}
	if !strings.Contains(s.String(), "n=1") {
		t.Errorf("String() = %q", s.String())
	}
}

// checkQuantiles asserts the sketch contract against the exact sample: the
// estimate lies within one bucket (a factor of gamma) of the exact order
// statistics surrounding rank p*(n-1), with values <= lo reporting as 0.
func checkQuantiles(t *testing.T, s *Sketch, xs []float64) {
	t.Helper()
	sorted := append([]float64(nil), xs...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	// edge is the upper edge of the last bucket; stats beyond it clamp into
	// that bucket and only promise [cap/gamma, Max].
	edge := s.lo * math.Pow(s.gamma, float64(len(s.bins)))
	mo := s.Moments()
	for _, p := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1} {
		got := s.Quantile(p)
		rank := int(math.Round(p * float64(len(sorted)-1)))
		stat := sorted[rank]
		if stat <= s.lo {
			if got != 0 {
				t.Errorf("Quantile(%g) = %g for sub-resolution stat %g, want 0", p, got, stat)
			}
			continue
		}
		if stat > edge {
			if got < edge/s.gamma-1e-12 || got > mo.Max() {
				t.Errorf("Quantile(%g) = %g for over-range stat %g, want within [%g, %g]",
					p, got, stat, edge/s.gamma, mo.Max())
			}
			continue
		}
		lo, hi := stat/s.gamma-1e-12, stat*s.gamma+1e-12
		if got < lo || got > hi {
			t.Errorf("Quantile(%g) = %g outside one bucket of exact stat %g [%g, %g]",
				p, got, stat, lo, hi)
		}
	}
}

func TestSketchQuantileAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		s := testSketch(t)
		n := 1 + rng.Intn(3000)
		xs := make([]float64, n)
		for i := range xs {
			switch rng.Intn(3) {
			case 0:
				xs[i] = 0 // exact zero (delay streams)
			case 1:
				xs[i] = rng.Float64() * 4000 // uniform over the range
			default:
				xs[i] = math.Exp(rng.Float64()*8 - 2) // log-uniform tail
			}
			s.Add(xs[i])
		}
		checkQuantiles(t, s, xs)
	}
}

// TestSketchMergeMatchesSequential: splitting a stream across sketches and
// merging reproduces the single-sketch buckets exactly and the moments up
// to rounding, regardless of merge order.
func TestSketchMergeMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	all, a, b, c := testSketch(t), testSketch(t), testSketch(t), testSketch(t)
	parts := []*Sketch{a, b, c}
	for i := 0; i < 5000; i++ {
		x := math.Abs(rng.NormFloat64()) * 50
		all.Add(x)
		parts[i%3].Add(x)
	}
	// Merge in two different orders into fresh copies.
	ab, ba := testSketch(t), testSketch(t)
	for _, src := range []*Sketch{a, b, c} {
		if err := ab.Merge(src); err != nil {
			t.Fatal(err)
		}
	}
	for _, src := range []*Sketch{c, b, a} {
		if err := ba.Merge(src); err != nil {
			t.Fatal(err)
		}
	}
	for _, m := range []*Sketch{ab, ba} {
		if m.zero != all.zero {
			t.Fatalf("zero bucket %d, want %d", m.zero, all.zero)
		}
		for i := range m.bins {
			if m.bins[i] != all.bins[i] {
				t.Fatalf("bin %d = %d, want %d", i, m.bins[i], all.bins[i])
			}
		}
		mo, ao := m.Moments(), all.Moments()
		if mo.N() != ao.N() || mo.Min() != ao.Min() || mo.Max() != ao.Max() {
			t.Fatalf("moments N/Min/Max drifted: %v vs %v", mo, ao)
		}
		if math.Abs(mo.Mean()-ao.Mean()) > 1e-9*math.Abs(ao.Mean()) {
			t.Errorf("merged mean %g, sequential %g", mo.Mean(), ao.Mean())
		}
		if math.Abs(mo.StdDev()-ao.StdDev()) > 1e-6*ao.StdDev() {
			t.Errorf("merged stddev %g, sequential %g", mo.StdDev(), ao.StdDev())
		}
	}
	// Bucket counts are integers, so the two merge orders agree exactly —
	// and therefore so do the quantiles.
	for _, p := range []float64{0.5, 0.95, 0.99} {
		if ab.Quantile(p) != ba.Quantile(p) {
			t.Errorf("merge order changed Quantile(%g): %g vs %g", p, ab.Quantile(p), ba.Quantile(p))
		}
	}
}

func TestSketchMergeIncompatible(t *testing.T) {
	a := testSketch(t)
	b, err := NewSketch(1e-3, 8192, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Merge(b); err == nil {
		t.Error("incompatible layouts merged")
	}
	if err := a.Merge(nil); err != nil {
		t.Errorf("nil merge errored: %v", err)
	}
}

// FuzzSketchQuantile drives randomized streams through the sketch and
// checks the one-bucket quantile bound plus merge/sequential agreement.
func FuzzSketchQuantile(f *testing.F) {
	f.Add(int64(1), uint16(100))
	f.Add(int64(99), uint16(2048))
	f.Add(int64(-7), uint16(1))
	f.Fuzz(func(t *testing.T, seed int64, n uint16) {
		rng := rand.New(rand.NewSource(seed))
		count := int(n)%4096 + 1
		whole, left, right := testSketch(t), testSketch(t), testSketch(t)
		xs := make([]float64, count)
		for i := range xs {
			switch rng.Intn(4) {
			case 0:
				xs[i] = 0
			case 1:
				xs[i] = rng.Float64() * 1e-3 // sub-resolution
			default:
				xs[i] = math.Exp(rng.Float64()*16 - 7) // spans the bucket range
			}
			whole.Add(xs[i])
			if i%2 == 0 {
				left.Add(xs[i])
			} else {
				right.Add(xs[i])
			}
		}
		checkQuantiles(t, whole, xs)
		if err := left.Merge(right); err != nil {
			t.Fatal(err)
		}
		if left.N() != whole.N() || left.zero != whole.zero {
			t.Fatalf("merge lost observations: %d/%d vs %d/%d", left.N(), left.zero, whole.N(), whole.zero)
		}
		for i := range left.bins {
			if left.bins[i] != whole.bins[i] {
				t.Fatalf("merged bin %d = %d, sequential %d", i, left.bins[i], whole.bins[i])
			}
		}
		lm, wm := left.Moments(), whole.Moments()
		if lm.Min() != wm.Min() || lm.Max() != wm.Max() {
			t.Fatalf("merge drifted min/max")
		}
		if math.Abs(lm.Mean()-wm.Mean()) > 1e-9*(math.Abs(wm.Mean())+1) {
			t.Fatalf("merge drifted mean: %g vs %g", lm.Mean(), wm.Mean())
		}
	})
}

// TestSummarizeMatchesPercentile: the single-sort Summarize reads the same
// quantiles Percentile computes (bit-for-bit — both interpolate over the
// identical sorted copy).
func TestSummarizeMatchesPercentile(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10; trial++ {
		xs := make([]float64, 1+rng.Intn(500))
		for i := range xs {
			xs[i] = rng.NormFloat64() * 100
		}
		s := Summarize(xs)
		for _, q := range []struct {
			p    float64
			got  float64
			name string
		}{{0.50, s.P50, "P50"}, {0.95, s.P95, "P95"}, {0.99, s.P99, "P99"}} {
			want := Percentile(xs, q.p)
			if math.Float64bits(q.got) != math.Float64bits(want) {
				t.Errorf("%s = %g, Percentile = %g", q.name, q.got, want)
			}
		}
	}
}
