package stats

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestOnlineBasics(t *testing.T) {
	var o Online
	if o.Mean() != 0 || o.Variance() != 0 || o.N() != 0 {
		t.Error("zero value not empty")
	}
	o.AddAll([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if o.N() != 8 {
		t.Errorf("N = %d, want 8", o.N())
	}
	if got, want := o.Mean(), 5.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("Mean = %f, want %f", got, want)
	}
	// Sample variance of that classic set: sum sq dev = 32, /7.
	if got, want := o.Variance(), 32.0/7.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("Variance = %f, want %f", got, want)
	}
	if o.Min() != 2 || o.Max() != 9 {
		t.Errorf("Min/Max = %f/%f, want 2/9", o.Min(), o.Max())
	}
	if o.CI95() <= 0 {
		t.Error("CI95 not positive")
	}
	if s := o.String(); !strings.Contains(s, "n=8") {
		t.Errorf("String() = %q", s)
	}
}

func TestOnlineSingleObservation(t *testing.T) {
	var o Online
	o.Add(3)
	if o.Variance() != 0 || o.CI95() != 0 {
		t.Error("variance of single observation not 0")
	}
	if o.Min() != 3 || o.Max() != 3 {
		t.Error("min/max wrong for single observation")
	}
}

// Property: merging two accumulators equals accumulating the concatenation.
func TestOnlineMergeEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		na, nb := rng.Intn(50), rng.Intn(50)
		var a, b, all Online
		for i := 0; i < na; i++ {
			x := rng.NormFloat64() * 10
			a.Add(x)
			all.Add(x)
		}
		for i := 0; i < nb; i++ {
			x := rng.NormFloat64()*3 + 5
			b.Add(x)
			all.Add(x)
		}
		a.Merge(b)
		if a.N() != all.N() {
			return false
		}
		if a.N() == 0 {
			return true
		}
		return math.Abs(a.Mean()-all.Mean()) < 1e-9 &&
			math.Abs(a.Variance()-all.Variance()) < 1e-6 &&
			a.Min() == all.Min() && a.Max() == all.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMergeEmptySides(t *testing.T) {
	var a, b Online
	b.Add(4)
	a.Merge(b) // empty <- nonempty
	if a.N() != 1 || a.Mean() != 4 {
		t.Error("merge into empty failed")
	}
	var c Online
	a.Merge(c) // nonempty <- empty
	if a.N() != 1 {
		t.Error("merge of empty changed state")
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %f, want 2", got)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{4, 1, 3, 2} // sorted: 1 2 3 4
	tests := []struct{ p, want float64 }{
		{0, 1}, {1, 4}, {0.5, 2.5}, {1.0 / 3.0, 2}, {-1, 1}, {2, 4},
	}
	for _, tt := range tests {
		if got := Percentile(xs, tt.p); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("Percentile(%f) = %f, want %f", tt.p, got, tt.want)
		}
	}
	if Percentile(nil, 0.5) != 0 {
		t.Error("Percentile(nil) != 0")
	}
	// Must not mutate input.
	if xs[0] != 4 {
		t.Error("Percentile sorted the caller's slice")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.P50 != 3 {
		t.Errorf("Summary = %+v", s)
	}
	if !strings.Contains(s.String(), "n=5") {
		t.Errorf("String() = %q", s.String())
	}
}

func TestHistogram(t *testing.T) {
	h, err := NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{0, 1.9, 2, 5, 9.9, -3, 42} {
		h.Add(x)
	}
	if h.Count() != 7 {
		t.Errorf("Count = %d, want 7", h.Count())
	}
	// Bin 0 holds 0, 1.9 and clamped -3; bin 4 holds 9.9 and clamped 42.
	if h.Bins[0] != 3 || h.Bins[1] != 1 || h.Bins[2] != 1 || h.Bins[4] != 2 {
		t.Errorf("Bins = %v", h.Bins)
	}
	if got, want := h.Fraction(0), 3.0/7.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("Fraction(0) = %f, want %f", got, want)
	}
	if h.Fraction(99) != 0 {
		t.Error("Fraction out of range != 0")
	}
	if s := h.String(); !strings.Contains(s, "#") {
		t.Errorf("String() = %q has no bars", s)
	}
}

func TestHistogramErrors(t *testing.T) {
	if _, err := NewHistogram(0, 10, 0); err == nil {
		t.Error("0 bins accepted")
	}
	if _, err := NewHistogram(5, 5, 3); err == nil {
		t.Error("empty range accepted")
	}
	var empty Histogram
	if empty.Fraction(0) != 0 {
		t.Error("empty histogram Fraction != 0")
	}
}

func TestJainIndex(t *testing.T) {
	tests := []struct {
		xs   []float64
		want float64
	}{
		{nil, 1},
		{[]float64{0, 0, 0}, 1},
		{[]float64{5, 5, 5, 5}, 1},
		{[]float64{1, 0, 0, 0}, 0.25},
		{[]float64{1, 2, 3}, 36.0 / (3 * 14)},
	}
	for _, tt := range tests {
		if got := JainIndex(tt.xs); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("JainIndex(%v) = %f, want %f", tt.xs, got, tt.want)
		}
	}
}
