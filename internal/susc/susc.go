// Package susc implements the Scheduling Under Sufficient Channels (SUSC)
// algorithm of "Time-Constrained Service on Air" (ICDCS 2005), Section 3.
//
// Given expected-time groups G_1..G_h and at least the Theorem 3.1 minimum
// number of channels N = ceil(sum_i P_i/t_i), SUSC greedily builds a valid
// broadcast program of cycle length t_h:
//
//  1. pages are assigned in ascending expected-time order;
//  2. each page takes the first available slot (x, y) with y < t_i scanned
//     channel-major (Algorithm 2, GetAvailableSlot);
//  3. from its first slot the page repeats every t_i slots on the same
//     channel (Theorem 3.3), t_h/t_i appearances per cycle.
//
// Theorem 3.2 guarantees step 2 always finds a slot when the channel count
// meets the bound; Build converts a violation of that guarantee (impossible
// for valid inputs, by the theorem) into an internal error rather than a
// panic, so the invariant is machine-checked on every run.
package susc

import (
	"fmt"

	"tcsa/internal/core"
)

// Build produces a valid broadcast program for gs using exactly channels
// broadcast channels and cycle length t_h. It fails with
// core.ErrInsufficientChannels when channels is below the Theorem 3.1
// minimum; pass gs.MinChannels() to use the proven-optimal channel count.
func Build(gs *core.GroupSet, channels int) (*core.Program, error) {
	if gs == nil {
		return nil, fmt.Errorf("%w: nil group set", core.ErrInvalidGroupSet)
	}
	min := gs.MinChannels()
	if channels < min {
		return nil, fmt.Errorf("%w: %d < minimum %d for %v",
			core.ErrInsufficientChannels, channels, min, gs)
	}
	th := gs.MaxTime()
	prog, err := core.NewProgram(gs, channels, th)
	if err != nil {
		return nil, err
	}

	// nextFree[x] is a per-channel search hint: every slot before it on
	// channel x is occupied. Pages are placed in ascending t_i order and a
	// page's repeats never occupy a slot before its first appearance, so
	// slots below the hint can never free up during the build.
	nextFree := make([]int, channels)

	for i := 0; i < gs.Len(); i++ {
		g := gs.Group(i)
		repeats := th / g.Time
		for j := 0; j < g.Count; j++ {
			id := gs.PageAt(i, j)
			x, y, ok := getAvailableSlot(prog, nextFree, g.Time)
			if !ok {
				// Unreachable for validated inputs (Theorem 3.2); kept as a
				// defensive check so a future regression fails loudly.
				return nil, fmt.Errorf("%w: no slot for page %d (group %d, t=%d) — Theorem 3.2 violated",
					core.ErrInsufficientChannels, id, i+1, g.Time)
			}
			for k := 0; k < repeats; k++ {
				if err := prog.Place(x, y+k*g.Time, id); err != nil {
					return nil, fmt.Errorf("susc: placing page %d repeat %d: %w", id, k, err)
				}
			}
			for nextFree[x] < th && prog.At(x, nextFree[x]) != core.None {
				nextFree[x]++
			}
		}
	}
	return prog, nil
}

// BuildMinimal is Build with the Theorem 3.1 minimum channel count.
func BuildMinimal(gs *core.GroupSet) (*core.Program, error) {
	if gs == nil {
		return nil, fmt.Errorf("%w: nil group set", core.ErrInvalidGroupSet)
	}
	return Build(gs, gs.MinChannels())
}

// getAvailableSlot is Algorithm 2: scan channel x = 0..N-1, slot
// y = 0..t-1, returning the first empty cell. nextFree provides a
// monotone per-channel lower bound on the first free slot.
func getAvailableSlot(p *core.Program, nextFree []int, t int) (x, y int, ok bool) {
	for x = 0; x < p.Channels(); x++ {
		for y = nextFree[x]; y < t; y++ {
			if p.At(x, y) == core.None {
				return x, y, true
			}
		}
	}
	return 0, 0, false
}
