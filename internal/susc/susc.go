// Package susc implements the Scheduling Under Sufficient Channels (SUSC)
// algorithm of "Time-Constrained Service on Air" (ICDCS 2005), Section 3.
//
// Given expected-time groups G_1..G_h and at least the Theorem 3.1 minimum
// number of channels N = ceil(sum_i P_i/t_i), SUSC greedily builds a valid
// broadcast program of cycle length t_h:
//
//  1. pages are assigned in ascending expected-time order;
//  2. each page takes the first available slot (x, y) with y < t_i scanned
//     channel-major (Algorithm 2, GetAvailableSlot);
//  3. from its first slot the page repeats every t_i slots on the same
//     channel (Theorem 3.3), t_h/t_i appearances per cycle.
//
// Build realises that greedy fill without the per-page channel-major rescan
// of the literal Algorithm 2 (retained as buildReference): because every
// earlier group's period divides the current one's, the occupied cells of a
// channel always form whole residue classes modulo the current period, so a
// channel the scan moves past is completely full and the scan never needs to
// revisit it. A monotone (channel, slot) cursor therefore reproduces
// Algorithm 2's placements exactly in O(cells) total time — see the package
// tests and FuzzSUSCEquivalence, which pin the two builders cell for cell.
//
// Theorem 3.2 guarantees a slot always exists when the channel count meets
// the bound; Build converts a violation of that guarantee (impossible for
// valid inputs, by the theorem) into an internal error rather than a panic,
// so the invariant is machine-checked on every run.
//
//lint:deterministic bit-identical replay contract: no wall clock, no global RNG, no map-order folds
package susc

import (
	"fmt"

	"tcsa/internal/core"
)

// Build produces a valid broadcast program for gs using exactly channels
// broadcast channels and cycle length t_h. It fails with
// core.ErrInsufficientChannels when channels is below the Theorem 3.1
// minimum; pass gs.MinChannels() to use the proven-optimal channel count.
//
// The construction is O(cells) — one grid write per placed repeat plus a
// bounded scan on the at most one partially-filled channel each group
// inherits — and allocates only the program itself, independent of the page
// count (guarded by TestBuildAllocsIndependentOfPages).
func Build(gs *core.GroupSet, channels int) (*core.Program, error) {
	if gs == nil {
		return nil, fmt.Errorf("%w: nil group set", core.ErrInvalidGroupSet)
	}
	min := gs.MinChannels()
	if channels < min {
		return nil, fmt.Errorf("%w: %d < minimum %d for %v",
			core.ErrInsufficientChannels, channels, min, gs)
	}
	th := gs.MaxTime()
	prog, err := core.NewProgram(gs, channels, th)
	if err != nil {
		return nil, err
	}

	// Cursor invariants, maintained across groups:
	//
	//   x     — the active channel. Channels < x hold no free slot at all:
	//           the scan only leaves a channel when no slot below the current
	//           period t is free, and since every occupied cell belongs to a
	//           full residue class mod t (periods divide along the chain),
	//           "no free slot below t" means "no free slot anywhere".
	//   f     — the first free slot on channel x; every slot before f is
	//           occupied. f never decreases, because placements at slot
	//           y >= f only add cells at y + k*t >= f.
	//   dirty — whether channel x carries pages of an earlier group. On a
	//           clean channel the current group has filled exactly slots
	//           0..f-1 and its repeats land at t_i or beyond, so the next
	//           free slot is f itself and the whole group fill is
	//           closed-form: consecutive slots, no probing. On a dirty
	//           channel earlier groups' residue classes (and this group's
	//           own repeats, once placed off-grid-aligned) interleave, so f
	//           is re-established by probing the grid forward. Only the
	//           single partial channel each group hands to the next is ever
	//           dirty, so probing touches at most h-1 channels, O(t_h)
	//           cells each.
	x, f := 0, 0
	dirty := false
	for i := 0; i < gs.Len(); i++ {
		g := gs.Group(i)
		repeats := th / g.Time
		for j := 0; j < g.Count; j++ {
			for f >= g.Time {
				// No free slot below t_i: by the residue-class argument the
				// channel is completely full, so hand the cursor a fresh one.
				x, f, dirty = x+1, 0, false
				if x >= channels {
					// Unreachable for validated inputs (Theorem 3.2); kept as
					// a defensive check so a future regression fails loudly.
					return nil, fmt.Errorf("%w: no slot for page %d (group %d, t=%d) — Theorem 3.2 violated",
						core.ErrInsufficientChannels, gs.PageAt(i, j), i+1, g.Time)
				}
			}
			if err := prog.PlaceRepeats(x, f, g.Time, repeats, gs.PageAt(i, j)); err != nil {
				return nil, fmt.Errorf("susc: placing page %d: %w", gs.PageAt(i, j), err)
			}
			f++
			if dirty {
				// Occupied residue classes interleave with ours: probe
				// forward to the next free cell. f is monotone per channel,
				// so this costs O(t_h) per dirty channel in total.
				for f < th && prog.At(x, f) != core.None {
					f++
				}
			}
		}
		// The channel this group leaves partial is inherited dirty, and the
		// finished group's own repeats (at y + k*t_i >= t_i >= f) may now
		// occupy the cell at f, so re-establish the first-free invariant.
		if f > 0 && !dirty {
			dirty = true
			for f < th && prog.At(x, f) != core.None {
				f++
			}
		}
	}
	return prog, nil
}

// BuildMinimal is Build with the Theorem 3.1 minimum channel count.
func BuildMinimal(gs *core.GroupSet) (*core.Program, error) {
	if gs == nil {
		return nil, fmt.Errorf("%w: nil group set", core.ErrInvalidGroupSet)
	}
	return Build(gs, gs.MinChannels())
}
