package susc

import (
	"fmt"

	"tcsa/internal/core"
)

// buildReference is the literal Algorithm 2 builder that Build replaced: for
// every page it rescans channels 0..N-1 from the top (getAvailableSlot),
// placing each repeat with a per-cell Place call. It is retained verbatim as
// the differential oracle — TestBuildMatchesReference and
// FuzzSUSCEquivalence pin Build's grids cell for cell against it — and is
// deliberately not exported: production callers get the O(cells) cursor
// build.
func buildReference(gs *core.GroupSet, channels int) (*core.Program, error) {
	if gs == nil {
		return nil, fmt.Errorf("%w: nil group set", core.ErrInvalidGroupSet)
	}
	min := gs.MinChannels()
	if channels < min {
		return nil, fmt.Errorf("%w: %d < minimum %d for %v",
			core.ErrInsufficientChannels, channels, min, gs)
	}
	th := gs.MaxTime()
	prog, err := core.NewProgram(gs, channels, th)
	if err != nil {
		return nil, err
	}

	// nextFree[x] is a per-channel search hint: every slot before it on
	// channel x is occupied. Pages are placed in ascending t_i order and a
	// page's repeats never occupy a slot before its first appearance, so
	// slots below the hint can never free up during the build.
	nextFree := make([]int, channels)

	for i := 0; i < gs.Len(); i++ {
		g := gs.Group(i)
		repeats := th / g.Time
		for j := 0; j < g.Count; j++ {
			id := gs.PageAt(i, j)
			x, y, ok := getAvailableSlot(prog, nextFree, g.Time)
			if !ok {
				return nil, fmt.Errorf("%w: no slot for page %d (group %d, t=%d) — Theorem 3.2 violated",
					core.ErrInsufficientChannels, id, i+1, g.Time)
			}
			for k := 0; k < repeats; k++ {
				if err := prog.Place(x, y+k*g.Time, id); err != nil {
					return nil, fmt.Errorf("susc: placing page %d repeat %d: %w", id, k, err)
				}
			}
			for nextFree[x] < th && prog.At(x, nextFree[x]) != core.None {
				nextFree[x]++
			}
		}
	}
	return prog, nil
}

// getAvailableSlot is Algorithm 2: scan channel x = 0..N-1, slot
// y = 0..t-1, returning the first empty cell. nextFree provides a
// monotone per-channel lower bound on the first free slot.
func getAvailableSlot(p *core.Program, nextFree []int, t int) (x, y int, ok bool) {
	for x = 0; x < p.Channels(); x++ {
		for y = nextFree[x]; y < t; y++ {
			if p.At(x, y) == core.None {
				return x, y, true
			}
		}
	}
	return 0, 0, false
}
