package susc

import (
	"math/rand"
	"testing"

	"tcsa/internal/core"
)

// gridsEqual compares two programs cell for cell.
func gridsEqual(t *testing.T, got, want *core.Program) {
	t.Helper()
	if got.Channels() != want.Channels() || got.Length() != want.Length() {
		t.Fatalf("grid shape %dx%d, want %dx%d",
			got.Channels(), got.Length(), want.Channels(), want.Length())
	}
	if got.Filled() != want.Filled() {
		t.Fatalf("Filled = %d, want %d", got.Filled(), want.Filled())
	}
	for ch := 0; ch < want.Channels(); ch++ {
		for slot := 0; slot < want.Length(); slot++ {
			if got.At(ch, slot) != want.At(ch, slot) {
				t.Fatalf("cell (%d,%d) = %d, want %d\nfast:\n%s\nreference:\n%s",
					ch, slot, got.At(ch, slot), want.At(ch, slot), got, want)
			}
		}
	}
}

// TestBuildMatchesReference pins the cursor builder byte-for-byte against the
// literal Algorithm 2 builder on randomized instances, at the minimum channel
// count and with slack channels.
func TestBuildMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 400; trial++ {
		gs := randomGroupSet(rng)
		channels := gs.MinChannels() + rng.Intn(3)
		fast, err := Build(gs, channels)
		if err != nil {
			t.Fatalf("Build(%v, %d): %v", gs, channels, err)
		}
		ref, err := buildReference(gs, channels)
		if err != nil {
			t.Fatalf("buildReference(%v, %d): %v", gs, channels, err)
		}
		gridsEqual(t, fast, ref)
	}
}

// TestBuildMatchesReferencePaperScale checks the equivalence on the paper's
// default workload (n=1000, h=8, t=4..512) rather than only on small random
// shapes.
func TestBuildMatchesReferencePaperScale(t *testing.T) {
	groups := make([]core.Group, 8)
	tt := 4
	for i := range groups {
		groups[i] = core.Group{Time: tt, Count: 125}
		tt *= 2
	}
	gs := core.MustGroupSet(groups)
	fast, err := BuildMinimal(gs)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := buildReference(gs, gs.MinChannels())
	if err != nil {
		t.Fatal(err)
	}
	gridsEqual(t, fast, ref)
}

// TestBuildAllocsIndependentOfPages guards the O(1)-allocation claim: the
// cursor builder performs the same handful of allocations (the Program and
// its grid) no matter how many pages the instance has.
func TestBuildAllocsIndependentOfPages(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation counting in -short mode")
	}
	instance := func(per int) *core.GroupSet {
		groups := make([]core.Group, 4)
		tt := 64
		for i := range groups {
			groups[i] = core.Group{Time: tt, Count: per}
			tt *= 2
		}
		return core.MustGroupSet(groups)
	}
	measure := func(gs *core.GroupSet) float64 {
		return testing.AllocsPerRun(10, func() {
			if _, err := BuildMinimal(gs); err != nil {
				t.Fatal(err)
			}
		})
	}
	small, large := measure(instance(100)), measure(instance(10000))
	if small != large {
		t.Errorf("allocs grew with page count: %.1f at 400 pages, %.1f at 40000 pages", small, large)
	}
	if large > 4 {
		t.Errorf("allocs = %.1f, want <= 4 (program header + grid)", large)
	}
}
