package susc_test

import (
	"fmt"

	"tcsa/internal/core"
	"tcsa/internal/susc"
)

// The Section 3.1 example: 2 pages due within 2 slots and 3 within 4 need
// ceil(2/2 + 3/4) = 2 channels, and SUSC schedules them validly on exactly
// that many.
func ExampleBuildMinimal() {
	gs := core.MustGroupSet([]core.Group{{Time: 2, Count: 2}, {Time: 4, Count: 3}})
	prog, err := susc.BuildMinimal(gs)
	if err != nil {
		panic(err)
	}
	fmt.Println("channels:", prog.Channels())
	fmt.Println("cycle:   ", prog.Length())
	fmt.Println("valid:   ", prog.Validate() == nil)
	fmt.Print(prog)
	// Output:
	// channels: 2
	// cycle:    4
	// valid:    true
	// ch0  |  0  1  0  1
	// ch1  |  2  3  4 --
}
