package susc

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"tcsa/internal/conformance"
	"tcsa/internal/core"
)

func TestBuildPaperExample(t *testing.T) {
	// Section 3.1 example: P=(2,3), t=(2,4): exactly 2 channels suffice.
	gs := core.MustGroupSet([]core.Group{{Time: 2, Count: 2}, {Time: 4, Count: 3}})
	prog, err := BuildMinimal(gs)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Channels() != 2 {
		t.Errorf("channels = %d, want 2", prog.Channels())
	}
	if prog.Length() != 4 {
		t.Errorf("cycle length = %d, want t_h=4", prog.Length())
	}
	if err := prog.Validate(); err != nil {
		t.Errorf("program invalid: %v\n%s", err, prog)
	}
}

func TestBuildRejectsInsufficientChannels(t *testing.T) {
	gs := core.MustGroupSet([]core.Group{{Time: 2, Count: 2}, {Time: 4, Count: 3}})
	_, err := Build(gs, 1)
	if !errors.Is(err, core.ErrInsufficientChannels) {
		t.Errorf("Build with 1 channel = %v, want ErrInsufficientChannels", err)
	}
	if _, err := Build(nil, 3); err == nil {
		t.Error("nil group set accepted")
	}
	if _, err := BuildMinimal(nil); err == nil {
		t.Error("BuildMinimal(nil) accepted")
	}
}

func TestBuildSingleGroup(t *testing.T) {
	gs := core.MustGroupSet([]core.Group{{Time: 4, Count: 10}})
	prog, err := BuildMinimal(gs)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Channels() != 3 { // ceil(10/4)
		t.Errorf("channels = %d, want 3", prog.Channels())
	}
	if err := prog.Validate(); err != nil {
		t.Errorf("program invalid: %v", err)
	}
	a := core.Analyze(prog)
	if d := a.AvgDelay(); d != 0 {
		t.Errorf("AvgDelay = %f, want 0 for a valid program", d)
	}
}

// TestTheorem33Spacing verifies that every page's k-th appearance is exactly
// t_i slots after its (k-1)-th, on the same channel (Theorem 3.3), via the
// shared conformance oracle.
func TestTheorem33Spacing(t *testing.T) {
	gs := core.MustGroupSet([]core.Group{{Time: 2, Count: 3}, {Time: 4, Count: 5}, {Time: 8, Count: 3}})
	prog, err := BuildMinimal(gs)
	if err != nil {
		t.Fatal(err)
	}
	if err := conformance.PeriodicSpacing(prog); err != nil {
		t.Error(err)
	}
}

// TestBuildUsesMinimumChannels verifies the paper's optimality claim: SUSC
// succeeds at exactly N = MinChannels for random instances, and the result
// passes every conformance oracle (Theorems 3.1-3.3 in mechanical form).
func TestBuildUsesMinimumChannels(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		gs := randomGroupSet(rng)
		prog, err := BuildMinimal(gs)
		if err != nil {
			t.Logf("instance %v: %v", gs, err)
			return false
		}
		if prog.Channels() != conformance.MinChannelLaw(gs) {
			t.Logf("instance %v: %d channels, law says %d", gs, prog.Channels(), conformance.MinChannelLaw(gs))
			return false
		}
		for _, oracle := range []func(*core.Program) error{
			conformance.ValidFromAnyStart,
			conformance.ChannelLaw,
			conformance.PeriodicSpacing,
			conformance.SlotOccupancy,
		} {
			if err := oracle(prog); err != nil {
				t.Logf("instance %v: %v", gs, err)
				return false
			}
		}
		if core.Analyze(prog).AvgDelay() != 0 {
			t.Logf("instance %v: nonzero delay", gs)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestBuildWithExtraChannels verifies SUSC stays valid when given more than
// the minimum (slack channels simply stay empty).
func TestBuildWithExtraChannels(t *testing.T) {
	gs := core.MustGroupSet([]core.Group{{Time: 2, Count: 3}, {Time: 4, Count: 5}, {Time: 8, Count: 3}})
	prog, err := Build(gs, gs.MinChannels()+3)
	if err != nil {
		t.Fatal(err)
	}
	if err := prog.Validate(); err != nil {
		t.Errorf("program invalid: %v", err)
	}
}

// TestBuildDefaultScale exercises the paper's default workload scale:
// n=1000 pages over h=8 groups, t=4..512.
func TestBuildDefaultScale(t *testing.T) {
	groups := make([]core.Group, 8)
	tt := 4
	for i := range groups {
		groups[i] = core.Group{Time: tt, Count: 125}
		tt *= 2
	}
	gs := core.MustGroupSet(groups)
	prog, err := BuildMinimal(gs)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Channels() != 63 {
		t.Errorf("channels = %d, want 63", prog.Channels())
	}
	if err := prog.Validate(); err != nil {
		t.Errorf("program invalid: %v", err)
	}
}

// TestOccupancyMatchesDemand: SUSC fills exactly sum_i P_i * t_h/t_i slots
// (the conformance occupancy oracle).
func TestOccupancyMatchesDemand(t *testing.T) {
	gs := core.MustGroupSet([]core.Group{{Time: 2, Count: 3}, {Time: 4, Count: 5}, {Time: 8, Count: 3}})
	prog, err := BuildMinimal(gs)
	if err != nil {
		t.Fatal(err)
	}
	if err := conformance.SlotOccupancy(prog); err != nil {
		t.Error(err)
	}
}

func randomGroupSet(rng *rand.Rand) *core.GroupSet {
	h := 1 + rng.Intn(5)
	groups := make([]core.Group, h)
	tt := 1 + rng.Intn(5)
	for i := 0; i < h; i++ {
		groups[i] = core.Group{Time: tt, Count: 1 + rng.Intn(30)}
		tt *= 2 + rng.Intn(3)
	}
	return core.MustGroupSet(groups)
}
