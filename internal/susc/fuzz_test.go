package susc

import (
	"testing"

	"tcsa/internal/core"
)

// FuzzSUSCEquivalence differentially fuzzes the cursor builder against the
// retained Algorithm 2 reference across random valid group sets and channel
// counts: identical grids cell for cell, and a valid program at any channel
// budget at or above the Theorem 3.1 minimum.
func FuzzSUSCEquivalence(f *testing.F) {
	f.Add(2, 2, uint8(2), uint8(3), uint8(0), 0) // Section 3.1 example
	f.Add(2, 2, uint8(3), uint8(5), uint8(3), 1) // Figure 2 shape, one slack channel
	f.Add(1, 3, uint8(1), uint8(0), uint8(9), 0) // unit period first group
	f.Add(4, 2, uint8(125), uint8(125), uint8(125), 2)
	f.Add(64, 8, uint8(255), uint8(255), uint8(255), 5)
	f.Fuzz(func(t *testing.T, t1, c int, p1, p2, p3 uint8, slack int) {
		// Bound the shape so a single case stays fast; Geometric rejects
		// the remaining invalid inputs itself.
		if t1 > 64 || c > 8 || slack < 0 || slack > 8 {
			return
		}
		var counts []int
		for _, p := range []uint8{p1, p2, p3} {
			if p > 0 {
				counts = append(counts, int(p))
			}
		}
		if len(counts) == 0 {
			return
		}
		gs, err := core.Geometric(t1, c, counts)
		if err != nil {
			return
		}
		channels := gs.MinChannels() + slack
		fast, err := Build(gs, channels)
		if err != nil {
			t.Fatalf("Build(%v, %d): %v", gs, channels, err)
		}
		ref, err := buildReference(gs, channels)
		if err != nil {
			t.Fatalf("buildReference(%v, %d): %v", gs, channels, err)
		}
		gridsEqual(t, fast, ref)
		if err := fast.Validate(); err != nil {
			t.Fatalf("invalid program for %v at %d channels: %v", gs, channels, err)
		}
	})
}
