// Package ptas implements an ε-parameterized approximate frequency
// optimizer for the divisor-chain broadcast family of "Time-Constrained
// Service on Air" (ICDCS 2005), in the style of Kenyon–Schabanel–Young's
// polynomial-time approximation scheme for data broadcast.
//
// The exact OPT comparator (internal/opt) enumerates the full Cartesian
// product of repetition factors r_1..r_{h-1}; even branch-and-bound stays
// exponential in the group count h. This package trades exactness for a
// tunable slack ε: candidate per-group frequencies are quantized onto a
// geometric (1+δ) grid with δ derived from ε (see Grid), and a suffix-first
// dynamic program keeps only one representative chain per structurally
// distinct (frequency bucket, transmission-total bucket) signature per
// stage — O(polylog/δ²) states instead of ∏caps leaves. Representatives
// are ranked by the same admissible completion lower bound the exact
// branch-and-bound prunes with (delaymodel.SuffixDelayTotal at the minimum
// reachable total), surviving leaves are re-scored with the exact
// evaluator, and the winner is chosen under the exact search's
// deterministic tie-break chain.
//
// Two properties keep the result honest:
//
//   - Every candidate the DP emits is a divisor-chain family member by
//     construction (states multiply repetition factors, never frequencies),
//     and external seed vectors are snapped back into the family before
//     scoring, so the result is always buildable by the same Algorithm 4
//     placement the exact search feeds.
//   - Instances whose family has at most ExactLimit(ε) members are scanned
//     outright with no state merging — an approximation scheme may always
//     solve small instances exactly — so on everything the exact search can
//     finish the two return identical vectors, and the grid machinery only
//     engages on the large-h frontier it exists for.
//
// Work is sharded across workers only in the final exact-scoring pass,
// over an immutable, lexicographically deduplicated candidate list, and
// candidates merge under a total order; the result (and Evaluated) is
// therefore bit-identical at any parallelism.
//
//lint:deterministic bit-identical replay contract: no wall clock, no global RNG, no map-order folds
package ptas

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"tcsa/internal/core"
	"tcsa/internal/delaymodel"
)

// DefaultEps is the approximation slack used when Options.Eps is zero.
const DefaultEps = 0.1

// DefaultMaxStates bounds the DP frontier per stage when Options.MaxStates
// is zero. It is a memory safety valve, not part of the ε-grid accounting:
// when it binds, Result.Truncated reports so.
const DefaultMaxStates = 1 << 16

// maxChainValue caps any single chain frequency. Chains beyond it cannot
// win — the zero-delay sufficient vector already closes every gate at far
// smaller frequencies — and the cap keeps F = Σ S_i·P_i safely inside
// int64 on frontier instances.
const maxChainValue = 1 << 31

// Options tunes the approximate search.
type Options struct {
	// Eps is the approximation slack ε > 0: the search targets an analytic
	// delay within (1+ε) of the best divisor-chain family member. 0 means
	// DefaultEps.
	Eps float64
	// Caps bounds each repetition factor r_i, exactly like the exact
	// search's factor caps; len(Caps) must be h-1. Nil derives the same
	// automatic caps the exact search uses (twice the group-time ratio, at
	// least 4), so the two explore the same family by default.
	Caps []int
	// Parallelism bounds the exact-scoring workers; 0 means GOMAXPROCS.
	// The result is bit-identical at any value.
	Parallelism int
	// MaxStates caps the DP frontier per stage; 0 means DefaultMaxStates.
	MaxStates int
	// Seeds are extra candidate vectors scored alongside the DP leaves
	// (e.g. PAMAD's greedy chain). Each is snapped into the searched family
	// first; wrong-length seeds are ignored.
	Seeds []delaymodel.Frequencies
}

// Result is the best frequency assignment the approximate search found,
// plus the diagnostics the benchmark trajectory records.
type Result struct {
	Frequencies delaymodel.Frequencies
	Delay       float64 // analytic D' of Frequencies
	Evaluated   int64   // candidate vectors scored exactly (deterministic at any parallelism)
	Delta       float64 // derived grid ratio minus one: buckets are powers of 1+Delta
	States      int64   // DP states expanded across all stages
	Exact       bool    // family ≤ ExactLimit(ε): full scan, no merging, result is the family optimum
	Truncated   bool    // MaxStates bound at least one stage (approximation not purely grid-driven)
}

// Grid derives the quantization ratio δ from ε for an h-group instance:
// the largest δ with (1+δ)^(2h) ≤ 1+ε, so one (1+δ) rounding per chain
// position on both the frequency and the total axis compounds to at most
// (1+ε) across the whole vector.
func Grid(eps float64, h int) float64 {
	if h < 1 {
		h = 1
	}
	return math.Pow(1+eps, 1/float64(2*h)) - 1
}

// ExactLimit is the family size up to which the search scans every member
// instead of merging grid states. Scaling with 1/ε² keeps the exact regime
// aligned with the grid's resolution: asking for a tighter guarantee widens
// the range solved outright.
func ExactLimit(eps float64) float64 {
	lim := 16 / (eps * eps)
	if lim < 4096 {
		return 4096
	}
	return lim
}

// state is one partial suffix chain during the DP: s[idx..h-1] fixed,
// f = Σ_{j≥idx} s_j·P_j.
type state struct {
	s     delaymodel.Frequencies
	f     int
	bound float64 // admissible completion lower bound at this stage
}

// Optimize runs the approximate search. Like the exact search it returns
// the context error when cancelled mid-run: a truncated optimization is
// never passed off as a complete one.
func Optimize(ctx context.Context, gs *core.GroupSet, nReal int, opts Options) (*Result, error) {
	if gs == nil {
		return nil, fmt.Errorf("%w: nil group set", core.ErrInvalidGroupSet)
	}
	if nReal < 1 {
		return nil, fmt.Errorf("%w: %d channels", core.ErrInsufficientChannels, nReal)
	}
	eps := opts.Eps
	if eps == 0 {
		eps = DefaultEps
	}
	if eps < 0 || math.IsNaN(eps) || math.IsInf(eps, 0) {
		return nil, fmt.Errorf("ptas: invalid eps %v", opts.Eps)
	}
	h := gs.Len()
	if h == 1 {
		one := delaymodel.Frequencies{1}
		return &Result{
			Frequencies: one,
			Delay:       delaymodel.GroupDelay(gs, one, nReal),
			Evaluated:   1,
			Delta:       Grid(eps, 1),
			Exact:       true,
		}, nil
	}
	caps := opts.Caps
	if caps == nil {
		caps = defaultCaps(gs)
	}
	if len(caps) != h-1 {
		return nil, fmt.Errorf("ptas: %d factor caps for %d groups", len(caps), h)
	}
	for _, c := range caps {
		if c < 1 {
			return nil, fmt.Errorf("ptas: factor cap %d < 1", c)
		}
	}
	family := FamilySize(gs, caps)

	res := &Result{
		Delta: Grid(eps, h),
		Exact: family <= ExactLimit(eps),
	}
	maxStates := opts.MaxStates
	if maxStates <= 0 {
		maxStates = DefaultMaxStates
	}

	counts := make([]int, h)
	pagesBefore := make([]int, h)
	sum := 0
	for i := 0; i < h; i++ {
		counts[i] = gs.Group(i).Count
		pagesBefore[i] = sum
		sum += counts[i]
	}

	// Suffix-first DP: stage idx extends every kept chain with a factor for
	// position idx-1, then (approximate mode only) collapses the frontier
	// onto the (frequency bucket, total bucket) grid.
	root := state{s: make(delaymodel.Frequencies, h), f: counts[h-1]}
	root.s[h-1] = 1
	states := []state{root}
	for idx := h - 1; idx >= 1; idx-- {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		children := make([]state, 0, len(states)*caps[idx-1])
		for _, st := range states {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			res.States++
			for r := 1; r <= caps[idx-1]; r++ {
				sNew := r * st.s[idx]
				if sNew > maxChainValue {
					break // larger factors only grow further
				}
				child := state{s: append(delaymodel.Frequencies(nil), st.s...), f: st.f + sNew*counts[idx-1]}
				child.s[idx-1] = sNew
				children = append(children, child)
			}
		}
		if !res.Exact && idx > 1 {
			var truncated bool
			children, truncated = compress(gs, children, idx-1, nReal, pagesBefore, res.Delta, maxStates)
			res.Truncated = res.Truncated || truncated
		}
		states = children
	}

	cands := gatherCandidates(gs, states, caps, opts.Seeds)
	best, evaluated, err := scoreCandidates(ctx, gs, nReal, cands, opts.Parallelism)
	if err != nil {
		return nil, err
	}
	res.Frequencies = best.s
	res.Delay = best.delay
	res.Evaluated = evaluated
	return res, nil
}

// compress collapses a DP frontier onto the (1+δ) grid at stage lvl: states
// sharing both the frequency bucket of s[lvl] and the total bucket of F
// merge into the representative with the smallest admissible completion
// lower bound (ties: smaller F, then lexicographically smaller suffix).
// Sorting makes the selection independent of generation order, and a final
// bound-ranked cut enforces maxStates; truncated reports whether that cut
// dropped anything beyond the grid's own merging.
func compress(gs *core.GroupSet, children []state, lvl, nReal int, pagesBefore []int, delta float64, maxStates int) ([]state, bool) {
	logG := math.Log1p(delta)
	type keyed struct {
		state
		kS, kF int
	}
	ks := make([]keyed, len(children))
	for i, st := range children {
		// fmin: every completion multiplies s[lvl] by factors ≥ 1, so each
		// unassigned group reaches frequency ≥ s[lvl] and any leaf's total
		// is at least this — the exact branch-and-bound's admissible bound.
		fmin := st.f + st.s[lvl]*pagesBefore[lvl]
		st.bound = delaymodel.SuffixDelayTotal(gs, st.s, lvl, nReal, fmin)
		ks[i] = keyed{
			state: st,
			kS:    int(math.Log(float64(st.s[lvl])) / logG),
			kF:    int(math.Log(float64(st.f)) / logG),
		}
	}
	sort.Slice(ks, func(i, j int) bool {
		a, b := &ks[i], &ks[j]
		if a.kS != b.kS {
			return a.kS < b.kS
		}
		if a.kF != b.kF {
			return a.kF < b.kF
		}
		if a.bound != b.bound {
			return a.bound < b.bound
		}
		if a.f != b.f {
			return a.f < b.f
		}
		return lexLess(a.s, b.s, lvl)
	})
	kept := ks[:0]
	for i := range ks {
		if last := len(kept) - 1; last >= 0 && ks[i].kS == kept[last].kS && ks[i].kF == kept[last].kF {
			continue
		}
		kept = append(kept, ks[i])
	}
	truncated := false
	if len(kept) > maxStates {
		sort.Slice(kept, func(i, j int) bool {
			a, b := &kept[i], &kept[j]
			if a.bound != b.bound {
				return a.bound < b.bound
			}
			if a.f != b.f {
				return a.f < b.f
			}
			return lexLess(a.s, b.s, lvl)
		})
		kept = kept[:maxStates]
		truncated = true
	}
	out := make([]state, len(kept))
	for i := range kept {
		out[i] = kept[i].state
	}
	return out, truncated
}

// gatherCandidates assembles the final exact-scoring list: every DP leaf,
// the sufficient-frequency chain (which covers the zero-delay regime: if
// any vector reaches D' = 0 at this channel budget, this one does), and the
// caller's seeds — the last two snapped into the family — sorted and
// deduplicated so Evaluated is deterministic and no vector is scored twice.
func gatherCandidates(gs *core.GroupSet, leaves []state, caps []int, seeds []delaymodel.Frequencies) []delaymodel.Frequencies {
	h := gs.Len()
	cands := make([]delaymodel.Frequencies, 0, len(leaves)+len(seeds)+1)
	for _, st := range leaves {
		cands = append(cands, st.s)
	}
	cands = append(cands, SnapToFamily(delaymodel.SufficientFrequencies(gs), caps))
	for _, seed := range seeds {
		if len(seed) == h {
			cands = append(cands, SnapToFamily(seed, caps))
		}
	}
	sort.Slice(cands, func(i, j int) bool { return lexLess(cands[i], cands[j], 0) })
	uniq := cands[:1]
	for _, c := range cands[1:] {
		if lexLess(uniq[len(uniq)-1], c, 0) {
			uniq = append(uniq, c)
		}
	}
	return uniq
}

// scored is a candidate with the exact keys of the tie-break chain.
type scored struct {
	s     delaymodel.Frequencies
	delay float64
	f     int
}

// better reports whether a beats b under the exact search's deterministic
// order: lower delay, then fewer total transmissions, then lexicographically
// smaller frequencies. It is a strict total order over distinct vectors, so
// the minimum is unique and worker interleaving cannot change it.
func better(a, b *scored) bool {
	if a.delay != b.delay {
		return a.delay < b.delay
	}
	if a.f != b.f {
		return a.f < b.f
	}
	return lexLess(a.s, b.s, 0)
}

// scoreCandidates evaluates every candidate exactly, sharding contiguous
// chunks over workers through an atomic cursor. Each worker folds its
// chunks into a local best; the final fold scans workers in index order,
// but because better is a total order the merged minimum is the same
// regardless of which worker scored what.
func scoreCandidates(ctx context.Context, gs *core.GroupSet, nReal int, cands []delaymodel.Frequencies, parallelism int) (*scored, int64, error) {
	workers := parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cands) {
		workers = len(cands)
	}
	const chunk = 256
	var (
		next      atomic.Int64
		cancelled atomic.Bool
		wg        sync.WaitGroup
	)
	bests := make([]*scored, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var best *scored
			for {
				lo := int(next.Add(chunk)) - chunk
				if lo >= len(cands) {
					break
				}
				hi := lo + chunk
				if hi > len(cands) {
					hi = len(cands)
				}
				for _, s := range cands[lo:hi] {
					if ctx.Err() != nil {
						cancelled.Store(true)
						return
					}
					cand := &scored{s: s, delay: delaymodel.GroupDelay(gs, s, nReal), f: s.TotalSlots(gs)}
					if best == nil || better(cand, best) {
						best = cand
					}
				}
			}
			bests[w] = best
		}(w)
	}
	wg.Wait()
	if cancelled.Load() {
		if err := ctx.Err(); err != nil {
			return nil, 0, err
		}
		return nil, 0, context.Canceled
	}
	var best *scored
	for _, b := range bests {
		if b != nil && (best == nil || better(b, best)) {
			best = b
		}
	}
	if best == nil {
		return nil, 0, fmt.Errorf("ptas: no candidate evaluated")
	}
	return best, int64(len(cands)), nil
}

// SnapToFamily projects a frequency vector onto the divisor-chain family
// under the given factor caps: each repetition factor r_i = S_i/S_{i+1} is
// clamped to [1, caps[i]] and the chain rebuilt from S_h = 1 upward —
// the same rounding the exact search applies to its incumbent seeds, so a
// snapped vector is always a member the family placement can build.
func SnapToFamily(s delaymodel.Frequencies, caps []int) delaymodel.Frequencies {
	h := len(s)
	out := make(delaymodel.Frequencies, h)
	out[h-1] = 1
	for i := h - 2; i >= 0; i-- {
		r := 1
		if s[i+1] > 0 {
			r = s[i] / s[i+1]
		}
		if r < 1 {
			r = 1
		}
		if i < len(caps) && r > caps[i] {
			r = caps[i]
		}
		out[i] = r * out[i+1]
	}
	return out
}

// FamilySize returns the number of divisor-chain members under the given
// factor caps — the leaf count ∏ caps[i] an exact enumeration must visit.
// Nil caps means the automatic caps Optimize would derive. The count is a
// float64 because frontier instances overflow int64 (h=20 at cap 4 is
// already ~2.7e11); callers use it as the Search-infeasibility witness, not
// for exact arithmetic.
func FamilySize(gs *core.GroupSet, caps []int) float64 {
	if caps == nil {
		caps = defaultCaps(gs)
	}
	family := 1.0
	for _, c := range caps {
		family *= float64(c)
	}
	return family
}

// defaultCaps mirrors the exact search's automatic factor caps (twice the
// group-time ratio, at least 4) so a standalone Optimize explores the same
// family; internal/opt passes its caps explicitly and keeps the two engines
// aligned even if one formula changes.
func defaultCaps(gs *core.GroupSet) []int {
	h := gs.Len()
	caps := make([]int, h-1)
	for i := range caps {
		c := 2 * (gs.Group(i+1).Time / gs.Group(i).Time)
		if c < 4 {
			c = 4
		}
		caps[i] = c
	}
	return caps
}

// lexLess compares two frequency vectors lexicographically from position
// lo onward.
func lexLess(a, b delaymodel.Frequencies, lo int) bool {
	for i := lo; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}
